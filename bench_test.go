package vexdb_test

// The benchmark harness regenerating the paper's evaluation:
//
//   - BenchmarkFigure1_*       — one benchmark per Figure-1 bar (the
//     voter-classification pipeline under each data placement).
//   - BenchmarkE2Model*        — model (de)serialization overhead
//     (paper §5.1).
//   - BenchmarkE3ParallelUDF_* — parallel prediction UDF scaling.
//   - BenchmarkE4Ensemble      — stored-model ensemble inference.
//   - BenchmarkE5Protocols_*   — client result-set protocols.
//   - BenchmarkMicro*          — engine micro-ablations (join,
//     aggregation, scan, CSV parse).
//
// Benchmarks run at a reduced scale (20k voters x 24 columns) so the
// suite completes quickly; cmd/voterbench reproduces the full-scale
// numbers recorded in EXPERIMENTS.md.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"vexdb/internal/wire"
	"vexdb/internal/workload"
	"vexdb/ml"
)

var (
	benchOnce sync.Once
	benchEnv  *workload.Env
	benchErr  error
)

func benchConfig() workload.Config {
	cfg := workload.DefaultConfig()
	cfg.Voters = 20_000
	cfg.Columns = 24
	cfg.Precincts = 500
	cfg.Estimators = 8
	return cfg
}

func getEnv(b *testing.B) *workload.Env {
	b.Helper()
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "vexdb-bench-*")
		if err != nil {
			benchErr = err
			return
		}
		benchEnv, benchErr = workload.Setup(benchConfig(), dir)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

func benchPipeline(b *testing.B, run func(*workload.Env) (workload.Result, error)) {
	env := getEnv(b)
	if _, err := run(env); err != nil { // warmup (hot runs, as in the paper)
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := run(env)
		if err != nil {
			b.Fatal(err)
		}
		if res.TestRows == 0 {
			b.Fatal("pipeline classified no rows")
		}
	}
}

func BenchmarkFigure1_InDatabase(b *testing.B)   { benchPipeline(b, workload.RunInDatabase) }
func BenchmarkFigure1_NumpyBinary(b *testing.B)  { benchPipeline(b, workload.RunNumpy) }
func BenchmarkFigure1_HDF5Binary(b *testing.B)   { benchPipeline(b, workload.RunHDF5) }
func BenchmarkFigure1_CSV(b *testing.B)          { benchPipeline(b, workload.RunCSV) }
func BenchmarkFigure1_PostgresLike(b *testing.B) { benchPipeline(b, workload.RunPostgresLike) }
func BenchmarkFigure1_MySQLLike(b *testing.B)    { benchPipeline(b, workload.RunMySQLLike) }
func BenchmarkFigure1_SQLiteLike(b *testing.B)   { benchPipeline(b, workload.RunSQLiteLike) }

func BenchmarkE2ModelSerialization(b *testing.B) {
	env := getEnv(b)
	for _, trees := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("trees=%d", trees), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rows, err := workload.E2ModelSerialization(env, []int{trees})
				if err != nil {
					b.Fatal(err)
				}
				if rows[0].BlobBytes == 0 {
					b.Fatal("empty blob")
				}
			}
		})
	}
}

func BenchmarkE3ParallelUDF(b *testing.B) {
	env := getEnv(b)
	// Build the labeled table and model once.
	if _, err := workload.E3ParallelUDF(env, []int{1}); err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := workload.E3ParallelUDF(env, []int{workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkE4Ensemble(b *testing.B) {
	env := getEnv(b)
	for i := 0; i < b.N; i++ {
		res, err := workload.E4Ensemble(env)
		if err != nil {
			b.Fatal(err)
		}
		if res.Majority == 0 {
			b.Fatal("ensemble produced no accuracy")
		}
	}
}

func BenchmarkE5Protocols(b *testing.B) {
	env := getEnv(b)
	protos := []wire.Protocol{wire.Columnar, wire.BinaryRows, wire.TextRows}
	for _, proto := range protos {
		b.Run(proto.String(), func(b *testing.B) {
			c, err := wire.Dial(env.Addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab, err := c.Query(proto, "SELECT * FROM voters")
				if err != nil {
					b.Fatal(err)
				}
				if tab.NumRows() != env.Cfg.Voters {
					b.Fatal("short transfer")
				}
			}
		})
	}
	b.Run("row-cursor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tab, err := wire.RowIterate(env.ServerDB, "SELECT * FROM voters")
			if err != nil {
				b.Fatal(err)
			}
			if tab.NumRows() != env.Cfg.Voters {
				b.Fatal("short transfer")
			}
		}
	})
}

// ------------------------------------------------- micro ablations

func BenchmarkMicroHashJoin(b *testing.B) {
	env := getEnv(b)
	db := env.DB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := db.Query(`
			SELECT count(*) AS n FROM voters v
			JOIN precincts p ON v.precinct_id = p.precinct_id`)
		if err != nil {
			b.Fatal(err)
		}
		if tab.Column("n").Get(0).Int64() != int64(env.Cfg.Voters) {
			b.Fatal("wrong join cardinality")
		}
	}
}

func BenchmarkMicroAggregate(b *testing.B) {
	env := getEnv(b)
	db := env.DB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(
			"SELECT precinct_id, count(*) AS n, avg(f0) AS m FROM voters GROUP BY precinct_id"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMicroScanFilter(b *testing.B) {
	env := getEnv(b)
	db := env.DB
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT voter_id FROM voters WHERE f0 > 0.5"); err != nil {
			b.Fatal(err)
		}
	}
}

// ------------------------------------------- morsel-parallel scaling
//
// The parallel variants pin the engine's worker count and rerun the
// micro ablations, so the bench trajectory shows both the scaling
// curve (compare workers=1 against workers=N on a multi-core machine)
// and the allocation wins of the fixed-width key paths.

// benchParallelWorkers are the worker counts each parallel micro
// benchmark sweeps. workers=1 is the serial baseline.
var benchParallelWorkers = []int{1, 2, 4, 8}

func benchQueryParallel(b *testing.B, query string, check func(tab interface{ NumRows() int }) bool) {
	env := getEnv(b)
	db := env.DB
	defer db.SetParallelism(env.Cfg.Parallelism)
	for _, workers := range benchParallelWorkers {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			db.SetParallelism(workers)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab, err := db.Query(query)
				if err != nil {
					b.Fatal(err)
				}
				if check != nil && !check(tab) {
					b.Fatal("wrong result")
				}
			}
		})
	}
}

func BenchmarkMicroAggregateParallel(b *testing.B) {
	benchQueryParallel(b,
		"SELECT precinct_id, count(*) AS n, avg(f0) AS m FROM voters GROUP BY precinct_id",
		func(tab interface{ NumRows() int }) bool { return tab.NumRows() == benchConfig().Precincts })
}

func BenchmarkMicroHashJoinParallel(b *testing.B) {
	benchQueryParallel(b, `
		SELECT count(*) AS n FROM voters v
		JOIN precincts p ON v.precinct_id = p.precinct_id`,
		func(tab interface{ NumRows() int }) bool { return tab.NumRows() == 1 })
}

func BenchmarkMicroScanFilterParallel(b *testing.B) {
	benchQueryParallel(b, "SELECT voter_id FROM voters WHERE f0 > 0.5", nil)
}

func BenchmarkMicroModelMarshal(b *testing.B) {
	f := ml.NewRandomForest(16)
	n := 2000
	x0 := make([]float64, n)
	y := make([]int, n)
	for i := range x0 {
		x0[i] = float64(i%100) / 100
		y[i] = i % 2
	}
	if err := f.Fit([][]float64{x0}, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := ml.Marshal(f)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ml.Unmarshal(blob); err != nil {
			b.Fatal(err)
		}
	}
}

// benchPredictQuery runs the Listing-2 prediction query with the
// given predict function name (the cached variant is the paper's §5.1
// future work implemented).
func benchPredictQuery(b *testing.B, fn string) {
	env := getEnv(b)
	db := env.DB
	if !db.HasTable("rf_model") {
		if _, err := workload.RunInDatabase(env); err != nil {
			b.Fatal(err)
		}
	}
	query := fmt.Sprintf(`
		SELECT count(*) AS n FROM (
			SELECT %s(m.model, v.f0, v.f1, v.f2, v.f3, v.f4, v.f5) AS p
			FROM voters v, rf_model m) q
		WHERE q.p >= 0`, fn)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := db.Query(query)
		if err != nil {
			b.Fatal(err)
		}
		if tab.Column("n").Get(0).Int64() != int64(env.Cfg.Voters) {
			b.Fatal("wrong prediction count")
		}
	}
}

// BenchmarkMicroPredictUDF measures the steady-state cost of the
// paper's Listing 2 (model deserialized on every UDF invocation).
func BenchmarkMicroPredictUDF(b *testing.B) { benchPredictQuery(b, "predict") }

// BenchmarkMicroPredictUDFCached is the §5.1 extension: the model's
// in-memory snapshot is reused across invocations.
func BenchmarkMicroPredictUDFCached(b *testing.B) { benchPredictQuery(b, "predict_cached") }
