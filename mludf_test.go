package vexdb

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"vexdb/ml"
)

// trainKNNBlob fits a tiny KNN on a one-point training set derived
// from seed and returns its serialized form. KNN serialization stores
// the training data, so distinct seeds yield distinct valid blobs.
func trainKNNBlob(t testing.TB, seed int) []byte {
	t.Helper()
	m := ml.NewKNN(1)
	if err := m.Fit([][]float64{{float64(seed)}}, []int{seed % 3}); err != nil {
		t.Fatal(err)
	}
	blob, err := ml.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestModelCacheCollisionVerifiesBlob simulates a 64-bit hash
// collision: an entry is planted under blob B's key but holding blob
// A's digest and classifier. get(B) must detect the digest mismatch
// and deserialize B instead of serving A's classifier.
func TestModelCacheCollisionVerifiesBlob(t *testing.T) {
	blobA := trainKNNBlob(t, 1)
	blobB := trainKNNBlob(t, 2)
	c := newModelCache()
	clfA, err := c.get(blobA)
	if err != nil {
		t.Fatal(err)
	}
	// Plant A's entry under B's key, as a colliding hash would.
	keyB := modelKey{hash: fnv64a(blobB), size: len(blobB)}
	c.mu.Lock()
	c.entries[keyB] = &modelEntry{digest: sha256.Sum256(blobA), clf: clfA}
	c.mu.Unlock()

	clfB, err := c.get(blobB)
	if err != nil {
		t.Fatal(err)
	}
	// The two training sets predict different classes for their own
	// training point; a collision serving clfA would misclassify.
	got, err := clfB.Predict([][]float64{{2}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2%3 {
		t.Fatalf("collision served the wrong model: predicted %d, want %d", got[0], 2%3)
	}
	// The slot now holds B (latest-deserialized wins); a repeat get(B)
	// must hit and return the same classifier instance.
	again, err := c.get(blobB)
	if err != nil {
		t.Fatal(err)
	}
	if again != clfB {
		t.Fatal("verified entry was not cached")
	}
}

// TestModelCacheSingleEntryEviction: inserting past the capacity must
// evict exactly one entry, not clear the whole cache.
func TestModelCacheSingleEntryEviction(t *testing.T) {
	c := newModelCache()
	blobs := make([][]byte, modelCacheMaxEntries+1)
	for i := range blobs {
		blobs[i] = trainKNNBlob(t, i)
		if _, err := c.get(blobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	if n != modelCacheMaxEntries {
		t.Fatalf("cache holds %d entries after overflow, want %d", n, modelCacheMaxEntries)
	}
}

// TestModelCacheHitReturnsSameInstance: the §5.1 snapshot cache must
// avoid re-deserialization on repeated identical blobs.
func TestModelCacheHitReturnsSameInstance(t *testing.T) {
	c := newModelCache()
	blob := trainKNNBlob(t, 7)
	a, err := c.get(blob)
	if err != nil {
		t.Fatal(err)
	}
	// A fresh slice with equal bytes must hit the same entry.
	b, err := c.get(append([]byte(nil), blob...))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical blob bytes missed the cache")
	}
}

// TestPredictCachedEndToEnd drives predict_cached through SQL so the
// verified cache sits on the real PREDICT path.
func TestPredictCachedEndToEnd(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE d (f0 DOUBLE, f1 DOUBLE, label INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		cls := 0
		if i%2 == 1 {
			cls = 1
		}
		if _, err := db.Exec(fmt.Sprintf(
			"INSERT INTO d VALUES (%d.0, %d.5, %d)", i%7, (i*3)%5, cls)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.ExecScript(`
		CREATE TABLE models AS SELECT model FROM train_tree((SELECT f0, f1, label FROM d), 6)`); err != nil {
		t.Fatal(err)
	}
	q := `SELECT count(*) AS n FROM d, models WHERE predict_cached(model, f0, f1) >= 0`
	tab, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("n").Get(0).Int64() != 40 {
		t.Fatalf("predict_cached covered %d rows, want 40", tab.Column("n").Get(0).Int64())
	}
	// Second run hits the cache; results must be identical.
	tab2, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Column("n").Get(0).Int64() != 40 {
		t.Fatal("cached run diverged")
	}
}
