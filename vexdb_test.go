package vexdb

import (
	"fmt"
	"strings"
	"testing"
)

// buildLabeled populates a labeled 2-feature table mirroring the
// paper's training input: separable blobs.
func buildLabeled(t *testing.T, db *DB, name string, n int) {
	t.Helper()
	if _, err := db.Exec(fmt.Sprintf(
		"CREATE TABLE %s (id BIGINT, f0 DOUBLE, f1 DOUBLE, label INTEGER)", name)); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", name)
	for i := 0; i < n; i++ {
		cls := i % 2
		off := float64(cls) * 4
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %f, %f, %d)", i,
			off+float64(i%7)*0.1, off+float64(i%5)*0.1, cls)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
}

func TestTrainPredictInSQL(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "train_set", 200)

	// Listing 1: train inside the database, store the model in a table.
	if _, err := db.Exec(`CREATE TABLE models AS
		SELECT * FROM train_rf((SELECT f0, f1, label FROM train_set), 8, 6, 42)`); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Query("SELECT algo, n_features, trained_rows FROM models")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("algo").Get(0).Str() != "random_forest" {
		t.Fatalf("algo = %v", tab.Column("algo").Get(0))
	}
	if tab.Column("n_features").Get(0).Int64() != 2 || tab.Column("trained_rows").Get(0).Int64() != 200 {
		t.Fatal("metadata wrong")
	}

	// Listing 2: classify with the stored model via a cross join.
	res, err := db.Query(`
		SELECT t.label AS truth, predict(m.model, t.f0, t.f1) AS pred
		FROM train_set t, models m`)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := 0; i < res.NumRows(); i++ {
		if res.Column("truth").Get(i).Int64() == res.Column("pred").Get(i).Int64() {
			correct++
		}
	}
	if acc := float64(correct) / float64(res.NumRows()); acc < 0.95 {
		t.Fatalf("in-SQL accuracy %.3f", acc)
	}
}

func TestPredictConfidence(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "d", 100)
	if _, err := db.Exec(`CREATE TABLE m AS
		SELECT * FROM train_nb((SELECT f0, f1, label FROM d))`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`
		SELECT predict_confidence(m.model, d.f0, d.f1) AS conf FROM d, m`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < res.NumRows(); i++ {
		c := res.Column("conf").Get(i).Float64()
		if c < 0.5 || c > 1.0 {
			t.Fatalf("confidence %v out of [0.5, 1]", c)
		}
	}
}

func TestAllTrainers(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "d", 120)
	for _, call := range []string{
		"train_rf((SELECT f0, f1, label FROM d), 4)",
		"train_tree((SELECT f0, f1, label FROM d), 8)",
		"train_logreg((SELECT f0, f1, label FROM d), 100)",
		"train_nb((SELECT f0, f1, label FROM d))",
	} {
		tab, err := db.Query("SELECT algo FROM " + call)
		if err != nil {
			t.Fatalf("%s: %v", call, err)
		}
		if tab.NumRows() != 1 {
			t.Fatalf("%s: %d rows", call, tab.NumRows())
		}
	}
}

func TestWeightedLabel(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE p (id BIGINT, dem DOUBLE, rep DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO p VALUES ")
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, 80.0, 20.0)", i)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	tab, err := db.Query(`
		SELECT sum(CAST(weighted_label(id, dem, rep, 7) AS BIGINT)) AS ones, count(*) AS n FROM p`)
	if err != nil {
		t.Fatal(err)
	}
	ones := float64(tab.Column("ones").Get(0).Int64())
	n := float64(tab.Column("n").Get(0).Int64())
	// 20% expected class-1 rate; allow generous tolerance.
	rate := ones / n
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("class-1 rate %.3f, want ~0.20", rate)
	}
	// Deterministic: same seed, same labels.
	a, err := db.Query("SELECT weighted_label(id, dem, rep, 7) AS l FROM p ORDER BY id LIMIT 50")
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Query("SELECT weighted_label(id, dem, rep, 7) AS l FROM p ORDER BY id LIMIT 50")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if a.Column("l").Get(i).Int64() != b.Column("l").Get(i).Int64() {
			t.Fatal("weighted_label not deterministic")
		}
	}
}

func TestParallelPredictMatchesSerial(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "d", 500)
	if _, err := db.Exec(`CREATE TABLE m AS
		SELECT * FROM train_tree((SELECT f0, f1, label FROM d), 8)`); err != nil {
		t.Fatal(err)
	}
	q := "SELECT d.id AS id, predict(m.model, d.f0, d.f1) AS p FROM d, m ORDER BY id"
	db.SetParallelism(1)
	serial, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	db.SetParallelism(8)
	parallel, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumRows() != parallel.NumRows() {
		t.Fatal("row counts differ")
	}
	for i := 0; i < serial.NumRows(); i++ {
		if serial.Column("p").Get(i).Int64() != parallel.Column("p").Get(i).Int64() {
			t.Fatalf("row %d differs between serial and parallel", i)
		}
	}
}

func TestOpenDirRoundTrip(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "d", 50)
	dir := t.TempDir()
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumRows("d") != 50 {
		t.Fatalf("rows = %d", db2.NumRows("d"))
	}
	if !db2.HasTable("d") || db2.NumRows("zzz") != -1 {
		t.Fatal("table metadata helpers")
	}
}

func TestModelStoredBlobRoundTripsThroughDisk(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "d", 100)
	if _, err := db.Exec(`CREATE TABLE m AS
		SELECT * FROM train_rf((SELECT f0, f1, label FROM d), 4, 6, 1)`); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query(`
		SELECT count(*) AS n FROM d, m
		WHERE predict(m.model, d.f0, d.f1) = d.label`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Column("n").Get(0).Int64() < 95 {
		t.Fatalf("reloaded model accuracy too low: %v/100", res.Column("n").Get(0))
	}
}

func TestPredictCachedMatchesUncached(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "d", 300)
	if _, err := db.Exec(`CREATE TABLE m AS
		SELECT * FROM train_rf((SELECT f0, f1, label FROM d), 8, 8, 3)`); err != nil {
		t.Fatal(err)
	}
	plain, err := db.Query("SELECT d.id AS id, predict(m.model, d.f0, d.f1) AS p FROM d, m ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	// Run the cached variant twice: first populates, second hits.
	for round := 0; round < 2; round++ {
		cached, err := db.Query("SELECT d.id AS id, predict_cached(m.model, d.f0, d.f1) AS p FROM d, m ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < plain.NumRows(); i++ {
			if plain.Column("p").Get(i).Int64() != cached.Column("p").Get(i).Int64() {
				t.Fatalf("round %d row %d: cached prediction differs", round, i)
			}
		}
	}
}

func TestModelCacheEviction(t *testing.T) {
	c := newModelCache()
	// Fill beyond capacity with distinct blobs; each must still
	// deserialize correctly after eviction resets.
	db := Open()
	buildLabeled(t, db, "d", 60)
	var blobs [][]byte
	for i := 0; i < modelCacheMaxEntries+3; i++ {
		tab, err := db.Query(fmt.Sprintf(
			"SELECT model FROM train_tree((SELECT f0, f1, label FROM d), %d)", 1+i%6))
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, tab.Column("model").Get(0).Bytes())
	}
	for _, b := range blobs {
		if _, err := c.get(b); err != nil {
			t.Fatal(err)
		}
	}
	// Re-fetch: hits or clean re-deserialization, never an error.
	for _, b := range blobs {
		clf, err := c.get(b)
		if err != nil || clf == nil {
			t.Fatal(err)
		}
	}
	if _, err := c.get([]byte("not a model")); err == nil {
		t.Fatal("garbage blob must fail")
	}
}

func TestPredictErrors(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "d", 20)
	if _, err := db.Query("SELECT predict(f0) FROM d"); err == nil {
		t.Error("predict with one arg should fail")
	}
	if _, err := db.Query("SELECT predict(f0, f1) FROM d"); err == nil {
		t.Error("predict with non-blob model should fail")
	}
	if _, err := db.Query("SELECT * FROM train_rf((SELECT f0 FROM d))"); err == nil {
		t.Error("training with a single column should fail")
	}
	if _, err := db.Query("SELECT * FROM train_rf(5)"); err == nil {
		t.Error("training without a relation should fail")
	}
}

func TestQueryStreamRows(t *testing.T) {
	db := Open()
	buildLabeled(t, db, "pts", 5000)
	db.SetParallelism(4)

	// Row-at-a-time iteration matches the materialized result.
	want, err := db.Query("SELECT id, f0 FROM pts WHERE label = 1")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryStream("SELECT id, f0 FROM pts WHERE label = 1")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); len(got) != 2 || got[0] != "id" || got[1] != "f0" {
		t.Fatalf("columns = %v", got)
	}
	n := 0
	for rows.Next() {
		if rows.Value(0).Int64() != want.Cols[0].Get(n).Int64() {
			t.Fatalf("row %d id mismatch", n)
		}
		n++
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	if n != want.NumRows() {
		t.Fatalf("streamed %d rows, want %d", n, want.NumRows())
	}

	// Chunk-at-a-time after a partial row read returns the remainder.
	rows2, err := db.QueryStream("SELECT id FROM pts")
	if err != nil {
		t.Fatal(err)
	}
	defer rows2.Close()
	for i := 0; i < 3; i++ {
		if !rows2.Next() {
			t.Fatal("short result")
		}
	}
	total := 3
	for {
		tab, err := rows2.NextTable()
		if err != nil {
			t.Fatal(err)
		}
		if tab == nil {
			break
		}
		total += tab.NumRows()
	}
	if total != 5000 {
		t.Fatalf("row+chunk iteration covered %d rows, want 5000", total)
	}

	// Row-less statements report RowsAffected.
	aff, err := db.QueryStream("INSERT INTO pts VALUES (9999, 0, 0, 0)")
	if err != nil {
		t.Fatal(err)
	}
	defer aff.Close()
	if aff.HasRows() || aff.RowsAffected() != 1 {
		t.Fatalf("HasRows=%v affected=%d", aff.HasRows(), aff.RowsAffected())
	}

	// Early close stops the stream without error.
	early, err := db.QueryStream("SELECT id FROM pts")
	if err != nil {
		t.Fatal(err)
	}
	if !early.Next() {
		t.Fatal("no first row")
	}
	if err := early.Close(); err != nil {
		t.Fatal(err)
	}
}
