// Package plan turns parsed SQL into bound logical plans: column
// references are resolved to positions, types are inferred, equi-join
// keys are extracted, and aggregates are split from projections. The
// executor consumes these plans directly.
package plan

import (
	"fmt"

	"vexdb/internal/core"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// Expr is a bound, typed scalar expression evaluated over chunks.
type Expr interface {
	// Type returns the expression's result type.
	Type() vector.Type
}

// ColRef reads column Idx of the input chunk.
type ColRef struct {
	Idx  int
	Typ  vector.Type
	Name string // for diagnostics and result naming
}

// Const is a constant value.
type Const struct {
	Val vector.Value
	Typ vector.Type
}

// BinOp applies a binary operator.
type BinOp struct {
	Op    sql.BinaryOp
	Left  Expr
	Right Expr
	Typ   vector.Type
}

// Not is boolean negation (SQL three-valued).
type Not struct {
	Operand Expr
}

// Neg is arithmetic negation.
type Neg struct {
	Operand Expr
}

// IsNull tests for NULL.
type IsNull struct {
	Operand Expr
	Negate  bool
}

// Cast converts to a target type.
type Cast struct {
	Operand Expr
	To      vector.Type
}

// When is one CASE branch.
type When struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression (simple CASE is desugared during
// binding).
type Case struct {
	Whens []When
	Else  Expr // nil means NULL
	Typ   vector.Type
}

// Call invokes a registered scalar UDF.
type Call struct {
	Fn   *core.ScalarFunc
	Args []Expr
	Typ  vector.Type
}

// In tests membership in a literal list.
type In struct {
	Operand Expr
	List    []Expr
	Negate  bool
}

func (e *ColRef) Type() vector.Type { return e.Typ }
func (e *Const) Type() vector.Type  { return e.Typ }
func (e *BinOp) Type() vector.Type  { return e.Typ }
func (e *Not) Type() vector.Type    { return vector.Bool }
func (e *Neg) Type() vector.Type    { return e.Operand.Type() }
func (e *IsNull) Type() vector.Type { return vector.Bool }
func (e *Cast) Type() vector.Type   { return e.To }
func (e *Case) Type() vector.Type   { return e.Typ }
func (e *Call) Type() vector.Type   { return e.Typ }
func (e *In) Type() vector.Type     { return vector.Bool }

// EachCall walks e depth-first and invokes fn for every UDF call it
// contains. fn returning false stops the walk; EachCall reports
// whether the walk ran to completion. The executor uses it both to
// detect UDF-bearing expressions and to decide whether a projection's
// calls are all Parallel (and therefore safe for the streaming,
// morsel-parallel ML operator).
func EachCall(e Expr, fn func(*Call) bool) bool {
	switch x := e.(type) {
	case *Call:
		if !fn(x) {
			return false
		}
		for _, a := range x.Args {
			if !EachCall(a, fn) {
				return false
			}
		}
	case *BinOp:
		return EachCall(x.Left, fn) && EachCall(x.Right, fn)
	case *Neg:
		return EachCall(x.Operand, fn)
	case *Not:
		return EachCall(x.Operand, fn)
	case *IsNull:
		return EachCall(x.Operand, fn)
	case *Cast:
		return EachCall(x.Operand, fn)
	case *Case:
		for _, w := range x.Whens {
			if !EachCall(w.Cond, fn) || !EachCall(w.Then, fn) {
				return false
			}
		}
		if x.Else != nil {
			return EachCall(x.Else, fn)
		}
	case *In:
		if !EachCall(x.Operand, fn) {
			return false
		}
		for _, l := range x.List {
			if !EachCall(l, fn) {
				return false
			}
		}
	}
	return true
}

// EachColRef walks e depth-first and invokes fn on every column
// reference it contains.
func EachColRef(e Expr, fn func(*ColRef)) {
	switch x := e.(type) {
	case *ColRef:
		fn(x)
	case *BinOp:
		EachColRef(x.Left, fn)
		EachColRef(x.Right, fn)
	case *Neg:
		EachColRef(x.Operand, fn)
	case *Not:
		EachColRef(x.Operand, fn)
	case *IsNull:
		EachColRef(x.Operand, fn)
	case *Cast:
		EachColRef(x.Operand, fn)
	case *Case:
		for _, w := range x.Whens {
			EachColRef(w.Cond, fn)
			EachColRef(w.Then, fn)
		}
		if x.Else != nil {
			EachColRef(x.Else, fn)
		}
	case *Call:
		for _, a := range x.Args {
			EachColRef(a, fn)
		}
	case *In:
		EachColRef(x.Operand, fn)
		for _, l := range x.List {
			EachColRef(l, fn)
		}
	}
}

// MapColRefs returns a copy of e with every column reference replaced
// by f's result. Interior nodes are rebuilt (leaves other than ColRef
// are shared), so the input expression is never mutated — the
// cost-based planner uses this to retarget predicates at rebuilt join
// shapes while the original tree stays intact.
func MapColRefs(e Expr, f func(*ColRef) Expr) Expr {
	switch x := e.(type) {
	case *ColRef:
		return f(x)
	case *BinOp:
		return &BinOp{Op: x.Op, Left: MapColRefs(x.Left, f), Right: MapColRefs(x.Right, f), Typ: x.Typ}
	case *Neg:
		return &Neg{Operand: MapColRefs(x.Operand, f)}
	case *Not:
		return &Not{Operand: MapColRefs(x.Operand, f)}
	case *IsNull:
		return &IsNull{Operand: MapColRefs(x.Operand, f), Negate: x.Negate}
	case *Cast:
		return &Cast{Operand: MapColRefs(x.Operand, f), To: x.To}
	case *Case:
		out := &Case{Typ: x.Typ}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, When{Cond: MapColRefs(w.Cond, f), Then: MapColRefs(w.Then, f)})
		}
		if x.Else != nil {
			out.Else = MapColRefs(x.Else, f)
		}
		return out
	case *Call:
		out := &Call{Fn: x.Fn, Typ: x.Typ}
		for _, a := range x.Args {
			out.Args = append(out.Args, MapColRefs(a, f))
		}
		return out
	case *In:
		out := &In{Operand: MapColRefs(x.Operand, f), Negate: x.Negate}
		for _, l := range x.List {
			out.List = append(out.List, MapColRefs(l, f))
		}
		return out
	}
	return e
}

// binOpType infers the result type of a binary operator application.
func binOpType(op sql.BinaryOp, l, r vector.Type) (vector.Type, error) {
	switch op {
	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpMod:
		t, ok := vector.CommonNumeric(l, r)
		if !ok {
			return vector.Invalid, fmt.Errorf("operator %s requires numeric operands, got %s and %s", op, l, r)
		}
		return t, nil
	case sql.OpDiv:
		// Division always yields DOUBLE (simplifies analytical SQL; the
		// workloads in this repo never need integer division).
		if !l.IsNumeric() || !r.IsNumeric() {
			return vector.Invalid, fmt.Errorf("operator / requires numeric operands, got %s and %s", l, r)
		}
		return vector.Float64, nil
	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		comparable := (l.IsNumeric() && r.IsNumeric()) || l == r
		if !comparable && l != vector.Invalid && r != vector.Invalid {
			return vector.Invalid, fmt.Errorf("cannot compare %s with %s", l, r)
		}
		return vector.Bool, nil
	case sql.OpAnd, sql.OpOr:
		return vector.Bool, nil
	case sql.OpConcat:
		return vector.String, nil
	}
	return vector.Invalid, fmt.Errorf("unknown operator %s", op)
}

// ExprString renders a bound expression for plan display and result
// column naming.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *ColRef:
		if x.Name != "" {
			return x.Name
		}
		return fmt.Sprintf("#%d", x.Idx)
	case *Const:
		return x.Val.String()
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.Left), x.Op, ExprString(x.Right))
	case *Not:
		return fmt.Sprintf("NOT %s", ExprString(x.Operand))
	case *Neg:
		return fmt.Sprintf("-%s", ExprString(x.Operand))
	case *IsNull:
		if x.Negate {
			return fmt.Sprintf("%s IS NOT NULL", ExprString(x.Operand))
		}
		return fmt.Sprintf("%s IS NULL", ExprString(x.Operand))
	case *Cast:
		return fmt.Sprintf("CAST(%s AS %s)", ExprString(x.Operand), x.To)
	case *Case:
		return "CASE"
	case *Call:
		return x.Fn.Name + "(...)"
	case *In:
		return fmt.Sprintf("%s IN (...)", ExprString(x.Operand))
	}
	return "?"
}
