package plan

import (
	"fmt"
	"strings"

	"vexdb/internal/catalog"
	"vexdb/internal/core"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// Binder resolves a parsed SELECT against a catalog and UDF registry,
// producing a bound plan.
type Binder struct {
	Catalog  *catalog.Catalog
	Registry *core.Registry
}

// NewBinder returns a binder over the given catalog and registry.
func NewBinder(cat *catalog.Catalog, reg *core.Registry) *Binder {
	return &Binder{Catalog: cat, Registry: reg}
}

// scope maps visible (qualifier, column) pairs to chunk positions.
type scope struct {
	cols []scopeCol
}

type scopeCol struct {
	qual string // table alias, lower-cased; "" when anonymous
	name string // column name as stored
	typ  vector.Type
}

func (s *scope) add(qual, name string, typ vector.Type) {
	s.cols = append(s.cols, scopeCol{qual: strings.ToLower(qual), name: name, typ: typ})
}

// resolve finds the position of a (possibly qualified) column name.
func (s *scope) resolve(qual, name string) (int, vector.Type, error) {
	qual = strings.ToLower(qual)
	found := -1
	var typ vector.Type
	for i, c := range s.cols {
		if qual != "" && c.qual != qual {
			continue
		}
		if strings.EqualFold(c.name, name) {
			if found >= 0 {
				return 0, vector.Invalid, fmt.Errorf("plan: ambiguous column %q", name)
			}
			found = i
			typ = c.typ
		}
	}
	if found < 0 {
		if qual != "" {
			return 0, vector.Invalid, fmt.Errorf("plan: column %q.%q not found", qual, name)
		}
		return 0, vector.Invalid, fmt.Errorf("plan: column %q not found", name)
	}
	return found, typ, nil
}

// BindSelect binds a SELECT statement into a plan node.
func (b *Binder) BindSelect(sel *sql.Select) (Node, error) {
	node, sc, err := b.bindFromClause(sel)
	if err != nil {
		return nil, err
	}

	if sel.Where != nil {
		pred, err := b.bindExpr(sel.Where, sc, false)
		if err != nil {
			return nil, fmt.Errorf("in WHERE: %w", err)
		}
		// Single-table scans get the scan-eligible conjuncts pushed
		// down for zone-map pruning; under joins each conjunct routes
		// to the scan owning its column. The filter itself is
		// untouched either way.
		if scan, ok := node.(*Scan); ok {
			scan.Preds = extractScanPreds(pred, nil)
		} else {
			pushJoinScanPreds(node, pred)
		}
		node = &Filter{Pred: pred, Child: node}
	}

	items, err := b.expandStars(sel.Items, sc)
	if err != nil {
		return nil, err
	}

	needAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	if !needAgg {
		for _, it := range items {
			if sql.IsAggregate(it.Expr) {
				needAgg = true
				break
			}
		}
	}

	var projNode Node
	var outNames []string
	if needAgg {
		projNode, outNames, err = b.bindAggregate(sel, items, node, sc)
		if err != nil {
			return nil, err
		}
	} else {
		exprs := make([]Expr, len(items))
		outNames = make([]string, len(items))
		for i, it := range items {
			e, err := b.bindExpr(it.Expr, sc, false)
			if err != nil {
				return nil, err
			}
			exprs[i] = e
			outNames[i] = itemName(it, e)
		}
		projNode = &Project{Exprs: exprs, Names: outNames, Child: node}
	}
	node = projNode

	if sel.Distinct {
		node = &Distinct{Child: node}
	}

	if sel.Union != nil {
		right, err := b.BindSelect(sel.Union)
		if err != nil {
			return nil, err
		}
		if len(right.Schema()) != len(node.Schema()) {
			return nil, fmt.Errorf("plan: UNION arms have %d and %d columns", len(node.Schema()), len(right.Schema()))
		}
		return &Union{Left: node, Right: right, All: sel.UnionAll}, nil
	}

	if len(sel.OrderBy) > 0 {
		keys, hidden, err := b.bindOrderByHidden(sel.OrderBy, node, outNames, sc, needAgg || sel.Distinct)
		if err != nil {
			return nil, err
		}
		node = &Sort{Keys: keys, Child: node}
		if hidden > 0 {
			// Trim the hidden sort columns appended to the projection.
			schema := node.Schema()
			keep := len(schema) - hidden
			exprs := make([]Expr, keep)
			names := make([]string, keep)
			for i := 0; i < keep; i++ {
				exprs[i] = &ColRef{Idx: i, Typ: schema[i].Type, Name: schema[i].Name}
				names[i] = schema[i].Name
			}
			node = &Project{Exprs: exprs, Names: names, Child: node}
		}
	}

	if sel.Limit != nil || sel.Offset != nil {
		count := int64(-1)
		offset := int64(0)
		if sel.Limit != nil {
			v, err := b.constInt(sel.Limit)
			if err != nil {
				return nil, fmt.Errorf("in LIMIT: %w", err)
			}
			count = v
		}
		if sel.Offset != nil {
			v, err := b.constInt(sel.Offset)
			if err != nil {
				return nil, fmt.Errorf("in OFFSET: %w", err)
			}
			offset = v
		}
		// The executor treats a negative OFFSET as "skip nothing";
		// clamp before deriving the hint so the merge never stops
		// short of the rows the Limit operator will emit.
		hintOff := offset
		if hintOff < 0 {
			hintOff = 0
		}
		if count >= 0 && hintOff+count > 0 {
			// Push the bound into a directly enclosed Sort (possibly
			// behind the hidden-column trim projection): any consumer
			// observes at most offset+count ordered rows, so a
			// parallel merge may stop early. LIMIT 0 needs no hint —
			// the Limit node already emits nothing.
			pushSortLimit(node, hintOff+count)
		}
		node = &Limit{Count: count, Offset: offset, Child: node}
	}
	return node, nil
}

// pushSortLimit annotates the Sort directly under node (through 1:1
// row-preserving projections only) with the row bound an enclosing
// LIMIT imposes.
func pushSortLimit(node Node, limit int64) {
	for {
		switch n := node.(type) {
		case *Sort:
			if n.Limit <= 0 || limit < n.Limit {
				n.Limit = limit
			}
			return
		case *Project:
			node = n.Child
		default:
			return
		}
	}
}

func (b *Binder) bindFromClause(sel *sql.Select) (Node, *scope, error) {
	if sel.From == nil {
		// FROM-less SELECT: a single dummy row with an empty scope.
		dummy := vector.FromInt32s([]int32{0})
		tab, err := vector.NewTable([]string{"__dummy"}, []*vector.Vector{dummy})
		if err != nil {
			return nil, nil, err
		}
		m := &Material{Data: tab, Schem: catalog.Schema{{Name: "__dummy", Type: vector.Int32}}}
		return m, &scope{}, nil
	}
	node, sc, err := b.bindTableRef(sel.From)
	if err != nil {
		return nil, nil, err
	}
	for _, j := range sel.Joins {
		rnode, rsc, err := b.bindTableRef(j.Src)
		if err != nil {
			return nil, nil, err
		}
		combined := &scope{cols: append(append([]scopeCol{}, sc.cols...), rsc.cols...)}
		join := &HashJoin{Kind: j.Kind, Left: node, Right: rnode}
		if j.On != nil {
			conjuncts := splitAnd(j.On)
			var extras []sql.Expr
			for _, c := range conjuncts {
				lk, rk, ok := b.tryBindEquiKey(c, sc, rsc)
				if ok {
					join.LeftKeys = append(join.LeftKeys, lk)
					join.RightKeys = append(join.RightKeys, rk)
					continue
				}
				extras = append(extras, c)
			}
			if len(extras) > 0 {
				pred, err := b.bindExpr(joinAnd(extras), combined, false)
				if err != nil {
					return nil, nil, fmt.Errorf("in ON: %w", err)
				}
				join.Extra = pred
			}
		}
		node = join
		sc = combined
	}
	return node, sc, nil
}

func splitAnd(e sql.Expr) []sql.Expr {
	if be, ok := e.(*sql.BinaryExpr); ok && be.Op == sql.OpAnd {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sql.Expr{e}
}

func joinAnd(es []sql.Expr) sql.Expr {
	out := es[0]
	for _, e := range es[1:] {
		out = &sql.BinaryExpr{Op: sql.OpAnd, Left: out, Right: e}
	}
	return out
}

// tryBindEquiKey recognizes conjuncts of the form l = r where one side
// binds entirely in the left scope and the other in the right scope.
func (b *Binder) tryBindEquiKey(c sql.Expr, left, right *scope) (Expr, Expr, bool) {
	be, ok := c.(*sql.BinaryExpr)
	if !ok || be.Op != sql.OpEq {
		return nil, nil, false
	}
	if lk, err := b.bindExpr(be.Left, left, false); err == nil {
		if rk, err := b.bindExpr(be.Right, right, false); err == nil {
			return lk, rk, true
		}
	}
	if lk, err := b.bindExpr(be.Right, left, false); err == nil {
		if rk, err := b.bindExpr(be.Left, right, false); err == nil {
			return lk, rk, true
		}
	}
	return nil, nil, false
}

func (b *Binder) bindTableRef(ref sql.TableRef) (Node, *scope, error) {
	switch r := ref.(type) {
	case *sql.BaseTable:
		tab, err := b.Catalog.Table(r.Name)
		if err != nil {
			return nil, nil, err
		}
		qual := r.Alias
		if qual == "" {
			qual = r.Name
		}
		sc := &scope{}
		for _, c := range tab.Schema {
			sc.add(qual, c.Name, c.Type)
		}
		return &Scan{Table: tab}, sc, nil
	case *sql.SubqueryTable:
		node, err := b.BindSelect(r.Query)
		if err != nil {
			return nil, nil, err
		}
		sc := &scope{}
		for _, c := range node.Schema() {
			sc.add(r.Alias, c.Name, c.Type)
		}
		return node, sc, nil
	case *sql.TableFunc:
		fn, ok := b.Registry.Table(r.Name)
		if !ok {
			return nil, nil, fmt.Errorf("plan: table function %q is not registered", r.Name)
		}
		tfs := &TableFuncScan{Fn: fn}
		for i, a := range r.Args {
			if a.Query != nil {
				sub, err := b.BindSelect(a.Query)
				if err != nil {
					return nil, nil, fmt.Errorf("argument %d of %s: %w", i+1, r.Name, err)
				}
				tfs.Args = append(tfs.Args, FuncArg{Sub: sub})
				continue
			}
			ce, err := b.bindExpr(a.Expr, &scope{}, false)
			if err != nil {
				return nil, nil, fmt.Errorf("argument %d of %s must be constant: %w", i+1, r.Name, err)
			}
			tfs.Args = append(tfs.Args, FuncArg{ConstExpr: ce})
		}
		qual := r.Alias
		if qual == "" {
			qual = r.Name
		}
		sc := &scope{}
		for _, c := range fn.Columns {
			sc.add(qual, c.Name, c.Type)
		}
		return tfs, sc, nil
	}
	return nil, nil, fmt.Errorf("plan: unsupported table reference %T", ref)
}

func (b *Binder) expandStars(items []sql.SelectItem, sc *scope) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		matched := false
		for _, c := range sc.cols {
			if it.StarTable != "" && c.qual != strings.ToLower(it.StarTable) {
				continue
			}
			matched = true
			ref := &sql.ColumnRef{Name: c.name}
			if c.qual != "" {
				ref.Table = c.qual
			}
			out = append(out, sql.SelectItem{Expr: ref})
		}
		if !matched {
			if it.StarTable != "" {
				return nil, fmt.Errorf("plan: unknown table %q in %s.*", it.StarTable, it.StarTable)
			}
			return nil, fmt.Errorf("plan: SELECT * with no input columns")
		}
	}
	return out, nil
}

func itemName(it sql.SelectItem, bound Expr) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sql.ColumnRef); ok {
		return cr.Name
	}
	return ExprString(bound)
}

func (b *Binder) constInt(e sql.Expr) (int64, error) {
	lit, ok := e.(*sql.Literal)
	if !ok || lit.Value.Type() != vector.Int64 {
		return 0, fmt.Errorf("expected integer literal")
	}
	return lit.Value.Int64(), nil
}

// bindExpr binds a scalar expression against a scope. allowAgg permits
// aggregate function calls (only used inside bindAggregate's argument
// binding, where they are handled separately).
func (b *Binder) bindExpr(e sql.Expr, sc *scope, allowAgg bool) (Expr, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return &Const{Val: x.Value, Typ: literalType(x.Value)}, nil
	case *sql.ColumnRef:
		idx, typ, err := sc.resolve(x.Table, x.Name)
		if err != nil {
			return nil, err
		}
		return &ColRef{Idx: idx, Typ: typ, Name: x.Name}, nil
	case *sql.BinaryExpr:
		l, err := b.bindExpr(x.Left, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		r, err := b.bindExpr(x.Right, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		t, err := binOpType(x.Op, l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: x.Op, Left: l, Right: r, Typ: t}, nil
	case *sql.UnaryExpr:
		op, err := b.bindExpr(x.Operand, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		if x.Neg {
			if !op.Type().IsNumeric() {
				return nil, fmt.Errorf("plan: unary minus on %s", op.Type())
			}
			return &Neg{Operand: op}, nil
		}
		return &Not{Operand: op}, nil
	case *sql.IsNullExpr:
		op, err := b.bindExpr(x.Operand, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return &IsNull{Operand: op, Negate: x.Negate}, nil
	case *sql.CastExpr:
		op, err := b.bindExpr(x.Operand, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		return &Cast{Operand: op, To: x.To}, nil
	case *sql.InExpr:
		op, err := b.bindExpr(x.Operand, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		list := make([]Expr, len(x.List))
		for i, le := range x.List {
			bl, err := b.bindExpr(le, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			list[i] = bl
		}
		return &In{Operand: op, List: list, Negate: x.Negate}, nil
	case *sql.CaseExpr:
		return b.bindCase(x, sc, allowAgg)
	case *sql.FuncCall:
		if sql.AggregateNames[x.Name] {
			return nil, fmt.Errorf("plan: aggregate %s not allowed here", x.Name)
		}
		fn, ok := b.Registry.Scalar(x.Name)
		if !ok {
			return nil, fmt.Errorf("plan: function %q is not registered", x.Name)
		}
		if fn.Arity >= 0 && fn.Arity != len(x.Args) {
			return nil, fmt.Errorf("plan: function %s expects %d arguments, got %d", x.Name, fn.Arity, len(x.Args))
		}
		args := make([]Expr, len(x.Args))
		types := make([]vector.Type, len(x.Args))
		for i, a := range x.Args {
			ba, err := b.bindExpr(a, sc, allowAgg)
			if err != nil {
				return nil, err
			}
			args[i] = ba
			types[i] = ba.Type()
		}
		rt, err := fn.ReturnType(types)
		if err != nil {
			return nil, fmt.Errorf("plan: function %s: %w", x.Name, err)
		}
		return &Call{Fn: fn, Args: args, Typ: rt}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T", e)
}

func (b *Binder) bindCase(x *sql.CaseExpr, sc *scope, allowAgg bool) (Expr, error) {
	// Desugar simple CASE (CASE op WHEN v ...) into searched CASE.
	whens := x.Whens
	if x.Operand != nil {
		whens = make([]sql.WhenClause, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = sql.WhenClause{
				Cond: &sql.BinaryExpr{Op: sql.OpEq, Left: x.Operand, Right: w.Cond},
				Then: w.Then,
			}
		}
	}
	out := &Case{}
	var resultType vector.Type
	for _, w := range whens {
		cond, err := b.bindExpr(w.Cond, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		then, err := b.bindExpr(w.Then, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		resultType = mergeCaseType(resultType, then.Type())
		out.Whens = append(out.Whens, When{Cond: cond, Then: then})
	}
	if x.Else != nil {
		els, err := b.bindExpr(x.Else, sc, allowAgg)
		if err != nil {
			return nil, err
		}
		resultType = mergeCaseType(resultType, els.Type())
		out.Else = els
	}
	if resultType == vector.Invalid {
		resultType = vector.String
	}
	out.Typ = resultType
	return out, nil
}

func mergeCaseType(acc, t vector.Type) vector.Type {
	if acc == vector.Invalid {
		return t
	}
	if acc == t {
		return acc
	}
	if common, ok := vector.CommonNumeric(acc, t); ok {
		return common
	}
	return acc
}

func literalType(v vector.Value) vector.Type {
	if v.IsNull() {
		return vector.Invalid
	}
	return v.Type()
}

// extractScanPreds collects WHERE conjuncts of the form
// `col <cmp> const` (or the flipped `const <cmp> col`) that a scan
// can evaluate against segment zone maps. Disjunctions, NULL
// constants, incomparable type pairs and <> are all left to the
// row-level filter: <> is excluded because a Float64 NaN row
// satisfies it while being invisible to min/max statistics.
func extractScanPreds(e Expr, out []ScanPredicate) []ScanPredicate {
	b, ok := e.(*BinOp)
	if !ok {
		return out
	}
	if b.Op == sql.OpAnd {
		return extractScanPreds(b.Right, extractScanPreds(b.Left, out))
	}
	switch b.Op {
	case sql.OpEq, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
	default:
		return out
	}
	if col, ok := b.Left.(*ColRef); ok {
		if c, ok := b.Right.(*Const); ok {
			if p, ok := makeScanPred(col, b.Op, c); ok {
				return append(out, p)
			}
		}
		return out
	}
	if c, ok := b.Left.(*Const); ok {
		if col, ok := b.Right.(*ColRef); ok {
			if p, ok := makeScanPred(col, flipCompare(b.Op), c); ok {
				return append(out, p)
			}
		}
	}
	return out
}

// pushJoinScanPreds routes scan-eligible WHERE conjuncts through a
// join tree onto the base-table scan owning each column, so zone-map
// pruning fires under joins too.
//
// This is sound for pruning because the WHERE filter still runs over
// every joined row: a base row a pushed `col <op> const` conjunct
// refutes can only ever contribute output rows that fail that same
// conjunct. For inner joins its output rows carry the refuted value
// itself; under the right side of a LEFT join, pruning a build row
// may turn a matched row into a NULL-padded one instead — but a
// comparison is never TRUE on NULL, so the padded row is filtered
// exactly like the matched rows it replaced. Probe-side pruning drops
// the row's entire output, all of which carried the refuted value.
func pushJoinScanPreds(node Node, pred Expr) {
	if _, ok := node.(*HashJoin); !ok {
		return
	}
	for _, p := range extractScanPreds(pred, nil) {
		// p.Col is the combined-schema position here; resolve it to
		// the owning leaf and its local (= table-schema) position.
		if scan, local, ok := resolveScanColumn(node, p.Col); ok {
			scan.Preds = append(scan.Preds, ScanPredicate{Col: local, Op: p.Op, Val: p.Val})
		}
	}
}

// resolveScanColumn descends a join tree to the leaf owning combined
// output column idx. It succeeds only when the leaf is a base-table
// Scan without a projection (the bind-time shape, where output
// position equals table-schema position); subquery and function
// leaves are left alone.
func resolveScanColumn(node Node, idx int) (*Scan, int, bool) {
	for {
		switch n := node.(type) {
		case *HashJoin:
			if nl := len(n.Left.Schema()); idx < nl {
				node = n.Left
			} else {
				node, idx = n.Right, idx-nl
			}
		case *Scan:
			if n.Projection != nil {
				return nil, 0, false
			}
			return n, idx, true
		default:
			return nil, 0, false
		}
	}
}

// flipCompare mirrors a comparison for swapped operands
// (const <op> col  ==  col <flipped op> const).
func flipCompare(op sql.BinaryOp) sql.BinaryOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	}
	return op
}

func makeScanPred(col *ColRef, op sql.BinaryOp, c *Const) (ScanPredicate, bool) {
	v := c.Val
	if v.IsNull() {
		return ScanPredicate{}, false
	}
	ct, vt := col.Typ, v.Type()
	comparable := (ct.IsNumeric() && vt.IsNumeric()) || (ct == vt && ct != vector.Blob)
	if !comparable {
		return ScanPredicate{}, false
	}
	return ScanPredicate{Col: col.Idx, Op: op, Val: v}, true
}
