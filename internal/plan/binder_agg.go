package plan

import (
	"fmt"
	"strings"

	"vexdb/internal/catalog"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// bindAggregate builds an Aggregate node plus the post-aggregation
// projection (and HAVING filter). Select items must be group-by
// expressions, aggregates, or expressions over those.
func (b *Binder) bindAggregate(sel *sql.Select, items []sql.SelectItem, child Node, sc *scope) (Node, []string, error) {
	agg := &Aggregate{Child: child}

	// Bind group-by expressions over the child scope.
	for _, g := range sel.GroupBy {
		bg, err := b.bindExpr(g, sc, false)
		if err != nil {
			return nil, nil, fmt.Errorf("in GROUP BY: %w", err)
		}
		name := ExprString(bg)
		if cr, ok := g.(*sql.ColumnRef); ok {
			name = cr.Name
		}
		agg.GroupBy = append(agg.GroupBy, bg)
		agg.GroupNames = append(agg.GroupNames, name)
	}

	// Collect aggregate calls from select items and HAVING.
	var aggCalls []*sql.FuncCall
	collect := func(e sql.Expr) error {
		return walkAggCalls(e, func(fc *sql.FuncCall) error {
			for _, existing := range aggCalls {
				if eqExpr(existing, fc) {
					return nil
				}
			}
			aggCalls = append(aggCalls, fc)
			return nil
		})
	}
	for _, it := range items {
		if err := collect(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if sel.Having != nil {
		if err := collect(sel.Having); err != nil {
			return nil, nil, err
		}
	}

	for i, fc := range aggCalls {
		spec, err := b.bindAggCall(fc, sc)
		if err != nil {
			return nil, nil, err
		}
		spec.Name = fmt.Sprintf("#agg%d", i)
		agg.Aggs = append(agg.Aggs, spec)
	}

	// The aggregate output scope: group columns then aggregate slots.
	aggSchema := agg.Schema()
	rewrite := func(e sql.Expr) (Expr, error) {
		return b.rewriteOverAgg(e, sel.GroupBy, aggCalls, aggSchema, sc)
	}

	var node Node = agg
	if sel.Having != nil {
		pred, err := rewrite(sel.Having)
		if err != nil {
			return nil, nil, fmt.Errorf("in HAVING: %w", err)
		}
		node = &Filter{Pred: pred, Child: node}
	}

	exprs := make([]Expr, len(items))
	names := make([]string, len(items))
	for i, it := range items {
		e, err := rewrite(it.Expr)
		if err != nil {
			return nil, nil, err
		}
		exprs[i] = e
		names[i] = itemName(it, e)
	}
	return &Project{Exprs: exprs, Names: names, Child: node}, names, nil
}

// rewriteOverAgg rebinds an AST expression against the aggregate
// output: group-by expressions and aggregate calls become column
// references; anything else recurses; bare columns not in GROUP BY are
// errors.
func (b *Binder) rewriteOverAgg(e sql.Expr, groupBy []sql.Expr, aggCalls []*sql.FuncCall, aggSchema catalog.Schema, inScope *scope) (Expr, error) {
	for i, g := range groupBy {
		if eqExpr(e, g) {
			return &ColRef{Idx: i, Typ: aggSchema[i].Type, Name: aggSchema[i].Name}, nil
		}
	}
	if fc, ok := e.(*sql.FuncCall); ok && sql.AggregateNames[fc.Name] {
		for i, ac := range aggCalls {
			if eqExpr(fc, ac) {
				idx := len(groupBy) + i
				return &ColRef{Idx: idx, Typ: aggSchema[idx].Type, Name: aggSchema[idx].Name}, nil
			}
		}
		return nil, fmt.Errorf("plan: internal: aggregate %s not collected", fc.Name)
	}
	switch x := e.(type) {
	case *sql.Literal:
		return &Const{Val: x.Value, Typ: literalType(x.Value)}, nil
	case *sql.ColumnRef:
		return nil, fmt.Errorf("plan: column %q must appear in GROUP BY or inside an aggregate", x.Name)
	case *sql.BinaryExpr:
		l, err := b.rewriteOverAgg(x.Left, groupBy, aggCalls, aggSchema, inScope)
		if err != nil {
			return nil, err
		}
		r, err := b.rewriteOverAgg(x.Right, groupBy, aggCalls, aggSchema, inScope)
		if err != nil {
			return nil, err
		}
		t, err := binOpType(x.Op, l.Type(), r.Type())
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: x.Op, Left: l, Right: r, Typ: t}, nil
	case *sql.UnaryExpr:
		op, err := b.rewriteOverAgg(x.Operand, groupBy, aggCalls, aggSchema, inScope)
		if err != nil {
			return nil, err
		}
		if x.Neg {
			return &Neg{Operand: op}, nil
		}
		return &Not{Operand: op}, nil
	case *sql.IsNullExpr:
		op, err := b.rewriteOverAgg(x.Operand, groupBy, aggCalls, aggSchema, inScope)
		if err != nil {
			return nil, err
		}
		return &IsNull{Operand: op, Negate: x.Negate}, nil
	case *sql.CastExpr:
		op, err := b.rewriteOverAgg(x.Operand, groupBy, aggCalls, aggSchema, inScope)
		if err != nil {
			return nil, err
		}
		return &Cast{Operand: op, To: x.To}, nil
	case *sql.CaseExpr:
		out := &Case{}
		var rt vector.Type
		whens := x.Whens
		if x.Operand != nil {
			whens = make([]sql.WhenClause, len(x.Whens))
			for i, w := range x.Whens {
				whens[i] = sql.WhenClause{
					Cond: &sql.BinaryExpr{Op: sql.OpEq, Left: x.Operand, Right: w.Cond},
					Then: w.Then,
				}
			}
		}
		for _, w := range whens {
			cond, err := b.rewriteOverAgg(w.Cond, groupBy, aggCalls, aggSchema, inScope)
			if err != nil {
				return nil, err
			}
			then, err := b.rewriteOverAgg(w.Then, groupBy, aggCalls, aggSchema, inScope)
			if err != nil {
				return nil, err
			}
			rt = mergeCaseType(rt, then.Type())
			out.Whens = append(out.Whens, When{Cond: cond, Then: then})
		}
		if x.Else != nil {
			els, err := b.rewriteOverAgg(x.Else, groupBy, aggCalls, aggSchema, inScope)
			if err != nil {
				return nil, err
			}
			rt = mergeCaseType(rt, els.Type())
			out.Else = els
		}
		if rt == vector.Invalid {
			rt = vector.String
		}
		out.Typ = rt
		return out, nil
	case *sql.FuncCall:
		fn, ok := b.Registry.Scalar(x.Name)
		if !ok {
			return nil, fmt.Errorf("plan: function %q is not registered", x.Name)
		}
		args := make([]Expr, len(x.Args))
		types := make([]vector.Type, len(x.Args))
		for i, a := range x.Args {
			ba, err := b.rewriteOverAgg(a, groupBy, aggCalls, aggSchema, inScope)
			if err != nil {
				return nil, err
			}
			args[i] = ba
			types[i] = ba.Type()
		}
		rt, err := fn.ReturnType(types)
		if err != nil {
			return nil, err
		}
		return &Call{Fn: fn, Args: args, Typ: rt}, nil
	}
	return nil, fmt.Errorf("plan: unsupported expression %T after aggregation", e)
}

func (b *Binder) bindAggCall(fc *sql.FuncCall, sc *scope) (AggSpec, error) {
	var kind AggKind
	switch fc.Name {
	case "count":
		kind = AggCount
	case "sum":
		kind = AggSum
	case "avg":
		kind = AggAvg
	case "min":
		kind = AggMin
	case "max":
		kind = AggMax
	default:
		return AggSpec{}, fmt.Errorf("plan: unknown aggregate %q", fc.Name)
	}
	spec := AggSpec{Kind: kind, Distinct: fc.Distinct}
	if fc.Star {
		if kind != AggCount {
			return AggSpec{}, fmt.Errorf("plan: %s(*) is not valid", fc.Name)
		}
		spec.Typ = vector.Int64
		return spec, nil
	}
	if len(fc.Args) != 1 {
		return AggSpec{}, fmt.Errorf("plan: aggregate %s takes one argument", fc.Name)
	}
	arg, err := b.bindExpr(fc.Args[0], sc, false)
	if err != nil {
		return AggSpec{}, err
	}
	spec.Arg = arg
	switch kind {
	case AggCount:
		spec.Typ = vector.Int64
	case AggAvg:
		if !arg.Type().IsNumeric() {
			return AggSpec{}, fmt.Errorf("plan: avg requires a numeric argument, got %s", arg.Type())
		}
		spec.Typ = vector.Float64
	case AggSum:
		switch arg.Type() {
		case vector.Int32, vector.Int64:
			spec.Typ = vector.Int64
		case vector.Float64:
			spec.Typ = vector.Float64
		default:
			return AggSpec{}, fmt.Errorf("plan: sum requires a numeric argument, got %s", arg.Type())
		}
	case AggMin, AggMax:
		spec.Typ = arg.Type()
	}
	return spec, nil
}

func walkAggCalls(e sql.Expr, fn func(*sql.FuncCall) error) error {
	switch x := e.(type) {
	case *sql.FuncCall:
		if sql.AggregateNames[x.Name] {
			for _, a := range x.Args {
				if sql.IsAggregate(a) {
					return fmt.Errorf("plan: nested aggregates are not allowed")
				}
			}
			return fn(x)
		}
		for _, a := range x.Args {
			if err := walkAggCalls(a, fn); err != nil {
				return err
			}
		}
	case *sql.BinaryExpr:
		if err := walkAggCalls(x.Left, fn); err != nil {
			return err
		}
		return walkAggCalls(x.Right, fn)
	case *sql.UnaryExpr:
		return walkAggCalls(x.Operand, fn)
	case *sql.IsNullExpr:
		return walkAggCalls(x.Operand, fn)
	case *sql.CastExpr:
		return walkAggCalls(x.Operand, fn)
	case *sql.CaseExpr:
		if x.Operand != nil {
			if err := walkAggCalls(x.Operand, fn); err != nil {
				return err
			}
		}
		for _, w := range x.Whens {
			if err := walkAggCalls(w.Cond, fn); err != nil {
				return err
			}
			if err := walkAggCalls(w.Then, fn); err != nil {
				return err
			}
		}
		if x.Else != nil {
			return walkAggCalls(x.Else, fn)
		}
	case *sql.InExpr:
		if err := walkAggCalls(x.Operand, fn); err != nil {
			return err
		}
		for _, i := range x.List {
			if err := walkAggCalls(i, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// eqExpr reports structural equality of two AST expressions.
func eqExpr(a, b sql.Expr) bool {
	switch x := a.(type) {
	case *sql.Literal:
		y, ok := b.(*sql.Literal)
		if !ok {
			return false
		}
		if x.Value.IsNull() || y.Value.IsNull() {
			return x.Value.IsNull() && y.Value.IsNull()
		}
		return x.Value.Equal(y.Value)
	case *sql.ColumnRef:
		y, ok := b.(*sql.ColumnRef)
		return ok && strings.EqualFold(x.Table, y.Table) && strings.EqualFold(x.Name, y.Name)
	case *sql.BinaryExpr:
		y, ok := b.(*sql.BinaryExpr)
		return ok && x.Op == y.Op && eqExpr(x.Left, y.Left) && eqExpr(x.Right, y.Right)
	case *sql.UnaryExpr:
		y, ok := b.(*sql.UnaryExpr)
		return ok && x.Neg == y.Neg && eqExpr(x.Operand, y.Operand)
	case *sql.IsNullExpr:
		y, ok := b.(*sql.IsNullExpr)
		return ok && x.Negate == y.Negate && eqExpr(x.Operand, y.Operand)
	case *sql.CastExpr:
		y, ok := b.(*sql.CastExpr)
		return ok && x.To == y.To && eqExpr(x.Operand, y.Operand)
	case *sql.FuncCall:
		y, ok := b.(*sql.FuncCall)
		if !ok || x.Name != y.Name || x.Star != y.Star || x.Distinct != y.Distinct || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !eqExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *sql.CaseExpr:
		y, ok := b.(*sql.CaseExpr)
		if !ok || len(x.Whens) != len(y.Whens) {
			return false
		}
		if (x.Operand == nil) != (y.Operand == nil) || (x.Else == nil) != (y.Else == nil) {
			return false
		}
		if x.Operand != nil && !eqExpr(x.Operand, y.Operand) {
			return false
		}
		for i := range x.Whens {
			if !eqExpr(x.Whens[i].Cond, y.Whens[i].Cond) || !eqExpr(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		if x.Else != nil && !eqExpr(x.Else, y.Else) {
			return false
		}
		return true
	case *sql.InExpr:
		y, ok := b.(*sql.InExpr)
		if !ok || x.Negate != y.Negate || len(x.List) != len(y.List) || !eqExpr(x.Operand, y.Operand) {
			return false
		}
		for i := range x.List {
			if !eqExpr(x.List[i], y.List[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// bindOrderByHidden binds ORDER BY keys against the projection output
// (by alias/name, 1-based position, or bare column name for qualified
// references). Keys that only exist in the pre-projection input are
// appended to the projection as hidden sort columns, unless
// noHidden forbids it (DISTINCT or aggregation). It returns the number
// of hidden columns added.
func (b *Binder) bindOrderByHidden(orderBy []sql.OrderItem, node Node, outNames []string, inScope *scope, noHidden bool) ([]SortKey, int, error) {
	proj, isProj := node.(*Project)
	outSchema := node.Schema()
	outScope := &scope{}
	for i, c := range outSchema {
		name := c.Name
		if i < len(outNames) {
			name = outNames[i]
		}
		outScope.add("", name, c.Type)
	}
	hidden := 0
	keys := make([]SortKey, 0, len(orderBy))
	for _, oi := range orderBy {
		// Positional reference: ORDER BY 2
		if lit, ok := oi.Expr.(*sql.Literal); ok && lit.Value.Type() == vector.Int64 {
			pos := int(lit.Value.Int64())
			if pos < 1 || pos > len(outSchema) {
				return nil, 0, fmt.Errorf("plan: ORDER BY position %d out of range", pos)
			}
			keys = append(keys, SortKey{
				Expr: &ColRef{Idx: pos - 1, Typ: outSchema[pos-1].Type, Name: outSchema[pos-1].Name},
				Desc: oi.Desc,
			})
			continue
		}
		expr := oi.Expr
		bound, err := b.bindExpr(expr, outScope, false)
		if err != nil {
			// Qualified references fall back to the bare column name
			// (ORDER BY t.a when the projection exposes "a").
			if cr, ok := expr.(*sql.ColumnRef); ok && cr.Table != "" {
				if bb, err2 := b.bindExpr(&sql.ColumnRef{Name: cr.Name}, outScope, false); err2 == nil {
					bound, err = bb, nil
				}
			}
		}
		if err != nil {
			// Try the pre-projection input and add a hidden column.
			if noHidden || !isProj {
				return nil, 0, fmt.Errorf("in ORDER BY: %w", err)
			}
			inBound, err2 := b.bindExpr(expr, inScope, false)
			if err2 != nil {
				return nil, 0, fmt.Errorf("in ORDER BY: %w", err)
			}
			idx := len(proj.Exprs)
			name := fmt.Sprintf("#sort%d", hidden)
			proj.Exprs = append(proj.Exprs, inBound)
			proj.Names = append(proj.Names, name)
			hidden++
			bound = &ColRef{Idx: idx, Typ: inBound.Type(), Name: name}
		}
		keys = append(keys, SortKey{Expr: bound, Desc: oi.Desc})
	}
	return keys, hidden, nil
}
