package plan

import "fmt"

// Prune narrows base-table scans to the columns a query actually
// references. Chunks flowing through filters and joins are gathered
// column-by-column, so carrying a 96-column table through a join that
// projects 8 columns would copy 12x too much data — this pass is what
// makes the engine behave like a column store.
//
// The returned plan is a rewritten tree; the input plan must not be
// reused afterwards. Pruning never changes the root's output schema.
func Prune(root Node) Node {
	pruned, remap := pruneNode(root, allTrue(len(root.Schema())))
	for i, m := range remap {
		if m != i {
			// The root's schema must be stable; all binder-produced
			// roots end in Project/Aggregate/Limit chains for which
			// the remap is the identity. Fall back to the unpruned
			// plan otherwise.
			return root
		}
	}
	return pruned
}

func allTrue(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

// pruneNode rewrites node so that only useful columns survive, where
// needed flags the output columns the parent references. It returns
// the rewritten node and a remap from old output positions to new
// ones (-1 for dropped columns).
func pruneNode(node Node, needed []bool) (Node, []int) {
	switch n := node.(type) {
	case *Scan:
		if n.Projection != nil {
			return n, identity(len(n.Projection))
		}
		total := len(n.Table.Schema)
		proj := make([]int, 0, total)
		remap := make([]int, total)
		for i := range remap {
			remap[i] = -1
		}
		for i := 0; i < total; i++ {
			if needed[i] {
				remap[i] = len(proj)
				proj = append(proj, i)
			}
		}
		if len(proj) == total {
			return n, identity(total)
		}
		if len(proj) == 0 {
			// A scan whose columns are all unused (e.g. COUNT(*))
			// still needs one column to carry the row count.
			proj = []int{0}
			remap[0] = 0
		}
		return &Scan{Table: n.Table, Projection: proj, Preds: n.Preds}, remap

	case *Filter:
		req := cloneBools(needed)
		markRefs(n.Pred, req)
		child, remap := pruneNode(n.Child, req)
		return &Filter{Pred: remapExpr(n.Pred, remap), Child: child}, remap

	case *Project:
		childNeeded := make([]bool, len(n.Child.Schema()))
		for _, e := range n.Exprs {
			markRefs(e, childNeeded)
		}
		child, remap := pruneNode(n.Child, childNeeded)
		exprs := make([]Expr, len(n.Exprs))
		for i, e := range n.Exprs {
			exprs[i] = remapExpr(e, remap)
		}
		return &Project{Exprs: exprs, Names: n.Names, Child: child}, identity(len(exprs))

	case *HashJoin:
		nl := len(n.Left.Schema())
		nr := len(n.Right.Schema())
		leftNeeded := make([]bool, nl)
		rightNeeded := make([]bool, nr)
		for i := 0; i < nl; i++ {
			leftNeeded[i] = needed[i]
		}
		for i := 0; i < nr; i++ {
			rightNeeded[i] = needed[nl+i]
		}
		for _, k := range n.LeftKeys {
			markRefs(k, leftNeeded)
		}
		for _, k := range n.RightKeys {
			markRefs(k, rightNeeded)
		}
		if n.Extra != nil {
			combined := make([]bool, nl+nr)
			markRefs(n.Extra, combined)
			for i := 0; i < nl; i++ {
				leftNeeded[i] = leftNeeded[i] || combined[i]
			}
			for i := 0; i < nr; i++ {
				rightNeeded[i] = rightNeeded[i] || combined[nl+i]
			}
		}
		left, leftRemap := pruneNode(n.Left, leftNeeded)
		right, rightRemap := pruneNode(n.Right, rightNeeded)
		nlNew := len(left.Schema())
		combinedRemap := make([]int, nl+nr)
		for i := 0; i < nl; i++ {
			combinedRemap[i] = leftRemap[i]
		}
		for i := 0; i < nr; i++ {
			if rightRemap[i] < 0 {
				combinedRemap[nl+i] = -1
			} else {
				combinedRemap[nl+i] = nlNew + rightRemap[i]
			}
		}
		out := &HashJoin{Kind: n.Kind, Left: left, Right: right}
		for i := range n.LeftKeys {
			out.LeftKeys = append(out.LeftKeys, remapExpr(n.LeftKeys[i], leftRemap))
			out.RightKeys = append(out.RightKeys, remapExpr(n.RightKeys[i], rightRemap))
		}
		if n.Extra != nil {
			out.Extra = remapExpr(n.Extra, combinedRemap)
		}
		return out, combinedRemap

	case *Aggregate:
		childNeeded := make([]bool, len(n.Child.Schema()))
		for _, g := range n.GroupBy {
			markRefs(g, childNeeded)
		}
		for _, a := range n.Aggs {
			if a.Arg != nil {
				markRefs(a.Arg, childNeeded)
			}
		}
		child, remap := pruneNode(n.Child, childNeeded)
		out := &Aggregate{Child: child, GroupNames: n.GroupNames}
		for _, g := range n.GroupBy {
			out.GroupBy = append(out.GroupBy, remapExpr(g, remap))
		}
		for _, a := range n.Aggs {
			na := a
			if a.Arg != nil {
				na.Arg = remapExpr(a.Arg, remap)
			}
			out.Aggs = append(out.Aggs, na)
		}
		return out, identity(len(n.GroupBy) + len(n.Aggs))

	case *Sort:
		req := cloneBools(needed)
		for _, k := range n.Keys {
			markRefs(k.Expr, req)
		}
		child, remap := pruneNode(n.Child, req)
		out := &Sort{Child: child, Limit: n.Limit}
		for _, k := range n.Keys {
			out.Keys = append(out.Keys, SortKey{Expr: remapExpr(k.Expr, remap), Desc: k.Desc})
		}
		return out, remap

	case *Limit:
		child, remap := pruneNode(n.Child, needed)
		return &Limit{Count: n.Count, Offset: n.Offset, Child: child}, remap

	case *Distinct:
		// DISTINCT dedups over its full input; no column may drop.
		child, remap := pruneNode(n.Child, allTrue(len(n.Child.Schema())))
		return &Distinct{Child: child}, remap

	case *Union:
		left, _ := pruneNode(n.Left, allTrue(len(n.Left.Schema())))
		right, _ := pruneNode(n.Right, allTrue(len(n.Right.Schema())))
		return &Union{Left: left, Right: right, All: n.All}, identity(len(n.Left.Schema()))

	case *TableFuncScan:
		out := &TableFuncScan{Fn: n.Fn}
		for _, a := range n.Args {
			if a.Sub != nil {
				sub, _ := pruneNode(a.Sub, allTrue(len(a.Sub.Schema())))
				out.Args = append(out.Args, FuncArg{Sub: sub})
				continue
			}
			out.Args = append(out.Args, a)
		}
		return out, identity(len(n.Fn.Columns))

	case *Material:
		return n, identity(len(n.Schem))
	}
	return node, identity(len(node.Schema()))
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func cloneBools(b []bool) []bool {
	out := make([]bool, len(b))
	copy(out, b)
	return out
}

// markRefs sets needed[i] for every column reference in e.
func markRefs(e Expr, needed []bool) {
	switch x := e.(type) {
	case *ColRef:
		needed[x.Idx] = true
	case *BinOp:
		markRefs(x.Left, needed)
		markRefs(x.Right, needed)
	case *Neg:
		markRefs(x.Operand, needed)
	case *Not:
		markRefs(x.Operand, needed)
	case *IsNull:
		markRefs(x.Operand, needed)
	case *Cast:
		markRefs(x.Operand, needed)
	case *Case:
		for _, w := range x.Whens {
			markRefs(w.Cond, needed)
			markRefs(w.Then, needed)
		}
		if x.Else != nil {
			markRefs(x.Else, needed)
		}
	case *Call:
		for _, a := range x.Args {
			markRefs(a, needed)
		}
	case *In:
		markRefs(x.Operand, needed)
		for _, l := range x.List {
			markRefs(l, needed)
		}
	}
}

// remapExpr rewrites column references through remap.
func remapExpr(e Expr, remap []int) Expr {
	switch x := e.(type) {
	case *ColRef:
		m := remap[x.Idx]
		if m < 0 {
			panic(fmt.Sprintf("plan: pruned column #%d still referenced", x.Idx))
		}
		if m == x.Idx {
			return x
		}
		return &ColRef{Idx: m, Typ: x.Typ, Name: x.Name}
	case *Const:
		return x
	case *BinOp:
		return &BinOp{Op: x.Op, Left: remapExpr(x.Left, remap), Right: remapExpr(x.Right, remap), Typ: x.Typ}
	case *Neg:
		return &Neg{Operand: remapExpr(x.Operand, remap)}
	case *Not:
		return &Not{Operand: remapExpr(x.Operand, remap)}
	case *IsNull:
		return &IsNull{Operand: remapExpr(x.Operand, remap), Negate: x.Negate}
	case *Cast:
		return &Cast{Operand: remapExpr(x.Operand, remap), To: x.To}
	case *Case:
		out := &Case{Typ: x.Typ}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, When{Cond: remapExpr(w.Cond, remap), Then: remapExpr(w.Then, remap)})
		}
		if x.Else != nil {
			out.Else = remapExpr(x.Else, remap)
		}
		return out
	case *Call:
		out := &Call{Fn: x.Fn, Typ: x.Typ}
		for _, a := range x.Args {
			out.Args = append(out.Args, remapExpr(a, remap))
		}
		return out
	case *In:
		out := &In{Operand: remapExpr(x.Operand, remap), Negate: x.Negate}
		for _, l := range x.List {
			out.List = append(out.List, remapExpr(l, remap))
		}
		return out
	}
	return e
}
