package plan

import (
	"testing"

	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// findScan walks a bound plan down to its base-table scan.
func findScan(t *testing.T, n Node) *Scan {
	t.Helper()
	for {
		switch x := n.(type) {
		case *Scan:
			return x
		case *Filter:
			n = x.Child
		case *Project:
			n = x.Child
		case *Aggregate:
			n = x.Child
		case *Sort:
			n = x.Child
		case *Limit:
			n = x.Child
		case *Distinct:
			n = x.Child
		default:
			t.Fatalf("no scan under %T", n)
		}
	}
}

func TestScanPredicatePushdown(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		query string
		want  []ScanPredicate
	}{
		{
			"SELECT a FROM wide WHERE a > 5",
			[]ScanPredicate{{Col: 0, Op: sql.OpGt, Val: vector.NewInt64(5)}},
		},
		{
			// Flipped operand: 10 >= d means d <= 10.
			"SELECT a FROM wide WHERE 10 >= d",
			[]ScanPredicate{{Col: 3, Op: sql.OpLe, Val: vector.NewInt64(10)}},
		},
		{
			// Conjunction splits; non-eligible disjunct side drops all.
			"SELECT a FROM wide WHERE a >= 1 AND c = 'x' AND b < 2.5",
			[]ScanPredicate{
				{Col: 0, Op: sql.OpGe, Val: vector.NewInt64(1)},
				{Col: 2, Op: sql.OpEq, Val: vector.NewString("x")},
				{Col: 1, Op: sql.OpLt, Val: vector.NewFloat64(2.5)},
			},
		},
		{"SELECT a FROM wide WHERE a > 5 OR d > 5", nil}, // disjunction
		{"SELECT a FROM wide WHERE a <> 5", nil},         // <> excluded (NaN)
		{"SELECT a FROM wide WHERE a + 1 > 5", nil},      // not col-vs-const
		{"SELECT a FROM wide WHERE a > d", nil},          // col-vs-col
		{"SELECT a FROM wide WHERE a = NULL", nil},       // NULL constant
		{"SELECT a FROM wide WHERE c > 'm' AND a < 9", []ScanPredicate{ // string compare pushes
			{Col: 2, Op: sql.OpGt, Val: vector.NewString("m")},
			{Col: 0, Op: sql.OpLt, Val: vector.NewInt64(9)},
		}},
	}
	for _, c := range cases {
		scan := findScan(t, bind(t, cat, c.query))
		if len(scan.Preds) != len(c.want) {
			t.Errorf("%q: %d preds, want %d (%+v)", c.query, len(scan.Preds), len(c.want), scan.Preds)
			continue
		}
		for i, p := range scan.Preds {
			w := c.want[i]
			if p.Col != w.Col || p.Op != w.Op || !p.Val.Equal(w.Val) {
				t.Errorf("%q pred %d: got %+v want %+v", c.query, i, p, w)
			}
		}
	}
}

// Pushed predicates must survive column pruning, including when the
// predicate column itself is pruned from the projection.
func TestScanPredicatesSurvivePrune(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, "SELECT b FROM wide WHERE a > 5")
	pruned := Prune(node)
	scan := findScan(t, pruned)
	if scan.Projection == nil {
		t.Fatal("prune did not project")
	}
	if len(scan.Preds) != 1 || scan.Preds[0].Col != 0 {
		t.Fatalf("preds lost in prune: %+v", scan.Preds)
	}
	// Col is a table position: column a (0) is not in the projection
	// (only a and b are scanned: a for the filter, b for the output).
	found := false
	for _, p := range scan.Projection {
		if p == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("filter column not scanned")
	}
}

// walkScans collects every base-table scan under filters, projections
// and joins.
func walkScans(n Node) []*Scan {
	var scans []*Scan
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			scans = append(scans, x)
		case *Filter:
			walk(x.Child)
		case *Project:
			walk(x.Child)
		case *HashJoin:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(n)
	return scans
}

// WHERE conjuncts of the form col <op> const route through joins onto
// the scan owning the column, with the combined-schema position mapped
// back to the table-schema position.
func TestPushdownThroughJoin(t *testing.T) {
	cat := testCatalog(t)
	// wide.d is combined position 3, dim.weight is combined position
	// 5+2=7; both must land on their own scan with local positions.
	node := bind(t, cat,
		"SELECT wide.a FROM wide JOIN dim ON wide.a = dim.k WHERE wide.d > 5 AND dim.weight <= 2.5 AND wide.a + 1 > 2")
	scans := walkScans(node)
	if len(scans) != 2 {
		t.Fatalf("found %d scans", len(scans))
	}
	wide, dim := scans[0], scans[1]
	if len(wide.Preds) != 1 || wide.Preds[0].Col != 3 || wide.Preds[0].Op != sql.OpGt {
		t.Fatalf("wide preds = %+v", wide.Preds)
	}
	if len(dim.Preds) != 1 || dim.Preds[0].Col != 2 || dim.Preds[0].Op != sql.OpLe {
		t.Fatalf("dim preds = %+v", dim.Preds)
	}
	// The row-level filter still runs over the joined rows.
	foundFilter := false
	for n := node; ; {
		if f, ok := n.(*Filter); ok {
			foundFilter = true
			_ = f
			break
		}
		if p, ok := n.(*Project); ok {
			n = p.Child
			continue
		}
		break
	}
	if !foundFilter {
		t.Fatal("WHERE filter dropped")
	}
}

// Multi-level join trees resolve columns through nested joins, and
// subquery sides are left alone.
func TestPushdownThroughNestedJoin(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat,
		"SELECT wide.a FROM wide JOIN dim ON wide.a = dim.k JOIN wide w2 ON dim.k = w2.a "+
			"WHERE dim.weight > 0.5 AND w2.d = 7")
	scans := walkScans(node)
	if len(scans) != 3 {
		t.Fatalf("found %d scans", len(scans))
	}
	if len(scans[0].Preds) != 0 {
		t.Fatalf("wide got preds: %+v", scans[0].Preds)
	}
	if len(scans[1].Preds) != 1 || scans[1].Preds[0].Col != 2 {
		t.Fatalf("dim preds = %+v", scans[1].Preds)
	}
	if len(scans[2].Preds) != 1 || scans[2].Preds[0].Col != 3 || scans[2].Preds[0].Op != sql.OpEq {
		t.Fatalf("w2 preds = %+v", scans[2].Preds)
	}

	sub := bind(t, cat,
		"SELECT s.a FROM (SELECT a FROM wide) s JOIN dim ON s.a = dim.k WHERE s.a > 3")
	for _, s := range walkScans(sub) {
		if len(s.Preds) != 0 {
			t.Fatalf("subquery-side scan got pushdown: %+v", s.Preds)
		}
	}
}

// Join pushdowns survive column pruning (Scan.Preds use table-schema
// positions, which Prune preserves).
func TestJoinPushdownSurvivesPrune(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat,
		"SELECT wide.a FROM wide JOIN dim ON wide.a = dim.k WHERE wide.d > 5")
	pruned := Prune(node)
	found := false
	for _, s := range walkScans(pruned) {
		for _, p := range s.Preds {
			if p.Col == 3 && p.Op == sql.OpGt {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("pushdown lost in pruning")
	}
}
