package plan

import (
	"testing"

	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// findScan walks a bound plan down to its base-table scan.
func findScan(t *testing.T, n Node) *Scan {
	t.Helper()
	for {
		switch x := n.(type) {
		case *Scan:
			return x
		case *Filter:
			n = x.Child
		case *Project:
			n = x.Child
		case *Aggregate:
			n = x.Child
		case *Sort:
			n = x.Child
		case *Limit:
			n = x.Child
		case *Distinct:
			n = x.Child
		default:
			t.Fatalf("no scan under %T", n)
		}
	}
}

func TestScanPredicatePushdown(t *testing.T) {
	cat := testCatalog(t)
	cases := []struct {
		query string
		want  []ScanPredicate
	}{
		{
			"SELECT a FROM wide WHERE a > 5",
			[]ScanPredicate{{Col: 0, Op: sql.OpGt, Val: vector.NewInt64(5)}},
		},
		{
			// Flipped operand: 10 >= d means d <= 10.
			"SELECT a FROM wide WHERE 10 >= d",
			[]ScanPredicate{{Col: 3, Op: sql.OpLe, Val: vector.NewInt64(10)}},
		},
		{
			// Conjunction splits; non-eligible disjunct side drops all.
			"SELECT a FROM wide WHERE a >= 1 AND c = 'x' AND b < 2.5",
			[]ScanPredicate{
				{Col: 0, Op: sql.OpGe, Val: vector.NewInt64(1)},
				{Col: 2, Op: sql.OpEq, Val: vector.NewString("x")},
				{Col: 1, Op: sql.OpLt, Val: vector.NewFloat64(2.5)},
			},
		},
		{"SELECT a FROM wide WHERE a > 5 OR d > 5", nil}, // disjunction
		{"SELECT a FROM wide WHERE a <> 5", nil},         // <> excluded (NaN)
		{"SELECT a FROM wide WHERE a + 1 > 5", nil},      // not col-vs-const
		{"SELECT a FROM wide WHERE a > d", nil},          // col-vs-col
		{"SELECT a FROM wide WHERE a = NULL", nil},       // NULL constant
		{"SELECT a FROM wide WHERE c > 'm' AND a < 9", []ScanPredicate{ // string compare pushes
			{Col: 2, Op: sql.OpGt, Val: vector.NewString("m")},
			{Col: 0, Op: sql.OpLt, Val: vector.NewInt64(9)},
		}},
	}
	for _, c := range cases {
		scan := findScan(t, bind(t, cat, c.query))
		if len(scan.Preds) != len(c.want) {
			t.Errorf("%q: %d preds, want %d (%+v)", c.query, len(scan.Preds), len(c.want), scan.Preds)
			continue
		}
		for i, p := range scan.Preds {
			w := c.want[i]
			if p.Col != w.Col || p.Op != w.Op || !p.Val.Equal(w.Val) {
				t.Errorf("%q pred %d: got %+v want %+v", c.query, i, p, w)
			}
		}
	}
}

// Pushed predicates must survive column pruning, including when the
// predicate column itself is pruned from the projection.
func TestScanPredicatesSurvivePrune(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, "SELECT b FROM wide WHERE a > 5")
	pruned := Prune(node)
	scan := findScan(t, pruned)
	if scan.Projection == nil {
		t.Fatal("prune did not project")
	}
	if len(scan.Preds) != 1 || scan.Preds[0].Col != 0 {
		t.Fatalf("preds lost in prune: %+v", scan.Preds)
	}
	// Col is a table position: column a (0) is not in the projection
	// (only a and b are scanned: a for the filter, b for the output).
	found := false
	for _, p := range scan.Projection {
		if p == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("filter column not scanned")
	}
}

// Joins must not receive pushdowns (the filter runs over the combined
// schema, whose positions are not table positions).
func TestNoPushdownThroughJoin(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, "SELECT wide.a FROM wide JOIN dim ON wide.a = dim.k WHERE wide.a > 5")
	var scans []*Scan
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			scans = append(scans, x)
		case *Filter:
			walk(x.Child)
		case *Project:
			walk(x.Child)
		case *HashJoin:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(node)
	if len(scans) != 2 {
		t.Fatalf("found %d scans", len(scans))
	}
	for _, s := range scans {
		if len(s.Preds) != 0 {
			t.Fatalf("join-side scan got pushdown: %+v", s.Preds)
		}
	}
}
