// Package cost implements the cost-based planning pass that runs
// between binding/pruning and execution. It estimates predicate
// selectivities and join cardinalities from the column statistics the
// storage layer maintains (zone maps and HLL distinct-count sketches,
// rolled up to table level), and uses the estimates to reorder
// inner-join chains, choose hash-join build sides, and emit advisory
// execution hints (serial override, spill fan-out). Every rewrite is
// result-preserving: reordered subtrees tag base rows with their table
// positions and restore the syntactic row and column order with an
// explicit sort and projection, so output bytes never change.
package cost

import (
	"math"

	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// clampSel bounds a selectivity to [1/rows, 1]: a predicate never
// keeps more than everything, and the model never claims an exact
// empty result (estimates steer decisions, they don't prove absence).
func clampSel(s, rows float64) float64 {
	lo := 1 / math.Max(rows, 1)
	if s < lo {
		return lo
	}
	if s > 1 {
		return 1
	}
	return s
}

// colNDV estimates a column's distinct count: the merged-HLL estimate
// scaled linearly for partial sketch coverage and clamped to the row
// count; columns without a sketch default to sqrt(rows).
func colNDV(st storage.ColumnStats, rows float64) float64 {
	if st.Distinct > 0 {
		d := float64(st.Distinct)
		if st.SketchRows > 0 && float64(st.SketchRows) < rows {
			d *= rows / float64(st.SketchRows)
		}
		return math.Max(1, math.Min(d, rows))
	}
	return math.Max(1, math.Sqrt(math.Max(rows, 1)))
}

// predSel estimates the fraction of rows a `col <op> const` predicate
// keeps. Equality uses 1/NDV from the HLL sketch; ranges interpolate
// the constant linearly inside the zone-map [min,max]; both scale by
// the non-NULL fraction (a comparison is never TRUE on NULL). Columns
// without statistics fall back to 1/3 (range, matching the classic
// System R default) and 1/NDV-default (equality).
func predSel(stats []storage.ColumnStats, rows float64, p plan.ScanPredicate) float64 {
	var st storage.ColumnStats
	if p.Col >= 0 && p.Col < len(stats) {
		st = stats[p.Col]
	}
	notNull := 1.0
	if st.StatsRows > 0 {
		notNull = 1 - float64(st.NullCount)/float64(st.StatsRows)
	}
	if p.Op == sql.OpEq {
		return clampSel(notNull/colNDV(st, rows), rows)
	}
	if frac, ok := rangeFraction(st, p); ok {
		return clampSel(notNull*frac, rows)
	}
	return clampSel(notNull/3, rows)
}

// rangeFraction linearly interpolates the predicate constant within
// the column's zone-map bounds, assuming a uniform value distribution.
func rangeFraction(st storage.ColumnStats, p plan.ScanPredicate) (float64, bool) {
	if !st.HasMinMax {
		return 0, false
	}
	mn, ok1 := numericValue(st.Min)
	mx, ok2 := numericValue(st.Max)
	v, ok3 := numericValue(p.Val)
	if !ok1 || !ok2 || !ok3 {
		return 0, false
	}
	if mx <= mn { // single-valued column: keep all or nothing
		keep := false
		switch p.Op {
		case sql.OpLt:
			keep = mn < v
		case sql.OpLe:
			keep = mn <= v
		case sql.OpGt:
			keep = mn > v
		case sql.OpGe:
			keep = mn >= v
		default:
			return 0, false
		}
		if keep {
			return 1, true
		}
		return 0, true
	}
	f := (v - mn) / (mx - mn)
	switch p.Op {
	case sql.OpLt, sql.OpLe:
		return math.Min(math.Max(f, 0), 1), true
	case sql.OpGt, sql.OpGe:
		return math.Min(math.Max(1-f, 0), 1), true
	}
	return 0, false
}

func numericValue(v vector.Value) (float64, bool) {
	if v.IsNull() {
		return 0, false
	}
	switch v.Type() {
	case vector.Int32, vector.Int64:
		return float64(v.Int64()), true
	case vector.Float64:
		f := v.Float64()
		if math.IsNaN(f) {
			return 0, false
		}
		return f, true
	}
	return 0, false
}

// hasCall reports whether e contains a UDF call. The reorderer leaves
// such predicates untouched in their syntactic position: a UDF may be
// stateful or non-deterministic, so changing how often or over which
// intermediate it runs is not provably result-preserving.
func hasCall(e plan.Expr) bool {
	return !plan.EachCall(e, func(*plan.Call) bool { return false })
}

// splitConjuncts flattens a predicate's AND tree.
func splitConjuncts(e plan.Expr) []plan.Expr {
	if b, ok := e.(*plan.BinOp); ok && b.Op == sql.OpAnd {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []plan.Expr{e}
}

// andAll combines conjuncts back into one predicate (nil when empty).
func andAll(es []plan.Expr) plan.Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		out = &plan.BinOp{Op: sql.OpAnd, Left: out, Right: e, Typ: vector.Bool}
	}
	return out
}

// filterConjSel gives a shape-based default selectivity for a filter
// conjunct when no column statistics apply: equality 1/10, range 1/3,
// anything else 1/2. These are the crude-but-serviceable defaults the
// README documents; they only matter for expressions too complex for
// the zone-map/HLL path.
func filterConjSel(e plan.Expr) float64 {
	switch x := e.(type) {
	case *plan.BinOp:
		switch x.Op {
		case sql.OpEq:
			return 0.1
		case sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return 1.0 / 3
		case sql.OpNe:
			return 0.9
		case sql.OpOr:
			return 0.75
		}
	case *plan.IsNull:
		if x.Negate {
			return 0.9
		}
		return 0.1
	case *plan.In:
		return math.Min(1, 0.1*math.Max(1, float64(len(x.List))))
	}
	return 0.5
}
