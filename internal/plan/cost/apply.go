package cost

import (
	"math"

	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/storage"
)

// reorderGainFloor is how much cheaper (by modeled cost) a candidate
// order must be before the planner rewrites the tree: the rewrite adds
// a restoration sort, so near-ties stay syntactic.
const reorderGainFloor = 0.9

// parallelRowFloor is the estimated input size below which an
// operator's parallel variant stops paying for its setup (worker
// pipes, per-worker hash tables, merge). Four segments of input is
// roughly where fan-out overhead amortizes.
const parallelRowFloor = 4 * storage.SegmentRows

// Apply runs the cost-based planning pass over a bound, pruned plan:
// inner-join chains are greedily reordered smallest-intermediate-first
// (with an explicit order-restoring sort, so output bytes never
// change), hash-join build sides flip to the smaller estimated input,
// and every operator is annotated with cardinality estimates plus
// serial/spill-fan-out hints. workers and memBudget describe the
// execution environment the hints are sized for. The plan tree is
// mutated in place (plans are query-private); the returned node is the
// new root.
func Apply(root plan.Node, workers int, memBudget int64) plan.Node {
	p := &planner{workers: workers, memBudget: memBudget}
	root = p.rewrite(root)
	p.annotate(root)
	return root
}

type planner struct {
	workers   int
	memBudget int64
}

// rewrite walks the tree looking for inner-join chains to reorder. A
// Filter directly above a chain contributes its WHERE conjuncts to the
// cost model (and to pushdown); the Filter itself always remains, so
// conjuncts the chain cannot place are still enforced.
func (p *planner) rewrite(n plan.Node) plan.Node {
	switch x := n.(type) {
	case *plan.Filter:
		if hj, ok := x.Child.(*plan.HashJoin); ok && hj.Kind == sql.InnerJoin {
			x.Child = p.reorder(hj, splitConjuncts(x.Pred))
			return x
		}
		x.Child = p.rewrite(x.Child)
	case *plan.HashJoin:
		if x.Kind == sql.InnerJoin {
			return p.reorder(x, nil)
		}
		x.Left = p.rewrite(x.Left)
		x.Right = p.rewrite(x.Right)
	case *plan.Project:
		x.Child = p.rewrite(x.Child)
	case *plan.Sort:
		x.Child = p.rewrite(x.Child)
	case *plan.Limit:
		x.Child = p.rewrite(x.Child)
	case *plan.Distinct:
		x.Child = p.rewrite(x.Child)
	case *plan.Aggregate:
		x.Child = p.rewrite(x.Child)
	case *plan.Union:
		x.Left = p.rewrite(x.Left)
		x.Right = p.rewrite(x.Right)
	case *plan.TableFuncScan:
		for i := range x.Args {
			if x.Args[i].Sub != nil {
				x.Args[i].Sub = p.rewrite(x.Args[i].Sub)
			}
		}
	}
	return n
}

// reorder evaluates one inner-join chain rooted at hj. When the chain
// is not safely decomposable, it recurses into the children instead
// (a deeper sub-chain may still be reorderable).
func (p *planner) reorder(hj *plan.HashJoin, whereConjs []plan.Expr) plan.Node {
	c, ok := buildChain(hj, whereConjs)
	if !ok {
		hj.Left = p.rewrite(hj.Left)
		hj.Right = p.rewrite(hj.Right)
		return hj
	}

	order, ev := c.greedyOrder()
	syntactic := c.newEval(0)
	for i := 1; i < len(c.leaves); i++ {
		syntactic.add(i, true)
	}

	identity := true
	for i, li := range order {
		if li != i {
			identity = false
			break
		}
	}
	swapsBuild := false
	for _, b := range ev.buildAcc {
		if b {
			swapsBuild = true
			break
		}
	}
	if identity && !swapsBuild {
		return hj // greedy agrees with the syntactic plan
	}
	// The rewrite pays for the restoration sort: charge ~2x the final
	// cardinality (sort + re-projection) on top of the join cost.
	candidate := ev.cost + 2*ev.card
	if candidate >= reorderGainFloor*syntactic.cost {
		return hj
	}
	return c.rebuild(order, ev)
}

// annotate walks the plan bottom-up filling in EstRows for every node
// that carries hints, plus the serial-execution and spill-fan-out
// decisions. Returns the node's estimated output rows.
func (p *planner) annotate(n plan.Node) float64 {
	switch x := n.(type) {
	case *plan.Scan:
		rows := float64(x.Table.Data.NumRows())
		est := rows
		if len(x.Preds) > 0 {
			stats := x.Table.Data.ColumnStatistics()
			for _, pr := range x.Preds {
				est *= predSel(stats, rows, pr)
			}
		}
		x.Hints.EstRows = int64(est)
		return est
	case *plan.Filter:
		in := p.annotate(x.Child)
		est := in
		for _, cj := range splitConjuncts(x.Pred) {
			est *= p.conjSel(cj, x.Child)
		}
		if in >= 1 {
			est = math.Max(est, 1)
		}
		x.Hints.EstRows = int64(est)
		return est
	case *plan.Project:
		return p.annotate(x.Child)
	case *plan.HashJoin:
		l := p.annotate(x.Left)
		r := p.annotate(x.Right)
		est := float64(x.Hints.EstRows) // set by the reorderer
		if est <= 0 {
			switch {
			case len(x.LeftKeys) > 0:
				est = l * r / math.Max(math.Max(l, r), 1)
			default:
				est = l * r
			}
			if x.Kind == sql.LeftJoin {
				est = math.Max(est, l)
			}
			x.Hints.EstRows = int64(est)
		}
		x.Hints.Serial = l+r < parallelRowFloor
		p.sizeFanout(&x.Hints, r, len(x.Right.Schema()))
		return est
	case *plan.Aggregate:
		in := p.annotate(x.Child)
		est := 1.0
		if len(x.GroupBy) > 0 {
			// Crude group-count guess: grows with input but sublinearly.
			est = math.Max(1, math.Min(in, 8*math.Sqrt(in)))
		}
		x.Hints.EstRows = int64(est)
		x.Hints.Serial = in < parallelRowFloor
		return est
	case *plan.Sort:
		in := p.annotate(x.Child)
		est := in
		if x.Limit > 0 {
			est = math.Min(est, float64(x.Limit))
		}
		x.Hints.EstRows = int64(est)
		x.Hints.Serial = in < parallelRowFloor
		return est
	case *plan.Limit:
		in := p.annotate(x.Child)
		est := math.Max(in-float64(x.Offset), 0)
		if x.Count >= 0 {
			est = math.Min(est, float64(x.Count))
		}
		return est
	case *plan.Distinct:
		in := p.annotate(x.Child)
		est := math.Max(1, in/2)
		x.Hints.EstRows = int64(est)
		x.Hints.Serial = in < parallelRowFloor
		return est
	case *plan.Union:
		l := p.annotate(x.Left)
		r := p.annotate(x.Right)
		if x.All {
			return l + r
		}
		return math.Max(1, (l+r)/2)
	case *plan.Material:
		return float64(x.Data.NumRows())
	case *plan.TableFuncScan:
		for i := range x.Args {
			if x.Args[i].Sub != nil {
				p.annotate(x.Args[i].Sub)
			}
		}
		return float64(storage.SegmentRows) // unknown; one segment's worth
	}
	return float64(storage.SegmentRows)
}

// conjSel estimates one filter conjunct's selectivity. Directly above
// a scan the conjunct can consult zone maps and sketches; conjuncts
// the binder already pushed into the scan's predicate list count once
// (the scan estimate includes them).
func (p *planner) conjSel(cj plan.Expr, child plan.Node) float64 {
	if sc, ok := child.(*plan.Scan); ok {
		if pr, ok2 := scanPredAt(cj, sc, 0); ok2 {
			if predsContain(sc.Preds, pr) {
				return 1
			}
			rows := float64(sc.Table.Data.NumRows())
			return predSel(sc.Table.Data.ColumnStatistics(), rows, pr)
		}
	}
	return filterConjSel(cj)
}

// sizeFanout widens the first-level spill partition fan-out when the
// estimated build side clearly exceeds half the memory budget, so a
// single partitioning pass suffices instead of recursive splitting.
// The estimate charges 16 bytes per value plus row overhead — crude,
// but only the order of magnitude matters.
func (p *planner) sizeFanout(h *plan.ExecHints, buildRows float64, buildCols int) {
	if p.memBudget <= 0 || buildRows <= 0 {
		return
	}
	bytes := buildRows * float64(16*buildCols+24)
	half := float64(p.memBudget) / 2
	if bytes <= half {
		return
	}
	bits := 4 // the executor's default fan-out (16 partitions)
	for bits < 8 && float64(uint64(1)<<uint(bits))*half < bytes {
		bits++
	}
	if bits > 4 {
		h.FanoutLog2 = bits
	}
}
