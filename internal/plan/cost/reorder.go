package cost

import (
	"math"
	"math/bits"

	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// leafSet is a bitmask over chain leaf indexes.
type leafSet uint64

func single(i int) leafSet              { return 1 << uint(i) }
func (s leafSet) has(i int) bool        { return s&single(i) != 0 }
func (s leafSet) subset(t leafSet) bool { return s&^t == 0 }
func (s leafSet) count() int            { return bits.OnesCount64(uint64(s)) }

// maxChainLeaves bounds reordered chains (leafSet headroom and greedy
// cost); longer chains stay syntactic.
const maxChainLeaves = 12

// chainLeaf is one base-table leaf of an inner-join chain.
type chainLeaf struct {
	scan    *plan.Scan
	start   int // column offset in the syntactic combined schema
	width   int // schema width before the rowpos tag
	rows    float64
	card    float64     // rows after single-leaf predicates
	filters []plan.Expr // single-leaf conjuncts, full-schema space
	stats   []storage.ColumnStats
}

func (l *chainLeaf) tableCol(local int) int {
	if l.scan.Projection == nil {
		return local
	}
	return l.scan.Projection[local]
}

// equi is one equality conjunct usable as a join edge. Keyable edges
// come from ON clauses and become hash-join key pairs in rebuilt trees
// (hash-key matching semantics carry over exactly); non-keyable edges
// come from pushed WHERE conjuncts and are re-evaluated as residual
// comparison filters — promoting a comparison to a hash key could
// change NaN / mixed-type matching semantics, so they never become
// keys. Both kinds contribute 1/max(NDV) to cardinality estimates.
type equi struct {
	l, r       plan.Expr // syntactic full-schema space
	lSet, rSet leafSet
	keyable    bool
	pushed     plan.Expr // conjunct to re-evaluate in the rebuilt tree; nil for ON keys
}

// residual is a non-equality conjunct spanning several leaves, placed
// at the earliest join where all its columns are available.
type residual struct {
	e   plan.Expr
	set leafSet
	sel float64
}

// chain is a maximal left-deep inner-join chain over base-table scans,
// decomposed into leaves and normalized conjuncts.
type chain struct {
	leaves []*chainLeaf
	equis  []equi
	res    []residual
}

// buildChain decomposes the left-deep inner-join tree under root. It
// returns ok=false when the chain is not safely reorderable: a leaf is
// not a plain base-table scan, a join key side spans several leaves,
// or a predicate contains a UDF call.
func buildChain(root *plan.HashJoin, whereConjs []plan.Expr) (*chain, bool) {
	c := &chain{}
	var joins []*plan.HashJoin
	var walk func(n plan.Node) bool
	walk = func(n plan.Node) bool {
		if hj, ok := n.(*plan.HashJoin); ok && hj.Kind == sql.InnerJoin {
			if !walk(hj.Left) {
				return false
			}
			joins = append(joins, hj)
			n = hj.Right
		}
		sc, ok := n.(*plan.Scan)
		if !ok || sc.RowPos {
			return false
		}
		c.leaves = append(c.leaves, &chainLeaf{scan: sc})
		return true
	}
	if !walk(root) || len(c.leaves) < 2 || len(c.leaves) > maxChainLeaves {
		return nil, false
	}
	off := 0
	for _, l := range c.leaves {
		l.start = off
		l.width = len(l.scan.Schema())
		off += l.width
		l.rows = float64(l.scan.Table.Data.NumRows())
		l.stats = l.scan.Table.Data.ColumnStatistics()
	}

	// joins[i] joins the prefix of leaves[0..i] with leaves[i+1].
	for i, hj := range joins {
		leaf := c.leaves[i+1]
		for k := range hj.LeftKeys {
			if hasCall(hj.LeftKeys[k]) || hasCall(hj.RightKeys[k]) {
				return nil, false
			}
			l := hj.LeftKeys[k] // prefix schema is a prefix of the full schema
			r := shiftExpr(hj.RightKeys[k], leaf.start)
			lSet, ok1 := c.refLeaves(l)
			rSet, ok2 := c.refLeaves(r)
			if !ok1 || !ok2 || lSet.count() > 1 || rSet.count() > 1 {
				// A multi-leaf key side can become un-keyable under
				// reordering, and demoting a hash key to a comparison
				// filter is not semantics-preserving. Keep syntactic.
				return nil, false
			}
			c.equis = append(c.equis, equi{l: l, r: r, lSet: lSet, rSet: rSet, keyable: true})
		}
		if hj.Extra != nil {
			for _, conj := range splitConjuncts(hj.Extra) {
				if hasCall(conj) {
					return nil, false
				}
				if !c.addConjunct(conj) {
					return nil, false
				}
			}
		}
	}
	for _, conj := range whereConjs {
		if hasCall(conj) {
			continue // stays in the top filter only; estimated nowhere
		}
		if !c.addConjunct(conj) {
			return nil, false
		}
	}
	c.leafCards()
	return c, true
}

// addConjunct classifies one pushable conjunct: single-leaf conjuncts
// filter at the leaf, cross-leaf equalities become (non-keyable) join
// edges, everything else is a residual filter.
func (c *chain) addConjunct(conj plan.Expr) bool {
	set, ok := c.refLeaves(conj)
	if !ok {
		return false
	}
	if set.count() == 1 {
		l := c.leaves[bits.TrailingZeros64(uint64(set))]
		l.filters = append(l.filters, conj)
		return true
	}
	if b, okb := conj.(*plan.BinOp); okb && b.Op == sql.OpEq {
		lSet, ok1 := c.refLeaves(b.Left)
		rSet, ok2 := c.refLeaves(b.Right)
		if ok1 && ok2 && lSet.count() == 1 && rSet.count() == 1 && lSet != rSet {
			c.equis = append(c.equis, equi{l: b.Left, r: b.Right, lSet: lSet, rSet: rSet, pushed: conj})
			return true
		}
	}
	c.res = append(c.res, residual{e: conj, set: set, sel: filterConjSel(conj)})
	return true
}

// leafCards estimates each leaf's post-filter cardinality. Conjuncts
// that mirror a pushed-down scan predicate are counted once.
func (c *chain) leafCards() {
	for _, l := range c.leaves {
		card := l.rows
		for _, p := range l.scan.Preds {
			card *= predSel(l.stats, l.rows, p)
		}
		for _, f := range l.filters {
			if p, ok := scanPredAt(f, l.scan, l.start); ok {
				if !predsContain(l.scan.Preds, p) {
					card *= predSel(l.stats, l.rows, p)
				}
				continue
			}
			card *= filterConjSel(f)
		}
		l.card = math.Max(card, 1)
	}
}

func (c *chain) leafIndexOf(col int) int {
	for i, l := range c.leaves {
		if col >= l.start && col < l.start+l.width {
			return i
		}
	}
	return -1
}

func (c *chain) refLeaves(e plan.Expr) (leafSet, bool) {
	set, ok := leafSet(0), true
	plan.EachColRef(e, func(r *plan.ColRef) {
		li := c.leafIndexOf(r.Idx)
		if li < 0 {
			ok = false
			return
		}
		set |= single(li)
	})
	return set, ok
}

// sideNDV estimates the distinct count of one side of an equi edge.
// Plain column references read the HLL estimate; constants are one
// value; computed expressions default to sqrt of the side cardinality.
func (c *chain) sideNDV(e plan.Expr, sideCard float64) float64 {
	switch x := e.(type) {
	case *plan.ColRef:
		if li := c.leafIndexOf(x.Idx); li >= 0 {
			l := c.leaves[li]
			tcol := l.tableCol(x.Idx - l.start)
			if tcol >= 0 && tcol < len(l.stats) {
				return math.Min(colNDV(l.stats[tcol], l.rows), math.Max(sideCard, 1))
			}
		}
	case *plan.Const:
		_ = x
		return 1
	}
	return math.Max(1, math.Sqrt(math.Max(sideCard, 1)))
}

// orderEval scores one join order incrementally. cost accumulates
// step outputs plus build-side inputs — the two terms the hash join's
// runtime is proportional to.
type orderEval struct {
	c        *chain
	accSet   leafSet
	card     float64
	usedEq   uint64
	usedRes  uint64
	cost     float64
	steps    []float64
	buildAcc []bool // per step: accumulated side is the (Right) build side
}

func (c *chain) newEval(first int) *orderEval {
	return &orderEval{c: c, accSet: single(first), card: c.leaves[first].card}
}

func (ev *orderEval) sideCard(set leafSet, li int, leafCard float64) float64 {
	if set != 0 && set.subset(single(li)) {
		return leafCard
	}
	return ev.card
}

// peek estimates the output of joining leaf li next, and whether a
// keyable edge connects it to the accumulated set, without mutating
// the evaluation.
func (ev *orderEval) peek(li int) (out float64, connected bool) {
	c := ev.c
	leafCard := c.leaves[li].card
	newSet := ev.accSet | single(li)
	sel := 1.0
	for i := range c.equis {
		e := &c.equis[i]
		if ev.usedEq&(1<<uint(i)) != 0 || !(e.lSet | e.rSet).subset(newSet) {
			continue
		}
		if e.keyable {
			connected = true
		}
		n1 := c.sideNDV(e.l, ev.sideCard(e.lSet, li, leafCard))
		n2 := c.sideNDV(e.r, ev.sideCard(e.rSet, li, leafCard))
		sel /= math.Max(math.Max(n1, n2), 1)
	}
	for i := range c.res {
		r := &c.res[i]
		if ev.usedRes&(1<<uint(i)) != 0 || !r.set.subset(newSet) {
			continue
		}
		sel *= r.sel
	}
	return math.Max(ev.card*leafCard*sel, 1), connected
}

// add joins leaf li onto the accumulated tree. The build side is the
// smaller estimated input; forceLeafBuild pins the syntactic behavior
// (the new leaf always builds), used to score the baseline plan.
func (ev *orderEval) add(li int, forceLeafBuild bool) {
	out, _ := ev.peek(li)
	c := ev.c
	newSet := ev.accSet | single(li)
	for i := range c.equis {
		if (c.equis[i].lSet | c.equis[i].rSet).subset(newSet) {
			ev.usedEq |= 1 << uint(i)
		}
	}
	for i := range c.res {
		if c.res[i].set.subset(newSet) {
			ev.usedRes |= 1 << uint(i)
		}
	}
	leafCard := c.leaves[li].card
	buildAcc := !forceLeafBuild && ev.card <= leafCard
	build := leafCard
	if buildAcc {
		build = ev.card
	}
	ev.cost += out + build
	ev.card = out
	ev.accSet = newSet
	ev.steps = append(ev.steps, out)
	ev.buildAcc = append(ev.buildAcc, buildAcc)
}

// greedyOrder builds an order smallest-intermediate-first: start at
// the smallest filtered leaf, then repeatedly add the leaf giving the
// smallest next intermediate, preferring leaves connected by a keyable
// edge (an unconnected pick is a cross product and only happens when
// nothing is connected).
func (c *chain) greedyOrder() ([]int, *orderEval) {
	n := len(c.leaves)
	first := 0
	for i := 1; i < n; i++ {
		if c.leaves[i].card < c.leaves[first].card {
			first = i
		}
	}
	order := []int{first}
	ev := c.newEval(first)
	placed := single(first)
	for len(order) < n {
		best, bestOut, bestConn := -1, 0.0, false
		for li := 0; li < n; li++ {
			if placed.has(li) {
				continue
			}
			out, conn := ev.peek(li)
			better := best < 0 ||
				(conn && !bestConn) ||
				(conn == bestConn && out < bestOut)
			if better && !(bestConn && !conn) {
				best, bestOut, bestConn = li, out, conn
			}
		}
		ev.add(best, false)
		order = append(order, best)
		placed |= single(best)
	}
	return order, ev
}

// shiftExpr offsets every column reference by delta.
func shiftExpr(e plan.Expr, delta int) plan.Expr {
	if delta == 0 {
		return e
	}
	return plan.MapColRefs(e, func(r *plan.ColRef) plan.Expr {
		return &plan.ColRef{Idx: r.Idx + delta, Typ: r.Typ, Name: r.Name}
	})
}

// rebuild materializes the chosen order as a new join tree that is
// byte-identical to the syntactic one: every leaf is tagged with its
// table row position, joined in the new order with pushed-down
// filters, then sorted back into syntactic row order (the syntactic
// left-deep chain emits rows in lexicographic order of base row
// positions) and projected back into the syntactic column order.
func (c *chain) rebuild(order []int, ev *orderEval) plan.Node {
	nodes := make([]plan.Node, len(c.leaves))
	for i, l := range c.leaves {
		l.scan.RowPos = true
		var n plan.Node = l.scan
		if len(l.filters) > 0 {
			start := l.start
			conj := make([]plan.Expr, len(l.filters))
			for k, f := range l.filters {
				conj[k] = plan.MapColRefs(f, func(r *plan.ColRef) plan.Expr {
					return &plan.ColRef{Idx: r.Idx - start, Typ: r.Typ, Name: r.Name}
				})
			}
			n = &plan.Filter{Pred: andAll(conj), Child: n}
		}
		nodes[i] = n
	}

	layout := []int{order[0]}
	tree := nodes[order[0]]
	accSet := single(order[0])
	var usedEq, usedRes uint64
	for si, li := range order[1:] {
		leaf := c.leaves[li]
		newSet := accSet | single(li)
		prevLayout := append([]int(nil), layout...)
		buildAcc := ev.buildAcc[si]
		if buildAcc {
			layout = append([]int{li}, layout...)
		} else {
			layout = append(layout, li)
		}

		var lkeys, rkeys, extras []plan.Expr
		for i := range c.equis {
			e := &c.equis[i]
			if usedEq&(1<<uint(i)) != 0 || !(e.lSet | e.rSet).subset(newSet) {
				continue
			}
			usedEq |= 1 << uint(i)
			if !e.keyable {
				extras = append(extras, c.remapLayout(e.pushed, layout))
				continue
			}
			leafE, accE := e.l, e.r
			if !(e.lSet.subset(single(li)) && e.rSet.subset(accSet)) {
				leafE, accE = e.r, e.l
			}
			start := leaf.start
			leafK := plan.MapColRefs(leafE, func(r *plan.ColRef) plan.Expr {
				return &plan.ColRef{Idx: r.Idx - start, Typ: r.Typ, Name: r.Name}
			})
			accK := c.remapLayout(accE, prevLayout)
			if buildAcc {
				lkeys = append(lkeys, leafK)
				rkeys = append(rkeys, accK)
			} else {
				lkeys = append(lkeys, accK)
				rkeys = append(rkeys, leafK)
			}
		}
		for i := range c.res {
			r := &c.res[i]
			if usedRes&(1<<uint(i)) != 0 || !r.set.subset(newSet) {
				continue
			}
			usedRes |= 1 << uint(i)
			extras = append(extras, c.remapLayout(r.e, layout))
		}

		jn := &plan.HashJoin{Kind: sql.InnerJoin, LeftKeys: lkeys, RightKeys: rkeys, Extra: andAll(extras)}
		if buildAcc {
			jn.Left, jn.Right = nodes[li], tree
		} else {
			jn.Left, jn.Right = tree, nodes[li]
		}
		jn.Hints.EstRows = int64(ev.steps[si])
		tree = jn
		accSet = newSet
	}

	offsets := make([]int, len(c.leaves))
	off := 0
	for _, li := range layout {
		offsets[li] = off
		off += c.leaves[li].width + 1
	}
	var keys []plan.SortKey
	for li, l := range c.leaves { // syntactic leaf priority
		keys = append(keys, plan.SortKey{Expr: &plan.ColRef{
			Idx: offsets[li] + l.width, Typ: vector.Int64, Name: "__rowpos"}})
	}
	sorted := &plan.Sort{Keys: keys, Child: tree}
	sorted.Hints.EstRows = int64(ev.card)

	var exprs []plan.Expr
	var names []string
	for _, l := range c.leaves {
		sch := l.scan.Schema()
		base := offsets[c.leafIndexOf(l.start)]
		for k := 0; k < l.width; k++ {
			exprs = append(exprs, &plan.ColRef{Idx: base + k, Typ: sch[k].Type, Name: sch[k].Name})
			names = append(names, sch[k].Name)
		}
	}
	return &plan.Project{Exprs: exprs, Names: names, Child: sorted}
}

// remapLayout rewrites a full-schema expression into the rebuilt
// tree's column space: each leaf occupies a block of width+1 columns
// (its pruned schema plus the rowpos tag) at its layout offset.
func (c *chain) remapLayout(e plan.Expr, layout []int) plan.Expr {
	return plan.MapColRefs(e, func(r *plan.ColRef) plan.Expr {
		li := c.leafIndexOf(r.Idx)
		l := c.leaves[li]
		off := 0
		for _, m := range layout {
			if m == li {
				break
			}
			off += c.leaves[m].width + 1
		}
		return &plan.ColRef{Idx: off + (r.Idx - l.start), Typ: r.Typ, Name: r.Name}
	})
}

// scanPredAt converts a conjunct whose column references live at
// offset start (relative to scan sc's output) into a table-space scan
// predicate, mirroring the binder's pushdown shape rules.
func scanPredAt(e plan.Expr, sc *plan.Scan, start int) (plan.ScanPredicate, bool) {
	b, ok := e.(*plan.BinOp)
	if !ok {
		return plan.ScanPredicate{}, false
	}
	switch b.Op {
	case sql.OpEq, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
	default:
		return plan.ScanPredicate{}, false
	}
	col, cok := b.Left.(*plan.ColRef)
	cst, vok := b.Right.(*plan.Const)
	op := b.Op
	if !cok || !vok {
		cst, vok = b.Left.(*plan.Const)
		col, cok = b.Right.(*plan.ColRef)
		op = flipCompare(b.Op)
	}
	if !cok || !vok || cst.Val.IsNull() {
		return plan.ScanPredicate{}, false
	}
	ct, vt := col.Typ, cst.Val.Type()
	comparable := (ct.IsNumeric() && vt.IsNumeric()) || (ct == vt && ct != vector.Blob)
	if !comparable {
		return plan.ScanPredicate{}, false
	}
	local := col.Idx - start
	if local < 0 {
		return plan.ScanPredicate{}, false
	}
	tcol := local
	if sc.Projection != nil {
		if local >= len(sc.Projection) {
			return plan.ScanPredicate{}, false
		}
		tcol = sc.Projection[local]
	}
	return plan.ScanPredicate{Col: tcol, Op: op, Val: cst.Val}, true
}

func flipCompare(op sql.BinaryOp) sql.BinaryOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	}
	return op
}

// predsContain reports whether preds already includes p (same column,
// operator and constant) — used to avoid double-counting conjuncts the
// binder pushed down for zone-map pruning.
func predsContain(preds []plan.ScanPredicate, p plan.ScanPredicate) bool {
	for _, q := range preds {
		if q.Col != p.Col || q.Op != p.Op {
			continue
		}
		if cmp, err := q.Val.Compare(p.Val); err == nil && cmp == 0 {
			return true
		}
	}
	return false
}
