package plan

import (
	"vexdb/internal/catalog"
	"vexdb/internal/sql"
)

// TableScope is a public binding scope over a single table's columns,
// used by the engine for DELETE/UPDATE predicates that are evaluated
// outside a full SELECT plan.
type TableScope struct {
	sc *scope
}

// NewTableScope builds a scope exposing the table's columns both
// unqualified and qualified by the table name.
func NewTableScope(tab *catalog.Table) *TableScope {
	sc := &scope{}
	for _, c := range tab.Schema {
		sc.add(tab.Name, c.Name, c.Type)
	}
	return &TableScope{sc: sc}
}

// BindExprIn binds an AST expression against a table scope.
func (b *Binder) BindExprIn(e sql.Expr, ts *TableScope) (Expr, error) {
	return b.bindExpr(e, ts.sc, false)
}
