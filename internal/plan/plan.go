package plan

import (
	"sync/atomic"

	"vexdb/internal/catalog"
	"vexdb/internal/core"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// Node is a bound logical plan node. Schema returns the node's output
// columns in order.
type Node interface {
	Schema() catalog.Schema
}

// NodeStats receives per-node runtime counters when a plan is executed
// with taps installed (EXPLAIN ANALYZE). Updated atomically by the
// executor; read after the stream drains.
type NodeStats struct {
	Rows atomic.Int64 // rows the node emitted

	// Hybrid spill-mode counters for blocking operators: how many hash
	// partitions overflowed to disk vs stayed resident in memory after
	// the operator went out-of-core. Both zero when the operator never
	// overflowed.
	SpillSpilled  atomic.Int64
	SpillResident atomic.Int64
}

// ExecHints carries cost-based planner decisions down to the executor.
// Every hint is advisory and result-preserving: the executor may honor
// or ignore any of them without changing output bytes. The zero value
// means "no hints" (syntactic behavior).
type ExecHints struct {
	// EstRows is the planner's output-cardinality estimate; 0 means
	// unknown. Used for EXPLAIN and for sizing decisions.
	EstRows int64
	// Serial forces single-worker execution of this operator when the
	// estimated input is too small to amortize parallel setup.
	Serial bool
	// FanoutLog2 overrides the first-level spill partition fan-out
	// (log2 of the partition count); 0 keeps the default.
	FanoutLog2 int
	// Tap, when non-nil, asks the executor to count the node's actual
	// output rows into it (EXPLAIN ANALYZE).
	Tap *NodeStats
}

// ScanPredicate is one scan-eligible WHERE conjunct of the form
// `column <op> constant`, pushed down to the scan for zone-map
// pruning. Col is the table-schema position (not the projected
// position), so it stays valid across column pruning. The predicate
// is advisory: the full WHERE filter still runs over every surviving
// chunk, so pruning may only skip segments whose zone maps prove no
// row can match — it never substitutes for row-level evaluation.
type ScanPredicate struct {
	Col int
	Op  sql.BinaryOp // OpEq, OpLt, OpLe, OpGt or OpGe
	Val vector.Value // non-NULL constant
}

// Scan reads a base table. Projection (set by Prune) restricts the
// produced columns to the listed table-schema positions; nil produces
// every column. Preds (set by the binder) are pushed-down predicates
// the scan may use to skip whole segments. RowPos (set by the
// cost-based join reorderer, after pruning) appends a synthetic
// "__rowpos" Int64 column holding each row's global position in the
// table — positions count every segment, including ones zone-map
// pruning skips, so they identify rows stably across plans.
type Scan struct {
	Table      *catalog.Table
	Projection []int
	Preds      []ScanPredicate
	RowPos     bool
	Hints      ExecHints
}

// Schema implements Node.
func (s *Scan) Schema() catalog.Schema {
	out := s.Table.Schema
	if s.Projection != nil {
		out = make(catalog.Schema, 0, len(s.Projection)+1)
		for _, p := range s.Projection {
			out = append(out, s.Table.Schema[p])
		}
	}
	if s.RowPos {
		out = append(out[:len(out):len(out)], catalog.Column{Name: "__rowpos", Type: vector.Int64})
	}
	return out
}

// MaterialScan reads an already materialized table (UNION inputs,
// VALUES, cached relations).
type Material struct {
	Data  *vector.Table
	Schem catalog.Schema
}

// Schema implements Node.
func (m *Material) Schema() catalog.Schema { return m.Schem }

// FuncArg is one bound argument of a table-function scan: either a
// subplan producing a relation or a constant scalar expression
// (evaluated once at execution time).
type FuncArg struct {
	Sub       Node // non-nil for relation arguments
	ConstExpr Expr // used when Sub is nil
}

// TableFuncScan invokes a table UDF with bound arguments and scans its
// result (Listing 1 of the paper: SELECT * FROM train(...)).
type TableFuncScan struct {
	Fn   *core.TableFunc
	Args []FuncArg
}

// Schema implements Node.
func (t *TableFuncScan) Schema() catalog.Schema {
	s := make(catalog.Schema, len(t.Fn.Columns))
	for i, c := range t.Fn.Columns {
		s[i] = catalog.Column{Name: c.Name, Type: c.Type}
	}
	return s
}

// Filter keeps rows where Pred evaluates to TRUE.
type Filter struct {
	Pred  Expr
	Child Node
	Hints ExecHints
}

// Schema implements Node.
func (f *Filter) Schema() catalog.Schema { return f.Child.Schema() }

// Project computes output columns from expressions over the child.
type Project struct {
	Exprs []Expr
	Names []string
	Child Node
}

// Schema implements Node.
func (p *Project) Schema() catalog.Schema {
	s := make(catalog.Schema, len(p.Exprs))
	for i, e := range p.Exprs {
		s[i] = catalog.Column{Name: p.Names[i], Type: e.Type()}
	}
	return s
}

// HashJoin joins Left and Right on equi-key pairs; Extra holds any
// residual non-equi conjuncts of the ON clause. Output columns are the
// left schema followed by the right schema.
type HashJoin struct {
	Kind      sql.JoinKind
	Left      Node
	Right     Node
	LeftKeys  []Expr // evaluated over Left's schema
	RightKeys []Expr // evaluated over Right's schema
	Extra     Expr   // evaluated over the combined schema; may be nil
	Hints     ExecHints
}

// Schema implements Node.
func (j *HashJoin) Schema() catalog.Schema {
	ls, rs := j.Left.Schema(), j.Right.Schema()
	out := make(catalog.Schema, 0, len(ls)+len(rs))
	out = append(out, ls...)
	out = append(out, rs...)
	return out
}

// AggKind identifies an aggregate function.
type AggKind uint8

// Aggregate kinds.
const (
	AggCount AggKind = iota // count(*) when Arg == nil
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate computation.
type AggSpec struct {
	Kind     AggKind
	Arg      Expr // nil for count(*)
	Distinct bool
	Name     string
	Typ      vector.Type
}

// Aggregate groups the child by GroupBy expressions and computes Aggs.
// Output columns are the group expressions followed by the aggregates.
type Aggregate struct {
	GroupBy    []Expr
	GroupNames []string
	Aggs       []AggSpec
	Child      Node
	Hints      ExecHints
}

// Schema implements Node.
func (a *Aggregate) Schema() catalog.Schema {
	out := make(catalog.Schema, 0, len(a.GroupBy)+len(a.Aggs))
	for i, g := range a.GroupBy {
		out = append(out, catalog.Column{Name: a.GroupNames[i], Type: g.Type()})
	}
	for _, s := range a.Aggs {
		out = append(out, catalog.Column{Name: s.Name, Type: s.Typ})
	}
	return out
}

// SortKey is one ORDER BY key over the child's output columns.
type SortKey struct {
	Expr Expr
	Desc bool
}

// Sort orders the child's rows. Limit, when > 0, is an advisory hint
// set by the binder when an enclosing LIMIT bounds how many ordered
// rows any consumer can observe (offset+count): the executor's
// parallel merge may stop producing after that many rows. The Limit
// node above still enforces the bound, so the hint can only skip work,
// never change results. Limit <= 0 (the zero value) means unbounded.
type Sort struct {
	Keys  []SortKey
	Child Node
	Limit int64
	Hints ExecHints
}

// Schema implements Node.
func (s *Sort) Schema() catalog.Schema { return s.Child.Schema() }

// Limit returns at most Count rows after skipping Offset rows.
// Count < 0 means no limit.
type Limit struct {
	Count  int64
	Offset int64
	Child  Node
}

// Schema implements Node.
func (l *Limit) Schema() catalog.Schema { return l.Child.Schema() }

// Distinct removes duplicate rows.
type Distinct struct {
	Child Node
	Hints ExecHints
}

// Schema implements Node.
func (d *Distinct) Schema() catalog.Schema { return d.Child.Schema() }

// GroupExprs returns the child's output columns as group-by
// expressions: DISTINCT is equivalent to grouping by every column
// with no aggregates, which is how the parallel executor runs it
// (per-worker distinct sets unioned at the first-appearance merge).
func (d *Distinct) GroupExprs() ([]Expr, []string) {
	schema := d.Child.Schema()
	exprs := make([]Expr, len(schema))
	names := make([]string, len(schema))
	for i, c := range schema {
		exprs[i] = &ColRef{Idx: i, Typ: c.Type, Name: c.Name}
		names[i] = c.Name
	}
	return exprs, names
}

// Union concatenates two inputs with identical arity (types must be
// pairwise compatible). All=false removes duplicates.
type Union struct {
	Left  Node
	Right Node
	All   bool
}

// Schema implements Node.
func (u *Union) Schema() catalog.Schema { return u.Left.Schema() }
