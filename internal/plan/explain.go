// EXPLAIN rendering: a plan tree formats as an indented operator
// outline annotated with the cost-based planner's decisions — join
// order (tree shape), build sides (a hash join always builds on its
// right child), estimated cardinalities, serial-vs-parallel pinning,
// and spill fan-out sizing. With actuals enabled (EXPLAIN ANALYZE),
// each annotated operator also reports the rows it really emitted,
// collected through the Tap counters the engine installs before the
// run.
package plan

import (
	"fmt"
	"strings"
)

// InstallTaps attaches a row counter to every operator that carries
// execution hints, so a subsequent run records actual cardinalities
// for EXPLAIN ANALYZE. Returns the root for chaining.
func InstallTaps(n Node) Node {
	switch x := n.(type) {
	case *Scan:
		x.Hints.Tap = &NodeStats{}
	case *Filter:
		x.Hints.Tap = &NodeStats{}
		InstallTaps(x.Child)
	case *Project:
		InstallTaps(x.Child)
	case *HashJoin:
		x.Hints.Tap = &NodeStats{}
		InstallTaps(x.Left)
		InstallTaps(x.Right)
	case *Aggregate:
		x.Hints.Tap = &NodeStats{}
		InstallTaps(x.Child)
	case *Sort:
		x.Hints.Tap = &NodeStats{}
		InstallTaps(x.Child)
	case *Limit:
		InstallTaps(x.Child)
	case *Distinct:
		x.Hints.Tap = &NodeStats{}
		InstallTaps(x.Child)
	case *Union:
		InstallTaps(x.Left)
		InstallTaps(x.Right)
	case *TableFuncScan:
		for i := range x.Args {
			if x.Args[i].Sub != nil {
				InstallTaps(x.Args[i].Sub)
			}
		}
	}
	return n
}

// Render formats the plan as one operator per line. withActuals adds
// the Tap counters' observed row counts (EXPLAIN ANALYZE, after the
// query has been drained).
func Render(n Node, withActuals bool) string {
	var b strings.Builder
	render(&b, n, 0, withActuals)
	return strings.TrimRight(b.String(), "\n")
}

func render(b *strings.Builder, n Node, depth int, act bool) {
	indent := strings.Repeat("  ", depth)
	line := func(format string, args ...any) {
		fmt.Fprintf(b, "%s%s\n", indent, fmt.Sprintf(format, args...))
	}
	switch x := n.(type) {
	case *Scan:
		s := fmt.Sprintf("Scan %s", x.Table.Name)
		if len(x.Preds) > 0 {
			s += fmt.Sprintf(" preds=%d", len(x.Preds))
		}
		if x.RowPos {
			s += " rowpos"
		}
		line("%s%s", s, hintSuffix(&x.Hints, false, act))
	case *Material:
		line("Material rows=%d", x.Data.NumRows())
	case *TableFuncScan:
		line("TableFunc %s", x.Fn.Name)
		for i := range x.Args {
			if x.Args[i].Sub != nil {
				render(b, x.Args[i].Sub, depth+1, act)
			}
		}
	case *Filter:
		line("Filter %s%s", ExprString(x.Pred), hintSuffix(&x.Hints, false, act))
		render(b, x.Child, depth+1, act)
	case *Project:
		line("Project cols=%d", len(x.Exprs))
		render(b, x.Child, depth+1, act)
	case *HashJoin:
		kind := "inner"
		if x.Kind != 0 {
			kind = "left"
		}
		s := fmt.Sprintf("HashJoin %s", kind)
		if len(x.LeftKeys) > 0 {
			pairs := make([]string, len(x.LeftKeys))
			for i := range x.LeftKeys {
				pairs[i] = ExprString(x.LeftKeys[i]) + " = " + ExprString(x.RightKeys[i])
			}
			s += " on " + strings.Join(pairs, ", ")
		} else {
			s += " cross"
		}
		if x.Extra != nil {
			s += " residual"
		}
		s += " build=right"
		line("%s%s", s, hintSuffix(&x.Hints, true, act))
		render(b, x.Left, depth+1, act)
		render(b, x.Right, depth+1, act)
	case *Aggregate:
		line("Aggregate groups=%d aggs=%d%s", len(x.GroupBy), len(x.Aggs), hintSuffix(&x.Hints, false, act))
		render(b, x.Child, depth+1, act)
	case *Sort:
		s := fmt.Sprintf("Sort keys=%d", len(x.Keys))
		if x.Limit > 0 {
			s += fmt.Sprintf(" topk=%d", x.Limit)
		}
		line("%s%s", s, hintSuffix(&x.Hints, false, act))
		render(b, x.Child, depth+1, act)
	case *Limit:
		line("Limit count=%d offset=%d", x.Count, x.Offset)
		render(b, x.Child, depth+1, act)
	case *Distinct:
		line("Distinct%s", hintSuffix(&x.Hints, false, act))
		render(b, x.Child, depth+1, act)
	case *Union:
		all := ""
		if x.All {
			all = " all"
		}
		line("Union%s", all)
		render(b, x.Left, depth+1, act)
		render(b, x.Right, depth+1, act)
	default:
		line("%T", n)
	}
}

// hintSuffix renders an operator's planner annotations: estimated (and
// with act, actual) rows, the serial/parallel pin, and — for operators
// that can grace-partition (fanout) — the sized spill fan-out.
func hintSuffix(h *ExecHints, fanout, act bool) string {
	var parts []string
	parts = append(parts, fmt.Sprintf("est=%d", h.EstRows))
	if act && h.Tap != nil {
		parts = append(parts, fmt.Sprintf("act=%d", h.Tap.Rows.Load()))
		// Hybrid spill outcome for blocking operators that overflowed:
		// partitions written to disk vs kept resident in memory.
		if sp, res := h.Tap.SpillSpilled.Load(), h.Tap.SpillResident.Load(); sp > 0 || res > 0 {
			parts = append(parts, fmt.Sprintf("spilled=%d resident=%d", sp, res))
		}
	}
	if h.Serial {
		parts = append(parts, "serial")
	}
	if fanout && h.FanoutLog2 > 4 {
		parts = append(parts, fmt.Sprintf("fanout=%d", 1<<h.FanoutLog2))
	}
	return " [" + strings.Join(parts, " ") + "]"
}
