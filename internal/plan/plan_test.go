package plan

import (
	"testing"

	"vexdb/internal/catalog"
	"vexdb/internal/core"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	if _, err := cat.CreateTable("wide", catalog.Schema{
		{Name: "a", Type: vector.Int64},
		{Name: "b", Type: vector.Float64},
		{Name: "c", Type: vector.String},
		{Name: "d", Type: vector.Int64},
		{Name: "e", Type: vector.Float64},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.CreateTable("dim", catalog.Schema{
		{Name: "k", Type: vector.Int64},
		{Name: "label", Type: vector.String},
		{Name: "weight", Type: vector.Float64},
	}); err != nil {
		t.Fatal(err)
	}
	return cat
}

func bind(t *testing.T, cat *catalog.Catalog, query string) Node {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	core.RegisterBuiltins(reg)
	node, err := NewBinder(cat, reg).BindSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("bind %q: %v", query, err)
	}
	return node
}

func findScans(node Node) []*Scan {
	var out []*Scan
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			out = append(out, x)
		case *Filter:
			walk(x.Child)
		case *Project:
			walk(x.Child)
		case *HashJoin:
			walk(x.Left)
			walk(x.Right)
		case *Aggregate:
			walk(x.Child)
		case *Sort:
			walk(x.Child)
		case *Limit:
			walk(x.Child)
		case *Distinct:
			walk(x.Child)
		case *Union:
			walk(x.Left)
			walk(x.Right)
		case *TableFuncScan:
			for _, a := range x.Args {
				if a.Sub != nil {
					walk(a.Sub)
				}
			}
		}
	}
	walk(node)
	return out
}

func TestPruneNarrowsScan(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, "SELECT a FROM wide WHERE b > 1")
	pruned := Prune(node)
	scans := findScans(pruned)
	if len(scans) != 1 {
		t.Fatalf("scans = %d", len(scans))
	}
	// Only a and b are referenced.
	if got := len(scans[0].Schema()); got != 2 {
		t.Fatalf("pruned scan has %d columns, want 2", got)
	}
	// Root schema unchanged.
	if len(pruned.Schema()) != 1 || pruned.Schema()[0].Name != "a" {
		t.Fatalf("root schema changed: %v", pruned.Schema())
	}
}

func TestPruneStarKeepsAll(t *testing.T) {
	cat := testCatalog(t)
	pruned := Prune(bind(t, cat, "SELECT * FROM wide"))
	scans := findScans(pruned)
	if len(scans[0].Schema()) != 5 {
		t.Fatalf("star scan pruned to %d columns", len(scans[0].Schema()))
	}
}

func TestPruneJoin(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, `
		SELECT w.a, d.label FROM wide w
		JOIN dim d ON w.d = d.k
		WHERE d.weight > 0`)
	pruned := Prune(node)
	scans := findScans(pruned)
	if len(scans) != 2 {
		t.Fatalf("scans = %d", len(scans))
	}
	// wide needs a and d (join key); dim needs k, label, weight.
	if len(scans[0].Schema()) != 2 {
		t.Fatalf("left scan has %d columns, want 2", len(scans[0].Schema()))
	}
	if len(scans[1].Schema()) != 3 {
		t.Fatalf("right scan has %d columns, want 3", len(scans[1].Schema()))
	}
	if len(pruned.Schema()) != 2 {
		t.Fatal("root schema changed")
	}
}

func TestPruneAggregate(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, "SELECT d, sum(b) AS s FROM wide GROUP BY d")
	pruned := Prune(node)
	scans := findScans(pruned)
	if len(scans[0].Schema()) != 2 { // d and b
		t.Fatalf("scan has %d columns, want 2", len(scans[0].Schema()))
	}
}

func TestPruneCountStarKeepsOneColumn(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, "SELECT count(*) FROM wide")
	pruned := Prune(node)
	scans := findScans(pruned)
	if len(scans[0].Schema()) != 1 {
		t.Fatalf("count(*) scan has %d columns, want 1 (row-count carrier)", len(scans[0].Schema()))
	}
}

func TestPruneOrderByHiddenColumn(t *testing.T) {
	cat := testCatalog(t)
	// ORDER BY on a non-projected column adds a hidden sort column;
	// pruning must keep it.
	node := bind(t, cat, "SELECT a FROM wide ORDER BY e DESC")
	pruned := Prune(node)
	if len(pruned.Schema()) != 1 || pruned.Schema()[0].Name != "a" {
		t.Fatalf("root schema = %v", pruned.Schema())
	}
	scans := findScans(pruned)
	if len(scans[0].Schema()) != 2 { // a and e
		t.Fatalf("scan has %d columns", len(scans[0].Schema()))
	}
}

func TestPruneDistinctKeepsAll(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, "SELECT DISTINCT a, b FROM wide")
	pruned := Prune(node)
	scans := findScans(pruned)
	if len(scans[0].Schema()) != 2 {
		t.Fatalf("scan has %d columns", len(scans[0].Schema()))
	}
}

func TestBinderAmbiguity(t *testing.T) {
	cat := testCatalog(t)
	stmt, err := sql.Parse("SELECT k FROM dim d1 JOIN dim d2 ON d1.k = d2.k")
	if err != nil {
		t.Fatal(err)
	}
	reg := core.NewRegistry()
	if _, err := NewBinder(cat, reg).BindSelect(stmt.(*sql.Select)); err == nil {
		t.Fatal("ambiguous column should fail to bind")
	}
}

func TestBinderTypeInference(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, "SELECT a + b AS s, a / d AS q, a = d AS eq, c || 'x' AS cc FROM wide")
	schema := node.Schema()
	if schema[0].Type != vector.Float64 { // int + float widens
		t.Errorf("a+b type = %v", schema[0].Type)
	}
	if schema[1].Type != vector.Float64 { // division is always double
		t.Errorf("a/d type = %v", schema[1].Type)
	}
	if schema[2].Type != vector.Bool {
		t.Errorf("a=d type = %v", schema[2].Type)
	}
	if schema[3].Type != vector.String {
		t.Errorf("concat type = %v", schema[3].Type)
	}
}

func TestBinderRejectsBadAggregates(t *testing.T) {
	cat := testCatalog(t)
	reg := core.NewRegistry()
	core.RegisterBuiltins(reg)
	bad := []string{
		"SELECT sum(c) FROM wide",             // sum over string
		"SELECT avg(c) FROM wide",             // avg over string
		"SELECT sum(sum(a)) FROM wide",        // nested aggregate
		"SELECT a, sum(b) FROM wide",          // bare column without group by
		"SELECT a FROM wide WHERE sum(b) > 1", // aggregate in WHERE
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := NewBinder(cat, reg).BindSelect(stmt.(*sql.Select)); err == nil {
			t.Errorf("bind %q should fail", q)
		}
	}
}

func TestEquiKeyExtraction(t *testing.T) {
	cat := testCatalog(t)
	node := bind(t, cat, `
		SELECT w.a FROM wide w JOIN dim d ON w.d = d.k AND w.b > d.weight`)
	var join *HashJoin
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *HashJoin:
			join = x
		case *Project:
			walk(x.Child)
		case *Filter:
			walk(x.Child)
		}
	}
	walk(node)
	if join == nil {
		t.Fatal("no join in plan")
	}
	if len(join.LeftKeys) != 1 || len(join.RightKeys) != 1 {
		t.Fatalf("equi keys = %d/%d", len(join.LeftKeys), len(join.RightKeys))
	}
	if join.Extra == nil {
		t.Fatal("residual predicate missing")
	}
}

func TestExprString(t *testing.T) {
	e := &BinOp{Op: sql.OpAdd,
		Left:  &ColRef{Idx: 0, Name: "a", Typ: vector.Int64},
		Right: &Const{Val: vector.NewInt64(1), Typ: vector.Int64},
		Typ:   vector.Int64}
	if got := ExprString(e); got != "(a + 1)" {
		t.Fatalf("ExprString = %q", got)
	}
}
