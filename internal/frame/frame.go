// Package frame is a small columnar dataframe used by the *external*
// benchmark pipelines (the pandas analog): once data has been loaded
// from CSV, binary files or a database socket, the client-side
// preprocessing — joins and aggregations — happens here, exactly as
// the paper's non-in-database variants do in pandas.
package frame

import (
	"fmt"
)

// Kind tags a column's payload type.
type Kind uint8

// Column payload kinds.
const (
	Int Kind = iota
	Float
	Str
)

// Column is one named, typed column. Exactly one payload slice is in
// use according to Kind.
type Column struct {
	Name   string
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
}

// Len returns the column's row count.
func (c *Column) Len() int {
	switch c.Kind {
	case Int:
		return len(c.Ints)
	case Float:
		return len(c.Floats)
	default:
		return len(c.Strs)
	}
}

func (c *Column) gather(sel []int) Column {
	out := Column{Name: c.Name, Kind: c.Kind}
	switch c.Kind {
	case Int:
		out.Ints = make([]int64, len(sel))
		for i, s := range sel {
			out.Ints[i] = c.Ints[s]
		}
	case Float:
		out.Floats = make([]float64, len(sel))
		for i, s := range sel {
			out.Floats[i] = c.Floats[s]
		}
	default:
		out.Strs = make([]string, len(sel))
		for i, s := range sel {
			out.Strs[i] = c.Strs[s]
		}
	}
	return out
}

// IntCol builds an integer column.
func IntCol(name string, v []int64) Column { return Column{Name: name, Kind: Int, Ints: v} }

// FloatCol builds a float column.
func FloatCol(name string, v []float64) Column { return Column{Name: name, Kind: Float, Floats: v} }

// StrCol builds a string column.
func StrCol(name string, v []string) Column { return Column{Name: name, Kind: Str, Strs: v} }

// DataFrame is an ordered set of equal-length columns.
type DataFrame struct {
	Cols []Column
}

// New builds a dataframe, validating equal column lengths.
func New(cols ...Column) (*DataFrame, error) {
	if len(cols) > 0 {
		n := cols[0].Len()
		for _, c := range cols[1:] {
			if c.Len() != n {
				return nil, fmt.Errorf("frame: column %q has %d rows, %q has %d", c.Name, c.Len(), cols[0].Name, n)
			}
		}
	}
	return &DataFrame{Cols: cols}, nil
}

// NumRows returns the row count.
func (df *DataFrame) NumRows() int {
	if len(df.Cols) == 0 {
		return 0
	}
	return df.Cols[0].Len()
}

// Col returns the named column or nil.
func (df *DataFrame) Col(name string) *Column {
	for i := range df.Cols {
		if df.Cols[i].Name == name {
			return &df.Cols[i]
		}
	}
	return nil
}

// MustCol returns the named column or an error.
func (df *DataFrame) MustCol(name string) (*Column, error) {
	c := df.Col(name)
	if c == nil {
		return nil, fmt.Errorf("frame: no column %q", name)
	}
	return c, nil
}

// AddColumn appends a column (length must match).
func (df *DataFrame) AddColumn(c Column) error {
	if len(df.Cols) > 0 && c.Len() != df.NumRows() {
		return fmt.Errorf("frame: column %q has %d rows, frame has %d", c.Name, c.Len(), df.NumRows())
	}
	df.Cols = append(df.Cols, c)
	return nil
}

// Filter returns the rows where keep returns true.
func (df *DataFrame) Filter(keep func(row int) bool) *DataFrame {
	var sel []int
	for i := 0; i < df.NumRows(); i++ {
		if keep(i) {
			sel = append(sel, i)
		}
	}
	return df.gather(sel)
}

func (df *DataFrame) gather(sel []int) *DataFrame {
	cols := make([]Column, len(df.Cols))
	for i := range df.Cols {
		cols[i] = df.Cols[i].gather(sel)
	}
	return &DataFrame{Cols: cols}
}

// InnerJoinInt joins df with right on two int64 key columns (hash join
// building on right). Output columns: all of df, then all of right
// except its key column. Right-side columns whose names collide get a
// "_r" suffix.
func (df *DataFrame) InnerJoinInt(right *DataFrame, leftKey, rightKey string) (*DataFrame, error) {
	lk, err := df.MustCol(leftKey)
	if err != nil {
		return nil, err
	}
	rk, err := right.MustCol(rightKey)
	if err != nil {
		return nil, err
	}
	if lk.Kind != Int || rk.Kind != Int {
		return nil, fmt.Errorf("frame: join keys must be integer columns")
	}
	idx := make(map[int64][]int, right.NumRows())
	for i, k := range rk.Ints {
		idx[k] = append(idx[k], i)
	}
	var leftSel, rightSel []int
	for i, k := range lk.Ints {
		for _, m := range idx[k] {
			leftSel = append(leftSel, i)
			rightSel = append(rightSel, m)
		}
	}
	out := df.gather(leftSel)
	taken := make(map[string]bool, len(out.Cols))
	for _, c := range out.Cols {
		taken[c.Name] = true
	}
	for i := range right.Cols {
		c := &right.Cols[i]
		if c.Name == rightKey {
			continue
		}
		gc := c.gather(rightSel)
		if taken[gc.Name] {
			gc.Name += "_r"
		}
		out.Cols = append(out.Cols, gc)
		taken[gc.Name] = true
	}
	return out, nil
}

// GroupSumInt groups rows by an int64 key column and sums the given
// float columns, returning a frame with the key plus one sum column
// per input (named "sum_<col>") and a "count" column. Group order is
// first appearance.
func (df *DataFrame) GroupSumInt(key string, sumCols ...string) (*DataFrame, error) {
	kc, err := df.MustCol(key)
	if err != nil {
		return nil, err
	}
	if kc.Kind != Int {
		return nil, fmt.Errorf("frame: group key %q must be an integer column", key)
	}
	srcs := make([]*Column, len(sumCols))
	for i, name := range sumCols {
		c, err := df.MustCol(name)
		if err != nil {
			return nil, err
		}
		srcs[i] = c
	}
	slot := make(map[int64]int, 1024)
	var keys []int64
	sums := make([][]float64, len(sumCols))
	var counts []int64
	for r, k := range kc.Ints {
		s, ok := slot[k]
		if !ok {
			s = len(keys)
			slot[k] = s
			keys = append(keys, k)
			counts = append(counts, 0)
			for i := range sums {
				sums[i] = append(sums[i], 0)
			}
		}
		counts[s]++
		for i, c := range srcs {
			switch c.Kind {
			case Float:
				sums[i][s] += c.Floats[r]
			case Int:
				sums[i][s] += float64(c.Ints[r])
			default:
				return nil, fmt.Errorf("frame: cannot sum string column %q", c.Name)
			}
		}
	}
	cols := []Column{IntCol(key, keys)}
	for i, name := range sumCols {
		cols = append(cols, FloatCol("sum_"+name, sums[i]))
	}
	cols = append(cols, IntCol("count", counts))
	return New(cols...)
}
