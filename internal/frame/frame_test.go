package frame

import "testing"

func sample(t *testing.T) *DataFrame {
	t.Helper()
	df, err := New(
		IntCol("id", []int64{1, 2, 3, 4}),
		FloatCol("v", []float64{10, 20, 30, 40}),
		StrCol("s", []string{"a", "b", "c", "d"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestNewValidation(t *testing.T) {
	if _, err := New(IntCol("a", []int64{1}), IntCol("b", []int64{1, 2})); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestColAccess(t *testing.T) {
	df := sample(t)
	if df.NumRows() != 4 {
		t.Fatal("rows")
	}
	if df.Col("v").Floats[1] != 20 || df.Col("zzz") != nil {
		t.Fatal("col lookup")
	}
	if _, err := df.MustCol("zzz"); err == nil {
		t.Fatal("MustCol missing should fail")
	}
}

func TestAddColumnAndFilter(t *testing.T) {
	df := sample(t)
	if err := df.AddColumn(IntCol("x", []int64{0, 1, 0, 1})); err != nil {
		t.Fatal(err)
	}
	if err := df.AddColumn(IntCol("bad", []int64{1})); err == nil {
		t.Fatal("short column should fail")
	}
	f := df.Filter(func(r int) bool { return df.Col("x").Ints[r] == 1 })
	if f.NumRows() != 2 || f.Col("id").Ints[0] != 2 || f.Col("s").Strs[1] != "d" {
		t.Fatalf("filter: %+v", f)
	}
}

func TestInnerJoinInt(t *testing.T) {
	left, _ := New(
		IntCol("id", []int64{1, 2, 2, 3}),
		FloatCol("v", []float64{1, 2, 2.5, 3}))
	right, _ := New(
		IntCol("key", []int64{2, 3, 9}),
		FloatCol("w", []float64{20, 30, 90}),
		FloatCol("v", []float64{200, 300, 900})) // name collision
	j, err := left.InnerJoinInt(right, "id", "key")
	if err != nil {
		t.Fatal(err)
	}
	// id=2 matches twice, id=3 once; id=1 and key=9 drop out.
	if j.NumRows() != 3 {
		t.Fatalf("rows = %d", j.NumRows())
	}
	if j.Col("w") == nil || j.Col("v_r") == nil {
		t.Fatal("joined columns missing / collision suffix missing")
	}
	if j.Col("w").Floats[0] != 20 || j.Col("v_r").Floats[2] != 300 {
		t.Fatalf("join values wrong: %+v", j.Col("w").Floats)
	}
	if _, err := left.InnerJoinInt(right, "v", "key"); err == nil {
		t.Fatal("non-int key should fail")
	}
}

func TestGroupSumInt(t *testing.T) {
	df, _ := New(
		IntCol("g", []int64{1, 2, 1, 1}),
		FloatCol("a", []float64{1, 2, 3, 4}),
		IntCol("b", []int64{10, 20, 30, 40}))
	g, err := df.GroupSumInt("g", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != 2 {
		t.Fatalf("groups = %d", g.NumRows())
	}
	// First-appearance order: group 1 first.
	if g.Col("g").Ints[0] != 1 || g.Col("sum_a").Floats[0] != 8 || g.Col("sum_b").Floats[0] != 80 {
		t.Fatalf("group 1 sums wrong: %+v", g)
	}
	if g.Col("count").Ints[0] != 3 || g.Col("count").Ints[1] != 1 {
		t.Fatal("counts wrong")
	}
	if _, err := df.GroupSumInt("a"); err == nil {
		t.Fatal("float group key should fail")
	}
}
