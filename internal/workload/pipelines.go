package workload

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vexdb"
	"vexdb/internal/engine"
	"vexdb/internal/fileformat/csvio"
	"vexdb/internal/fileformat/h5io"
	"vexdb/internal/fileformat/npyio"
	"vexdb/internal/frame"
	"vexdb/internal/vector"
	"vexdb/internal/wire"
	"vexdb/ml"
)

// Result is one Figure-1 bar: the timing breakdown and quality of a
// full voter-classification pipeline run under one data placement.
type Result struct {
	Method string
	// Load is the time to get raw bytes into client memory (zero for
	// the in-database pipeline, where the data is resident).
	Load time.Duration
	// Wrangle is join + label generation + train/test split.
	Wrangle time.Duration
	// Train is model fitting (including in-DB model storage).
	Train time.Duration
	// Predict is classification of the test set plus the per-precinct
	// aggregation of predictions.
	Predict time.Duration
	// Total is the end-to-end pipeline time.
	Total time.Duration
	// VoterAccuracy is agreement with the generated voter labels.
	VoterAccuracy float64
	// PrecinctMAE is the mean absolute error between predicted and
	// actual per-precinct democrat vote shares (the paper's
	// aggregated evaluation).
	PrecinctMAE float64
	// TestRows is the classified row count.
	TestRows int
}

// WrangleTotal is the Figure-1 gray bar: load + initial wrangling.
func (r Result) WrangleTotal() time.Duration { return r.Load + r.Wrangle }

// Env holds the prepared benchmark environment: generated datasets
// written in every external format, a resident database for the
// in-database pipeline, and a server for the socket pipelines.
type Env struct {
	Cfg       Config
	Dir       string
	Voters    *frame.DataFrame
	Precincts *frame.DataFrame

	// DB holds the resident data for the in-database pipeline.
	DB *vexdb.DB
	// ServerDB backs the wire server and the sqlite-like row API.
	ServerDB *engine.DB
	server   *wire.Server
	// Addr is the wire server's address.
	Addr string

	csvVoters    string
	csvPrecincts string
	h5Path       string
	npyDir       string
}

// Setup generates the datasets, writes every external format under
// dir, loads the database instances and starts the wire server. The
// preparation itself is not part of any measured pipeline (each
// format's data is "already on disk" / "already in the database", as
// in the paper).
func Setup(cfg Config, dir string) (*Env, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	env := &Env{Cfg: cfg, Dir: dir}
	env.Precincts = GeneratePrecincts(cfg)
	env.Voters = GenerateVoters(cfg, env.Precincts)

	// External file formats.
	env.csvVoters = filepath.Join(dir, "voters.csv")
	env.csvPrecincts = filepath.Join(dir, "precincts.csv")
	if err := csvio.WriteFile(env.csvVoters, env.Voters); err != nil {
		return nil, err
	}
	if err := csvio.WriteFile(env.csvPrecincts, env.Precincts); err != nil {
		return nil, err
	}
	env.npyDir = filepath.Join(dir, "npy")
	if err := npyio.WriteDir(env.npyDir, "voters", env.Voters); err != nil {
		return nil, err
	}
	if err := npyio.WriteDir(env.npyDir, "precincts", env.Precincts); err != nil {
		return nil, err
	}
	env.h5Path = filepath.Join(dir, "voters.h5")
	if err := h5io.WriteFile(env.h5Path, env.Voters); err != nil {
		return nil, err
	}
	h5Precincts := filepath.Join(dir, "precincts.h5")
	if err := h5io.WriteFile(h5Precincts, env.Precincts); err != nil {
		return nil, err
	}

	// Resident database for the in-database pipeline.
	env.DB = vexdb.Open()
	if cfg.Parallelism > 0 {
		env.DB.SetParallelism(cfg.Parallelism)
	}
	if err := env.DB.CreateTableFrom("voters", frameToTable(env.Voters)); err != nil {
		return nil, err
	}
	if err := env.DB.CreateTableFrom("precincts", frameToTable(env.Precincts)); err != nil {
		return nil, err
	}

	// Server database for socket and row-API pipelines.
	env.ServerDB = engine.New()
	if err := bulkLoadEngine(env.ServerDB, "voters", env.Voters); err != nil {
		return nil, err
	}
	if err := bulkLoadEngine(env.ServerDB, "precincts", env.Precincts); err != nil {
		return nil, err
	}
	env.server = wire.NewServer(env.ServerDB)
	addr, err := env.server.Start("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	env.Addr = addr
	return env, nil
}

// Close stops the wire server.
func (e *Env) Close() {
	if e.server != nil {
		e.server.Close()
	}
}

// FrameToTable converts a dataframe to an engine relation.
func FrameToTable(df *frame.DataFrame) *vector.Table { return frameToTable(df) }

// frameToTable converts a dataframe to an engine relation.
func frameToTable(df *frame.DataFrame) *vector.Table {
	names := make([]string, len(df.Cols))
	cols := make([]*vector.Vector, len(df.Cols))
	for i := range df.Cols {
		c := &df.Cols[i]
		names[i] = c.Name
		switch c.Kind {
		case frame.Int:
			cols[i] = vector.FromInt64s(c.Ints)
		case frame.Float:
			cols[i] = vector.FromFloat64s(c.Floats)
		default:
			cols[i] = vector.FromStrings(c.Strs)
		}
	}
	tab, err := vector.NewTable(names, cols)
	if err != nil {
		panic(err) // frames are equal-length by construction
	}
	return tab
}

// tableToFrame converts a wire result back into a dataframe (the
// client-side representation of the external pipelines).
func tableToFrame(tab *vector.Table) (*frame.DataFrame, error) {
	cols := make([]frame.Column, tab.NumCols())
	for i, c := range tab.Cols {
		switch c.Type() {
		case vector.Int64:
			cols[i] = frame.IntCol(tab.Names[i], c.Int64s())
		case vector.Int32:
			v64 := make([]int64, c.Len())
			for j, v := range c.Int32s() {
				v64[j] = int64(v)
			}
			cols[i] = frame.IntCol(tab.Names[i], v64)
		case vector.Float64:
			cols[i] = frame.FloatCol(tab.Names[i], c.Float64s())
		case vector.String:
			cols[i] = frame.StrCol(tab.Names[i], c.Strings())
		default:
			return nil, fmt.Errorf("workload: cannot convert column type %s", c.Type())
		}
	}
	return frame.New(cols...)
}

func bulkLoadEngine(db *engine.DB, name string, df *frame.DataFrame) error {
	tab := frameToTable(df)
	cols := make([]string, len(tab.Names))
	for i, n := range tab.Names {
		t := "BIGINT"
		if tab.Cols[i].Type() == vector.Float64 {
			t = "DOUBLE"
		} else if tab.Cols[i].Type() == vector.String {
			t = "VARCHAR"
		}
		cols[i] = n + " " + t
	}
	if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (%s)", name, strings.Join(cols, ", "))); err != nil {
		return err
	}
	cat, err := db.Catalog().Table(name)
	if err != nil {
		return err
	}
	return cat.Data.AppendChunk(tab.Chunk())
}

// --------------------------------------------------- in-database run

// RunInDatabase executes the whole pipeline inside the engine: SQL
// join + weighted_label UDF for wrangling, train_rf table UDF for
// training (model stored in a table), predict scalar UDF + SQL
// aggregation for classification — the paper's MonetDB/Python bar.
func RunInDatabase(env *Env) (Result, error) {
	cfg := env.Cfg
	db := env.DB
	res := Result{Method: "vexdb (in-database)"}
	for _, tbl := range []string{"labeled", "rf_model", "predictions"} {
		if _, err := db.Exec("DROP TABLE IF EXISTS " + tbl); err != nil {
			return res, err
		}
	}
	feats := FeatureNames(cfg)
	featList := strings.Join(feats, ", ")

	start := time.Now()
	// Wrangle: join voters with precinct totals, draw labels.
	wrangleSQL := fmt.Sprintf(`CREATE TABLE labeled AS
		SELECT v.voter_id AS id, v.precinct_id AS precinct_id, %s,
		       weighted_label(v.voter_id, CAST(p.dem_votes AS DOUBLE), CAST(p.rep_votes AS DOUBLE), %d) AS label
		FROM voters v JOIN precincts p ON v.precinct_id = p.precinct_id`,
		prefixAll("v.", feats), cfg.Seed)
	if _, err := db.Exec(wrangleSQL); err != nil {
		return res, fmt.Errorf("in-db wrangle: %w", err)
	}
	res.Wrangle = time.Since(start)

	// Train on the training partition and store the model (Listing 1).
	tTrain := time.Now()
	trainSQL := fmt.Sprintf(`CREATE TABLE rf_model AS
		SELECT * FROM train_rf((SELECT %s, label FROM labeled WHERE id %% %d <> 0), %d, %d, %d)`,
		featList, cfg.TestModulus, cfg.Estimators, cfg.MaxDepth, cfg.Seed)
	if _, err := db.Exec(trainSQL); err != nil {
		return res, fmt.Errorf("in-db train: %w", err)
	}
	res.Train = time.Since(tTrain)

	// Predict the test partition with the stored model (Listing 2)
	// and aggregate per precinct.
	tPred := time.Now()
	predictSQL := fmt.Sprintf(`CREATE TABLE predictions AS
		SELECT l.precinct_id AS precinct_id, l.label AS label,
		       predict(m.model, %s) AS pred
		FROM labeled l, rf_model m WHERE l.id %% %d = 0`,
		prefixAll("l.", feats), cfg.TestModulus)
	if _, err := db.Exec(predictSQL); err != nil {
		return res, fmt.Errorf("in-db predict: %w", err)
	}
	agg, err := db.Query(`
		SELECT precinct_id,
		       sum(CASE WHEN pred = 0 THEN 1 ELSE 0 END) AS dem_pred,
		       sum(CASE WHEN pred = label THEN 1 ELSE 0 END) AS correct,
		       count(*) AS total
		FROM predictions GROUP BY precinct_id`)
	if err != nil {
		return res, fmt.Errorf("in-db aggregate: %w", err)
	}
	res.Predict = time.Since(tPred)
	res.Total = time.Since(start)

	fillQuality(&res, env,
		agg.Column("precinct_id").Int64s(),
		agg.Column("dem_pred").Int64s(),
		agg.Column("correct").Int64s(),
		agg.Column("total").Int64s())
	return res, nil
}

func prefixAll(prefix string, names []string) string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = prefix + n
	}
	return strings.Join(out, ", ")
}

// fillQuality computes voter accuracy and precinct-share MAE from
// per-precinct aggregates.
func fillQuality(res *Result, env *Env, precinctIDs, demPred, correct, total []int64) {
	dem := env.Precincts.Col("dem_votes").Ints
	rep := env.Precincts.Col("rep_votes").Ints
	var sumCorrect, sumTotal int64
	mae, groups := 0.0, 0
	for i, p := range precinctIDs {
		sumCorrect += correct[i]
		sumTotal += total[i]
		if total[i] == 0 {
			continue
		}
		actual := float64(dem[p]) / float64(dem[p]+rep[p])
		predicted := float64(demPred[i]) / float64(total[i])
		mae += math.Abs(predicted - actual)
		groups++
	}
	if sumTotal > 0 {
		res.VoterAccuracy = float64(sumCorrect) / float64(sumTotal)
	}
	if groups > 0 {
		res.PrecinctMAE = mae / float64(groups)
	}
	res.TestRows = int(sumTotal)
}

// --------------------------------------------------- external runs

// loader fetches both datasets into client memory for an external
// pipeline.
type loader func(env *Env) (voters, precincts *frame.DataFrame, err error)

// runExternal executes the client-side pipeline: load via the given
// loader, wrangle with the dataframe library (the pandas analog),
// train and predict with the ml library directly.
func runExternal(env *Env, method string, load loader) (Result, error) {
	cfg := env.Cfg
	res := Result{Method: method}
	start := time.Now()

	voters, precincts, err := load(env)
	if err != nil {
		return res, fmt.Errorf("%s load: %w", method, err)
	}
	res.Load = time.Since(start)

	// Wrangle: join + label generation + split.
	tWrangle := time.Now()
	joined, err := voters.InnerJoinInt(precincts, "precinct_id", "precinct_id")
	if err != nil {
		return res, fmt.Errorf("%s join: %w", method, err)
	}
	ids := joined.Col("voter_id").Ints
	demV := joined.Col("dem_votes").Ints
	repV := joined.Col("rep_votes").Ints
	n := len(ids)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		u := splitmix64(uint64(ids[i]), uint64(cfg.Seed))
		p0 := float64(demV[i]) / float64(demV[i]+repV[i])
		if u < p0 {
			labels[i] = 0
		} else {
			labels[i] = 1
		}
	}
	feats := FeatureNames(cfg)
	X := make([][]float64, len(feats))
	for f, name := range feats {
		col := joined.Col(name)
		if col == nil {
			return res, fmt.Errorf("%s: missing feature %s after join", method, name)
		}
		X[f] = col.Floats
	}
	var trainIdx, testIdx []int
	for i := 0; i < n; i++ {
		if ids[i]%int64(cfg.TestModulus) == 0 {
			testIdx = append(testIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}
	gatherX := func(idx []int) ([][]float64, []int) {
		gx := make([][]float64, len(X))
		for f, col := range X {
			g := make([]float64, len(idx))
			for i, r := range idx {
				g[i] = col[r]
			}
			gx[f] = g
		}
		gy := make([]int, len(idx))
		for i, r := range idx {
			gy[i] = labels[r]
		}
		return gx, gy
	}
	trainX, trainY := gatherX(trainIdx)
	testX, testY := gatherX(testIdx)
	res.Wrangle = time.Since(tWrangle)

	// Train.
	tTrain := time.Now()
	forest := ml.NewRandomForest(cfg.Estimators)
	forest.MaxDepth = cfg.MaxDepth
	forest.Seed = cfg.Seed
	if err := forest.Fit(trainX, trainY); err != nil {
		return res, fmt.Errorf("%s train: %w", method, err)
	}
	res.Train = time.Since(tTrain)

	// Predict + aggregate per precinct.
	tPred := time.Now()
	pred, err := forest.Predict(testX)
	if err != nil {
		return res, fmt.Errorf("%s predict: %w", method, err)
	}
	type aggRow struct{ demPred, correct, total int64 }
	agg := make(map[int64]*aggRow)
	prec := joined.Col("precinct_id").Ints
	for i, r := range testIdx {
		a := agg[prec[r]]
		if a == nil {
			a = &aggRow{}
			agg[prec[r]] = a
		}
		if pred[i] == 0 {
			a.demPred++
		}
		if pred[i] == testY[i] {
			a.correct++
		}
		a.total++
	}
	res.Predict = time.Since(tPred)
	res.Total = time.Since(start)

	pids := make([]int64, 0, len(agg))
	demPred := make([]int64, 0, len(agg))
	correct := make([]int64, 0, len(agg))
	total := make([]int64, 0, len(agg))
	for p, a := range agg {
		pids = append(pids, p)
		demPred = append(demPred, a.demPred)
		correct = append(correct, a.correct)
		total = append(total, a.total)
	}
	fillQuality(&res, env, pids, demPred, correct, total)
	return res, nil
}

// csvTypes builds the parse schema for the voters CSV.
func csvTypes(cfg Config) []csvio.ColType {
	types := make([]csvio.ColType, cfg.Columns)
	types[0], types[1] = csvio.Int, csvio.Int // voter_id, precinct_id
	for i := 0; i < cfg.Features; i++ {
		types[2+i] = csvio.Float
	}
	for i := 2 + cfg.Features; i < cfg.Columns; i++ {
		types[i] = csvio.Int
	}
	return types
}

// RunCSV loads from text files with the optimized CSV parser.
func RunCSV(env *Env) (Result, error) {
	return runExternal(env, "csv", func(env *Env) (*frame.DataFrame, *frame.DataFrame, error) {
		voters, err := csvio.ReadFile(env.csvVoters, csvTypes(env.Cfg))
		if err != nil {
			return nil, nil, err
		}
		precincts, err := csvio.ReadFile(env.csvPrecincts, []csvio.ColType{csvio.Int, csvio.Int, csvio.Int})
		if err != nil {
			return nil, nil, err
		}
		return voters, precincts, nil
	})
}

// RunNumpy loads from per-column binary files.
func RunNumpy(env *Env) (Result, error) {
	return runExternal(env, "numpy-binary", func(env *Env) (*frame.DataFrame, *frame.DataFrame, error) {
		voters, err := npyio.ReadDir(env.npyDir, "voters")
		if err != nil {
			return nil, nil, err
		}
		precincts, err := npyio.ReadDir(env.npyDir, "precincts")
		if err != nil {
			return nil, nil, err
		}
		return voters, precincts, nil
	})
}

// RunHDF5 loads from the single-file binary container.
func RunHDF5(env *Env) (Result, error) {
	return runExternal(env, "hdf5-binary", func(env *Env) (*frame.DataFrame, *frame.DataFrame, error) {
		voters, err := h5io.ReadFile(env.h5Path)
		if err != nil {
			return nil, nil, err
		}
		precincts, err := h5io.ReadFile(filepath.Join(env.Dir, "precincts.h5"))
		if err != nil {
			return nil, nil, err
		}
		return voters, precincts, nil
	})
}

func socketLoader(proto wire.Protocol) loader {
	return func(env *Env) (*frame.DataFrame, *frame.DataFrame, error) {
		c, err := wire.Dial(env.Addr)
		if err != nil {
			return nil, nil, err
		}
		defer c.Close()
		vt, err := c.Query(proto, "SELECT * FROM voters")
		if err != nil {
			return nil, nil, err
		}
		pt, err := c.Query(proto, "SELECT * FROM precincts")
		if err != nil {
			return nil, nil, err
		}
		voters, err := tableToFrame(vt)
		if err != nil {
			return nil, nil, err
		}
		precincts, err := tableToFrame(pt)
		if err != nil {
			return nil, nil, err
		}
		return voters, precincts, nil
	}
}

// RunPostgresLike transfers the data over a socket with row-at-a-time
// text serialization.
func RunPostgresLike(env *Env) (Result, error) {
	return runExternal(env, "postgres-like (text socket)", socketLoader(wire.TextRows))
}

// RunMySQLLike transfers the data over a socket with row-at-a-time
// binary serialization.
func RunMySQLLike(env *Env) (Result, error) {
	return runExternal(env, "mysql-like (binary socket)", socketLoader(wire.BinaryRows))
}

// RunSQLiteLike reads through an in-process row-at-a-time cursor.
func RunSQLiteLike(env *Env) (Result, error) {
	return runExternal(env, "sqlite-like (row API)", func(env *Env) (*frame.DataFrame, *frame.DataFrame, error) {
		vt, err := wire.RowIterate(env.ServerDB, "SELECT * FROM voters")
		if err != nil {
			return nil, nil, err
		}
		pt, err := wire.RowIterate(env.ServerDB, "SELECT * FROM precincts")
		if err != nil {
			return nil, nil, err
		}
		voters, err := tableToFrame(vt)
		if err != nil {
			return nil, nil, err
		}
		precincts, err := tableToFrame(pt)
		if err != nil {
			return nil, nil, err
		}
		return voters, precincts, nil
	})
}

// Figure1 runs the full benchmark: every pipeline variant of the
// paper's Figure 1, in its display order. Each pipeline executes
// twice and the second (hot) run is reported — "all the tests are hot
// runs" (paper §4).
func Figure1(env *Env) ([]Result, error) {
	runs := []func(*Env) (Result, error){
		RunInDatabase,
		RunNumpy,
		RunHDF5,
		RunCSV,
		RunPostgresLike,
		RunMySQLLike,
		RunSQLiteLike,
	}
	out := make([]Result, 0, len(runs))
	for _, run := range runs {
		if _, err := run(env); err != nil { // warmup
			return out, err
		}
		r, err := run(env)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
