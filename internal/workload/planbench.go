// E8: cost-based planning benchmark. A skewed three-table events join
// — two large event tables sharing a hot low-cardinality key (their
// join explodes) plus a selective dimension — is executed with the
// cost-based planner on and off. The planner must produce identical
// result bytes, pick the expected join order (dimension first), and
// beat the syntactic plan on wall clock by shrinking the intermediate.
package workload

import (
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"time"

	"vexdb/internal/engine"
	"vexdb/internal/vector"
)

// Plan-bench workload shape. 60k events x 151 hot keys makes the
// syntactic first join emit ~24M rows; the selective dimension filter
// keeps only 1% of dk values, so joining it first emits a few hundred.
const (
	planEvents  = 60_000
	planHotKeys = 151
	planDims    = 1000
)

// PlanQuery is the benchmarked statement. Written syntactically
// worst-first: the exploding ev1-ev2 join precedes the selective
// dimension join.
const PlanQuery = "SELECT count(*) AS n, sum(ev1.v + ev2.w) AS s " +
	"FROM ev1 JOIN ev2 ON ev1.k = ev2.k JOIN dm ON ev1.dk = dm.dk " +
	"WHERE dm.dk < 10"

// PlanRun is one planner mode's measurement.
type PlanRun struct {
	Planner          string        // "syntactic" | "cost-based"
	Elapsed          time.Duration // best of planBenchIters timed runs
	IntermediateRows int64         // sum of actual hash-join output rows
}

// PlanBenchResult is the E8 report.
type PlanBenchResult struct {
	Events    int
	HotKeys   int
	DimRows   int
	Workers   int
	Query     string
	Syntactic PlanRun
	CostBased PlanRun
	Speedup   float64 // syntactic / cost-based wall clock
	// Identical: both modes returned byte-identical results.
	Identical bool
	// ExpectedOrder: the cost-based plan joins the dimension first.
	ExpectedOrder bool
}

const planBenchIters = 3

// E8PlanBench loads the events workload into a fresh in-memory engine
// and measures PlanQuery under both planner modes. It fails (error,
// not just a report field) when results differ or the cost-based plan
// picks the wrong first join — correctness gates, not perf gates.
func E8PlanBench(workers int) (*PlanBenchResult, error) {
	db := engine.New()
	db.Parallelism = workers
	if err := loadPlanEvents(db); err != nil {
		return nil, err
	}

	res := &PlanBenchResult{
		Events:  planEvents,
		HotKeys: planHotKeys,
		DimRows: planDims,
		Workers: workers,
		Query:   PlanQuery,
	}

	var fingerprints [2]string
	for i, planner := range []bool{false, true} {
		db.NoCostPlanner = !planner
		run := PlanRun{Planner: "syntactic"}
		if planner {
			run.Planner = "cost-based"
		}
		for it := 0; it < planBenchIters; it++ {
			start := time.Now()
			fp, err := planFingerprint(db, PlanQuery)
			if err != nil {
				return nil, fmt.Errorf("%s run: %w", run.Planner, err)
			}
			if d := time.Since(start); it == 0 || d < run.Elapsed {
				run.Elapsed = d
			}
			fingerprints[i] = fp
		}
		analyzed, err := explainAnalyze(db, PlanQuery)
		if err != nil {
			return nil, fmt.Errorf("%s explain: %w", run.Planner, err)
		}
		run.IntermediateRows = joinActualRows(analyzed)
		if planner {
			res.CostBased = run
			res.ExpectedOrder = firstJoinScans(analyzed)["dm"]
		} else {
			res.Syntactic = run
		}
	}

	res.Identical = fingerprints[0] == fingerprints[1]
	res.Speedup = float64(res.Syntactic.Elapsed) / math.Max(float64(res.CostBased.Elapsed), 1)
	if !res.Identical {
		return res, fmt.Errorf("plan bench: cost-based results differ from syntactic")
	}
	if !res.ExpectedOrder {
		return res, fmt.Errorf("plan bench: cost-based plan did not join the dimension first")
	}
	return res, nil
}

// loadPlanEvents creates and fills ev1/ev2/dm with the deterministic
// skewed generators.
func loadPlanEvents(db *engine.DB) error {
	ddl := []string{
		"CREATE TABLE ev1 (k BIGINT, dk BIGINT, v DOUBLE)",
		"CREATE TABLE ev2 (k BIGINT, w DOUBLE)",
		"CREATE TABLE dm (dk BIGINT, label VARCHAR)",
	}
	for _, q := range ddl {
		if _, err := db.Exec(q); err != nil {
			return err
		}
	}
	ins := func(name string, rows int, gen func(i int) string) error {
		var sb strings.Builder
		for i := 0; i < rows; i++ {
			if i%1000 == 0 {
				if sb.Len() > 0 {
					if _, err := db.Exec(sb.String()); err != nil {
						return err
					}
					sb.Reset()
				}
				fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", name)
			} else {
				sb.WriteString(",")
			}
			sb.WriteString(gen(i))
		}
		if sb.Len() > 0 {
			if _, err := db.Exec(sb.String()); err != nil {
				return err
			}
		}
		return nil
	}
	if err := ins("ev1", planEvents, func(i int) string {
		return fmt.Sprintf("(%d, %d, %g)", i%planHotKeys, i%planDims, float64(i)/4)
	}); err != nil {
		return err
	}
	if err := ins("ev2", planEvents, func(i int) string {
		return fmt.Sprintf("(%d, %g)", i%planHotKeys, float64(i)/2)
	}); err != nil {
		return err
	}
	return ins("dm", planDims, func(i int) string {
		return fmt.Sprintf("(%d, 'd%d')", i, i)
	})
}

// planFingerprint executes q and renders the result with exact float
// identity (IEEE bit patterns), for cross-plan comparison.
func planFingerprint(db *engine.DB, q string) (string, error) {
	rs, err := db.Query(q)
	if err != nil {
		return "", err
	}
	tab, err := rs.Materialize()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for i := 0; i < tab.NumRows(); i++ {
		for c := 0; c < tab.NumCols(); c++ {
			v := tab.Cols[c].Get(i)
			switch {
			case v.IsNull():
				sb.WriteString("N")
			case v.Type() == vector.Float64:
				fmt.Fprintf(&sb, "%016x", math.Float64bits(v.Float64()))
			default:
				sb.WriteString(v.String())
			}
			sb.WriteString("|")
		}
		sb.WriteString("\n")
	}
	return sb.String(), nil
}

// explainAnalyze returns the rendered EXPLAIN ANALYZE plan lines.
func explainAnalyze(db *engine.DB, q string) ([]string, error) {
	rs, err := db.Query("EXPLAIN ANALYZE " + q)
	if err != nil {
		return nil, err
	}
	tab, err := rs.Materialize()
	if err != nil {
		return nil, err
	}
	lines := make([]string, tab.NumRows())
	for i := range lines {
		lines[i] = tab.Cols[0].Get(i).Str()
	}
	return lines, nil
}

var actRE = regexp.MustCompile(`act=(\d+)`)

// joinActualRows sums the actual output rows of every hash join — the
// total intermediate cardinality the plan materialized.
func joinActualRows(lines []string) int64 {
	var total int64
	for _, ln := range lines {
		if !strings.Contains(ln, "HashJoin") {
			continue
		}
		if m := actRE.FindStringSubmatch(ln); m != nil {
			n, _ := strconv.ParseInt(m[1], 10, 64)
			total += n
		}
	}
	return total
}

// firstJoinScans returns the table names scanned under the deepest
// (first-executed) hash join of a rendered plan.
func firstJoinScans(lines []string) map[string]bool {
	indent := func(s string) int {
		return (len(s) - len(strings.TrimLeft(s, " "))) / 2
	}
	joinLine, joinDepth := -1, -1
	for i, ln := range lines {
		if strings.Contains(ln, "HashJoin") && indent(ln) > joinDepth {
			joinLine, joinDepth = i, indent(ln)
		}
	}
	scans := map[string]bool{}
	if joinLine < 0 {
		return scans
	}
	for _, ln := range lines[joinLine+1:] {
		if indent(ln) <= joinDepth {
			break
		}
		fields := strings.Fields(ln)
		if len(fields) >= 2 && fields[0] == "Scan" {
			scans[fields[1]] = true
		}
	}
	return scans
}
