package workload

import (
	"fmt"
	"time"

	"vexdb"
	"vexdb/internal/wire"
	"vexdb/ml"
	"vexdb/modelstore"
)

// SerializationResult is one row of experiment E2: model
// (de)serialization overhead versus model size (the paper's §5.1
// future-work concern, measured).
type SerializationResult struct {
	Trees       int
	BlobBytes   int
	Serialize   time.Duration
	Deserialize time.Duration
	// PredictOnce is the prediction time over the probe set, for
	// comparing the (de)serialization overhead against useful work.
	PredictOnce time.Duration
}

// E2ModelSerialization measures serialize/deserialize round trips for
// growing random forests trained on the environment's data.
func E2ModelSerialization(env *Env, treeCounts []int) ([]SerializationResult, error) {
	cfg := env.Cfg
	X, y, err := trainingMatrix(env, 20_000)
	if err != nil {
		return nil, err
	}
	out := make([]SerializationResult, 0, len(treeCounts))
	for _, trees := range treeCounts {
		f := ml.NewRandomForest(trees)
		f.MaxDepth = cfg.MaxDepth
		f.Seed = cfg.Seed
		if err := f.Fit(X, y); err != nil {
			return nil, fmt.Errorf("E2 fit %d trees: %w", trees, err)
		}
		r := SerializationResult{Trees: trees}

		t0 := time.Now()
		blob, err := ml.Marshal(f)
		if err != nil {
			return nil, err
		}
		r.Serialize = time.Since(t0)
		r.BlobBytes = len(blob)

		t1 := time.Now()
		back, err := ml.Unmarshal(blob)
		if err != nil {
			return nil, err
		}
		r.Deserialize = time.Since(t1)

		t2 := time.Now()
		if _, err := back.Predict(X); err != nil {
			return nil, err
		}
		r.PredictOnce = time.Since(t2)
		out = append(out, r)
	}
	return out, nil
}

// trainingMatrix extracts up to maxRows labeled training rows from
// the generated voters (client-side, shared by the ablations).
func trainingMatrix(env *Env, maxRows int) ([][]float64, []int, error) {
	cfg := env.Cfg
	joined, err := env.Voters.InnerJoinInt(env.Precincts, "precinct_id", "precinct_id")
	if err != nil {
		return nil, nil, err
	}
	n := joined.NumRows()
	if n > maxRows {
		n = maxRows
	}
	ids := joined.Col("voter_id").Ints
	demV := joined.Col("dem_votes").Ints
	repV := joined.Col("rep_votes").Ints
	feats := FeatureNames(cfg)
	X := make([][]float64, len(feats))
	for f, name := range feats {
		X[f] = joined.Col(name).Floats[:n]
	}
	y := make([]int, n)
	for i := 0; i < n; i++ {
		u := splitmix64(uint64(ids[i]), uint64(cfg.Seed))
		if u >= float64(demV[i])/float64(demV[i]+repV[i]) {
			y[i] = 1
		}
	}
	return X, y, nil
}

// ParallelResult is one row of experiment E3: prediction UDF latency
// versus the engine's parallelism setting.
type ParallelResult struct {
	Workers int
	Elapsed time.Duration
	Speedup float64 // relative to Workers == 1
}

// E3ParallelUDF runs the in-database prediction query under growing
// parallelism (the paper's "parallel processing opportunities").
func E3ParallelUDF(env *Env, workerCounts []int) ([]ParallelResult, error) {
	cfg := env.Cfg
	db := env.DB
	// Ensure the labeled table and model exist (reuse the in-db
	// pipeline's artifacts, building them if needed).
	if !db.HasTable("labeled") || !db.HasTable("rf_model") {
		if _, err := RunInDatabase(env); err != nil {
			return nil, err
		}
	}
	featList := prefixAll("l.", FeatureNames(cfg))
	query := fmt.Sprintf(`SELECT count(*) AS n FROM (
		SELECT predict(m.model, %s) AS pred
		FROM labeled l, rf_model m) q WHERE q.pred >= 0`, featList)

	out := make([]ParallelResult, 0, len(workerCounts))
	var base time.Duration
	for _, w := range workerCounts {
		db.SetParallelism(w)
		t0 := time.Now()
		if _, err := db.Query(query); err != nil {
			db.SetParallelism(cfg.Parallelism)
			return nil, fmt.Errorf("E3 workers=%d: %w", w, err)
		}
		elapsed := time.Since(t0)
		if len(out) == 0 {
			base = elapsed
		}
		out = append(out, ParallelResult{
			Workers: w,
			Elapsed: elapsed,
			Speedup: float64(base) / float64(elapsed),
		})
	}
	db.SetParallelism(cfg.Parallelism)
	return out, nil
}

// E6MorselScaling runs a pure relational query — a filtered scan
// feeding a join and a group-by, no UDFs — under growing parallelism,
// measuring the morsel-driven executor's scaling in isolation from
// model inference.
func E6MorselScaling(env *Env, workerCounts []int) ([]ParallelResult, error) {
	cfg := env.Cfg
	db := env.DB
	query := `SELECT p.precinct_id, count(*) AS n, avg(v.f0) AS m
		FROM voters v JOIN precincts p ON v.precinct_id = p.precinct_id
		WHERE v.f1 > 0.25 GROUP BY p.precinct_id`

	out := make([]ParallelResult, 0, len(workerCounts))
	var base time.Duration
	for _, w := range workerCounts {
		db.SetParallelism(w)
		t0 := time.Now()
		if _, err := db.Query(query); err != nil {
			db.SetParallelism(cfg.Parallelism)
			return nil, fmt.Errorf("E6 workers=%d: %w", w, err)
		}
		elapsed := time.Since(t0)
		if len(out) == 0 {
			base = elapsed
		}
		out = append(out, ParallelResult{
			Workers: w,
			Elapsed: elapsed,
			Speedup: float64(base) / float64(elapsed),
		})
	}
	db.SetParallelism(cfg.Parallelism)
	return out, nil
}

// EnsembleResult is experiment E4: accuracy of individual stored
// models versus meta-analysis-driven selection and ensembles
// (paper §3.3).
type EnsembleResult struct {
	PerModel   map[string]float64 // algo -> test accuracy
	BestByMeta float64            // accuracy of the model SQL meta-analysis selects
	Majority   float64
	Confidence float64
}

// E4Ensemble trains several model families, stores them with their
// validation scores, selects the best via the model store's relational
// query, and compares ensemble strategies.
func E4Ensemble(env *Env) (*EnsembleResult, error) {
	X, y, err := trainingMatrix(env, 20_000)
	if err != nil {
		return nil, err
	}
	trainX, trainY, testX, testY, err := ml.TrainTestSplit(X, y, 0.25, env.Cfg.Seed)
	if err != nil {
		return nil, err
	}
	db := vexdb.Open()
	store, err := modelstore.Open(db)
	if err != nil {
		return nil, err
	}
	models := []ml.Classifier{
		func() ml.Classifier {
			f := ml.NewRandomForest(env.Cfg.Estimators)
			f.MaxDepth = env.Cfg.MaxDepth
			f.Seed = env.Cfg.Seed
			return f
		}(),
		ml.NewDecisionTree(),
		ml.NewLogisticRegression(),
		ml.NewGaussianNB(),
	}
	out := &EnsembleResult{PerModel: make(map[string]float64)}
	var ids []int64
	for _, m := range models {
		if err := m.Fit(trainX, trainY); err != nil {
			return nil, fmt.Errorf("E4 fit %s: %w", m.Name(), err)
		}
		pred, err := m.Predict(testX)
		if err != nil {
			return nil, err
		}
		acc, err := ml.Accuracy(testY, pred)
		if err != nil {
			return nil, err
		}
		out.PerModel[m.Name()] = acc
		id, err := store.Save("voters_"+m.Name(), m, nil)
		if err != nil {
			return nil, err
		}
		if err := store.RecordScore(id, "voters_test", "accuracy", acc); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	bestID, err := store.Best("voters_test", "accuracy")
	if err != nil {
		return nil, err
	}
	best, _, err := store.Load(bestID)
	if err != nil {
		return nil, err
	}
	bp, err := best.Predict(testX)
	if err != nil {
		return nil, err
	}
	out.BestByMeta, _ = ml.Accuracy(testY, bp)

	ens, err := store.LoadEnsemble(ids...)
	if err != nil {
		return nil, err
	}
	mp, err := ens.PredictMajority(testX)
	if err != nil {
		return nil, err
	}
	out.Majority, _ = ml.Accuracy(testY, mp)
	cp, _, err := ens.PredictHighestConfidence(testX)
	if err != nil {
		return nil, err
	}
	out.Confidence, _ = ml.Accuracy(testY, cp)
	return out, nil
}

// ProtocolResult is one row of experiment E5: bulk result transfer
// time per client protocol.
type ProtocolResult struct {
	Protocol string
	Rows     int
	Elapsed  time.Duration
}

// E5Protocols transfers the whole voters table through each wire
// protocol plus the in-process row cursor, isolating the client
// protocol cost the paper's introduction blames for the socket
// bottleneck.
func E5Protocols(env *Env) ([]ProtocolResult, error) {
	out := make([]ProtocolResult, 0, 4)
	for _, proto := range []wire.Protocol{wire.Columnar, wire.BinaryRows, wire.TextRows} {
		c, err := wire.Dial(env.Addr)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		tab, err := c.Query(proto, "SELECT * FROM voters")
		elapsed := time.Since(t0)
		c.Close()
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", proto, err)
		}
		out = append(out, ProtocolResult{Protocol: proto.String(), Rows: tab.NumRows(), Elapsed: elapsed})
	}
	t0 := time.Now()
	tab, err := wire.RowIterate(env.ServerDB, "SELECT * FROM voters")
	if err != nil {
		return nil, err
	}
	out = append(out, ProtocolResult{Protocol: "row-cursor (in-process)", Rows: tab.NumRows(), Elapsed: time.Since(t0)})
	return out, nil
}
