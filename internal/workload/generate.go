// Package workload implements the paper's evaluation: the North
// Carolina voter-classification pipeline (Section 4) run under every
// data placement of Figure 1, plus the ablation experiments derived
// from the paper's discussion (model serialization overhead, parallel
// UDF scaling, ensemble meta-analysis, client protocol comparison).
//
// The original datasets (7.5M NC voters with 96 demographic columns;
// 2,751 precinct vote totals) are not redistributable, so a
// deterministic synthetic generator reproduces their shape: the same
// schema widths, the same join structure (voter.precinct_id ->
// precinct), per-precinct partisan lean driving both the voters'
// feature distributions and the weighted-random "true" labels. Only
// the sizes and statistical structure matter for the measured costs.
package workload

import (
	"fmt"
	"math"

	"vexdb/internal/frame"
)

// Config sizes the benchmark. The zero value is not usable; start
// from DefaultConfig or TestConfig.
type Config struct {
	// Voters is the voter row count (paper: 7.5M).
	Voters int
	// Precincts is the precinct count (paper: 2,751).
	Precincts int
	// Columns is the total demographic column count including the
	// trained features (paper: 96).
	Columns int
	// Features is how many leading columns carry signal and feed the
	// classifier.
	Features int
	// Estimators is the random forest size (trees).
	Estimators int
	// MaxDepth bounds tree depth.
	MaxDepth int
	// Seed drives all generation and training deterministically.
	Seed int64
	// TestModulus splits train/test: rows with id % TestModulus == 0
	// are the test set (4 => 25% test).
	TestModulus int
	// Parallelism bounds engine-side parallelism: the morsel-driven
	// relational executor and partitioned UDF evaluation. 0 = NumCPU.
	Parallelism int
}

// DefaultConfig is the full-scale shape scaled to a laptop: 150k
// voters (the paper's 7.5M shrunk 50x), everything else faithful.
func DefaultConfig() Config {
	return Config{
		Voters:      150_000,
		Precincts:   2751,
		Columns:     96,
		Features:    6,
		Estimators:  16,
		MaxDepth:    10,
		Seed:        1,
		TestModulus: 4,
	}
}

// TestConfig is small enough for unit tests.
func TestConfig() Config {
	return Config{
		Voters:      4000,
		Precincts:   97,
		Columns:     12,
		Features:    4,
		Estimators:  4,
		MaxDepth:    6,
		Seed:        1,
		TestModulus: 4,
	}
}

func (c Config) validate() error {
	if c.Voters < 10 || c.Precincts < 2 || c.Features < 1 ||
		c.Columns < c.Features+2 || c.Estimators < 1 || c.TestModulus < 2 {
		return fmt.Errorf("workload: invalid config %+v", c)
	}
	return nil
}

// splitmix64 is the shared deterministic hash used for label drawing
// (matching the engine's weighted_label UDF bit-for-bit).
func splitmix64(id, seed uint64) float64 {
	x := id*0x9E3779B97F4A7C15 + seed + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// rng is a local xorshift generator for data synthesis.
type rng struct{ s uint64 }

func newRNG(seed int64) *rng {
	v := uint64(seed)
	if v == 0 {
		v = 0x853C49E6748FEA9B
	}
	return &rng{s: v}
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// GeneratePrecincts synthesizes the precinct votes dataset:
// (precinct_id, dem_votes, rep_votes) with partisan lean varying
// smoothly across precincts in [0.15, 0.85].
func GeneratePrecincts(cfg Config) *frame.DataFrame {
	r := newRNG(cfg.Seed * 31)
	ids := make([]int64, cfg.Precincts)
	dem := make([]int64, cfg.Precincts)
	rep := make([]int64, cfg.Precincts)
	for p := 0; p < cfg.Precincts; p++ {
		ids[p] = int64(p)
		lean := 0.15 + 0.7*float64(p)/float64(cfg.Precincts-1)
		total := 500 + r.intn(4000)
		d := int64(float64(total)*lean + 0.5)
		dem[p] = d
		rep[p] = int64(total) - d
	}
	df, err := frame.New(
		frame.IntCol("precinct_id", ids),
		frame.IntCol("dem_votes", dem),
		frame.IntCol("rep_votes", rep),
	)
	if err != nil {
		// Generation always produces equal-length columns.
		panic(err)
	}
	return df
}

// GenerateEvents synthesizes a high-cardinality / skewed-keys event
// stream for exercising the out-of-core operator paths (grace-
// partitioned GROUP BY and join build, external sort): event_id is
// unique, key draws from `keys` distinct values with a power-law skew
// (skew 0 = uniform; larger values concentrate mass on hot keys —
// roughly Zipf-shaped via inverse-power sampling), val is a float
// measure and tag a low-cardinality label. Hot keys are scrambled
// across the id space so clustering does not accidentally help
// zone-map pruning or partitioning.
func GenerateEvents(rows, keys int, skew float64, seed int64) *frame.DataFrame {
	if rows < 1 {
		rows = 1
	}
	if keys < 1 {
		keys = 1
	}
	r := newRNG(seed * 41)
	ids := make([]int64, rows)
	ks := make([]int64, rows)
	vals := make([]float64, rows)
	tags := make([]string, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		u := r.float()
		rank := int(float64(keys) * math.Pow(u, 1+skew))
		if rank >= keys {
			rank = keys - 1
		}
		// Scramble rank -> key id (deterministic permutation-ish map).
		ks[i] = int64((uint64(rank)*2654435761 + uint64(seed)) % uint64(keys))
		vals[i] = float64(r.intn(1<<20)) / 16 // dyadic: exact float sums
		tags[i] = fmt.Sprintf("t%d", rank%17)
	}
	df, err := frame.New(
		frame.IntCol("event_id", ids),
		frame.IntCol("key", ks),
		frame.FloatCol("val", vals),
		frame.StrCol("tag", tags),
	)
	if err != nil {
		panic(err)
	}
	return df
}

// GenerateVoters synthesizes the voters dataset: voter_id,
// precinct_id, Features signal columns f0.. (precinct lean plus
// noise), and filler demographic columns c0.. to reach cfg.Columns
// total columns — the 96-column width whose transfer cost Figure 1
// measures.
func GenerateVoters(cfg Config, precincts *frame.DataFrame) *frame.DataFrame {
	r := newRNG(cfg.Seed * 17)
	n := cfg.Voters
	dem := precincts.Col("dem_votes").Ints
	rep := precincts.Col("rep_votes").Ints

	voterID := make([]int64, n)
	precinctID := make([]int64, n)
	features := make([][]float64, cfg.Features)
	for f := range features {
		features[f] = make([]float64, n)
	}
	nFiller := cfg.Columns - cfg.Features - 2
	filler := make([][]int64, nFiller)
	for f := range filler {
		filler[f] = make([]int64, n)
	}

	for i := 0; i < n; i++ {
		p := r.intn(cfg.Precincts)
		voterID[i] = int64(i)
		precinctID[i] = int64(p)
		lean := float64(dem[p]) / float64(dem[p]+rep[p])
		for f := range features {
			// Signal decays with feature index; noise keeps the task
			// non-trivial.
			signal := lean * (1 - 0.1*float64(f))
			features[f][i] = signal + (r.float()-0.5)*0.3
		}
		for f := range filler {
			filler[f][i] = int64(r.intn(100))
		}
	}

	cols := make([]frame.Column, 0, cfg.Columns)
	cols = append(cols, frame.IntCol("voter_id", voterID), frame.IntCol("precinct_id", precinctID))
	for f := range features {
		cols = append(cols, frame.FloatCol(fmt.Sprintf("f%d", f), features[f]))
	}
	for f := range filler {
		cols = append(cols, frame.IntCol(fmt.Sprintf("c%d", f), filler[f]))
	}
	df, err := frame.New(cols...)
	if err != nil {
		panic(err)
	}
	return df
}

// FeatureNames returns the trained feature column names for cfg.
func FeatureNames(cfg Config) []string {
	out := make([]string, cfg.Features)
	for i := range out {
		out[i] = fmt.Sprintf("f%d", i)
	}
	return out
}
