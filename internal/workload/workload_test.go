package workload

import (
	"testing"
)

func testEnv(t *testing.T) *Env {
	t.Helper()
	env, err := Setup(TestConfig(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

func TestGenerators(t *testing.T) {
	cfg := TestConfig()
	precincts := GeneratePrecincts(cfg)
	if precincts.NumRows() != cfg.Precincts {
		t.Fatalf("precincts = %d", precincts.NumRows())
	}
	for i, d := range precincts.Col("dem_votes").Ints {
		r := precincts.Col("rep_votes").Ints[i]
		if d <= 0 || r <= 0 {
			t.Fatalf("precinct %d has non-positive votes %d/%d", i, d, r)
		}
	}
	voters := GenerateVoters(cfg, precincts)
	if voters.NumRows() != cfg.Voters {
		t.Fatalf("voters = %d", voters.NumRows())
	}
	if len(voters.Cols) != cfg.Columns {
		t.Fatalf("columns = %d, want %d", len(voters.Cols), cfg.Columns)
	}
	// Deterministic regeneration.
	again := GenerateVoters(cfg, precincts)
	if again.Col("f0").Floats[100] != voters.Col("f0").Floats[100] {
		t.Fatal("generation not deterministic")
	}
	// Precinct ids in range.
	for _, p := range voters.Col("precinct_id").Ints[:100] {
		if p < 0 || p >= int64(cfg.Precincts) {
			t.Fatalf("precinct id %d out of range", p)
		}
	}
}

func TestSetupWritesAllFormats(t *testing.T) {
	env := testEnv(t)
	if env.DB.NumRows("voters") != env.Cfg.Voters {
		t.Fatal("in-db voters missing")
	}
	if env.ServerDB == nil || env.Addr == "" {
		t.Fatal("server not started")
	}
}

func TestInDatabasePipeline(t *testing.T) {
	env := testEnv(t)
	res, err := RunInDatabase(env)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res, env)
}

func TestExternalPipelines(t *testing.T) {
	env := testEnv(t)
	for _, run := range []struct {
		name string
		fn   func(*Env) (Result, error)
	}{
		{"csv", RunCSV},
		{"numpy", RunNumpy},
		{"hdf5", RunHDF5},
		{"pg", RunPostgresLike},
		{"mysql", RunMySQLLike},
		{"sqlite", RunSQLiteLike},
	} {
		t.Run(run.name, func(t *testing.T) {
			res, err := run.fn(env)
			if err != nil {
				t.Fatal(err)
			}
			checkResult(t, res, env)
			if res.Load <= 0 {
				t.Error("external pipeline must report load time")
			}
		})
	}
}

func checkResult(t *testing.T, res Result, env *Env) {
	t.Helper()
	wantTest := 0
	for i := 0; i < env.Cfg.Voters; i++ {
		if i%env.Cfg.TestModulus == 0 {
			wantTest++
		}
	}
	if res.TestRows != wantTest {
		t.Errorf("%s: test rows = %d, want %d", res.Method, res.TestRows, wantTest)
	}
	// The synthetic task is learnable: comfortably above chance.
	if res.VoterAccuracy < 0.58 {
		t.Errorf("%s: voter accuracy %.3f too low", res.Method, res.VoterAccuracy)
	}
	// Aggregated precinct shares track the actual shares.
	if res.PrecinctMAE > 0.25 {
		t.Errorf("%s: precinct MAE %.3f too high", res.Method, res.PrecinctMAE)
	}
	if res.Total <= 0 || res.Train <= 0 || res.Predict <= 0 {
		t.Errorf("%s: missing stage timings %+v", res.Method, res)
	}
}

func TestPipelinesAgreeOnLabels(t *testing.T) {
	// The in-DB weighted_label UDF and the client-side splitmix64 path
	// must produce identical labels, so all pipelines solve the same
	// problem.
	env := testEnv(t)
	inDB, err := RunInDatabase(env)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := RunNumpy(env)
	if err != nil {
		t.Fatal(err)
	}
	// Both train the same forest on the same labels: accuracies match
	// closely (identical up to train-order nondeterminism; forest
	// fitting is deterministic given the seed, so they are equal).
	if diff := inDB.VoterAccuracy - ext.VoterAccuracy; diff > 0.02 || diff < -0.02 {
		t.Fatalf("accuracy diverged: in-db %.4f vs external %.4f", inDB.VoterAccuracy, ext.VoterAccuracy)
	}
}

func TestFigure1AllBars(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	env := testEnv(t)
	results, err := Figure1(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("bars = %d", len(results))
	}
	if results[0].Method != "vexdb (in-database)" {
		t.Fatal("first bar must be in-database")
	}
}

func TestE2Serialization(t *testing.T) {
	env := testEnv(t)
	rows, err := E2ModelSerialization(env, []int{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Blob size grows with tree count.
	if !(rows[0].BlobBytes < rows[1].BlobBytes && rows[1].BlobBytes < rows[2].BlobBytes) {
		t.Fatalf("blob sizes not increasing: %+v", rows)
	}
	for _, r := range rows {
		if r.Serialize <= 0 || r.Deserialize <= 0 {
			t.Fatalf("missing timings: %+v", r)
		}
	}
}

func TestE3Parallel(t *testing.T) {
	env := testEnv(t)
	rows, err := E3ParallelUDF(env, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Workers != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Speedup != 1 {
		t.Fatal("baseline speedup must be 1")
	}
}

func TestE6MorselScaling(t *testing.T) {
	env := testEnv(t)
	rows, err := E6MorselScaling(env, []int{1, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Workers != 1 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Speedup != 1 {
		t.Fatal("baseline speedup must be 1")
	}
}

func TestE4Ensemble(t *testing.T) {
	env := testEnv(t)
	res, err := E4Ensemble(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerModel) != 4 {
		t.Fatalf("models = %d", len(res.PerModel))
	}
	for algo, acc := range res.PerModel {
		if acc < 0.5 {
			t.Errorf("%s accuracy %.3f below chance", algo, acc)
		}
	}
	// Meta-analysis selection is at least as good as the worst model.
	worst := 1.0
	for _, acc := range res.PerModel {
		if acc < worst {
			worst = acc
		}
	}
	if res.BestByMeta < worst {
		t.Fatalf("best-by-meta %.3f worse than worst model %.3f", res.BestByMeta, worst)
	}
	if res.Majority < 0.5 || res.Confidence < 0.5 {
		t.Fatalf("ensemble accuracies too low: %+v", res)
	}
}

func TestE5Protocols(t *testing.T) {
	env := testEnv(t)
	rows, err := E5Protocols(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Rows != env.Cfg.Voters {
			t.Fatalf("%s transferred %d rows", r.Protocol, r.Rows)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	bad := Config{Voters: 1}
	if _, err := Setup(bad, t.TempDir()); err == nil {
		t.Fatal("invalid config should fail")
	}
}
