package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"time"
)

// MLBenchRow is one worker-count measurement of the in-database ML
// pipeline: TRAIN as a parallel table UDF (morsel-partitioned fits
// merged deterministically) and CLASSIFY as the streaming vectorized
// predict over the full labeled table.
type MLBenchRow struct {
	Workers          int
	Train            time.Duration
	Classify         time.Duration
	TrainNsPerRow    float64
	ClassifyNsPerRow float64
	TrainSpeedup     float64 // relative to the first (smallest) worker count
	ClassifySpeedup  float64
	ModelDigest      string // SHA-256 of the serialized model blob
}

// MLBenchResult aggregates E7 across worker counts. ModelsIdentical
// reports whether every worker count produced a byte-identical model —
// the parallel-training determinism contract, checked on real data.
type MLBenchResult struct {
	TrainRows       int
	ClassifyRows    int
	Rows            []MLBenchRow
	ModelsIdentical bool
}

// E7MLBench measures end-to-end TRAIN and CLASSIFY cost per row at
// each worker count, on the voter benchmark's labeled table. Training
// uses the same train_rf invocation as the Figure 1 pipeline;
// classification scores every labeled row through the streamed
// predict operator. The model digest per worker count verifies
// byte-identical training at any parallelism.
func E7MLBench(env *Env, workerCounts []int) (*MLBenchResult, error) {
	cfg := env.Cfg
	db := env.DB
	if !db.HasTable("labeled") {
		if _, err := RunInDatabase(env); err != nil {
			return nil, err
		}
	}
	feats := FeatureNames(cfg)
	trainSQL := fmt.Sprintf(
		`SELECT model FROM train_rf((SELECT %s, label FROM labeled WHERE id %% %d <> 0), %d, %d, %d)`,
		strings.Join(feats, ", "), cfg.TestModulus, cfg.Estimators, cfg.MaxDepth, cfg.Seed)
	classifySQL := fmt.Sprintf(
		`SELECT count(*) AS n FROM (
			SELECT predict(m.model, %s) AS pred
			FROM labeled l, rf_model m) q WHERE q.pred >= 0`,
		prefixAll("l.", feats))

	res := &MLBenchResult{ModelsIdentical: true}
	cnt, err := db.Query(fmt.Sprintf(
		`SELECT count(*) AS train_n FROM labeled WHERE id %% %d <> 0`, cfg.TestModulus))
	if err != nil {
		return nil, fmt.Errorf("E7 count: %w", err)
	}
	res.TrainRows = int(cnt.Cols[0].Int64s()[0])
	res.ClassifyRows = db.NumRows("labeled")

	defer db.SetParallelism(cfg.Parallelism)
	for _, w := range workerCounts {
		db.SetParallelism(w)

		t0 := time.Now()
		tab, err := db.Query(trainSQL)
		if err != nil {
			return nil, fmt.Errorf("E7 train workers=%d: %w", w, err)
		}
		train := time.Since(t0)
		blob := tab.Cols[0].Blobs()[0]
		sum := sha256.Sum256(blob)
		digest := hex.EncodeToString(sum[:])

		t0 = time.Now()
		out, err := db.Query(classifySQL)
		if err != nil {
			return nil, fmt.Errorf("E7 classify workers=%d: %w", w, err)
		}
		classify := time.Since(t0)
		if got := int(out.Cols[0].Int64s()[0]); got != res.ClassifyRows {
			return nil, fmt.Errorf("E7 classify workers=%d: scored %d rows, want %d", w, got, res.ClassifyRows)
		}

		row := MLBenchRow{
			Workers:          w,
			Train:            train,
			Classify:         classify,
			TrainNsPerRow:    float64(train.Nanoseconds()) / float64(res.TrainRows),
			ClassifyNsPerRow: float64(classify.Nanoseconds()) / float64(res.ClassifyRows),
			ModelDigest:      digest,
		}
		if len(res.Rows) == 0 {
			row.TrainSpeedup = 1
			row.ClassifySpeedup = 1
		} else {
			row.TrainSpeedup = float64(res.Rows[0].Train) / float64(train)
			row.ClassifySpeedup = float64(res.Rows[0].Classify) / float64(classify)
			if digest != res.Rows[0].ModelDigest {
				res.ModelsIdentical = false
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
