package wire

import (
	"fmt"
	"sync"
	"testing"

	"vexdb/internal/engine"
	"vexdb/internal/wal"
)

// Concurrent wire writers: many connections INSERT into the same
// durable table at once. Writes are no longer serialized behind reads
// at an engine-wide lock — each statement WAL-logs, applies under the
// table's write lock, and group-commits — and every acknowledged row
// must be present exactly once afterwards.
func TestConcurrentWireWriters(t *testing.T) {
	db := engine.New()
	if err := db.EnableWAL(t.TempDir(), wal.SyncGroup); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE ingest (writer BIGINT, seq BIGINT)"); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	const writers, perWriter = 8, 40
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			for i := 0; i < perWriter; i++ {
				res, err := c.Exec(fmt.Sprintf("INSERT INTO ingest VALUES (%d, %d)", w, i))
				if err != nil {
					errs[w] = err
					return
				}
				if res != 1 {
					errs[w] = fmt.Errorf("insert acked %d rows", res)
					return
				}
			}
		}(w)
	}

	// Readers stream concurrently: every result must hold complete
	// statements only (each single-row INSERT is atomic, so any row
	// count is fine, but no row may be torn or duplicated).
	var rg sync.WaitGroup
	readErrs := make([]error, 2)
	for r := 0; r < 2; r++ {
		rg.Add(1)
		go func(r int) {
			defer rg.Done()
			c, err := Dial(addr)
			if err != nil {
				readErrs[r] = err
				return
			}
			defer c.Close()
			for i := 0; i < 10; i++ {
				tab, err := c.Query(Columnar, "SELECT writer, seq FROM ingest")
				if err != nil {
					readErrs[r] = err
					return
				}
				seen := make(map[[2]int64]bool, tab.NumRows())
				for i := 0; i < tab.NumRows(); i++ {
					k := [2]int64{tab.Cols[0].Get(i).Int64(), tab.Cols[1].Get(i).Int64()}
					if seen[k] {
						readErrs[r] = fmt.Errorf("duplicate row %v mid-ingest", k)
						return
					}
					seen[k] = true
				}
			}
		}(r)
	}
	wg.Wait()
	rg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	for r, err := range readErrs {
		if err != nil {
			t.Fatalf("reader %d: %v", r, err)
		}
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tab, err := c.Query(Columnar, "SELECT writer, seq FROM ingest ORDER BY writer, seq")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != writers*perWriter {
		t.Fatalf("final rows = %d, want %d", tab.NumRows(), writers*perWriter)
	}
	for i := 0; i < tab.NumRows(); i++ {
		w, s := int64(i/perWriter), int64(i%perWriter)
		if tab.Cols[0].Get(i).Int64() != w || tab.Cols[1].Get(i).Int64() != s {
			t.Fatalf("row %d = (%d,%d), want (%d,%d)", i,
				tab.Cols[0].Get(i).Int64(), tab.Cols[1].Get(i).Int64(), w, s)
		}
	}
}
