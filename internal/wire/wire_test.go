package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"vexdb/internal/catalog"
	"vexdb/internal/engine"
	"vexdb/internal/vector"
)

func startServer(t *testing.T) (*engine.DB, string) {
	t.Helper()
	db := engine.New()
	script := []string{
		"CREATE TABLE t (id BIGINT, v DOUBLE, name VARCHAR, raw BLOB)",
	}
	for _, q := range script {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t (id, v, name) VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %f, 'row %d')", i, float64(i)*0.5, i)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return db, addr
}

// bigServer serves a table large enough to span many chunks (and many
// storage segments), loaded through the catalog to keep test setup
// fast.
func bigServer(t *testing.T, rows, workers int) (*engine.DB, *Server, string) {
	t.Helper()
	db := bigDB(t, rows, workers)
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return db, srv, addr
}

// bigDB builds the "big" table without starting a server, so tests can
// configure the engine (governor, deadlines) before it begins serving.
func bigDB(t *testing.T, rows, workers int) *engine.DB {
	t.Helper()
	db := engine.New()
	db.Parallelism = workers
	schema := catalog.Schema{
		{Name: "id", Type: vector.Int64},
		{Name: "pad", Type: vector.String},
	}
	ct, err := db.Catalog().CreateTable("big", schema)
	if err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("x", 64)
	for lo := 0; lo < rows; lo += vector.DefaultChunkSize {
		hi := lo + vector.DefaultChunkSize
		if hi > rows {
			hi = rows
		}
		ids := make([]int64, hi-lo)
		pads := make([]string, hi-lo)
		for i := range ids {
			ids[i] = int64(lo + i)
			pads[i] = pad
		}
		ch := vector.NewChunk(vector.FromInt64s(ids), vector.FromStrings(pads))
		if err := ct.Data.AppendChunk(ch); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestAllProtocolsRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
		t.Run(proto.String(), func(t *testing.T) {
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			tab, err := c.Query(proto, "SELECT id, v, name, raw FROM t ORDER BY id")
			if err != nil {
				t.Fatal(err)
			}
			if tab.NumRows() != 500 || tab.NumCols() != 4 {
				t.Fatalf("dims %dx%d", tab.NumCols(), tab.NumRows())
			}
			if tab.Column("id").Get(7).Int64() != 7 {
				t.Fatal("id wrong")
			}
			if tab.Column("v").Get(3).Float64() != 1.5 {
				t.Fatal("v wrong")
			}
			if tab.Column("name").Get(10).Str() != "row 10" {
				t.Fatal("name wrong")
			}
			if !tab.Column("raw").IsNull(0) {
				t.Fatal("null blob wrong")
			}
		})
	}
}

func TestEscapingAndSpecialValues(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE s (x VARCHAR, b BOOLEAN, i INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO s VALUES ('tab	and
newline', TRUE, -5), (NULL, FALSE, NULL)`); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := c.Query(proto, "SELECT x, b, i FROM s")
		c.Close()
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if got := tab.Column("x").Get(0).Str(); got != "tab\tand\nnewline" {
			t.Fatalf("%s: escaped string = %q", proto, got)
		}
		if !tab.Column("x").IsNull(1) || !tab.Column("i").IsNull(1) {
			t.Fatalf("%s: null handling", proto)
		}
		if tab.Column("b").Get(0).Bool() != true || tab.Column("i").Get(0).Int64() != -5 {
			t.Fatalf("%s: values", proto)
		}
	}
}

func TestServerError(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(TextRows, "SELECT * FROM no_such_table"); err == nil {
		t.Fatal("server error not propagated")
	}
	// The connection stays usable after an error.
	tab, err := c.Query(TextRows, "SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("n").Get(0).Int64() != 500 {
		t.Fatal("post-error query")
	}
}

func TestClientExecAndMultipleRequests(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Exec("CREATE TABLE made_remotely (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	n, err := c.Exec("INSERT INTO made_remotely VALUES (1), (2)")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("RowsAffected = %d, want 2", n)
	}
	tab, err := c.Query(BinaryRows, "SELECT sum(a) AS s FROM made_remotely")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("s").Get(0).Int64() != 3 {
		t.Fatal("remote DDL/DML failed")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				tab, err := c.Query(Columnar, "SELECT count(*) AS n FROM t")
				if err != nil {
					done <- err
					return
				}
				if tab.Column("n").Get(0).Int64() != 500 {
					done <- fmt.Errorf("wrong count")
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRowIterate(t *testing.T) {
	db, _ := startServer(t)
	tab, err := RowIterate(db, "SELECT id, v FROM t ORDER BY id LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 10 || tab.Column("v").Get(4).Float64() != 2 {
		t.Fatalf("row iterate: %d rows", tab.NumRows())
	}
	if _, err := RowIterate(db, "SELECT * FROM nope"); err == nil {
		t.Fatal("error not propagated")
	}
	if _, err := RowIterate(db, "CREATE TABLE ri (a BIGINT)"); err == nil {
		t.Fatal("row-less statement should error")
	}
}

func TestHexCodec(t *testing.T) {
	b := []byte{0, 1, 0xAB, 0xFF}
	s := hexEncode(b)
	if s != "0001abff" {
		t.Fatalf("hex = %q", s)
	}
	back, err := hexDecode(s)
	if err != nil || string(back) != string(b) {
		t.Fatal("hex round trip")
	}
	if _, err := hexDecode("abc"); err == nil {
		t.Error("odd length should fail")
	}
	if _, err := hexDecode("zz"); err == nil {
		t.Error("bad digit should fail")
	}
}

func TestEmptyResult(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
		tab, err := c.Query(proto, "SELECT id FROM t WHERE id < 0")
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if tab.NumRows() != 0 {
			t.Fatalf("%s: %d rows", proto, tab.NumRows())
		}
	}
}

// ------------------------------------------------ streaming coverage

// Streamed wire results must be row-identical to the engine's
// materialized Exec output across all protocols and worker counts.
func TestStreamedMatchesExecAllProtocols(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		db, _, addr := bigServer(t, 10_000, workers)
		queries := []string{
			"SELECT id, pad FROM big",
			"SELECT id * 2 AS d FROM big WHERE id % 7 = 0",
			"SELECT count(*) AS n, sum(id) AS s FROM big",
			"SELECT id FROM big LIMIT 11",
		}
		for _, q := range queries {
			want, err := db.Exec(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
				c, err := Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				st, err := c.Stream(proto, q)
				if err != nil {
					t.Fatalf("w=%d %s %s: %v", workers, proto, q, err)
				}
				var rows int
				for {
					ch, err := st.Next()
					if err != nil {
						t.Fatalf("w=%d %s %s: %v", workers, proto, q, err)
					}
					if ch == nil {
						break
					}
					for i := 0; i < ch.NumRows(); i++ {
						for cidx := 0; cidx < ch.NumCols(); cidx++ {
							got := ch.Col(cidx).Get(i).String()
							exp := want.Table.Cols[cidx].Get(rows + i).String()
							if got != exp {
								t.Fatalf("w=%d %s %s: row %d col %d: %q != %q",
									workers, proto, q, rows+i, cidx, got, exp)
							}
						}
					}
					rows += ch.NumRows()
				}
				if rows != want.Table.NumRows() {
					t.Fatalf("w=%d %s %s: %d rows, want %d", workers, proto, q, rows, want.Table.NumRows())
				}
				c.Close()
			}
		}
	}
}

// A mid-stream execution failure must surface after the leading
// chunks, as an in-band error frame that leaves the connection usable.
func TestMidStreamErrorOverWire(t *testing.T) {
	db := engine.New()
	db.Parallelism = 2
	if _, err := db.Exec("CREATE TABLE s (v VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	const rows = 20_000
	for lo := 0; lo < rows; lo += 1000 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO s VALUES ")
		for i := lo; i < lo+1000; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			if i == rows-500 {
				sb.WriteString("('boom')")
				continue
			}
			fmt.Fprintf(&sb, "('%d')", i)
		}
		if _, err := db.Exec(sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		st, err := c.Stream(proto, "SELECT CAST(v AS BIGINT) AS n FROM s")
		if err != nil {
			t.Fatalf("%s: open: %v", proto, err)
		}
		var chunks int
		var streamErr error
		for {
			ch, err := st.Next()
			if err != nil {
				streamErr = err
				break
			}
			if ch == nil {
				break
			}
			chunks++
		}
		if streamErr == nil || !strings.Contains(streamErr.Error(), "boom") {
			t.Fatalf("%s: err = %v", proto, streamErr)
		}
		if chunks == 0 {
			t.Fatalf("%s: no chunks before the mid-stream error", proto)
		}
		// The error frame terminates the response; the connection must
		// survive for the next request.
		tab, err := c.Query(proto, "SELECT count(*) AS n FROM s")
		if err != nil {
			t.Fatalf("%s: post-error query: %v", proto, err)
		}
		if tab.Column("n").Get(0).Int64() != rows {
			t.Fatalf("%s: post-error count", proto)
		}
		// Exec drains without decoding, but must still surface a
		// mid-stream failure instead of reporting success.
		if _, err := c.Exec("SELECT CAST(v AS BIGINT) AS n FROM s"); err == nil ||
			!strings.Contains(err.Error(), "boom") {
			t.Fatalf("%s: Exec swallowed mid-stream error: %v", proto, err)
		}
		c.Close()
	}
}

// LIMIT k over a large table must terminate the response after k rows
// without the server scanning the whole relation.
func TestLimitEarlyExitOverWire(t *testing.T) {
	_, _, addr := bigServer(t, 300_000, 4)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	st, err := c.Stream(Columnar, "SELECT id, pad FROM big LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for {
		ch, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ch == nil {
			break
		}
		rows += ch.NumRows()
	}
	if rows != 5 {
		t.Fatalf("LIMIT 5 delivered %d rows", rows)
	}
	// Generous sanity bound: streaming 5 rows must not cost a full
	// 300k-row scan + transfer.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("LIMIT query took %v", elapsed)
	}
}

// A client that disconnects mid-result must cancel the query: the
// server's next write fails, the ResultSet closes, and executor
// workers exit instead of scanning to completion.
func TestClientDisconnectStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	_, srv, addr := bigServer(t, 400_000, 8)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stream(Columnar, "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if ch, err := st.Next(); err != nil || ch == nil {
		t.Fatalf("first chunk: %v %v", ch, err)
	}
	// Abrupt disconnect with most of the ~28MB result unread.
	c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		inflight := len(srv.streams)
		srv.mu.Unlock()
		if inflight == 0 && runtime.NumGoroutine() <= before+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("disconnect leak: %d streams in flight, %d goroutines (baseline %d)",
				inflight, runtime.NumGoroutine(), before)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Server.Close during an in-flight result must cancel the query and
// return promptly rather than waiting for the scan to finish.
func TestServerCloseCancelsInFlight(t *testing.T) {
	_, srv, addr := bigServer(t, 400_000, 8)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stream(BinaryRows, "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if ch, err := st.Next(); err != nil || ch == nil {
		t.Fatalf("first chunk: %v %v", ch, err)
	}
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close blocked on in-flight query")
	}
	// The interrupted client eventually observes a broken stream.
	for {
		ch, err := st.Next()
		if err != nil {
			break
		}
		if ch == nil {
			// The remaining buffered frames may include the end frame
			// if the query finished racing the shutdown; acceptable.
			break
		}
	}
}

// ResultStream.Close must drain an abandoned result so the connection
// can serve the next request.
func TestStreamCloseDrains(t *testing.T) {
	_, _, addr := bigServer(t, 50_000, 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stream(TextRows, "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if ch, err := st.Next(); err != nil || ch == nil {
		t.Fatalf("first chunk: %v %v", ch, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	tab, err := c.Query(Columnar, "SELECT count(*) AS n FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("n").Get(0).Int64() != 50_000 {
		t.Fatal("post-drain query")
	}
}

// Chunk frames carry an untrusted row count; a hostile value must be
// rejected before column preallocation, not OOM the client.
func TestDecodeChunkRowCountGuard(t *testing.T) {
	payload := make([]byte, 8)
	binary.LittleEndian.PutUint32(payload, 0xFFFFFFFF)
	for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
		if _, err := decodeChunk(proto, payload, []vector.Type{vector.Int64}); err == nil {
			t.Fatalf("%s: hostile row count accepted", proto)
		}
	}
	// Zero-column chunks must declare zero rows.
	if _, err := decodeChunk(Columnar, payload, nil); err == nil {
		t.Fatal("rows in zero-column chunk accepted")
	}
}

// An undecodable frame desynchronizes the stream; the client must
// refuse further requests on that connection instead of misparsing
// leftover frames.
func TestDesyncLatchRefusesReuse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	served := make(chan struct{})
	go func() {
		defer close(served)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		if _, _, err := readRequest(br); err != nil {
			return
		}
		bw := bufio.NewWriter(conn)
		var buf bytes.Buffer
		encodeSchema(&buf, catalog.Schema{{Name: "x", Type: vector.Int64}})
		writeFrame(bw, frameSchema, buf.Bytes())
		// Bogus chunk: declares 3 rows with an empty body.
		chunk := make([]byte, 4)
		binary.LittleEndian.PutUint32(chunk, 3)
		writeFrame(bw, frameChunk, chunk)
		bw.Flush()
		// Hold the connection open so the client failure is
		// decode-level, not a read error.
		var one [1]byte
		conn.Read(one[:])
	}()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stream(Columnar, "SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err == nil {
		t.Fatal("bogus chunk accepted")
	}
	if _, err := c.Stream(Columnar, "SELECT 1"); err == nil ||
		!strings.Contains(err.Error(), "desynchronized") {
		t.Fatalf("desync not latched: %v", err)
	}
}
