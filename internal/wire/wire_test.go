package wire

import (
	"fmt"
	"strings"
	"testing"

	"vexdb/internal/engine"
)

func startServer(t *testing.T) (*engine.DB, string) {
	t.Helper()
	db := engine.New()
	script := []string{
		"CREATE TABLE t (id BIGINT, v DOUBLE, name VARCHAR, raw BLOB)",
	}
	for _, q := range script {
		if _, err := db.Exec(q); err != nil {
			t.Fatal(err)
		}
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO t (id, v, name) VALUES ")
	for i := 0; i < 500; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %f, 'row %d')", i, float64(i)*0.5, i)
	}
	if _, err := db.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return db, addr
}

func TestAllProtocolsRoundTrip(t *testing.T) {
	_, addr := startServer(t)
	for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
		t.Run(proto.String(), func(t *testing.T) {
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			tab, err := c.Query(proto, "SELECT id, v, name, raw FROM t ORDER BY id")
			if err != nil {
				t.Fatal(err)
			}
			if tab.NumRows() != 500 || tab.NumCols() != 4 {
				t.Fatalf("dims %dx%d", tab.NumCols(), tab.NumRows())
			}
			if tab.Column("id").Get(7).Int64() != 7 {
				t.Fatal("id wrong")
			}
			if tab.Column("v").Get(3).Float64() != 1.5 {
				t.Fatal("v wrong")
			}
			if tab.Column("name").Get(10).Str() != "row 10" {
				t.Fatal("name wrong")
			}
			if !tab.Column("raw").IsNull(0) {
				t.Fatal("null blob wrong")
			}
		})
	}
}

func TestEscapingAndSpecialValues(t *testing.T) {
	db := engine.New()
	if _, err := db.Exec("CREATE TABLE s (x VARCHAR, b BOOLEAN, i INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`INSERT INTO s VALUES ('tab	and
newline', TRUE, -5), (NULL, FALSE, NULL)`); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := c.Query(proto, "SELECT x, b, i FROM s")
		c.Close()
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if got := tab.Column("x").Get(0).Str(); got != "tab\tand\nnewline" {
			t.Fatalf("%s: escaped string = %q", proto, got)
		}
		if !tab.Column("x").IsNull(1) || !tab.Column("i").IsNull(1) {
			t.Fatalf("%s: null handling", proto)
		}
		if tab.Column("b").Get(0).Bool() != true || tab.Column("i").Get(0).Int64() != -5 {
			t.Fatalf("%s: values", proto)
		}
	}
}

func TestServerError(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(TextRows, "SELECT * FROM no_such_table"); err == nil {
		t.Fatal("server error not propagated")
	}
	// The connection stays usable after an error.
	tab, err := c.Query(TextRows, "SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("n").Get(0).Int64() != 500 {
		t.Fatal("post-error query")
	}
}

func TestClientExecAndMultipleRequests(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Exec("CREATE TABLE made_remotely (a BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if err := c.Exec("INSERT INTO made_remotely VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	tab, err := c.Query(BinaryRows, "SELECT sum(a) AS s FROM made_remotely")
	if err != nil {
		t.Fatal(err)
	}
	if tab.Column("s").Get(0).Int64() != 3 {
		t.Fatal("remote DDL/DML failed")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, addr := startServer(t)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				tab, err := c.Query(Columnar, "SELECT count(*) AS n FROM t")
				if err != nil {
					done <- err
					return
				}
				if tab.Column("n").Get(0).Int64() != 500 {
					done <- fmt.Errorf("wrong count")
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRowIterate(t *testing.T) {
	db, _ := startServer(t)
	tab, err := RowIterate(db, "SELECT id, v FROM t ORDER BY id LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 10 || tab.Column("v").Get(4).Float64() != 2 {
		t.Fatalf("row iterate: %d rows", tab.NumRows())
	}
	if _, err := RowIterate(db, "SELECT * FROM nope"); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestHexCodec(t *testing.T) {
	b := []byte{0, 1, 0xAB, 0xFF}
	s := hexEncode(b)
	if s != "0001abff" {
		t.Fatalf("hex = %q", s)
	}
	back, err := hexDecode(s)
	if err != nil || string(back) != string(b) {
		t.Fatal("hex round trip")
	}
	if _, err := hexDecode("abc"); err == nil {
		t.Error("odd length should fail")
	}
	if _, err := hexDecode("zz"); err == nil {
		t.Error("bad digit should fail")
	}
}

func TestEmptyResult(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, proto := range []Protocol{TextRows, BinaryRows, Columnar} {
		tab, err := c.Query(proto, "SELECT id FROM t WHERE id < 0")
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if tab.NumRows() != 0 {
			t.Fatalf("%s: %d rows", proto, tab.NumRows())
		}
	}
}
