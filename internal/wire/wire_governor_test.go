package wire

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"vexdb/internal/engine"
	"vexdb/internal/governor"
)

// govServer is bigServer with a governor attached before the listener
// starts (setting engine fields once a server is serving would race
// with connection goroutines reading them).
func govServer(t *testing.T, rows, workers int, cfg governor.Config, configure func(*engine.DB)) (*engine.DB, *Server, string) {
	t.Helper()
	db := bigDB(t, rows, workers)
	db.Gov = governor.New(cfg)
	if configure != nil {
		configure(db)
	}
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return db, srv, addr
}

// waitNoLeaks polls until the server's stream registry is empty and
// the goroutine count is back near the baseline.
func waitNoLeaks(t *testing.T, srv *Server, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		srv.mu.Lock()
		inflight := len(srv.streams)
		srv.mu.Unlock()
		if inflight == 0 && runtime.NumGoroutine() <= baseline+4 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("leak: %d streams in flight, %d goroutines (baseline %d)",
				inflight, runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDisconnectStorm: many clients connect, start a large query, and
// drop mid-stream. The session registry must release every stream,
// session, and goroutine (run with -race to exercise the registry).
func TestDisconnectStorm(t *testing.T) {
	before := runtime.NumGoroutine()
	_, srv, addr := govServer(t, 200_000, 4, governor.Config{
		PoolBytes: 64 << 20, MaxActive: 8, MaxQueued: 256,
	}, nil)
	const clients = 100
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				return // accept backlog overflow under storm is fine
			}
			st, err := c.Stream(Columnar, "SELECT id, pad FROM big")
			if err != nil {
				c.Close()
				return
			}
			st.Next() // one chunk, then drop the connection abruptly
			c.Close()
		}()
	}
	wg.Wait()
	waitNoLeaks(t, srv, before)
}

// TestOverloadTypedRejection: with MaxActive=1 and an empty queue, a
// second concurrent query must be rejected with the typed retryable
// error while the first still streams, and the rejected connection
// must remain usable.
func TestOverloadTypedRejection(t *testing.T) {
	db, _, addr := govServer(t, 200_000, 2, governor.Config{
		MaxActive: 1, MaxQueued: 1, RetryAfter: 50 * time.Millisecond,
	}, nil)
	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	st1, err := c1.Stream(Columnar, "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st1.Next(); err != nil {
		t.Fatal(err)
	}

	// Fill the one queue slot with a waiter that holds it.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	queuedErr := make(chan error, 1)
	go func() {
		st, err := c2.Stream(Columnar, "SELECT count(*) AS n FROM big")
		if err == nil {
			err = st.Close()
		}
		queuedErr <- err
	}()
	// Wait until it occupies the single queue slot.
	for deadline := time.Now().Add(5 * time.Second); ; {
		if db.Gov.Stats().Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second query never queued")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Third query: queue full -> typed rejection.
	c3, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	var ov *governor.OverloadedError
	_, err = c3.Stream(Columnar, "SELECT count(*) AS n FROM big")
	if !errors.As(err, &ov) {
		t.Fatalf("err = %v, want *governor.OverloadedError", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ov.RetryAfter)
	}
	// The rejected connection must still serve requests once load
	// clears.
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued query: %v", err)
	}
	tab, err := c3.Query(Columnar, "SELECT count(*) AS n FROM big")
	if err != nil {
		t.Fatalf("rejected connection unusable: %v", err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("got %d rows", tab.NumRows())
	}
}

// TestClientCancelMidStream: Cancel from another goroutine terminates
// the query with ErrQueryCancelled and keeps the connection usable.
func TestClientCancelMidStream(t *testing.T) {
	_, _, addr := govServer(t, 400_000, 4, governor.Config{MaxActive: 4}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stream(Columnar, "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(); err != nil {
		t.Fatal(err)
	}
	var got error
	for {
		ch, err := st.Next()
		if err != nil {
			got = err
			break
		}
		if ch == nil {
			break // finished racing the cancel; acceptable
		}
	}
	if got != nil && !errors.Is(got, ErrQueryCancelled) {
		t.Fatalf("err = %v, want ErrQueryCancelled", got)
	}
	// The connection survives the cancel.
	tab, err := c.Query(Columnar, "SELECT count(*) AS n FROM big")
	if err != nil {
		t.Fatalf("connection unusable after cancel: %v", err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("got %d rows", tab.NumRows())
	}
}

// TestOversizedRequestKeepsConnection: a request above the SQL size
// cap must be rejected in-band without desynchronizing the stream.
func TestOversizedRequestKeepsConnection(t *testing.T) {
	_, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	big := make([]byte, maxRequestSize+1)
	for i := range big {
		big[i] = ' '
	}
	_, err = c.Stream(Columnar, string(big))
	if err == nil {
		t.Fatal("oversized request accepted")
	}
	// Same connection, normal query.
	tab, err := c.Query(Columnar, "SELECT count(*) AS n FROM t")
	if err != nil {
		t.Fatalf("connection unusable after oversized request: %v", err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("got %d rows", tab.NumRows())
	}
}

// TestGracefulShutdownDrains: Shutdown must let an in-flight query
// stream to completion, close idle connections, and leave no
// goroutines behind.
func TestGracefulShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	_, srv, addr := govServer(t, 100_000, 2, governor.Config{MaxActive: 4}, nil)

	idle, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	if _, err := idle.Query(Columnar, "SELECT count(*) AS n FROM big"); err != nil {
		t.Fatal(err)
	}

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stream(Columnar, "SELECT id, pad FROM big")
	if err != nil {
		t.Fatal(err)
	}
	var rows int64
	first, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	rows += int64(first.NumRows())

	done := make(chan struct{})
	go func() {
		srv.Shutdown(30 * time.Second)
		close(done)
	}()
	// The in-flight stream must complete normally during the drain.
	for {
		ch, err := st.Next()
		if err != nil {
			t.Fatalf("drained stream broke: %v", err)
		}
		if ch == nil {
			break
		}
		rows += int64(ch.NumRows())
	}
	if rows != 100_000 {
		t.Fatalf("drained %d rows, want 100000", rows)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after streams drained")
	}
	waitNoLeaks(t, srv, before)
}

// TestQueryTimeoutOverWire: a deadline shorter than the query's
// runtime must terminate it with an in-band deadline error, keeping
// the connection usable.
func TestQueryTimeoutOverWire(t *testing.T) {
	_, _, addr := govServer(t, 400_000, 2, governor.Config{MaxActive: 4},
		func(db *engine.DB) { db.QueryTimeout = 30 * time.Millisecond })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Sorting 400k strings is comfortably slower than the deadline.
	st, err := c.Stream(Columnar, "SELECT id, pad FROM big ORDER BY pad, id")
	var got error
	if err != nil {
		got = err
	} else {
		for {
			ch, nerr := st.Next()
			if nerr != nil {
				got = nerr
				break
			}
			if ch == nil {
				break
			}
		}
	}
	if got == nil {
		t.Skip("query finished under the deadline on this machine")
	}
	if !strings.Contains(got.Error(), engine.ErrQueryTimeout.Error()) {
		t.Fatalf("err = %v, want deadline error", got)
	}
	// Deadline errors are per-query; the connection stays usable for
	// queries that fit the deadline.
	tab, err := c.Query(Columnar, "SELECT 1 AS n")
	if err != nil {
		t.Fatalf("connection unusable after deadline: %v", err)
	}
	if tab.NumRows() != 1 {
		t.Fatalf("got %d rows", tab.NumRows())
	}
}
