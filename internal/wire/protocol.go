// Package wire implements the client/server protocols used by the
// socket-transfer baselines of Figure 1. A Server exposes a vexdb
// engine over TCP; clients fetch query results with one of three
// encodings whose costs mirror the paper's comparison systems:
//
//   - TextRows: row-at-a-time, text-serialized fields (the
//     PostgreSQL-protocol analog) — every value is printed and
//     re-parsed, the slowest path.
//   - BinaryRows: row-at-a-time, binary fields (the MySQL-protocol
//     analog) — no text conversion but still row-major framing.
//   - Columnar: the engine's native bulk columnar transfer (what a
//     redesigned client protocol can achieve, cf. Raasveldt &
//     Mühleisen, VLDB 2017).
//
// Since protocol version 2 results are delivered as a stream of
// length-prefixed chunk frames pulled straight from the executor, so
// the server never materializes a result and time-to-first-row is
// independent of result size. See README.md for the frame format.
//
// RowIterate provides the SQLite analog: an in-process row-at-a-time
// cursor with per-value boxing but no socket.
package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"vexdb/internal/catalog"
	"vexdb/internal/governor"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// Version is the wire protocol revision. Version 2 replaced the
// monolithic status-byte + full-payload response of version 1 with
// chunk-framed streaming delivery; the request encoding is unchanged.
// Both ends of a deployment must run the same major revision — there
// is no negotiation (client and server ship in one module).
const Version = 2

// Protocol selects the result encoding inside chunk frames.
type Protocol uint8

// Supported protocols.
const (
	// TextRows serializes every value to text, row by row (pg-like).
	TextRows Protocol = iota + 1
	// BinaryRows sends binary values, row by row (mysql-like).
	BinaryRows
	// Columnar bulk-transfers whole columns (vexdb native).
	Columnar

	// protoCancel marks a control request rather than a query: its SQL
	// payload is empty and the server cancels the connection's
	// in-flight query (if any) instead of replying. The client may send
	// it from another goroutine while a result is streaming; the
	// cancelled query terminates with an in-band error frame carrying
	// ErrQueryCancelled, and the connection stays usable.
	protoCancel Protocol = 0xF0
)

func (p Protocol) String() string {
	switch p {
	case TextRows:
		return "text-rows"
	case BinaryRows:
		return "binary-rows"
	case Columnar:
		return "columnar"
	}
	return fmt.Sprintf("protocol(%d)", uint8(p))
}

// Request framing (unchanged from v1): u32 SQL length, protocol byte,
// SQL bytes.
//
// Response framing (v2): a sequence of frames, each
//
//	kind byte | u32 payload length | payload
//
// One response is either
//
//	frameError                                 (statement failed)
//	frameAffected                              (no result rows)
//	frameSchema frameChunk* (frameEnd | frameError)
//
// A frameError after chunks reports a mid-stream execution failure;
// the connection stays usable for further requests either way.
const (
	frameSchema   byte = 'S' // u32 ncols, then per column: u16 name len, name, type byte
	frameChunk    byte = 'C' // u32 nrows, then the protocol-specific chunk body
	frameEnd      byte = 'E' // u64 total rows delivered
	frameError    byte = 'X' // error message bytes
	frameAffected byte = 'A' // u64 rows affected
	frameRetry    byte = 'R' // u32 retry-after millis, then reason bytes
)

// maxFrameSize caps frame payloads accepted from the peer. Chunks are
// bounded by vector.DefaultChunkSize rows, so anything near this limit
// is a corrupt or hostile stream.
const maxFrameSize = 1 << 28

func writeRequest(w io.Writer, proto Protocol, sql string) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(sql)))
	hdr[4] = byte(proto)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, sql)
	return err
}

// maxRequestSize caps the SQL text of one request. Between it and
// maxDiscardSize the payload is consumed and discarded so the server
// can reject the query in-band and keep the connection; beyond the
// discard limit the connection is dropped rather than read through.
const (
	maxRequestSize = 1 << 24
	maxDiscardSize = 1 << 26
)

// requestTooLargeError reports an oversized-but-discarded request: the
// stream is positioned at the next request, so the connection remains
// usable.
type requestTooLargeError struct{ n uint32 }

func (e *requestTooLargeError) Error() string {
	return fmt.Sprintf("wire: request too large (%d bytes, limit %d)", e.n, maxRequestSize)
}

func readRequest(r io.Reader) (Protocol, string, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxRequestSize {
		if n > maxDiscardSize {
			return 0, "", fmt.Errorf("wire: request of %d bytes exceeds discard limit", n)
		}
		if _, err := io.CopyN(io.Discard, r, int64(n)); err != nil {
			return 0, "", err
		}
		return Protocol(hdr[4]), "", &requestTooLargeError{n}
	}
	sql := make([]byte, n)
	if _, err := io.ReadFull(r, sql); err != nil {
		return 0, "", err
	}
	return Protocol(hdr[4]), string(sql), nil
}

// ----------------------------------------------------------- frames

func writeFrame(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrameSize {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

func writeErrorFrame(w io.Writer, err error) error {
	return writeFrame(w, frameError, []byte(err.Error()))
}

// writeRetryFrame reports an admission rejection: the query did not
// run, and the client should retry after the carried delay.
func writeRetryFrame(w io.Writer, ov *governor.OverloadedError) error {
	ms := ov.RetryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	buf := make([]byte, 4+len(ov.Reason))
	binary.LittleEndian.PutUint32(buf[:4], uint32(ms))
	copy(buf[4:], ov.Reason)
	return writeFrame(w, frameRetry, buf)
}

// decodeRetryFrame reconstructs the typed retryable error client-side,
// so callers can errors.As for *governor.OverloadedError and back off
// by its RetryAfter.
func decodeRetryFrame(payload []byte) error {
	if len(payload) < 4 {
		return fmt.Errorf("wire: bad retry frame")
	}
	ov := &governor.OverloadedError{
		Reason:     string(payload[4:]),
		RetryAfter: time.Duration(binary.LittleEndian.Uint32(payload)) * time.Millisecond,
	}
	return fmt.Errorf("wire: server rejected query: %w", ov)
}

func writeAffectedFrame(w io.Writer, n int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(n))
	return writeFrame(w, frameAffected, b[:])
}

func writeEndFrame(w io.Writer, rows int64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(rows))
	return writeFrame(w, frameEnd, b[:])
}

// ----------------------------------------------------------- schema

func encodeSchema(buf *bytes.Buffer, schema catalog.Schema) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(schema)))
	buf.Write(b[:])
	for _, col := range schema {
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(col.Name)))
		buf.Write(nl[:])
		buf.WriteString(col.Name)
		buf.WriteByte(byte(col.Type))
	}
}

func decodeSchema(payload []byte) (names []string, types []vector.Type, err error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("wire: truncated schema frame")
	}
	n := binary.LittleEndian.Uint32(payload)
	if n > 1<<16 {
		return nil, nil, fmt.Errorf("wire: implausible column count %d", n)
	}
	off := 4
	names = make([]string, n)
	types = make([]vector.Type, n)
	for i := range names {
		if off+2 > len(payload) {
			return nil, nil, fmt.Errorf("wire: truncated schema frame")
		}
		nl := int(binary.LittleEndian.Uint16(payload[off:]))
		off += 2
		if off+nl+1 > len(payload) {
			return nil, nil, fmt.Errorf("wire: truncated schema frame")
		}
		names[i] = string(payload[off : off+nl])
		off += nl
		types[i] = vector.Type(payload[off])
		off++
	}
	return names, types, nil
}

// ----------------------------------------------------------- chunks

// encodeChunk serializes one chunk body (after the u32 row count) in
// the requested result encoding.
func encodeChunk(proto Protocol, buf *bytes.Buffer, ch *vector.Chunk) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(ch.NumRows()))
	buf.Write(b[:])
	switch proto {
	case TextRows:
		return encodeTextChunk(buf, ch)
	case BinaryRows:
		return encodeBinaryChunk(buf, ch)
	case Columnar:
		return encodeColumnarChunk(buf, ch)
	}
	return fmt.Errorf("wire: unknown protocol %d", proto)
}

// decodeChunk parses a chunk frame payload into column vectors of the
// given types.
func decodeChunk(proto Protocol, payload []byte, types []vector.Type) (*vector.Chunk, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("wire: truncated chunk frame")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	body := payload[4:]
	// The row count is untrusted input: columns preallocate n slots, so
	// bound it by the body size before any allocation. Every encoding
	// spends at least one byte per row (text: the newline; binary: a
	// null flag per column; columnar: ≥1 byte per row per column), so
	// a count exceeding the body length is corrupt.
	if len(types) == 0 {
		if n != 0 {
			return nil, fmt.Errorf("wire: %d rows in zero-column chunk", n)
		}
	} else if n > len(body) {
		return nil, fmt.Errorf("wire: chunk declares %d rows in %d payload bytes", n, len(body))
	}
	switch proto {
	case TextRows:
		return decodeTextChunk(body, n, types)
	case BinaryRows:
		return decodeBinaryChunk(body, n, types)
	case Columnar:
		return decodeColumnarChunk(body, n, types)
	}
	return nil, fmt.Errorf("wire: unknown protocol %d", proto)
}

// ----------------------------------------------------------- text rows

// encodeTextChunk writes the chunk row-at-a-time as tab-separated
// text with escaping — every value passes through a text conversion,
// reproducing the cost profile of the PostgreSQL wire protocol.
func encodeTextChunk(buf *bytes.Buffer, ch *vector.Chunk) error {
	n := ch.NumRows()
	for r := 0; r < n; r++ {
		for c, col := range ch.Cols() {
			if c > 0 {
				buf.WriteByte('\t')
			}
			if err := writeTextField(buf, col, r); err != nil {
				return err
			}
		}
		buf.WriteByte('\n')
	}
	return nil
}

func writeTextField(buf *bytes.Buffer, col *vector.Vector, r int) error {
	if col.IsNull(r) {
		buf.WriteString("\\N")
		return nil
	}
	switch col.Type() {
	case vector.Int32:
		buf.WriteString(strconv.FormatInt(int64(col.Int32s()[r]), 10))
	case vector.Int64:
		buf.WriteString(strconv.FormatInt(col.Int64s()[r], 10))
	case vector.Float64:
		buf.WriteString(strconv.FormatFloat(col.Float64s()[r], 'g', -1, 64))
	case vector.Bool:
		if col.Bools()[r] {
			buf.WriteString("t")
		} else {
			buf.WriteString("f")
		}
	case vector.String:
		buf.WriteString(escapeText(col.Strings()[r]))
	case vector.Blob:
		buf.WriteString(hexEncode(col.Blobs()[r]))
	default:
		return fmt.Errorf("wire: unsupported type %v", col.Type())
	}
	return nil
}

func escapeText(s string) string {
	if !strings.ContainsAny(s, "\t\n\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			b.WriteString("\\t")
		case '\n':
			b.WriteString("\\n")
		case '\\':
			b.WriteString("\\\\")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeText(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

const hexDigits = "0123456789abcdef"

func hexEncode(b []byte) string {
	out := make([]byte, 2*len(b))
	for i, v := range b {
		out[2*i] = hexDigits[v>>4]
		out[2*i+1] = hexDigits[v&0xF]
	}
	return string(out)
}

func hexDecode(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("wire: odd hex length")
	}
	out := make([]byte, len(s)/2)
	for i := range out {
		hi := strings.IndexByte(hexDigits, s[2*i])
		lo := strings.IndexByte(hexDigits, s[2*i+1])
		if hi < 0 || lo < 0 {
			return nil, fmt.Errorf("wire: bad hex byte %q", s[2*i:2*i+2])
		}
		out[i] = byte(hi<<4 | lo)
	}
	return out, nil
}

// decodeTextChunk parses the text-row body back into columns: the
// client-side conversion cost of the pg-like path.
func decodeTextChunk(body []byte, n int, types []vector.Type) (*vector.Chunk, error) {
	cols := newColumns(types, n)
	rows := 0
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			return nil, fmt.Errorf("wire: unterminated text row")
		}
		line := string(body[:nl])
		body = body[nl+1:]
		fields := strings.Split(line, "\t")
		if len(fields) != len(cols) {
			return nil, fmt.Errorf("wire: row has %d fields, expected %d", len(fields), len(cols))
		}
		for i, f := range fields {
			if err := appendTextField(cols[i], types[i], f); err != nil {
				return nil, err
			}
		}
		rows++
	}
	if rows != n {
		return nil, fmt.Errorf("wire: chunk declared %d rows, carried %d", n, rows)
	}
	return vector.NewChunk(cols...), nil
}

func appendTextField(col *vector.Vector, t vector.Type, f string) error {
	if f == "\\N" {
		col.AppendValue(vector.Null())
		return nil
	}
	switch t {
	case vector.Int32:
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return fmt.Errorf("wire: parse int %q: %w", f, err)
		}
		col.AppendValue(vector.NewInt32(int32(v)))
	case vector.Int64:
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return fmt.Errorf("wire: parse bigint %q: %w", f, err)
		}
		col.AppendValue(vector.NewInt64(v))
	case vector.Float64:
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("wire: parse double %q: %w", f, err)
		}
		col.AppendValue(vector.NewFloat64(v))
	case vector.Bool:
		col.AppendValue(vector.NewBool(f == "t"))
	case vector.String:
		col.AppendValue(vector.NewString(unescapeText(f)))
	case vector.Blob:
		b, err := hexDecode(f)
		if err != nil {
			return err
		}
		col.AppendValue(vector.NewBlob(b))
	default:
		return fmt.Errorf("wire: unsupported type %v", t)
	}
	return nil
}

// ----------------------------------------------------------- binary rows

// encodeBinaryChunk writes the chunk row-at-a-time with binary field
// encoding (mysql-like). Fields: null flag byte, then the value
// (fixed width, or u32 length + bytes). Row markers are unnecessary —
// the frame carries the row count.
func encodeBinaryChunk(buf *bytes.Buffer, ch *vector.Chunk) error {
	n := ch.NumRows()
	var b [9]byte
	for r := 0; r < n; r++ {
		for _, col := range ch.Cols() {
			if col.IsNull(r) {
				buf.WriteByte(1)
				continue
			}
			b[0] = 0
			switch col.Type() {
			case vector.Int32:
				binary.LittleEndian.PutUint32(b[1:5], uint32(col.Int32s()[r]))
				buf.Write(b[:5])
			case vector.Int64:
				binary.LittleEndian.PutUint64(b[1:9], uint64(col.Int64s()[r]))
				buf.Write(b[:9])
			case vector.Float64:
				binary.LittleEndian.PutUint64(b[1:9], math.Float64bits(col.Float64s()[r]))
				buf.Write(b[:9])
			case vector.Bool:
				b[1] = 0
				if col.Bools()[r] {
					b[1] = 1
				}
				buf.Write(b[:2])
			case vector.String:
				s := col.Strings()[r]
				binary.LittleEndian.PutUint32(b[1:5], uint32(len(s)))
				buf.Write(b[:5])
				buf.WriteString(s)
			case vector.Blob:
				blob := col.Blobs()[r]
				binary.LittleEndian.PutUint32(b[1:5], uint32(len(blob)))
				buf.Write(b[:5])
				buf.Write(blob)
			default:
				return fmt.Errorf("wire: unsupported type %v", col.Type())
			}
		}
	}
	return nil
}

func decodeBinaryChunk(body []byte, n int, types []vector.Type) (*vector.Chunk, error) {
	cols := newColumns(types, n)
	r := bytes.NewReader(body)
	var buf [8]byte
	for row := 0; row < n; row++ {
		for i, t := range types {
			nullFlag, err := r.ReadByte()
			if err != nil {
				return nil, fmt.Errorf("wire: truncated binary chunk: %w", err)
			}
			if nullFlag == 1 {
				cols[i].AppendValue(vector.Null())
				continue
			}
			switch t {
			case vector.Int32:
				if _, err := io.ReadFull(r, buf[:4]); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewInt32(int32(binary.LittleEndian.Uint32(buf[:4]))))
			case vector.Int64:
				if _, err := io.ReadFull(r, buf[:8]); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewInt64(int64(binary.LittleEndian.Uint64(buf[:8]))))
			case vector.Float64:
				if _, err := io.ReadFull(r, buf[:8]); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))))
			case vector.Bool:
				b, err := r.ReadByte()
				if err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewBool(b == 1))
			case vector.String:
				if _, err := io.ReadFull(r, buf[:4]); err != nil {
					return nil, err
				}
				sb := make([]byte, binary.LittleEndian.Uint32(buf[:4]))
				if _, err := io.ReadFull(r, sb); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewString(string(sb)))
			case vector.Blob:
				if _, err := io.ReadFull(r, buf[:4]); err != nil {
					return nil, err
				}
				bb := make([]byte, binary.LittleEndian.Uint32(buf[:4]))
				if _, err := io.ReadFull(r, bb); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewBlob(bb))
			default:
				return nil, fmt.Errorf("wire: unsupported type %v", t)
			}
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in binary chunk", r.Len())
	}
	return vector.NewChunk(cols...), nil
}

// ----------------------------------------------------------- columnar

// encodeColumnarChunk writes each column as a length-prefixed storage
// payload (the engine's native layout — no per-value conversion).
func encodeColumnarChunk(buf *bytes.Buffer, ch *vector.Chunk) error {
	var l [4]byte
	for _, col := range ch.Cols() {
		payload, err := storage.EncodeColumn(col)
		if err != nil {
			return fmt.Errorf("wire: %w", err)
		}
		binary.LittleEndian.PutUint32(l[:], uint32(len(payload)))
		buf.Write(l[:])
		buf.Write(payload)
	}
	return nil
}

func decodeColumnarChunk(body []byte, n int, types []vector.Type) (*vector.Chunk, error) {
	cols := make([]*vector.Vector, len(types))
	off := 0
	for i, t := range types {
		if off+4 > len(body) {
			return nil, fmt.Errorf("wire: truncated columnar chunk")
		}
		l := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+l > len(body) {
			return nil, fmt.Errorf("wire: truncated columnar chunk")
		}
		col, err := storage.DecodeColumn(t, n, body[off:off+l])
		if err != nil {
			return nil, fmt.Errorf("wire: %w", err)
		}
		off += l
		cols[i] = col
	}
	if off != len(body) {
		return nil, fmt.Errorf("wire: %d trailing bytes in columnar chunk", len(body)-off)
	}
	return vector.NewChunk(cols...), nil
}

func newColumns(types []vector.Type, n int) []*vector.Vector {
	cols := make([]*vector.Vector, len(types))
	for i, t := range types {
		cols[i] = vector.New(t, n)
	}
	return cols
}
