// Package wire implements the client/server protocols used by the
// socket-transfer baselines of Figure 1. A Server exposes a vexdb
// engine over TCP; clients fetch query results with one of three
// encodings whose costs mirror the paper's comparison systems:
//
//   - TextRows: row-at-a-time, text-serialized fields (the
//     PostgreSQL-protocol analog) — every value is printed and
//     re-parsed, the slowest path.
//   - BinaryRows: row-at-a-time, binary fields (the MySQL-protocol
//     analog) — no text conversion but still row-major framing.
//   - Columnar: the engine's native bulk columnar transfer (what a
//     redesigned client protocol can achieve, cf. Raasveldt &
//     Mühleisen, VLDB 2017).
//
// RowIterate provides the SQLite analog: an in-process row-at-a-time
// cursor with per-value boxing but no socket.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// Protocol selects the result encoding.
type Protocol uint8

// Supported protocols.
const (
	// TextRows serializes every value to text, row by row (pg-like).
	TextRows Protocol = iota + 1
	// BinaryRows sends binary values, row by row (mysql-like).
	BinaryRows
	// Columnar bulk-transfers whole columns (vexdb native).
	Columnar
)

func (p Protocol) String() string {
	switch p {
	case TextRows:
		return "text-rows"
	case BinaryRows:
		return "binary-rows"
	case Columnar:
		return "columnar"
	}
	return fmt.Sprintf("protocol(%d)", uint8(p))
}

// Request framing: u32 length, protocol byte, SQL bytes.
// Response framing: status byte (0 ok / 1 error). Errors carry
// u32 length + message. OK responses carry the protocol-specific
// payload.

func writeRequest(w io.Writer, proto Protocol, sql string) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(sql)))
	hdr[4] = byte(proto)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, sql)
	return err
}

func readRequest(r io.Reader) (Protocol, string, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, "", err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > 1<<24 {
		return 0, "", fmt.Errorf("wire: request too large (%d bytes)", n)
	}
	sql := make([]byte, n)
	if _, err := io.ReadFull(r, sql); err != nil {
		return 0, "", err
	}
	return Protocol(hdr[4]), string(sql), nil
}

func writeError(w io.Writer, err error) error {
	msg := err.Error()
	if _, werr := w.Write([]byte{1}); werr != nil {
		return werr
	}
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(msg)))
	if _, werr := w.Write(l[:]); werr != nil {
		return werr
	}
	_, werr := io.WriteString(w, msg)
	return werr
}

func readStatus(r io.Reader) error {
	var status [1]byte
	if _, err := io.ReadFull(r, status[:]); err != nil {
		return err
	}
	if status[0] == 0 {
		return nil
	}
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return err
	}
	msg := make([]byte, binary.LittleEndian.Uint32(l[:]))
	if _, err := io.ReadFull(r, msg); err != nil {
		return err
	}
	return fmt.Errorf("wire: server error: %s", msg)
}

// ----------------------------------------------------------- header

func writeHeader(w io.Writer, tab *vector.Table) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(tab.NumCols()))
	if _, err := w.Write(b[:]); err != nil {
		return err
	}
	for i, name := range tab.Names {
		var nl [2]byte
		binary.LittleEndian.PutUint16(nl[:], uint16(len(name)))
		if _, err := w.Write(nl[:]); err != nil {
			return err
		}
		if _, err := io.WriteString(w, name); err != nil {
			return err
		}
		if _, err := w.Write([]byte{byte(tab.Cols[i].Type())}); err != nil {
			return err
		}
	}
	return nil
}

func readHeader(r io.Reader) (names []string, types []vector.Type, err error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return nil, nil, err
	}
	n := binary.LittleEndian.Uint32(b[:])
	if n > 1<<16 {
		return nil, nil, fmt.Errorf("wire: implausible column count %d", n)
	}
	names = make([]string, n)
	types = make([]vector.Type, n)
	for i := range names {
		var nl [2]byte
		if _, err := io.ReadFull(r, nl[:]); err != nil {
			return nil, nil, err
		}
		nb := make([]byte, binary.LittleEndian.Uint16(nl[:]))
		if _, err := io.ReadFull(r, nb); err != nil {
			return nil, nil, err
		}
		names[i] = string(nb)
		var t [1]byte
		if _, err := io.ReadFull(r, t[:]); err != nil {
			return nil, nil, err
		}
		types[i] = vector.Type(t[0])
	}
	return names, types, nil
}

// ----------------------------------------------------------- text rows

const textEndMarker = "\\."

// writeTextRows streams the result row-at-a-time as tab-separated
// text with escaping — every value passes through a text conversion,
// reproducing the cost profile of the PostgreSQL wire protocol.
func writeTextRows(w *bufio.Writer, tab *vector.Table) error {
	if err := writeHeader(w, tab); err != nil {
		return err
	}
	n := tab.NumRows()
	for r := 0; r < n; r++ {
		for c, col := range tab.Cols {
			if c > 0 {
				if err := w.WriteByte('\t'); err != nil {
					return err
				}
			}
			if err := writeTextField(w, col, r); err != nil {
				return err
			}
		}
		if err := w.WriteByte('\n'); err != nil {
			return err
		}
	}
	if _, err := w.WriteString(textEndMarker + "\n"); err != nil {
		return err
	}
	return nil
}

func writeTextField(w *bufio.Writer, col *vector.Vector, r int) error {
	if col.IsNull(r) {
		_, err := w.WriteString("\\N")
		return err
	}
	switch col.Type() {
	case vector.Int32:
		_, err := w.WriteString(strconv.FormatInt(int64(col.Int32s()[r]), 10))
		return err
	case vector.Int64:
		_, err := w.WriteString(strconv.FormatInt(col.Int64s()[r], 10))
		return err
	case vector.Float64:
		_, err := w.WriteString(strconv.FormatFloat(col.Float64s()[r], 'g', -1, 64))
		return err
	case vector.Bool:
		if col.Bools()[r] {
			_, err := w.WriteString("t")
			return err
		}
		_, err := w.WriteString("f")
		return err
	case vector.String:
		_, err := w.WriteString(escapeText(col.Strings()[r]))
		return err
	case vector.Blob:
		_, err := w.WriteString(hexEncode(col.Blobs()[r]))
		return err
	}
	return fmt.Errorf("wire: unsupported type %v", col.Type())
}

func escapeText(s string) string {
	if !strings.ContainsAny(s, "\t\n\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\t':
			b.WriteString("\\t")
		case '\n':
			b.WriteString("\\n")
		case '\\':
			b.WriteString("\\\\")
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

func unescapeText(s string) string {
	if !strings.Contains(s, "\\") {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case 't':
				b.WriteByte('\t')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

const hexDigits = "0123456789abcdef"

func hexEncode(b []byte) string {
	out := make([]byte, 2*len(b))
	for i, v := range b {
		out[2*i] = hexDigits[v>>4]
		out[2*i+1] = hexDigits[v&0xF]
	}
	return string(out)
}

func hexDecode(s string) ([]byte, error) {
	if len(s)%2 != 0 {
		return nil, fmt.Errorf("wire: odd hex length")
	}
	out := make([]byte, len(s)/2)
	for i := range out {
		hi := strings.IndexByte(hexDigits, s[2*i])
		lo := strings.IndexByte(hexDigits, s[2*i+1])
		if hi < 0 || lo < 0 {
			return nil, fmt.Errorf("wire: bad hex byte %q", s[2*i:2*i+2])
		}
		out[i] = byte(hi<<4 | lo)
	}
	return out, nil
}

// readTextRows parses the text-row stream back into columns: the
// client-side conversion cost of the pg-like path.
func readTextRows(r *bufio.Reader) (*vector.Table, error) {
	names, types, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	cols := make([]*vector.Vector, len(types))
	for i, t := range types {
		cols[i] = vector.New(t, 1024)
	}
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("wire: read row: %w", err)
		}
		line = strings.TrimSuffix(line, "\n")
		if line == textEndMarker {
			break
		}
		fields := strings.Split(line, "\t")
		if len(fields) != len(cols) {
			return nil, fmt.Errorf("wire: row has %d fields, expected %d", len(fields), len(cols))
		}
		for i, f := range fields {
			if err := appendTextField(cols[i], types[i], f); err != nil {
				return nil, err
			}
		}
	}
	return vector.NewTable(names, cols)
}

func appendTextField(col *vector.Vector, t vector.Type, f string) error {
	if f == "\\N" {
		col.AppendValue(vector.Null())
		return nil
	}
	switch t {
	case vector.Int32:
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return fmt.Errorf("wire: parse int %q: %w", f, err)
		}
		col.AppendValue(vector.NewInt32(int32(v)))
	case vector.Int64:
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return fmt.Errorf("wire: parse bigint %q: %w", f, err)
		}
		col.AppendValue(vector.NewInt64(v))
	case vector.Float64:
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return fmt.Errorf("wire: parse double %q: %w", f, err)
		}
		col.AppendValue(vector.NewFloat64(v))
	case vector.Bool:
		col.AppendValue(vector.NewBool(f == "t"))
	case vector.String:
		col.AppendValue(vector.NewString(unescapeText(f)))
	case vector.Blob:
		b, err := hexDecode(f)
		if err != nil {
			return err
		}
		col.AppendValue(vector.NewBlob(b))
	default:
		return fmt.Errorf("wire: unsupported type %v", t)
	}
	return nil
}

// ----------------------------------------------------------- binary rows

// writeBinaryRows streams the result row-at-a-time with binary field
// encoding (mysql-like): marker byte 1 per row, 0 terminates. Fields:
// null flag byte, then the value (fixed width, or u32 length + bytes).
func writeBinaryRows(w *bufio.Writer, tab *vector.Table) error {
	if err := writeHeader(w, tab); err != nil {
		return err
	}
	n := tab.NumRows()
	var buf [9]byte
	for r := 0; r < n; r++ {
		if err := w.WriteByte(1); err != nil {
			return err
		}
		for _, col := range tab.Cols {
			if col.IsNull(r) {
				if err := w.WriteByte(1); err != nil {
					return err
				}
				continue
			}
			buf[0] = 0
			switch col.Type() {
			case vector.Int32:
				binary.LittleEndian.PutUint32(buf[1:5], uint32(col.Int32s()[r]))
				if _, err := w.Write(buf[:5]); err != nil {
					return err
				}
			case vector.Int64:
				binary.LittleEndian.PutUint64(buf[1:9], uint64(col.Int64s()[r]))
				if _, err := w.Write(buf[:9]); err != nil {
					return err
				}
			case vector.Float64:
				binary.LittleEndian.PutUint64(buf[1:9], math.Float64bits(col.Float64s()[r]))
				if _, err := w.Write(buf[:9]); err != nil {
					return err
				}
			case vector.Bool:
				buf[1] = 0
				if col.Bools()[r] {
					buf[1] = 1
				}
				if _, err := w.Write(buf[:2]); err != nil {
					return err
				}
			case vector.String:
				s := col.Strings()[r]
				binary.LittleEndian.PutUint32(buf[1:5], uint32(len(s)))
				if _, err := w.Write(buf[:5]); err != nil {
					return err
				}
				if _, err := w.WriteString(s); err != nil {
					return err
				}
			case vector.Blob:
				b := col.Blobs()[r]
				binary.LittleEndian.PutUint32(buf[1:5], uint32(len(b)))
				if _, err := w.Write(buf[:5]); err != nil {
					return err
				}
				if _, err := w.Write(b); err != nil {
					return err
				}
			default:
				return fmt.Errorf("wire: unsupported type %v", col.Type())
			}
		}
	}
	return w.WriteByte(0)
}

func readBinaryRows(r *bufio.Reader) (*vector.Table, error) {
	names, types, err := readHeader(r)
	if err != nil {
		return nil, err
	}
	cols := make([]*vector.Vector, len(types))
	for i, t := range types {
		cols[i] = vector.New(t, 1024)
	}
	var buf [8]byte
	for {
		marker, err := r.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("wire: read row marker: %w", err)
		}
		if marker == 0 {
			break
		}
		for i, t := range types {
			nullFlag, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			if nullFlag == 1 {
				cols[i].AppendValue(vector.Null())
				continue
			}
			switch t {
			case vector.Int32:
				if _, err := io.ReadFull(r, buf[:4]); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewInt32(int32(binary.LittleEndian.Uint32(buf[:4]))))
			case vector.Int64:
				if _, err := io.ReadFull(r, buf[:8]); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewInt64(int64(binary.LittleEndian.Uint64(buf[:8]))))
			case vector.Float64:
				if _, err := io.ReadFull(r, buf[:8]); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewFloat64(math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))))
			case vector.Bool:
				b, err := r.ReadByte()
				if err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewBool(b == 1))
			case vector.String:
				if _, err := io.ReadFull(r, buf[:4]); err != nil {
					return nil, err
				}
				sb := make([]byte, binary.LittleEndian.Uint32(buf[:4]))
				if _, err := io.ReadFull(r, sb); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewString(string(sb)))
			case vector.Blob:
				if _, err := io.ReadFull(r, buf[:4]); err != nil {
					return nil, err
				}
				bb := make([]byte, binary.LittleEndian.Uint32(buf[:4]))
				if _, err := io.ReadFull(r, bb); err != nil {
					return nil, err
				}
				cols[i].AppendValue(vector.NewBlob(bb))
			default:
				return nil, fmt.Errorf("wire: unsupported type %v", t)
			}
		}
	}
	return vector.NewTable(names, cols)
}

// ----------------------------------------------------------- columnar

func writeColumnar(w *bufio.Writer, tab *vector.Table) error {
	store := storage.NewColumnStore(columnTypes(tab))
	if tab.NumRows() > 0 {
		if err := store.AppendChunk(tab.Chunk()); err != nil {
			return err
		}
	}
	return storage.WriteTable(w, tab.Names, store)
}

func readColumnar(r *bufio.Reader) (*vector.Table, error) {
	names, store, err := storage.ReadTable(r)
	if err != nil {
		return nil, err
	}
	cols := make([]*vector.Vector, store.NumColumns())
	for i := range cols {
		cols[i] = store.Column(i)
	}
	return vector.NewTable(names, cols)
}

func columnTypes(tab *vector.Table) []vector.Type {
	out := make([]vector.Type, tab.NumCols())
	for i, c := range tab.Cols {
		out[i] = c.Type()
	}
	return out
}
