package wire

import (
	"strings"
	"testing"
	"time"

	"vexdb/internal/catalog"
	"vexdb/internal/engine"
	"vexdb/internal/vector"
)

// benchServer loads a wide table through the catalog and serves it.
func benchServer(b *testing.B, rows int) (*engine.DB, string, func()) {
	b.Helper()
	db := engine.New()
	db.Parallelism = 4
	schema := catalog.Schema{
		{Name: "id", Type: vector.Int64},
		{Name: "score", Type: vector.Float64},
		{Name: "pad", Type: vector.String},
	}
	ct, err := db.Catalog().CreateTable("big", schema)
	if err != nil {
		b.Fatal(err)
	}
	pad := strings.Repeat("p", 32)
	for lo := 0; lo < rows; lo += vector.DefaultChunkSize {
		hi := lo + vector.DefaultChunkSize
		if hi > rows {
			hi = rows
		}
		ids := make([]int64, hi-lo)
		scores := make([]float64, hi-lo)
		pads := make([]string, hi-lo)
		for i := range ids {
			ids[i] = int64(lo + i)
			scores[i] = float64(lo+i) * 0.25
			pads[i] = pad
		}
		ch := vector.NewChunk(vector.FromInt64s(ids), vector.FromFloat64s(scores), vector.FromStrings(pads))
		if err := ct.Data.AppendChunk(ch); err != nil {
			b.Fatal(err)
		}
	}
	srv := NewServer(db)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	return db, addr, srv.Close
}

// BenchmarkTimeToFirstChunk measures the latency from sending a query
// over a large table to decoding its first chunk — with chunk-framed
// streaming this is independent of the total result size. The full
// stream is drained each iteration so the connection can be reused.
func BenchmarkTimeToFirstChunk(b *testing.B) {
	const rows = 100_000
	_, addr, stop := benchServer(b, rows)
	defer stop()
	for _, proto := range []Protocol{Columnar, BinaryRows, TextRows} {
		b.Run(proto.String(), func(b *testing.B) {
			c, err := Dial(addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			var firstChunk time.Duration
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				st, err := c.Stream(proto, "SELECT id, score, pad FROM big")
				if err != nil {
					b.Fatal(err)
				}
				ch, err := st.Next()
				if err != nil || ch == nil {
					b.Fatalf("first chunk: %v %v", ch, err)
				}
				firstChunk += time.Since(start)
				got := ch.NumRows()
				for {
					ch, err := st.Next()
					if err != nil {
						b.Fatal(err)
					}
					if ch == nil {
						break
					}
					got += ch.NumRows()
				}
				if got != rows {
					b.Fatalf("%d rows, want %d", got, rows)
				}
			}
			b.ReportMetric(float64(firstChunk.Nanoseconds())/float64(b.N), "ns-to-first-chunk")
		})
	}
}

// BenchmarkStreamLargeResult drains a ~7MB result chunk by chunk
// without client-side materialization: allocs/op tracks the per-chunk
// codec cost, and server-side buffering stays O(chunk × workers)
// however large the table is.
func BenchmarkStreamLargeResult(b *testing.B) {
	const rows = 200_000
	_, addr, stop := benchServer(b, rows)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := c.Stream(Columnar, "SELECT id, score, pad FROM big")
		if err != nil {
			b.Fatal(err)
		}
		got := 0
		for {
			ch, err := st.Next()
			if err != nil {
				b.Fatal(err)
			}
			if ch == nil {
				break
			}
			got += ch.NumRows()
		}
		if got != rows {
			b.Fatalf("%d rows, want %d", got, rows)
		}
	}
}

// BenchmarkLimitOverLargeTable shows early termination through the
// wire path: LIMIT 10 over 200k rows must not scan or ship the table.
func BenchmarkLimitOverLargeTable(b *testing.B) {
	_, addr, stop := benchServer(b, 200_000)
	defer stop()
	c, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := c.Query(Columnar, "SELECT id, pad FROM big LIMIT 10")
		if err != nil {
			b.Fatal(err)
		}
		if tab.NumRows() != 10 {
			b.Fatalf("%d rows", tab.NumRows())
		}
	}
}
