package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"vexdb/internal/engine"
	"vexdb/internal/governor"
	"vexdb/internal/vector"
)

// ErrQueryCancelled reports a query abandoned by a client-initiated
// cancel request. The server uses it as the stream's cancellation
// cause, so its message travels the error frame verbatim and the
// client reconstructs the sentinel for errors.Is.
var ErrQueryCancelled = errors.New("wire: query cancelled by client")

// Server exposes an engine over TCP. Each connection handles a
// sequence of requests; one goroutine per connection plus a reader
// goroutine that keeps consuming control requests (cancel) while a
// result streams. Results are streamed chunk by chunk straight from
// the executor, so serving a huge result holds O(chunk size × workers)
// memory, and a client that disconnects mid-result (or a server
// Close) cancels the query instead of letting scan workers run to
// completion. When the database has a governor, each connection gets
// one governor session, so per-session limits are per-connection.
type Server struct {
	db *engine.DB
	ln net.Listener

	mu       sync.Mutex
	closed   bool
	draining bool
	conns    map[net.Conn]*connState
	streams  map[*engine.ResultSet]struct{}
	wg       sync.WaitGroup
}

// connState is one connection's serving state, shared between its
// serve loop and its reader goroutine.
type connState struct {
	sess    *governor.Session
	serving atomic.Bool                      // a request is being served right now
	cur     atomic.Pointer[engine.ResultSet] // in-flight result, cancel target
}

// NewServer wraps a database for network serving.
func NewServer(db *engine.DB) *Server {
	return &Server{
		db:      db,
		conns:   make(map[net.Conn]*connState),
		streams: make(map[*engine.ResultSet]struct{}),
	}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed || s.draining {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		st := &connState{}
		if s.db.Gov != nil {
			st.sess = s.db.Gov.NewSession()
		}
		s.conns[conn] = st
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn, st)
			if st.sess != nil {
				st.sess.Close()
			}
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// connRequest is one item handed from a connection's reader goroutine
// to its serve loop.
type connRequest struct {
	proto    Protocol
	query    string
	err      error // read failure; tooLarge requests are recoverable
	tooLarge bool
}

func (s *Server) serveConn(conn net.Conn, st *connState) {
	defer conn.Close()
	// A dedicated reader keeps consuming requests while the serve loop
	// streams a result, so a cancel control request takes effect
	// mid-stream. Regular requests are handed over one at a time;
	// connDone (closed when the serve loop exits) keeps the reader from
	// blocking forever on the handoff if the loop exits early.
	connDone := make(chan struct{})
	defer close(connDone)
	reqC := make(chan connRequest, 1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		br := bufio.NewReaderSize(conn, 1<<16)
		for {
			proto, query, err := readRequest(br)
			if err != nil {
				var tl *requestTooLargeError
				recoverable := errors.As(err, &tl)
				select {
				case reqC <- connRequest{err: err, tooLarge: recoverable}:
				case <-connDone:
					return
				}
				if recoverable {
					continue
				}
				return // client hung up or sent garbage
			}
			if proto == protoCancel {
				if rs := st.cur.Load(); rs != nil {
					rs.CancelCause(ErrQueryCancelled)
				}
				continue
			}
			select {
			case reqC <- connRequest{proto: proto, query: query}:
			case <-connDone:
				return
			}
		}
	}()

	bw := bufio.NewWriterSize(conn, 1<<18)
	var scratch bytes.Buffer
	for {
		req := <-reqC
		if req.err != nil {
			if !req.tooLarge {
				return
			}
			// Oversized request: the reader discarded the payload, so
			// reject in-band and keep serving.
			if writeErrorFrame(bw, req.err) != nil || bw.Flush() != nil {
				return
			}
			continue
		}
		st.serving.Store(true)
		err := s.serveQuery(bw, &scratch, st, req.proto, req.query)
		st.serving.Store(false)
		if err != nil {
			return // connection-level write failure
		}
		if bw.Flush() != nil {
			return
		}
		if s.isDraining() {
			return // finish the current request, then bow out
		}
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// serveQuery executes one request and streams its response frames.
// Statement failures become error frames and return nil (the
// connection stays usable); a non-nil return means the connection
// itself is broken.
func (s *Server) serveQuery(bw *bufio.Writer, scratch *bytes.Buffer, st *connState, proto Protocol, query string) error {
	switch proto {
	case TextRows, BinaryRows, Columnar:
	default:
		return writeErrorFrame(bw, fmt.Errorf("wire: unknown protocol %d", proto))
	}
	rs, err := s.db.QuerySession(st.sess, query)
	if err != nil {
		var ov *governor.OverloadedError
		if errors.As(err, &ov) {
			// Admission rejection: typed retryable frame, nothing ran.
			return writeRetryFrame(bw, ov)
		}
		return writeErrorFrame(bw, err)
	}
	// Register for cancellation on Server.Close and expose to the
	// reader goroutine for client-initiated cancel; always stop the
	// executor's workers before returning — including on write errors,
	// which is how a mid-result client disconnect cancels the query.
	s.trackStream(rs)
	st.cur.Store(rs)
	defer func() {
		st.cur.Store(nil)
		s.untrackStream(rs)
		rs.Close()
	}()

	if !rs.HasRows() {
		return writeAffectedFrame(bw, rs.RowsAffected())
	}

	scratch.Reset()
	encodeSchema(scratch, rs.Schema())
	if err := writeFrame(bw, frameSchema, scratch.Bytes()); err != nil {
		return err
	}
	var rows int64
	for {
		ch, err := rs.Next()
		if err != nil {
			// Mid-stream failure: report in-band and keep the
			// connection; the client sees the chunks that preceded it.
			return writeErrorFrame(bw, err)
		}
		if ch == nil {
			return writeEndFrame(bw, rows)
		}
		scratch.Reset()
		if err := encodeChunk(proto, scratch, ch); err != nil {
			return writeErrorFrame(bw, err)
		}
		rows += int64(ch.NumRows())
		if err := writeFrame(bw, frameChunk, scratch.Bytes()); err != nil {
			return err
		}
		// Flush per chunk so time-to-first-row does not wait on the
		// rest of the result.
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

func (s *Server) trackStream(rs *engine.ResultSet) {
	s.mu.Lock()
	if s.closed {
		// Server.Close already swept the registry; cancel here so a
		// query that started during shutdown cannot stall wg.Wait for
		// its full runtime.
		s.mu.Unlock()
		rs.Cancel()
		return
	}
	s.streams[rs] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrackStream(rs *engine.ResultSet) {
	s.mu.Lock()
	delete(s.streams, rs)
	s.mu.Unlock()
}

// Close stops accepting, cancels in-flight queries, and closes live
// connections, then waits for the per-connection goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for rs := range s.streams {
		rs.Cancel()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
}

// Shutdown drains the server gracefully: stop accepting connections,
// reject newly arriving queries with the typed retryable overloaded
// error, let in-flight queries stream to completion, and fall back to
// a hard Close for whatever has not finished within drainTimeout.
// Idle connections are closed immediately; serving connections close
// themselves after their current request. Blocks until the server is
// fully stopped.
func (s *Server) Shutdown(drainTimeout time.Duration) {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		return
	}
	s.draining = true
	idle := make([]net.Conn, 0, len(s.conns))
	for c, st := range s.conns {
		// A connection can start serving between this check and the
		// close; its client then sees a connection error instead of a
		// drained result — the same signal a hard shutdown gives.
		if !st.serving.Load() {
			idle = append(idle, c)
		}
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	if s.db.Gov != nil {
		s.db.Gov.SetDraining()
	}
	for _, c := range idle {
		c.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	t := time.NewTimer(drainTimeout)
	defer t.Stop()
	select {
	case <-done:
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
	case <-t.C:
		s.Close() // drain window expired: hard-cancel the stragglers
	}
}

// Client is a connection to a wire server. Not safe for concurrent
// use — open one client per goroutine — with one exception: Cancel may
// be called from any goroutine while another streams a result.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	// wmu serializes request writes: Stream's query requests against
	// Cancel's control requests from other goroutines.
	wmu sync.Mutex
	bw  *bufio.Writer
	// stream is the in-flight result, which owns the connection until
	// drained or closed.
	stream *ResultStream
	// fatal latches a framing-level failure (read error, undecodable
	// frame): the stream position is lost, so further requests would
	// misparse leftover frames and are refused.
	fatal error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<18),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Cancel asks the server to abandon the connection's in-flight query
// without dropping the connection. Safe to call from any goroutine; a
// best-effort race with query completion is fine — the streaming
// goroutine then sees either ErrQueryCancelled or the completed
// result. The cancelled stream must still be drained (Next to the
// error, or Close) before the next request.
func (c *Client) Cancel() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := writeRequest(c.bw, protoCancel, ""); err != nil {
		return err
	}
	return c.bw.Flush()
}

// serverError maps an error-frame payload back to a client-side
// error, reconstructing the ErrQueryCancelled sentinel.
func serverError(payload []byte) error {
	if string(payload) == ErrQueryCancelled.Error() {
		return ErrQueryCancelled
	}
	return fmt.Errorf("wire: server error: %s", payload)
}

// ResultStream iterates a streamed query result chunk by chunk. The
// stream owns the connection until it ends (Next returning nil), the
// server reports an error, or Close drains it.
type ResultStream struct {
	c     *Client
	proto Protocol
	names []string
	types []vector.Type

	hasRows  bool
	affected int64
	rows     int64
	done     bool
	err      error
}

// Stream sends a query and returns the streaming result. Statement
// errors raised before the first row surface here; mid-stream errors
// surface from Next.
func (c *Client) Stream(proto Protocol, sql string) (*ResultStream, error) {
	if c.fatal != nil {
		return nil, fmt.Errorf("wire: connection desynchronized: %w", c.fatal)
	}
	if c.stream != nil && !c.stream.done {
		return nil, errors.New("wire: previous result stream still open")
	}
	c.wmu.Lock()
	err := writeRequest(c.bw, proto, sql)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		return nil, err
	}
	kind, payload, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	st := &ResultStream{c: c, proto: proto}
	switch kind {
	case frameError:
		return nil, serverError(payload)
	case frameRetry:
		// Admission rejection: the query never ran and the connection
		// is ready for the next request.
		return nil, decodeRetryFrame(payload)
	case frameAffected:
		if len(payload) != 8 {
			return nil, fmt.Errorf("wire: bad affected frame")
		}
		st.affected = int64(binary.LittleEndian.Uint64(payload))
		st.done = true
	case frameSchema:
		names, types, err := decodeSchema(payload)
		if err != nil {
			return nil, err
		}
		st.names, st.types, st.hasRows = names, types, true
	default:
		return nil, fmt.Errorf("wire: unexpected frame %q", kind)
	}
	c.stream = st
	return st, nil
}

// Columns returns the result's column names (nil for row-less
// statements).
func (s *ResultStream) Columns() []string { return s.names }

// Types returns the result's column types.
func (s *ResultStream) Types() []vector.Type { return s.types }

// HasRows reports whether the statement produced a relation.
func (s *ResultStream) HasRows() bool { return s.hasRows }

// RowsAffected reports the write count of a row-less statement.
func (s *ResultStream) RowsAffected() int64 { return s.affected }

// Next returns the next decoded chunk, or (nil, nil) at end of
// stream. A server-side mid-stream failure is returned as an error;
// the connection stays usable for further requests afterwards.
func (s *ResultStream) Next() (*vector.Chunk, error) {
	if s.done {
		return nil, s.err
	}
	kind, payload, err := readFrame(s.c.br)
	if err != nil {
		return nil, s.fail(err)
	}
	switch kind {
	case frameChunk:
		ch, err := decodeChunk(s.proto, payload, s.types)
		if err != nil {
			// Undecodable frame: the stream position is lost, so the
			// connection cannot be reused (Stream refuses from now on).
			return nil, s.fail(err)
		}
		s.rows += int64(ch.NumRows())
		return ch, nil
	case frameEnd:
		if len(payload) != 8 {
			return nil, s.fail(fmt.Errorf("wire: bad end frame"))
		}
		if total := int64(binary.LittleEndian.Uint64(payload)); total != s.rows {
			return nil, s.fail(fmt.Errorf("wire: stream carried %d rows, server sent %d", s.rows, total))
		}
		s.done = true
		return nil, nil
	case frameError:
		// Clean in-band termination (including a cancelled query): the
		// connection stays usable.
		s.done = true
		s.err = serverError(payload)
		return nil, s.err
	default:
		return nil, s.fail(fmt.Errorf("wire: unexpected frame %q", kind))
	}
}

// fail terminates the stream on a framing-level error and latches the
// connection as desynchronized.
func (s *ResultStream) fail(err error) error {
	s.done = true
	s.err = err
	s.c.fatal = err
	return err
}

// Close drains any remaining frames so the connection can serve the
// next request. The abandoned chunks are discarded undecoded, but a
// mid-stream server error is still recorded (surfaced by Exec); to
// abort a very large result entirely, close the Client instead (the
// server cancels the query when its writes fail).
func (s *ResultStream) Close() error {
	for !s.done {
		kind, payload, err := readFrame(s.c.br)
		if err != nil {
			s.fail(err)
			break
		}
		switch kind {
		case frameEnd:
			s.done = true
		case frameError:
			s.done = true
			s.err = serverError(payload)
		}
	}
	return nil
}

// Query executes sql and materializes the full result client-side: the
// thin wrapper over Stream for callers that want the whole table.
func (c *Client) Query(proto Protocol, sql string) (*vector.Table, error) {
	st, err := c.Stream(proto, sql)
	if err != nil {
		return nil, err
	}
	if !st.HasRows() {
		// Preserve the v1 contract: every statement yields a relation,
		// possibly empty.
		return &vector.Table{}, nil
	}
	cols := newColumns(st.types, 0)
	out, err := vector.NewTable(st.names, cols)
	if err != nil {
		return nil, err
	}
	for {
		ch, err := st.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			return out, nil
		}
		if err := out.AppendChunk(ch); err != nil {
			return nil, err
		}
	}
}

// Exec executes a statement, discarding any result rows, and reports
// the rows written by INSERT/DELETE/UPDATE.
func (c *Client) Exec(sql string) (int64, error) {
	st, err := c.Stream(Columnar, sql)
	if err != nil {
		return 0, err
	}
	if err := st.Close(); err != nil {
		return 0, err
	}
	if st.err != nil {
		return 0, st.err
	}
	return st.affected, nil
}

// RowIterate is the SQLite analog: execute a query in-process and pull
// the result through a row-at-a-time cursor with per-value boxing (no
// socket, but all the per-row API overhead). It rides the same
// streaming ResultSet as the wire path — the result is never
// materialized twice.
func RowIterate(db *engine.DB, sql string) (*vector.Table, error) {
	rs, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	if !rs.HasRows() {
		return nil, errors.New("wire: statement returned no rows")
	}
	schema := rs.Schema()
	cols := make([]*vector.Vector, len(schema))
	for i, c := range schema {
		cols[i] = vector.New(c.Type, 0)
	}
	for {
		ch, err := rs.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			break
		}
		n := ch.NumRows()
		for r := 0; r < n; r++ {
			// One boxed Value per field per row, as a row-cursor API
			// (sqlite3_column_*) would force.
			for i, c := range ch.Cols() {
				cols[i].AppendValue(c.Get(r))
			}
		}
	}
	return vector.NewTable(schema.Names(), cols)
}
