package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"vexdb/internal/engine"
	"vexdb/internal/vector"
)

// Server exposes an engine over TCP. Each connection handles a
// sequence of requests; one goroutine per connection. Results are
// streamed chunk by chunk straight from the executor, so serving a
// huge result holds O(chunk size × workers) memory, and a client that
// disconnects mid-result (or a server Close) cancels the query instead
// of letting scan workers run to completion.
type Server struct {
	db *engine.DB
	ln net.Listener

	mu      sync.Mutex
	closed  bool
	conns   map[net.Conn]struct{}
	streams map[*engine.ResultSet]struct{}
	wg      sync.WaitGroup
}

// NewServer wraps a database for network serving.
func NewServer(db *engine.DB) *Server {
	return &Server{
		db:      db,
		conns:   make(map[net.Conn]struct{}),
		streams: make(map[*engine.ResultSet]struct{}),
	}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<18)
	var scratch bytes.Buffer
	for {
		proto, query, err := readRequest(br)
		if err != nil {
			return // client hung up or sent garbage
		}
		if err := s.serveQuery(bw, &scratch, proto, query); err != nil {
			return // connection-level write failure
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// serveQuery executes one request and streams its response frames.
// Statement failures become error frames and return nil (the
// connection stays usable); a non-nil return means the connection
// itself is broken.
func (s *Server) serveQuery(bw *bufio.Writer, scratch *bytes.Buffer, proto Protocol, query string) error {
	switch proto {
	case TextRows, BinaryRows, Columnar:
	default:
		return writeErrorFrame(bw, fmt.Errorf("wire: unknown protocol %d", proto))
	}
	rs, err := s.db.Query(query)
	if err != nil {
		return writeErrorFrame(bw, err)
	}
	// Register for cancellation on Server.Close, and always stop the
	// executor's workers before returning — including on write errors,
	// which is how a mid-result client disconnect cancels the query.
	s.trackStream(rs)
	defer s.untrackStream(rs)
	defer rs.Close()

	if !rs.HasRows() {
		return writeAffectedFrame(bw, rs.RowsAffected())
	}

	scratch.Reset()
	encodeSchema(scratch, rs.Schema())
	if err := writeFrame(bw, frameSchema, scratch.Bytes()); err != nil {
		return err
	}
	var rows int64
	for {
		ch, err := rs.Next()
		if err != nil {
			// Mid-stream failure: report in-band and keep the
			// connection; the client sees the chunks that preceded it.
			return writeErrorFrame(bw, err)
		}
		if ch == nil {
			return writeEndFrame(bw, rows)
		}
		scratch.Reset()
		if err := encodeChunk(proto, scratch, ch); err != nil {
			return writeErrorFrame(bw, err)
		}
		rows += int64(ch.NumRows())
		if err := writeFrame(bw, frameChunk, scratch.Bytes()); err != nil {
			return err
		}
		// Flush per chunk so time-to-first-row does not wait on the
		// rest of the result.
		if err := bw.Flush(); err != nil {
			return err
		}
	}
}

func (s *Server) trackStream(rs *engine.ResultSet) {
	s.mu.Lock()
	if s.closed {
		// Server.Close already swept the registry; cancel here so a
		// query that started during shutdown cannot stall wg.Wait for
		// its full runtime.
		s.mu.Unlock()
		rs.Cancel()
		return
	}
	s.streams[rs] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrackStream(rs *engine.ResultSet) {
	s.mu.Lock()
	delete(s.streams, rs)
	s.mu.Unlock()
}

// Close stops accepting, cancels in-flight queries, and closes live
// connections, then waits for the per-connection goroutines to drain.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for rs := range s.streams {
		rs.Cancel()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
}

// Client is a connection to a wire server. Not safe for concurrent
// use; open one client per goroutine.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	// stream is the in-flight result, which owns the connection until
	// drained or closed.
	stream *ResultStream
	// fatal latches a framing-level failure (read error, undecodable
	// frame): the stream position is lost, so further requests would
	// misparse leftover frames and are refused.
	fatal error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<18),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// ResultStream iterates a streamed query result chunk by chunk. The
// stream owns the connection until it ends (Next returning nil), the
// server reports an error, or Close drains it.
type ResultStream struct {
	c     *Client
	proto Protocol
	names []string
	types []vector.Type

	hasRows  bool
	affected int64
	rows     int64
	done     bool
	err      error
}

// Stream sends a query and returns the streaming result. Statement
// errors raised before the first row surface here; mid-stream errors
// surface from Next.
func (c *Client) Stream(proto Protocol, sql string) (*ResultStream, error) {
	if c.fatal != nil {
		return nil, fmt.Errorf("wire: connection desynchronized: %w", c.fatal)
	}
	if c.stream != nil && !c.stream.done {
		return nil, errors.New("wire: previous result stream still open")
	}
	if err := writeRequest(c.bw, proto, sql); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	kind, payload, err := readFrame(c.br)
	if err != nil {
		return nil, err
	}
	st := &ResultStream{c: c, proto: proto}
	switch kind {
	case frameError:
		return nil, fmt.Errorf("wire: server error: %s", payload)
	case frameAffected:
		if len(payload) != 8 {
			return nil, fmt.Errorf("wire: bad affected frame")
		}
		st.affected = int64(binary.LittleEndian.Uint64(payload))
		st.done = true
	case frameSchema:
		names, types, err := decodeSchema(payload)
		if err != nil {
			return nil, err
		}
		st.names, st.types, st.hasRows = names, types, true
	default:
		return nil, fmt.Errorf("wire: unexpected frame %q", kind)
	}
	c.stream = st
	return st, nil
}

// Columns returns the result's column names (nil for row-less
// statements).
func (s *ResultStream) Columns() []string { return s.names }

// Types returns the result's column types.
func (s *ResultStream) Types() []vector.Type { return s.types }

// HasRows reports whether the statement produced a relation.
func (s *ResultStream) HasRows() bool { return s.hasRows }

// RowsAffected reports the write count of a row-less statement.
func (s *ResultStream) RowsAffected() int64 { return s.affected }

// Next returns the next decoded chunk, or (nil, nil) at end of
// stream. A server-side mid-stream failure is returned as an error;
// the connection stays usable for further requests afterwards.
func (s *ResultStream) Next() (*vector.Chunk, error) {
	if s.done {
		return nil, s.err
	}
	kind, payload, err := readFrame(s.c.br)
	if err != nil {
		return nil, s.fail(err)
	}
	switch kind {
	case frameChunk:
		ch, err := decodeChunk(s.proto, payload, s.types)
		if err != nil {
			// Undecodable frame: the stream position is lost, so the
			// connection cannot be reused (Stream refuses from now on).
			return nil, s.fail(err)
		}
		s.rows += int64(ch.NumRows())
		return ch, nil
	case frameEnd:
		if len(payload) != 8 {
			return nil, s.fail(fmt.Errorf("wire: bad end frame"))
		}
		if total := int64(binary.LittleEndian.Uint64(payload)); total != s.rows {
			return nil, s.fail(fmt.Errorf("wire: stream carried %d rows, server sent %d", s.rows, total))
		}
		s.done = true
		return nil, nil
	case frameError:
		// Clean in-band termination: the connection stays usable.
		s.done = true
		s.err = fmt.Errorf("wire: server error: %s", payload)
		return nil, s.err
	default:
		return nil, s.fail(fmt.Errorf("wire: unexpected frame %q", kind))
	}
}

// fail terminates the stream on a framing-level error and latches the
// connection as desynchronized.
func (s *ResultStream) fail(err error) error {
	s.done = true
	s.err = err
	s.c.fatal = err
	return err
}

// Close drains any remaining frames so the connection can serve the
// next request. The abandoned chunks are discarded undecoded, but a
// mid-stream server error is still recorded (surfaced by Exec); to
// abort a very large result entirely, close the Client instead (the
// server cancels the query when its writes fail).
func (s *ResultStream) Close() error {
	for !s.done {
		kind, payload, err := readFrame(s.c.br)
		if err != nil {
			s.fail(err)
			break
		}
		switch kind {
		case frameEnd:
			s.done = true
		case frameError:
			s.done = true
			s.err = fmt.Errorf("wire: server error: %s", payload)
		}
	}
	return nil
}

// Query executes sql and materializes the full result client-side: the
// thin wrapper over Stream for callers that want the whole table.
func (c *Client) Query(proto Protocol, sql string) (*vector.Table, error) {
	st, err := c.Stream(proto, sql)
	if err != nil {
		return nil, err
	}
	if !st.HasRows() {
		// Preserve the v1 contract: every statement yields a relation,
		// possibly empty.
		return &vector.Table{}, nil
	}
	cols := newColumns(st.types, 0)
	out, err := vector.NewTable(st.names, cols)
	if err != nil {
		return nil, err
	}
	for {
		ch, err := st.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			return out, nil
		}
		if err := out.AppendChunk(ch); err != nil {
			return nil, err
		}
	}
}

// Exec executes a statement, discarding any result rows, and reports
// the rows written by INSERT/DELETE/UPDATE.
func (c *Client) Exec(sql string) (int64, error) {
	st, err := c.Stream(Columnar, sql)
	if err != nil {
		return 0, err
	}
	if err := st.Close(); err != nil {
		return 0, err
	}
	if st.err != nil {
		return 0, st.err
	}
	return st.affected, nil
}

// RowIterate is the SQLite analog: execute a query in-process and pull
// the result through a row-at-a-time cursor with per-value boxing (no
// socket, but all the per-row API overhead). It rides the same
// streaming ResultSet as the wire path — the result is never
// materialized twice.
func RowIterate(db *engine.DB, sql string) (*vector.Table, error) {
	rs, err := db.Query(sql)
	if err != nil {
		return nil, err
	}
	defer rs.Close()
	if !rs.HasRows() {
		return nil, errors.New("wire: statement returned no rows")
	}
	schema := rs.Schema()
	cols := make([]*vector.Vector, len(schema))
	for i, c := range schema {
		cols[i] = vector.New(c.Type, 0)
	}
	for {
		ch, err := rs.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			break
		}
		n := ch.NumRows()
		for r := 0; r < n; r++ {
			// One boxed Value per field per row, as a row-cursor API
			// (sqlite3_column_*) would force.
			for i, c := range ch.Cols() {
				cols[i].AppendValue(c.Get(r))
			}
		}
	}
	return vector.NewTable(schema.Names(), cols)
}
