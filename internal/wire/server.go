package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"vexdb/internal/engine"
	"vexdb/internal/vector"
)

// Server exposes an engine over TCP. Each connection handles a
// sequence of requests; one goroutine per connection.
type Server struct {
	db *engine.DB
	ln net.Listener

	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
}

// NewServer wraps a database for network serving.
func NewServer(db *engine.DB) *Server {
	return &Server{db: db, conns: make(map[net.Conn]struct{})}
}

// Start listens on addr (use "127.0.0.1:0" for an ephemeral port) and
// serves in the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<20)
	for {
		proto, query, err := readRequest(br)
		if err != nil {
			return // client hung up or sent garbage
		}
		res, err := s.db.Exec(query)
		if err != nil {
			if werr := writeError(bw, err); werr != nil {
				return
			}
			if bw.Flush() != nil {
				return
			}
			continue
		}
		tab := res.Table
		if tab == nil {
			// Statements without results return an empty relation.
			tab = &vector.Table{}
		}
		if _, err := bw.Write([]byte{0}); err != nil {
			return
		}
		switch proto {
		case TextRows:
			err = writeTextRows(bw, tab)
		case BinaryRows:
			err = writeBinaryRows(bw, tab)
		case Columnar:
			err = writeColumnar(bw, tab)
		default:
			err = fmt.Errorf("wire: unknown protocol %d", proto)
		}
		if err != nil {
			return
		}
		if bw.Flush() != nil {
			return
		}
	}
}

// Close stops accepting and closes live connections.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.wg.Wait()
}

// Client is a connection to a wire server. Not safe for concurrent
// use; open one client per goroutine.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReaderSize(conn, 1<<20),
		bw:   bufio.NewWriterSize(conn, 1<<16),
	}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Query executes sql on the server and materializes the result using
// the requested protocol.
func (c *Client) Query(proto Protocol, sql string) (*vector.Table, error) {
	if err := writeRequest(c.bw, proto, sql); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	if err := readStatus(c.br); err != nil {
		return nil, err
	}
	switch proto {
	case TextRows:
		return readTextRows(c.br)
	case BinaryRows:
		return readBinaryRows(c.br)
	case Columnar:
		return readColumnar(c.br)
	}
	return nil, fmt.Errorf("wire: unknown protocol %d", proto)
}

// Exec executes a statement discarding any result rows.
func (c *Client) Exec(sql string) error {
	_, err := c.Query(Columnar, sql)
	return err
}

// RowIterate is the SQLite analog: execute a query in-process and
// materialize the result through a row-at-a-time cursor with
// per-value boxing (no socket, but all the per-row API overhead).
func RowIterate(db *engine.DB, sql string) (*vector.Table, error) {
	res, err := db.Exec(sql)
	if err != nil {
		return nil, err
	}
	if res.Table == nil {
		return nil, errors.New("wire: statement returned no rows")
	}
	src := res.Table
	cols := make([]*vector.Vector, src.NumCols())
	for i, c := range src.Cols {
		cols[i] = vector.New(c.Type(), src.NumRows())
	}
	n := src.NumRows()
	for r := 0; r < n; r++ {
		// One boxed Value per field per row, as a row-cursor API
		// (sqlite3_column_*) would force.
		for i, c := range src.Cols {
			cols[i].AppendValue(c.Get(r))
		}
	}
	return vector.NewTable(src.Names, cols)
}
