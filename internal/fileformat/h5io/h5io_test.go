package h5io

import (
	"os"
	"path/filepath"
	"testing"

	"vexdb/internal/frame"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.h5")
	df, err := frame.New(
		frame.IntCol("id", []int64{1, 2, 3}),
		frame.FloatCol("v", []float64{0.5, -1, 2}),
		frame.IntCol("flag", []int64{0, 1, 0}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, df); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 || got.Col("v").Floats[2] != 2 || got.Col("flag").Ints[1] != 1 {
		t.Fatalf("contents: %+v", got)
	}
}

func TestSingleDatasetAndList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.h5")
	df, _ := frame.New(
		frame.IntCol("a", []int64{7}),
		frame.FloatCol("b", []float64{8}),
	)
	if err := WriteFile(path, df); err != nil {
		t.Fatal(err)
	}
	names, err := Datasets(path)
	if err != nil || len(names) != 2 || names[1] != "b" {
		t.Fatalf("datasets = %v, %v", names, err)
	}
	col, err := ReadDataset(path, "b")
	if err != nil || col.Floats[0] != 8 {
		t.Fatalf("dataset b: %+v %v", col, err)
	}
	if _, err := ReadDataset(path, "zzz"); err == nil {
		t.Fatal("missing dataset should fail")
	}
}

func TestStringRejectedAndBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.h5")
	df, _ := frame.New(frame.StrCol("s", []string{"x"}))
	if err := WriteFile(path, df); err == nil {
		t.Fatal("string dataset should be rejected")
	}
	if err := os.WriteFile(path, []byte("NOTAH5FILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("bad magic should fail")
	}
}
