// Package h5io implements the HDF5/PyTables baseline of Figure 1: a
// single binary container file holding many named, typed datasets
// behind a directory, read with one seek plus one bulk read per
// dataset. It substitutes for HDF5 with the same access pattern
// (single file, dataset directory, typed binary payloads) without the
// external C library.
package h5io

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"vexdb/internal/frame"
)

// Container format (little-endian):
//
//	magic    [6]byte "GOH5F1"
//	ndatasets uint32
//	directory entries: nameLen uint16, name, dtype uint8,
//	                   offset uint64 (from file start), count uint64
//	payloads (8 bytes per value)
var magic = []byte("GOH5F1")

const (
	dtypeInt64 uint8 = iota + 1
	dtypeFloat64
)

// WriteFile writes all dataframe columns as datasets of one container.
func WriteFile(path string, df *frame.DataFrame) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, df); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	return f.Close()
}

func write(f *os.File, df *frame.DataFrame) error {
	// Directory size is computable up front, so payload offsets are
	// known before writing.
	headerSize := len(magic) + 4
	for i := range df.Cols {
		headerSize += 2 + len(df.Cols[i].Name) + 1 + 8 + 8
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(df.Cols))); err != nil {
		return err
	}
	offset := uint64(headerSize)
	for i := range df.Cols {
		c := &df.Cols[i]
		var dtype uint8
		switch c.Kind {
		case frame.Int:
			dtype = dtypeInt64
		case frame.Float:
			dtype = dtypeFloat64
		default:
			return fmt.Errorf("h5io: column %q: string columns unsupported", c.Name)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(c.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return err
		}
		if err := bw.WriteByte(dtype); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, offset); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(c.Len())); err != nil {
			return err
		}
		offset += uint64(c.Len()) * 8
	}
	var buf [8]byte
	for i := range df.Cols {
		c := &df.Cols[i]
		switch c.Kind {
		case frame.Int:
			for _, v := range c.Ints {
				binary.LittleEndian.PutUint64(buf[:], uint64(v))
				if _, err := bw.Write(buf[:]); err != nil {
					return err
				}
			}
		case frame.Float:
			for _, v := range c.Floats {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				if _, err := bw.Write(buf[:]); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// dirEntry is one dataset directory record.
type dirEntry struct {
	name   string
	dtype  uint8
	offset uint64
	count  uint64
}

func readDirectory(f *os.File) ([]dirEntry, error) {
	br := bufio.NewReader(f)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("h5io: read magic: %w", err)
	}
	if string(got) != string(magic) {
		return nil, fmt.Errorf("h5io: bad magic %q", got)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	entries := make([]dirEntry, n)
	for i := range entries {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, err
		}
		nb := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nb); err != nil {
			return nil, err
		}
		entries[i].name = string(nb)
		dt, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		entries[i].dtype = dt
		if err := binary.Read(br, binary.LittleEndian, &entries[i].offset); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &entries[i].count); err != nil {
			return nil, err
		}
	}
	return entries, nil
}

// ReadFile loads every dataset of the container into a dataframe.
func ReadFile(path string) (*frame.DataFrame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	entries, err := readDirectory(f)
	if err != nil {
		return nil, err
	}
	cols := make([]frame.Column, len(entries))
	for i, e := range entries {
		col, err := readDataset(f, e)
		if err != nil {
			return nil, err
		}
		cols[i] = col
	}
	return frame.New(cols...)
}

// ReadDataset loads a single named dataset (seek + bulk read).
func ReadDataset(path, name string) (frame.Column, error) {
	f, err := os.Open(path)
	if err != nil {
		return frame.Column{}, err
	}
	defer f.Close()
	entries, err := readDirectory(f)
	if err != nil {
		return frame.Column{}, err
	}
	for _, e := range entries {
		if e.name == name {
			return readDataset(f, e)
		}
	}
	return frame.Column{}, fmt.Errorf("h5io: dataset %q not found in %s", name, path)
}

// Datasets lists the dataset names in a container.
func Datasets(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	entries, err := readDirectory(f)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.name
	}
	return out, nil
}

func readDataset(f *os.File, e dirEntry) (frame.Column, error) {
	payload := make([]byte, e.count*8)
	if _, err := f.ReadAt(payload, int64(e.offset)); err != nil {
		return frame.Column{}, fmt.Errorf("h5io: dataset %q: %w", e.name, err)
	}
	switch e.dtype {
	case dtypeInt64:
		vals := make([]int64, e.count)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return frame.IntCol(e.name, vals), nil
	case dtypeFloat64:
		vals := make([]float64, e.count)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return frame.FloatCol(e.name, vals), nil
	}
	return frame.Column{}, fmt.Errorf("h5io: dataset %q: unknown dtype %d", e.name, e.dtype)
}
