package npyio

import (
	"os"
	"path/filepath"
	"testing"

	"vexdb/internal/frame"
)

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	df, err := frame.New(
		frame.IntCol("id", []int64{1, 2, 3}),
		frame.FloatCol("v", []float64{1.5, -2, 0}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDir(dir, "voters", df); err != nil {
		t.Fatal(err)
	}
	// One file per column, plus the manifest.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Fatalf("files = %d, want 3 (2 columns + manifest)", len(entries))
	}
	got, err := ReadDir(dir, "voters")
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 || got.Col("id").Ints[2] != 3 || got.Col("v").Floats[0] != 1.5 {
		t.Fatalf("contents wrong: %+v", got)
	}
}

func TestStringColumnRejected(t *testing.T) {
	df, _ := frame.New(frame.StrCol("s", []string{"x"}))
	if err := WriteDir(t.TempDir(), "d", df); err == nil {
		t.Fatal("string column should be rejected")
	}
}

func TestCorruptFile(t *testing.T) {
	dir := t.TempDir()
	df, _ := frame.New(frame.IntCol("id", []int64{1, 2}))
	if err := WriteDir(dir, "d", df); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "d.id.npy")
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDir(dir, "d"); err == nil {
		t.Fatal("truncated column should fail")
	}
}

func TestMissingManifest(t *testing.T) {
	if _, err := ReadDir(t.TempDir(), "nope"); err == nil {
		t.Fatal("missing manifest should fail")
	}
}
