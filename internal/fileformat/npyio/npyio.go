// Package npyio implements the NumPy-binary-files baseline of
// Figure 1: each column is one little-endian binary file on disk plus
// a small manifest, mirroring how the paper stores each of the 96
// voter columns as a separate .npy file. Loading is a header check
// plus one bulk read per column — the fastest external format, but
// with the data-management burden of one file per column that the
// paper calls out.
package npyio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"vexdb/internal/frame"
)

// Column file format: magic "GONPY1", dtype uint8, count uint64, raw
// little-endian payload. The manifest "<name>.manifest" lists
// "column,dtype" lines.
var magic = []byte("GONPY1")

// dtype tags.
const (
	dtypeInt64 uint8 = iota + 1
	dtypeFloat64
)

// WriteDir writes each dataframe column as <dir>/<dataset>.<col>.npy
// plus a manifest. String columns are rejected: the binary baseline
// carries only numeric data (as in the paper's voter features).
func WriteDir(dir, dataset string, df *frame.DataFrame) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var manifest strings.Builder
	for i := range df.Cols {
		c := &df.Cols[i]
		var dtype uint8
		switch c.Kind {
		case frame.Int:
			dtype = dtypeInt64
		case frame.Float:
			dtype = dtypeFloat64
		default:
			return fmt.Errorf("npyio: column %q: string columns unsupported", c.Name)
		}
		path := columnPath(dir, dataset, c.Name)
		if err := writeColumn(path, dtype, c); err != nil {
			return fmt.Errorf("npyio: column %q: %w", c.Name, err)
		}
		fmt.Fprintf(&manifest, "%s,%d\n", c.Name, dtype)
	}
	return os.WriteFile(manifestPath(dir, dataset), []byte(manifest.String()), 0o644)
}

func columnPath(dir, dataset, col string) string {
	return filepath.Join(dir, dataset+"."+col+".npy")
}

func manifestPath(dir, dataset string) string {
	return filepath.Join(dir, dataset+".manifest")
}

func writeColumn(path string, dtype uint8, c *frame.Column) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(magic); err != nil {
		f.Close()
		return err
	}
	if err := bw.WriteByte(dtype); err != nil {
		f.Close()
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(c.Len())); err != nil {
		f.Close()
		return err
	}
	var buf [8]byte
	switch dtype {
	case dtypeInt64:
		for _, v := range c.Ints {
			binary.LittleEndian.PutUint64(buf[:], uint64(v))
			if _, err := bw.Write(buf[:]); err != nil {
				f.Close()
				return err
			}
		}
	case dtypeFloat64:
		for _, v := range c.Floats {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				f.Close()
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadDir loads every column listed in the dataset's manifest.
func ReadDir(dir, dataset string) (*frame.DataFrame, error) {
	mf, err := os.ReadFile(manifestPath(dir, dataset))
	if err != nil {
		return nil, fmt.Errorf("npyio: read manifest: %w", err)
	}
	var cols []frame.Column
	for _, line := range strings.Split(strings.TrimSpace(string(mf)), "\n") {
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, ",", 2)
		if len(parts) != 2 {
			return nil, fmt.Errorf("npyio: bad manifest line %q", line)
		}
		name := parts[0]
		col, err := readColumn(columnPath(dir, dataset, name), name)
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
	}
	return frame.New(cols...)
}

func readColumn(path, name string) (frame.Column, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return frame.Column{}, fmt.Errorf("npyio: %w", err)
	}
	if len(data) < len(magic)+1+8 || string(data[:len(magic)]) != string(magic) {
		return frame.Column{}, fmt.Errorf("npyio: %s: bad header", path)
	}
	dtype := data[len(magic)]
	count := binary.LittleEndian.Uint64(data[len(magic)+1:])
	payload := data[len(magic)+9:]
	if uint64(len(payload)) != count*8 {
		return frame.Column{}, fmt.Errorf("npyio: %s: %d payload bytes for %d values", path, len(payload), count)
	}
	switch dtype {
	case dtypeInt64:
		vals := make([]int64, count)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return frame.IntCol(name, vals), nil
	case dtypeFloat64:
		vals := make([]float64, count)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
		return frame.FloatCol(name, vals), nil
	}
	return frame.Column{}, fmt.Errorf("npyio: %s: unknown dtype %d", path, dtype)
}
