package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"vexdb/internal/frame"
)

func sample(t *testing.T) *frame.DataFrame {
	t.Helper()
	df, err := frame.New(
		frame.IntCol("id", []int64{1, -2, 3}),
		frame.FloatCol("v", []float64{1.5, 0, -2.25}),
		frame.StrCol("s", []string{"a", "hello world", ""}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return df
}

func TestRoundTrip(t *testing.T) {
	df := sample(t)
	var buf bytes.Buffer
	if err := WriteFrame(&buf, df); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, []ColType{Int, Float, Str})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if got.Col("id").Ints[1] != -2 || got.Col("v").Floats[2] != -2.25 || got.Col("s").Strs[1] != "hello world" {
		t.Fatalf("contents wrong: %+v", got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	df := sample(t)
	path := filepath.Join(t.TempDir(), "d.csv")
	if err := WriteFile(path, df); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path, []ColType{Int, Float, Str})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 3 || got.Col("id").Ints[0] != 1 {
		t.Fatal("file round trip")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadFrame(strings.NewReader("a,b\n1\n"), []ColType{Int, Int}); err == nil {
		t.Error("short row should fail")
	}
	if _, err := ReadFrame(strings.NewReader("a\nx\n"), []ColType{Int}); err == nil {
		t.Error("bad int should fail")
	}
	if _, err := ReadFrame(strings.NewReader("a\n1.x\n"), []ColType{Float}); err == nil {
		t.Error("bad float should fail")
	}
	if _, err := ReadFrame(strings.NewReader("a,b\n"), []ColType{Int}); err == nil {
		t.Error("type count mismatch should fail")
	}
}

func TestCRLFAndNoTrailingNewline(t *testing.T) {
	got, err := ReadFrame(strings.NewReader("a,b\r\n1,2\r\n3,4"), []ColType{Int, Int})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || got.Col("b").Ints[1] != 4 {
		t.Fatalf("crlf parse: %+v", got)
	}
}

func TestParseIntEdge(t *testing.T) {
	if _, err := parseInt([]byte("")); err == nil {
		t.Error("empty")
	}
	if _, err := parseInt([]byte("-")); err == nil {
		t.Error("bare minus")
	}
	v, err := parseInt([]byte("-9007199254740993"))
	if err != nil || v != -9007199254740993 {
		t.Errorf("large negative: %d %v", v, err)
	}
}
