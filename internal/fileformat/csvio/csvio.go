// Package csvio is the optimized CSV reader/writer used by the CSV
// baseline of the voter-classification benchmark (Figure 1). The
// reader is a hand-rolled byte scanner: it avoids encoding/csv's
// per-record allocations and parses integers and floats directly from
// the byte buffer, mirroring the "optimized parser" the paper credits
// its CSV baseline with.
package csvio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"

	"vexdb/internal/frame"
)

// ColType declares a column's parse type.
type ColType uint8

// Column parse types.
const (
	Int ColType = iota
	Float
	Str
)

// WriteFrame writes the dataframe as CSV with a header row.
func WriteFrame(w io.Writer, df *frame.DataFrame) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for i, c := range df.Cols {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(c.Name); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	n := df.NumRows()
	buf := make([]byte, 0, 32)
	for r := 0; r < n; r++ {
		for i := range df.Cols {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			c := &df.Cols[i]
			buf = buf[:0]
			switch c.Kind {
			case frame.Int:
				buf = strconv.AppendInt(buf, c.Ints[r], 10)
			case frame.Float:
				buf = strconv.AppendFloat(buf, c.Floats[r], 'g', -1, 64)
			default:
				buf = append(buf, c.Strs[r]...)
			}
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the dataframe to a CSV file.
func WriteFile(path string, df *frame.DataFrame) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFrame(f, df); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFrame parses CSV with a header row into a dataframe, using the
// declared column types (which must match the header's column count).
func ReadFrame(r io.Reader, types []ColType) (*frame.DataFrame, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	header, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("csvio: read header: %w", err)
	}
	names := splitComma(header)
	if len(names) != len(types) {
		return nil, fmt.Errorf("csvio: %d header columns, %d declared types", len(names), len(types))
	}
	cols := make([]frame.Column, len(names))
	for i, n := range names {
		cols[i].Name = string(n)
		switch types[i] {
		case Int:
			cols[i].Kind = frame.Int
		case Float:
			cols[i].Kind = frame.Float
		default:
			cols[i].Kind = frame.Str
		}
	}
	lineNo := 1
	for {
		line, err := readLine(br)
		if err == io.EOF && len(line) == 0 {
			break
		}
		if err != nil && err != io.EOF {
			return nil, err
		}
		lineNo++
		if len(line) == 0 {
			if err == io.EOF {
				break
			}
			continue
		}
		fields := splitComma(line)
		if len(fields) != len(cols) {
			return nil, fmt.Errorf("csvio: line %d has %d fields, expected %d", lineNo, len(fields), len(cols))
		}
		for i, f := range fields {
			switch types[i] {
			case Int:
				v, perr := parseInt(f)
				if perr != nil {
					return nil, fmt.Errorf("csvio: line %d column %d: %w", lineNo, i+1, perr)
				}
				cols[i].Ints = append(cols[i].Ints, v)
			case Float:
				v, perr := strconv.ParseFloat(string(f), 64)
				if perr != nil {
					return nil, fmt.Errorf("csvio: line %d column %d: %w", lineNo, i+1, perr)
				}
				cols[i].Floats = append(cols[i].Floats, v)
			default:
				cols[i].Strs = append(cols[i].Strs, string(f))
			}
		}
		if err == io.EOF {
			break
		}
	}
	return frame.New(cols...)
}

// ReadFile reads a typed CSV file into a dataframe.
func ReadFile(path string, types []ColType) (*frame.DataFrame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrame(f, types)
}

// readLine reads one line without the trailing newline (handles \r\n).
func readLine(br *bufio.Reader) ([]byte, error) {
	line, err := br.ReadBytes('\n')
	if len(line) > 0 && line[len(line)-1] == '\n' {
		line = line[:len(line)-1]
	}
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, err
}

// splitComma splits on ',' without quote handling (the generated
// datasets never contain embedded commas; this is the "optimized
// parser" fast path).
func splitComma(line []byte) [][]byte {
	var out [][]byte
	start := 0
	for i := 0; i < len(line); i++ {
		if line[i] == ',' {
			out = append(out, line[start:i])
			start = i + 1
		}
	}
	return append(out, line[start:])
}

// parseInt parses a decimal int64 directly from bytes.
func parseInt(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty integer field")
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i++
		if len(b) == 1 {
			return 0, fmt.Errorf("bad integer %q", b)
		}
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad integer %q", b)
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, nil
}
