package sql

import (
	"testing"

	"vexdb/internal/vector"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, "CREATE TABLE t (id BIGINT, name VARCHAR(20), score DOUBLE, raw BLOB)")
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "t" || len(ct.Columns) != 4 {
		t.Fatalf("ct = %+v", ct)
	}
	if ct.Columns[1].Type != vector.String || ct.Columns[3].Type != vector.Blob {
		t.Fatal("column types wrong")
	}
}

func TestParseCreateTableIfNotExists(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE IF NOT EXISTS t (a INT)").(*CreateTable)
	if !ct.IfNotExists {
		t.Fatal("IfNotExists")
	}
}

func TestParseCreateTableAsSelect(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE t2 AS SELECT a, b FROM t WHERE a > 1").(*CreateTable)
	if ct.AsSelect == nil || len(ct.AsSelect.Items) != 2 {
		t.Fatalf("ct = %+v", ct)
	}
}

func TestParseDrop(t *testing.T) {
	dt := mustParse(t, "DROP TABLE IF EXISTS t").(*DropTable)
	if dt.Name != "t" || !dt.IfExists {
		t.Fatalf("dt = %+v", dt)
	}
}

func TestParseInsertValues(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("ins = %+v", ins)
	}
	lit := ins.Rows[1][1].(*Literal)
	if !lit.Value.IsNull() {
		t.Fatal("NULL literal")
	}
}

func TestParseInsertSelect(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t SELECT * FROM s").(*Insert)
	if ins.Query == nil || !ins.Query.Items[0].Star {
		t.Fatalf("ins = %+v", ins)
	}
}

func TestParseDeleteUpdate(t *testing.T) {
	d := mustParse(t, "DELETE FROM t WHERE a = 1").(*Delete)
	if d.Table != "t" || d.Where == nil {
		t.Fatalf("d = %+v", d)
	}
	u := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE c IS NULL").(*Update)
	if len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("u = %+v", u)
	}
}

func TestParseSelectFull(t *testing.T) {
	sel := mustParse(t, `
		SELECT t.a AS x, count(*) c
		FROM t
		JOIN s ON t.id = s.id
		LEFT JOIN r ON r.k = t.k
		WHERE t.a > 1 AND s.b IN (1, 2, 3)
		GROUP BY t.a
		HAVING count(*) > 2
		ORDER BY c DESC, x
		LIMIT 10 OFFSET 5`).(*Select)
	if len(sel.Items) != 2 || sel.Items[0].Alias != "x" || sel.Items[1].Alias != "c" {
		t.Fatalf("items = %+v", sel.Items)
	}
	if len(sel.Joins) != 2 || sel.Joins[0].Kind != InnerJoin || sel.Joins[1].Kind != LeftJoin {
		t.Fatalf("joins = %+v", sel.Joins)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Fatal("clauses missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Fatalf("orderby = %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Fatal("limit/offset")
	}
}

func TestParseSelectNoFrom(t *testing.T) {
	sel := mustParse(t, "SELECT 1 + 2 * 3").(*Select)
	be := sel.Items[0].Expr.(*BinaryExpr)
	if be.Op != OpAdd {
		t.Fatal("precedence: top must be +")
	}
	if be.Right.(*BinaryExpr).Op != OpMul {
		t.Fatal("precedence: right must be *")
	}
}

func TestParsePrecedenceAndOr(t *testing.T) {
	sel := mustParse(t, "SELECT a OR b AND c").(*Select)
	be := sel.Items[0].Expr.(*BinaryExpr)
	if be.Op != OpOr {
		t.Fatal("OR must bind loosest")
	}
	if be.Right.(*BinaryExpr).Op != OpAnd {
		t.Fatal("AND under OR")
	}
}

func TestParseSubqueryFrom(t *testing.T) {
	sel := mustParse(t, "SELECT x FROM (SELECT a AS x FROM t) AS sub").(*Select)
	sq, ok := sel.From.(*SubqueryTable)
	if !ok || sq.Alias != "sub" {
		t.Fatalf("from = %+v", sel.From)
	}
}

func TestParseTableFunc(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM train_rf((SELECT f, label FROM d), 16) AS m").(*Select)
	tf, ok := sel.From.(*TableFunc)
	if !ok {
		t.Fatalf("from = %T", sel.From)
	}
	if tf.Name != "train_rf" || len(tf.Args) != 2 || tf.Alias != "m" {
		t.Fatalf("tf = %+v", tf)
	}
	if tf.Args[0].Query == nil || tf.Args[1].Expr == nil {
		t.Fatal("arg kinds wrong")
	}
}

func TestParseCaseCastBetween(t *testing.T) {
	sel := mustParse(t, `SELECT
		CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END,
		CAST(a AS DOUBLE),
		b BETWEEN 1 AND 10`).(*Select)
	if _, ok := sel.Items[0].Expr.(*CaseExpr); !ok {
		t.Fatal("case")
	}
	c, ok := sel.Items[1].Expr.(*CastExpr)
	if !ok || c.To != vector.Float64 {
		t.Fatal("cast")
	}
	// BETWEEN desugars to AND of comparisons.
	be, ok := sel.Items[2].Expr.(*BinaryExpr)
	if !ok || be.Op != OpAnd {
		t.Fatalf("between = %+v", sel.Items[2].Expr)
	}
}

func TestParseSimpleCase(t *testing.T) {
	sel := mustParse(t, "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t").(*Select)
	ce := sel.Items[0].Expr.(*CaseExpr)
	if ce.Operand == nil || len(ce.Whens) != 2 || ce.Else != nil {
		t.Fatalf("ce = %+v", ce)
	}
}

func TestParseNotIn(t *testing.T) {
	sel := mustParse(t, "SELECT a NOT IN (1,2)").(*Select)
	in := sel.Items[0].Expr.(*InExpr)
	if !in.Negate || len(in.List) != 2 {
		t.Fatalf("in = %+v", in)
	}
}

func TestParseIsNotNull(t *testing.T) {
	sel := mustParse(t, "SELECT a IS NOT NULL, b IS NULL").(*Select)
	a := sel.Items[0].Expr.(*IsNullExpr)
	b := sel.Items[1].Expr.(*IsNullExpr)
	if !a.Negate || b.Negate {
		t.Fatal("is null parsing")
	}
}

func TestParseUnaryMinusFolding(t *testing.T) {
	sel := mustParse(t, "SELECT -5, -2.5, -(a)").(*Select)
	if sel.Items[0].Expr.(*Literal).Value.Int64() != -5 {
		t.Fatal("int fold")
	}
	if sel.Items[1].Expr.(*Literal).Value.Float64() != -2.5 {
		t.Fatal("float fold")
	}
	if _, ok := sel.Items[2].Expr.(*UnaryExpr); !ok {
		t.Fatal("column negation stays unary")
	}
}

func TestParseUnion(t *testing.T) {
	sel := mustParse(t, "SELECT a FROM t UNION ALL SELECT b FROM s").(*Select)
	if sel.Union == nil || !sel.UnionAll {
		t.Fatalf("union = %+v", sel)
	}
}

func TestParseDistinctAggregate(t *testing.T) {
	sel := mustParse(t, "SELECT count(DISTINCT a) FROM t").(*Select)
	fc := sel.Items[0].Expr.(*FuncCall)
	if !fc.Distinct || fc.Name != "count" {
		t.Fatalf("fc = %+v", fc)
	}
}

func TestParseQualifiedStar(t *testing.T) {
	sel := mustParse(t, "SELECT t.*, s.a FROM t, s").(*Select)
	if !sel.Items[0].Star || sel.Items[0].StarTable != "t" {
		t.Fatalf("items = %+v", sel.Items)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Kind != CrossJoin {
		t.Fatal("comma join")
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"CREATE TABLE t",
		"CREATE TABLE t (a NOTATYPE)",
		"INSERT INTO t",
		"SELECT a FROM t JOIN s", // missing ON
		"SELECT CASE END",        // no WHEN
		"SELECT CAST(a AS NOPE)", // bad type
		"SELECT a FROM t WHERE",  // truncated
		"SELECT * FROM t GROUP",  // truncated GROUP
		"SELECT 1 2",             // trailing garbage... actually '2' parses as alias
	}
	for _, src := range bad[:11] {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestIsAggregate(t *testing.T) {
	sel := mustParse(t, "SELECT sum(a) + 1, a + 1, CASE WHEN max(b) > 0 THEN 1 ELSE 0 END").(*Select)
	if !IsAggregate(sel.Items[0].Expr) {
		t.Error("sum(a)+1 is aggregate")
	}
	if IsAggregate(sel.Items[1].Expr) {
		t.Error("a+1 is not aggregate")
	}
	if !IsAggregate(sel.Items[2].Expr) {
		t.Error("CASE with max is aggregate")
	}
}
