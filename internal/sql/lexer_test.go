package sql

import "testing"

func TestLexBasic(t *testing.T) {
	toks, err := Tokenize("SELECT a, b2 FROM t WHERE x >= 1.5 AND y = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokSymbol, TokIdent, TokKeyword,
		TokIdent, TokKeyword, TokIdent, TokSymbol, TokFloat, TokKeyword,
		TokIdent, TokSymbol, TokString, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v (kind %d), want kind %d", i, toks[i], toks[i].Kind, k)
		}
	}
	if toks[13].Text != "it's" {
		t.Errorf("string escape: got %q", toks[13].Text)
	}
	if toks[8].Text != ">=" {
		t.Errorf("two-char op: got %q", toks[8].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n 1 /* block\ncomment */ + 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // SELECT 1 + 2 EOF
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]TokenKind{
		"42":     TokInt,
		"3.14":   TokFloat,
		"1e5":    TokFloat,
		"2.5e-3": TokFloat,
		"7E+2":   TokFloat,
	}
	for src, kind := range cases {
		toks, err := Tokenize(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if toks[0].Kind != kind || toks[0].Text != src {
			t.Errorf("%q -> %v (kind %d), want kind %d", src, toks[0], toks[0].Kind, kind)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Tokenize("'unterminated"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Tokenize("a @ b"); err == nil {
		t.Error("bad character should fail")
	}
}

func TestLexKeywordCase(t *testing.T) {
	toks, err := Tokenize("select From WhErE")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.Kind != TokKeyword {
			t.Errorf("%v not a keyword", tok)
		}
	}
	if toks[0].Text != "SELECT" {
		t.Errorf("keyword not uppercased: %q", toks[0].Text)
	}
}
