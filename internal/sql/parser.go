package sql

import (
	"fmt"
	"strconv"
	"strings"

	"vexdb/internal/vector"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (a trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for !p.atEOF() {
		if p.accept(TokSymbol, ";") {
			continue
		}
		stmt, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		if !p.atEOF() && !p.accept(TokSymbol, ";") {
			return nil, p.errorf("expected ';' between statements, got %s", p.peek())
		}
	}
	return out, nil
}

func newParser(src string) (*Parser, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	return &Parser{toks: toks, src: src}, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }
func (p *Parser) backup()     { p.pos-- }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

// accept consumes the next token when it matches kind and text
// (case-sensitive for symbols, keywords already uppercased).
func (p *Parser) accept(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && t.Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(kw string) bool { return p.accept(TokKeyword, kw) }

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) expectSymbol(s string) error {
	if !p.accept(TokSymbol, s) {
		return p.errorf("expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", p.errorf("expected identifier, got %s", t)
	}
	p.pos++
	return t.Text, nil
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected statement, got %s", t)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		p.next()
		ex := &Explain{}
		if p.acceptKeyword("ANALYZE") {
			ex.Analyze = true
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ex.Query = sel
		return ex, nil
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	case "INSERT":
		return p.parseInsert()
	case "DELETE":
		return p.parseDelete()
	case "UPDATE":
		return p.parseUpdate()
	}
	return nil, p.errorf("unsupported statement %s", t.Text)
}

func (p *Parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ct := &CreateTable{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		ct.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct.Name = name
	if p.acceptKeyword("AS") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ct.AsSelect = sel
		return ct, nil
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeTok := p.next()
		if typeTok.Kind != TokIdent && typeTok.Kind != TokKeyword {
			return nil, p.errorf("expected type name, got %s", typeTok)
		}
		typeName := typeTok.Text
		// Consume optional (N) length parameter.
		if p.accept(TokSymbol, "(") {
			for !p.accept(TokSymbol, ")") {
				if p.atEOF() {
					return nil, p.errorf("unterminated type parameter")
				}
				p.next()
			}
		}
		typ, ok := vector.TypeFromName(typeName)
		if !ok {
			return nil, p.errorf("unknown type %q", typeName)
		}
		ct.Columns = append(ct.Columns, ColumnDef{Name: colName, Type: typ})
		if p.accept(TokSymbol, ",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		break
	}
	return ct, nil
}

func (p *Parser) parseDrop() (Statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTable{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		dt.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	dt.Name = name
	return dt, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	if p.accept(TokSymbol, "(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.accept(TokSymbol, ",") {
				continue
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if p.acceptKeyword("VALUES") {
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if p.accept(TokSymbol, ",") {
					continue
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				break
			}
			ins.Rows = append(ins.Rows, row)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		return ins, nil
	}
	if p.peek().Kind == TokKeyword && p.peek().Text == "SELECT" {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = sel
		return ins, nil
	}
	return nil, p.errorf("expected VALUES or SELECT, got %s", p.peek())
}

func (p *Parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	u := &Update{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: e})
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *Parser) parseSelect() (*Select, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		src, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		sel.From = src
		for {
			var kind JoinKind
			switch {
			case p.acceptKeyword("JOIN"):
				kind = InnerJoin
			case p.acceptKeyword("INNER"):
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = InnerJoin
			case p.acceptKeyword("LEFT"):
				p.acceptKeyword("OUTER")
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				kind = LeftJoin
			case p.accept(TokSymbol, ","):
				kind = CrossJoin
			default:
				goto joinsDone
			}
			src, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			j := Join{Kind: kind, Src: src}
			if kind != CrossJoin {
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				j.On = on
			}
			sel.Joins = append(sel.Joins, j)
		}
	}
joinsDone:
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("UNION") {
		sel.UnionAll = p.acceptKeyword("ALL")
		u, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		sel.Union = u
		return sel, nil
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Offset = e
	}
	return sel, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* qualified star
	if p.peek().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		tbl := p.next().Text
		p.next() // .
		p.next() // *
		return SelectItem{Star: true, StarTable: tbl}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

func (p *Parser) parseTableRef() (TableRef, error) {
	// Parenthesized subquery.
	if p.accept(TokSymbol, "(") {
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		alias := p.parseOptionalAlias()
		return &SubqueryTable{Query: sel, Alias: alias}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	// Table-valued function call.
	if p.accept(TokSymbol, "(") {
		tf := &TableFunc{Name: strings.ToLower(name)}
		if !p.accept(TokSymbol, ")") {
			for {
				arg, err := p.parseTableFuncArg()
				if err != nil {
					return nil, err
				}
				tf.Args = append(tf.Args, arg)
				if p.accept(TokSymbol, ",") {
					continue
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				break
			}
		}
		tf.Alias = p.parseOptionalAlias()
		return tf, nil
	}
	alias := p.parseOptionalAlias()
	return &BaseTable{Name: name, Alias: alias}, nil
}

func (p *Parser) parseTableFuncArg() (TableFuncArg, error) {
	// A subquery argument: (SELECT ...)
	if p.peek().Kind == TokSymbol && p.peek().Text == "(" &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokKeyword && p.toks[p.pos+1].Text == "SELECT" {
		p.next() // (
		sel, err := p.parseSelect()
		if err != nil {
			return TableFuncArg{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return TableFuncArg{}, err
		}
		return TableFuncArg{Query: sel}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return TableFuncArg{}, err
	}
	return TableFuncArg{Expr: e}, nil
}

func (p *Parser) parseOptionalAlias() string {
	if p.acceptKeyword("AS") {
		if p.peek().Kind == TokIdent {
			return p.next().Text
		}
		p.backup() // keep AS for error reporting downstream
		return ""
	}
	if p.peek().Kind == TokIdent {
		return p.next().Text
	}
	return ""
}

// ----------------------------------------------------------------- expr

// parseExpr parses with precedence: OR < AND < NOT < comparison <
// additive < multiplicative < unary < primary.
func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpOr, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: OpAnd, Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Neg: false, Operand: e}, nil
	}
	return p.parseComparison()
}

var comparisonOps = map[string]BinaryOp{
	"=": OpEq, "<>": OpNe, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokSymbol {
			if op, ok := comparisonOps[t.Text]; ok {
				p.next()
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &BinaryExpr{Op: op, Left: left, Right: right}
				continue
			}
		}
		if t.Kind == TokKeyword {
			switch t.Text {
			case "IS":
				p.next()
				neg := p.acceptKeyword("NOT")
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				left = &IsNullExpr{Operand: left, Negate: neg}
				continue
			case "IN":
				p.next()
				in, err := p.parseInList(left, false)
				if err != nil {
					return nil, err
				}
				left = in
				continue
			case "NOT":
				// NOT IN / NOT BETWEEN
				if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokKeyword {
					switch p.toks[p.pos+1].Text {
					case "IN":
						p.next()
						p.next()
						in, err := p.parseInList(left, true)
						if err != nil {
							return nil, err
						}
						left = in
						continue
					case "BETWEEN":
						p.next()
						p.next()
						b, err := p.parseBetween(left, true)
						if err != nil {
							return nil, err
						}
						left = b
						continue
					}
				}
			case "BETWEEN":
				p.next()
				b, err := p.parseBetween(left, false)
				if err != nil {
					return nil, err
				}
				left = b
				continue
			}
		}
		return left, nil
	}
}

func (p *Parser) parseInList(operand Expr, negate bool) (Expr, error) {
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	in := &InExpr{Operand: operand, Negate: negate}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if p.accept(TokSymbol, ",") {
			continue
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		break
	}
	return in, nil
}

// parseBetween desugars x BETWEEN a AND b into x >= a AND x <= b.
func (p *Parser) parseBetween(operand Expr, negate bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	e := Expr(&BinaryExpr{Op: OpAnd,
		Left:  &BinaryExpr{Op: OpGe, Left: operand, Right: lo},
		Right: &BinaryExpr{Op: OpLe, Left: operand, Right: hi}})
	if negate {
		e = &UnaryExpr{Operand: e}
	}
	return e, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol {
			return left, nil
		}
		var op BinaryOp
		switch t.Text {
		case "+":
			op = OpAdd
		case "-":
			op = OpSub
		case "||":
			op = OpConcat
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind != TokSymbol {
			return left, nil
		}
		var op BinaryOp
		switch t.Text {
		case "*":
			op = OpMul
		case "/":
			op = OpDiv
		case "%":
			op = OpMod
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, Left: left, Right: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negative numeric literals.
		if lit, ok := e.(*Literal); ok {
			switch lit.Value.Type() {
			case vector.Int64:
				return &Literal{Value: vector.NewInt64(-lit.Value.Int64())}, nil
			case vector.Float64:
				return &Literal{Value: vector.NewFloat64(-lit.Value.Float64())}, nil
			}
		}
		return &UnaryExpr{Neg: true, Operand: e}, nil
	}
	if p.accept(TokSymbol, "+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.Text)
		}
		return &Literal{Value: vector.NewInt64(n)}, nil
	case TokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float literal %q", t.Text)
		}
		return &Literal{Value: vector.NewFloat64(f)}, nil
	case TokString:
		p.next()
		return &Literal{Value: vector.NewString(t.Text)}, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: vector.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: vector.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: vector.NewBool(false)}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		}
		return nil, p.errorf("unexpected keyword %s in expression", t.Text)
	case TokSymbol:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)
	case TokIdent:
		p.next()
		name := t.Text
		// Function call.
		if p.accept(TokSymbol, "(") {
			fc := &FuncCall{Name: strings.ToLower(name)}
			if p.accept(TokSymbol, "*") {
				fc.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.accept(TokSymbol, ")") {
				return fc, nil
			}
			if p.acceptKeyword("DISTINCT") {
				fc.Distinct = true
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, e)
				if p.accept(TokSymbol, ",") {
					continue
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				break
			}
			return fc, nil
		}
		// Qualified column ref: t.col
		if p.accept(TokSymbol, ".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Name: col}, nil
		}
		return &ColumnRef{Name: name}, nil
	}
	return nil, p.errorf("unexpected token %s", t)
}

func (p *Parser) parseCase() (Expr, error) {
	p.next() // CASE
	ce := &CaseExpr{}
	if !(p.peek().Kind == TokKeyword && p.peek().Text == "WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Operand = op
	}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Whens = append(ce.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(ce.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN clause")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ce.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return ce, nil
}

func (p *Parser) parseCast() (Expr, error) {
	p.next() // CAST
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	typeTok := p.next()
	if typeTok.Kind != TokIdent && typeTok.Kind != TokKeyword {
		return nil, p.errorf("expected type name in CAST, got %s", typeTok)
	}
	typ, ok := vector.TypeFromName(typeTok.Text)
	if !ok {
		return nil, p.errorf("unknown type %q in CAST", typeTok.Text)
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CastExpr{Operand: e, To: typ}, nil
}
