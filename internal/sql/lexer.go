package sql

import (
	"fmt"
	"strings"
)

// Lexer turns SQL text into tokens. It is position-tracking for error
// messages and skips -- line comments and /* */ block comments.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		return l.lexIdent(start), nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '\'':
		return l.lexString(start)
	default:
		return l.lexSymbol(start)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func (l *Lexer) lexIdent(start int) Token {
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Kind: TokIdent, Text: text, Pos: start}
}

func (l *Lexer) lexNumber(start int) (Token, error) {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !isFloat:
			isFloat = true
			l.pos++
		case (c == 'e' || c == 'E') && l.pos+1 < len(l.src):
			// exponent: e[+-]?digits
			next := l.src[l.pos+1]
			if next == '+' || next == '-' {
				if l.pos+2 >= len(l.src) || l.src[l.pos+2] < '0' || l.src[l.pos+2] > '9' {
					return Token{}, fmt.Errorf("sql: malformed number at offset %d", start)
				}
				l.pos += 2
			} else if next >= '0' && next <= '9' {
				l.pos++
			} else {
				goto done
			}
			isFloat = true
		default:
			goto done
		}
	}
done:
	kind := TokInt
	if isFloat {
		kind = TokFloat
	}
	return Token{Kind: kind, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexString(start int) (Token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // '' escape
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

var twoCharSymbols = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

func (l *Lexer) lexSymbol(start int) (Token, error) {
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		if twoCharSymbols[two] {
			l.pos += 2
			return Token{Kind: TokSymbol, Text: two, Pos: start}, nil
		}
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '+', '-', '/', '%', '=', '<', '>', '.', ';':
		l.pos++
		return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, start)
}

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
