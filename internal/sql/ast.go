package sql

import (
	"strings"

	"vexdb/internal/vector"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed scalar expression.
type Expr interface{ expr() }

// TableRef is any source in a FROM clause.
type TableRef interface{ tableRef() }

// ---------------------------------------------------------------- statements

// CreateTable is CREATE TABLE [IF NOT EXISTS] name (cols) or
// CREATE TABLE name AS SELECT ...
type CreateTable struct {
	Name        string
	IfNotExists bool
	Columns     []ColumnDef // nil when AsSelect is set
	AsSelect    *Select
}

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type vector.Type
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

// Insert is INSERT INTO name [(cols)] VALUES (...)... or
// INSERT INTO name [(cols)] SELECT ...
type Insert struct {
	Table   string
	Columns []string // nil = all columns in table order
	Rows    [][]Expr // literal rows; nil when FromSelect is set
	Query   *Select
}

// Delete is DELETE FROM name [WHERE pred].
type Delete struct {
	Table string
	Where Expr
}

// Update is UPDATE name SET col = expr, ... [WHERE pred].
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one SET clause of UPDATE.
type Assignment struct {
	Column string
	Value  Expr
}

// Select is a SELECT statement (optionally with set operations chained
// via Union).
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef // nil for FROM-less selects (SELECT 1+1)
	Joins    []Join
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil = no limit
	Offset   Expr // nil = no offset
	Union    *Select
	UnionAll bool
}

// Explain is EXPLAIN [ANALYZE] <select>: it renders the query's
// execution plan (with cost estimates) instead of its rows; ANALYZE
// additionally runs the query and reports actual cardinalities next
// to the estimates.
type Explain struct {
	Analyze bool
	Query   *Select
}

// SelectItem is one projection in the select list. Star selects all
// visible columns (optionally qualified: t.*).
type SelectItem struct {
	Star      bool
	StarTable string
	Expr      Expr
	Alias     string
}

// JoinKind distinguishes join types.
type JoinKind uint8

// Supported join kinds.
const (
	InnerJoin JoinKind = iota
	LeftJoin
	CrossJoin
)

// Join is one JOIN clause.
type Join struct {
	Kind JoinKind
	Src  TableRef
	On   Expr // nil for CROSS JOIN
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Delete) stmt()      {}
func (*Update) stmt()      {}
func (*Select) stmt()      {}
func (*Explain) stmt()     {}

// ---------------------------------------------------------------- table refs

// BaseTable references a named table, optionally aliased.
type BaseTable struct {
	Name  string
	Alias string
}

// SubqueryTable is a parenthesized SELECT in FROM.
type SubqueryTable struct {
	Query *Select
	Alias string
}

// TableFunc is a table-valued function call in FROM, e.g.
// train_rf((SELECT ...), 16). Arguments are either subqueries or
// scalar expressions.
type TableFunc struct {
	Name  string
	Args  []TableFuncArg
	Alias string
}

// TableFuncArg is one argument to a table function.
type TableFuncArg struct {
	Query *Select // set for subquery arguments
	Expr  Expr    // set for scalar arguments
}

func (*BaseTable) tableRef()     {}
func (*SubqueryTable) tableRef() {}
func (*TableFunc) tableRef()     {}

// --------------------------------------------------------------- expressions

// ColumnRef references a column, optionally qualified by table alias.
type ColumnRef struct {
	Table string // "" when unqualified
	Name  string
}

// Literal is a constant value.
type Literal struct {
	Value vector.Value
}

// BinaryOp identifies a binary operator.
type BinaryOp uint8

// Binary operators.
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpConcat
)

func (op BinaryOp) String() string {
	return [...]string{"+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "||"}[op]
}

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op    BinaryOp
	Left  Expr
	Right Expr
}

// UnaryExpr applies unary minus or NOT.
type UnaryExpr struct {
	Neg     bool // true: -x, false: NOT x
	Operand Expr
}

// IsNullExpr is expr IS [NOT] NULL.
type IsNullExpr struct {
	Operand Expr
	Negate  bool
}

// FuncCall is a scalar or aggregate function call. Star marks
// COUNT(*). Distinct marks COUNT(DISTINCT x) style calls.
type FuncCall struct {
	Name     string // lower-cased
	Args     []Expr
	Star     bool
	Distinct bool
}

// CaseExpr is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN/THEN pair.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// CastExpr is CAST(expr AS type).
type CastExpr struct {
	Operand Expr
	To      vector.Type
}

// InExpr is expr [NOT] IN (e1, e2, ...).
type InExpr struct {
	Operand Expr
	List    []Expr
	Negate  bool
}

func (*ColumnRef) expr()  {}
func (*Literal) expr()    {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*IsNullExpr) expr() {}
func (*FuncCall) expr()   {}
func (*CaseExpr) expr()   {}
func (*CastExpr) expr()   {}
func (*InExpr) expr()     {}

// AggregateNames is the set of built-in aggregate function names.
var AggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// IsAggregate reports whether the expression tree contains an
// aggregate function call at its top level scope (not inside a nested
// subquery, which the AST does not allow in expressions).
func IsAggregate(e Expr) bool {
	switch x := e.(type) {
	case *FuncCall:
		if AggregateNames[strings.ToLower(x.Name)] {
			return true
		}
		for _, a := range x.Args {
			if IsAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return IsAggregate(x.Left) || IsAggregate(x.Right)
	case *UnaryExpr:
		return IsAggregate(x.Operand)
	case *IsNullExpr:
		return IsAggregate(x.Operand)
	case *CastExpr:
		return IsAggregate(x.Operand)
	case *CaseExpr:
		if x.Operand != nil && IsAggregate(x.Operand) {
			return true
		}
		for _, w := range x.Whens {
			if IsAggregate(w.Cond) || IsAggregate(w.Then) {
				return true
			}
		}
		if x.Else != nil {
			return IsAggregate(x.Else)
		}
	case *InExpr:
		if IsAggregate(x.Operand) {
			return true
		}
		for _, i := range x.List {
			if IsAggregate(i) {
				return true
			}
		}
	}
	return false
}
