// Package sql implements the SQL front-end of the engine: a hand
// written lexer and recursive-descent parser producing the AST
// consumed by the planner. The dialect covers the subset needed by the
// paper's workloads: DDL, INSERT/DELETE/UPDATE, and SELECT with joins,
// grouping, ordering, table-valued functions and vectorized UDF calls.
package sql

import "fmt"

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokInt
	TokFloat
	TokString
	TokSymbol // operators and punctuation, e.g. "(", ",", "<="
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return t.Text
	}
}

// keywords is the set of reserved words recognized by the lexer.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "ASC": true,
	"DESC": true, "AS": true, "AND": true, "OR": true, "NOT": true,
	"NULL": true, "TRUE": true, "FALSE": true, "IS": true, "IN": true,
	"BETWEEN": true, "CASE": true, "WHEN": true, "THEN": true, "ELSE": true,
	"END": true, "CAST": true, "CREATE": true, "TABLE": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true, "DELETE": true,
	"UPDATE": true, "SET": true, "JOIN": true, "INNER": true, "LEFT": true,
	"OUTER": true, "ON": true, "DISTINCT": true, "IF": true, "EXISTS": true,
	"UNION": true, "ALL": true, "EXPLAIN": true, "ANALYZE": true,
}
