package engine

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"vexdb/internal/exec"
	"vexdb/internal/vector"
)

// streamDB builds a database whose tables span many storage segments,
// so streamed delivery produces multiple chunks.
func streamDB(t *testing.T, rows int) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE ev (id BIGINT, grp INTEGER, score DOUBLE, tag VARCHAR)")
	mustExec(t, db, "CREATE TABLE grps (grp INTEGER, label VARCHAR)")
	for lo := 0; lo < rows; lo += 1000 {
		hi := lo + 1000
		if hi > rows {
			hi = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO ev VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "(%d, %d, %g, 'tag%d')", i, i%13, float64(i%997)*0.25, i%7)
		}
		mustExec(t, db, sb.String())
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO grps VALUES ")
	for g := 0; g < 13; g++ {
		if g > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, 'group-%d')", g, g)
	}
	mustExec(t, db, sb.String())
	return db
}

func drainResultSet(t *testing.T, rs *ResultSet) *vector.Table {
	t.Helper()
	tab, err := rs.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func tablesEqual(t *testing.T, q string, a, b *vector.Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		t.Fatalf("%s: dims %dx%d vs %dx%d", q, a.NumCols(), a.NumRows(), b.NumCols(), b.NumRows())
	}
	for c := range a.Cols {
		if a.Names[c] != b.Names[c] {
			t.Fatalf("%s: column %d name %q vs %q", q, c, a.Names[c], b.Names[c])
		}
		for r := 0; r < a.NumRows(); r++ {
			av, bv := a.Cols[c].Get(r), b.Cols[c].Get(r)
			if av.String() != bv.String() {
				t.Fatalf("%s: row %d col %q: %v vs %v", q, r, a.Names[c], av, bv)
			}
		}
	}
}

// Streamed results must be row-identical to the materialized Exec path
// for every plan shape, at every worker count.
func TestStreamedMatchesExec(t *testing.T) {
	db := streamDB(t, 10_000)
	queries := []string{
		"SELECT id, score FROM ev",
		"SELECT id, score * 2 AS s2 FROM ev WHERE grp = 3",
		"SELECT grp, count(*) AS n, sum(score) AS total FROM ev GROUP BY grp",
		"SELECT e.id, g.label FROM ev e JOIN grps g ON e.grp = g.grp WHERE e.id < 500",
		"SELECT id FROM ev ORDER BY score, id LIMIT 100",
		"SELECT DISTINCT tag FROM ev",
		"SELECT id FROM ev LIMIT 10 OFFSET 4000",
	}
	for _, workers := range []int{1, 2, 8} {
		db.Parallelism = workers
		for _, q := range queries {
			res, err := db.Exec(q)
			if err != nil {
				t.Fatalf("exec %s: %v", q, err)
			}
			rs, err := db.Query(q)
			if err != nil {
				t.Fatalf("stream %s: %v", q, err)
			}
			streamed := drainResultSet(t, rs)
			tablesEqual(t, fmt.Sprintf("w=%d %s", workers, q), res.Table, streamed)
		}
	}
}

// A mid-stream failure (bad cast in a late storage segment) must
// deliver the leading chunks and then surface the error from Next.
func TestStreamMidStreamError(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE s (v VARCHAR)")
	const rows = 20_000
	for lo := 0; lo < rows; lo += 1000 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO s VALUES ")
		for i := lo; i < lo+1000; i++ {
			if i > lo {
				sb.WriteByte(',')
			}
			if i == rows-500 {
				sb.WriteString("('oops')")
				continue
			}
			fmt.Fprintf(&sb, "('%d')", i)
		}
		mustExec(t, db, sb.String())
	}
	for _, workers := range []int{1, 2, 8} {
		db.Parallelism = workers
		rs, err := db.Query("SELECT CAST(v AS BIGINT) AS n FROM s")
		if err != nil {
			t.Fatalf("w=%d: open: %v", workers, err)
		}
		var chunks, rowsSeen int
		var streamErr error
		for {
			ch, err := rs.Next()
			if err != nil {
				streamErr = err
				break
			}
			if ch == nil {
				break
			}
			chunks++
			rowsSeen += ch.NumRows()
		}
		if streamErr == nil {
			t.Fatalf("w=%d: bad cast did not surface", workers)
		}
		if !strings.Contains(streamErr.Error(), "oops") {
			t.Fatalf("w=%d: err = %v", workers, streamErr)
		}
		if chunks == 0 {
			t.Fatalf("w=%d: no chunks delivered before the failure", workers)
		}
		if rowsSeen >= rows {
			t.Fatalf("w=%d: %d rows delivered despite row-level error", workers, rowsSeen)
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("w=%d: close: %v", workers, err)
		}
	}
}

// Row-less statements report RowsAffected through the streaming API.
func TestQueryRowsAffected(t *testing.T) {
	db := New()
	rs, err := db.Query("CREATE TABLE w (a BIGINT)")
	if err != nil {
		t.Fatal(err)
	}
	if rs.HasRows() || rs.RowsAffected() != 0 {
		t.Fatalf("create: HasRows=%v affected=%d", rs.HasRows(), rs.RowsAffected())
	}
	rs, err = db.Query("INSERT INTO w VALUES (1), (2), (3)")
	if err != nil {
		t.Fatal(err)
	}
	if rs.HasRows() || rs.RowsAffected() != 3 {
		t.Fatalf("insert: HasRows=%v affected=%d", rs.HasRows(), rs.RowsAffected())
	}
	if ch, err := rs.Next(); ch != nil || err != nil {
		t.Fatalf("row-less Next = %v, %v", ch, err)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
}

// Cancel from another goroutine must terminate a long aggregation.
func TestResultSetCancel(t *testing.T) {
	db := streamDB(t, 30_000)
	db.Parallelism = 4
	rs, err := db.Query("SELECT grp, sum(score) AS s FROM ev GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	rs.Cancel()
	_, nerr := rs.Next()
	if nerr == nil {
		// The aggregation may have finished before the cancel landed;
		// that is acceptable — only a hang or panic would be a bug.
		t.Log("aggregation completed before cancellation")
	} else if !errors.Is(nerr, exec.ErrCancelled) {
		t.Fatalf("err = %v", nerr)
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
}
