// Package engine ties the SQL front-end, planner, executor, storage
// and UDF registry into a database instance. It is wrapped by the
// public vexdb package.
package engine

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"vexdb/internal/catalog"
	"vexdb/internal/core"
	"vexdb/internal/exec"
	"vexdb/internal/governor"
	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
	"vexdb/internal/wal"
)

// ErrQueryTimeout is returned (wrapped) when a query exceeds the
// database's QueryTimeout — whether it expired waiting in the
// admission queue or mid-execution.
var ErrQueryTimeout = errors.New("engine: query deadline exceeded")

// DB is one database instance: a catalog of tables plus a UDF
// registry. Queries may run concurrently; SELECTs pin a catalog
// snapshot and never block on writers. DML statements to different
// tables run concurrently (serialized per table), DDL and checkpoints
// quiesce all writers.
type DB struct {
	cat *catalog.Catalog
	reg *core.Registry

	// ddlMu is the statement-class lock: DML (INSERT/DELETE/UPDATE)
	// holds it shared — concurrent writers to different tables proceed
	// in parallel, ordered per table by Table.LockWrites — while DDL
	// (CREATE/DROP) and checkpoints hold it exclusively to see a
	// quiesced catalog. SELECTs never take it.
	ddlMu sync.RWMutex

	// wal, when non-nil, makes every write durable: its record is
	// appended (and per SyncMode fsynced via group commit) before the
	// statement is acknowledged, and recovery replays the log on open.
	wal     *wal.Log
	walDir  string
	closeMu sync.Mutex
	closed  bool

	// Parallelism bounds the morsel-driven parallel executor and
	// partitioned UDF evaluation (0 = NumCPU).
	Parallelism int

	// MemoryBudget bounds the estimated bytes a query's blocking
	// operators (hash aggregation, join build, sort) may hold in
	// memory; over-budget state grace-partitions or spills sorted
	// runs to temp files under TempDir and results are unchanged.
	// 0 = unlimited (spilling disabled).
	MemoryBudget int64

	// TempDir hosts per-query spill directories when MemoryBudget
	// forces out-of-core execution; empty means os.TempDir().
	TempDir string

	// Gov, when non-nil, is the process-wide resource governor: every
	// SELECT admits through it before executing, leasing its memory
	// budget and worker count from the shared pools instead of the
	// per-query fields above (MemoryBudget still applies as a per-query
	// cap when smaller than the lease). Writes (DDL/DML) are serialized
	// by ddlMu and do not admit; their embedded SELECTs (CTAS,
	// INSERT..SELECT) run ungoverned under the write lock.
	Gov *governor.Governor

	// QueryTimeout bounds each governed query's wall-clock time —
	// admission wait plus execution; expiry cancels the stream with
	// ErrQueryTimeout at the same checkpoints as cancellation.
	// 0 = no deadline.
	QueryTimeout time.Duration

	// NoCostPlanner disables the cost-based planning pass (join
	// reordering, build-side selection, execution hints); plans then
	// execute exactly as bound. Results are identical either way — the
	// flag exists for benchmarking and differential testing.
	NoCostPlanner bool
}

// New creates an empty in-memory database with the built-in scalar
// function library registered.
func New() *DB {
	reg := core.NewRegistry()
	core.RegisterBuiltins(reg)
	return &DB{cat: catalog.New(), reg: reg}
}

// Catalog exposes the database catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Registry exposes the UDF registry.
func (db *DB) Registry() *core.Registry { return db.reg }

// Result is a materialized query result.
type Result struct {
	// Table holds the result rows; nil for statements without results.
	Table *vector.Table
	// RowsAffected counts rows written by INSERT/DELETE/UPDATE.
	RowsAffected int64
}

// Exec parses and executes one SQL statement.
func (db *DB) Exec(query string) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(stmt)
}

// ExecScript executes a semicolon-separated script, returning the
// result of the last statement.
func (db *DB) ExecScript(script string) (*Result, error) {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return nil, err
	}
	var res *Result
	for _, s := range stmts {
		res, err = db.ExecStmt(s)
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ExecStmt executes a parsed statement.
func (db *DB) ExecStmt(stmt sql.Statement) (*Result, error) {
	switch s := stmt.(type) {
	case *sql.Select:
		tab, err := db.RunSelect(s)
		if err != nil {
			return nil, err
		}
		return &Result{Table: tab}, nil
	case *sql.Explain:
		rs, err := db.explain(nil, s)
		if err != nil {
			return nil, err
		}
		tab, err := rs.Materialize()
		if err != nil {
			return nil, err
		}
		return &Result{Table: tab}, nil
	case *sql.CreateTable:
		return db.execCreate(s)
	case *sql.DropTable:
		return db.execDrop(s)
	case *sql.Insert:
		return db.execInsert(s)
	case *sql.Delete:
		return db.execDelete(s)
	case *sql.Update:
		return db.execUpdate(s)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
}

// RunSelect binds and executes a SELECT, returning the materialized
// result. It is a thin wrapper over the streaming path (StreamSelect)
// for callers that want the whole relation at once.
func (db *DB) RunSelect(s *sql.Select) (*vector.Table, error) {
	stream, err := db.StreamSelect(s)
	if err != nil {
		return nil, err
	}
	defer stream.Close()
	return stream.Materialize()
}

func (db *DB) execCreate(s *sql.CreateTable) (*Result, error) {
	// CTAS evaluates its SELECT before taking the DDL lock: the read
	// pins its own snapshot and must not hold up concurrent writers.
	var ctasRows *vector.Table
	var schema catalog.Schema
	if s.AsSelect != nil {
		tab, err := db.RunSelect(s.AsSelect)
		if err != nil {
			return nil, err
		}
		ctasRows = tab
		schema = make(catalog.Schema, tab.NumCols())
		for i, name := range tab.Names {
			schema[i] = catalog.Column{Name: name, Type: tab.Cols[i].Type()}
		}
	} else {
		schema = make(catalog.Schema, len(s.Columns))
		for i, c := range s.Columns {
			schema[i] = catalog.Column{Name: c.Name, Type: c.Type}
		}
	}

	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if s.IfNotExists && db.cat.HasTable(s.Name) {
		return &Result{}, nil
	}
	// One record carries schema and (for CTAS) rows, so the statement
	// replays atomically: a torn tail drops it whole, never half.
	rec := &wal.Record{Type: wal.RecCreate, Table: s.Name, Cols: walSchema(schema)}
	if ctasRows != nil && ctasRows.NumRows() > 0 {
		rec.Chunk = ctasRows.Chunk()
	}
	lsn, err := db.walAppend(rec)
	if err != nil {
		return nil, err
	}
	ct, err := db.cat.CreateTable(s.Name, schema)
	if err != nil {
		return nil, err
	}
	var affected int64
	if ctasRows != nil && ctasRows.NumRows() > 0 {
		if err := ct.Data.AppendChunk(ctasRows.Chunk()); err != nil {
			return nil, err
		}
		affected = int64(ctasRows.NumRows())
	}
	if err := db.walCommit(lsn); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: affected}, nil
}

func (db *DB) execDrop(s *sql.DropTable) (*Result, error) {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if s.IfExists && !db.cat.HasTable(s.Name) {
		return &Result{}, nil
	}
	if !db.cat.HasTable(s.Name) {
		return nil, fmt.Errorf("catalog: table %q does not exist", s.Name)
	}
	lsn, err := db.walAppend(&wal.Record{Type: wal.RecDrop, Table: s.Name})
	if err != nil {
		return nil, err
	}
	if err := db.cat.DropTable(s.Name); err != nil {
		return nil, err
	}
	if err := db.walCommit(lsn); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

func (db *DB) execInsert(s *sql.Insert) (*Result, error) {
	// Shared statement lock: INSERTs into different tables run
	// concurrently; only DDL and checkpoints exclude us.
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	tab, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	// Map the insert column list to table positions.
	colIdx := make([]int, 0, len(tab.Schema))
	if s.Columns == nil {
		for i := range tab.Schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range s.Columns {
			i := tab.Schema.IndexOf(name)
			if i < 0 {
				return nil, fmt.Errorf("engine: table %s has no column %q", s.Table, name)
			}
			colIdx = append(colIdx, i)
		}
	}

	buildChunk := func(src *vector.Table) (*vector.Chunk, error) {
		if src.NumCols() != len(colIdx) {
			return nil, fmt.Errorf("engine: INSERT provides %d columns, expected %d", src.NumCols(), len(colIdx))
		}
		n := src.NumRows()
		cols := make([]*vector.Vector, len(tab.Schema))
		provided := make(map[int]int)
		for j, ti := range colIdx {
			provided[ti] = j
		}
		for i, col := range tab.Schema {
			if j, ok := provided[i]; ok {
				c := src.Cols[j]
				if c.Type() != col.Type {
					cc, err := c.Cast(col.Type)
					if err != nil {
						return nil, fmt.Errorf("engine: column %q: %w", col.Name, err)
					}
					c = cc
				}
				cols[i] = c
				continue
			}
			// Unspecified columns get NULL.
			v := vector.New(col.Type, n)
			for r := 0; r < n; r++ {
				v.AppendValue(vector.Null())
			}
			cols[i] = v
		}
		return vector.NewChunk(cols...), nil
	}

	// Build the statement's rows as ONE chunk before any table lock:
	// a single WAL record and a single store append give readers
	// statement atomicity and replay all-or-nothing semantics.
	var ch *vector.Chunk
	if s.Query != nil {
		src, err := db.RunSelect(s.Query)
		if err != nil {
			return nil, err
		}
		ch, err = buildChunk(src)
		if err != nil {
			return nil, err
		}
	} else {
		// Literal VALUES rows, evaluated column-wise into one chunk.
		binder := plan.NewBinder(db.cat, db.reg)
		n := len(s.Rows)
		cols := make([]*vector.Vector, len(tab.Schema))
		for i, col := range tab.Schema {
			cols[i] = vector.New(col.Type, n)
		}
		for _, row := range s.Rows {
			if len(row) != len(colIdx) {
				return nil, fmt.Errorf("engine: INSERT row has %d values, expected %d", len(row), len(colIdx))
			}
			vals := make([]vector.Value, len(tab.Schema))
			for i := range vals {
				vals[i] = vector.Null()
			}
			for j, e := range row {
				bound, err := bindConst(binder, e)
				if err != nil {
					return nil, err
				}
				v, err := exec.EvalConst(bound)
				if err != nil {
					return nil, err
				}
				vals[colIdx[j]] = v
			}
			for i, v := range vals {
				if !v.IsNull() && v.Type() != tab.Schema[i].Type {
					cv, err := castValue(v, tab.Schema[i].Type)
					if err != nil {
						return nil, fmt.Errorf("engine: column %q: %w", tab.Schema[i].Name, err)
					}
					v = cv
				}
				cols[i].AppendValue(v)
			}
		}
		ch = vector.NewChunk(cols...)
	}
	if ch.NumRows() == 0 {
		return &Result{}, nil
	}

	tab.LockWrites()
	lsn, err := db.walAppend(&wal.Record{Type: wal.RecInsert, Table: tab.Name, Chunk: ch})
	if err != nil {
		tab.UnlockWrites()
		return nil, err
	}
	if err := tab.Data.AppendChunk(ch); err != nil {
		tab.UnlockWrites()
		return nil, err
	}
	tab.UnlockWrites()
	// Durability wait happens outside the table lock, so committers of
	// concurrent statements share one fsync (group commit).
	if err := db.walCommit(lsn); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: int64(ch.NumRows())}, nil
}

// castValue coerces a single literal to the column type by routing it
// through a one-row vector cast (the same coercions INSERT..SELECT
// applies column-wise).
func castValue(v vector.Value, t vector.Type) (vector.Value, error) {
	tmp := vector.New(v.Type(), 1)
	tmp.AppendValue(v)
	cv, err := tmp.Cast(t)
	if err != nil {
		return vector.Value{}, err
	}
	return cv.Get(0), nil
}

// CreateTableFrom creates a table from an already materialized
// relation (the bulk-load fast path). Schema and rows travel in one
// WAL record, like CTAS, so the load replays all-or-nothing.
func (db *DB) CreateTableFrom(name string, schema catalog.Schema, ch *vector.Chunk) error {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	rec := &wal.Record{Type: wal.RecCreate, Table: name, Cols: walSchema(schema)}
	if ch != nil && ch.NumRows() > 0 {
		rec.Chunk = ch
	}
	lsn, err := db.walAppend(rec)
	if err != nil {
		return err
	}
	ct, err := db.cat.CreateTable(name, schema)
	if err != nil {
		return err
	}
	if ch != nil && ch.NumRows() > 0 {
		if err := ct.Data.AppendChunk(ch); err != nil {
			return err
		}
	}
	return db.walCommit(lsn)
}

// bindConst binds an expression with no visible columns.
func bindConst(b *plan.Binder, e sql.Expr) (plan.Expr, error) {
	sel := &sql.Select{Items: []sql.SelectItem{{Expr: e}}}
	node, err := b.BindSelect(sel)
	if err != nil {
		return nil, err
	}
	proj, ok := node.(*plan.Project)
	if !ok || len(proj.Exprs) != 1 {
		return nil, fmt.Errorf("engine: expected constant expression")
	}
	return proj.Exprs[0], nil
}

// execDelete rewrites the table keeping rows where the predicate is
// not TRUE (column-store style copy-on-delete). The read, rewrite and
// publish happen under the table's write lock so a concurrent INSERT
// can neither be lost nor double-applied; the rewrite is logged as a
// single RecReplace record (or RecTruncate for the unqualified form)
// so replay is all-or-nothing.
func (db *DB) execDelete(s *sql.Delete) (*Result, error) {
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	tab, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	tab.LockWrites()
	if s.Where == nil {
		n := tab.Data.NumRows()
		lsn, err := db.walAppend(&wal.Record{Type: wal.RecTruncate, Table: tab.Name})
		if err != nil {
			tab.UnlockWrites()
			return nil, err
		}
		tab.Data.Truncate()
		tab.UnlockWrites()
		if err := db.walCommit(lsn); err != nil {
			return nil, err
		}
		return &Result{RowsAffected: int64(n)}, nil
	}
	keep, removed, err := db.partitionRows(tab, s.Where)
	if err != nil {
		tab.UnlockWrites()
		return nil, err
	}
	lsn, err := db.replaceLocked(tab, keep.Chunk())
	tab.UnlockWrites()
	if err != nil {
		return nil, err
	}
	if err := db.walCommit(lsn); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: removed}, nil
}

// replaceLocked logs and applies an atomic whole-table substitution.
// Caller holds tab's write lock.
func (db *DB) replaceLocked(tab *catalog.Table, ch *vector.Chunk) (uint64, error) {
	lsn, err := db.walAppend(&wal.Record{Type: wal.RecReplace, Table: tab.Name, Chunk: ch})
	if err != nil {
		return 0, err
	}
	if err := tab.Data.Replace(ch); err != nil {
		return 0, err
	}
	return lsn, nil
}

// partitionRows evaluates pred over the whole table and returns the
// rows where it is not TRUE, plus the count of removed rows.
func (db *DB) partitionRows(tab *catalog.Table, pred sql.Expr) (*vector.Table, int64, error) {
	binder := plan.NewBinder(db.cat, db.reg)
	sc := newTableScope(tab)
	bound, err := binder.BindExprIn(pred, sc)
	if err != nil {
		return nil, 0, err
	}
	full, err := materializeTable(tab)
	if err != nil {
		return nil, 0, err
	}
	ch := full.Chunk()
	if ch.NumRows() == 0 {
		return full, 0, nil
	}
	pv, err := exec.Evaluate(bound, ch)
	if err != nil {
		return nil, 0, err
	}
	if pv.Type() != vector.Bool {
		return nil, 0, fmt.Errorf("engine: WHERE predicate must be boolean")
	}
	var keepSel []int
	var removed int64
	for i := 0; i < ch.NumRows(); i++ {
		if !pv.IsNull(i) && pv.Bools()[i] {
			removed++
			continue
		}
		keepSel = append(keepSel, i)
	}
	kept := ch.Gather(keepSel)
	out, err := vector.NewTable(tab.Schema.Names(), kept.Cols())
	if err != nil {
		return nil, 0, err
	}
	return out, removed, nil
}

// execUpdate rewrites the table applying SET expressions to matching
// rows. Like DELETE it reads and republishes under the table's write
// lock and logs one RecReplace record.
func (db *DB) execUpdate(s *sql.Update) (*Result, error) {
	db.ddlMu.RLock()
	defer db.ddlMu.RUnlock()
	tab, err := db.cat.Table(s.Table)
	if err != nil {
		return nil, err
	}
	binder := plan.NewBinder(db.cat, db.reg)
	sc := newTableScope(tab)

	tab.LockWrites()
	locked := true
	defer func() {
		if locked {
			tab.UnlockWrites()
		}
	}()
	full, err := materializeTable(tab)
	if err != nil {
		return nil, err
	}
	ch := full.Chunk()
	n := ch.NumRows()
	if n == 0 {
		return &Result{}, nil
	}

	match := make([]bool, n)
	if s.Where == nil {
		for i := range match {
			match[i] = true
		}
	} else {
		bound, err := binder.BindExprIn(s.Where, sc)
		if err != nil {
			return nil, err
		}
		pv, err := exec.Evaluate(bound, ch)
		if err != nil {
			return nil, err
		}
		if pv.Type() != vector.Bool {
			return nil, fmt.Errorf("engine: WHERE predicate must be boolean")
		}
		for i := 0; i < n; i++ {
			match[i] = !pv.IsNull(i) && pv.Bools()[i]
		}
	}

	var affected int64
	for _, m := range match {
		if m {
			affected++
		}
	}

	for _, asn := range s.Set {
		ci := tab.Schema.IndexOf(asn.Column)
		if ci < 0 {
			return nil, fmt.Errorf("engine: table %s has no column %q", s.Table, asn.Column)
		}
		bound, err := binder.BindExprIn(asn.Value, sc)
		if err != nil {
			return nil, err
		}
		nv, err := exec.Evaluate(bound, ch)
		if err != nil {
			return nil, err
		}
		colType := tab.Schema[ci].Type
		if nv.Type() != colType {
			nv, err = nv.Cast(colType)
			if err != nil {
				return nil, fmt.Errorf("engine: column %q: %w", asn.Column, err)
			}
		}
		old := full.Cols[ci]
		merged := vector.New(colType, n)
		for i := 0; i < n; i++ {
			if match[i] {
				merged.AppendValue(nv.Get(i))
			} else {
				merged.AppendValue(old.Get(i))
			}
		}
		full.Cols[ci] = merged
	}

	lsn, err := db.replaceLocked(tab, full.Chunk())
	tab.UnlockWrites()
	locked = false
	if err != nil {
		return nil, err
	}
	if err := db.walCommit(lsn); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: affected}, nil
}

func materializeTable(tab *catalog.Table) (*vector.Table, error) {
	cols := make([]*vector.Vector, len(tab.Schema))
	for i := range tab.Schema {
		c, err := tab.Data.Column(i)
		if err != nil {
			return nil, fmt.Errorf("engine: table %s: %w", tab.Name, err)
		}
		cols[i] = c
	}
	out, err := vector.NewTable(tab.Schema.Names(), cols)
	if err != nil {
		// Columns come straight from storage; lengths always match.
		panic(err)
	}
	return out, nil
}

func newTableScope(tab *catalog.Table) *plan.TableScope {
	return plan.NewTableScope(tab)
}

// ----------------------------------------------------------- persistence

// SaveDir writes every table to dir as <name>.vxtb files.
func (db *DB) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range db.cat.TableNames() {
		tab, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, strings.ToLower(name)+".vxtb")
		if err := storage.SaveTableFile(path, tab.Schema.Names(), tab.Data); err != nil {
			return fmt.Errorf("engine: save table %s: %w", name, err)
		}
	}
	return nil
}

// LoadDir attaches every *.vxtb table file found in dir.
func (db *DB) LoadDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".vxtb") {
			continue
		}
		names, store, err := storage.LoadTableFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return fmt.Errorf("engine: load %s: %w", e.Name(), err)
		}
		schema := make(catalog.Schema, len(names))
		for i, n := range names {
			schema[i] = catalog.Column{Name: n, Type: store.Types()[i]}
		}
		tabName := strings.TrimSuffix(e.Name(), ".vxtb")
		if err := db.cat.AttachTable(&catalog.Table{Name: tabName, Schema: schema, Data: store}); err != nil {
			return err
		}
	}
	return nil
}
