package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"vexdb/internal/vector"
)

// loadNaNTable populates a multi-segment table whose DOUBLE column
// carries NaN (via sqrt(-1)) and NULL rows mixed with duplicated
// finite values — the adversarial inputs for ORDER BY and DISTINCT
// aggregation.
func loadNaNTable(t *testing.T, db *DB, rows int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE nf (id BIGINT, g INTEGER, v DOUBLE)")
	var sb strings.Builder
	flushed := 0
	for i := 0; i < rows; i++ {
		if sb.Len() == 0 {
			sb.WriteString("INSERT INTO nf VALUES ")
		} else {
			sb.WriteByte(',')
		}
		switch i % 53 {
		case 13:
			// NULL sort keys.
			fmt.Fprintf(&sb, "(%d, %d, NULL)", i, i%7)
		default:
			fmt.Fprintf(&sb, "(%d, %d, %g)", i, i%7, float64(i%19)-9)
		}
		if i-flushed >= 499 {
			mustExec(t, db, sb.String())
			sb.Reset()
			flushed = i + 1
		}
	}
	if sb.Len() > 0 {
		mustExec(t, db, sb.String())
	}
	// NaN rows: SQL has no NaN literal; sqrt(-1) produces one. Batch
	// them as UNION ALL chains of FROM-less selects.
	for lo := 0; lo < rows; lo += 53 * 40 {
		var nb strings.Builder
		nb.WriteString("INSERT INTO nf ")
		first := true
		for i := lo + 29; i < lo+53*40 && i < rows; i += 53 {
			if !first {
				nb.WriteString(" UNION ALL ")
			}
			first = false
			fmt.Fprintf(&nb, "SELECT CAST(%d AS BIGINT), CAST(%d AS INTEGER), sqrt(-1.0)", rows+i, i%7)
		}
		if !first {
			mustExec(t, db, nb.String())
		}
	}
}

// streamRows drains a query through the chunk-pull path (ResultSet
// Next loop), so the comparison covers incremental delivery, not just
// Materialize.
func streamRows(t *testing.T, db *DB, q string) *vector.Table {
	t.Helper()
	rs, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	defer rs.Close()
	cols := make([]*vector.Vector, len(rs.Schema()))
	for i, c := range rs.Schema() {
		cols[i] = vector.New(c.Type, 0)
	}
	tab, err := vector.NewTable(rs.Schema().Names(), cols)
	if err != nil {
		t.Fatal(err)
	}
	for {
		ch, err := rs.Next()
		if err != nil {
			t.Fatalf("stream %q: %v", q, err)
		}
		if ch == nil {
			return tab
		}
		if err := tab.AppendChunk(ch); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDifferentialParallelSortAndDistinctAgg: ORDER BY and DISTINCT
// aggregates must be row-identical between serial and parallel
// execution at workers 1/2/8, materialized and streamed, including
// NaN- and NULL-bearing sort keys.
func TestDifferentialParallelSortAndDistinctAgg(t *testing.T) {
	db := New()
	db.Parallelism = 1
	loadNaNTable(t, db, 6_000)
	queries := []string{
		// parallel sort over NaN/NULL keys, asc and desc, multi-key
		"SELECT id, v FROM nf ORDER BY v, id",
		"SELECT id, v FROM nf ORDER BY v DESC, id DESC",
		"SELECT id, g, v FROM nf ORDER BY g, v DESC, id",
		// sort above a filter; expression keys
		"SELECT id, v FROM nf WHERE g < 5 ORDER BY v * -1, id",
		// LIMIT/OFFSET push the bound into the merge
		"SELECT id, v FROM nf ORDER BY v, id LIMIT 100",
		"SELECT id, v FROM nf ORDER BY v, id LIMIT 64 OFFSET 4000",
		"SELECT id FROM nf ORDER BY id LIMIT 0",
		// DISTINCT aggregates, global and grouped, mixed with plain
		"SELECT count(DISTINCT v) AS cd, sum(DISTINCT v) AS sd, count(*) AS n FROM nf",
		"SELECT g, count(DISTINCT v) AS cd, avg(DISTINCT v) AS ad, min(DISTINCT v) AS mn, max(DISTINCT v) AS mx FROM nf GROUP BY g",
		"SELECT g, count(DISTINCT id) AS cd FROM nf WHERE v > 0 GROUP BY g",
		// SELECT DISTINCT rides the partitioned-aggregation rewrite
		"SELECT DISTINCT g FROM nf",
		"SELECT DISTINCT g, v FROM nf WHERE id < 2000",
	}
	for _, q := range queries {
		db.Parallelism = 1
		serial, err := db.Exec(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		want := renderTable(t, serial.Table)
		for _, workers := range parallelWorkerCounts {
			db.Parallelism = workers
			got, err := db.Exec(q)
			if err != nil {
				t.Fatalf("workers=%d %q: %v", workers, q, err)
			}
			compareRendered(t, q, workers, "materialized", renderTable(t, got.Table), want)
			compareRendered(t, q, workers, "streamed", renderTable(t, streamRows(t, db, q)), want)
		}
		db.Parallelism = 1
	}
}

func compareRendered(t *testing.T, q string, workers int, mode string, rows, want []string) {
	t.Helper()
	if len(rows) != len(want) {
		t.Fatalf("workers=%d %s %q: %d rows, serial %d", workers, mode, q, len(rows), len(want))
	}
	for i := range rows {
		if rows[i] != want[i] {
			t.Fatalf("workers=%d %s %q row %d:\n  got  %s\n  want %s", workers, mode, q, i, rows[i], want[i])
		}
	}
}

// TestOrderByNaNDeterministic: repeated runs of an ORDER BY over a
// NaN-bearing column must return the identical permutation every time
// — the pre-total-order comparator made this nondeterministic — with
// NaN after every finite value ascending and NULLs last.
func TestOrderByNaNDeterministic(t *testing.T) {
	db := New()
	db.Parallelism = 8
	loadNaNTable(t, db, 3_000)
	const q = "SELECT id, v FROM nf ORDER BY v, id"
	first := renderTable(t, mustQuery(t, db, q))
	for run := 0; run < 5; run++ {
		again := renderTable(t, mustQuery(t, db, q))
		if len(again) != len(first) {
			t.Fatalf("run %d: %d rows, first %d", run, len(again), len(first))
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d row %d: %s, first run %s — ORDER BY over NaN is nondeterministic",
					run, i, again[i], first[i])
			}
		}
	}
	// Class ordering: finite < NaN < NULL ascending.
	tab := mustQuery(t, db, q)
	v := tab.Column("v")
	state, nan := 0, 0
	for i := 0; i < v.Len(); i++ {
		var s int
		switch {
		case v.IsNull(i):
			s = 2
		case math.IsNaN(v.Float64s()[i]):
			s = 1
			nan++
		}
		if s < state {
			t.Fatalf("row %d: class %d after class %d", i, s, state)
		}
		state = s
	}
	if nan == 0 {
		t.Fatal("test table carries no NaN rows; the determinism check is vacuous")
	}
	if state != 2 {
		t.Fatal("expected NULLs at the tail")
	}
}

// TestWhereNaNSemantics: WHERE comparisons follow IEEE semantics —
// NaN satisfies no predicate except <> — matching the zone-map
// pruning premise (NaN is excluded from segment bounds), while ORDER
// BY uses the total order. Before floatCmpToBool, NaN compared equal
// to everything, so `v = 5` silently matched NaN rows and pruned vs
// unpruned scans could disagree.
func TestWhereNaNSemantics(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE wn (id BIGINT, v DOUBLE)")
	mustExec(t, db, "INSERT INTO wn VALUES (1, 1.0), (2, 5.0), (3, NULL)")
	mustExec(t, db, "INSERT INTO wn SELECT CAST(4 AS BIGINT), sqrt(-1.0)")
	count := func(pred string) int64 {
		tab := mustQuery(t, db, "SELECT count(*) AS n FROM wn WHERE "+pred)
		return tab.Column("n").Get(0).Int64()
	}
	cases := []struct {
		pred string
		want int64
	}{
		{"v = 5", 1},  // not the NaN row
		{"v <= 1", 1}, // not the NaN row
		{"v >= 1", 2},
		{"v < 100", 2},
		{"v > 0", 2},
		{"v <> 5", 2}, // 1.0 and NaN; NULL row stays excluded
	}
	for _, c := range cases {
		for _, workers := range parallelWorkerCounts {
			db.Parallelism = workers
			if got := count(c.pred); got != c.want {
				t.Fatalf("workers=%d WHERE %s: count %d, want %d", workers, c.pred, got, c.want)
			}
		}
		db.Parallelism = 1
	}
}

// TestLimitOffsetChunkBoundaries pins limitOp's slicing at chunk
// boundaries: offsets landing mid-chunk, spanning whole chunks, and
// offset+count inside a single chunk must all return the same rows
// across serial, parallel, and streamed execution.
func TestLimitOffsetChunkBoundaries(t *testing.T) {
	db := New()
	db.Parallelism = 1
	rows := 3*vector.DefaultChunkSize + 100 // 3 full segments + partial tail
	mustExec(t, db, "CREATE TABLE lt (id BIGINT)")
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		if i%500 == 0 {
			if sb.Len() > 0 {
				mustExec(t, db, sb.String())
				sb.Reset()
			}
			sb.WriteString("INSERT INTO lt VALUES ")
		} else {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d)", i)
	}
	if sb.Len() > 0 {
		mustExec(t, db, sb.String())
	}
	cs := vector.DefaultChunkSize
	cases := []struct {
		name          string
		limit, offset int
	}{
		{"offset-mid-chunk", 500, cs / 2},
		{"offset-spans-chunks", 300, 2*cs + 17},
		{"offset-and-count-inside-one-chunk", 50, 100},
		{"offset-at-chunk-boundary", 10, cs},
		{"count-crosses-boundary", cs, cs - 5},
		{"offset-past-input", 5, rows + 10},
		{"zero-count", 0, 10},
		{"tail-partial-chunk", 200, 3 * cs},
		// The executor treats a negative OFFSET as skip-nothing; the
		// Sort.Limit hint must not undercut that (workers>1 once
		// returned fewer rows here than serial).
		{"negative-offset", 10, -5},
	}
	for _, c := range cases {
		q := fmt.Sprintf("SELECT id FROM lt LIMIT %d OFFSET %d", c.limit, c.offset)
		qSorted := fmt.Sprintf("SELECT id FROM lt ORDER BY id LIMIT %d OFFSET %d", c.limit, c.offset)
		for _, query := range []string{q, qSorted} {
			effOff := c.offset
			if effOff < 0 {
				effOff = 0 // the executor skips nothing for negative offsets
			}
			wantN := c.limit
			if effOff >= rows {
				wantN = 0
			} else if effOff+c.limit > rows {
				wantN = rows - effOff
			}
			db.Parallelism = 1
			serial := mustQuery(t, db, query)
			if serial.NumRows() != wantN {
				t.Fatalf("%s serial %q: %d rows, want %d", c.name, query, serial.NumRows(), wantN)
			}
			for i := 0; i < serial.NumRows(); i++ {
				if got := serial.Column("id").Int64s()[i]; got != int64(effOff+i) {
					t.Fatalf("%s serial row %d: id %d, want %d", c.name, i, got, effOff+i)
				}
			}
			want := renderTable(t, serial)
			for _, workers := range parallelWorkerCounts {
				db.Parallelism = workers
				compareRendered(t, query, workers, "materialized",
					renderTable(t, mustQuery(t, db, query)), want)
				compareRendered(t, query, workers, "streamed",
					renderTable(t, streamRows(t, db, query)), want)
			}
			db.Parallelism = 1
		}
	}
}
