package engine

import (
	"fmt"
	"os"
	"testing"

	"vexdb/internal/vector"
)

// loadHighCard loads an unclustered high-cardinality table so
// aggregation, join build and sort all outgrow a small budget.
func loadHighCard(t *testing.T, db *DB, rows int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE h (id BIGINT, k BIGINT, v DOUBLE, s VARCHAR)")
	tab, err := db.cat.Table("h")
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, rows)
	ks := make([]int64, rows)
	vs := vector.New(vector.Float64, rows)
	ss := make([]string, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		ks[i] = int64((uint64(i) * 2654435761) % uint64(rows*3/4))
		if i%29 == 11 {
			vs.AppendValue(vector.Null())
		} else {
			vs.AppendValue(vector.NewFloat64(float64((i*13)%512) / 8))
		}
		ss[i] = fmt.Sprintf("s%d", i%23)
	}
	if err := tab.Data.AppendChunk(vector.NewChunk(
		vector.FromInt64s(ids), vector.FromInt64s(ks), vs, vector.FromStrings(ss))); err != nil {
		t.Fatal(err)
	}
}

var spillQueries = []string{
	"SELECT k, count(*) AS n, sum(v) AS sv, min(s) AS mn, count(DISTINCT s) AS cd FROM h GROUP BY k",
	"SELECT a.id, b.k FROM h a JOIN h b ON a.k = b.k WHERE a.id < 2000",
	"SELECT id, v FROM h ORDER BY v, id",
	"SELECT v, count(*) AS n FROM h GROUP BY v", // NULL + NaN-free float keys
}

// TestEngineSpillDifferential: SQL-level results under a tiny budget
// must match the unlimited run at every worker count, for both
// materialized and streamed delivery; SpillStats must surface through
// the ResultSet and the temp dir must end empty.
func TestEngineSpillDifferential(t *testing.T) {
	const rows = 12_000
	ref := New()
	ref.Parallelism = 1
	loadHighCard(t, ref, rows)

	dir := t.TempDir()
	db := New()
	db.MemoryBudget = 64 << 10
	db.TempDir = dir
	loadHighCard(t, db, rows)

	for _, q := range spillQueries {
		want := renderTable(t, mustQuery(t, ref, q))
		for _, workers := range parallelWorkerCounts {
			db.Parallelism = workers

			got := renderTable(t, mustQuery(t, db, q))
			compareRows(t, q, workers, "spill-materialized", got, want)

			rs, err := db.Query(q)
			if err != nil {
				t.Fatalf("stream %q: %v", q, err)
			}
			st := rs.SpillStats()
			streamed, err := rs.Materialize()
			if err != nil {
				t.Fatalf("stream %q: %v", q, err)
			}
			compareRows(t, q, workers, "spill-streamed", renderTable(t, streamed), want)
			if !st.Spilled() {
				t.Fatalf("%q workers=%d: expected spilling under 64KB budget", q, workers)
			}
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 0 {
				t.Fatalf("%q workers=%d: %d temp entries left", q, workers, len(ents))
			}
		}
	}
}

// TestEngineSpillCancelCleanup: abandoning a spilling streamed query
// mid-flight must still remove its temp files on Close.
func TestEngineSpillCancelCleanup(t *testing.T) {
	const rows = 12_000
	dir := t.TempDir()
	db := New()
	db.MemoryBudget = 64 << 10
	db.TempDir = dir
	db.Parallelism = 2
	loadHighCard(t, db, rows)

	rs, err := db.Query("SELECT id, v FROM h ORDER BY v, id")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Next(); err != nil {
		t.Fatal(err)
	}
	rs.Cancel()
	rs.Next() // observe cancellation
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d temp entries left after cancel", len(ents))
	}
}
