// Durability: the write-ahead log and checkpoint/recovery protocol.
//
// Every write statement appends one WAL record before it applies to
// the in-memory column stores and is acknowledged only after the
// record is durable (group commit, see internal/wal). A checkpoint
// quiesces writers, saves every table under the WAL directory, writes
// a manifest naming the checkpoint's last LSN, and seals the log down
// to a single checkpoint record. Recovery loads the manifest's tables
// and replays only records past its LSN, so replay is idempotent and
// a crash at any point — mid-append, mid-checkpoint, mid-manifest
// rename — recovers exactly the acknowledged prefix.
package engine

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"vexdb/internal/catalog"
	"vexdb/internal/storage"
	"vexdb/internal/wal"
)

const manifestName = "MANIFEST"

// EnableWAL turns on write-ahead logging in dir, first recovering any
// state a previous incarnation left there: checkpoint tables named by
// the manifest, then the log's valid suffix. It must be called before
// the database accepts writes.
func (db *DB) EnableWAL(dir string, mode wal.SyncMode) error {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if db.wal != nil {
		return fmt.Errorf("engine: WAL already enabled in %s", db.walDir)
	}
	cpLSN, err := db.loadCheckpoint(dir)
	if err != nil {
		return err
	}
	l, err := wal.Open(dir, mode)
	if err != nil {
		return err
	}
	l.EnsureNextLSN(cpLSN)
	if err := l.Replay(func(r *wal.Record) error {
		if r.LSN <= cpLSN {
			return nil // already captured by the checkpoint's tables
		}
		return db.applyRecord(r)
	}); err != nil {
		l.Close()
		return fmt.Errorf("engine: WAL replay: %w", err)
	}
	db.wal = l
	db.walDir = dir
	return nil
}

// loadCheckpoint reads dir's manifest (when present) and attaches the
// checkpoint's tables, returning the checkpoint LSN (0 when none).
func (db *DB) loadCheckpoint(dir string) (uint64, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var lsn uint64
	var ckptDir string
	sc := bufio.NewScanner(f)
	for line := 0; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		switch {
		case line == 0:
			if text != "VEXCKPT1" {
				return 0, fmt.Errorf("engine: manifest magic %q", text)
			}
		case strings.HasPrefix(text, "lsn "):
			lsn, err = strconv.ParseUint(text[4:], 10, 64)
			if err != nil {
				return 0, fmt.Errorf("engine: manifest lsn: %w", err)
			}
		case strings.HasPrefix(text, "dir "):
			ckptDir = text[4:]
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if ckptDir == "" {
		return 0, fmt.Errorf("engine: manifest names no checkpoint directory")
	}
	// The checkpoint is authoritative: a same-named table attached
	// earlier (directory load) is replaced by its durable version.
	ckptPath := filepath.Join(dir, ckptDir)
	entries, err := os.ReadDir(ckptPath)
	if err != nil {
		return 0, fmt.Errorf("engine: checkpoint %s: %w", ckptDir, err)
	}
	for _, e := range entries {
		name := strings.TrimSuffix(e.Name(), ".vxtb")
		if name != e.Name() && db.cat.HasTable(name) {
			if err := db.cat.DropTable(name); err != nil {
				return 0, err
			}
		}
	}
	if err := db.LoadDir(ckptPath); err != nil {
		return 0, fmt.Errorf("engine: load checkpoint %s: %w", ckptDir, err)
	}
	return lsn, nil
}

// applyRecord applies one replayed record to the in-memory state. The
// log is authoritative: a conflicting pre-existing table (e.g. from a
// directory load that overlaps the WAL's history) is replaced.
func (db *DB) applyRecord(r *wal.Record) error {
	switch r.Type {
	case wal.RecCheckpoint:
		return nil
	case wal.RecCreate:
		if db.cat.HasTable(r.Table) {
			if err := db.cat.DropTable(r.Table); err != nil {
				return err
			}
		}
		schema := make(catalog.Schema, len(r.Cols))
		for i, c := range r.Cols {
			schema[i] = catalog.Column{Name: c.Name, Type: c.Type}
		}
		t, err := db.cat.CreateTable(r.Table, schema)
		if err != nil {
			return err
		}
		if r.Chunk != nil && r.Chunk.NumRows() > 0 {
			return t.Data.AppendChunk(r.Chunk)
		}
		return nil
	case wal.RecDrop:
		return db.cat.DropTable(r.Table)
	case wal.RecTruncate:
		t, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		t.Data.Truncate()
		return nil
	case wal.RecInsert:
		t, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		return t.Data.AppendChunk(r.Chunk)
	case wal.RecReplace:
		t, err := db.cat.Table(r.Table)
		if err != nil {
			return err
		}
		return t.Data.Replace(r.Chunk)
	}
	return fmt.Errorf("engine: replay record type %s", r.Type)
}

// walAppend logs rec, returning its LSN. With the WAL off it is a
// no-op. Callers hold the target table's write lock (or ddlMu
// exclusively), so per-table apply order matches LSN order.
func (db *DB) walAppend(rec *wal.Record) (uint64, error) {
	if db.wal == nil {
		return 0, nil
	}
	lsn, err := db.wal.Append(rec)
	if err != nil {
		return 0, fmt.Errorf("engine: wal append: %w", err)
	}
	return lsn, nil
}

// walCommit blocks until lsn is durable. Callers run it after
// releasing their locks so concurrent committers batch into one fsync.
func (db *DB) walCommit(lsn uint64) error {
	if db.wal == nil || lsn == 0 {
		return nil
	}
	if err := db.wal.Commit(lsn); err != nil {
		return fmt.Errorf("engine: wal commit: %w", err)
	}
	return nil
}

// walSchema converts a catalog schema to WAL column definitions.
func walSchema(schema catalog.Schema) []wal.ColumnDef {
	cols := make([]wal.ColumnDef, len(schema))
	for i, c := range schema {
		cols[i] = wal.ColumnDef{Name: c.Name, Type: c.Type}
	}
	return cols
}

// Checkpoint persists the current state and seals the log: writers are
// quiesced, every table is saved under a versioned directory inside
// the WAL directory, the manifest is atomically pointed at it, and the
// log is truncated to a single checkpoint record. A crash anywhere in
// the sequence recovers correctly — the manifest only advances after
// its tables are fully on disk, and the log only shrinks after the
// manifest advanced.
func (db *DB) Checkpoint() error {
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if db.wal == nil {
		return fmt.Errorf("engine: checkpoint without WAL")
	}
	if err := db.wal.Sync(); err != nil {
		return err
	}
	cpLSN := db.wal.LastLSN()
	ckptDir := fmt.Sprintf("ckpt-%016d", cpLSN)
	full := filepath.Join(db.walDir, ckptDir)
	if err := os.MkdirAll(full, 0o755); err != nil {
		return err
	}
	for _, name := range db.cat.TableNames() {
		tab, err := db.cat.Table(name)
		if err != nil {
			return err
		}
		path := filepath.Join(full, strings.ToLower(name)+".vxtb")
		if err := storage.SaveTableFile(path, tab.Schema.Names(), tab.Data); err != nil {
			return fmt.Errorf("engine: checkpoint table %s: %w", name, err)
		}
	}
	if err := writeManifest(db.walDir, cpLSN, ckptDir); err != nil {
		return err
	}
	if err := db.wal.Reset(cpLSN); err != nil {
		return err
	}
	// Older checkpoints are now unreachable; reclaim them. Failure is
	// harmless (they are skipped by the manifest), so best effort.
	entries, err := os.ReadDir(db.walDir)
	if err == nil {
		for _, e := range entries {
			if e.IsDir() && strings.HasPrefix(e.Name(), "ckpt-") && e.Name() != ckptDir {
				os.RemoveAll(filepath.Join(db.walDir, e.Name()))
			}
		}
	}
	return nil
}

// writeManifest atomically replaces dir's manifest (tmp file, fsync,
// rename, directory fsync) so recovery sees either the old or the new
// checkpoint, never a torn one.
func writeManifest(dir string, lsn uint64, ckptDir string) error {
	tmp := filepath.Join(dir, manifestName+".tmp")
	body := fmt.Sprintf("VEXCKPT1\nlsn %d\ndir %s\n", lsn, ckptDir)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(body); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// WALEnabled reports whether this database logs its writes.
func (db *DB) WALEnabled() bool { return db.wal != nil }

// WALGroupStats reports the WAL's commit fsyncs and the records they
// made durable (both 0 with the WAL off); commits/syncs is the
// effective group-commit batch size.
func (db *DB) WALGroupStats() (syncs, commits int64) {
	if db.wal == nil {
		return 0, 0
	}
	return db.wal.GroupStats()
}

// WALSize returns the log's size in bytes (0 with the WAL off).
func (db *DB) WALSize() int64 {
	if db.wal == nil {
		return 0
	}
	return db.wal.Size()
}

// Close flushes and closes the WAL (when enabled). Writes issued after
// Close fail; in-flight statements finish first because Close takes
// the statement lock exclusively. It does not checkpoint — the sealed
// log replays on next open — call Checkpoint first to start clean.
func (db *DB) Close() error {
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	db.ddlMu.Lock()
	defer db.ddlMu.Unlock()
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}
