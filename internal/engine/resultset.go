package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"vexdb/internal/catalog"
	"vexdb/internal/exec"
	"vexdb/internal/governor"
	"vexdb/internal/plan"
	"vexdb/internal/plan/cost"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// ResultSet is a streaming query result: chunks are pulled from the
// executor on demand instead of materialized up front, so consumers
// (the wire server, the public Rows iterator) hold O(chunk) memory
// regardless of result size, and closing early stops scan workers.
//
// For statements without result rows (DDL/DML) the set is empty and
// RowsAffected reports the write count. Next/Close belong to the
// consuming goroutine; Cancel may be called from any goroutine.
type ResultSet struct {
	schema       catalog.Schema
	stream       *exec.ChunkStream // nil for row-less statements
	rowsAffected int64
}

// Query parses and executes one SQL statement, streaming result rows.
// The caller must Close the ResultSet.
func (db *DB) Query(query string) (*ResultSet, error) {
	return db.QuerySession(nil, query)
}

// QuerySession is Query with a governor session: when the database has
// a governor, the query admits against sess's concurrent-query and
// memory limits (a nil session admits without session limits). The
// wire server passes one session per connection.
func (db *DB) QuerySession(sess *governor.Session, query string) (*ResultSet, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.QueryStmtSession(sess, stmt)
}

// QueryStmt executes a parsed statement, streaming result rows.
// Non-SELECT statements run through the materializing Exec path (their
// results are row counts, not relations).
func (db *DB) QueryStmt(stmt sql.Statement) (*ResultSet, error) {
	return db.QueryStmtSession(nil, stmt)
}

// QueryStmtSession is QueryStmt with a governor session.
func (db *DB) QueryStmtSession(sess *governor.Session, stmt sql.Statement) (*ResultSet, error) {
	if s, ok := stmt.(*sql.Select); ok {
		stream, err := db.streamSelect(sess, s)
		if err != nil {
			return nil, err
		}
		return &ResultSet{schema: stream.Schema(), stream: stream}, nil
	}
	if ex, ok := stmt.(*sql.Explain); ok {
		return db.explain(sess, ex)
	}
	res, err := db.ExecStmt(stmt)
	if err != nil {
		return nil, err
	}
	return &ResultSet{rowsAffected: res.RowsAffected}, nil
}

// StreamSelect binds a SELECT and opens it as a chunk-pull stream.
func (db *DB) StreamSelect(s *sql.Select) (*exec.ChunkStream, error) {
	return db.streamSelect(nil, s)
}

// streamSelect binds and opens a SELECT, admitting through the
// governor (when configured) and arming the query deadline. The
// governor ticket and deadline timer are released by the stream's
// OnClose hook, so every exit path — drain, early Close, cancel,
// error — returns the lease exactly once.
func (db *DB) streamSelect(sess *governor.Session, s *sql.Select) (*exec.ChunkStream, error) {
	binder := plan.NewBinder(db.cat, db.reg)
	node, err := binder.BindSelect(s)
	if err != nil {
		return nil, err
	}
	node = plan.Prune(node)
	ctx := &exec.Context{
		Snap:         db.cat.Snapshot(),
		Parallelism:  db.Parallelism,
		MemoryBudget: db.MemoryBudget,
		TempDir:      db.TempDir,
	}
	deadline := db.QueryTimeout
	var ticket *governor.Ticket
	if db.Gov != nil {
		start := time.Now()
		t, err := db.Gov.Admit(sess, ctx.Workers(), deadline, nil)
		if err != nil {
			if errors.Is(err, governor.ErrQueueTimeout) {
				return nil, fmt.Errorf("%w (queued %v)", ErrQueryTimeout, deadline)
			}
			return nil, err
		}
		ticket = t
		ctx.Parallelism = t.Workers()
		wireLease(ctx, t, db.MemoryBudget)
		// The admission wait already consumed part of the deadline.
		if deadline > 0 {
			deadline -= time.Since(start)
			if deadline <= 0 {
				t.Release()
				return nil, fmt.Errorf("%w (queued %v)", ErrQueryTimeout, db.QueryTimeout)
			}
		}
	}
	if !db.NoCostPlanner {
		node = cost.Apply(node, ctx.Workers(), ctx.MemoryBudget)
	}
	var tb *timerBox
	if deadline > 0 {
		tb = &timerBox{}
	}
	release := func() {
		tb.stop()
		if ticket != nil {
			ticket.Release()
		}
	}
	ctx.OnClose = release
	cs, err := exec.Stream(node, ctx)
	if err != nil {
		release() // Stream does not fire OnClose on construction errors
		return nil, err
	}
	if tb != nil {
		total := db.QueryTimeout
		tb.set(time.AfterFunc(deadline, func() {
			cs.CancelCause(fmt.Errorf("%w (%v)", ErrQueryTimeout, total))
		}))
	}
	return cs, nil
}

// wireLease points an exec context's memory budget at a governor
// ticket's dynamic lease. The initial budget is the smaller of the
// lease and the engine's own per-query cap; LiveBudget re-reads the
// lease watermark on every over-budget check (so grows and reclaim
// shrinks take effect mid-query), and GrowBudget asks the governor for
// idle pool bytes right before an operator would otherwise spill. The
// engine cap stays a ceiling on both paths.
func wireLease(ctx *exec.Context, t *governor.Ticket, engineCap int64) {
	lease := t.MemoryBudget()
	if lease <= 0 {
		return // pool disabled: engine budget stands alone
	}
	clamp := func(b int64) int64 {
		if engineCap > 0 && b > engineCap {
			return engineCap
		}
		return b
	}
	ctx.MemoryBudget = clamp(lease)
	ctx.LiveBudget = func() int64 { return clamp(t.MemoryBudget()) }
	ctx.GrowBudget = func(n int64) int64 { return clamp(t.TryGrow(n)) }
}

// explain binds and plans ex.Query exactly as streamSelect would
// (including the cost-based pass, unless disabled) and renders the
// resulting tree as a one-column result set, one operator line per
// row. EXPLAIN ANALYZE additionally executes the query to completion
// with row-count taps installed, so the rendering reports actual
// cardinalities next to the estimates. The ANALYZE run admits through
// the governor like a regular query — it consumes real executor
// resources — and its ticket is released before the (materialized)
// plan text streams back, so it cannot strand a lease; the rendering
// then leads with the query's memory dynamics: initial vs final lease,
// grow/shrink counts, and spill totals.
func (db *DB) explain(sess *governor.Session, ex *sql.Explain) (*ResultSet, error) {
	binder := plan.NewBinder(db.cat, db.reg)
	node, err := binder.BindSelect(ex.Query)
	if err != nil {
		return nil, err
	}
	node = plan.Prune(node)
	ctx := &exec.Context{
		Snap:         db.cat.Snapshot(),
		Parallelism:  db.Parallelism,
		MemoryBudget: db.MemoryBudget,
		TempDir:      db.TempDir,
	}
	var ticket *governor.Ticket
	if ex.Analyze && db.Gov != nil {
		t, err := db.Gov.Admit(sess, ctx.Workers(), db.QueryTimeout, nil)
		if err != nil {
			if errors.Is(err, governor.ErrQueueTimeout) {
				return nil, fmt.Errorf("%w (queued %v)", ErrQueryTimeout, db.QueryTimeout)
			}
			return nil, err
		}
		ticket = t
		defer t.Release()
		ctx.Parallelism = t.Workers()
		wireLease(ctx, t, db.MemoryBudget)
	}
	if !db.NoCostPlanner {
		node = cost.Apply(node, ctx.Workers(), ctx.MemoryBudget)
	}
	var memLines []string
	if ex.Analyze {
		plan.InstallTaps(node)
		cs, err := exec.Stream(node, ctx)
		if err != nil {
			return nil, err
		}
		for {
			ch, err := cs.Next()
			if err != nil {
				cs.Close()
				return nil, err
			}
			if ch == nil {
				break
			}
		}
		spill := cs.SpillStats()
		if err := cs.Close(); err != nil {
			return nil, err
		}
		memLines = explainMemoryLines(ticket, spill)
	}
	lines := append(memLines, strings.Split(plan.Render(node, ex.Analyze), "\n")...)
	tab, err := vector.NewTable([]string{"plan"}, []*vector.Vector{vector.FromStrings(lines)})
	if err != nil {
		return nil, err
	}
	schema := catalog.Schema{{Name: "plan", Type: vector.String}}
	cs, err := exec.Stream(&plan.Material{Data: tab, Schem: schema}, &exec.Context{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	return &ResultSet{schema: schema, stream: cs}, nil
}

// explainMemoryLines renders an EXPLAIN ANALYZE header describing the
// query's memory dynamics: the governor lease it started with, the
// lease it ended with after grows and reclaim shrinks, and what the
// spill machinery did under that budget. Empty without a governor
// lease and without spill activity, so plans from ungoverned databases
// render exactly as before.
func explainMemoryLines(t *governor.Ticket, spill *exec.SpillStats) []string {
	var lines []string
	if t != nil && t.InitialBudget() > 0 {
		grows, shrinks := t.Growths()
		lines = append(lines, fmt.Sprintf(
			"memory: lease initial=%d final=%d grows=%d shrinks=%d",
			t.InitialBudget(), t.MemoryBudget(), grows, shrinks))
	}
	if spill.Spilled() || spill.ResidentPartitions() > 0 {
		lines = append(lines, fmt.Sprintf(
			"spill: partitions spilled=%d resident=%d runs=%d written=%d read=%d",
			spill.Partitions(), spill.ResidentPartitions(), spill.Runs(),
			spill.BytesWritten(), spill.BytesRead()))
	}
	return lines
}

// timerBox holds a deadline timer that may be stopped before it is
// set: OnClose can fire from Stream's error path before the timer is
// armed, and set observes the prior stop instead of leaking a timer.
type timerBox struct {
	mu      sync.Mutex
	t       *time.Timer
	stopped bool
}

func (b *timerBox) set(t *time.Timer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		t.Stop()
		return
	}
	b.t = t
}

func (b *timerBox) stop() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stopped = true
	if b.t != nil {
		b.t.Stop()
	}
}

// Schema returns the result's column names and types (empty for
// statements without result rows).
func (r *ResultSet) Schema() catalog.Schema { return r.schema }

// ScanStats returns the query's segment-level scan counters (segments
// decoded vs. skipped by zone-map pruning), or nil for row-less
// statements. The counters are live until the set is drained or
// closed.
func (r *ResultSet) ScanStats() *exec.ScanStats {
	if r.stream == nil {
		return nil
	}
	return r.stream.Stats()
}

// SpillStats returns the query's out-of-core counters (grace
// partitions and sorted runs spilled to disk, spill bytes
// written/read), or nil for row-less statements. All zero when the
// query ran without a memory budget or fit within it; live until the
// set is drained or closed.
func (r *ResultSet) SpillStats() *exec.SpillStats {
	if r.stream == nil {
		return nil
	}
	return r.stream.SpillStats()
}

// HasRows reports whether the statement produces result rows (even if
// zero of them).
func (r *ResultSet) HasRows() bool { return r.stream != nil }

// RowsAffected reports the write count of a row-less statement.
func (r *ResultSet) RowsAffected() int64 { return r.rowsAffected }

// Next returns the next result chunk, (nil, nil) at end of stream.
func (r *ResultSet) Next() (*vector.Chunk, error) {
	if r.stream == nil {
		return nil, nil
	}
	return r.stream.Next()
}

// Cancel requests termination from any goroutine: a blocked Next
// returns exec.ErrCancelled and morsel workers stop between morsels.
func (r *ResultSet) Cancel() {
	if r.stream != nil {
		r.stream.Cancel()
	}
}

// CancelCause cancels like Cancel but records err as the reason, so
// Next reports it instead of the generic exec.ErrCancelled (e.g. a
// client-initiated cancel vs. a deadline). Safe from any goroutine.
func (r *ResultSet) CancelCause(err error) {
	if r.stream != nil {
		r.stream.CancelCause(err)
	}
}

// Close stops and joins any parallel workers. Must be called once the
// consumer is done, including after errors; safe to call repeatedly.
func (r *ResultSet) Close() error {
	if r.stream == nil {
		return nil
	}
	return r.stream.Close()
}

// Materialize drains the remaining stream into a table and closes the
// set. Row-less statements yield nil.
func (r *ResultSet) Materialize() (*vector.Table, error) {
	if r.stream == nil {
		return nil, nil
	}
	defer r.stream.Close()
	return r.stream.Materialize()
}
