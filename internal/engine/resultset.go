package engine

import (
	"vexdb/internal/catalog"
	"vexdb/internal/exec"
	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// ResultSet is a streaming query result: chunks are pulled from the
// executor on demand instead of materialized up front, so consumers
// (the wire server, the public Rows iterator) hold O(chunk) memory
// regardless of result size, and closing early stops scan workers.
//
// For statements without result rows (DDL/DML) the set is empty and
// RowsAffected reports the write count. Next/Close belong to the
// consuming goroutine; Cancel may be called from any goroutine.
type ResultSet struct {
	schema       catalog.Schema
	stream       *exec.ChunkStream // nil for row-less statements
	rowsAffected int64
}

// Query parses and executes one SQL statement, streaming result rows.
// The caller must Close the ResultSet.
func (db *DB) Query(query string) (*ResultSet, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return db.QueryStmt(stmt)
}

// QueryStmt executes a parsed statement, streaming result rows.
// Non-SELECT statements run through the materializing Exec path (their
// results are row counts, not relations).
func (db *DB) QueryStmt(stmt sql.Statement) (*ResultSet, error) {
	if s, ok := stmt.(*sql.Select); ok {
		stream, err := db.StreamSelect(s)
		if err != nil {
			return nil, err
		}
		return &ResultSet{schema: stream.Schema(), stream: stream}, nil
	}
	res, err := db.ExecStmt(stmt)
	if err != nil {
		return nil, err
	}
	return &ResultSet{rowsAffected: res.RowsAffected}, nil
}

// StreamSelect binds a SELECT and opens it as a chunk-pull stream.
func (db *DB) StreamSelect(s *sql.Select) (*exec.ChunkStream, error) {
	binder := plan.NewBinder(db.cat, db.reg)
	node, err := binder.BindSelect(s)
	if err != nil {
		return nil, err
	}
	node = plan.Prune(node)
	return exec.Stream(node, &exec.Context{
		Parallelism:  db.Parallelism,
		MemoryBudget: db.MemoryBudget,
		TempDir:      db.TempDir,
	})
}

// Schema returns the result's column names and types (empty for
// statements without result rows).
func (r *ResultSet) Schema() catalog.Schema { return r.schema }

// ScanStats returns the query's segment-level scan counters (segments
// decoded vs. skipped by zone-map pruning), or nil for row-less
// statements. The counters are live until the set is drained or
// closed.
func (r *ResultSet) ScanStats() *exec.ScanStats {
	if r.stream == nil {
		return nil
	}
	return r.stream.Stats()
}

// SpillStats returns the query's out-of-core counters (grace
// partitions and sorted runs spilled to disk, spill bytes
// written/read), or nil for row-less statements. All zero when the
// query ran without a memory budget or fit within it; live until the
// set is drained or closed.
func (r *ResultSet) SpillStats() *exec.SpillStats {
	if r.stream == nil {
		return nil
	}
	return r.stream.SpillStats()
}

// HasRows reports whether the statement produces result rows (even if
// zero of them).
func (r *ResultSet) HasRows() bool { return r.stream != nil }

// RowsAffected reports the write count of a row-less statement.
func (r *ResultSet) RowsAffected() int64 { return r.rowsAffected }

// Next returns the next result chunk, (nil, nil) at end of stream.
func (r *ResultSet) Next() (*vector.Chunk, error) {
	if r.stream == nil {
		return nil, nil
	}
	return r.stream.Next()
}

// Cancel requests termination from any goroutine: a blocked Next
// returns exec.ErrCancelled and morsel workers stop between morsels.
func (r *ResultSet) Cancel() {
	if r.stream != nil {
		r.stream.Cancel()
	}
}

// Close stops and joins any parallel workers. Must be called once the
// consumer is done, including after errors; safe to call repeatedly.
func (r *ResultSet) Close() error {
	if r.stream == nil {
		return nil
	}
	return r.stream.Close()
}

// Materialize drains the remaining stream into a table and closes the
// set. Row-less statements yield nil.
func (r *ResultSet) Materialize() (*vector.Table, error) {
	if r.stream == nil {
		return nil, nil
	}
	defer r.stream.Close()
	return r.stream.Materialize()
}
