package engine

import (
	"fmt"
	"testing"

	"vexdb/internal/core"
	"vexdb/internal/vector"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustExec(t, db, "CREATE TABLE users (id BIGINT, name VARCHAR, age INTEGER, score DOUBLE)")
	mustExec(t, db, `INSERT INTO users VALUES
		(1, 'alice', 30, 9.5),
		(2, 'bob', 25, 7.25),
		(3, 'carol', 35, 8.0),
		(4, 'dave', 25, NULL),
		(5, 'erin', NULL, 5.5)`)
	mustExec(t, db, "CREATE TABLE orders (user_id BIGINT, amount DOUBLE, item VARCHAR)")
	mustExec(t, db, `INSERT INTO orders VALUES
		(1, 10.0, 'book'), (1, 20.0, 'pen'), (2, 5.0, 'book'), (3, 50.0, 'desk'), (9, 1.0, 'ghost')`)
	return db
}

func mustExec(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("Exec(%q): %v", q, err)
	}
	return res
}

func mustQuery(t *testing.T, db *DB, q string) *vector.Table {
	t.Helper()
	res := mustExec(t, db, q)
	if res.Table == nil {
		t.Fatalf("Exec(%q): no result table", q)
	}
	return res.Table
}

func TestSelectProjection(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT name, age * 2 AS dbl FROM users WHERE id = 3")
	if tab.NumRows() != 1 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Column("name").Get(0).Str() != "carol" {
		t.Fatal("name wrong")
	}
	if tab.Column("dbl").Get(0).Int64() != 70 {
		t.Fatalf("dbl = %v", tab.Column("dbl").Get(0))
	}
}

func TestSelectStar(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT * FROM users")
	if tab.NumCols() != 4 || tab.NumRows() != 5 {
		t.Fatalf("dims %dx%d", tab.NumCols(), tab.NumRows())
	}
}

func TestWhereNullSemantics(t *testing.T) {
	db := newTestDB(t)
	// age = 25 must not match the NULL-age row.
	tab := mustQuery(t, db, "SELECT id FROM users WHERE age = 25 ORDER BY id")
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	tab = mustQuery(t, db, "SELECT id FROM users WHERE age IS NULL")
	if tab.NumRows() != 1 || tab.Column("id").Get(0).Int64() != 5 {
		t.Fatal("IS NULL wrong")
	}
	tab = mustQuery(t, db, "SELECT id FROM users WHERE score IS NOT NULL")
	if tab.NumRows() != 4 {
		t.Fatalf("IS NOT NULL rows = %d", tab.NumRows())
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT id FROM users ORDER BY score DESC LIMIT 2")
	// NULLs sort last ascending, first descending: dave (NULL score)
	// leads, then alice (9.5).
	if tab.Column("id").Get(0).Int64() != 4 || tab.Column("id").Get(1).Int64() != 1 {
		t.Fatalf("order: %v,%v", tab.Column("id").Get(0), tab.Column("id").Get(1))
	}
	tab = mustQuery(t, db, "SELECT id FROM users ORDER BY id LIMIT 2 OFFSET 2")
	if tab.NumRows() != 2 || tab.Column("id").Get(0).Int64() != 3 {
		t.Fatal("limit/offset wrong")
	}
	// Positional ORDER BY.
	tab = mustQuery(t, db, "SELECT id, age FROM users WHERE age IS NOT NULL ORDER BY 2 DESC, 1 ASC")
	if tab.Column("id").Get(0).Int64() != 3 {
		t.Fatal("positional order by")
	}
}

func TestGroupByAggregates(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT age, count(*) AS n, avg(score) AS avgs, min(name) AS mn
		FROM users GROUP BY age ORDER BY n DESC, age ASC`)
	// ages: 25 (bob, dave), 30 (alice), 35 (carol), NULL (erin)
	if tab.NumRows() != 4 {
		t.Fatalf("groups = %d", tab.NumRows())
	}
	if tab.Column("age").Get(0).Int64() != 25 || tab.Column("n").Get(0).Int64() != 2 {
		t.Fatalf("first group wrong: %v n=%v", tab.Column("age").Get(0), tab.Column("n").Get(0))
	}
	// avg over (7.25, NULL) = 7.25 — aggregates skip NULLs.
	if tab.Column("avgs").Get(0).Float64() != 7.25 {
		t.Fatalf("avg = %v", tab.Column("avgs").Get(0))
	}
	if tab.Column("mn").Get(0).Str() != "bob" {
		t.Fatal("min(name)")
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT count(*) AS n, sum(age) AS s FROM users WHERE id > 100")
	if tab.NumRows() != 1 {
		t.Fatal("global agg must yield one row")
	}
	if tab.Column("n").Get(0).Int64() != 0 {
		t.Fatal("count = 0")
	}
	if !tab.Column("s").Get(0).IsNull() {
		t.Fatal("sum of empty = NULL")
	}
}

func TestHaving(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT user_id, sum(amount) AS total FROM orders
		GROUP BY user_id HAVING sum(amount) > 10 ORDER BY total DESC`)
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Column("user_id").Get(0).Int64() != 3 || tab.Column("total").Get(0).Float64() != 50 {
		t.Fatal("having wrong")
	}
}

func TestCountDistinct(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT count(DISTINCT item) AS n FROM orders")
	if tab.Column("n").Get(0).Int64() != 4 {
		t.Fatalf("distinct items = %v", tab.Column("n").Get(0))
	}
}

func TestInnerJoin(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT u.name, o.amount FROM users u
		JOIN orders o ON u.id = o.user_id
		ORDER BY o.amount DESC`)
	if tab.NumRows() != 4 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Column("name").Get(0).Str() != "carol" {
		t.Fatal("top joined row wrong")
	}
}

func TestLeftJoin(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT u.id, o.amount FROM users u
		LEFT JOIN orders o ON u.id = o.user_id
		ORDER BY u.id, o.amount`)
	// alice 2 orders + bob 1 + carol 1 + dave/erin null-padded = 6.
	if tab.NumRows() != 6 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	last := tab.Column("amount").Get(tab.NumRows() - 1)
	if !last.IsNull() {
		t.Fatal("unmatched rows must have NULL right columns")
	}
}

func TestJoinWithResidual(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT u.name, o.amount FROM users u
		JOIN orders o ON u.id = o.user_id AND o.amount > 10
		ORDER BY o.amount`)
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

func TestCrossJoin(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT count(*) AS n FROM users, orders")
	if tab.Column("n").Get(0).Int64() != 25 {
		t.Fatalf("cross join count = %v", tab.Column("n").Get(0))
	}
}

func TestGroupByJoinAggregate(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT u.name, count(*) AS n, sum(o.amount) AS total
		FROM users u JOIN orders o ON u.id = o.user_id
		GROUP BY u.name ORDER BY total DESC`)
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Column("name").Get(1).Str() != "alice" || tab.Column("total").Get(1).Float64() != 30 {
		t.Fatal("alice total wrong")
	}
}

func TestSubqueryInFrom(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT big.name FROM (SELECT name, score FROM users WHERE score > 7) AS big
		ORDER BY big.score DESC`)
	if tab.NumRows() != 3 || tab.Column("name").Get(0).Str() != "alice" {
		t.Fatal("subquery wrong")
	}
}

func TestCaseExpression(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT name, CASE WHEN age >= 30 THEN 'old' WHEN age IS NULL THEN 'unknown' ELSE 'young' END AS bucket
		FROM users ORDER BY id`)
	want := []string{"old", "young", "old", "young", "unknown"}
	for i, w := range want {
		if got := tab.Column("bucket").Get(i).Str(); got != w {
			t.Errorf("row %d: %q, want %q", i, got, w)
		}
	}
}

func TestCastDivisionModulo(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT 7 / 2 AS d, 7 % 2 AS m, CAST(7.9 AS INTEGER) AS c")
	if tab.Column("d").Get(0).Float64() != 3.5 {
		t.Fatalf("7/2 = %v (division is DOUBLE)", tab.Column("d").Get(0))
	}
	if tab.Column("m").Get(0).Int64() != 1 {
		t.Fatal("modulo")
	}
	if tab.Column("c").Get(0).Int64() != 7 {
		t.Fatal("cast")
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT 1 / 0 AS x, 1 % 0 AS y")
	if !tab.Column("x").Get(0).IsNull() || !tab.Column("y").Get(0).IsNull() {
		t.Fatal("division by zero must be NULL")
	}
}

func TestBuiltinFunctions(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT sqrt(16.0) AS s, upper(name) AS u, length(name) AS l FROM users WHERE id = 1")
	if tab.Column("s").Get(0).Float64() != 4 {
		t.Fatal("sqrt")
	}
	if tab.Column("u").Get(0).Str() != "ALICE" || tab.Column("l").Get(0).Int64() != 5 {
		t.Fatal("string funcs")
	}
}

func TestDistinct(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT DISTINCT age FROM users ORDER BY age")
	if tab.NumRows() != 4 { // 25, 30, 35, NULL
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

func TestUnion(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT id FROM users WHERE id <= 2 UNION ALL SELECT id FROM users WHERE id <= 1")
	if tab.NumRows() != 3 {
		t.Fatalf("union all rows = %d", tab.NumRows())
	}
	tab = mustQuery(t, db, "SELECT id FROM users WHERE id <= 2 UNION SELECT id FROM users WHERE id <= 1")
	if tab.NumRows() != 2 {
		t.Fatalf("union rows = %d", tab.NumRows())
	}
}

func TestInList(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT id FROM users WHERE name IN ('alice', 'bob') ORDER BY id")
	if tab.NumRows() != 2 {
		t.Fatal("IN")
	}
	tab = mustQuery(t, db, "SELECT id FROM users WHERE name NOT IN ('alice', 'bob') ORDER BY id")
	if tab.NumRows() != 3 {
		t.Fatal("NOT IN")
	}
}

func TestBetweenAndConcat(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT id FROM users WHERE age BETWEEN 25 AND 30 ORDER BY id")
	if tab.NumRows() != 3 {
		t.Fatalf("between rows = %d", tab.NumRows())
	}
	tab = mustQuery(t, db, "SELECT name || '!' AS x FROM users WHERE id = 1")
	if tab.Column("x").Get(0).Str() != "alice!" {
		t.Fatal("concat")
	}
}

func TestInsertSelectAndCTAS(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "CREATE TABLE young AS SELECT id, name FROM users WHERE age < 30")
	tab := mustQuery(t, db, "SELECT count(*) AS n FROM young")
	if tab.Column("n").Get(0).Int64() != 2 {
		t.Fatal("CTAS")
	}
	res := mustExec(t, db, "INSERT INTO young SELECT id, name FROM users WHERE age >= 30")
	if res.RowsAffected != 2 {
		t.Fatalf("insert-select affected = %d", res.RowsAffected)
	}
	tab = mustQuery(t, db, "SELECT count(*) AS n FROM young")
	if tab.Column("n").Get(0).Int64() != 4 {
		t.Fatal("after insert-select")
	}
}

func TestInsertColumnSubset(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "INSERT INTO users (id, name) VALUES (6, 'frank')")
	tab := mustQuery(t, db, "SELECT age FROM users WHERE id = 6")
	if !tab.Column("age").Get(0).IsNull() {
		t.Fatal("unspecified column must be NULL")
	}
}

func TestDelete(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "DELETE FROM orders WHERE amount < 10")
	if res.RowsAffected != 2 {
		t.Fatalf("deleted = %d", res.RowsAffected)
	}
	tab := mustQuery(t, db, "SELECT count(*) AS n FROM orders")
	if tab.Column("n").Get(0).Int64() != 3 {
		t.Fatal("rows after delete")
	}
	res = mustExec(t, db, "DELETE FROM orders")
	if res.RowsAffected != 3 {
		t.Fatal("delete all")
	}
}

func TestUpdate(t *testing.T) {
	db := newTestDB(t)
	res := mustExec(t, db, "UPDATE users SET score = score + 1, name = upper(name) WHERE id <= 2")
	if res.RowsAffected != 2 {
		t.Fatalf("updated = %d", res.RowsAffected)
	}
	tab := mustQuery(t, db, "SELECT name, score FROM users WHERE id = 1")
	if tab.Column("name").Get(0).Str() != "ALICE" || tab.Column("score").Get(0).Float64() != 10.5 {
		t.Fatalf("update result: %v %v", tab.Column("name").Get(0), tab.Column("score").Get(0))
	}
	// Unmatched rows untouched.
	tab = mustQuery(t, db, "SELECT name FROM users WHERE id = 3")
	if tab.Column("name").Get(0).Str() != "carol" {
		t.Fatal("unmatched row modified")
	}
}

func TestDropTable(t *testing.T) {
	db := newTestDB(t)
	mustExec(t, db, "DROP TABLE orders")
	if _, err := db.Exec("SELECT * FROM orders"); err == nil {
		t.Fatal("query after drop should fail")
	}
	mustExec(t, db, "DROP TABLE IF EXISTS orders")
	if _, err := db.Exec("DROP TABLE orders"); err == nil {
		t.Fatal("double drop should fail")
	}
}

func TestScalarUDF(t *testing.T) {
	db := newTestDB(t)
	err := db.Registry().RegisterScalar(&core.ScalarFunc{
		Name:       "plus_ten",
		Arity:      1,
		Parallel:   true,
		ReturnType: core.FixedReturn(vector.Float64),
		Eval: func(args []*vector.Vector) (*vector.Vector, error) {
			in, err := args[0].AsFloat64s()
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(in))
			for i, x := range in {
				out[i] = x + 10
			}
			return vector.FromFloat64s(out), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := mustQuery(t, db, "SELECT plus_ten(score) AS s FROM users WHERE id = 1")
	if tab.Column("s").Get(0).Float64() != 19.5 {
		t.Fatalf("udf = %v", tab.Column("s").Get(0))
	}
}

func TestTableUDF(t *testing.T) {
	db := newTestDB(t)
	err := db.Registry().RegisterTable(&core.TableFunc{
		Name: "summarize",
		Columns: []core.ColumnDecl{
			{Name: "total", Type: vector.Float64},
			{Name: "rows", Type: vector.Int64},
		},
		Fn: func(args []core.TableArg) (*vector.Table, error) {
			if len(args) != 2 || !args[0].IsTable() || args[1].IsTable() {
				return nil, fmt.Errorf("summarize(table, factor)")
			}
			factor := args[1].Scalar.Float64()
			in := args[0].Table
			sum := 0.0
			vals, err := in.Cols[0].AsFloat64s()
			if err != nil {
				return nil, err
			}
			for _, v := range vals {
				sum += v
			}
			return vector.NewTable([]string{"total", "rows"}, []*vector.Vector{
				vector.FromFloat64s([]float64{sum * factor}),
				vector.FromInt64s([]int64{int64(in.NumRows())}),
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tab := mustQuery(t, db, "SELECT * FROM summarize((SELECT amount FROM orders), 2)")
	if tab.Column("total").Get(0).Float64() != 172 {
		t.Fatalf("total = %v", tab.Column("total").Get(0))
	}
	if tab.Column("rows").Get(0).Int64() != 5 {
		t.Fatal("rows")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	db := newTestDB(t)
	dir := t.TempDir()
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	if err := db2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	tab := mustQuery(t, db2, "SELECT count(*) AS n FROM users")
	if tab.Column("n").Get(0).Int64() != 5 {
		t.Fatal("reload row count")
	}
	tab = mustQuery(t, db2, "SELECT name FROM users WHERE id = 2")
	if tab.Column("name").Get(0).Str() != "bob" {
		t.Fatal("reload contents")
	}
}

func TestExecScript(t *testing.T) {
	db := New()
	res, err := db.ExecScript(`
		CREATE TABLE t (a BIGINT);
		INSERT INTO t VALUES (1), (2), (3);
		SELECT sum(a) AS s FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.Column("s").Get(0).Int64() != 6 {
		t.Fatal("script result")
	}
}

func TestErrors(t *testing.T) {
	db := newTestDB(t)
	bad := []string{
		"SELECT nope FROM users",
		"SELECT * FROM missing",
		"SELECT id FROM users WHERE name",                                   // non-bool predicate
		"SELECT name, count(*) FROM users",                                  // bare column with aggregate
		"INSERT INTO users VALUES (1)",                                      // arity
		"INSERT INTO users (zzz) VALUES (1)",                                // unknown column
		"SELECT unknown_fn(id) FROM users",                                  // unknown function
		"SELECT * FROM unknown_tf((SELECT 1))",                              // unknown table function
		"SELECT u.id FROM users u JOIN users v ON u.id = v.id WHERE id = 1", // ambiguous
	}
	for _, q := range bad {
		if _, err := db.Exec(q); err == nil {
			t.Errorf("Exec(%q) should fail", q)
		}
	}
}

func TestLargeScanAcrossSegments(t *testing.T) {
	db := New()
	mustExec(t, db, "CREATE TABLE big (x BIGINT)")
	// Insert enough rows to span several segments via insert-select
	// doubling.
	mustExec(t, db, "INSERT INTO big VALUES (1)")
	for i := 0; i < 13; i++ { // 2^13 = 8192 rows
		mustExec(t, db, "INSERT INTO big SELECT x FROM big")
	}
	tab := mustQuery(t, db, "SELECT count(*) AS n, sum(x) AS s FROM big")
	if tab.Column("n").Get(0).Int64() != 8192 || tab.Column("s").Get(0).Int64() != 8192 {
		t.Fatalf("n=%v s=%v", tab.Column("n").Get(0), tab.Column("s").Get(0))
	}
}

func TestAggregateExpressionOverAggregates(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT user_id, sum(amount) / count(*) AS mean
		FROM orders GROUP BY user_id ORDER BY user_id`)
	if tab.Column("mean").Get(0).Float64() != 15 {
		t.Fatalf("mean = %v", tab.Column("mean").Get(0))
	}
}

func TestGroupByExpression(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, `
		SELECT age % 10 AS bucket, count(*) AS n FROM users
		WHERE age IS NOT NULL GROUP BY age % 10 ORDER BY bucket`)
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// ages 30,25,35,25 -> bucket 0 holds {30}, bucket 5 holds {25,35,25}.
	if tab.Column("bucket").Get(0).Int64() != 0 || tab.Column("n").Get(0).Int64() != 1 {
		t.Fatalf("bucket0 = %v n=%v", tab.Column("bucket").Get(0), tab.Column("n").Get(0))
	}
	if tab.Column("n").Get(1).Int64() != 3 {
		t.Fatalf("bucket5 n=%v", tab.Column("n").Get(1))
	}
}
