package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"vexdb/internal/vector"
)

// Cost-planner differential tests: every plan the cost pass may pick
// (reordered joins, flipped build sides, serial pins, widened spill
// fan-out) must produce byte-identical results to the syntactic plan,
// at any worker count and memory budget, streamed or materialized.

// fingerprintTable renders a table with exact value identity: floats
// by their IEEE bit pattern (so NaN payloads and -0.0 vs 0.0 are
// distinguished), NULLs distinct from any value.
func fingerprintTable(tab *vector.Table) []string {
	rows := make([]string, tab.NumRows())
	for i := range rows {
		var sb strings.Builder
		for c := 0; c < tab.NumCols(); c++ {
			v := tab.Cols[c].Get(i)
			switch {
			case v.IsNull():
				sb.WriteString("N")
			case v.Type() == vector.Float64:
				fmt.Fprintf(&sb, "%016x", math.Float64bits(v.Float64()))
			case v.Type() == vector.Int64 || v.Type() == vector.Int32:
				fmt.Fprintf(&sb, "%d", v.Int64())
			default:
				sb.WriteString(v.String())
			}
			sb.WriteString("|")
		}
		rows[i] = sb.String()
	}
	return rows
}

// loadEvents creates the skewed three-table workload: two event
// tables sharing a hot 7-value key (their join explodes) and a
// selective dimension. Row counts exceed one segment so sealed
// segments carry sketches and the planner sees real statistics.
func loadEvents(t *testing.T, db *DB, rows int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE ev1 (k BIGINT, dk BIGINT, v DOUBLE)")
	mustExec(t, db, "CREATE TABLE ev2 (k BIGINT, w DOUBLE)")
	mustExec(t, db, "CREATE TABLE dm (dk BIGINT, label VARCHAR)")
	batchInsert(t, db, "ev1", rows, func(i int) string {
		return fmt.Sprintf("(%d, %d, %g)", i%7, i%256, float64(i)/4)
	})
	batchInsert(t, db, "ev2", rows, func(i int) string {
		return fmt.Sprintf("(%d, %g)", i%7, float64(i)/2)
	})
	batchInsert(t, db, "dm", 256, func(i int) string {
		return fmt.Sprintf("(%d, 'd%d')", i, i)
	})
}

func batchInsert(t *testing.T, db *DB, name string, rows int, gen func(i int) string) {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		if i%500 == 0 {
			if sb.Len() > 0 {
				mustExec(t, db, sb.String())
				sb.Reset()
			}
			fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", name)
		} else {
			sb.WriteString(",")
		}
		sb.WriteString(gen(i))
	}
	if sb.Len() > 0 {
		mustExec(t, db, sb.String())
	}
}

// loadFloatKeys creates two tables joined on a DOUBLE key seeded with
// NaN and NULL values — the cases where promoting comparisons to hash
// keys (or vice versa) would change semantics. The big table is
// written on the syntactic build side so the planner flips it.
func loadFloatKeys(t *testing.T, db *DB, rows int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE f1 (fk DOUBLE, a BIGINT)")
	mustExec(t, db, "CREATE TABLE f2 (fk DOUBLE, b BIGINT)")
	f1, err := db.cat.Table("f1")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := db.cat.Table("f2")
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) vector.Value {
		switch {
		case i%89 == 0:
			return vector.Null()
		case i%97 == 0:
			return vector.NewFloat64(math.NaN())
		}
		return vector.NewFloat64(float64(i%50) / 2)
	}
	for i := 0; i < rows; i++ {
		if err := f1.Data.AppendRow([]vector.Value{key(i), vector.NewInt64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := f2.Data.AppendRow([]vector.Value{key(i * 3), vector.NewInt64(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

// queryFingerprint runs q and fingerprints the result, materialized
// or streamed chunk-by-chunk.
func queryFingerprint(t *testing.T, db *DB, q string, streamed bool) []string {
	t.Helper()
	rs, err := db.Query(q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	if !streamed {
		tab, err := rs.Materialize()
		if err != nil {
			t.Fatalf("materialize %q: %v", q, err)
		}
		return fingerprintTable(tab)
	}
	var out []string
	for {
		ch, err := rs.Next()
		if err != nil {
			rs.Close()
			t.Fatalf("next %q: %v", q, err)
		}
		if ch == nil {
			break
		}
		tab := &vector.Table{Names: make([]string, ch.NumCols()), Cols: ch.Cols()}
		out = append(out, fingerprintTable(tab)...)
	}
	if err := rs.Close(); err != nil {
		t.Fatalf("close %q: %v", q, err)
	}
	return out
}

func assertSameRows(t *testing.T, label string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: row %d differs:\n  got  %s\n  want %s", label, i, got[i], want[i])
		}
	}
}

// TestCostPlanByteIdentity is the central acceptance test: the
// cost-based plan must be byte-identical to the syntactic plan across
// worker counts, memory budgets, and both consumption modes.
func TestCostPlanByteIdentity(t *testing.T) {
	db := New()
	db.TempDir = t.TempDir()
	loadEvents(t, db, 3000)
	loadFloatKeys(t, db, 3000)
	queries := []string{
		// Skewed 3-table chain: the planner reorders dm ahead of ev2.
		"SELECT ev1.v, ev2.w, dm.label FROM ev1 JOIN ev2 ON ev1.k = ev2.k JOIN dm ON ev1.dk = dm.dk WHERE dm.dk < 2",
		// Aggregation over the reordered chain.
		"SELECT dm.label, count(*) AS n, sum(ev1.v + ev2.w) AS s FROM ev1 JOIN ev2 ON ev1.k = ev2.k JOIN dm ON ev1.dk = dm.dk WHERE dm.dk < 4 GROUP BY dm.label",
		// DOUBLE keys with NaN and NULL, big table on the syntactic
		// build side (planner flips it).
		"SELECT f2.b, f1.a FROM f2 JOIN f1 ON f2.fk = f1.fk WHERE f1.a < 500",
		// Same flip under a final ORDER BY (restoration sort composes
		// with a user sort).
		"SELECT f2.b, f1.a FROM f2 JOIN f1 ON f2.fk = f1.fk WHERE f1.a < 200 ORDER BY f1.a, f2.b",
	}
	for qi, q := range queries {
		db.NoCostPlanner = true
		db.Parallelism = 1
		db.MemoryBudget = 0
		want := queryFingerprint(t, db, q, false)

		for _, planner := range []bool{false, true} {
			db.NoCostPlanner = !planner
			for _, workers := range []int{1, 2, 8} {
				db.Parallelism = workers
				for _, budget := range []int64{0, 64 << 10} {
					db.MemoryBudget = budget
					label := fmt.Sprintf("q%d planner=%v workers=%d budget=%d", qi, planner, workers, budget)
					assertSameRows(t, label+" mat", queryFingerprint(t, db, q, false), want)
				}
			}
			// Streamed consumption at the most adversarial point of the
			// matrix: max workers, tiny budget.
			db.Parallelism = 8
			db.MemoryBudget = 64 << 10
			label := fmt.Sprintf("q%d planner=%v streamed", qi, planner)
			assertSameRows(t, label, queryFingerprint(t, db, q, true), want)
		}
		db.NoCostPlanner = false
		db.MemoryBudget = 0
		db.Parallelism = 0
	}
}

// TestExplainOutput checks the EXPLAIN surface: the cost-based plan
// renders the rewritten (rowpos-tagged) join with estimates, ANALYZE
// adds actual row counts, and disabling the planner shows the
// syntactic plan.
func TestExplainOutput(t *testing.T) {
	db := New()
	loadEvents(t, db, 3000)
	const q = "SELECT ev1.v, ev2.w, dm.label FROM ev1 JOIN ev2 ON ev1.k = ev2.k JOIN dm ON ev1.dk = dm.dk WHERE dm.dk < 2"

	planText := func(query string) string {
		tab := mustQuery(t, db, query)
		var lines []string
		for i := 0; i < tab.NumRows(); i++ {
			lines = append(lines, tab.Cols[0].Get(i).Str())
		}
		return strings.Join(lines, "\n")
	}

	out := planText("EXPLAIN " + q)
	for _, want := range []string{"HashJoin", "build=right", "est=", "rowpos", "Scan dm", "Sort"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "act=") {
		t.Fatalf("plain EXPLAIN must not report actuals:\n%s", out)
	}

	out = planText("EXPLAIN ANALYZE " + q)
	if !strings.Contains(out, "act=") {
		t.Fatalf("EXPLAIN ANALYZE missing actuals:\n%s", out)
	}

	db.NoCostPlanner = true
	out = planText("EXPLAIN " + q)
	if strings.Contains(out, "rowpos") {
		t.Fatalf("syntactic plan must not be rewritten:\n%s", out)
	}
}
