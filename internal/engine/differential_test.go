package engine

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"vexdb/internal/vector"
)

// Differential tests: random datasets, SQL results compared against
// straightforward Go reference computations.

type randTable struct {
	keys []int64 // small domain so joins and groups collide
	vals []float64
}

func (r randTable) load(t *testing.T, db *DB, name string) {
	t.Helper()
	mustExec(t, db, fmt.Sprintf("CREATE TABLE %s (k BIGINT, v DOUBLE)", name))
	if len(r.keys) == 0 {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", name)
	for i := range r.keys {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %g)", r.keys[i], r.vals[i])
	}
	mustExec(t, db, sb.String())
}

// mkTable derives a bounded random table from quick's raw inputs.
func mkTable(rawKeys []uint8, rawVals []int16) randTable {
	n := len(rawKeys)
	if len(rawVals) < n {
		n = len(rawVals)
	}
	if n > 200 {
		n = 200
	}
	out := randTable{keys: make([]int64, n), vals: make([]float64, n)}
	for i := 0; i < n; i++ {
		out.keys[i] = int64(rawKeys[i] % 8) // 8 distinct keys
		out.vals[i] = float64(rawVals[i]) / 4
	}
	return out
}

func TestDifferentialFilterSum(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []int16) bool {
		tab := mkTable(rawKeys, rawVals)
		db := New()
		tab.load(t, db, "t")
		res, err := db.Exec("SELECT count(*) AS n, sum(v) AS s FROM t WHERE v > 0")
		if err != nil {
			t.Log(err)
			return false
		}
		var wantN int64
		var wantS float64
		for i := range tab.keys {
			if tab.vals[i] > 0 {
				wantN++
				wantS += tab.vals[i]
			}
		}
		gotN := res.Table.Column("n").Get(0).Int64()
		if gotN != wantN {
			t.Logf("count: got %d want %d", gotN, wantN)
			return false
		}
		sv := res.Table.Column("s").Get(0)
		if wantN == 0 {
			return sv.IsNull()
		}
		return approxEqual(sv.Float64(), wantS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialGroupBy(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []int16) bool {
		tab := mkTable(rawKeys, rawVals)
		if len(tab.keys) == 0 {
			return true
		}
		db := New()
		tab.load(t, db, "t")
		res, err := db.Exec("SELECT k, count(*) AS n, min(v) AS mn, max(v) AS mx FROM t GROUP BY k ORDER BY k")
		if err != nil {
			t.Log(err)
			return false
		}
		type agg struct {
			n      int64
			mn, mx float64
		}
		want := make(map[int64]*agg)
		for i, k := range tab.keys {
			a := want[k]
			if a == nil {
				a = &agg{mn: tab.vals[i], mx: tab.vals[i]}
				want[k] = a
			}
			a.n++
			if tab.vals[i] < a.mn {
				a.mn = tab.vals[i]
			}
			if tab.vals[i] > a.mx {
				a.mx = tab.vals[i]
			}
		}
		if res.Table.NumRows() != len(want) {
			t.Logf("groups: got %d want %d", res.Table.NumRows(), len(want))
			return false
		}
		for i := 0; i < res.Table.NumRows(); i++ {
			k := res.Table.Column("k").Get(i).Int64()
			a := want[k]
			if a == nil {
				return false
			}
			if res.Table.Column("n").Get(i).Int64() != a.n {
				return false
			}
			if !approxEqual(res.Table.Column("mn").Get(i).Float64(), a.mn) ||
				!approxEqual(res.Table.Column("mx").Get(i).Float64(), a.mx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialJoinCardinality(t *testing.T) {
	f := func(aKeys, bKeys []uint8) bool {
		a := mkTable(aKeys, make([]int16, len(aKeys)))
		b := mkTable(bKeys, make([]int16, len(bKeys)))
		db := New()
		a.load(t, db, "a")
		b.load(t, db, "b")
		res, err := db.Exec("SELECT count(*) AS n FROM a JOIN b ON a.k = b.k")
		if err != nil {
			t.Log(err)
			return false
		}
		var want int64
		for _, ak := range a.keys {
			for _, bk := range b.keys {
				if ak == bk {
					want++
				}
			}
		}
		if got := res.Table.Column("n").Get(0).Int64(); got != want {
			t.Logf("join count: got %d want %d", got, want)
			return false
		}
		// Left join: inner matches plus unmatched left rows.
		res, err = db.Exec("SELECT count(*) AS n FROM a LEFT JOIN b ON a.k = b.k")
		if err != nil {
			t.Log(err)
			return false
		}
		wantLeft := want
		for _, ak := range a.keys {
			matched := false
			for _, bk := range b.keys {
				if ak == bk {
					matched = true
					break
				}
			}
			if !matched {
				wantLeft++
			}
		}
		return res.Table.Column("n").Get(0).Int64() == wantLeft
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialOrderBy(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []int16) bool {
		tab := mkTable(rawKeys, rawVals)
		if len(tab.keys) == 0 {
			return true
		}
		db := New()
		tab.load(t, db, "t")
		res, err := db.Exec("SELECT v FROM t ORDER BY v")
		if err != nil {
			t.Log(err)
			return false
		}
		col := res.Table.Column("v")
		for i := 1; i < col.Len(); i++ {
			if col.Float64s()[i-1] > col.Float64s()[i] {
				return false
			}
		}
		return col.Len() == len(tab.keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialDistinct(t *testing.T) {
	f := func(rawKeys []uint8) bool {
		tab := mkTable(rawKeys, make([]int16, len(rawKeys)))
		if len(tab.keys) == 0 {
			return true
		}
		db := New()
		tab.load(t, db, "t")
		res, err := db.Exec("SELECT DISTINCT k FROM t")
		if err != nil {
			t.Log(err)
			return false
		}
		want := make(map[int64]bool)
		for _, k := range tab.keys {
			want[k] = true
		}
		return res.Table.NumRows() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// ---------------------------------------------------------------------
// Parallel differential tests: every covered query shape must produce
// results identical to serial execution at any worker count. The
// morsel exchange preserves row order, so the comparison is exact and
// positional; if a future exchange relaxes ordering, these tests must
// switch to comparing sorted row renderings instead.

// parallelWorkerCounts are the parallelism levels differential tests
// compare against serial execution.
var parallelWorkerCounts = []int{1, 2, 8}

// loadWide populates a table large enough to span several storage
// segments so morsel dispatch actually fans out.
func loadWide(t *testing.T, db *DB, rows int) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE w (k BIGINT, g INTEGER, v DOUBLE, s VARCHAR)")
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		if i%500 == 0 {
			if sb.Len() > 0 {
				mustExec(t, db, sb.String())
				sb.Reset()
			}
			sb.WriteString("INSERT INTO w VALUES ")
		} else {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %d, %g, 's%d')", i%97, i%13, float64(i%31)-15.0, i%7)
	}
	if sb.Len() > 0 {
		mustExec(t, db, sb.String())
	}
}

// renderTable flattens a result into printable rows for comparison.
func renderTable(t *testing.T, tab *vector.Table) []string {
	t.Helper()
	rows := make([]string, tab.NumRows())
	for i := range rows {
		var sb strings.Builder
		for c := 0; c < tab.NumCols(); c++ {
			sb.WriteString(tab.Cols[c].Get(i).String())
			sb.WriteString("|")
		}
		rows[i] = sb.String()
	}
	return rows
}

func TestDifferentialParallelMatchesSerial(t *testing.T) {
	queries := []string{
		// filter-heavy scans
		"SELECT k, v FROM w WHERE v > 0",
		"SELECT k, v FROM w WHERE v > 100",  // empty result
		"SELECT k, v FROM w WHERE v > -100", // all-true predicate
		"SELECT k + 1, v * 2 FROM w WHERE k % 3 = 0",
		// group-by (single int key fast path, multi-key, string key)
		"SELECT g, count(*) AS n, sum(v) AS s, min(v) AS mn, max(v) AS mx FROM w GROUP BY g",
		"SELECT k, g, count(*) AS n, avg(v) AS m FROM w GROUP BY k, g",
		"SELECT s, count(*) AS n FROM w GROUP BY s",
		"SELECT count(*) AS n, sum(k) AS s FROM w",              // global agg
		"SELECT g, count(*) AS n FROM w WHERE v > 0 GROUP BY g", // agg over filter
		// joins (int fast path and parallel probe)
		"SELECT count(*) AS n FROM w a JOIN w b ON a.k = b.k",
		"SELECT a.k, b.g FROM w a JOIN w b ON a.k = b.k WHERE a.v > 10",
		"SELECT a.k, b.v FROM w a LEFT JOIN w b ON a.k = b.k AND b.v > 12",
		// distinct
		"SELECT DISTINCT g FROM w",
		"SELECT DISTINCT k, g FROM w",
		// sort and limit over parallel children
		"SELECT k, v FROM w WHERE v > 0 ORDER BY k, v LIMIT 50",
	}
	db := New()
	db.Parallelism = 1
	loadWide(t, db, 10_000)
	for _, q := range queries {
		serial, err := db.Exec(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		want := renderTable(t, serial.Table)
		for _, workers := range parallelWorkerCounts {
			db.Parallelism = workers
			got, err := db.Exec(q)
			if err != nil {
				t.Fatalf("workers=%d %q: %v", workers, q, err)
			}
			rows := renderTable(t, got.Table)
			if len(rows) != len(want) {
				t.Fatalf("workers=%d %q: %d rows, serial %d", workers, q, len(rows), len(want))
			}
			for i := range rows {
				if rows[i] != want[i] {
					t.Fatalf("workers=%d %q row %d:\n  got  %s\n  want %s", workers, q, i, rows[i], want[i])
				}
			}
		}
		db.Parallelism = 1
	}
}

func TestDifferentialParallelRandomized(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []int16) bool {
		tab := mkTable(rawKeys, rawVals)
		db := New()
		tab.load(t, db, "t")
		queries := []string{
			"SELECT k, count(*) AS n, sum(v) AS s FROM t GROUP BY k",
			"SELECT count(*) AS n FROM t a JOIN t b ON a.k = b.k",
			"SELECT DISTINCT k FROM t",
			"SELECT k, v FROM t WHERE v > 0",
		}
		for _, q := range queries {
			db.Parallelism = 1
			serial, err := db.Exec(q)
			if err != nil {
				t.Log(err)
				return false
			}
			want := renderTable(t, serial.Table)
			for _, workers := range parallelWorkerCounts[1:] {
				db.Parallelism = workers
				got, err := db.Exec(q)
				if err != nil {
					t.Log(err)
					return false
				}
				rows := renderTable(t, got.Table)
				if len(rows) != len(want) {
					t.Logf("workers=%d %q: %d rows, serial %d", workers, q, len(rows), len(want))
					return false
				}
				for i := range rows {
					if rows[i] != want[i] {
						t.Logf("workers=%d %q row %d: got %s want %s", workers, q, i, rows[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if -a > scale {
		scale = -a
	}
	return d <= 1e-9*scale
}

func TestLeftJoinResidualPadding(t *testing.T) {
	db := newTestDB(t)
	// Every user joins orders but the residual rejects some matches
	// entirely; those users must surface null-padded.
	tab := mustQuery(t, db, `
		SELECT u.id, o.amount FROM users u
		LEFT JOIN orders o ON u.id = o.user_id AND o.amount > 100
		ORDER BY u.id`)
	if tab.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5 (all users, no matches survive)", tab.NumRows())
	}
	for i := 0; i < tab.NumRows(); i++ {
		if !tab.Column("amount").IsNull(i) {
			t.Fatal("residual-rejected matches must pad with NULL")
		}
	}
}

func TestUnionTypeCasting(t *testing.T) {
	db := newTestDB(t)
	// First arm DOUBLE, second arm BIGINT: the union casts to DOUBLE.
	tab := mustQuery(t, db, "SELECT score FROM users WHERE id = 1 UNION ALL SELECT id FROM users WHERE id = 2")
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Cols[0].Get(1).Float64() != 2 {
		t.Fatalf("cast row = %v", tab.Cols[0].Get(1))
	}
}

func TestScalarUDFInsideWhere(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT id FROM users WHERE sqrt(CAST(id AS DOUBLE) * CAST(id AS DOUBLE)) > 3")
	if tab.NumRows() != 2 { // ids 4, 5
		t.Fatalf("rows = %d", tab.NumRows())
	}
}
