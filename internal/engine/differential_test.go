package engine

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// Differential tests: random datasets, SQL results compared against
// straightforward Go reference computations.

type randTable struct {
	keys []int64 // small domain so joins and groups collide
	vals []float64
}

func (r randTable) load(t *testing.T, db *DB, name string) {
	t.Helper()
	mustExec(t, db, fmt.Sprintf("CREATE TABLE %s (k BIGINT, v DOUBLE)", name))
	if len(r.keys) == 0 {
		return
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", name)
	for i := range r.keys {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, "(%d, %g)", r.keys[i], r.vals[i])
	}
	mustExec(t, db, sb.String())
}

// mkTable derives a bounded random table from quick's raw inputs.
func mkTable(rawKeys []uint8, rawVals []int16) randTable {
	n := len(rawKeys)
	if len(rawVals) < n {
		n = len(rawVals)
	}
	if n > 200 {
		n = 200
	}
	out := randTable{keys: make([]int64, n), vals: make([]float64, n)}
	for i := 0; i < n; i++ {
		out.keys[i] = int64(rawKeys[i] % 8) // 8 distinct keys
		out.vals[i] = float64(rawVals[i]) / 4
	}
	return out
}

func TestDifferentialFilterSum(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []int16) bool {
		tab := mkTable(rawKeys, rawVals)
		db := New()
		tab.load(t, db, "t")
		res, err := db.Exec("SELECT count(*) AS n, sum(v) AS s FROM t WHERE v > 0")
		if err != nil {
			t.Log(err)
			return false
		}
		var wantN int64
		var wantS float64
		for i := range tab.keys {
			if tab.vals[i] > 0 {
				wantN++
				wantS += tab.vals[i]
			}
		}
		gotN := res.Table.Column("n").Get(0).Int64()
		if gotN != wantN {
			t.Logf("count: got %d want %d", gotN, wantN)
			return false
		}
		sv := res.Table.Column("s").Get(0)
		if wantN == 0 {
			return sv.IsNull()
		}
		return approxEqual(sv.Float64(), wantS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialGroupBy(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []int16) bool {
		tab := mkTable(rawKeys, rawVals)
		if len(tab.keys) == 0 {
			return true
		}
		db := New()
		tab.load(t, db, "t")
		res, err := db.Exec("SELECT k, count(*) AS n, min(v) AS mn, max(v) AS mx FROM t GROUP BY k ORDER BY k")
		if err != nil {
			t.Log(err)
			return false
		}
		type agg struct {
			n      int64
			mn, mx float64
		}
		want := make(map[int64]*agg)
		for i, k := range tab.keys {
			a := want[k]
			if a == nil {
				a = &agg{mn: tab.vals[i], mx: tab.vals[i]}
				want[k] = a
			}
			a.n++
			if tab.vals[i] < a.mn {
				a.mn = tab.vals[i]
			}
			if tab.vals[i] > a.mx {
				a.mx = tab.vals[i]
			}
		}
		if res.Table.NumRows() != len(want) {
			t.Logf("groups: got %d want %d", res.Table.NumRows(), len(want))
			return false
		}
		for i := 0; i < res.Table.NumRows(); i++ {
			k := res.Table.Column("k").Get(i).Int64()
			a := want[k]
			if a == nil {
				return false
			}
			if res.Table.Column("n").Get(i).Int64() != a.n {
				return false
			}
			if !approxEqual(res.Table.Column("mn").Get(i).Float64(), a.mn) ||
				!approxEqual(res.Table.Column("mx").Get(i).Float64(), a.mx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialJoinCardinality(t *testing.T) {
	f := func(aKeys, bKeys []uint8) bool {
		a := mkTable(aKeys, make([]int16, len(aKeys)))
		b := mkTable(bKeys, make([]int16, len(bKeys)))
		db := New()
		a.load(t, db, "a")
		b.load(t, db, "b")
		res, err := db.Exec("SELECT count(*) AS n FROM a JOIN b ON a.k = b.k")
		if err != nil {
			t.Log(err)
			return false
		}
		var want int64
		for _, ak := range a.keys {
			for _, bk := range b.keys {
				if ak == bk {
					want++
				}
			}
		}
		if got := res.Table.Column("n").Get(0).Int64(); got != want {
			t.Logf("join count: got %d want %d", got, want)
			return false
		}
		// Left join: inner matches plus unmatched left rows.
		res, err = db.Exec("SELECT count(*) AS n FROM a LEFT JOIN b ON a.k = b.k")
		if err != nil {
			t.Log(err)
			return false
		}
		wantLeft := want
		for _, ak := range a.keys {
			matched := false
			for _, bk := range b.keys {
				if ak == bk {
					matched = true
					break
				}
			}
			if !matched {
				wantLeft++
			}
		}
		return res.Table.Column("n").Get(0).Int64() == wantLeft
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialOrderBy(t *testing.T) {
	f := func(rawKeys []uint8, rawVals []int16) bool {
		tab := mkTable(rawKeys, rawVals)
		if len(tab.keys) == 0 {
			return true
		}
		db := New()
		tab.load(t, db, "t")
		res, err := db.Exec("SELECT v FROM t ORDER BY v")
		if err != nil {
			t.Log(err)
			return false
		}
		col := res.Table.Column("v")
		for i := 1; i < col.Len(); i++ {
			if col.Float64s()[i-1] > col.Float64s()[i] {
				return false
			}
		}
		return col.Len() == len(tab.keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDifferentialDistinct(t *testing.T) {
	f := func(rawKeys []uint8) bool {
		tab := mkTable(rawKeys, make([]int16, len(rawKeys)))
		if len(tab.keys) == 0 {
			return true
		}
		db := New()
		tab.load(t, db, "t")
		res, err := db.Exec("SELECT DISTINCT k FROM t")
		if err != nil {
			t.Log(err)
			return false
		}
		want := make(map[int64]bool)
		for _, k := range tab.keys {
			want[k] = true
		}
		return res.Table.NumRows() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if -a > scale {
		scale = -a
	}
	return d <= 1e-9*scale
}

func TestLeftJoinResidualPadding(t *testing.T) {
	db := newTestDB(t)
	// Every user joins orders but the residual rejects some matches
	// entirely; those users must surface null-padded.
	tab := mustQuery(t, db, `
		SELECT u.id, o.amount FROM users u
		LEFT JOIN orders o ON u.id = o.user_id AND o.amount > 100
		ORDER BY u.id`)
	if tab.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5 (all users, no matches survive)", tab.NumRows())
	}
	for i := 0; i < tab.NumRows(); i++ {
		if !tab.Column("amount").IsNull(i) {
			t.Fatal("residual-rejected matches must pad with NULL")
		}
	}
}

func TestUnionTypeCasting(t *testing.T) {
	db := newTestDB(t)
	// First arm DOUBLE, second arm BIGINT: the union casts to DOUBLE.
	tab := mustQuery(t, db, "SELECT score FROM users WHERE id = 1 UNION ALL SELECT id FROM users WHERE id = 2")
	if tab.NumRows() != 2 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.Cols[0].Get(1).Float64() != 2 {
		t.Fatalf("cast row = %v", tab.Cols[0].Get(1))
	}
}

func TestScalarUDFInsideWhere(t *testing.T) {
	db := newTestDB(t)
	tab := mustQuery(t, db, "SELECT id FROM users WHERE sqrt(CAST(id AS DOUBLE) * CAST(id AS DOUBLE)) > 3")
	if tab.NumRows() != 2 { // ids 4, 5
		t.Fatalf("rows = %d", tab.NumRows())
	}
}
