package engine

import (
	"fmt"
	"testing"

	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// loadClustered bulk-loads a table of rows sorted/clustered on id so
// zone maps are selective: id ascending, grp clustered, val with
// sprinkled NULLs, cat low-cardinality strings.
func loadClustered(t *testing.T, db *DB, rows int, compress bool) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE e (id BIGINT, grp INTEGER, val DOUBLE, cat VARCHAR)")
	tab, err := db.cat.Table("e")
	if err != nil {
		t.Fatal(err)
	}
	tab.Data.SetCompression(compress)
	ids := make([]int64, rows)
	grps := make([]int32, rows)
	vals := vector.New(vector.Float64, rows)
	cats := make([]string, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		grps[i] = int32(i / 1000)
		if i%37 == 0 {
			vals.AppendValue(vector.Null())
		} else {
			vals.AppendValue(vector.NewFloat64(float64(i%100) / 100))
		}
		cats[i] = fmt.Sprintf("cat-%d", i%7)
	}
	ch := vector.NewChunk(
		vector.FromInt64s(ids), vector.FromInt32s(grps), vals, vector.FromStrings(cats))
	if err := tab.Data.AppendChunk(ch); err != nil {
		t.Fatal(err)
	}
}

// pruningQueries exercises every pushed operator, flipped operands,
// conjunctions, an unpushable <> and predicates over nullable and
// string columns.
var pruningQueries = []string{
	"SELECT id, val FROM e WHERE id >= 7000",
	"SELECT id FROM e WHERE id < 1000",
	"SELECT count(*) AS n FROM e WHERE id = 4242",
	"SELECT id, cat FROM e WHERE id >= 2000 AND id <= 2100",
	"SELECT count(*) AS n FROM e WHERE cat = 'cat-3'",
	"SELECT sum(val) AS s, count(*) AS n FROM e WHERE id > 6000",
	"SELECT id FROM e WHERE val > 0.5 AND id < 500",
	"SELECT count(*) AS n FROM e WHERE id <> 3",
	"SELECT id FROM e WHERE 7777 < id",
	"SELECT grp, count(*) AS n FROM e WHERE id >= 5000 GROUP BY grp",
	"SELECT id FROM e WHERE id > 100000", // prunes everything
}

// Acceptance: compressed + pruned scans return row-identical results
// to the uncompressed, unpruned path across worker counts, for both
// materialized and streamed delivery.
func TestPrunedCompressedMatchesUncompressed(t *testing.T) {
	const rows = storage.SegmentRows*4 + 123
	comp := New()
	loadClustered(t, comp, rows, true)
	raw := New()
	loadClustered(t, raw, rows, false)

	for _, q := range pruningQueries {
		raw.Parallelism = 1
		want := renderTable(t, mustQuery(t, raw, q))
		for _, workers := range parallelWorkerCounts {
			comp.Parallelism = workers

			// Materialized delivery.
			got := renderTable(t, mustQuery(t, comp, q))
			compareRows(t, q, workers, "materialized", got, want)

			// Streamed delivery.
			rs, err := comp.Query(q)
			if err != nil {
				t.Fatalf("stream %q: %v", q, err)
			}
			streamed, err := rs.Materialize()
			if err != nil {
				t.Fatalf("stream %q: %v", q, err)
			}
			compareRows(t, q, workers, "streamed", renderTable(t, streamed), want)
		}
	}
}

func compareRows(t *testing.T, q string, workers int, mode string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s workers=%d %q: %d rows, want %d", mode, workers, q, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s workers=%d %q row %d:\n  got  %s\n  want %s", mode, workers, q, i, got[i], want[i])
		}
	}
}

// Selective scans must actually skip segments on the compressed
// store, and never on the uncompressed one; the skip counters must
// surface through the ResultSet.
func TestPruningScanStats(t *testing.T) {
	const rows = storage.SegmentRows * 4 // 4 sealed segments
	for _, workers := range parallelWorkerCounts {
		comp := New()
		comp.Parallelism = workers
		loadClustered(t, comp, rows, true)

		rs, err := comp.Query("SELECT count(*) AS n FROM e WHERE id >= 7000")
		if err != nil {
			t.Fatal(err)
		}
		tab, err := rs.Materialize()
		if err != nil {
			t.Fatal(err)
		}
		// ids 7000..8191 live in the last segment only.
		if n := tab.Cols[0].Get(0).Int64(); n != int64(rows-7000) {
			t.Fatalf("workers=%d count = %d", workers, n)
		}
		st := rs.ScanStats()
		if st.Skipped() != 3 || st.Scanned() != 1 {
			t.Fatalf("workers=%d scanned=%d skipped=%d, want 1/3", workers, st.Scanned(), st.Skipped())
		}

		// Cumulative counters reach the table stats.
		tabStats, err := func() (storage.TableStats, error) {
			tb, err := comp.cat.Table("e")
			if err != nil {
				return storage.TableStats{}, err
			}
			return tb.Data.Stats(), nil
		}()
		if err != nil {
			t.Fatal(err)
		}
		if tabStats.SegmentsSkipped < 3 {
			t.Fatalf("workers=%d cumulative skipped = %d", workers, tabStats.SegmentsSkipped)
		}

		// The uncompressed reference never prunes.
		raw := New()
		raw.Parallelism = workers
		loadClustered(t, raw, rows, false)
		rrs, err := raw.Query("SELECT count(*) AS n FROM e WHERE id >= 7000")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rrs.Materialize(); err != nil {
			t.Fatal(err)
		}
		if rrs.ScanStats().Skipped() != 0 {
			t.Fatalf("workers=%d uncompressed store pruned %d segments", workers, rrs.ScanStats().Skipped())
		}
	}
}

// loadDim loads a small clustered dimension table keyed to e.grp.
func loadDim(t *testing.T, db *DB, rows int, compress bool) {
	t.Helper()
	mustExec(t, db, "CREATE TABLE d (k INTEGER, tag VARCHAR, w DOUBLE)")
	tab, err := db.cat.Table("d")
	if err != nil {
		t.Fatal(err)
	}
	tab.Data.SetCompression(compress)
	ks := make([]int32, rows)
	tags := make([]string, rows)
	ws := vector.New(vector.Float64, rows)
	for i := 0; i < rows; i++ {
		ks[i] = int32(i)
		tags[i] = fmt.Sprintf("tag-%d", i%5)
		ws.AppendValue(vector.NewFloat64(float64(i) / 8))
	}
	ch := vector.NewChunk(vector.FromInt32s(ks), vector.FromStrings(tags), ws)
	if err := tab.Data.AppendChunk(ch); err != nil {
		t.Fatal(err)
	}
}

// joinPruningQueries push col <op> const conjuncts through the join
// onto either side's scan (PR 3 follow-up): probe-side, build-side,
// both sides, and the LEFT-join right side (sound: a comparison is
// never TRUE on the NULL-padded rows pruning may introduce).
var joinPruningQueries = []string{
	"SELECT e.id, d.tag FROM e JOIN d ON e.grp = d.k WHERE e.id >= 7000",
	"SELECT count(*) AS n FROM e JOIN d ON e.grp = d.k WHERE d.w > 0.5",
	"SELECT e.id, d.w FROM e JOIN d ON e.grp = d.k WHERE e.id < 1200 AND d.w <= 0.25",
	"SELECT e.id, d.tag FROM e LEFT JOIN d ON e.grp = d.k WHERE d.w > 0.125",
	"SELECT sum(e.val) AS s FROM e JOIN d ON e.grp = d.k WHERE e.id > 6000 AND d.tag = 'tag-3'",
}

// Differential: join results with predicates pushed through to pruned
// compressed scans must be row-identical to the uncompressed,
// unpruned path — and the pushdown must actually skip segments.
func TestJoinPushdownPrunedMatchesUnpruned(t *testing.T) {
	const rows = storage.SegmentRows*4 + 123
	comp := New()
	loadClustered(t, comp, rows, true)
	loadDim(t, comp, rows/1000+1, true)
	raw := New()
	loadClustered(t, raw, rows, false)
	loadDim(t, raw, rows/1000+1, false)

	for _, q := range joinPruningQueries {
		raw.Parallelism = 1
		want := renderTable(t, mustQuery(t, raw, q))
		for _, workers := range parallelWorkerCounts {
			comp.Parallelism = workers
			got := renderTable(t, mustQuery(t, comp, q))
			compareRows(t, q, workers, "join-pruned", got, want)
		}
	}

	// The probe-side predicate must skip whole segments under the join.
	comp.Parallelism = 1
	rs, err := comp.Query("SELECT count(*) AS n FROM e JOIN d ON e.grp = d.k WHERE e.id >= 7000")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Materialize(); err != nil {
		t.Fatal(err)
	}
	if rs.ScanStats().Skipped() == 0 {
		t.Fatal("join pushdown skipped no segments")
	}
}

// Pruning must not fire for predicates zone maps cannot decide, and
// must keep the mutable tail segment.
func TestPruningKeepsTailAndUndecidable(t *testing.T) {
	comp := New()
	loadClustered(t, comp, storage.SegmentRows+10, true) // 1 sealed + tail
	// The tail holds ids SegmentRows..SegmentRows+9.
	rs, err := comp.Query(fmt.Sprintf("SELECT count(*) AS n FROM e WHERE id >= %d", storage.SegmentRows))
	if err != nil {
		t.Fatal(err)
	}
	tab, err := rs.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if n := tab.Cols[0].Get(0).Int64(); n != 10 {
		t.Fatalf("tail rows lost: count = %d", n)
	}
	if rs.ScanStats().Skipped() != 1 {
		t.Fatalf("skipped = %d, want the sealed segment only", rs.ScanStats().Skipped())
	}
}

// Persisted compressed tables reload with zone maps intact: pruning
// keeps working after a save/load cycle without eager rehydration.
func TestPruningSurvivesPersistence(t *testing.T) {
	dir := t.TempDir()
	db := New()
	loadClustered(t, db, storage.SegmentRows*3, true)
	if err := db.SaveDir(dir); err != nil {
		t.Fatal(err)
	}

	db2 := New()
	if err := db2.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	rs, err := db2.Query("SELECT count(*) AS n FROM e WHERE id < 100")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := rs.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if n := tab.Cols[0].Get(0).Int64(); n != 100 {
		t.Fatalf("count = %d", n)
	}
	if rs.ScanStats().Skipped() != 2 {
		t.Fatalf("skipped = %d after reload, want 2", rs.ScanStats().Skipped())
	}
}
