// Package governor provides process-wide resource governance for a
// serving database: every mechanism below it (parallel executor,
// memory budget, spill) is per-query, so N concurrent queries would
// each claim all CPUs and their own budget and the process would
// over-commit instead of degrading. The governor sits between the
// session layer and the executor and hands each admitted query a
// Ticket — a lease on a slice of one shared memory pool and a bounded
// worker-slot pool — or makes it wait in a bounded FIFO queue, or
// rejects it with a typed retryable error when the queue is full.
//
// Invariants:
//
//   - The sum of outstanding memory leases never exceeds Config.PoolBytes
//     (leases are fixed fair shares, PoolBytes/MaxActive, so even a
//     query admitted when the pool is idle cannot strand later ones).
//   - At most MaxActive tickets are outstanding; excess admissions
//     queue in arrival order and are granted strictly FIFO.
//   - Every granted ticket carries at least one worker: worker slots
//     bound the *extra* parallelism a query may claim, so admission
//     can never deadlock on an empty slot pool.
//
// The lease becomes the query's exec MemoryBudget, so an over-budget
// query degrades to spill exactly as a standalone one would — the
// governor changes who sets the number, not the spill machinery.
package governor

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Config sizes the governor. The zero value of any field selects its
// default; a zero PoolBytes disables memory leasing (queries run with
// the engine's own per-query budget, possibly unlimited).
type Config struct {
	// PoolBytes is the process-wide memory pool queries lease from.
	// Each admitted query leases PoolBytes/MaxActive (its exec memory
	// budget); 0 disables leasing.
	PoolBytes int64

	// WorkerSlots bounds the extra executor workers handed out across
	// all running queries (each query always gets one worker
	// regardless). 0 means runtime.NumCPU().
	WorkerSlots int

	// MaxActive bounds concurrently executing queries. 0 means
	// 2 × runtime.NumCPU().
	MaxActive int

	// MaxQueued bounds the admission queue; an admission arriving with
	// the queue full is rejected with a retryable OverloadedError.
	// 0 means 64.
	MaxQueued int

	// SessionMaxActive bounds one session's concurrently executing
	// queries; 0 means unlimited.
	SessionMaxActive int

	// SessionMaxMemory bounds one session's total leased bytes;
	// a query that would exceed it gets a smaller lease, or a
	// retryable rejection when nothing is left. 0 means unlimited.
	SessionMaxMemory int64

	// RetryAfter is the base client back-off hint carried by
	// OverloadedError; 0 means 250ms.
	RetryAfter time.Duration
}

func (c Config) maxActive() int {
	if c.MaxActive > 0 {
		return c.MaxActive
	}
	return 2 * runtime.NumCPU()
}

func (c Config) maxQueued() int {
	if c.MaxQueued > 0 {
		return c.MaxQueued
	}
	return 64
}

func (c Config) workerSlots() int {
	if c.WorkerSlots > 0 {
		return c.WorkerSlots
	}
	return runtime.NumCPU()
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return 250 * time.Millisecond
}

// OverloadedError is the typed, retryable rejection: the server is
// healthy but saturated, and the client should back off RetryAfter
// before retrying. The wire layer maps it to a dedicated frame so
// remote clients receive the same type.
type OverloadedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("governor: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// ErrQueueTimeout reports that an admission waited out its deadline
// while queued. It is a deadline error, not an overload rejection:
// retrying immediately would queue again behind the same backlog.
var ErrQueueTimeout = errors.New("governor: queue wait deadline exceeded")

// errSessionClosed guards against admissions on a closed session.
var errSessionClosed = errors.New("governor: session closed")

// Governor is the process-wide resource arbiter. One instance serves
// one engine; all methods are safe for concurrent use.
type Governor struct {
	cfg Config

	mu          sync.Mutex
	active      int
	leased      int64
	workersFree int
	queue       []*waiter
	draining    bool

	// cumulative / peak counters for reports and tests
	admitted   int64
	rejected   int64
	timedOut   int64
	peakActive int
	peakQueued int
	peakLeased int64
}

// New creates a governor from cfg (zero fields take their defaults).
func New(cfg Config) *Governor {
	return &Governor{cfg: cfg, workersFree: cfg.workerSlots()}
}

// Session is one client's admission scope (per-connection in the wire
// server): per-session limits are enforced against it.
type Session struct {
	g      *Governor
	active int
	leased int64
	closed bool
}

// NewSession opens an admission scope.
func (g *Governor) NewSession() *Session { return &Session{g: g} }

// Close marks the session closed; further admissions through it fail.
// Outstanding tickets remain valid until released.
func (s *Session) Close() {
	s.g.mu.Lock()
	s.closed = true
	s.g.mu.Unlock()
}

// Ticket is one admitted query's resource lease. Release must be
// called exactly when the query finishes (it is idempotent).
type Ticket struct {
	g       *Governor
	sess    *Session
	budget  int64
	workers int
	once    sync.Once
}

// MemoryBudget returns the bytes leased from the pool (0 when the
// pool is disabled: no lease, caller falls back to its own budget).
func (t *Ticket) MemoryBudget() int64 { return t.budget }

// Workers returns the granted executor parallelism (always ≥ 1).
func (t *Ticket) Workers() int { return t.workers }

// Release returns the lease to the pool and wakes the next queued
// admission. Idempotent.
func (t *Ticket) Release() {
	t.once.Do(func() {
		g := t.g
		g.mu.Lock()
		g.active--
		g.leased -= t.budget
		g.workersFree += t.workers - 1
		if t.sess != nil {
			t.sess.active--
			t.sess.leased -= t.budget
		}
		g.dispatchLocked()
		g.mu.Unlock()
	})
}

type admitResult struct {
	ticket *Ticket
	err    error
}

type waiter struct {
	sess *Session
	want int
	ch   chan admitResult // buffered: dispatch never blocks
}

// Admit requests a ticket for one query wanting up to wantWorkers
// executor workers (0 means NumCPU). When the governor is at
// MaxActive the call queues FIFO; wait bounds the queue time (0 =
// wait indefinitely) and a closed done channel abandons the wait.
// Rejections (queue full, draining, session limits) are
// *OverloadedError; waiting out the deadline is ErrQueueTimeout.
func (g *Governor) Admit(sess *Session, wantWorkers int, wait time.Duration, done <-chan struct{}) (*Ticket, error) {
	g.mu.Lock()
	if g.draining {
		g.rejected++
		g.mu.Unlock()
		return nil, &OverloadedError{Reason: "server draining", RetryAfter: g.cfg.retryAfter()}
	}
	if sess != nil && sess.closed {
		g.mu.Unlock()
		return nil, errSessionClosed
	}
	// Grant immediately only when no one is queued ahead: an empty
	// queue is what makes the fast path FIFO-safe.
	if g.active < g.cfg.maxActive() && len(g.queue) == 0 {
		t, err := g.grantLocked(sess, wantWorkers)
		g.mu.Unlock()
		return t, err
	}
	if len(g.queue) >= g.cfg.maxQueued() {
		g.rejected++
		g.mu.Unlock()
		// Scale the hint by queue depth: a full queue means real wait.
		return nil, &OverloadedError{Reason: "admission queue full", RetryAfter: 2 * g.cfg.retryAfter()}
	}
	w := &waiter{sess: sess, want: wantWorkers, ch: make(chan admitResult, 1)}
	g.queue = append(g.queue, w)
	if len(g.queue) > g.peakQueued {
		g.peakQueued = len(g.queue)
	}
	g.mu.Unlock()

	var timeout <-chan time.Time
	if wait > 0 {
		tm := time.NewTimer(wait)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case res := <-w.ch:
		return res.ticket, res.err
	case <-timeout:
	case <-done:
	}
	// Timed out (or abandoned) while queued. Removing ourselves races
	// with a concurrent grant: dispatch removes the waiter and sends
	// the result under the governor lock, so if the waiter is gone
	// from the queue the result is already in the (buffered) channel —
	// receive it and return the ticket so the lease is not stranded.
	g.mu.Lock()
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.timedOut++
			g.mu.Unlock()
			return nil, ErrQueueTimeout
		}
	}
	g.mu.Unlock()
	res := <-w.ch
	if res.ticket != nil {
		res.ticket.Release()
	}
	return nil, ErrQueueTimeout
}

// grantLocked builds a ticket for one admission. Session limits are
// re-checked here (not only at Admit entry) because a session's other
// queries may have been admitted while this one queued.
func (g *Governor) grantLocked(sess *Session, wantWorkers int) (*Ticket, error) {
	if sess != nil && g.cfg.SessionMaxActive > 0 && sess.active >= g.cfg.SessionMaxActive {
		g.rejected++
		return nil, &OverloadedError{Reason: "session concurrent-query limit", RetryAfter: g.cfg.retryAfter()}
	}
	var budget int64
	if g.cfg.PoolBytes > 0 {
		budget = g.cfg.PoolBytes / int64(g.cfg.maxActive())
		if budget < 1 {
			budget = 1
		}
		if sess != nil && g.cfg.SessionMaxMemory > 0 {
			rem := g.cfg.SessionMaxMemory - sess.leased
			if rem <= 0 {
				g.rejected++
				return nil, &OverloadedError{Reason: "session memory limit", RetryAfter: g.cfg.retryAfter()}
			}
			if budget > rem {
				budget = rem
			}
		}
	}
	want := wantWorkers
	if want <= 0 {
		want = runtime.NumCPU()
	}
	extra := want - 1
	if extra > g.workersFree {
		extra = g.workersFree
	}
	g.workersFree -= extra

	g.active++
	g.leased += budget
	if sess != nil {
		sess.active++
		sess.leased += budget
	}
	g.admitted++
	if g.active > g.peakActive {
		g.peakActive = g.active
	}
	if g.leased > g.peakLeased {
		g.peakLeased = g.leased
	}
	return &Ticket{g: g, sess: sess, budget: budget, workers: 1 + extra}, nil
}

// dispatchLocked grants queued admissions in FIFO order while
// capacity lasts. A waiter whose session limit is now exceeded gets
// its rejection here without consuming capacity.
func (g *Governor) dispatchLocked() {
	for g.active < g.cfg.maxActive() && len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		t, err := g.grantLocked(w.sess, w.want)
		w.ch <- admitResult{ticket: t, err: err}
	}
}

// SetDraining rejects all future admissions and flushes the queue
// with retryable "server draining" errors. In-flight tickets are
// unaffected; the caller waits for them separately.
func (g *Governor) SetDraining() {
	g.mu.Lock()
	g.draining = true
	q := g.queue
	g.queue = nil
	for _, w := range q {
		g.rejected++
		w.ch <- admitResult{err: &OverloadedError{Reason: "server draining", RetryAfter: g.cfg.retryAfter()}}
	}
	g.mu.Unlock()
}

// Stats is a snapshot of the governor's gauges and counters.
type Stats struct {
	Active      int   // currently executing queries
	Queued      int   // currently waiting admissions
	LeasedBytes int64 // currently leased pool bytes

	Admitted int64 // tickets granted since start
	Rejected int64 // overload rejections since start
	TimedOut int64 // queue-wait deadline expiries since start

	PeakActive      int   // high-water concurrent queries
	PeakQueued      int   // high-water queue depth
	PeakLeasedBytes int64 // high-water leased bytes (≤ PoolBytes always)
}

// Stats returns a consistent snapshot.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return Stats{
		Active:          g.active,
		Queued:          len(g.queue),
		LeasedBytes:     g.leased,
		Admitted:        g.admitted,
		Rejected:        g.rejected,
		TimedOut:        g.timedOut,
		PeakActive:      g.peakActive,
		PeakQueued:      g.peakQueued,
		PeakLeasedBytes: g.peakLeased,
	}
}

// Config returns the governor's effective configuration.
func (g *Governor) Config() Config { return g.cfg }
