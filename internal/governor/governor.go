// Package governor provides process-wide resource governance for a
// serving database: every mechanism below it (parallel executor,
// memory budget, spill) is per-query, so N concurrent queries would
// each claim all CPUs and their own budget and the process would
// over-commit instead of degrading. The governor sits between the
// session layer and the executor and hands each admitted query a
// Ticket — a lease on a slice of one shared memory pool and a bounded
// worker-slot pool — or makes it wait in a bounded FIFO queue, or
// rejects it with a typed retryable error when the queue is full.
//
// Invariants:
//
//   - The sum of outstanding memory leases never exceeds Config.PoolBytes.
//     Leases start at a fair share (PoolBytes/MaxActive) and may grow
//     into idle pool bytes via Ticket.TryGrow; admission reclaims grown
//     bytes back toward fair share before it would otherwise shrink a
//     newcomer's grant, so a grown query can never strand later ones.
//   - At most MaxActive tickets are outstanding; excess admissions
//     queue in arrival order and are granted strictly FIFO.
//   - Every granted ticket carries at least one worker: worker slots
//     bound the *extra* parallelism a query may claim, so admission
//     can never deadlock on an empty slot pool.
//
// The lease becomes the query's exec MemoryBudget, so an over-budget
// query degrades to spill exactly as a standalone one would — the
// governor changes who sets the number, not the spill machinery. The
// lease is read through an atomic watermark, which is also the shrink
// enforcement mechanism: lowering the watermark makes the query's next
// over-budget check fire, and spill takes it back under the new lease.
package governor

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes the governor. The zero value of any field selects its
// default; a zero PoolBytes disables memory leasing (queries run with
// the engine's own per-query budget, possibly unlimited).
type Config struct {
	// PoolBytes is the process-wide memory pool queries lease from.
	// Each admitted query leases PoolBytes/MaxActive (its exec memory
	// budget); 0 disables leasing.
	PoolBytes int64

	// WorkerSlots bounds the extra executor workers handed out across
	// all running queries (each query always gets one worker
	// regardless). 0 means runtime.NumCPU().
	WorkerSlots int

	// MaxActive bounds concurrently executing queries. 0 means
	// 2 × runtime.NumCPU().
	MaxActive int

	// MaxQueued bounds the admission queue; an admission arriving with
	// the queue full is rejected with a retryable OverloadedError.
	// 0 means 64.
	MaxQueued int

	// SessionMaxActive bounds one session's concurrently executing
	// queries; 0 means unlimited.
	SessionMaxActive int

	// SessionMaxMemory bounds one session's total leased bytes;
	// a query that would exceed it gets a smaller lease, or a
	// retryable rejection when nothing is left. 0 means unlimited.
	SessionMaxMemory int64

	// RetryAfter is the base client back-off hint carried by
	// OverloadedError; 0 means 250ms.
	RetryAfter time.Duration

	// ReclaimPolicy selects how leases behave after admission:
	//
	//   "fair" (default) — Ticket.TryGrow grants idle pool bytes, and
	//     admission reclaims grown bytes back toward fair share when
	//     the pool cannot cover a newcomer's fair-share grant.
	//   "static" — PR 6 behavior: leases are fixed at admission;
	//     TryGrow is a no-op and nothing is ever reclaimed.
	ReclaimPolicy string
}

func (c Config) maxActive() int {
	if c.MaxActive > 0 {
		return c.MaxActive
	}
	return 2 * runtime.NumCPU()
}

func (c Config) maxQueued() int {
	if c.MaxQueued > 0 {
		return c.MaxQueued
	}
	return 64
}

func (c Config) workerSlots() int {
	if c.WorkerSlots > 0 {
		return c.WorkerSlots
	}
	return runtime.NumCPU()
}

func (c Config) retryAfter() time.Duration {
	if c.RetryAfter > 0 {
		return c.RetryAfter
	}
	return 250 * time.Millisecond
}

// adaptive reports whether leases may grow and be reclaimed.
func (c Config) adaptive() bool { return c.ReclaimPolicy != "static" }

// fairShare is the lease granted at admission (and the level reclaim
// shrinks grown tickets back toward).
func (c Config) fairShare() int64 {
	if c.PoolBytes <= 0 {
		return 0
	}
	fair := c.PoolBytes / int64(c.maxActive())
	if fair < 1 {
		fair = 1
	}
	return fair
}

// OverloadedError is the typed, retryable rejection: the server is
// healthy but saturated, and the client should back off RetryAfter
// before retrying. The wire layer maps it to a dedicated frame so
// remote clients receive the same type.
type OverloadedError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("governor: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// ErrQueueTimeout reports that an admission waited out its deadline
// while queued. It is a deadline error, not an overload rejection:
// retrying immediately would queue again behind the same backlog.
var ErrQueueTimeout = errors.New("governor: queue wait deadline exceeded")

// errSessionClosed guards against admissions on a closed session.
var errSessionClosed = errors.New("governor: session closed")

// Governor is the process-wide resource arbiter. One instance serves
// one engine; all methods are safe for concurrent use.
type Governor struct {
	cfg Config

	mu          sync.Mutex
	active      int
	leased      int64
	workersFree int
	queue       []*waiter
	draining    bool
	tickets     map[*Ticket]struct{} // outstanding, for the reclaim path

	// cumulative / peak counters for reports and tests
	admitted   int64
	rejected   int64
	timedOut   int64
	peakActive int
	peakQueued int
	peakLeased int64
	grows      int64
	grownBytes int64
	shrinks    int64
	shrunkByts int64
	reclaims   int64
}

// New creates a governor from cfg (zero fields take their defaults).
func New(cfg Config) *Governor {
	return &Governor{
		cfg:         cfg,
		workersFree: cfg.workerSlots(),
		tickets:     make(map[*Ticket]struct{}),
	}
}

// Session is one client's admission scope (per-connection in the wire
// server): per-session limits are enforced against it.
type Session struct {
	g      *Governor
	active int
	leased int64
	closed bool
}

// NewSession opens an admission scope.
func (g *Governor) NewSession() *Session { return &Session{g: g} }

// Close marks the session closed; further admissions through it fail.
// Outstanding tickets remain valid until released.
func (s *Session) Close() {
	s.g.mu.Lock()
	s.closed = true
	s.g.mu.Unlock()
}

// Ticket is one admitted query's resource lease. Release must be
// called exactly when the query finishes (it is idempotent).
//
// The memory lease is dynamic: it starts at the admission fair share,
// TryGrow raises it into idle pool bytes, and the governor's reclaim
// path lowers it back toward fair share under admission pressure. The
// current value lives in an atomic watermark so the executor's
// over-budget check observes a shrink without any locking.
type Ticket struct {
	g        *Governor
	sess     *Session
	initial  int64        // lease granted at admission (fair share)
	lease    atomic.Int64 // current lease watermark; exec reads this
	workers  int
	once     sync.Once
	released bool // guarded by g.mu; blocks TryGrow after Release
	grows    int  // guarded by g.mu
	shrinks  int  // guarded by g.mu
}

// MemoryBudget returns the bytes currently leased from the pool (0
// when the pool is disabled: no lease, caller falls back to its own
// budget). The value can change between calls: TryGrow raises it and
// a governor reclaim lowers it.
func (t *Ticket) MemoryBudget() int64 { return t.lease.Load() }

// InitialBudget returns the fair-share lease granted at admission.
func (t *Ticket) InitialBudget() int64 { return t.initial }

// Growths returns how many times TryGrow enlarged this lease and how
// many times a reclaim shrank it.
func (t *Ticket) Growths() (grows, shrinks int) {
	t.g.mu.Lock()
	defer t.g.mu.Unlock()
	return t.grows, t.shrinks
}

// Workers returns the granted executor parallelism (always ≥ 1).
func (t *Ticket) Workers() int { return t.workers }

// TryGrow asks for up to n more leased bytes and returns the ticket's
// new total lease. It grants min(n, idle pool bytes, session
// remaining) — possibly zero, in which case the lease is unchanged and
// the caller should go ahead and spill. Never blocks and never takes
// bytes from other tickets; only admission-side reclaim does that.
func (t *Ticket) TryGrow(n int64) int64 {
	g := t.g
	if n <= 0 || g.cfg.PoolBytes <= 0 || !g.cfg.adaptive() {
		return t.lease.Load()
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if t.released {
		return t.lease.Load()
	}
	grant := n
	if avail := g.cfg.PoolBytes - g.leased; grant > avail {
		grant = avail
	}
	if t.sess != nil && g.cfg.SessionMaxMemory > 0 {
		if rem := g.cfg.SessionMaxMemory - t.sess.leased; grant > rem {
			grant = rem
		}
	}
	if grant <= 0 {
		return t.lease.Load()
	}
	g.leased += grant
	if t.sess != nil {
		t.sess.leased += grant
	}
	if g.leased > g.peakLeased {
		g.peakLeased = g.leased
	}
	g.grows++
	g.grownBytes += grant
	t.grows++
	return t.lease.Add(grant)
}

// Release returns the lease to the pool and wakes the next queued
// admission. Idempotent.
func (t *Ticket) Release() {
	t.once.Do(func() {
		g := t.g
		g.mu.Lock()
		t.released = true
		lease := t.lease.Load()
		delete(g.tickets, t)
		g.active--
		g.leased -= lease
		g.workersFree += t.workers - 1
		if t.sess != nil {
			t.sess.active--
			t.sess.leased -= lease
		}
		g.dispatchLocked()
		g.mu.Unlock()
	})
}

type admitResult struct {
	ticket *Ticket
	err    error
}

type waiter struct {
	sess *Session
	want int
	ch   chan admitResult // buffered: dispatch never blocks
}

// Admit requests a ticket for one query wanting up to wantWorkers
// executor workers (0 means NumCPU). When the governor is at
// MaxActive the call queues FIFO; wait bounds the queue time (0 =
// wait indefinitely) and a closed done channel abandons the wait.
// Rejections (queue full, draining, session limits) are
// *OverloadedError; waiting out the deadline is ErrQueueTimeout.
func (g *Governor) Admit(sess *Session, wantWorkers int, wait time.Duration, done <-chan struct{}) (*Ticket, error) {
	g.mu.Lock()
	if g.draining {
		g.rejected++
		g.mu.Unlock()
		return nil, &OverloadedError{Reason: "server draining", RetryAfter: g.cfg.retryAfter()}
	}
	if sess != nil && sess.closed {
		g.mu.Unlock()
		return nil, errSessionClosed
	}
	// Grant immediately only when no one is queued ahead: an empty
	// queue is what makes the fast path FIFO-safe.
	if g.active < g.cfg.maxActive() && len(g.queue) == 0 {
		t, err := g.grantLocked(sess, wantWorkers)
		g.mu.Unlock()
		return t, err
	}
	if len(g.queue) >= g.cfg.maxQueued() {
		g.rejected++
		g.mu.Unlock()
		// Scale the hint by queue depth: a full queue means real wait.
		return nil, &OverloadedError{Reason: "admission queue full", RetryAfter: 2 * g.cfg.retryAfter()}
	}
	w := &waiter{sess: sess, want: wantWorkers, ch: make(chan admitResult, 1)}
	g.queue = append(g.queue, w)
	if len(g.queue) > g.peakQueued {
		g.peakQueued = len(g.queue)
	}
	g.mu.Unlock()

	var timeout <-chan time.Time
	if wait > 0 {
		tm := time.NewTimer(wait)
		defer tm.Stop()
		timeout = tm.C
	}
	select {
	case res := <-w.ch:
		return res.ticket, res.err
	case <-timeout:
	case <-done:
	}
	// Timed out (or abandoned) while queued. Removing ourselves races
	// with a concurrent grant: dispatch removes the waiter and sends
	// the result under the governor lock, so if the waiter is gone
	// from the queue the result is already in the (buffered) channel —
	// receive it and return the ticket so the lease is not stranded.
	g.mu.Lock()
	for i, q := range g.queue {
		if q == w {
			g.queue = append(g.queue[:i], g.queue[i+1:]...)
			g.timedOut++
			g.mu.Unlock()
			return nil, ErrQueueTimeout
		}
	}
	g.mu.Unlock()
	res := <-w.ch
	if res.ticket != nil {
		res.ticket.Release()
	}
	return nil, ErrQueueTimeout
}

// grantLocked builds a ticket for one admission. Session limits are
// re-checked here (not only at Admit entry) because a session's other
// queries may have been admitted while this one queued.
func (g *Governor) grantLocked(sess *Session, wantWorkers int) (*Ticket, error) {
	if sess != nil && g.cfg.SessionMaxActive > 0 && sess.active >= g.cfg.SessionMaxActive {
		g.rejected++
		return nil, &OverloadedError{Reason: "session concurrent-query limit", RetryAfter: g.cfg.retryAfter()}
	}
	var budget int64
	if g.cfg.PoolBytes > 0 {
		budget = g.cfg.fairShare()
		if avail := g.cfg.PoolBytes - g.leased; budget > avail {
			// Grown tickets are holding the newcomer's fair share.
			// Reclaim shrinks them back toward fair share — always
			// recoverable, because every grown byte sits above fair
			// share and at most maxActive-1 tickets are outstanding.
			g.reclaimLocked(budget - avail)
			if avail = g.cfg.PoolBytes - g.leased; budget > avail {
				budget = avail
			}
		}
		if budget < 1 {
			budget = 1
		}
		if sess != nil && g.cfg.SessionMaxMemory > 0 {
			rem := g.cfg.SessionMaxMemory - sess.leased
			if rem <= 0 {
				g.rejected++
				return nil, &OverloadedError{Reason: "session memory limit", RetryAfter: g.cfg.retryAfter()}
			}
			if budget > rem {
				budget = rem
			}
		}
	}
	want := wantWorkers
	if want <= 0 {
		want = runtime.NumCPU()
	}
	extra := want - 1
	if extra > g.workersFree {
		extra = g.workersFree
	}
	g.workersFree -= extra

	g.active++
	g.leased += budget
	if sess != nil {
		sess.active++
		sess.leased += budget
	}
	g.admitted++
	if g.active > g.peakActive {
		g.peakActive = g.active
	}
	if g.leased > g.peakLeased {
		g.peakLeased = g.leased
	}
	t := &Ticket{g: g, sess: sess, initial: budget, workers: 1 + extra}
	t.lease.Store(budget)
	g.tickets[t] = struct{}{}
	return t, nil
}

// reclaimLocked shrinks grown tickets back toward their fair share
// until `need` bytes are idle again, largest excess first. The shrink
// lowers each victim's atomic lease watermark; the query's next
// over-budget check observes the smaller lease and spills, which is
// the enforcement mechanism — nothing blocks here.
func (g *Governor) reclaimLocked(need int64) {
	if need <= 0 || !g.cfg.adaptive() {
		return
	}
	fair := g.cfg.fairShare()
	ran := false
	for need > 0 {
		var victim *Ticket
		var excess int64
		for t := range g.tickets {
			if e := t.lease.Load() - fair; e > excess {
				victim, excess = t, e
			}
		}
		if victim == nil {
			break
		}
		cut := excess
		if cut > need {
			cut = need
		}
		victim.lease.Add(-cut)
		victim.shrinks++
		g.leased -= cut
		if victim.sess != nil {
			victim.sess.leased -= cut
		}
		g.shrinks++
		g.shrunkByts += cut
		need -= cut
		ran = true
	}
	if ran {
		g.reclaims++
	}
}

// dispatchLocked grants queued admissions in FIFO order while
// capacity lasts. A waiter whose session limit is now exceeded gets
// its rejection here without consuming capacity.
func (g *Governor) dispatchLocked() {
	for g.active < g.cfg.maxActive() && len(g.queue) > 0 {
		w := g.queue[0]
		g.queue = g.queue[1:]
		t, err := g.grantLocked(w.sess, w.want)
		w.ch <- admitResult{ticket: t, err: err}
	}
}

// SetDraining rejects all future admissions and flushes the queue
// with retryable "server draining" errors. In-flight tickets are
// unaffected; the caller waits for them separately.
func (g *Governor) SetDraining() {
	g.mu.Lock()
	g.draining = true
	q := g.queue
	g.queue = nil
	for _, w := range q {
		g.rejected++
		w.ch <- admitResult{err: &OverloadedError{Reason: "server draining", RetryAfter: g.cfg.retryAfter()}}
	}
	g.mu.Unlock()
}

// Stats is a snapshot of the governor's gauges and counters.
type Stats struct {
	Active      int   // currently executing queries
	Queued      int   // currently waiting admissions
	LeasedBytes int64 // currently leased pool bytes

	Admitted int64 // tickets granted since start
	Rejected int64 // overload rejections since start
	TimedOut int64 // queue-wait deadline expiries since start

	PeakActive      int   // high-water concurrent queries
	PeakQueued      int   // high-water queue depth
	PeakLeasedBytes int64 // high-water leased bytes (≤ PoolBytes always)

	PoolBytes   int64 // configured pool size (0 = leasing disabled)
	Grows       int64 // successful TryGrow grants since start
	GrownBytes  int64 // total bytes granted by TryGrow since start
	Shrinks     int64 // tickets shrunk by reclaim since start
	ShrunkBytes int64 // total bytes taken back by reclaim since start
	Reclaims    int64 // reclaim passes that shrank at least one ticket

	Utilization     float64 // LeasedBytes / PoolBytes (0 when disabled)
	PeakUtilization float64 // PeakLeasedBytes / PoolBytes
}

// Stats returns a consistent snapshot.
func (g *Governor) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := Stats{
		Active:          g.active,
		Queued:          len(g.queue),
		LeasedBytes:     g.leased,
		Admitted:        g.admitted,
		Rejected:        g.rejected,
		TimedOut:        g.timedOut,
		PeakActive:      g.peakActive,
		PeakQueued:      g.peakQueued,
		PeakLeasedBytes: g.peakLeased,
		PoolBytes:       g.cfg.PoolBytes,
		Grows:           g.grows,
		GrownBytes:      g.grownBytes,
		Shrinks:         g.shrinks,
		ShrunkBytes:     g.shrunkByts,
		Reclaims:        g.reclaims,
	}
	if g.cfg.PoolBytes > 0 {
		s.Utilization = float64(g.leased) / float64(g.cfg.PoolBytes)
		s.PeakUtilization = float64(g.peakLeased) / float64(g.cfg.PoolBytes)
	}
	return s
}

// Config returns the governor's effective configuration.
func (g *Governor) Config() Config { return g.cfg }
