package governor

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"
)

func mustAdmit(t *testing.T, g *Governor, sess *Session) *Ticket {
	t.Helper()
	tk, err := g.Admit(sess, 1, 0, nil)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	return tk
}

func TestImmediateAdmission(t *testing.T) {
	g := New(Config{PoolBytes: 1000, MaxActive: 4, WorkerSlots: 8})
	tk := mustAdmit(t, g, nil)
	if tk.MemoryBudget() != 250 {
		t.Fatalf("budget = %d, want fair share 250", tk.MemoryBudget())
	}
	if tk.Workers() != 1 {
		t.Fatalf("workers = %d, want 1 (asked for 1)", tk.Workers())
	}
	tk.Release()
	tk.Release() // idempotent
	if st := g.Stats(); st.Active != 0 || st.LeasedBytes != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestWorkerSlotsBoundExtras(t *testing.T) {
	g := New(Config{MaxActive: 4, WorkerSlots: 4})
	a, _ := g.Admit(nil, 3, 0, nil) // takes 2 extra
	b, _ := g.Admit(nil, 8, 0, nil) // 2 slots left
	c, _ := g.Admit(nil, 8, 0, nil) // pool empty: still gets 1 worker
	if a.Workers() != 3 || b.Workers() != 3 || c.Workers() != 1 {
		t.Fatalf("workers = %d/%d/%d, want 3/3/1", a.Workers(), b.Workers(), c.Workers())
	}
	a.Release()
	d, _ := g.Admit(nil, 8, 0, nil)
	if d.Workers() != 3 {
		t.Fatalf("after release workers = %d, want 3 (2 slots returned)", d.Workers())
	}
}

func TestQueueFIFOFairness(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 8})
	first := mustAdmit(t, g, nil)

	const n = 5
	order := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Serialize enqueue so arrival order is deterministic.
		started := make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			close(started)
			tk, err := g.Admit(nil, 1, 0, nil)
			if err != nil {
				t.Errorf("queued admit %d: %v", i, err)
				return
			}
			order <- i
			tk.Release()
		}(i)
		<-started
		// Wait until the waiter is actually queued before starting the
		// next, so FIFO order is the goroutine start order.
		deadline := time.Now().Add(5 * time.Second)
		for g.Stats().Queued != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	first.Release()
	wg.Wait()
	close(order)
	i := 0
	for got := range order {
		if got != i {
			t.Fatalf("grant order[%d] = %d, want FIFO", i, got)
		}
		i++
	}
}

func TestQueueFullRejectionTyped(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 1, RetryAfter: 100 * time.Millisecond})
	tk := mustAdmit(t, g, nil)
	defer tk.Release()

	queued := make(chan struct{})
	go func() {
		close(queued)
		t2, err := g.Admit(nil, 1, 0, nil)
		if err == nil {
			t2.Release()
		}
	}()
	<-queued
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	_, err := g.Admit(nil, 1, 0, nil)
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("queue-full error = %v, want *OverloadedError", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ov.RetryAfter)
	}
	if g.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	tk.Release()
}

func TestDeadlineExpiryWhileQueued(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 4})
	tk := mustAdmit(t, g, nil)

	_, err := g.Admit(nil, 1, 30*time.Millisecond, nil)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("expired waiter still queued: %+v", st)
	}
	// The head slot must still be grantable to the next arrival.
	tk.Release()
	next := mustAdmit(t, g, nil)
	next.Release()
	if g.Stats().TimedOut != 1 {
		t.Fatalf("timeout not counted: %+v", g.Stats())
	}
}

func TestDoneChannelAbandonsWait(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 4})
	tk := mustAdmit(t, g, nil)
	defer tk.Release()
	done := make(chan struct{})
	close(done)
	if _, err := g.Admit(nil, 1, 0, done); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
}

func TestLeasedNeverExceedsPool(t *testing.T) {
	const pool = 1 << 20
	g := New(Config{PoolBytes: pool, MaxActive: 3, MaxQueued: 64})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				tk, err := g.Admit(nil, 2, 0, nil)
				if err != nil {
					continue
				}
				if l := g.Stats().LeasedBytes; l > pool {
					t.Errorf("leased %d exceeds pool %d", l, pool)
				}
				tk.Release()
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	if st.PeakLeasedBytes > pool {
		t.Fatalf("peak leased %d exceeds pool %d", st.PeakLeasedBytes, pool)
	}
	if st.LeasedBytes != 0 || st.Active != 0 {
		t.Fatalf("not drained: %+v", st)
	}
}

func TestSessionLimits(t *testing.T) {
	g := New(Config{PoolBytes: 4000, MaxActive: 4, SessionMaxActive: 2, SessionMaxMemory: 1500})
	s := g.NewSession()
	a := mustAdmit(t, g, s) // lease 1000
	b, err := g.Admit(s, 1, 0, nil)
	if err != nil {
		t.Fatalf("second admit: %v", err)
	}
	if b.MemoryBudget() != 500 {
		t.Fatalf("second lease = %d, want clipped 500", b.MemoryBudget())
	}
	if _, err := g.Admit(s, 1, 0, nil); err == nil {
		t.Fatal("third concurrent query admitted past SessionMaxActive")
	} else {
		var ov *OverloadedError
		if !errors.As(err, &ov) {
			t.Fatalf("session-limit error = %v, want *OverloadedError", err)
		}
	}
	a.Release()
	b.Release()
	s.Close()
	if _, err := g.Admit(s, 1, 0, nil); err == nil {
		t.Fatal("admitted on closed session")
	}
}

func TestDrainingRejectsAndFlushesQueue(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 4, RetryAfter: time.Millisecond})
	tk := mustAdmit(t, g, nil)

	errC := make(chan error, 1)
	go func() {
		_, err := g.Admit(nil, 1, 0, nil)
		errC <- err
	}()
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	g.SetDraining()
	var ov *OverloadedError
	if err := <-errC; !errors.As(err, &ov) {
		t.Fatalf("flushed waiter error = %v, want *OverloadedError", err)
	}
	if _, err := g.Admit(nil, 1, 0, nil); !errors.As(err, &ov) {
		t.Fatalf("post-drain admit error = %v, want *OverloadedError", err)
	}
	tk.Release()
}

// TestTryGrowAndReclaim pins the adaptive-lease protocol: TryGrow
// extends a lease into idle pool bytes, and the next admission that
// would otherwise be starved reclaims the excess back toward fair
// share — never below it, and never breaching the pool.
func TestTryGrowAndReclaim(t *testing.T) {
	g := New(Config{PoolBytes: 1000, MaxActive: 4})
	a := mustAdmit(t, g, nil) // fair share 250
	if got := a.TryGrow(2000); got != 1000 {
		t.Fatalf("grow into idle pool: lease = %d, want 1000 (capped at pool)", got)
	}
	if a.MemoryBudget() != 1000 || a.InitialBudget() != 250 {
		t.Fatalf("lease/initial = %d/%d, want 1000/250", a.MemoryBudget(), a.InitialBudget())
	}

	// Admission under pressure shrinks the grown ticket, not to zero
	// but toward fair share, and funds the newcomer's full lease.
	b := mustAdmit(t, g, nil)
	if b.MemoryBudget() != 250 {
		t.Fatalf("newcomer lease = %d, want fair share 250", b.MemoryBudget())
	}
	if a.MemoryBudget() != 750 {
		t.Fatalf("victim lease = %d, want 750 (shrunk by newcomer's 250)", a.MemoryBudget())
	}
	grows, shrinks := a.Growths()
	if grows != 1 || shrinks != 1 {
		t.Fatalf("ticket growths = %d/%d, want 1/1", grows, shrinks)
	}
	st := g.Stats()
	if st.Grows != 1 || st.GrownBytes != 750 || st.Shrinks != 1 || st.ShrunkBytes != 250 || st.Reclaims != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.LeasedBytes != 1000 || st.PeakLeasedBytes != 1000 || st.Utilization != 1.0 {
		t.Fatalf("pool accounting: %+v", st)
	}

	a.Release()
	b.Release()
	if st := g.Stats(); st.LeasedBytes != 0 || st.Active != 0 {
		t.Fatalf("stranded bytes after release: %+v", st)
	}

	// Session ceilings still bound grows.
	gs := New(Config{PoolBytes: 4000, MaxActive: 4, SessionMaxMemory: 1500})
	sess := gs.NewSession()
	c := mustAdmit(t, gs, sess) // lease 1000
	if got := c.TryGrow(4000); got != 1500 {
		t.Fatalf("session-capped grow: lease = %d, want 1500", got)
	}
	c.Release()

	// The static policy refuses to grow at all.
	gst := New(Config{PoolBytes: 1000, MaxActive: 4, ReclaimPolicy: "static"})
	d := mustAdmit(t, gst, nil)
	if got := d.TryGrow(500); got != 250 {
		t.Fatalf("static grow: lease = %d, want unchanged 250", got)
	}
	d.Release()
	if st := gst.Stats(); st.Grows != 0 || st.Shrinks != 0 {
		t.Fatalf("static policy counted grows/shrinks: %+v", st)
	}
}

// TestAdaptiveLeaseChurn storms the governor with concurrent
// admit/grow/release cycles (run under -race in CI) and asserts the
// pool invariants hold throughout: leased bytes never exceed the pool
// even at peak, grow and shrink traffic actually happened, and no
// bytes are stranded once every ticket is released.
func TestAdaptiveLeaseChurn(t *testing.T) {
	const pool = 1 << 20
	g := New(Config{PoolBytes: pool, MaxActive: 8, MaxQueued: 256, WorkerSlots: 16})

	var wg sync.WaitGroup
	for id := 0; id < 16; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tk, err := g.Admit(nil, 1+id%4, 5*time.Second, nil)
				if err != nil {
					t.Errorf("churn admit: %v", err)
					return
				}
				// Deterministic pseudo-random grow sizes, many of them
				// large enough to swallow the whole idle pool.
				n := int64((id*7919+i*104729)%pool) + 1
				if lease := tk.TryGrow(n); lease > pool {
					t.Errorf("lease %d exceeds pool %d", lease, pool)
				}
				// Hold the grown lease across a yield so other
				// goroutines admit against it and trigger reclaims.
				runtime.Gosched()
				if tk.MemoryBudget() < 1 {
					t.Errorf("lease shrunk below minimum: %d", tk.MemoryBudget())
				}
				tk.Release()
			}
		}(id)
	}
	wg.Wait()

	st := g.Stats()
	if st.PeakLeasedBytes > pool {
		t.Fatalf("peak leased %d exceeds pool %d", st.PeakLeasedBytes, pool)
	}
	if st.Grows == 0 || st.Shrinks == 0 {
		t.Fatalf("churn exercised no grow/shrink traffic: %+v", st)
	}
	if st.LeasedBytes != 0 || st.Active != 0 || st.Queued != 0 {
		t.Fatalf("stranded state after churn: %+v", st)
	}
	if st.PeakUtilization <= 0 || st.PeakUtilization > 1 {
		t.Fatalf("peak utilization %v outside (0,1]", st.PeakUtilization)
	}
}
