package governor

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func mustAdmit(t *testing.T, g *Governor, sess *Session) *Ticket {
	t.Helper()
	tk, err := g.Admit(sess, 1, 0, nil)
	if err != nil {
		t.Fatalf("Admit: %v", err)
	}
	return tk
}

func TestImmediateAdmission(t *testing.T) {
	g := New(Config{PoolBytes: 1000, MaxActive: 4, WorkerSlots: 8})
	tk := mustAdmit(t, g, nil)
	if tk.MemoryBudget() != 250 {
		t.Fatalf("budget = %d, want fair share 250", tk.MemoryBudget())
	}
	if tk.Workers() != 1 {
		t.Fatalf("workers = %d, want 1 (asked for 1)", tk.Workers())
	}
	tk.Release()
	tk.Release() // idempotent
	if st := g.Stats(); st.Active != 0 || st.LeasedBytes != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestWorkerSlotsBoundExtras(t *testing.T) {
	g := New(Config{MaxActive: 4, WorkerSlots: 4})
	a, _ := g.Admit(nil, 3, 0, nil) // takes 2 extra
	b, _ := g.Admit(nil, 8, 0, nil) // 2 slots left
	c, _ := g.Admit(nil, 8, 0, nil) // pool empty: still gets 1 worker
	if a.Workers() != 3 || b.Workers() != 3 || c.Workers() != 1 {
		t.Fatalf("workers = %d/%d/%d, want 3/3/1", a.Workers(), b.Workers(), c.Workers())
	}
	a.Release()
	d, _ := g.Admit(nil, 8, 0, nil)
	if d.Workers() != 3 {
		t.Fatalf("after release workers = %d, want 3 (2 slots returned)", d.Workers())
	}
}

func TestQueueFIFOFairness(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 8})
	first := mustAdmit(t, g, nil)

	const n = 5
	order := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		// Serialize enqueue so arrival order is deterministic.
		started := make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			close(started)
			tk, err := g.Admit(nil, 1, 0, nil)
			if err != nil {
				t.Errorf("queued admit %d: %v", i, err)
				return
			}
			order <- i
			tk.Release()
		}(i)
		<-started
		// Wait until the waiter is actually queued before starting the
		// next, so FIFO order is the goroutine start order.
		deadline := time.Now().Add(5 * time.Second)
		for g.Stats().Queued != i+1 {
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never queued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	first.Release()
	wg.Wait()
	close(order)
	i := 0
	for got := range order {
		if got != i {
			t.Fatalf("grant order[%d] = %d, want FIFO", i, got)
		}
		i++
	}
}

func TestQueueFullRejectionTyped(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 1, RetryAfter: 100 * time.Millisecond})
	tk := mustAdmit(t, g, nil)
	defer tk.Release()

	queued := make(chan struct{})
	go func() {
		close(queued)
		t2, err := g.Admit(nil, 1, 0, nil)
		if err == nil {
			t2.Release()
		}
	}()
	<-queued
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	_, err := g.Admit(nil, 1, 0, nil)
	var ov *OverloadedError
	if !errors.As(err, &ov) {
		t.Fatalf("queue-full error = %v, want *OverloadedError", err)
	}
	if ov.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ov.RetryAfter)
	}
	if g.Stats().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	tk.Release()
}

func TestDeadlineExpiryWhileQueued(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 4})
	tk := mustAdmit(t, g, nil)

	_, err := g.Admit(nil, 1, 30*time.Millisecond, nil)
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if st := g.Stats(); st.Queued != 0 {
		t.Fatalf("expired waiter still queued: %+v", st)
	}
	// The head slot must still be grantable to the next arrival.
	tk.Release()
	next := mustAdmit(t, g, nil)
	next.Release()
	if g.Stats().TimedOut != 1 {
		t.Fatalf("timeout not counted: %+v", g.Stats())
	}
}

func TestDoneChannelAbandonsWait(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 4})
	tk := mustAdmit(t, g, nil)
	defer tk.Release()
	done := make(chan struct{})
	close(done)
	if _, err := g.Admit(nil, 1, 0, done); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
}

func TestLeasedNeverExceedsPool(t *testing.T) {
	const pool = 1 << 20
	g := New(Config{PoolBytes: pool, MaxActive: 3, MaxQueued: 64})
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				tk, err := g.Admit(nil, 2, 0, nil)
				if err != nil {
					continue
				}
				if l := g.Stats().LeasedBytes; l > pool {
					t.Errorf("leased %d exceeds pool %d", l, pool)
				}
				tk.Release()
			}
		}()
	}
	wg.Wait()
	st := g.Stats()
	if st.PeakLeasedBytes > pool {
		t.Fatalf("peak leased %d exceeds pool %d", st.PeakLeasedBytes, pool)
	}
	if st.LeasedBytes != 0 || st.Active != 0 {
		t.Fatalf("not drained: %+v", st)
	}
}

func TestSessionLimits(t *testing.T) {
	g := New(Config{PoolBytes: 4000, MaxActive: 4, SessionMaxActive: 2, SessionMaxMemory: 1500})
	s := g.NewSession()
	a := mustAdmit(t, g, s) // lease 1000
	b, err := g.Admit(s, 1, 0, nil)
	if err != nil {
		t.Fatalf("second admit: %v", err)
	}
	if b.MemoryBudget() != 500 {
		t.Fatalf("second lease = %d, want clipped 500", b.MemoryBudget())
	}
	if _, err := g.Admit(s, 1, 0, nil); err == nil {
		t.Fatal("third concurrent query admitted past SessionMaxActive")
	} else {
		var ov *OverloadedError
		if !errors.As(err, &ov) {
			t.Fatalf("session-limit error = %v, want *OverloadedError", err)
		}
	}
	a.Release()
	b.Release()
	s.Close()
	if _, err := g.Admit(s, 1, 0, nil); err == nil {
		t.Fatal("admitted on closed session")
	}
}

func TestDrainingRejectsAndFlushesQueue(t *testing.T) {
	g := New(Config{MaxActive: 1, MaxQueued: 4, RetryAfter: time.Millisecond})
	tk := mustAdmit(t, g, nil)

	errC := make(chan error, 1)
	go func() {
		_, err := g.Admit(nil, 1, 0, nil)
		errC <- err
	}()
	for g.Stats().Queued != 1 {
		time.Sleep(time.Millisecond)
	}
	g.SetDraining()
	var ov *OverloadedError
	if err := <-errC; !errors.As(err, &ov) {
		t.Fatalf("flushed waiter error = %v, want *OverloadedError", err)
	}
	if _, err := g.Admit(nil, 1, 0, nil); !errors.As(err, &ov) {
		t.Fatalf("post-drain admit error = %v, want *OverloadedError", err)
	}
	tk.Release()
}
