// Package storage implements the segmented column store backing
// engine tables, plus a checksummed on-disk columnar format for
// persistence. Data is stored append-only in column segments whose
// row count matches the execution chunk size. The active tail segment
// is mutable and uncompressed; a segment that fills is sealed:
// each column is frozen into a per-column encoding (RLE,
// frame-of-reference, dictionary, or raw) and annotated with a zone
// map (min/max, null count) that scans use to skip whole segments.
//
// Concurrency follows a copy-on-write version scheme: the store's
// state is an immutable tableVersion (segment list + row count)
// published through an atomic pointer. Readers pin a TableSnapshot —
// a cheap handle on one version — and read it to completion without
// locks, unaffected by concurrent writes. Writers serialize on the
// store mutex, share sealed segments with the previous version by
// pointer, clone only the mutable tail before touching it, and
// publish the new version in one atomic store, so a statement's rows
// become visible all at once and a reader never observes a torn
// write.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vexdb/internal/vector"
)

// SegmentRows is the row capacity of one column segment. It equals the
// execution chunk size so sealed segments decode into exactly one
// scan chunk.
const SegmentRows = vector.DefaultChunkSize

// ColumnStore holds the data of one table as a list of segments. Each
// segment stores up to SegmentRows rows of every column. Appends and
// scans are safe for concurrent use; scans taken through Snapshot are
// additionally isolated from concurrent writes.
type ColumnStore struct {
	mu       sync.Mutex // serializes writers; readers go through cur
	types    []vector.Type
	compress bool
	cur      atomic.Pointer[tableVersion]

	// Cumulative scan counters (updated by the executor's scans).
	segsScanned atomic.Int64
	segsSkipped atomic.Int64
}

// tableVersion is one immutable published state of the table. Sealed
// segments are shared between versions by pointer; the mutable tail is
// exclusive to the version that created it (writers clone it before
// appending), so every segment reachable from a version is immutable
// from that version's point of view.
type tableVersion struct {
	segs []*segment
	rows int

	// stats caches the per-column statistics rollup, computed at most
	// once per version (versions are immutable, so the rollup never
	// goes stale — and is dropped wholesale when a write or TRUNCATE
	// publishes a successor).
	statsOnce sync.Once
	stats     []ColumnStats
}

// segment is either open (cols holds the tail vectors) or sealed
// (sealed holds the frozen, possibly compressed columns and cols is
// nil). Once a segment is reachable from a published version it is
// never mutated; writers copy the open tail instead.
type segment struct {
	cols   []*vector.Vector
	rows   int
	sealed []*SealedColumn
}

// NewColumnStore creates an empty store for columns of the given types
// with compression enabled.
func NewColumnStore(types []vector.Type) *ColumnStore {
	s := &ColumnStore{types: append([]vector.Type(nil), types...), compress: true}
	s.cur.Store(&tableVersion{})
	return s
}

// SetCompression toggles compression and zone-map computation for
// segments sealed after the call (existing segments are not
// rewritten). With compression off, sealed segments keep their raw
// vectors and carry no zone maps, so scans can never prune them —
// this is the reference path differential tests compare against.
func (s *ColumnStore) SetCompression(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compress = on
}

// Types returns the column types.
func (s *ColumnStore) Types() []vector.Type { return s.types }

// NumRows returns the current row count.
func (s *ColumnStore) NumRows() int { return s.cur.Load().rows }

// NumColumns returns the column count.
func (s *ColumnStore) NumColumns() int { return len(s.types) }

// TableSnapshot is a pinned, immutable point-in-time view of one
// table: the version it references never changes, so a reader can
// walk its segments lock-free while concurrent statements append,
// rewrite or truncate the live store. Scan accounting (NoteScan)
// still feeds the live store's cumulative counters.
type TableSnapshot struct {
	v     *tableVersion
	store *ColumnStore
}

// Snapshot pins the store's current version.
func (s *ColumnStore) Snapshot() *TableSnapshot {
	return &TableSnapshot{v: s.cur.Load(), store: s}
}

// Types returns the column types.
func (t *TableSnapshot) Types() []vector.Type { return t.store.types }

// NumRows returns the snapshot's row count.
func (t *TableSnapshot) NumRows() int { return t.v.rows }

// NumColumns returns the column count.
func (t *TableSnapshot) NumColumns() int { return len(t.store.types) }

// NumSegments returns the snapshot's segment count.
func (t *TableSnapshot) NumSegments() int { return len(t.v.segs) }

// SegmentIsSealed reports whether segment i is sealed.
func (t *TableSnapshot) SegmentIsSealed(i int) bool { return t.v.segs[i].sealed != nil }

// NoteScan adds to the live store's cumulative scanned/skipped segment
// counters (called by the executor when a scan finishes).
func (t *TableSnapshot) NoteScan(scanned, skipped int64) { t.store.NoteScan(scanned, skipped) }

// Zones returns the zone maps of segment i's columns (indexed by
// table column position), or nil for the mutable tail — unsealed
// segments carry no statistics and are never pruned.
func (t *TableSnapshot) Zones(i int) []ZoneMap {
	seg := t.v.segs[i]
	if seg.sealed == nil {
		return nil
	}
	out := make([]ZoneMap, len(seg.sealed))
	for j, sc := range seg.sealed {
		out[j] = sc.Zone
	}
	return out
}

// Segment returns segment i's columns restricted to the projected
// column indexes (nil projects all), as a chunk. Sealed raw columns
// are returned zero-copy; compressed columns are decoded.
func (t *TableSnapshot) Segment(i int, projection []int) (*vector.Chunk, error) {
	return t.SegmentInto(i, projection, nil)
}

// SegmentInto is Segment with optional reusable decode buffers: when
// bufs is non-nil it must have one (possibly nil) vector per
// projected column; compressed columns decode into the corresponding
// buffer instead of allocating. The returned chunk may alias both the
// buffers and store-owned raw vectors, and is valid until the buffers
// are reused.
func (t *TableSnapshot) SegmentInto(i int, projection []int, bufs []*vector.Vector) (*vector.Chunk, error) {
	seg := t.v.segs[i]
	if sealed := seg.sealed; sealed != nil {
		if projection == nil {
			cols := make([]*vector.Vector, len(sealed))
			for j, sc := range sealed {
				v, err := decodeRecycling(sc, bufs, j)
				if err != nil {
					return nil, fmt.Errorf("storage: segment %d column %d: %w", i, j, err)
				}
				cols[j] = v
			}
			return vector.NewChunk(cols...), nil
		}
		cols := make([]*vector.Vector, len(projection))
		for j, p := range projection {
			v, err := decodeRecycling(sealed[p], bufs, j)
			if err != nil {
				return nil, fmt.Errorf("storage: segment %d column %d: %w", i, p, err)
			}
			cols[j] = v
		}
		return vector.NewChunk(cols...), nil
	}

	if projection == nil {
		return vector.NewChunk(seg.cols...), nil
	}
	cols := make([]*vector.Vector, len(projection))
	for j, p := range projection {
		cols[j] = seg.cols[p]
	}
	return vector.NewChunk(cols...), nil
}

// SegmentRowCounts returns the row count of every segment in order.
// Scans that tag rows with global positions use this to compute each
// segment's base offset, counting segments whether or not zone-map
// pruning later skips them.
func (t *TableSnapshot) SegmentRowCounts() []int {
	out := make([]int, len(t.v.segs))
	for i, seg := range t.v.segs {
		out[i] = seg.rows
	}
	return out
}

// Column materializes the full column c as one contiguous vector.
func (t *TableSnapshot) Column(c int) (*vector.Vector, error) {
	out := vector.New(t.store.types[c], t.v.rows)
	for i, seg := range t.v.segs {
		if seg.sealed != nil {
			v, err := seg.sealed[c].Decode(nil)
			if err != nil {
				return nil, fmt.Errorf("storage: segment %d column %d: %w", i, c, err)
			}
			out.AppendVector(v)
			continue
		}
		out.AppendVector(seg.cols[c])
	}
	return out, nil
}

// ColumnStatistics returns the snapshot's per-column rollup, computed
// at most once per version and cached (versions are immutable —
// including the mutable-looking tail segment, which copy-on-write
// clones before any append, so tail statistics cannot go stale).
func (t *TableSnapshot) ColumnStatistics() []ColumnStats {
	v := t.v
	v.statsOnce.Do(func() { v.stats = columnStatsOf(t.store.types, v.segs, t.store.compress) })
	return v.stats
}

// ------------------------------------------------------------ writers

func newSegment(types []vector.Type) *segment {
	cols := make([]*vector.Vector, len(types))
	for i, t := range types {
		cols[i] = vector.New(t, SegmentRows)
	}
	return &segment{cols: cols}
}

// cloneOpen returns a private copy of an open segment: published
// versions may be pinned by readers, so a writer must never append to
// a tail vector they can see.
func (g *segment) cloneOpen(types []vector.Type) *segment {
	cols := make([]*vector.Vector, len(g.cols))
	for i, c := range g.cols {
		nc := vector.New(types[i], SegmentRows)
		nc.AppendVector(c)
		cols[i] = nc
	}
	return &segment{cols: cols, rows: g.rows}
}

// seal freezes the segment: every column is encoded (or kept raw) and
// annotated with a zone map, and the mutable vectors are released.
func (g *segment) seal(compress bool) {
	sealed := make([]*SealedColumn, len(g.cols))
	for i, c := range g.cols {
		sealed[i] = sealColumn(c, compress)
	}
	g.sealed = sealed
	g.cols = nil
}

// AppendChunk appends the rows of ch. Column arity and types must
// match the store schema; numeric columns are cast when they differ.
// Segments that fill up are sealed in place. The new rows are
// published in a single version swap once the whole chunk is in, so
// snapshot readers see either none or all of them.
func (s *ColumnStore) AppendChunk(ch *vector.Chunk) error {
	cast, err := s.castColumns(ch)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.appendLocked(s.cur.Load(), cast, ch.NumRows())
	s.cur.Store(v)
	return nil
}

// castColumns aligns a chunk's columns with the store schema.
func (s *ColumnStore) castColumns(ch *vector.Chunk) ([]*vector.Vector, error) {
	if ch.NumCols() != len(s.types) {
		return nil, fmt.Errorf("storage: append %d columns to %d-column table", ch.NumCols(), len(s.types))
	}
	cast := make([]*vector.Vector, ch.NumCols())
	for i := 0; i < ch.NumCols(); i++ {
		c := ch.Col(i)
		if c.Type() != s.types[i] {
			cc, err := c.Cast(s.types[i])
			if err != nil {
				return nil, fmt.Errorf("storage: column %d: %w", i, err)
			}
			c = cc
		}
		cast[i] = c
	}
	return cast, nil
}

// appendLocked builds base's successor version with n rows of cast
// appended. Sealed segments are shared by pointer; an open tail is
// cloned before it is touched. Caller holds s.mu and publishes the
// result.
func (s *ColumnStore) appendLocked(base *tableVersion, cast []*vector.Vector, n int) *tableVersion {
	segs := append([]*segment(nil), base.segs...)
	var tail *segment
	if len(segs) > 0 {
		if last := segs[len(segs)-1]; last.sealed == nil && last.rows < SegmentRows {
			tail = last.cloneOpen(s.types)
			segs[len(segs)-1] = tail
		}
	}
	offset := 0
	for offset < n {
		if tail == nil {
			tail = newSegment(s.types)
			segs = append(segs, tail)
		}
		room := SegmentRows - tail.rows
		take := n - offset
		if take > room {
			take = room
		}
		for i, col := range tail.cols {
			col.AppendVector(cast[i].Slice(offset, offset+take))
		}
		tail.rows += take
		offset += take
		if tail.rows == SegmentRows {
			tail.seal(s.compress)
			tail = nil
		}
	}
	return &tableVersion{segs: segs, rows: base.rows + n}
}

// AppendRow appends a single row of values.
func (s *ColumnStore) AppendRow(vals []vector.Value) error {
	if len(vals) != len(s.types) {
		return fmt.Errorf("storage: row has %d values, table has %d columns", len(vals), len(s.types))
	}
	cols := make([]*vector.Vector, len(s.types))
	for i, t := range s.types {
		cols[i] = vector.New(t, 1)
		v := vals[i]
		if !v.IsNull() && v.Type() != t {
			cv, err := v.Cast(t)
			if err != nil {
				return fmt.Errorf("storage: column %d: %w", i, err)
			}
			v = cv
		}
		cols[i].AppendValue(v)
	}
	return s.AppendChunk(vector.NewChunk(cols...))
}

// Replace atomically substitutes the table's entire contents with ch
// (which may be nil or empty): copy-on-delete DELETE and UPDATE
// rewrites publish exactly one new version, so a snapshot reader sees
// either the old contents or the new, never the truncated
// intermediate state.
func (s *ColumnStore) Replace(ch *vector.Chunk) error {
	var cast []*vector.Vector
	n := 0
	if ch != nil && ch.NumRows() > 0 {
		var err error
		cast, err = s.castColumns(ch)
		if err != nil {
			return err
		}
		n = ch.NumRows()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := &tableVersion{}
	if n > 0 {
		v = s.appendLocked(v, cast, n)
	}
	s.cur.Store(v)
	return nil
}

// attachSealedSegment appends an already sealed segment (used when
// loading a table file; payloads stay encoded until scanned).
func (s *ColumnStore) attachSealedSegment(rows int, cols []*SealedColumn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	base := s.cur.Load()
	segs := append(append([]*segment(nil), base.segs...), &segment{rows: rows, sealed: cols})
	s.cur.Store(&tableVersion{segs: segs, rows: base.rows + rows})
}

// Truncate removes all rows, keeping the schema. The empty successor
// version carries no segments and therefore no zone maps or HLL
// sketches: the statistics rollup (and with it the cost planner's
// distinct-count estimates) resets along with the data instead of
// reporting the dropped rows' NDVs.
func (s *ColumnStore) Truncate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.Store(&tableVersion{})
}

// ------------------------------------------------- compatibility reads
//
// The methods below serve callers that want "current state" semantics
// (single-statement reads, stats, persistence). Each pins the current
// version for the duration of the call.

// NumSegments returns the number of segments.
func (s *ColumnStore) NumSegments() int { return s.Snapshot().NumSegments() }

// Segment returns segment i of the current version; see
// TableSnapshot.Segment.
func (s *ColumnStore) Segment(i int, projection []int) (*vector.Chunk, error) {
	return s.Snapshot().Segment(i, projection)
}

// SegmentInto is Segment with reusable decode buffers; see
// TableSnapshot.SegmentInto.
func (s *ColumnStore) SegmentInto(i int, projection []int, bufs []*vector.Vector) (*vector.Chunk, error) {
	return s.Snapshot().SegmentInto(i, projection, bufs)
}

// decodeRecycling decodes one sealed column through the caller's
// buffer slot j. Decoded (non-raw) vectors are written back into the
// slot so the next decode reuses their backing arrays; raw columns
// bypass the slot entirely — their cached vector is store-owned and
// must never be handed out as a scratch buffer.
func decodeRecycling(sc *SealedColumn, bufs []*vector.Vector, j int) (*vector.Vector, error) {
	var buf *vector.Vector
	if j < len(bufs) {
		buf = bufs[j]
	}
	v, err := sc.Decode(buf)
	if err != nil {
		return nil, err
	}
	if sc.Enc != EncRaw && j < len(bufs) {
		bufs[j] = v
	}
	return v, nil
}

// Zones returns the zone maps of segment i's columns of the current
// version; see TableSnapshot.Zones.
func (s *ColumnStore) Zones(i int) []ZoneMap { return s.Snapshot().Zones(i) }

// SegmentIsSealed reports whether segment i has been sealed.
func (s *ColumnStore) SegmentIsSealed(i int) bool { return s.Snapshot().SegmentIsSealed(i) }

// NoteScan adds to the store's cumulative scanned/skipped segment
// counters (called by the executor when a scan finishes).
func (s *ColumnStore) NoteScan(scanned, skipped int64) {
	s.segsScanned.Add(scanned)
	s.segsSkipped.Add(skipped)
}

// TableStats summarizes the physical layout of one table.
type TableStats struct {
	Rows           int
	Segments       int
	SealedSegments int
	// LogicalBytes estimates the uncompressed payload size;
	// CompressedBytes is the actual footprint of sealed payloads
	// (equal to logical for raw columns).
	LogicalBytes    int64
	CompressedBytes int64
	// EncodedColumns counts sealed columns per encoding name
	// ("raw", "rle", "for", "dict").
	EncodedColumns map[string]int
	// SegmentsScanned and SegmentsSkipped are cumulative counts of
	// segments decoded for scans vs. skipped by zone-map pruning.
	SegmentsScanned int64
	SegmentsSkipped int64
	// Columns holds the per-column statistics rollup (one entry per
	// table column, in schema order) the cost-based planner reads.
	Columns []ColumnStats
}

// ColumnStats is the table-level rollup of one column's per-segment
// statistics: zone maps merged to global bounds and null counts, and
// segment HLL sketches merged to a distinct-count estimate. Only
// sealed, statistics-bearing segments contribute — StatsRows below
// Rows of the table means part of the data (the mutable tail, or
// segments sealed with compression off) is uncovered and estimates
// should be scaled accordingly.
type ColumnStats struct {
	// StatsRows counts the rows covered by zone-map statistics.
	StatsRows int
	NullCount int
	// Distinct is the merged-HLL distinct estimate over the rows
	// covered by sketches (SketchRows); 0 means no sketch available.
	Distinct   int64
	SketchRows int
	// Min and Max bound the column's non-NULL values over the covered
	// rows; valid only when HasMinMax.
	Min, Max  vector.Value
	HasMinMax bool
}

// Stats computes the store's physical statistics.
func (s *ColumnStore) Stats() TableStats {
	snap := s.Snapshot()
	st := TableStats{
		Rows:            snap.NumRows(),
		Segments:        snap.NumSegments(),
		EncodedColumns:  map[string]int{},
		SegmentsScanned: s.segsScanned.Load(),
		SegmentsSkipped: s.segsSkipped.Load(),
	}
	for _, seg := range snap.v.segs {
		if seg.sealed == nil {
			for _, c := range seg.cols {
				n := int64(rawSizeOf(c))
				st.LogicalBytes += n
				st.CompressedBytes += n
			}
			continue
		}
		st.SealedSegments++
		for _, sc := range seg.sealed {
			st.LogicalBytes += int64(sc.LogicalBytes())
			st.CompressedBytes += int64(sc.CompressedBytes())
			st.EncodedColumns[sc.Enc.String()]++
		}
	}
	st.Columns = snap.ColumnStatistics()
	return st
}

// ColumnStatistics returns the per-column rollup alone (the cheap
// subset of Stats the planner needs). The rollup is computed at most
// once per published version and cached on it, so repeated planning
// against an unchanged table costs one pointer load.
func (s *ColumnStore) ColumnStatistics() []ColumnStats {
	return s.Snapshot().ColumnStatistics()
}

// columnStatsOf merges per-segment zone maps and HLL sketches into
// table-level column statistics. With tailStats set (the store seals
// with compression and statistics on), the mutable tail segment
// contributes approximate sketches computed on the fly — a zone map
// and HLL over its ≤ SegmentRows rows — so freshly loaded small tables
// get real row counts, bounds and NDV estimates instead of falling
// back to sqrt(rows) planner defaults. The computation is cached per
// published version (see ColumnStatistics), so repeated planning pays
// for it once.
func columnStatsOf(types []vector.Type, segs []*segment, tailStats bool) []ColumnStats {
	out := make([]ColumnStats, len(types))
	sketches := make([]*HLL, len(types))
	mergeZone := func(c int, z ZoneMap, sketch *HLL) {
		cs := &out[c]
		cs.StatsRows += z.Rows
		cs.NullCount += z.NullCount
		if z.HasMinMax() {
			if !cs.HasMinMax {
				cs.Min, cs.Max, cs.HasMinMax = z.Min, z.Max, true
			} else {
				if r, err := z.Min.Compare(cs.Min); err == nil && r < 0 {
					cs.Min = z.Min
				}
				if r, err := z.Max.Compare(cs.Max); err == nil && r > 0 {
					cs.Max = z.Max
				}
			}
		}
		if sketch != nil {
			cs.SketchRows += z.Rows
			if sketches[c] == nil {
				sketches[c] = NewHLL()
			}
			sketches[c].Merge(sketch)
		}
	}
	for _, seg := range segs {
		if seg.sealed == nil {
			if !tailStats {
				continue
			}
			for c, col := range seg.cols {
				if col.Len() == 0 {
					continue
				}
				mergeZone(c, computeZone(col), computeSketch(col))
			}
			continue
		}
		for c, sc := range seg.sealed {
			z := sc.Zone
			if z.Rows == 0 {
				continue // sealed with compression off: no statistics
			}
			mergeZone(c, z, sc.Sketch)
		}
	}
	for c, h := range sketches {
		out[c].Distinct = h.Estimate()
	}
	return out
}

// SegmentRowCounts returns the row count of every segment in order.
func (s *ColumnStore) SegmentRowCounts() []int { return s.Snapshot().SegmentRowCounts() }

// Column materializes the full column c as one contiguous vector.
func (s *ColumnStore) Column(c int) (*vector.Vector, error) { return s.Snapshot().Column(c) }
