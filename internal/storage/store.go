// Package storage implements the segmented column store backing
// engine tables, plus a checksummed on-disk columnar format for
// persistence. Data is stored append-only in column segments whose
// row count matches the execution chunk size. The active tail segment
// is mutable and uncompressed; a segment that fills is sealed:
// each column is frozen into a per-column encoding (RLE,
// frame-of-reference, dictionary, or raw) and annotated with a zone
// map (min/max, null count) that scans use to skip whole segments.
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vexdb/internal/vector"
)

// SegmentRows is the row capacity of one column segment. It equals the
// execution chunk size so sealed segments decode into exactly one
// scan chunk.
const SegmentRows = vector.DefaultChunkSize

// ColumnStore holds the data of one table as a list of segments. Each
// segment stores up to SegmentRows rows of every column. Appends and
// scans are safe for concurrent use.
type ColumnStore struct {
	mu       sync.RWMutex
	types    []vector.Type
	segs     []*segment
	rows     int
	compress bool

	// Cumulative scan counters (updated by the executor's scans).
	segsScanned atomic.Int64
	segsSkipped atomic.Int64
}

// segment is either mutable (cols holds the growing tail vectors) or
// sealed (sealed holds the frozen, possibly compressed columns and
// cols is nil). Sealed segments are immutable.
type segment struct {
	cols   []*vector.Vector
	rows   int
	sealed []*SealedColumn
}

// NewColumnStore creates an empty store for columns of the given types
// with compression enabled.
func NewColumnStore(types []vector.Type) *ColumnStore {
	return &ColumnStore{types: append([]vector.Type(nil), types...), compress: true}
}

// SetCompression toggles compression and zone-map computation for
// segments sealed after the call (existing segments are not
// rewritten). With compression off, sealed segments keep their raw
// vectors and carry no zone maps, so scans can never prune them —
// this is the reference path differential tests compare against.
func (s *ColumnStore) SetCompression(on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compress = on
}

// Types returns the column types.
func (s *ColumnStore) Types() []vector.Type { return s.types }

// NumRows returns the current row count.
func (s *ColumnStore) NumRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows
}

// NumColumns returns the column count.
func (s *ColumnStore) NumColumns() int { return len(s.types) }

func newSegment(types []vector.Type) *segment {
	cols := make([]*vector.Vector, len(types))
	for i, t := range types {
		cols[i] = vector.New(t, SegmentRows)
	}
	return &segment{cols: cols}
}

// seal freezes the segment: every column is encoded (or kept raw) and
// annotated with a zone map, and the mutable vectors are released.
func (g *segment) seal(compress bool) {
	sealed := make([]*SealedColumn, len(g.cols))
	for i, c := range g.cols {
		sealed[i] = sealColumn(c, compress)
	}
	g.sealed = sealed
	g.cols = nil
}

// AppendChunk appends the rows of ch. Column arity and types must
// match the store schema; numeric columns are cast when they differ.
// Segments that fill up are sealed in place.
func (s *ColumnStore) AppendChunk(ch *vector.Chunk) error {
	if ch.NumCols() != len(s.types) {
		return fmt.Errorf("storage: append %d columns to %d-column table", ch.NumCols(), len(s.types))
	}
	cast := make([]*vector.Vector, ch.NumCols())
	for i := 0; i < ch.NumCols(); i++ {
		c := ch.Col(i)
		if c.Type() != s.types[i] {
			cc, err := c.Cast(s.types[i])
			if err != nil {
				return fmt.Errorf("storage: column %d: %w", i, err)
			}
			c = cc
		}
		cast[i] = c
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	offset := 0
	n := ch.NumRows()
	for offset < n {
		seg := s.lastOpenSegment()
		room := SegmentRows - seg.rows
		take := n - offset
		if take > room {
			take = room
		}
		for i, col := range seg.cols {
			col.AppendVector(cast[i].Slice(offset, offset+take))
		}
		seg.rows += take
		offset += take
		s.rows += take
		if seg.rows == SegmentRows {
			seg.seal(s.compress)
		}
	}
	return nil
}

func (s *ColumnStore) lastOpenSegment() *segment {
	if len(s.segs) == 0 {
		s.segs = append(s.segs, newSegment(s.types))
	} else if last := s.segs[len(s.segs)-1]; last.sealed != nil || last.rows == SegmentRows {
		s.segs = append(s.segs, newSegment(s.types))
	}
	return s.segs[len(s.segs)-1]
}

// attachSealedSegment appends an already sealed segment (used when
// loading a table file; payloads stay encoded until scanned).
func (s *ColumnStore) attachSealedSegment(rows int, cols []*SealedColumn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segs = append(s.segs, &segment{rows: rows, sealed: cols})
	s.rows += rows
}

// AppendRow appends a single row of values.
func (s *ColumnStore) AppendRow(vals []vector.Value) error {
	if len(vals) != len(s.types) {
		return fmt.Errorf("storage: row has %d values, table has %d columns", len(vals), len(s.types))
	}
	cols := make([]*vector.Vector, len(s.types))
	for i, t := range s.types {
		cols[i] = vector.New(t, 1)
		v := vals[i]
		if !v.IsNull() && v.Type() != t {
			cv, err := v.Cast(t)
			if err != nil {
				return fmt.Errorf("storage: column %d: %w", i, err)
			}
			v = cv
		}
		cols[i].AppendValue(v)
	}
	return s.AppendChunk(vector.NewChunk(cols...))
}

// NumSegments returns the number of segments.
func (s *ColumnStore) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs)
}

// snapshotSegment returns segment i's state under the read lock:
// either its immutable sealed columns, or (for the mutable tail) a
// copy of the live vector headers. Sealed columns can be decoded
// outside the lock; tail vectors alias live storage, matching the
// pre-sealing zero-copy behavior.
func (s *ColumnStore) snapshotSegment(i int) (sealed []*SealedColumn, cols []*vector.Vector) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seg := s.segs[i]
	if seg.sealed != nil {
		return seg.sealed, nil
	}
	return nil, append([]*vector.Vector(nil), seg.cols...)
}

// Segment returns segment i's columns restricted to the projected
// column indexes (nil projects all), as a chunk. Sealed raw columns
// are returned zero-copy; compressed columns are decoded.
func (s *ColumnStore) Segment(i int, projection []int) (*vector.Chunk, error) {
	return s.SegmentInto(i, projection, nil)
}

// SegmentInto is Segment with optional reusable decode buffers: when
// bufs is non-nil it must have one (possibly nil) vector per
// projected column; compressed columns decode into the corresponding
// buffer instead of allocating. The returned chunk may alias both the
// buffers and store-owned raw vectors, and is valid until the buffers
// are reused.
func (s *ColumnStore) SegmentInto(i int, projection []int, bufs []*vector.Vector) (*vector.Chunk, error) {
	sealed, live := s.snapshotSegment(i)
	if sealed != nil {
		if projection == nil {
			cols := make([]*vector.Vector, len(sealed))
			for j, sc := range sealed {
				v, err := decodeRecycling(sc, bufs, j)
				if err != nil {
					return nil, fmt.Errorf("storage: segment %d column %d: %w", i, j, err)
				}
				cols[j] = v
			}
			return vector.NewChunk(cols...), nil
		}
		cols := make([]*vector.Vector, len(projection))
		for j, p := range projection {
			v, err := decodeRecycling(sealed[p], bufs, j)
			if err != nil {
				return nil, fmt.Errorf("storage: segment %d column %d: %w", i, p, err)
			}
			cols[j] = v
		}
		return vector.NewChunk(cols...), nil
	}

	if projection == nil {
		return vector.NewChunk(live...), nil
	}
	cols := make([]*vector.Vector, len(projection))
	for j, p := range projection {
		cols[j] = live[p]
	}
	return vector.NewChunk(cols...), nil
}

// decodeRecycling decodes one sealed column through the caller's
// buffer slot j. Decoded (non-raw) vectors are written back into the
// slot so the next decode reuses their backing arrays; raw columns
// bypass the slot entirely — their cached vector is store-owned and
// must never be handed out as a scratch buffer.
func decodeRecycling(sc *SealedColumn, bufs []*vector.Vector, j int) (*vector.Vector, error) {
	var buf *vector.Vector
	if j < len(bufs) {
		buf = bufs[j]
	}
	v, err := sc.Decode(buf)
	if err != nil {
		return nil, err
	}
	if sc.Enc != EncRaw && j < len(bufs) {
		bufs[j] = v
	}
	return v, nil
}

// Zones returns the zone maps of segment i's columns (indexed by
// table column position), or nil for the mutable tail — unsealed
// segments carry no statistics and are never pruned.
func (s *ColumnStore) Zones(i int) []ZoneMap {
	sealed, _ := s.snapshotSegment(i)
	if sealed == nil {
		return nil
	}
	out := make([]ZoneMap, len(sealed))
	for j, sc := range sealed {
		out[j] = sc.Zone
	}
	return out
}

// SegmentIsSealed reports whether segment i has been sealed.
func (s *ColumnStore) SegmentIsSealed(i int) bool {
	sealed, _ := s.snapshotSegment(i)
	return sealed != nil
}

// NoteScan adds to the store's cumulative scanned/skipped segment
// counters (called by the executor when a scan finishes).
func (s *ColumnStore) NoteScan(scanned, skipped int64) {
	s.segsScanned.Add(scanned)
	s.segsSkipped.Add(skipped)
}

// TableStats summarizes the physical layout of one table.
type TableStats struct {
	Rows           int
	Segments       int
	SealedSegments int
	// LogicalBytes estimates the uncompressed payload size;
	// CompressedBytes is the actual footprint of sealed payloads
	// (equal to logical for raw columns).
	LogicalBytes    int64
	CompressedBytes int64
	// EncodedColumns counts sealed columns per encoding name
	// ("raw", "rle", "for", "dict").
	EncodedColumns map[string]int
	// SegmentsScanned and SegmentsSkipped are cumulative counts of
	// segments decoded for scans vs. skipped by zone-map pruning.
	SegmentsScanned int64
	SegmentsSkipped int64
	// Columns holds the per-column statistics rollup (one entry per
	// table column, in schema order) the cost-based planner reads.
	Columns []ColumnStats
}

// ColumnStats is the table-level rollup of one column's per-segment
// statistics: zone maps merged to global bounds and null counts, and
// segment HLL sketches merged to a distinct-count estimate. Only
// sealed, statistics-bearing segments contribute — StatsRows below
// Rows of the table means part of the data (the mutable tail, or
// segments sealed with compression off) is uncovered and estimates
// should be scaled accordingly.
type ColumnStats struct {
	// StatsRows counts the rows covered by zone-map statistics.
	StatsRows int
	NullCount int
	// Distinct is the merged-HLL distinct estimate over the rows
	// covered by sketches (SketchRows); 0 means no sketch available.
	Distinct   int64
	SketchRows int
	// Min and Max bound the column's non-NULL values over the covered
	// rows; valid only when HasMinMax.
	Min, Max  vector.Value
	HasMinMax bool
}

// Stats computes the store's physical statistics.
func (s *ColumnStore) Stats() TableStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := TableStats{
		Rows:            s.rows,
		Segments:        len(s.segs),
		EncodedColumns:  map[string]int{},
		SegmentsScanned: s.segsScanned.Load(),
		SegmentsSkipped: s.segsSkipped.Load(),
	}
	for _, seg := range s.segs {
		if seg.sealed == nil {
			for _, c := range seg.cols {
				n := int64(rawSizeOf(c))
				st.LogicalBytes += n
				st.CompressedBytes += n
			}
			continue
		}
		st.SealedSegments++
		for _, sc := range seg.sealed {
			st.LogicalBytes += int64(sc.LogicalBytes())
			st.CompressedBytes += int64(sc.CompressedBytes())
			st.EncodedColumns[sc.Enc.String()]++
		}
	}
	st.Columns = s.columnStatsLocked()
	return st
}

// ColumnStatistics returns the per-column rollup alone (the cheap
// subset of Stats the planner needs).
func (s *ColumnStore) ColumnStatistics() []ColumnStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.columnStatsLocked()
}

// columnStatsLocked merges per-segment zone maps and HLL sketches into
// table-level column statistics. Caller holds at least the read lock.
func (s *ColumnStore) columnStatsLocked() []ColumnStats {
	out := make([]ColumnStats, len(s.types))
	sketches := make([]*HLL, len(s.types))
	for _, seg := range s.segs {
		if seg.sealed == nil {
			continue
		}
		for c, sc := range seg.sealed {
			cs := &out[c]
			z := sc.Zone
			if z.Rows == 0 {
				continue // sealed with compression off: no statistics
			}
			cs.StatsRows += z.Rows
			cs.NullCount += z.NullCount
			if z.HasMinMax() {
				if !cs.HasMinMax {
					cs.Min, cs.Max, cs.HasMinMax = z.Min, z.Max, true
				} else {
					if r, err := z.Min.Compare(cs.Min); err == nil && r < 0 {
						cs.Min = z.Min
					}
					if r, err := z.Max.Compare(cs.Max); err == nil && r > 0 {
						cs.Max = z.Max
					}
				}
			}
			if sc.Sketch != nil {
				cs.SketchRows += z.Rows
				if sketches[c] == nil {
					sketches[c] = NewHLL()
				}
				sketches[c].Merge(sc.Sketch)
			}
		}
	}
	for c, h := range sketches {
		out[c].Distinct = h.Estimate()
	}
	return out
}

// SegmentRowCounts returns the row count of every segment in order.
// Scans that tag rows with global positions use this to compute each
// segment's base offset, counting segments whether or not zone-map
// pruning later skips them.
func (s *ColumnStore) SegmentRowCounts() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, len(s.segs))
	for i, seg := range s.segs {
		out[i] = seg.rows
	}
	return out
}

// Column materializes the full column c as one contiguous vector.
func (s *ColumnStore) Column(c int) (*vector.Vector, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := vector.New(s.types[c], s.rows)
	for i, seg := range s.segs {
		if seg.sealed != nil {
			v, err := seg.sealed[c].Decode(nil)
			if err != nil {
				return nil, fmt.Errorf("storage: segment %d column %d: %w", i, c, err)
			}
			out.AppendVector(v)
			continue
		}
		out.AppendVector(seg.cols[c])
	}
	return out, nil
}

// Truncate removes all rows, keeping the schema.
func (s *ColumnStore) Truncate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segs = nil
	s.rows = 0
}
