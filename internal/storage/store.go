// Package storage implements the in-memory segmented column store
// backing engine tables, plus a checksummed on-disk columnar format
// for persistence. Data is stored append-only in column segments whose
// row count matches the execution chunk size, so scans hand segments
// to the executor without copying.
package storage

import (
	"fmt"
	"sync"

	"vexdb/internal/vector"
)

// SegmentRows is the row capacity of one column segment. It equals the
// execution chunk size so sealed segments can be scanned zero-copy.
const SegmentRows = vector.DefaultChunkSize

// ColumnStore holds the data of one table as a list of segments. Each
// segment stores up to SegmentRows rows of every column. Appends and
// scans are safe for concurrent use.
type ColumnStore struct {
	mu    sync.RWMutex
	types []vector.Type
	segs  []*segment
	rows  int
}

type segment struct {
	cols []*vector.Vector
	rows int
}

// NewColumnStore creates an empty store for columns of the given types.
func NewColumnStore(types []vector.Type) *ColumnStore {
	return &ColumnStore{types: append([]vector.Type(nil), types...)}
}

// Types returns the column types.
func (s *ColumnStore) Types() []vector.Type { return s.types }

// NumRows returns the current row count.
func (s *ColumnStore) NumRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rows
}

// NumColumns returns the column count.
func (s *ColumnStore) NumColumns() int { return len(s.types) }

func newSegment(types []vector.Type) *segment {
	cols := make([]*vector.Vector, len(types))
	for i, t := range types {
		cols[i] = vector.New(t, SegmentRows)
	}
	return &segment{cols: cols}
}

// AppendChunk appends the rows of ch. Column arity and types must
// match the store schema; numeric columns are cast when they differ.
func (s *ColumnStore) AppendChunk(ch *vector.Chunk) error {
	if ch.NumCols() != len(s.types) {
		return fmt.Errorf("storage: append %d columns to %d-column table", ch.NumCols(), len(s.types))
	}
	cast := make([]*vector.Vector, ch.NumCols())
	for i := 0; i < ch.NumCols(); i++ {
		c := ch.Col(i)
		if c.Type() != s.types[i] {
			cc, err := c.Cast(s.types[i])
			if err != nil {
				return fmt.Errorf("storage: column %d: %w", i, err)
			}
			c = cc
		}
		cast[i] = c
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	offset := 0
	n := ch.NumRows()
	for offset < n {
		seg := s.lastOpenSegment()
		room := SegmentRows - seg.rows
		take := n - offset
		if take > room {
			take = room
		}
		for i, col := range seg.cols {
			col.AppendVector(cast[i].Slice(offset, offset+take))
		}
		seg.rows += take
		offset += take
		s.rows += take
	}
	return nil
}

func (s *ColumnStore) lastOpenSegment() *segment {
	if len(s.segs) == 0 || s.segs[len(s.segs)-1].rows == SegmentRows {
		s.segs = append(s.segs, newSegment(s.types))
	}
	return s.segs[len(s.segs)-1]
}

// AppendRow appends a single row of values.
func (s *ColumnStore) AppendRow(vals []vector.Value) error {
	if len(vals) != len(s.types) {
		return fmt.Errorf("storage: row has %d values, table has %d columns", len(vals), len(s.types))
	}
	cols := make([]*vector.Vector, len(s.types))
	for i, t := range s.types {
		cols[i] = vector.New(t, 1)
		v := vals[i]
		if !v.IsNull() && v.Type() != t {
			cv, err := v.Cast(t)
			if err != nil {
				return fmt.Errorf("storage: column %d: %w", i, err)
			}
			v = cv
		}
		cols[i].AppendValue(v)
	}
	return s.AppendChunk(vector.NewChunk(cols...))
}

// NumSegments returns the number of segments.
func (s *ColumnStore) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segs)
}

// Segment returns segment i's columns restricted to the projected
// column indexes (nil projects all), as a chunk. Sealed segments are
// returned zero-copy.
func (s *ColumnStore) Segment(i int, projection []int) *vector.Chunk {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seg := s.segs[i]
	if projection == nil {
		cols := make([]*vector.Vector, len(seg.cols))
		copy(cols, seg.cols)
		return vector.NewChunk(cols...)
	}
	cols := make([]*vector.Vector, len(projection))
	for j, p := range projection {
		cols[j] = seg.cols[p]
	}
	return vector.NewChunk(cols...)
}

// Column materializes the full column c as one contiguous vector.
func (s *ColumnStore) Column(c int) *vector.Vector {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := vector.New(s.types[c], s.rows)
	for _, seg := range s.segs {
		out.AppendVector(seg.cols[c])
	}
	return out
}

// Truncate removes all rows, keeping the schema.
func (s *ColumnStore) Truncate() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.segs = nil
	s.rows = 0
}
