package storage

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"

	"vexdb/internal/vector"
)

func testStore(t *testing.T, n int) *ColumnStore {
	t.Helper()
	s := NewColumnStore([]vector.Type{vector.Int64, vector.Float64, vector.String})
	ids := make([]int64, n)
	fs := make([]float64, n)
	ss := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = int64(i)
		fs[i] = float64(i) * 1.5
		ss[i] = "row"
	}
	if err := s.AppendChunk(vector.NewChunk(
		vector.FromInt64s(ids), vector.FromFloat64s(fs), vector.FromStrings(ss))); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendAcrossSegments(t *testing.T) {
	n := SegmentRows*2 + 100
	s := testStore(t, n)
	if s.NumRows() != n {
		t.Fatalf("rows = %d, want %d", s.NumRows(), n)
	}
	if s.NumSegments() != 3 {
		t.Fatalf("segments = %d, want 3", s.NumSegments())
	}
	// Last row survives segmentation.
	col := mustColumn(t, s, 0)
	if col.Len() != n || col.Int64s()[n-1] != int64(n-1) {
		t.Fatalf("column materialization wrong")
	}
}

func TestSegmentProjection(t *testing.T) {
	s := testStore(t, 10)
	ch := mustSegment(t, s, 0, []int{2, 0})
	if ch.NumCols() != 2 {
		t.Fatalf("cols = %d", ch.NumCols())
	}
	if ch.Col(0).Type() != vector.String || ch.Col(1).Type() != vector.Int64 {
		t.Fatal("projection order wrong")
	}
	full := mustSegment(t, s, 0, nil)
	if full.NumCols() != 3 || full.NumRows() != 10 {
		t.Fatal("full segment wrong")
	}
}

func TestAppendRowWithCast(t *testing.T) {
	s := NewColumnStore([]vector.Type{vector.Int32, vector.Float64})
	if err := s.AppendRow([]vector.Value{vector.NewInt64(7), vector.NewInt64(2)}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRow([]vector.Value{vector.Null(), vector.NewFloat64(1.5)}); err != nil {
		t.Fatal(err)
	}
	c0 := mustColumn(t, s, 0)
	if c0.Get(0).Int64() != 7 || !c0.IsNull(1) {
		t.Fatal("row contents wrong")
	}
	if err := s.AppendRow([]vector.Value{vector.NewInt64(1)}); err == nil {
		t.Error("arity mismatch should error")
	}
}

func TestAppendChunkArityError(t *testing.T) {
	s := NewColumnStore([]vector.Type{vector.Int64})
	err := s.AppendChunk(vector.NewChunk(
		vector.FromInt64s([]int64{1}), vector.FromInt64s([]int64{2})))
	if err == nil {
		t.Fatal("want arity error")
	}
}

func TestTruncate(t *testing.T) {
	s := testStore(t, 100)
	s.Truncate()
	if s.NumRows() != 0 || s.NumSegments() != 0 {
		t.Fatal("truncate did not clear")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	s := NewColumnStore([]vector.Type{
		vector.Bool, vector.Int32, vector.Int64, vector.Float64, vector.String, vector.Blob})
	b := vector.New(vector.Bool, 3)
	b.AppendValue(vector.NewBool(true))
	b.AppendValue(vector.Null())
	b.AppendValue(vector.NewBool(false))
	i32 := vector.New(vector.Int32, 3)
	i32.AppendValue(vector.NewInt32(-5))
	i32.AppendValue(vector.Null())
	i32.AppendValue(vector.NewInt32(5))
	i64 := vector.FromInt64s([]int64{1 << 40, -9, 0})
	f := vector.FromFloat64s([]float64{1.5, -2.25, 0})
	str := vector.New(vector.String, 3)
	str.AppendValue(vector.NewString("hello"))
	str.AppendValue(vector.Null())
	str.AppendValue(vector.NewString(""))
	bl := vector.New(vector.Blob, 3)
	bl.AppendValue(vector.NewBlob([]byte{0, 1, 255}))
	bl.AppendValue(vector.Null())
	bl.AppendValue(vector.NewBlob(nil))
	if err := s.AppendChunk(vector.NewChunk(b, i32, i64, f, str, bl)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	names := []string{"b", "i32", "i64", "f", "s", "bl"}
	if err := WriteTable(&buf, names, s); err != nil {
		t.Fatal(err)
	}
	gotNames, got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != 6 || gotNames[4] != "s" {
		t.Fatalf("names = %v", gotNames)
	}
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	for c := 0; c < 6; c++ {
		want := mustColumn(t, s, c)
		have := mustColumn(t, got, c)
		for r := 0; r < 3; r++ {
			if want.IsNull(r) != have.IsNull(r) {
				t.Fatalf("col %d row %d null mismatch", c, r)
			}
			if !want.IsNull(r) && !want.Get(r).Equal(have.Get(r)) {
				// blob nil vs empty: both fine
				if c == 5 && len(want.Get(r).Bytes()) == 0 && len(have.Get(r).Bytes()) == 0 {
					continue
				}
				t.Fatalf("col %d row %d: %v != %v", c, r, want.Get(r), have.Get(r))
			}
		}
	}
}

func TestDiskCorruptionDetected(t *testing.T) {
	s := testStore(t, 50)
	var buf bytes.Buffer
	if err := WriteTable(&buf, []string{"a", "b", "c"}, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte inside the first column payload (past the header).
	data[len(data)-20] ^= 0xFF
	_, _, err := ReadTable(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestDiskBadMagic(t *testing.T) {
	_, _, err := ReadTable(bytes.NewReader([]byte("NOTATABLEFILE")))
	if err == nil {
		t.Fatal("want bad magic error")
	}
}

func TestSaveLoadTableFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.vxtb")
	s := testStore(t, SegmentRows+5)
	if err := SaveTableFile(path, []string{"a", "b", "c"}, s); err != nil {
		t.Fatal(err)
	}
	names, got, err := LoadTableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if names[0] != "a" || got.NumRows() != SegmentRows+5 {
		t.Fatalf("load: names=%v rows=%d", names, got.NumRows())
	}
}

// Property: disk round trip preserves arbitrary int64/float64 columns.
func TestQuickDiskRoundTrip(t *testing.T) {
	f := func(a []int64, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		s := NewColumnStore([]vector.Type{vector.Int64, vector.Float64})
		if n > 0 {
			if err := s.AppendChunk(vector.NewChunk(
				vector.FromInt64s(a[:n]), vector.FromFloat64s(b[:n]))); err != nil {
				return false
			}
		}
		var buf bytes.Buffer
		if err := WriteTable(&buf, []string{"a", "b"}, s); err != nil {
			return false
		}
		_, got, err := ReadTable(&buf)
		if err != nil {
			return false
		}
		if got.NumRows() != n {
			return false
		}
		ca, err := got.Column(0)
		if err != nil {
			return false
		}
		cb, err := got.Column(1)
		if err != nil {
			return false
		}
		ga := ca.Int64s()
		gb := cb.Float64s()
		for i := 0; i < n; i++ {
			if ga[i] != a[i] {
				return false
			}
			if gb[i] != b[i] && !(b[i] != b[i] && gb[i] != gb[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAppendScan(t *testing.T) {
	s := NewColumnStore([]vector.Type{vector.Int64})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = s.AppendRow([]vector.Value{vector.NewInt64(int64(i))})
		}
	}()
	for i := 0; i < 100; i++ {
		_ = s.NumRows()
		if s.NumSegments() > 0 {
			_, _ = s.Segment(0, nil)
		}
	}
	<-done
	if s.NumRows() != 100 {
		t.Fatalf("rows = %d", s.NumRows())
	}
}

func mustColumn(t *testing.T, s *ColumnStore, c int) *vector.Vector {
	t.Helper()
	v, err := s.Column(c)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func mustSegment(t *testing.T, s *ColumnStore, i int, projection []int) *vector.Chunk {
	t.Helper()
	ch, err := s.Segment(i, projection)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}
