package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"vexdb/internal/vector"
)

// On-disk table format, version 3 (all integers little-endian):
//
//	magic   [8]byte  "VXTB0003"
//	ncols   uint32
//	nrows   uint64
//	per column: nameLen uint16, name bytes, type uint8
//	nsegs   uint32
//	per segment:
//	  rows uint32 (1..SegmentRows)
//	  per column block:
//	    enc uint8 (raw / rle / for / dict)
//	    zoneFlags uint8 (bit0: min/max present, bit1: HLL sketch present)
//	    nullCount uint32
//	    [min value, max value]  (type uint8 + typed payload)
//	    [sketch: p uint8, 2^p register bytes]
//	    payloadLen uint64, payload bytes, crc32(payload) uint32
//
// Segments are stored in their sealed (possibly compressed) form and
// stay encoded after loading: LoadTableFile attaches the payload
// bytes, zone maps and distinct-count sketches directly, and columns
// decode lazily when first scanned. Version 2 files ("VXTB0002",
// identical but with no sketch flag) and version 1 files ("VXTB0001",
// one raw payload per column, no segments or zone maps) are still
// read; writes always produce version 3. Any other version is
// rejected. A version-3 sketch whose register width differs from the
// current hllP is skipped rather than rejected, so a future precision
// change stays backward readable.
var (
	tableMagicV1 = [8]byte{'V', 'X', 'T', 'B', '0', '0', '0', '1'}
	tableMagicV2 = [8]byte{'V', 'X', 'T', 'B', '0', '0', '0', '2'}
	tableMagicV3 = [8]byte{'V', 'X', 'T', 'B', '0', '0', '0', '3'}
)

const nullMarker = uint32(0xFFFFFFFF)

// sealedView returns every non-empty segment in sealed form for
// persistence: sealed segments as-is, the open tail sealed into a
// temporary view with its payload fixed (the store itself is not
// modified). The view is taken from one pinned version, so it is a
// consistent point-in-time image even while writers run.
func (s *ColumnStore) sealedView() (segRows []int, segCols [][]*SealedColumn, err error) {
	s.mu.Lock()
	compress := s.compress
	snap := s.Snapshot()
	s.mu.Unlock()
	for _, seg := range snap.v.segs {
		if seg.sealed != nil {
			segRows = append(segRows, seg.rows)
			segCols = append(segCols, seg.sealed)
			continue
		}
		if seg.rows == 0 {
			continue
		}
		tmp := make([]*SealedColumn, len(seg.cols))
		for i, c := range seg.cols {
			sc := sealColumn(c, compress)
			if sc.payload == nil {
				// Detach from the live tail vector: appends after this
				// snapshot must not affect the written payload.
				sc.payload, err = encodeColumn(c)
				if err != nil {
					return nil, nil, err
				}
			}
			tmp[i] = sc
		}
		segRows = append(segRows, seg.rows)
		segCols = append(segCols, tmp)
	}
	return segRows, segCols, nil
}

// WriteTable writes names, types, zone maps and the sealed (possibly
// compressed) column payloads of every segment to w.
func WriteTable(w io.Writer, names []string, store *ColumnStore) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(tableMagicV3[:]); err != nil {
		return err
	}
	types := store.Types()
	if len(names) != len(types) {
		return fmt.Errorf("storage: %d names for %d columns", len(names), len(types))
	}
	segRows, segCols, err := store.sealedView()
	if err != nil {
		return err
	}
	var nrows uint64
	for _, r := range segRows {
		nrows += uint64(r)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(types))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, nrows); err != nil {
		return err
	}
	for i, name := range names {
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(types[i])); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(segRows))); err != nil {
		return err
	}
	for si, cols := range segCols {
		if err := binary.Write(bw, binary.LittleEndian, uint32(segRows[si])); err != nil {
			return err
		}
		for c, sc := range cols {
			if err := bw.WriteByte(byte(sc.Enc)); err != nil {
				return err
			}
			var flags byte
			if sc.Zone.HasMinMax() {
				flags |= 1
			}
			if sc.Sketch != nil {
				flags |= 2
			}
			if err := bw.WriteByte(flags); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(sc.Zone.NullCount)); err != nil {
				return err
			}
			if flags&1 != 0 {
				if err := writeZoneValue(bw, sc.Zone.Min); err != nil {
					return err
				}
				if err := writeZoneValue(bw, sc.Zone.Max); err != nil {
					return err
				}
			}
			if flags&2 != 0 {
				if err := bw.WriteByte(hllP); err != nil {
					return err
				}
				if _, err := bw.Write(sc.Sketch.Registers()); err != nil {
					return err
				}
			}
			payload, err := sc.diskPayload()
			if err != nil {
				return fmt.Errorf("storage: column %q: %w", names[c], err)
			}
			if err := binary.Write(bw, binary.LittleEndian, uint64(len(payload))); err != nil {
				return err
			}
			if _, err := bw.Write(payload); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(payload)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// writeZoneValue serializes a zone-map boundary as a type byte plus a
// typed payload.
func writeZoneValue(bw *bufio.Writer, v vector.Value) error {
	if err := bw.WriteByte(byte(v.Type())); err != nil {
		return err
	}
	switch v.Type() {
	case vector.Bool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		return bw.WriteByte(b)
	case vector.Int32:
		return binary.Write(bw, binary.LittleEndian, uint32(v.Int64()))
	case vector.Int64:
		return binary.Write(bw, binary.LittleEndian, uint64(v.Int64()))
	case vector.Float64:
		return binary.Write(bw, binary.LittleEndian, math.Float64bits(v.Float64()))
	case vector.String:
		s := v.Str()
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	return fmt.Errorf("storage: zone value of type %s not serializable", v.Type())
}

func readZoneValue(br *bufio.Reader) (vector.Value, error) {
	tb, err := br.ReadByte()
	if err != nil {
		return vector.Null(), err
	}
	switch vector.Type(tb) {
	case vector.Bool:
		b, err := br.ReadByte()
		if err != nil {
			return vector.Null(), err
		}
		return vector.NewBool(b != 0), nil
	case vector.Int32:
		var x uint32
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return vector.Null(), err
		}
		return vector.NewInt32(int32(x)), nil
	case vector.Int64:
		var x uint64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return vector.Null(), err
		}
		return vector.NewInt64(int64(x)), nil
	case vector.Float64:
		var x uint64
		if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
			return vector.Null(), err
		}
		return vector.NewFloat64(math.Float64frombits(x)), nil
	case vector.String:
		var l uint32
		if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
			return vector.Null(), err
		}
		if l > 1<<20 {
			return vector.Null(), fmt.Errorf("storage: zone string %d bytes implausible", l)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(br, b); err != nil {
			return vector.Null(), err
		}
		return vector.NewString(string(b)), nil
	}
	return vector.Null(), fmt.Errorf("storage: zone value type %d invalid", tb)
}

// ReadTable reads a table written by WriteTable (version 3) or by the
// version 1 and 2 writers. Unknown versions are rejected.
func ReadTable(r io.Reader) (names []string, store *ColumnStore, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("storage: read magic: %w", err)
	}
	switch magic {
	case tableMagicV3:
		return readTableSegments(br, true)
	case tableMagicV2:
		return readTableSegments(br, false)
	case tableMagicV1:
		return readTableV1(br)
	}
	return nil, nil, fmt.Errorf("storage: bad magic %q (unsupported table file version)", magic[:])
}

// readHeader reads the shared column-meta header of both versions.
func readHeader(br *bufio.Reader) (names []string, types []vector.Type, nrows uint64, err error) {
	var ncols uint32
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, nil, 0, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nrows); err != nil {
		return nil, nil, 0, err
	}
	types = make([]vector.Type, ncols)
	names = make([]string, ncols)
	for i := range names {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, nil, 0, err
		}
		nb := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nb); err != nil {
			return nil, nil, 0, err
		}
		names[i] = string(nb)
		tb, err := br.ReadByte()
		if err != nil {
			return nil, nil, 0, err
		}
		types[i] = vector.Type(tb)
	}
	return names, types, nrows, nil
}

// readTableSegments reads the segmented body shared by versions 2 and
// 3; sketches (version 3) are the only difference between the two.
func readTableSegments(br *bufio.Reader, hasSketch bool) (names []string, store *ColumnStore, err error) {
	names, types, nrows, err := readHeader(br)
	if err != nil {
		return nil, nil, err
	}
	store = NewColumnStore(types)
	var nsegs uint32
	if err := binary.Read(br, binary.LittleEndian, &nsegs); err != nil {
		return nil, nil, err
	}
	var total uint64
	for si := uint32(0); si < nsegs; si++ {
		var rows uint32
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return nil, nil, err
		}
		if rows == 0 || rows > SegmentRows {
			return nil, nil, fmt.Errorf("storage: segment %d has %d rows (max %d)", si, rows, SegmentRows)
		}
		cols := make([]*SealedColumn, len(types))
		for c := range types {
			eb, err := br.ReadByte()
			if err != nil {
				return nil, nil, err
			}
			enc := Encoding(eb)
			if !validEncoding(enc) {
				return nil, nil, fmt.Errorf("storage: column %q: unknown encoding %d", names[c], eb)
			}
			if err := encodingValidForType(enc, types[c]); err != nil {
				return nil, nil, fmt.Errorf("storage: column %q: %w", names[c], err)
			}
			flags, err := br.ReadByte()
			if err != nil {
				return nil, nil, err
			}
			var nullCount uint32
			if err := binary.Read(br, binary.LittleEndian, &nullCount); err != nil {
				return nil, nil, err
			}
			zone := ZoneMap{NullCount: int(nullCount), Rows: int(rows)}
			if flags&1 != 0 {
				if zone.Min, err = readZoneValue(br); err != nil {
					return nil, nil, err
				}
				if zone.Max, err = readZoneValue(br); err != nil {
					return nil, nil, err
				}
				// The writer always emits bounds of the column's own
				// type; a mismatch is corruption and must fail here —
				// at scan time a wrongly-typed bound could silently
				// over-prune instead of erroring.
				if zone.Min.Type() != types[c] || zone.Max.Type() != types[c] {
					return nil, nil, fmt.Errorf("storage: column %q: zone bounds typed %s/%s for %s column",
						names[c], zone.Min.Type(), zone.Max.Type(), types[c])
				}
			}
			var sketch *HLL
			if hasSketch && flags&2 != 0 {
				p, err := br.ReadByte()
				if err != nil {
					return nil, nil, err
				}
				if p == 0 || p > 16 {
					return nil, nil, fmt.Errorf("storage: column %q: sketch precision %d invalid", names[c], p)
				}
				regs := make([]byte, 1<<p)
				if _, err := io.ReadFull(br, regs); err != nil {
					return nil, nil, err
				}
				// A precision other than the current hllP reads cleanly
				// but is not adopted (the planner just sees no sketch).
				sketch = hllFromRegisters(regs)
			}
			var plen uint64
			if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
				return nil, nil, err
			}
			payload := make([]byte, plen)
			if _, err := io.ReadFull(br, payload); err != nil {
				return nil, nil, err
			}
			var sum uint32
			if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
				return nil, nil, err
			}
			if crc32.ChecksumIEEE(payload) != sum {
				return nil, nil, fmt.Errorf("storage: column %q: checksum mismatch", names[c])
			}
			cols[c] = loadedColumn(enc, types[c], int(rows), zone, sketch, payload)
		}
		store.attachSealedSegment(int(rows), cols)
		total += uint64(rows)
	}
	if total != nrows {
		return nil, nil, fmt.Errorf("storage: segments hold %d rows, header says %d", total, nrows)
	}
	return names, store, nil
}

// encodingValidForType rejects encoding/type pairs the encoder never
// produces, so corrupt files fail at load instead of scan time.
func encodingValidForType(enc Encoding, t vector.Type) error {
	switch enc {
	case EncRLE, EncFOR:
		if t != vector.Int32 && t != vector.Int64 {
			return fmt.Errorf("encoding %s invalid for %s", enc, t)
		}
	case EncDict:
		if t != vector.String {
			return fmt.Errorf("encoding %s invalid for %s", enc, t)
		}
	}
	return nil
}

// readTableV1 reads the legacy single-payload-per-column format. The
// columns are materialized eagerly and re-segmented (and re-sealed
// under the current compression setting) through AppendChunk.
func readTableV1(br *bufio.Reader) (names []string, store *ColumnStore, err error) {
	names, types, nrows, err := readHeader(br)
	if err != nil {
		return nil, nil, err
	}
	store = NewColumnStore(types)
	cols := make([]*vector.Vector, len(types))
	for c := range types {
		var plen uint64
		if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
			return nil, nil, err
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, nil, err
		}
		var sum uint32
		if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
			return nil, nil, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, nil, fmt.Errorf("storage: column %q: checksum mismatch", names[c])
		}
		col, err := decodeColumn(types[c], int(nrows), payload)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: column %q: %w", names[c], err)
		}
		cols[c] = col
	}
	if len(types) > 0 {
		if err := store.AppendChunk(vector.NewChunk(cols...)); err != nil {
			return nil, nil, err
		}
	}
	return names, store, nil
}

// SaveTableFile writes the table to path atomically (temp + rename).
func SaveTableFile(path string, names []string, store *ColumnStore) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteTable(f, names, store); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadTableFile reads a table file written by SaveTableFile. Sealed
// segment payloads stay encoded until first scanned.
func LoadTableFile(path string) ([]string, *ColumnStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadTable(f)
}

// EncodeColumn serializes one column to the raw storage payload
// format (fixed-width values with an optional null trailer, or
// length-prefixed variable-width entries). The wire protocol's
// columnar chunk frames reuse it, so the on-disk raw and on-wire
// column layouts stay identical.
func EncodeColumn(col *vector.Vector) ([]byte, error) { return encodeColumn(col) }

// DecodeColumn reverses EncodeColumn for a column of n rows.
func DecodeColumn(t vector.Type, n int, payload []byte) (*vector.Vector, error) {
	return decodeColumn(t, n, payload)
}

func encodeColumn(col *vector.Vector) ([]byte, error) {
	n := col.Len()
	switch col.Type() {
	case vector.Bool:
		out := make([]byte, 0, 2*n)
		for i, b := range col.Bools() {
			var v byte
			if b {
				v = 1
			}
			if col.IsNull(i) {
				v = 2
			}
			out = append(out, v)
		}
		return out, nil
	case vector.Int32:
		out := make([]byte, 0, 4*n+n)
		for _, x := range col.Int32s() {
			out = binary.LittleEndian.AppendUint32(out, uint32(x))
		}
		return appendNullTrailer(out, col), nil
	case vector.Int64:
		out := make([]byte, 0, 8*n+n)
		for _, x := range col.Int64s() {
			out = binary.LittleEndian.AppendUint64(out, uint64(x))
		}
		return appendNullTrailer(out, col), nil
	case vector.Float64:
		out := make([]byte, 0, 8*n+n)
		for _, x := range col.Float64s() {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
		}
		return appendNullTrailer(out, col), nil
	case vector.String:
		var out []byte
		for i, s := range col.Strings() {
			if col.IsNull(i) {
				out = binary.LittleEndian.AppendUint32(out, nullMarker)
				continue
			}
			out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
			out = append(out, s...)
		}
		return out, nil
	case vector.Blob:
		var out []byte
		for i, b := range col.Blobs() {
			if col.IsNull(i) {
				out = binary.LittleEndian.AppendUint32(out, nullMarker)
				continue
			}
			out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
			out = append(out, b...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported column type %v", col.Type())
}

// appendNullTrailer appends one byte per row (1 = NULL) when the
// column has NULLs, or nothing when it has none. The decoder detects
// the trailer from the payload length.
func appendNullTrailer(out []byte, col *vector.Vector) []byte {
	if !col.HasNulls() {
		return out
	}
	for i := 0; i < col.Len(); i++ {
		var v byte
		if col.IsNull(i) {
			v = 1
		}
		out = append(out, v)
	}
	return out
}

// decodeColumn strictly validates its payload: wrong sizes, truncated
// or trailing bytes, and malformed null trailers are rejected with an
// error rather than decoded best-effort.
func decodeColumn(t vector.Type, n int, payload []byte) (*vector.Vector, error) {
	if n < 0 {
		return nil, fmt.Errorf("negative row count %d", n)
	}
	switch t {
	case vector.Bool:
		if len(payload) != n {
			return nil, fmt.Errorf("bool payload %d bytes for %d rows", len(payload), n)
		}
		v := vector.New(vector.Bool, n)
		for i, b := range payload {
			switch b {
			case 0, 1:
				v.AppendValue(vector.NewBool(b == 1))
			case 2:
				v.AppendValue(vector.Null())
			default:
				return nil, fmt.Errorf("bool payload byte %d at row %d (want 0, 1 or 2)", b, i)
			}
		}
		return v, nil
	case vector.Int32:
		data, nulls, err := splitFixed(payload, n, 4)
		if err != nil {
			return nil, err
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
		}
		return applyNulls(vector.FromInt32s(out), nulls)
	case vector.Int64:
		data, nulls, err := splitFixed(payload, n, 8)
		if err != nil {
			return nil, err
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return applyNulls(vector.FromInt64s(out), nulls)
	case vector.Float64:
		data, nulls, err := splitFixed(payload, n, 8)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return applyNulls(vector.FromFloat64s(out), nulls)
	case vector.String:
		v := vector.New(vector.String, n)
		off := 0
		for i := 0; i < n; i++ {
			if off+4 > len(payload) {
				return nil, fmt.Errorf("truncated string column at row %d", i)
			}
			l := binary.LittleEndian.Uint32(payload[off:])
			off += 4
			if l == nullMarker {
				v.AppendValue(vector.Null())
				continue
			}
			if uint64(off)+uint64(l) > uint64(len(payload)) {
				return nil, fmt.Errorf("truncated string column at row %d", i)
			}
			v.AppendValue(vector.NewString(string(payload[off : off+int(l)])))
			off += int(l)
		}
		if off != len(payload) {
			return nil, fmt.Errorf("string column has %d trailing bytes", len(payload)-off)
		}
		return v, nil
	case vector.Blob:
		v := vector.New(vector.Blob, n)
		off := 0
		for i := 0; i < n; i++ {
			if off+4 > len(payload) {
				return nil, fmt.Errorf("truncated blob column at row %d", i)
			}
			l := binary.LittleEndian.Uint32(payload[off:])
			off += 4
			if l == nullMarker {
				v.AppendValue(vector.Null())
				continue
			}
			if uint64(off)+uint64(l) > uint64(len(payload)) {
				return nil, fmt.Errorf("truncated blob column at row %d", i)
			}
			v.AppendValue(vector.NewBlob(append([]byte(nil), payload[off:off+int(l)]...)))
			off += int(l)
		}
		if off != len(payload) {
			return nil, fmt.Errorf("blob column has %d trailing bytes", len(payload)-off)
		}
		return v, nil
	}
	return nil, fmt.Errorf("unsupported column type %v", t)
}

// splitFixed splits a fixed-width payload into data and an optional
// null trailer. A payload that is neither exactly the data nor the
// data plus a full one-byte-per-row trailer is truncated or padded
// and rejected.
func splitFixed(payload []byte, n, width int) (data, nulls []byte, err error) {
	switch len(payload) {
	case n * width:
		return payload, nil, nil
	case n*width + n:
		return payload[:n*width], payload[n*width:], nil
	default:
		return nil, nil, fmt.Errorf("payload %d bytes for %d rows of width %d (truncated null trailer?)", len(payload), n, width)
	}
}

// applyNulls marks rows NULL from a trailer of 0/1 bytes, rejecting
// any other byte value as corruption.
func applyNulls(v *vector.Vector, nulls []byte) (*vector.Vector, error) {
	for i, b := range nulls {
		switch b {
		case 0:
		case 1:
			v.SetNull(i)
		default:
			return nil, fmt.Errorf("null trailer byte %d at row %d (want 0 or 1)", b, i)
		}
	}
	return v, nil
}
