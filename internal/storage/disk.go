package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"vexdb/internal/vector"
)

// On-disk table format (all integers little-endian):
//
//	magic   [8]byte  "VXTB0001"
//	ncols   uint32
//	nrows   uint64
//	per column: nameLen uint16, name bytes, type uint8
//	per column block:
//	  payloadLen uint64, payload bytes, crc32(payload) uint32
//
// Fixed-width payloads are the raw values; Bool additionally packs the
// null mask after the data. Variable-width payloads are
// length-prefixed entries (uint32 length, 0xFFFFFFFF marks NULL).
var tableMagic = [8]byte{'V', 'X', 'T', 'B', '0', '0', '0', '1'}

const nullMarker = uint32(0xFFFFFFFF)

// WriteTable writes names, types and full column data to w.
func WriteTable(w io.Writer, names []string, store *ColumnStore) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(tableMagic[:]); err != nil {
		return err
	}
	types := store.Types()
	if len(names) != len(types) {
		return fmt.Errorf("storage: %d names for %d columns", len(names), len(types))
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(types))); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(store.NumRows())); err != nil {
		return err
	}
	for i, name := range names {
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
		if err := bw.WriteByte(byte(types[i])); err != nil {
			return err
		}
	}
	for c := range types {
		col := store.Column(c)
		payload, err := encodeColumn(col)
		if err != nil {
			return fmt.Errorf("storage: column %q: %w", names[c], err)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(payload))); err != nil {
			return err
		}
		if _, err := bw.Write(payload); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, crc32.ChecksumIEEE(payload)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTable reads a table written by WriteTable.
func ReadTable(r io.Reader) (names []string, store *ColumnStore, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("storage: read magic: %w", err)
	}
	if magic != tableMagic {
		return nil, nil, fmt.Errorf("storage: bad magic %q", magic[:])
	}
	var ncols uint32
	if err := binary.Read(br, binary.LittleEndian, &ncols); err != nil {
		return nil, nil, err
	}
	var nrows uint64
	if err := binary.Read(br, binary.LittleEndian, &nrows); err != nil {
		return nil, nil, err
	}
	types := make([]vector.Type, ncols)
	names = make([]string, ncols)
	for i := range names {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return nil, nil, err
		}
		nb := make([]byte, nameLen)
		if _, err := io.ReadFull(br, nb); err != nil {
			return nil, nil, err
		}
		names[i] = string(nb)
		tb, err := br.ReadByte()
		if err != nil {
			return nil, nil, err
		}
		types[i] = vector.Type(tb)
	}
	store = NewColumnStore(types)
	cols := make([]*vector.Vector, ncols)
	for c := range types {
		var plen uint64
		if err := binary.Read(br, binary.LittleEndian, &plen); err != nil {
			return nil, nil, err
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, nil, err
		}
		var sum uint32
		if err := binary.Read(br, binary.LittleEndian, &sum); err != nil {
			return nil, nil, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return nil, nil, fmt.Errorf("storage: column %q: checksum mismatch", names[c])
		}
		col, err := decodeColumn(types[c], int(nrows), payload)
		if err != nil {
			return nil, nil, fmt.Errorf("storage: column %q: %w", names[c], err)
		}
		cols[c] = col
	}
	if ncols > 0 {
		if err := store.AppendChunk(vector.NewChunk(cols...)); err != nil {
			return nil, nil, err
		}
	}
	return names, store, nil
}

// SaveTableFile writes the table to path atomically (temp + rename).
func SaveTableFile(path string, names []string, store *ColumnStore) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := WriteTable(f, names, store); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadTableFile reads a table file written by SaveTableFile.
func LoadTableFile(path string) ([]string, *ColumnStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadTable(f)
}

// EncodeColumn serializes one column to the storage payload format
// (fixed-width values with an optional null trailer, or
// length-prefixed variable-width entries). The wire protocol's
// columnar chunk frames reuse it, so the on-disk and on-wire column
// layouts stay identical.
func EncodeColumn(col *vector.Vector) ([]byte, error) { return encodeColumn(col) }

// DecodeColumn reverses EncodeColumn for a column of n rows.
func DecodeColumn(t vector.Type, n int, payload []byte) (*vector.Vector, error) {
	return decodeColumn(t, n, payload)
}

func encodeColumn(col *vector.Vector) ([]byte, error) {
	n := col.Len()
	switch col.Type() {
	case vector.Bool:
		out := make([]byte, 0, 2*n)
		for i, b := range col.Bools() {
			var v byte
			if b {
				v = 1
			}
			if col.IsNull(i) {
				v = 2
			}
			out = append(out, v)
		}
		return out, nil
	case vector.Int32:
		out := make([]byte, 0, 4*n+n)
		for i, x := range col.Int32s() {
			out = binary.LittleEndian.AppendUint32(out, uint32(x))
			_ = i
		}
		return appendNullTrailer(out, col), nil
	case vector.Int64:
		out := make([]byte, 0, 8*n+n)
		for _, x := range col.Int64s() {
			out = binary.LittleEndian.AppendUint64(out, uint64(x))
		}
		return appendNullTrailer(out, col), nil
	case vector.Float64:
		out := make([]byte, 0, 8*n+n)
		for _, x := range col.Float64s() {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(x))
		}
		return appendNullTrailer(out, col), nil
	case vector.String:
		var out []byte
		for i, s := range col.Strings() {
			if col.IsNull(i) {
				out = binary.LittleEndian.AppendUint32(out, nullMarker)
				continue
			}
			out = binary.LittleEndian.AppendUint32(out, uint32(len(s)))
			out = append(out, s...)
		}
		return out, nil
	case vector.Blob:
		var out []byte
		for i, b := range col.Blobs() {
			if col.IsNull(i) {
				out = binary.LittleEndian.AppendUint32(out, nullMarker)
				continue
			}
			out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
			out = append(out, b...)
		}
		return out, nil
	}
	return nil, fmt.Errorf("unsupported column type %v", col.Type())
}

// appendNullTrailer appends one byte per row (1 = NULL) when the
// column has NULLs, or nothing when it has none. The decoder detects
// the trailer from the payload length.
func appendNullTrailer(out []byte, col *vector.Vector) []byte {
	if !col.HasNulls() {
		return out
	}
	for i := 0; i < col.Len(); i++ {
		var v byte
		if col.IsNull(i) {
			v = 1
		}
		out = append(out, v)
	}
	return out
}

func decodeColumn(t vector.Type, n int, payload []byte) (*vector.Vector, error) {
	switch t {
	case vector.Bool:
		if len(payload) != n {
			return nil, fmt.Errorf("bool payload %d bytes for %d rows", len(payload), n)
		}
		v := vector.New(vector.Bool, n)
		for _, b := range payload {
			switch b {
			case 2:
				v.AppendValue(vector.Null())
			default:
				v.AppendValue(vector.NewBool(b == 1))
			}
		}
		return v, nil
	case vector.Int32:
		data, nulls, err := splitFixed(payload, n, 4)
		if err != nil {
			return nil, err
		}
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
		}
		return applyNulls(vector.FromInt32s(out), nulls), nil
	case vector.Int64:
		data, nulls, err := splitFixed(payload, n, 8)
		if err != nil {
			return nil, err
		}
		out := make([]int64, n)
		for i := range out {
			out[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return applyNulls(vector.FromInt64s(out), nulls), nil
	case vector.Float64:
		data, nulls, err := splitFixed(payload, n, 8)
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8*i:]))
		}
		return applyNulls(vector.FromFloat64s(out), nulls), nil
	case vector.String:
		v := vector.New(vector.String, n)
		off := 0
		for i := 0; i < n; i++ {
			if off+4 > len(payload) {
				return nil, fmt.Errorf("truncated string column at row %d", i)
			}
			l := binary.LittleEndian.Uint32(payload[off:])
			off += 4
			if l == nullMarker {
				v.AppendValue(vector.Null())
				continue
			}
			if off+int(l) > len(payload) {
				return nil, fmt.Errorf("truncated string column at row %d", i)
			}
			v.AppendValue(vector.NewString(string(payload[off : off+int(l)])))
			off += int(l)
		}
		return v, nil
	case vector.Blob:
		v := vector.New(vector.Blob, n)
		off := 0
		for i := 0; i < n; i++ {
			if off+4 > len(payload) {
				return nil, fmt.Errorf("truncated blob column at row %d", i)
			}
			l := binary.LittleEndian.Uint32(payload[off:])
			off += 4
			if l == nullMarker {
				v.AppendValue(vector.Null())
				continue
			}
			if off+int(l) > len(payload) {
				return nil, fmt.Errorf("truncated blob column at row %d", i)
			}
			v.AppendValue(vector.NewBlob(append([]byte(nil), payload[off:off+int(l)]...)))
			off += int(l)
		}
		return v, nil
	}
	return nil, fmt.Errorf("unsupported column type %v", t)
}

func splitFixed(payload []byte, n, width int) (data, nulls []byte, err error) {
	switch len(payload) {
	case n * width:
		return payload, nil, nil
	case n*width + n:
		return payload[:n*width], payload[n*width:], nil
	default:
		return nil, nil, fmt.Errorf("payload %d bytes for %d rows of width %d", len(payload), n, width)
	}
}

func applyNulls(v *vector.Vector, nulls []byte) *vector.Vector {
	for i, b := range nulls {
		if b == 1 {
			v.SetNull(i)
		}
	}
	return v
}
