package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"vexdb/internal/vector"
)

// Encoding identifies the physical representation of one sealed
// segment column.
type Encoding uint8

// Sealed-column encodings. The encoder picks per column, per segment:
// columns containing NULLs always stay raw, and a compressed encoding
// is used only when it is actually smaller than the raw payload.
const (
	// EncRaw stores the column uncompressed.
	EncRaw Encoding = iota
	// EncRLE stores a NULL-free integer column as (value, run length)
	// pairs; chosen for low-cardinality / clustered data.
	EncRLE
	// EncFOR stores a NULL-free integer column frame-of-reference
	// style: a base value plus fixed-width offsets narrowed to the
	// fewest bytes that span the segment's value range.
	EncFOR
	// EncDict stores a NULL-free string column as a distinct-value
	// dictionary plus per-row codes.
	EncDict
)

// String returns the encoding's short name.
func (e Encoding) String() string {
	switch e {
	case EncRaw:
		return "raw"
	case EncRLE:
		return "rle"
	case EncFOR:
		return "for"
	case EncDict:
		return "dict"
	}
	return fmt.Sprintf("enc(%d)", uint8(e))
}

func validEncoding(e Encoding) bool { return e <= EncDict }

// zoneMaxString bounds the length of string zone-map boundaries; a
// segment whose min or max string exceeds it carries no min/max (the
// segment is simply never pruned) rather than bloating the zone map.
const zoneMaxString = 64

// ZoneMap summarizes one column of one sealed segment for scan
// pruning. Min and Max are the smallest and largest comparable
// non-NULL values (NULL Values when the column has none: an all-NULL
// column, a Blob column, or a Float64 column of only NaNs). A
// zero-valued ZoneMap (Rows == 0) means "no statistics" and must
// never be used to prune.
type ZoneMap struct {
	Min, Max  vector.Value
	NullCount int
	Rows      int
}

// HasMinMax reports whether the zone carries usable value bounds.
// (Type() is Invalid both for NULL and for zero Values, so this also
// rejects never-populated bounds.)
func (z ZoneMap) HasMinMax() bool {
	return z.Min.Type() != vector.Invalid && z.Max.Type() != vector.Invalid
}

// computeZone scans a column once for min/max and null count.
// Float64 NaNs are excluded from the bounds: NaN compares false
// against everything, so a NaN row can never satisfy the comparison
// predicates pruning is allowed to act on (=, <, <=, >, >=). Numeric
// columns take unboxed fast paths — sealing runs on the append hot
// path.
func computeZone(v *vector.Vector) ZoneMap {
	n := v.Len()
	z := ZoneMap{Rows: n}
	switch v.Type() {
	case vector.Int32:
		var mn, mx int32
		seen := false
		for i, x := range v.Int32s() {
			if v.IsNull(i) {
				z.NullCount++
				continue
			}
			if !seen {
				mn, mx, seen = x, x, true
				continue
			}
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		if seen {
			z.Min, z.Max = vector.NewInt32(mn), vector.NewInt32(mx)
		}
	case vector.Int64:
		var mn, mx int64
		seen := false
		for i, x := range v.Int64s() {
			if v.IsNull(i) {
				z.NullCount++
				continue
			}
			if !seen {
				mn, mx, seen = x, x, true
				continue
			}
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		if seen {
			z.Min, z.Max = vector.NewInt64(mn), vector.NewInt64(mx)
		}
	case vector.Float64:
		var mn, mx float64
		seen := false
		for i, x := range v.Float64s() {
			if v.IsNull(i) {
				z.NullCount++
				continue
			}
			if math.IsNaN(x) {
				continue
			}
			if !seen {
				mn, mx, seen = x, x, true
				continue
			}
			if x < mn {
				mn = x
			}
			if x > mx {
				mx = x
			}
		}
		if seen {
			z.Min, z.Max = vector.NewFloat64(mn), vector.NewFloat64(mx)
		}
	case vector.Blob:
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				z.NullCount++ // blobs are not orderable; null count only
			}
		}
	default: // Bool, String
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				z.NullCount++
				continue
			}
			val := v.Get(i)
			if z.Min.Type() == vector.Invalid {
				z.Min, z.Max = val, val
				continue
			}
			if c, err := val.Compare(z.Min); err == nil && c < 0 {
				z.Min = val
			}
			if c, err := val.Compare(z.Max); err == nil && c > 0 {
				z.Max = val
			}
		}
	}
	if v.Type() == vector.String && z.HasMinMax() &&
		(len(z.Min.Str()) > zoneMaxString || len(z.Max.Str()) > zoneMaxString) {
		z.Min, z.Max = vector.Null(), vector.Null()
	}
	return z
}

// SealedColumn is one immutable column of a sealed segment: an
// encoding, the encoded payload (or a cached raw vector), and the
// zone map used for scan pruning.
type SealedColumn struct {
	Enc  Encoding
	Typ  vector.Type
	Rows int
	Zone ZoneMap
	// Sketch is the column's distinct-count HLL, computed at seal time
	// when compression (and thus statistics) is enabled; nil otherwise
	// (uncompressed tables, all-NULL or boolean columns, pre-V3 files).
	Sketch *HLL

	// payload holds the encoded bytes for compressed encodings, and
	// for raw columns loaded from disk that have not been decoded yet.
	payload []byte
	// vec is the materialized raw form: set at seal time for EncRaw,
	// or filled lazily (exactly once) from payload for raw columns
	// loaded from disk. Compressed columns never cache a decoded
	// vector — that would defeat the compression.
	vec     *vector.Vector
	once    sync.Once
	lazyErr error
	// logicalBytes estimates the uncompressed payload size for stats.
	logicalBytes int
}

// sealColumn freezes one column vector into its sealed form, choosing
// the smallest encoding. With compress disabled the column stays raw
// and carries no zone map, which is the reference path differential
// tests compare against.
func sealColumn(v *vector.Vector, compress bool) *SealedColumn {
	c := &SealedColumn{Enc: EncRaw, Typ: v.Type(), Rows: v.Len(), vec: v, logicalBytes: rawSizeOf(v)}
	if !compress {
		return c
	}
	c.Zone = computeZone(v)
	c.Sketch = computeSketch(v)
	if v.HasNulls() || v.Len() == 0 {
		return c
	}
	switch v.Type() {
	case vector.Int32, vector.Int64:
		if p, enc := encodeInts(v); p != nil && len(p) < c.logicalBytes {
			c.Enc, c.payload, c.vec = enc, p, nil
		}
	case vector.String:
		if p := encodeDict(v); p != nil && len(p) < c.logicalBytes {
			c.Enc, c.payload, c.vec = EncDict, p, nil
		}
	}
	return c
}

// loadedColumn reconstructs a sealed column from its persisted form.
// Raw payloads are kept as bytes and decoded lazily on first scan.
func loadedColumn(enc Encoding, typ vector.Type, rows int, zone ZoneMap, sketch *HLL, payload []byte) *SealedColumn {
	return &SealedColumn{Enc: enc, Typ: typ, Rows: rows, Zone: zone, Sketch: sketch, payload: payload,
		logicalBytes: logicalSizeFor(typ, rows, enc, payload)}
}

// rawSizeOf estimates the raw storage payload size of a vector.
func rawSizeOf(v *vector.Vector) int {
	switch v.Type() {
	case vector.Bool:
		return v.Len()
	case vector.Int32:
		return 4 * v.Len()
	case vector.Int64, vector.Float64:
		return 8 * v.Len()
	case vector.String:
		n := 0
		for _, s := range v.Strings() {
			n += 4 + len(s)
		}
		return n
	case vector.Blob:
		n := 0
		for _, b := range v.Blobs() {
			n += 4 + len(b)
		}
		return n
	}
	return 0
}

// logicalSizeFor estimates the uncompressed size of a loaded column
// without decoding it (exact for fixed-width types; for raw
// variable-width payloads the payload is already the raw form).
func logicalSizeFor(typ vector.Type, rows int, enc Encoding, payload []byte) int {
	if w := typ.FixedWidth(); w > 0 {
		return w * rows
	}
	if enc == EncRaw {
		return len(payload)
	}
	// Variable-width compressed (dict): sum the dictionary entry
	// lengths weighted by use would require decoding; approximate
	// with the payload size (stats only).
	return len(payload)
}

// CompressedBytes returns the column's actual storage footprint.
func (c *SealedColumn) CompressedBytes() int {
	if c.payload != nil {
		return len(c.payload)
	}
	return c.logicalBytes
}

// LogicalBytes returns the estimated uncompressed payload size.
func (c *SealedColumn) LogicalBytes() int { return c.logicalBytes }

// intAt reads an integer column widened to int64.
func intAt(v *vector.Vector, i int) int64 {
	if v.Type() == vector.Int32 {
		return int64(v.Int32s()[i])
	}
	return v.Int64s()[i]
}

// encodeInts picks between RLE and FOR for a NULL-free integer
// column in one pass, returning (nil, EncRaw) when neither applies.
func encodeInts(v *vector.Vector) ([]byte, Encoding) {
	n := v.Len()
	width := v.Type().FixedWidth()
	minV, maxV := intAt(v, 0), intAt(v, 0)
	runs := 1
	prev := minV
	for i := 1; i < n; i++ {
		x := intAt(v, i)
		if x != prev {
			runs++
			prev = x
		}
		if x < minV {
			minV = x
		}
		if x > maxV {
			maxV = x
		}
	}
	// uint64 subtraction is exact for maxV >= minV even when the
	// signed difference overflows.
	forWidth := deltaWidth(uint64(maxV) - uint64(minV))
	rleSize := 4 + runs*12
	forSize := 9 + n*forWidth
	rawSize := n * width
	if rleSize < forSize && rleSize < rawSize {
		return encodeRLE(v, runs), EncRLE
	}
	if forSize < rawSize {
		return encodeFOR(v, minV, forWidth), EncFOR
	}
	return nil, EncRaw
}

// deltaWidth returns the narrowest byte width holding values in
// [0, r].
func deltaWidth(r uint64) int {
	switch {
	case r == 0:
		return 0
	case r <= math.MaxUint8:
		return 1
	case r <= math.MaxUint16:
		return 2
	case r <= math.MaxUint32:
		return 4
	}
	return 8
}

// RLE payload: uint32 run count, then per run int64 value + uint32
// run length.
func encodeRLE(v *vector.Vector, runs int) []byte {
	out := make([]byte, 0, 4+runs*12)
	out = binary.LittleEndian.AppendUint32(out, uint32(runs))
	n := v.Len()
	cur := intAt(v, 0)
	length := 1
	flush := func() {
		out = binary.LittleEndian.AppendUint64(out, uint64(cur))
		out = binary.LittleEndian.AppendUint32(out, uint32(length))
	}
	for i := 1; i < n; i++ {
		x := intAt(v, i)
		if x == cur {
			length++
			continue
		}
		flush()
		cur, length = x, 1
	}
	flush()
	return out
}

func decodeRLE(typ vector.Type, rows int, payload []byte, dst *vector.Vector) (*vector.Vector, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("rle payload too short (%d bytes)", len(payload))
	}
	runs := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+runs*12 {
		return nil, fmt.Errorf("rle payload %d bytes for %d runs", len(payload), runs)
	}
	out := intSink(dst, typ, rows)
	total := 0
	off := 4
	for r := 0; r < runs; r++ {
		val := int64(binary.LittleEndian.Uint64(payload[off:]))
		length := int(binary.LittleEndian.Uint32(payload[off+8:]))
		off += 12
		if length <= 0 || total+length > rows {
			return nil, fmt.Errorf("rle run %d: length %d exceeds %d rows", r, length, rows)
		}
		out.fill(total, total+length, val)
		total += length
	}
	if total != rows {
		return nil, fmt.Errorf("rle runs cover %d of %d rows", total, rows)
	}
	return out.vector(), nil
}

// FOR payload: int64 base, uint8 delta width, then rows×width delta
// bytes (width 0 means every value equals the base).
func encodeFOR(v *vector.Vector, base int64, width int) []byte {
	n := v.Len()
	out := make([]byte, 0, 9+n*width)
	out = binary.LittleEndian.AppendUint64(out, uint64(base))
	out = append(out, byte(width))
	for i := 0; i < n; i++ {
		d := uint64(intAt(v, i)) - uint64(base)
		switch width {
		case 0:
		case 1:
			out = append(out, byte(d))
		case 2:
			out = binary.LittleEndian.AppendUint16(out, uint16(d))
		case 4:
			out = binary.LittleEndian.AppendUint32(out, uint32(d))
		default:
			out = binary.LittleEndian.AppendUint64(out, d)
		}
	}
	return out
}

func decodeFOR(typ vector.Type, rows int, payload []byte, dst *vector.Vector) (*vector.Vector, error) {
	if len(payload) < 9 {
		return nil, fmt.Errorf("for payload too short (%d bytes)", len(payload))
	}
	base := int64(binary.LittleEndian.Uint64(payload))
	width := int(payload[8])
	switch width {
	case 0, 1, 2, 4, 8:
	default:
		return nil, fmt.Errorf("for delta width %d invalid", width)
	}
	if len(payload) != 9+rows*width {
		return nil, fmt.Errorf("for payload %d bytes for %d rows of width %d", len(payload), rows, width)
	}
	out := intSink(dst, typ, rows)
	data := payload[9:]
	switch width {
	case 0:
		out.fill(0, rows, base)
	case 1:
		for i := 0; i < rows; i++ {
			out.set(i, int64(uint64(base)+uint64(data[i])))
		}
	case 2:
		for i := 0; i < rows; i++ {
			out.set(i, int64(uint64(base)+uint64(binary.LittleEndian.Uint16(data[2*i:]))))
		}
	case 4:
		for i := 0; i < rows; i++ {
			out.set(i, int64(uint64(base)+uint64(binary.LittleEndian.Uint32(data[4*i:]))))
		}
	default:
		for i := 0; i < rows; i++ {
			out.set(i, int64(uint64(base)+binary.LittleEndian.Uint64(data[8*i:])))
		}
	}
	return out.vector(), nil
}

// intDst is a pre-sized typed output buffer for the integer decoders,
// reusing the recycled vector's backing array when one is supplied.
type intDst struct {
	i32 []int32
	i64 []int64
}

// intSink prepares a length-rows output for typ, reusing dst's
// payload capacity when it matches.
func intSink(dst *vector.Vector, typ vector.Type, rows int) intDst {
	if typ == vector.Int32 {
		var buf []int32
		if dst != nil && dst.Type() == vector.Int32 && cap(dst.Int32s()) >= rows {
			buf = dst.Int32s()[:rows]
		} else {
			buf = make([]int32, rows)
		}
		return intDst{i32: buf}
	}
	var buf []int64
	if dst != nil && dst.Type() == vector.Int64 && cap(dst.Int64s()) >= rows {
		buf = dst.Int64s()[:rows]
	} else {
		buf = make([]int64, rows)
	}
	return intDst{i64: buf}
}

func (d intDst) set(i int, x int64) {
	if d.i32 != nil {
		d.i32[i] = int32(x)
		return
	}
	d.i64[i] = x
}

func (d intDst) fill(from, to int, x int64) {
	if d.i32 != nil {
		x32 := int32(x)
		for i := from; i < to; i++ {
			d.i32[i] = x32
		}
		return
	}
	for i := from; i < to; i++ {
		d.i64[i] = x
	}
}

func (d intDst) vector() *vector.Vector {
	if d.i32 != nil {
		return vector.FromInt32s(d.i32)
	}
	return vector.FromInt64s(d.i64)
}

// dictMaxEntries bounds dictionary size; columns with more distinct
// values than this stay raw.
const dictMaxEntries = 1 << 16

// Dict payload: uint32 entry count, entries as uint32 length + bytes,
// uint8 code width (1 or 2), then rows×width codes.
func encodeDict(v *vector.Vector) []byte {
	n := v.Len()
	idx := make(map[string]int)
	var entries []string
	codes := make([]int, n)
	for i, s := range v.Strings() {
		id, ok := idx[s]
		if !ok {
			if len(entries) >= dictMaxEntries {
				return nil
			}
			id = len(entries)
			idx[s] = id
			entries = append(entries, s)
		}
		codes[i] = id
	}
	codeWidth := 1
	if len(entries) > 1<<8 {
		codeWidth = 2
	}
	size := 4
	for _, e := range entries {
		size += 4 + len(e)
	}
	size += 1 + n*codeWidth
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(entries)))
	for _, e := range entries {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(e)))
		out = append(out, e...)
	}
	out = append(out, byte(codeWidth))
	for _, c := range codes {
		if codeWidth == 1 {
			out = append(out, byte(c))
		} else {
			out = binary.LittleEndian.AppendUint16(out, uint16(c))
		}
	}
	return out
}

func decodeDict(rows int, payload []byte, dst *vector.Vector) (*vector.Vector, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("dict payload too short (%d bytes)", len(payload))
	}
	entries := int(binary.LittleEndian.Uint32(payload))
	if entries <= 0 || entries > dictMaxEntries {
		return nil, fmt.Errorf("dict entry count %d invalid", entries)
	}
	off := 4
	dict := make([]string, entries)
	for e := range dict {
		if off+4 > len(payload) {
			return nil, fmt.Errorf("dict truncated at entry %d", e)
		}
		l := int(binary.LittleEndian.Uint32(payload[off:]))
		off += 4
		if l < 0 || off+l > len(payload) {
			return nil, fmt.Errorf("dict truncated at entry %d", e)
		}
		dict[e] = string(payload[off : off+l])
		off += l
	}
	if off >= len(payload) {
		return nil, fmt.Errorf("dict payload missing code width")
	}
	codeWidth := int(payload[off])
	off++
	if codeWidth != 1 && codeWidth != 2 {
		return nil, fmt.Errorf("dict code width %d invalid", codeWidth)
	}
	if len(payload)-off != rows*codeWidth {
		return nil, fmt.Errorf("dict codes %d bytes for %d rows of width %d", len(payload)-off, rows, codeWidth)
	}
	var buf []string
	if dst != nil && dst.Type() == vector.String && cap(dst.Strings()) >= rows {
		buf = dst.Strings()[:rows]
	} else {
		buf = make([]string, rows)
	}
	for i := 0; i < rows; i++ {
		var c int
		if codeWidth == 1 {
			c = int(payload[off+i])
		} else {
			c = int(binary.LittleEndian.Uint16(payload[off+2*i:]))
		}
		if c >= entries {
			return nil, fmt.Errorf("dict code %d out of range (%d entries)", c, entries)
		}
		buf[i] = dict[c]
	}
	return vector.FromStrings(buf), nil
}

// Decode materializes the sealed column. Raw columns return their
// cached vector zero-copy (decoding it from the disk payload at most
// once). Compressed columns decode into dst's backing arrays when it
// is non-nil and type-compatible — the prefetching scan passes
// recycled buffers here — and into fresh storage otherwise; either
// way the result is a new Vector header, so callers that recycle must
// track the returned vector (see ColumnStore.SegmentInto).
func (c *SealedColumn) Decode(dst *vector.Vector) (*vector.Vector, error) {
	switch c.Enc {
	case EncRaw:
		return c.rawVec()
	case EncRLE:
		return decodeRLE(c.Typ, c.Rows, c.payload, dst)
	case EncFOR:
		return decodeFOR(c.Typ, c.Rows, c.payload, dst)
	case EncDict:
		if c.Typ != vector.String {
			return nil, fmt.Errorf("dict encoding on %s column", c.Typ)
		}
		return decodeDict(c.Rows, c.payload, dst)
	}
	return nil, fmt.Errorf("unknown encoding %v", c.Enc)
}

// rawVec returns the raw vector, decoding the disk payload exactly
// once; concurrent scans share the result.
func (c *SealedColumn) rawVec() (*vector.Vector, error) {
	c.once.Do(func() {
		if c.vec != nil {
			return
		}
		v, err := decodeColumn(c.Typ, c.Rows, c.payload)
		if err != nil {
			c.lazyErr = err
			return
		}
		c.vec = v
	})
	return c.vec, c.lazyErr
}

// diskPayload returns the bytes persisted for this column: the
// compressed payload, or the raw storage encoding of the vector.
func (c *SealedColumn) diskPayload() ([]byte, error) {
	if c.payload != nil {
		return c.payload, nil
	}
	return encodeColumn(c.vec)
}
