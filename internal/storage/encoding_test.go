package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"vexdb/internal/vector"
)

// fullSegmentInts builds a store with one sealed Int64 segment from
// gen(i) plus a short mutable tail row.
func sealedIntStore(t *testing.T, gen func(i int) int64) *ColumnStore {
	t.Helper()
	s := NewColumnStore([]vector.Type{vector.Int64})
	vals := make([]int64, SegmentRows)
	for i := range vals {
		vals[i] = gen(i)
	}
	if err := s.AppendChunk(vector.NewChunk(vector.FromInt64s(vals))); err != nil {
		t.Fatal(err)
	}
	return s
}

func sealedColumnOf(t *testing.T, s *ColumnStore, seg, col int) *SealedColumn {
	t.Helper()
	if !s.SegmentIsSealed(seg) {
		t.Fatalf("segment %d not sealed", seg)
	}
	return s.Snapshot().v.segs[seg].sealed[col]
}

func TestSealPicksRLEForRuns(t *testing.T) {
	s := sealedIntStore(t, func(i int) int64 { return int64(i / 512) }) // 4 runs
	sc := sealedColumnOf(t, s, 0, 0)
	if sc.Enc != EncRLE {
		t.Fatalf("enc = %s, want rle", sc.Enc)
	}
	if sc.CompressedBytes() >= sc.LogicalBytes() {
		t.Fatalf("rle not smaller: %d vs %d", sc.CompressedBytes(), sc.LogicalBytes())
	}
	assertDecodes(t, sc, func(i int) vector.Value { return vector.NewInt64(int64(i / 512)) })
}

func TestSealPicksFORForNarrowRange(t *testing.T) {
	s := sealedIntStore(t, func(i int) int64 { return 1_000_000 + int64(i%200) })
	sc := sealedColumnOf(t, s, 0, 0)
	if sc.Enc != EncFOR {
		t.Fatalf("enc = %s, want for", sc.Enc)
	}
	assertDecodes(t, sc, func(i int) vector.Value { return vector.NewInt64(1_000_000 + int64(i%200)) })
}

func TestSealKeepsRawForWideRandomInts(t *testing.T) {
	s := sealedIntStore(t, func(i int) int64 { return int64(uint64(i) * 0x9E3779B97F4A7C15) })
	sc := sealedColumnOf(t, s, 0, 0)
	if sc.Enc != EncRaw {
		t.Fatalf("enc = %s, want raw", sc.Enc)
	}
}

func TestSealPicksDictForLowCardinalityStrings(t *testing.T) {
	s := NewColumnStore([]vector.Type{vector.String})
	vals := make([]string, SegmentRows)
	for i := range vals {
		vals[i] = fmt.Sprintf("city-%02d", i%16)
	}
	if err := s.AppendChunk(vector.NewChunk(vector.FromStrings(vals))); err != nil {
		t.Fatal(err)
	}
	sc := sealedColumnOf(t, s, 0, 0)
	if sc.Enc != EncDict {
		t.Fatalf("enc = %s, want dict", sc.Enc)
	}
	if sc.CompressedBytes() >= sc.LogicalBytes() {
		t.Fatalf("dict not smaller: %d vs %d", sc.CompressedBytes(), sc.LogicalBytes())
	}
	assertDecodes(t, sc, func(i int) vector.Value {
		return vector.NewString(fmt.Sprintf("city-%02d", i%16))
	})
}

func TestSealNullsStayRaw(t *testing.T) {
	s := NewColumnStore([]vector.Type{vector.Int64})
	v := vector.New(vector.Int64, SegmentRows)
	for i := 0; i < SegmentRows; i++ {
		if i%100 == 0 {
			v.AppendValue(vector.Null())
			continue
		}
		v.AppendValue(vector.NewInt64(7)) // would be RLE without nulls
	}
	if err := s.AppendChunk(vector.NewChunk(v)); err != nil {
		t.Fatal(err)
	}
	sc := sealedColumnOf(t, s, 0, 0)
	if sc.Enc != EncRaw {
		t.Fatalf("enc = %s, want raw for nullable column", sc.Enc)
	}
	z := sc.Zone
	if z.NullCount != SegmentRows/100+1 {
		t.Fatalf("null count = %d", z.NullCount)
	}
	if !z.HasMinMax() || z.Min.Int64() != 7 || z.Max.Int64() != 7 {
		t.Fatalf("zone = %+v", z)
	}
}

// assertDecodes checks Decode both into a fresh vector and into a
// recycled buffer of the right type.
func assertDecodes(t *testing.T, sc *SealedColumn, want func(i int) vector.Value) {
	t.Helper()
	fresh, err := sc.Decode(nil)
	if err != nil {
		t.Fatal(err)
	}
	reused := vector.New(sc.Typ, 1)
	reused.AppendValue(want(0)) // dirty it
	got, err := sc.Decode(reused)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != sc.Rows || got.Len() != sc.Rows {
		t.Fatalf("lens %d/%d, want %d", fresh.Len(), got.Len(), sc.Rows)
	}
	for i := 0; i < sc.Rows; i++ {
		w := want(i)
		if !fresh.Get(i).Equal(w) || !got.Get(i).Equal(w) {
			t.Fatalf("row %d: fresh %v reused %v want %v", i, fresh.Get(i), got.Get(i), w)
		}
	}
}

func TestZoneMapMinMax(t *testing.T) {
	v := vector.FromInt64s([]int64{5, -3, 12, 7})
	z := computeZone(v)
	if z.Min.Int64() != -3 || z.Max.Int64() != 12 || z.NullCount != 0 || z.Rows != 4 {
		t.Fatalf("zone = %+v", z)
	}
}

func TestZoneMapAllNull(t *testing.T) {
	v := vector.New(vector.Float64, 3)
	for i := 0; i < 3; i++ {
		v.AppendValue(vector.Null())
	}
	z := computeZone(v)
	if z.HasMinMax() || z.NullCount != 3 {
		t.Fatalf("zone = %+v", z)
	}
}

func TestZoneMapExcludesNaN(t *testing.T) {
	v := vector.FromFloat64s([]float64{1, math.NaN(), 3})
	z := computeZone(v)
	if !z.HasMinMax() || z.Min.Float64() != 1 || z.Max.Float64() != 3 {
		t.Fatalf("zone = %+v", z)
	}
	all := computeZone(vector.FromFloat64s([]float64{math.NaN()}))
	if all.HasMinMax() {
		t.Fatalf("all-NaN column must carry no bounds: %+v", all)
	}
}

func TestZoneMapDropsLongStrings(t *testing.T) {
	long := string(make([]byte, zoneMaxString+1))
	z := computeZone(vector.FromStrings([]string{"a", long}))
	if z.HasMinMax() {
		t.Fatalf("long-string zone must be dropped: %+v", z)
	}
}

func TestSetCompressionDisablesSealing(t *testing.T) {
	s := NewColumnStore([]vector.Type{vector.Int64})
	s.SetCompression(false)
	vals := make([]int64, SegmentRows)
	if err := s.AppendChunk(vector.NewChunk(vector.FromInt64s(vals))); err != nil {
		t.Fatal(err)
	}
	sc := sealedColumnOf(t, s, 0, 0)
	if sc.Enc != EncRaw {
		t.Fatalf("enc = %s", sc.Enc)
	}
	if z := s.Zones(0); z != nil && z[0].Rows != 0 {
		t.Fatalf("uncompressed store must carry no zone stats: %+v", z[0])
	}
}

func TestStatsCompressionRatio(t *testing.T) {
	s := sealedIntStore(t, func(i int) int64 { return int64(i / 256) }) // 8 runs

	st := s.Stats()
	if st.SealedSegments != 1 || st.Segments != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CompressedBytes >= st.LogicalBytes {
		t.Fatalf("no compression win: %d vs %d", st.CompressedBytes, st.LogicalBytes)
	}
	if st.EncodedColumns["rle"] != 1 {
		t.Fatalf("encodings = %v", st.EncodedColumns)
	}
}

func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	cases := []struct {
		name string
		sc   *SealedColumn
	}{
		{"rle-short", loadedColumn(EncRLE, vector.Int64, 10, ZoneMap{}, nil, []byte{1, 2})},
		{"rle-run-overflow", loadedColumn(EncRLE, vector.Int64, 2, ZoneMap{}, nil, func() []byte {
			p := binary.LittleEndian.AppendUint32(nil, 1)
			p = binary.LittleEndian.AppendUint64(p, 9)
			return binary.LittleEndian.AppendUint32(p, 5) // run of 5 into 2 rows
		}())},
		{"for-bad-width", loadedColumn(EncFOR, vector.Int64, 1, ZoneMap{}, nil, append(make([]byte, 8), 3, 0))},
		{"dict-code-range", loadedColumn(EncDict, vector.String, 1, ZoneMap{}, nil, func() []byte {
			p := binary.LittleEndian.AppendUint32(nil, 1) // 1 entry
			p = binary.LittleEndian.AppendUint32(p, 1)    // len 1
			p = append(p, 'x', 1, 9)                      // width 1, code 9
			return p
		}())},
	}
	for _, c := range cases {
		if _, err := c.sc.Decode(nil); err == nil {
			t.Errorf("%s: corrupt payload decoded without error", c.name)
		}
	}
}

func TestFORHandlesExtremeRange(t *testing.T) {
	// min = MinInt64, max = MaxInt64: the unsigned range wraps; the
	// encoder must fall back to raw (width 8 is not smaller).
	s := NewColumnStore([]vector.Type{vector.Int64})
	vals := make([]int64, SegmentRows)
	for i := range vals {
		if i%2 == 0 {
			vals[i] = math.MinInt64 + int64(i)
		} else {
			vals[i] = math.MaxInt64 - int64(i)
		}
	}
	if err := s.AppendChunk(vector.NewChunk(vector.FromInt64s(vals))); err != nil {
		t.Fatal(err)
	}
	sc := sealedColumnOf(t, s, 0, 0)
	v, err := sc.Decode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if v.Int64s()[i] != vals[i] {
			t.Fatalf("row %d: %d != %d", i, v.Int64s()[i], vals[i])
		}
	}
}

func TestInt32FORRoundTrip(t *testing.T) {
	s := NewColumnStore([]vector.Type{vector.Int32})
	vals := make([]int32, SegmentRows)
	for i := range vals {
		vals[i] = -50 + int32(i%100)
	}
	if err := s.AppendChunk(vector.NewChunk(vector.FromInt32s(vals))); err != nil {
		t.Fatal(err)
	}
	sc := sealedColumnOf(t, s, 0, 0)
	if sc.Enc != EncFOR {
		t.Fatalf("enc = %s, want for", sc.Enc)
	}
	v, err := sc.Decode(nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if v.Int32s()[i] != vals[i] {
			t.Fatalf("row %d: %d != %d", i, v.Int32s()[i], vals[i])
		}
	}
	var buf bytes.Buffer
	if err := WriteTable(&buf, []string{"x"}, s); err != nil {
		t.Fatal(err)
	}
	_, got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gv := mustColumn(t, got, 0)
	for i := range vals {
		if gv.Int32s()[i] != vals[i] {
			t.Fatalf("disk row %d: %d != %d", i, gv.Int32s()[i], vals[i])
		}
	}
}
