package storage

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"vexdb/internal/vector"
)

// TestHLLAccuracy pins the sketch error to well inside the planner's
// needs: p=8 gives ~6.5% standard error, so 3 sigma ≈ 20%.
func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 100000} {
		h := NewHLL()
		for i := 0; i < n; i++ {
			h.AddHash(hllMix(uint64(i)))
		}
		est := h.Estimate()
		lo, hi := int64(float64(n)*0.8), int64(float64(n)*1.2)
		if est < lo || est > hi {
			t.Errorf("n=%d: estimate %d outside [%d,%d]", n, est, lo, hi)
		}
	}
	// Duplicates must not inflate the estimate.
	h := NewHLL()
	for i := 0; i < 100000; i++ {
		h.AddHash(hllMix(uint64(i % 50)))
	}
	if est := h.Estimate(); est < 40 || est > 60 {
		t.Errorf("50 distinct over 100k rows: estimate %d", est)
	}
}

func TestHLLMergeDisjointSets(t *testing.T) {
	a, b := NewHLL(), NewHLL()
	for i := 0; i < 5000; i++ {
		a.AddHash(hllMix(uint64(i)))
		b.AddHash(hllMix(uint64(i + 5000)))
	}
	a.Merge(b)
	if est := a.Estimate(); est < 8000 || est > 12000 {
		t.Errorf("merged estimate %d, want ~10000", est)
	}
	// Merging overlapping sketches must not double count.
	c, d := NewHLL(), NewHLL()
	for i := 0; i < 5000; i++ {
		c.AddHash(hllMix(uint64(i)))
		d.AddHash(hllMix(uint64(i)))
	}
	c.Merge(d)
	if est := c.Estimate(); est < 4000 || est > 6000 {
		t.Errorf("self-merge estimate %d, want ~5000", est)
	}
	c.Merge(nil) // nil merge is a no-op
	if est := c.Estimate(); est < 4000 || est > 6000 {
		t.Errorf("nil-merge estimate %d, want ~5000", est)
	}
}

// eventsStore builds a store with nseg full segments: a skewed int64
// key with ndv distinct values, a float val (every 7th NULL, every
// 13th NaN), and a low-cardinality string tag.
func eventsStore(t *testing.T, nseg, ndv int) *ColumnStore {
	t.Helper()
	s := NewColumnStore([]vector.Type{vector.Int64, vector.Float64, vector.String})
	n := SegmentRows * nseg
	keys := vector.New(vector.Int64, n)
	vals := vector.New(vector.Float64, n)
	tags := vector.New(vector.String, n)
	for i := 0; i < n; i++ {
		keys.AppendValue(vector.NewInt64(int64(i % ndv)))
		switch {
		case i%7 == 0:
			vals.AppendValue(vector.Null())
		case i%13 == 0:
			vals.AppendValue(vector.NewFloat64(math.NaN()))
		default:
			vals.AppendValue(vector.NewFloat64(float64(i % 500)))
		}
		tags.AppendValue(vector.NewString(fmt.Sprintf("tag-%d", i%30)))
	}
	if err := s.AppendChunk(vector.NewChunk(keys, vals, tags)); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestColumnStatisticsRollup(t *testing.T) {
	const nseg, ndv = 4, 300
	s := eventsStore(t, nseg, ndv)
	cs := s.ColumnStatistics()
	if len(cs) != 3 {
		t.Fatalf("got %d column stats", len(cs))
	}
	n := SegmentRows * nseg

	key := cs[0]
	if key.StatsRows != n || key.SketchRows != n {
		t.Fatalf("key coverage: stats=%d sketch=%d want %d", key.StatsRows, key.SketchRows, n)
	}
	if key.NullCount != 0 {
		t.Fatalf("key nulls = %d", key.NullCount)
	}
	if key.Distinct < int64(float64(ndv)*0.8) || key.Distinct > int64(float64(ndv)*1.2) {
		t.Fatalf("key distinct = %d, want ~%d", key.Distinct, ndv)
	}
	if !key.HasMinMax || key.Min.Int64() != 0 || key.Max.Int64() != int64(ndv-1) {
		t.Fatalf("key bounds = %v..%v (has=%v)", key.Min, key.Max, key.HasMinMax)
	}

	val := cs[1]
	wantNulls := 0
	for i := 0; i < n; i++ {
		if i%7 == 0 {
			wantNulls++
		}
	}
	if val.NullCount != wantNulls {
		t.Fatalf("val nulls = %d, want %d", val.NullCount, wantNulls)
	}
	// NaNs are excluded from bounds but counted by the sketch.
	if !val.HasMinMax || val.Min.Float64() != 0 || val.Max.Float64() != 499 {
		t.Fatalf("val bounds = %v..%v", val.Min, val.Max)
	}

	tag := cs[2]
	if tag.Distinct < 25 || tag.Distinct > 35 {
		t.Fatalf("tag distinct = %d, want ~30", tag.Distinct)
	}
	if tag.Min.Str() != "tag-0" || tag.Max.Str() != "tag-9" {
		t.Fatalf("tag bounds = %v..%v", tag.Min, tag.Max)
	}
}

// The mutable tail contributes on-the-fly statistics, so coverage
// reaches the full table row count (freshly loaded small tables no
// longer fall back to sqrt(rows) planner defaults) with bounds and
// NDV spanning sealed segments and tail alike.
func TestColumnStatisticsPartialCoverage(t *testing.T) {
	s := NewColumnStore([]vector.Type{vector.Int64})
	n := SegmentRows + 100
	v := vector.New(vector.Int64, n)
	for i := 0; i < n; i++ {
		v.AppendValue(vector.NewInt64(int64(i)))
	}
	if err := s.AppendChunk(vector.NewChunk(v)); err != nil {
		t.Fatal(err)
	}
	cs := s.ColumnStatistics()
	if cs[0].StatsRows != n {
		t.Fatalf("StatsRows = %d, want %d (tail covered)", cs[0].StatsRows, n)
	}
	if cs[0].SketchRows != n {
		t.Fatalf("SketchRows = %d, want %d", cs[0].SketchRows, n)
	}
	if !cs[0].HasMinMax || cs[0].Min.Int64() != 0 || cs[0].Max.Int64() != int64(n-1) {
		t.Fatalf("bounds = %v..%v, want 0..%d", cs[0].Min, cs[0].Max, n-1)
	}
	// All values distinct: the merged HLL estimate must land near n.
	if cs[0].Distinct < int64(n)*9/10 || cs[0].Distinct > int64(n)*11/10 {
		t.Fatalf("Distinct = %d, want ~%d", cs[0].Distinct, n)
	}
	counts := s.SegmentRowCounts()
	if len(counts) != 2 || counts[0] != SegmentRows || counts[1] != 100 {
		t.Fatalf("SegmentRowCounts = %v", counts)
	}
	// Compression off: sealed segments carry no statistics either.
	s2 := NewColumnStore([]vector.Type{vector.Int64})
	s2.SetCompression(false)
	if err := s2.AppendChunk(vector.NewChunk(v)); err != nil {
		t.Fatal(err)
	}
	cs2 := s2.ColumnStatistics()
	if cs2[0].StatsRows != 0 || cs2[0].Distinct != 0 {
		t.Fatalf("compression off: StatsRows=%d Distinct=%d, want 0/0", cs2[0].StatsRows, cs2[0].Distinct)
	}
}

// Sketches must survive the disk round trip (version 3) and V2 files
// must still load, just without sketches.
func TestSketchPersistenceV3(t *testing.T) {
	const nseg, ndv = 3, 200
	s := eventsStore(t, nseg, ndv)
	want := s.ColumnStatistics()

	var buf bytes.Buffer
	if err := WriteTable(&buf, []string{"key", "val", "tag"}, s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes()[:8], []byte("VXTB0003")) {
		t.Fatalf("magic = %q", buf.Bytes()[:8])
	}
	_, got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gs := got.ColumnStatistics()
	for c := range want {
		if gs[c].Distinct != want[c].Distinct {
			t.Errorf("col %d: loaded distinct %d != sealed %d", c, gs[c].Distinct, want[c].Distinct)
		}
		if gs[c].NullCount != want[c].NullCount || gs[c].SketchRows != want[c].SketchRows {
			t.Errorf("col %d: nulls/sketchrows changed across round trip", c)
		}
	}
}

func TestV2FileLoadsWithoutSketch(t *testing.T) {
	s := eventsStore(t, 2, 100)
	var buf bytes.Buffer
	if err := WriteTable(&buf, []string{"key", "val", "tag"}, s); err != nil {
		t.Fatal(err)
	}
	// A V3 body parsed as V2 would misalign, so build a real V2 image:
	// write with sketches stripped, then patch the magic.
	s2 := eventsStore(t, 2, 100)
	stripSketches(s2)
	buf.Reset()
	if err := WriteTable(&buf, []string{"key", "val", "tag"}, s2); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	copy(b, []byte("VXTB0002"))
	_, got, err := ReadTable(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("v2 file rejected: %v", err)
	}
	if got.NumRows() != SegmentRows*2 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	cs := got.ColumnStatistics()
	if cs[0].Distinct != 0 || cs[0].SketchRows != 0 {
		t.Fatalf("v2 load: Distinct=%d SketchRows=%d, want 0/0", cs[0].Distinct, cs[0].SketchRows)
	}
	if !cs[0].HasMinMax || cs[0].NullCount != 0 {
		t.Fatal("v2 load lost zone-map statistics")
	}
}

func stripSketches(s *ColumnStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-publish so the stats rollup cached on the old version is
	// dropped along with the sketches.
	old := s.cur.Load()
	for _, seg := range old.segs {
		for _, sc := range seg.sealed {
			sc.Sketch = nil
		}
	}
	s.cur.Store(&tableVersion{segs: old.segs, rows: old.rows})
}
