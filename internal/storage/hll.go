// HyperLogLog distinct-count sketches for sealed segment columns.
// One sketch is computed per column at segment seal time (alongside
// the zone map) and merged across segments on demand, giving the
// planner table-level NDV estimates without ever rescanning data.
//
// The sketch uses p=8 (256 single-byte registers, ~6.5% standard
// error): 256 bytes per sealed column is noise next to the segment
// payload, and join-ordering decisions only need the right order of
// magnitude. Small cardinalities use the linear-counting correction,
// so NDV estimates for dimension-sized columns are near exact.
package storage

import (
	"math"

	"vexdb/internal/vector"
)

// hllP is the register-index bit width; hllM = 2^hllP registers.
const (
	hllP = 8
	hllM = 1 << hllP
)

// HLL is a HyperLogLog sketch. The zero value is not usable; call
// NewHLL. Sketches are written single-threaded at seal time and
// read-only afterwards.
type HLL struct {
	reg [hllM]byte
}

// NewHLL returns an empty sketch.
func NewHLL() *HLL { return &HLL{} }

// AddHash folds one 64-bit hashed value into the sketch. Callers hash
// their values first (hllInt64 / hllFloat64 / hllBytes) so that the
// register distribution is uniform regardless of the input domain.
func (h *HLL) AddHash(x uint64) {
	idx := x >> (64 - hllP)
	rest := x<<hllP | 1<<(hllP-1) // low bits; sentinel keeps rank ≤ 64-p+1
	rank := byte(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.reg[idx] {
		h.reg[idx] = rank
	}
}

// Merge folds other into h (register-wise max). A nil other is a
// no-op, so partially sketched tables (mixed-version segments) merge
// into a best-effort estimate.
func (h *HLL) Merge(other *HLL) {
	if other == nil {
		return
	}
	for i, r := range other.reg {
		if r > h.reg[i] {
			h.reg[i] = r
		}
	}
}

// Empty reports whether the sketch has seen no values.
func (h *HLL) Empty() bool {
	if h == nil {
		return true
	}
	for _, r := range h.reg {
		if r != 0 {
			return false
		}
	}
	return true
}

// hllAlpha is the bias-correction constant for m = 256.
const hllAlpha = 0.7213 / (1 + 1.079/hllM)

// Estimate returns the sketch's cardinality estimate, with the
// standard linear-counting correction for small ranges (exact-ish for
// dimension tables) and clamped to at least 1 for non-empty sketches.
func (h *HLL) Estimate() int64 {
	if h == nil {
		return 0
	}
	sum := 0.0
	zeros := 0
	for _, r := range h.reg {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	e := hllAlpha * hllM * hllM / sum
	if e <= 2.5*hllM && zeros > 0 {
		e = hllM * math.Log(float64(hllM)/float64(zeros))
	}
	if e < 1 && zeros < hllM {
		return 1
	}
	return int64(e + 0.5)
}

// Registers exposes the raw register array for persistence.
func (h *HLL) Registers() []byte { return h.reg[:] }

// hllFromRegisters reconstructs a sketch from persisted registers.
// Returns nil when the register count does not match (corrupt or
// future-format data; the caller treats it as "no sketch").
func hllFromRegisters(b []byte) *HLL {
	if len(b) != hllM {
		return nil
	}
	h := &HLL{}
	copy(h.reg[:], b)
	return h
}

// hllMix is a splitmix64-style finalizer: sealed integer and float
// columns hash each value through it so that sequential IDs (the
// common key shape) spread uniformly over the registers.
func hllMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hllBytes is FNV-1a 64 for string and blob values, finalized through
// hllMix: FNV's high bits (the sketch's register index) avalanche
// poorly on short inputs, so short similar strings would otherwise
// cluster into a handful of registers.
func hllBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return hllMix(h)
}

// hllString avoids the []byte conversion allocation on the seal path.
func hllString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return hllMix(h)
}

// computeSketch builds the distinct-count sketch for one column at
// seal time, skipping NULLs (the zone map already counts those).
// Float64 hashes the IEEE bit pattern, so -0.0 and 0.0 count as two
// values and every NaN payload as one — consistent with the engine's
// total order over floats. Bool columns skip the sketch entirely
// (NDV ≤ 2 is better read off the zone map).
func computeSketch(v *vector.Vector) *HLL {
	n := v.Len()
	if n == 0 || v.Type() == vector.Bool {
		return nil
	}
	h := NewHLL()
	switch v.Type() {
	case vector.Int32:
		for i, x := range v.Int32s() {
			if !v.IsNull(i) {
				h.AddHash(hllMix(uint64(int64(x))))
			}
		}
	case vector.Int64:
		for i, x := range v.Int64s() {
			if !v.IsNull(i) {
				h.AddHash(hllMix(uint64(x)))
			}
		}
	case vector.Float64:
		for i, x := range v.Float64s() {
			if !v.IsNull(i) {
				h.AddHash(hllMix(math.Float64bits(x)))
			}
		}
	case vector.String:
		for i, s := range v.Strings() {
			if !v.IsNull(i) {
				h.AddHash(hllString(s))
			}
		}
	case vector.Blob:
		for i, b := range v.Blobs() {
			if !v.IsNull(i) {
				h.AddHash(hllBytes(b))
			}
		}
	default:
		return nil
	}
	if h.Empty() { // all-NULL column
		return nil
	}
	return h
}
