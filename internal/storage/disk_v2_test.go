package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"vexdb/internal/vector"
)

var allTypes = []vector.Type{
	vector.Bool, vector.Int32, vector.Int64, vector.Float64, vector.String, vector.Blob,
}

func nonNullValueFor(t vector.Type) vector.Value {
	switch t {
	case vector.Bool:
		return vector.NewBool(true)
	case vector.Int32:
		return vector.NewInt32(-42)
	case vector.Int64:
		return vector.NewInt64(1 << 40)
	case vector.Float64:
		return vector.NewFloat64(-2.5)
	case vector.String:
		return vector.NewString("solo")
	case vector.Blob:
		return vector.NewBlob([]byte{1, 2, 3})
	}
	panic("unreachable")
}

// roundTrip writes the store and reads it back.
func roundTrip(t *testing.T, s *ColumnStore, names []string) *ColumnStore {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteTable(&buf, names, s); err != nil {
		t.Fatal(err)
	}
	gotNames, got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotNames) != len(names) {
		t.Fatalf("names = %v", gotNames)
	}
	return got
}

// Satellite: all-null, empty and single-row columns must round-trip
// for every column type.
func TestDiskRoundTripEdgeCasesAllTypes(t *testing.T) {
	for _, typ := range allTypes {
		t.Run(typ.String(), func(t *testing.T) {
			// Empty column.
			s := NewColumnStore([]vector.Type{typ})
			got := roundTrip(t, s, []string{"c"})
			if got.NumRows() != 0 {
				t.Fatalf("empty: rows = %d", got.NumRows())
			}
			if got.Types()[0] != typ {
				t.Fatalf("empty: type = %v", got.Types()[0])
			}

			// Single-row column.
			s = NewColumnStore([]vector.Type{typ})
			v := vector.New(typ, 1)
			v.AppendValue(nonNullValueFor(typ))
			if err := s.AppendChunk(vector.NewChunk(v)); err != nil {
				t.Fatal(err)
			}
			got = roundTrip(t, s, []string{"c"})
			if got.NumRows() != 1 {
				t.Fatalf("single: rows = %d", got.NumRows())
			}
			gv := mustColumn(t, got, 0)
			if typ == vector.Blob {
				if !bytes.Equal(gv.Get(0).Bytes(), nonNullValueFor(typ).Bytes()) {
					t.Fatalf("single: %v", gv.Get(0))
				}
			} else if !gv.Get(0).Equal(nonNullValueFor(typ)) {
				t.Fatalf("single: got %v want %v", gv.Get(0), nonNullValueFor(typ))
			}

			// All-null column spanning a sealed segment and a tail.
			s = NewColumnStore([]vector.Type{typ})
			n := SegmentRows + 3
			v = vector.New(typ, n)
			for i := 0; i < n; i++ {
				v.AppendValue(vector.Null())
			}
			if err := s.AppendChunk(vector.NewChunk(v)); err != nil {
				t.Fatal(err)
			}
			got = roundTrip(t, s, []string{"c"})
			if got.NumRows() != n {
				t.Fatalf("all-null: rows = %d", got.NumRows())
			}
			gv = mustColumn(t, got, 0)
			for i := 0; i < n; i++ {
				if !gv.IsNull(i) {
					t.Fatalf("all-null: row %d not null", i)
				}
			}
		})
	}
}

func TestDiskV2MultiSegmentRoundTrip(t *testing.T) {
	n := SegmentRows*2 + 100
	s := testStore(t, n)
	got := roundTrip(t, s, []string{"a", "b", "c"})
	if got.NumRows() != n || got.NumSegments() != 3 {
		t.Fatalf("rows=%d segs=%d", got.NumRows(), got.NumSegments())
	}
	// Loaded segments stay sealed (including the former tail) and
	// encoded until scanned.
	for i := 0; i < got.NumSegments(); i++ {
		if !got.SegmentIsSealed(i) {
			t.Fatalf("loaded segment %d not sealed", i)
		}
	}
	want := mustColumn(t, s, 0)
	have := mustColumn(t, got, 0)
	for i := 0; i < n; i++ {
		if want.Int64s()[i] != have.Int64s()[i] {
			t.Fatalf("row %d: %d != %d", i, want.Int64s()[i], have.Int64s()[i])
		}
	}
	// Zone maps survive the round trip (column 0 holds 0..n-1, so the
	// first segment spans exactly [0, SegmentRows)).
	z := got.Zones(0)
	if z == nil || !z[0].HasMinMax() || z[0].Min.Int64() != 0 || z[0].Max.Int64() != SegmentRows-1 {
		t.Fatalf("zone = %+v", z)
	}
}

func TestDiskV2AppendAfterLoad(t *testing.T) {
	s := testStore(t, SegmentRows+10)
	got := roundTrip(t, s, []string{"a", "b", "c"})
	if err := got.AppendRow([]vector.Value{
		vector.NewInt64(999), vector.NewFloat64(1), vector.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != SegmentRows+11 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	col := mustColumn(t, got, 0)
	if col.Int64s()[SegmentRows+10] != 999 {
		t.Fatal("appended row lost")
	}
}

// Satellite: the format bump accepts version-1 files and rejects
// unknown versions.
func TestDiskV1FileAccepted(t *testing.T) {
	// Hand-build a v1 file: magic, ncols, nrows, column meta, then one
	// raw payload + crc per column.
	cols := []*vector.Vector{
		vector.FromInt64s([]int64{1, 2, 3}),
		vector.FromStrings([]string{"a", "b", "c"}),
	}
	names := []string{"id", "s"}
	types := []vector.Type{vector.Int64, vector.String}
	var buf bytes.Buffer
	buf.Write([]byte("VXTB0001"))
	binary.Write(&buf, binary.LittleEndian, uint32(2))
	binary.Write(&buf, binary.LittleEndian, uint64(3))
	for i, name := range names {
		binary.Write(&buf, binary.LittleEndian, uint16(len(name)))
		buf.WriteString(name)
		buf.WriteByte(byte(types[i]))
	}
	for _, c := range cols {
		payload, err := EncodeColumn(c)
		if err != nil {
			t.Fatal(err)
		}
		binary.Write(&buf, binary.LittleEndian, uint64(len(payload)))
		buf.Write(payload)
		binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(payload))
	}

	gotNames, got, err := ReadTable(&buf)
	if err != nil {
		t.Fatalf("v1 file rejected: %v", err)
	}
	if gotNames[1] != "s" || got.NumRows() != 3 {
		t.Fatalf("names=%v rows=%d", gotNames, got.NumRows())
	}
	if mustColumn(t, got, 0).Int64s()[2] != 3 || mustColumn(t, got, 1).Strings()[0] != "a" {
		t.Fatal("v1 contents wrong")
	}
}

func TestDiskUnknownVersionRejected(t *testing.T) {
	for _, magic := range []string{"VXTB0004", "VXTB9999", "XXXXXXXX"} {
		payload := magic + strings.Repeat("\x00", 64)
		_, _, err := ReadTable(bytes.NewReader([]byte(payload)))
		if err == nil || !strings.Contains(err.Error(), "unsupported") {
			t.Fatalf("magic %q: err = %v, want unsupported-version error", magic, err)
		}
	}
}

// Satellite: decodeColumn must reject malformed null trailers and
// trailing garbage instead of best-effort decoding.
func TestDecodeColumnRejectsMalformedPayloads(t *testing.T) {
	int64Payload := func(vals []int64, trailer []byte) []byte {
		var p []byte
		for _, v := range vals {
			p = binary.LittleEndian.AppendUint64(p, uint64(v))
		}
		return append(p, trailer...)
	}
	cases := []struct {
		name    string
		typ     vector.Type
		n       int
		payload []byte
		wantSub string
	}{
		{"truncated-trailer", vector.Int64, 3, int64Payload([]int64{1, 2, 3}, []byte{0, 1}), "null trailer"},
		{"bad-trailer-byte", vector.Int64, 2, int64Payload([]int64{1, 2}, []byte{0, 7}), "null trailer byte"},
		{"bool-bad-byte", vector.Bool, 2, []byte{1, 3}, "bool payload byte"},
		{"string-trailing-garbage", vector.String, 1, append(binary.LittleEndian.AppendUint32(nil, 1), 'x', 0xEE), "trailing"},
		{"string-truncated", vector.String, 1, binary.LittleEndian.AppendUint32(nil, 10), "truncated"},
		{"blob-trailing-garbage", vector.Blob, 1, append(binary.LittleEndian.AppendUint32(nil, 0), 0xEE), "trailing"},
		{"short-fixed", vector.Int32, 3, make([]byte, 7), "truncated null trailer"},
	}
	for _, c := range cases {
		_, err := DecodeColumn(c.typ, c.n, c.payload)
		if err == nil {
			t.Errorf("%s: decoded without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: err %q does not mention %q", c.name, err, c.wantSub)
		}
	}
	// The valid shapes still decode.
	if _, err := DecodeColumn(vector.Int64, 2, int64Payload([]int64{1, 2}, nil)); err != nil {
		t.Errorf("plain payload rejected: %v", err)
	}
	if v, err := DecodeColumn(vector.Int64, 2, int64Payload([]int64{1, 2}, []byte{0, 1})); err != nil || !v.IsNull(1) {
		t.Errorf("valid trailer rejected: %v", err)
	}
}

// Acceptance: RLE/dict-friendly data persists measurably smaller than
// the same data written uncompressed.
func TestCompressedFileSmallerThanRaw(t *testing.T) {
	build := func(compress bool) *ColumnStore {
		s := NewColumnStore([]vector.Type{vector.Int64, vector.String})
		s.SetCompression(compress)
		n := SegmentRows * 4
		ids := make([]int64, n)
		cats := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = int64(i / 1000) // long runs
			cats[i] = fmt.Sprintf("category-%d", i%8)
		}
		if err := s.AppendChunk(vector.NewChunk(vector.FromInt64s(ids), vector.FromStrings(cats))); err != nil {
			t.Fatal(err)
		}
		return s
	}
	var raw, comp bytes.Buffer
	if err := WriteTable(&raw, []string{"id", "cat"}, build(false)); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable(&comp, []string{"id", "cat"}, build(true)); err != nil {
		t.Fatal(err)
	}
	if comp.Len() >= raw.Len()/2 {
		t.Fatalf("compressed file %d bytes, raw %d: want < half", comp.Len(), raw.Len())
	}
	// And the compressed file still round-trips faithfully.
	_, got, err := ReadTable(&comp)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != SegmentRows*4 {
		t.Fatalf("rows = %d", got.NumRows())
	}
	if c := mustColumn(t, got, 1); c.Strings()[9] != "category-1" {
		t.Fatalf("round trip content: %q", c.Strings()[9])
	}
}

// A v2 file whose zone bounds are typed unlike their column must be
// rejected at load: a mistyped bound would otherwise silently
// over-prune at scan time.
func TestDiskV2RejectsMistypedZoneBounds(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("VXTB0002"))
	binary.Write(&buf, binary.LittleEndian, uint32(1)) // ncols
	binary.Write(&buf, binary.LittleEndian, uint64(1)) // nrows
	binary.Write(&buf, binary.LittleEndian, uint16(1))
	buf.WriteString("a")
	buf.WriteByte(byte(vector.Int64))
	binary.Write(&buf, binary.LittleEndian, uint32(1)) // nsegs
	binary.Write(&buf, binary.LittleEndian, uint32(1)) // rows
	buf.WriteByte(byte(EncRaw))
	buf.WriteByte(1)                                   // flags: has min/max
	binary.Write(&buf, binary.LittleEndian, uint32(0)) // null count
	for i := 0; i < 2; i++ {                           // min and max typed String
		buf.WriteByte(byte(vector.String))
		binary.Write(&buf, binary.LittleEndian, uint32(1))
		buf.WriteString("x")
	}
	payload := binary.LittleEndian.AppendUint64(nil, 7)
	binary.Write(&buf, binary.LittleEndian, uint64(len(payload)))
	buf.Write(payload)
	binary.Write(&buf, binary.LittleEndian, crc32.ChecksumIEEE(payload))

	_, _, err := ReadTable(&buf)
	if err == nil || !strings.Contains(err.Error(), "zone bounds") {
		t.Fatalf("err = %v, want zone-bounds type error", err)
	}
}
