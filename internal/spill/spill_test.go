package spill

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"vexdb/internal/vector"
)

type countingRec struct{ wrote, read atomic.Int64 }

func (r *countingRec) SpillWrote(n int64) { r.wrote.Add(n) }
func (r *countingRec) SpillRead(n int64)  { r.read.Add(n) }

// buildMixedChunk exercises every type plus NULLs, NaN and empty
// strings — the payloads that must round-trip bit-exactly.
func buildMixedChunk(t *testing.T) []*vector.Vector {
	t.Helper()
	b := vector.New(vector.Bool, 4)
	b.AppendValue(vector.NewBool(true))
	b.AppendValue(vector.Null())
	b.AppendValue(vector.NewBool(false))
	b.AppendValue(vector.NewBool(true))
	i := vector.New(vector.Int64, 4)
	i.AppendValue(vector.NewInt64(-1 << 40))
	i.AppendValue(vector.NewInt64(42))
	i.AppendValue(vector.Null())
	i.AppendValue(vector.NewInt64(0))
	f := vector.New(vector.Float64, 4)
	f.AppendValue(vector.NewFloat64(math.NaN()))
	f.AppendValue(vector.NewFloat64(math.Inf(-1)))
	f.AppendValue(vector.NewFloat64(-0.0))
	f.AppendValue(vector.Null())
	s := vector.New(vector.String, 4)
	s.AppendValue(vector.NewString(""))
	s.AppendValue(vector.NewString("héllo"))
	s.AppendValue(vector.Null())
	s.AppendValue(vector.NewString("x"))
	bl := vector.New(vector.Blob, 4)
	bl.AppendValue(vector.NewBlob([]byte{0, 1, 2}))
	bl.AppendValue(vector.Null())
	bl.AppendValue(vector.NewBlob(nil))
	bl.AppendValue(vector.NewBlob([]byte{0xff}))
	return []*vector.Vector{b, i, f, s, bl}
}

func TestFileRoundTrip(t *testing.T) {
	rec := &countingRec{}
	m := NewManager(t.TempDir(), rec)
	defer m.Close()
	f, err := m.Create("test")
	if err != nil {
		t.Fatal(err)
	}
	cols := buildMixedChunk(t)
	for c := 0; c < 3; c++ {
		if err := f.WriteChunk(cols); err != nil {
			t.Fatal(err)
		}
	}
	if f.Rows() != 12 || f.Chunks() != 3 {
		t.Fatalf("rows=%d chunks=%d", f.Rows(), f.Chunks())
	}
	for pass := 0; pass < 2; pass++ { // re-read must work
		if err := f.StartRead(); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 3; c++ {
			got, err := f.ReadChunk()
			if err != nil {
				t.Fatalf("pass %d chunk %d: %v", pass, c, err)
			}
			if len(got) != len(cols) {
				t.Fatalf("got %d cols, want %d", len(got), len(cols))
			}
			for ci, gc := range got {
				wc := cols[ci]
				if gc.Type() != wc.Type() || gc.Len() != wc.Len() {
					t.Fatalf("col %d: type %v len %d", ci, gc.Type(), gc.Len())
				}
				for r := 0; r < wc.Len(); r++ {
					if gc.IsNull(r) != wc.IsNull(r) {
						t.Fatalf("col %d row %d null mismatch", ci, r)
					}
					if wc.IsNull(r) {
						continue
					}
					if wc.Type() == vector.Float64 {
						if math.Float64bits(gc.Float64s()[r]) != math.Float64bits(wc.Float64s()[r]) {
							t.Fatalf("col %d row %d float bits differ", ci, r)
						}
						continue
					}
					if gc.Get(r).String() != wc.Get(r).String() {
						t.Fatalf("col %d row %d: %v != %v", ci, r, gc.Get(r), wc.Get(r))
					}
				}
			}
		}
		if _, err := f.ReadChunk(); err != io.EOF {
			t.Fatalf("want EOF, got %v", err)
		}
	}
	if rec.wrote.Load() == 0 || rec.read.Load() == 0 {
		t.Fatalf("recorder wrote=%d read=%d", rec.wrote.Load(), rec.read.Load())
	}
}

func TestManagerCleanup(t *testing.T) {
	base := t.TempDir()
	m := NewManager(base, nil)
	if m.Dir() != "" {
		t.Fatal("dir created before first file")
	}
	f1, err := m.Create("a")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.Create("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.WriteChunk([]*vector.Vector{vector.FromInt64s([]int64{1, 2})}); err != nil {
		t.Fatal(err)
	}
	dir := m.Dir()
	if dir == "" {
		t.Fatal("no spill dir")
	}
	// Release one file explicitly; leave the other for Close.
	if err := f2.Release(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s still exists (err=%v)", dir, err)
	}
	ents, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d entries left in temp dir", len(ents))
	}
	if _, err := m.Create("late"); err == nil {
		t.Fatal("Create after Close must fail")
	}
}

func TestZeroRowChunkSkipped(t *testing.T) {
	m := NewManager(t.TempDir(), nil)
	defer m.Close()
	f, err := m.Create("z")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteChunk([]*vector.Vector{vector.New(vector.Int64, 0)}); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteChunk(nil); err != nil {
		t.Fatal(err)
	}
	if f.Chunks() != 0 {
		t.Fatalf("zero-row chunks written: %d", f.Chunks())
	}
	if _, err := f.ReadChunk(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestCorruptFileRejected(t *testing.T) {
	m := NewManager(t.TempDir(), nil)
	defer m.Close()
	f, err := m.Create("c")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteChunk([]*vector.Vector{vector.FromInt64s([]int64{7})}); err != nil {
		t.Fatal(err)
	}
	// Truncate mid-payload: the reader must error, not return short data.
	if err := f.w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.f.Truncate(f.written - 2); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadChunk(); err == nil || err == io.EOF {
		t.Fatalf("truncated file: want error, got %v", err)
	}
	// A file whose path vanished underneath still releases cleanly.
	g, err := m.Create("gone")
	if err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(m.Dir(), filepath.Base(g.path)))
	if err := g.Release(); err != nil {
		t.Fatal(err)
	}
}
