// Package spill provides the temp-file substrate for out-of-core
// execution: a per-query Manager that owns a directory of spill files
// with guaranteed cleanup, and a File that streams vector chunks to
// disk and back using the storage package's raw column encoding (the
// same injective byte layout the on-disk table format and the wire
// protocol use), so spilled data round-trips bit-exactly — including
// float payloads, NULL masks and blobs.
//
// Files are written append-only, then rewound and read sequentially.
// A Manager survives double Close and cleans up every file it created
// even when operators abandoned them mid-write (query cancellation or
// error): Close closes and removes the whole directory.
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// Recorder receives byte-level spill accounting. Implementations must
// be safe for concurrent use; a nil Recorder disables accounting.
type Recorder interface {
	SpillWrote(n int64)
	SpillRead(n int64)
}

// Manager owns one query's spill files. The directory is created
// lazily on the first Create call, so queries that never spill touch
// the filesystem not at all. All methods are safe for concurrent use.
type Manager struct {
	tempDir string
	rec     Recorder

	mu     sync.Mutex
	dir    string // created lazily; "" until first Create
	files  map[*File]struct{}
	closed bool
	seq    int
}

// NewManager returns a manager that places spill files under tempDir
// (os.TempDir() when empty). rec, when non-nil, accumulates bytes
// written and read.
func NewManager(tempDir string, rec Recorder) *Manager {
	return &Manager{tempDir: tempDir, rec: rec, files: map[*File]struct{}{}}
}

// Dir returns the manager's spill directory, or "" when nothing has
// spilled yet.
func (m *Manager) Dir() string {
	if m == nil {
		return ""
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dir
}

// Create opens a fresh spill file. The file is tracked and removed at
// Manager.Close even if the caller never releases it.
func (m *Manager) Create(label string) (*File, error) {
	if m == nil {
		return nil, fmt.Errorf("spill: no manager (spilling disabled)")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, fmt.Errorf("spill: manager closed")
	}
	if m.dir == "" {
		base := m.tempDir
		if base == "" {
			base = os.TempDir()
		}
		// A configured TempDir need not pre-exist (only the per-query
		// subdirectory is ever removed, never base itself).
		if err := os.MkdirAll(base, 0o700); err != nil {
			return nil, fmt.Errorf("spill: create dir: %w", err)
		}
		dir, err := os.MkdirTemp(base, "vexdb-spill-*")
		if err != nil {
			return nil, fmt.Errorf("spill: create dir: %w", err)
		}
		m.dir = dir
	}
	m.seq++
	path := filepath.Join(m.dir, fmt.Sprintf("%04d-%s.spl", m.seq, label))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, fmt.Errorf("spill: create file: %w", err)
	}
	sf := &File{mgr: m, f: f, path: path, w: bufio.NewWriterSize(f, 1<<16)}
	m.files[sf] = struct{}{}
	return sf, nil
}

// Close removes every outstanding file and the spill directory. It is
// idempotent and returns the first error encountered (cleanup
// continues past errors).
func (m *Manager) Close() error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	var first error
	for f := range m.files {
		if err := f.closeFile(); err != nil && first == nil {
			first = err
		}
	}
	m.files = nil
	if m.dir != "" {
		if err := os.RemoveAll(m.dir); err != nil && first == nil {
			first = err
		}
		m.dir = ""
	}
	return first
}

// release drops a file from the manager's tracking set.
func (m *Manager) release(f *File) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.files != nil {
		delete(m.files, f)
	}
}

// File is one append-then-read spill file holding a sequence of
// chunks. Writes go through WriteChunk; after the last write,
// StartRead rewinds the file and ReadChunk streams the chunks back in
// write order. A File is not safe for concurrent use.
type File struct {
	mgr  *Manager
	f    *os.File
	path string
	w    *bufio.Writer
	r    *bufio.Reader

	rows    int64
	chunks  int64
	written int64
	dirty   bool // buffered writes not yet flushed
	closed  bool
}

// chunk header: u32 rows, u16 cols; per column: u8 type, u32 payload
// length, payload bytes (storage raw column encoding).
const chunkHeaderLen = 6

// ChunkRef locates one chunk inside a spill file, so many logical
// streams (grace partitions, sorted runs) can share one physical file
// — file creation is the dominant spill cost on most filesystems —
// and be read back selectively with positioned reads.
type ChunkRef struct {
	Off int64
	Len int64
}

// Rows returns the total number of rows written so far.
func (f *File) Rows() int64 { return f.rows }

// Chunks returns the number of chunks written so far.
func (f *File) Chunks() int64 { return f.chunks }

// BytesWritten returns the encoded size of everything written so far.
func (f *File) BytesWritten() int64 { return f.written }

// WriteChunk appends the columns as one chunk. All columns must have
// equal length; zero-row chunks are dropped.
func (f *File) WriteChunk(cols []*vector.Vector) error {
	_, err := f.WriteChunkRef(cols)
	return err
}

// WriteChunkRef appends the columns as one chunk and returns its
// location for later positioned reads. Zero-row chunks are dropped
// (Len 0 in the returned ref).
func (f *File) WriteChunkRef(cols []*vector.Vector) (ChunkRef, error) {
	if f.closed {
		return ChunkRef{}, fmt.Errorf("spill: write on closed file")
	}
	if f.r != nil {
		return ChunkRef{}, fmt.Errorf("spill: write after StartRead")
	}
	if len(cols) == 0 || cols[0].Len() == 0 {
		return ChunkRef{}, nil
	}
	n := cols[0].Len()
	var hdr [chunkHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	binary.LittleEndian.PutUint16(hdr[4:], uint16(len(cols)))
	if _, err := f.w.Write(hdr[:]); err != nil {
		return ChunkRef{}, err
	}
	total := int64(chunkHeaderLen)
	for _, c := range cols {
		if c.Len() != n {
			return ChunkRef{}, fmt.Errorf("spill: column length %d != %d", c.Len(), n)
		}
		payload, err := storage.EncodeColumn(c)
		if err != nil {
			return ChunkRef{}, fmt.Errorf("spill: encode column: %w", err)
		}
		var colHdr [5]byte
		colHdr[0] = byte(c.Type())
		binary.LittleEndian.PutUint32(colHdr[1:], uint32(len(payload)))
		if _, err := f.w.Write(colHdr[:]); err != nil {
			return ChunkRef{}, err
		}
		if _, err := f.w.Write(payload); err != nil {
			return ChunkRef{}, err
		}
		total += 5 + int64(len(payload))
	}
	ref := ChunkRef{Off: f.written, Len: total}
	f.rows += int64(n)
	f.chunks++
	f.written += total
	f.dirty = true
	if f.mgr != nil && f.mgr.rec != nil {
		f.mgr.rec.SpillWrote(total)
	}
	return ref, nil
}

// ReadChunkAt reads the chunk at ref with a positioned read, flushing
// buffered writes first. Unlike the sequential reader it may be
// interleaved with further WriteChunk calls, so shared files can serve
// one partition while others are still being written.
func (f *File) ReadChunkAt(ref ChunkRef) ([]*vector.Vector, error) {
	if f.closed {
		return nil, fmt.Errorf("spill: read on closed file")
	}
	if ref.Len < chunkHeaderLen {
		return nil, fmt.Errorf("spill: chunk ref length %d invalid", ref.Len)
	}
	if f.dirty {
		if err := f.w.Flush(); err != nil {
			return nil, err
		}
		f.dirty = false
	}
	buf := make([]byte, ref.Len)
	if _, err := f.f.ReadAt(buf, ref.Off); err != nil {
		return nil, fmt.Errorf("spill: read chunk at %d: %w", ref.Off, err)
	}
	cols, err := decodeChunkBytes(buf)
	if err != nil {
		return nil, err
	}
	if f.mgr != nil && f.mgr.rec != nil {
		f.mgr.rec.SpillRead(ref.Len)
	}
	return cols, nil
}

// decodeChunkBytes parses one serialized chunk held fully in memory.
func decodeChunkBytes(b []byte) ([]*vector.Vector, error) {
	n := int(binary.LittleEndian.Uint32(b[0:]))
	ncols := int(binary.LittleEndian.Uint16(b[4:]))
	if n <= 0 || ncols <= 0 {
		return nil, fmt.Errorf("spill: corrupt chunk header (%d rows, %d cols)", n, ncols)
	}
	b = b[chunkHeaderLen:]
	cols := make([]*vector.Vector, ncols)
	for i := range cols {
		if len(b) < 5 {
			return nil, fmt.Errorf("spill: truncated column header")
		}
		typ := vector.Type(b[0])
		plen := int(binary.LittleEndian.Uint32(b[1:]))
		b = b[5:]
		if len(b) < plen {
			return nil, fmt.Errorf("spill: truncated column payload")
		}
		v, err := storage.DecodeColumn(typ, n, b[:plen])
		if err != nil {
			return nil, fmt.Errorf("spill: decode column: %w", err)
		}
		cols[i] = v
		b = b[plen:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("spill: %d trailing chunk bytes", len(b))
	}
	return cols, nil
}

// StartRead flushes pending writes and rewinds the file for reading.
// It may be called again to re-read from the start.
func (f *File) StartRead() error {
	if f.closed {
		return fmt.Errorf("spill: read on closed file")
	}
	if err := f.w.Flush(); err != nil {
		return err
	}
	f.dirty = false
	if _, err := f.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if f.r == nil {
		f.r = bufio.NewReaderSize(f.f, 1<<16)
	} else {
		f.r.Reset(f.f)
	}
	return nil
}

// ReadChunk returns the next chunk's columns, or io.EOF after the
// last chunk. Column headers are validated strictly; a truncated or
// corrupt file surfaces as an error, never as silently short data.
func (f *File) ReadChunk() ([]*vector.Vector, error) {
	if f.closed {
		return nil, fmt.Errorf("spill: read on closed file")
	}
	if f.r == nil {
		if err := f.StartRead(); err != nil {
			return nil, err
		}
	}
	var hdr [chunkHeaderLen]byte
	if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("spill: chunk header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	ncols := int(binary.LittleEndian.Uint16(hdr[4:]))
	if n <= 0 || ncols <= 0 {
		return nil, fmt.Errorf("spill: corrupt chunk header (%d rows, %d cols)", n, ncols)
	}
	total := int64(chunkHeaderLen)
	cols := make([]*vector.Vector, ncols)
	for i := range cols {
		var colHdr [5]byte
		if _, err := io.ReadFull(f.r, colHdr[:]); err != nil {
			return nil, fmt.Errorf("spill: column header: %w", err)
		}
		typ := vector.Type(colHdr[0])
		plen := int(binary.LittleEndian.Uint32(colHdr[1:]))
		payload := make([]byte, plen)
		if _, err := io.ReadFull(f.r, payload); err != nil {
			return nil, fmt.Errorf("spill: column payload: %w", err)
		}
		v, err := storage.DecodeColumn(typ, n, payload)
		if err != nil {
			return nil, fmt.Errorf("spill: decode column: %w", err)
		}
		cols[i] = v
		total += 5 + int64(plen)
	}
	if f.mgr != nil && f.mgr.rec != nil {
		f.mgr.rec.SpillRead(total)
	}
	return cols, nil
}

// Release closes and removes the file, dropping it from the manager.
// Safe to call more than once; Manager.Close releases any file the
// caller did not.
func (f *File) Release() error {
	if f == nil || f.closed {
		return nil
	}
	if f.mgr != nil {
		f.mgr.release(f)
	}
	return f.closeFile()
}

// closeFile closes and unlinks without touching manager state (the
// manager calls it with its own lock held).
func (f *File) closeFile() error {
	if f.closed {
		return nil
	}
	f.closed = true
	err := f.f.Close()
	if rmErr := os.Remove(f.path); rmErr != nil && err == nil && !os.IsNotExist(rmErr) {
		err = rmErr
	}
	return err
}
