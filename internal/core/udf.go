// Package core implements the paper's primary contribution: the
// vectorized user-defined function framework that deeply integrates
// machine-learning pipelines into the column store. UDFs receive whole
// column vectors (not scalar rows), mirroring MonetDB/Python UDFs:
// scalar UDFs map input columns to an output column and may be
// executed partitioned across goroutines; table UDFs consume
// materialized relations plus scalar parameters and return a relation,
// which is how models are trained (Listing 1 of the paper) and stored
// as BLOBs.
package core

import (
	"fmt"
	"strings"
	"sync"

	"vexdb/internal/vector"
)

// ScalarFunc is a vectorized scalar UDF. Eval receives full column
// vectors of equal length and returns one vector of the same length.
type ScalarFunc struct {
	// Name is the SQL-visible function name (case-insensitive).
	Name string
	// Arity is the required argument count; -1 accepts any count.
	Arity int
	// ReturnType infers the output type from argument types.
	ReturnType func(args []vector.Type) (vector.Type, error)
	// Eval computes the result column. It must return a vector whose
	// length equals the input length (all inputs are equal length).
	Eval func(args []*vector.Vector) (*vector.Vector, error)
	// Parallel marks the function safe for partitioned execution: the
	// engine may split the input rows across goroutines and call Eval
	// once per partition. Functions whose output row i depends only on
	// input row i (such as model prediction) should set this.
	Parallel bool
}

// TableArg is one argument to a table UDF: either a materialized
// relation (from a subquery) or a scalar parameter.
type TableArg struct {
	Table  *vector.Table // non-nil for relation arguments
	Scalar vector.Value  // used when Table is nil
}

// IsTable reports whether the argument is a relation.
func (a TableArg) IsTable() bool { return a.Table != nil }

// TableFunc is a table-valued UDF usable in FROM clauses, e.g.
// SELECT * FROM train_rf((SELECT ...), 16). The output schema is
// static so queries over the function can be bound before execution.
type TableFunc struct {
	// Name is the SQL-visible function name (case-insensitive).
	Name string
	// Columns declares the output schema.
	Columns []ColumnDecl
	// Fn consumes the evaluated arguments and produces the output
	// relation, whose columns must match Columns.
	Fn func(args []TableArg) (*vector.Table, error)
	// FnPar, when set, is invoked instead of Fn with the executing
	// query's worker count, letting blocking table UDFs (model
	// training) parallelize internally under the engine's parallelism
	// setting. Implementations must produce results identical to Fn at
	// any worker count; workers <= 0 means "choose" (NumCPU).
	FnPar func(args []TableArg, workers int) (*vector.Table, error)
}

// ColumnDecl declares one output column of a table UDF.
type ColumnDecl struct {
	Name string
	Type vector.Type
}

// Registry holds the scalar and table UDFs visible to a database
// instance. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	scalars map[string]*ScalarFunc
	tables  map[string]*TableFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		scalars: make(map[string]*ScalarFunc),
		tables:  make(map[string]*TableFunc),
	}
}

// RegisterScalar adds a scalar UDF, replacing any previous function of
// the same name.
func (r *Registry) RegisterScalar(f *ScalarFunc) error {
	if f == nil || f.Name == "" || f.Eval == nil || f.ReturnType == nil {
		return fmt.Errorf("core: scalar UDF requires name, return type and eval")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scalars[strings.ToLower(f.Name)] = f
	return nil
}

// RegisterTable adds a table UDF, replacing any previous function of
// the same name.
func (r *Registry) RegisterTable(f *TableFunc) error {
	if f == nil || f.Name == "" || f.Fn == nil || len(f.Columns) == 0 {
		return fmt.Errorf("core: table UDF requires name, schema and fn")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tables[strings.ToLower(f.Name)] = f
	return nil
}

// Scalar looks up a scalar UDF by name (case-insensitive).
func (r *Registry) Scalar(name string) (*ScalarFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.scalars[strings.ToLower(name)]
	return f, ok
}

// Table looks up a table UDF by name (case-insensitive).
func (r *Registry) Table(name string) (*TableFunc, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.tables[strings.ToLower(name)]
	return f, ok
}

// ScalarNames returns the registered scalar UDF names (unsorted).
func (r *Registry) ScalarNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.scalars))
	for n := range r.scalars {
		out = append(out, n)
	}
	return out
}

// EvalPartitioned runs a Parallel scalar UDF split across nparts
// partitions of the input vectors, preserving row order. Functions not
// marked Parallel, inputs shorter than 2 rows, or nparts < 2 fall back
// to a single Eval call.
func EvalPartitioned(f *ScalarFunc, args []*vector.Vector, nparts int) (*vector.Vector, error) {
	n := 0
	if len(args) > 0 {
		n = args[0].Len()
	}
	if !f.Parallel || nparts < 2 || n < 2 {
		return f.Eval(args)
	}
	if nparts > n {
		nparts = n
	}
	type result struct {
		idx int
		out *vector.Vector
		err error
	}
	results := make([]result, nparts)
	var wg sync.WaitGroup
	for p := 0; p < nparts; p++ {
		lo := p * n / nparts
		hi := (p + 1) * n / nparts
		part := make([]*vector.Vector, len(args))
		for i, a := range args {
			part[i] = a.Slice(lo, hi)
		}
		wg.Add(1)
		go func(p int, part []*vector.Vector) {
			defer wg.Done()
			out, err := f.Eval(part)
			results[p] = result{idx: p, out: out, err: err}
		}(p, part)
	}
	wg.Wait()
	var out *vector.Vector
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if out == nil {
			out = r.out
			continue
		}
		out.AppendVector(r.out)
	}
	if out.Len() != n {
		return nil, fmt.Errorf("core: partitioned UDF %s returned %d rows for %d inputs", f.Name, out.Len(), n)
	}
	return out, nil
}

// FixedReturn returns a ReturnType function that always yields t.
func FixedReturn(t vector.Type) func([]vector.Type) (vector.Type, error) {
	return func([]vector.Type) (vector.Type, error) { return t, nil }
}
