package core

import (
	"fmt"
	"testing"

	"vexdb/internal/vector"
)

func doubler() *ScalarFunc {
	return &ScalarFunc{
		Name:       "dbl",
		Arity:      1,
		Parallel:   true,
		ReturnType: FixedReturn(vector.Float64),
		Eval: func(args []*vector.Vector) (*vector.Vector, error) {
			in, err := args[0].AsFloat64s()
			if err != nil {
				return nil, err
			}
			out := make([]float64, len(in))
			for i, v := range in {
				out[i] = 2 * v
			}
			return vector.FromFloat64s(out), nil
		},
	}
}

func TestRegistryScalar(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterScalar(doubler()); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Scalar("DBL"); !ok {
		t.Fatal("lookup must be case-insensitive")
	}
	if _, ok := r.Scalar("nope"); ok {
		t.Fatal("missing function found")
	}
	if err := r.RegisterScalar(&ScalarFunc{Name: ""}); err == nil {
		t.Fatal("invalid registration should fail")
	}
	if len(r.ScalarNames()) != 1 {
		t.Fatal("ScalarNames")
	}
}

func TestRegistryTable(t *testing.T) {
	r := NewRegistry()
	fn := &TableFunc{
		Name:    "one",
		Columns: []ColumnDecl{{Name: "x", Type: vector.Int64}},
		Fn: func([]TableArg) (*vector.Table, error) {
			return vector.NewTable([]string{"x"}, []*vector.Vector{vector.FromInt64s([]int64{1})})
		},
	}
	if err := r.RegisterTable(fn); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Table("ONE"); !ok {
		t.Fatal("case-insensitive table lookup")
	}
	if err := r.RegisterTable(&TableFunc{Name: "bad"}); err == nil {
		t.Fatal("invalid table registration should fail")
	}
}

func TestEvalPartitionedMatchesSerial(t *testing.T) {
	f := doubler()
	n := 10_001 // odd length exercises uneven partitions
	in := make([]float64, n)
	for i := range in {
		in[i] = float64(i)
	}
	args := []*vector.Vector{vector.FromFloat64s(in)}
	serial, err := f.Eval(args)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2, 3, 7, 16, n + 5} {
		got, err := EvalPartitioned(f, args, parts)
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		if got.Len() != n {
			t.Fatalf("parts=%d: len %d", parts, got.Len())
		}
		for i := 0; i < n; i++ {
			if got.Float64s()[i] != serial.Float64s()[i] {
				t.Fatalf("parts=%d row %d differs", parts, i)
			}
		}
	}
}

func TestEvalPartitionedNonParallelFallsBack(t *testing.T) {
	f := doubler()
	f.Parallel = false
	calls := 0
	inner := f.Eval
	f.Eval = func(args []*vector.Vector) (*vector.Vector, error) {
		calls++
		return inner(args)
	}
	args := []*vector.Vector{vector.FromFloat64s(make([]float64, 100))}
	if _, err := EvalPartitioned(f, args, 8); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("non-parallel UDF called %d times, want 1", calls)
	}
}

func TestEvalPartitionedErrorPropagates(t *testing.T) {
	f := &ScalarFunc{
		Name: "boom", Arity: 1, Parallel: true,
		ReturnType: FixedReturn(vector.Int64),
		Eval: func(args []*vector.Vector) (*vector.Vector, error) {
			return nil, fmt.Errorf("kaboom")
		},
	}
	args := []*vector.Vector{vector.FromInt64s(make([]int64, 100))}
	if _, err := EvalPartitioned(f, args, 4); err == nil {
		t.Fatal("partition error must propagate")
	}
}

func TestBuiltins(t *testing.T) {
	r := NewRegistry()
	RegisterBuiltins(r)
	sqrt, ok := r.Scalar("sqrt")
	if !ok {
		t.Fatal("sqrt missing")
	}
	in := vector.New(vector.Float64, 2)
	in.AppendValue(vector.NewFloat64(9))
	in.AppendValue(vector.Null())
	out, err := sqrt.Eval([]*vector.Vector{in})
	if err != nil {
		t.Fatal(err)
	}
	if out.Get(0).Float64() != 3 {
		t.Fatal("sqrt(9)")
	}
	if !out.IsNull(1) {
		t.Fatal("sqrt(NULL) must be NULL")
	}

	length, _ := r.Scalar("length")
	lv, err := length.Eval([]*vector.Vector{vector.FromStrings([]string{"abc", ""})})
	if err != nil || lv.Int64s()[0] != 3 || lv.Int64s()[1] != 0 {
		t.Fatalf("length: %v %v", lv, err)
	}
	if _, err := length.Eval([]*vector.Vector{vector.FromInt64s([]int64{1})}); err == nil {
		t.Fatal("length of int should fail")
	}

	coalesce, _ := r.Scalar("coalesce")
	a := vector.New(vector.Int64, 2)
	a.AppendValue(vector.Null())
	a.AppendValue(vector.NewInt64(1))
	b := vector.FromInt64s([]int64{9, 9})
	cv, err := coalesce.Eval([]*vector.Vector{a, b})
	if err != nil || cv.Get(0).Int64() != 9 || cv.Get(1).Int64() != 1 {
		t.Fatalf("coalesce: %v %v", cv, err)
	}

	pow, _ := r.Scalar("pow")
	pv, err := pow.Eval([]*vector.Vector{
		vector.FromFloat64s([]float64{2}), vector.FromFloat64s([]float64{10})})
	if err != nil || pv.Float64s()[0] != 1024 {
		t.Fatalf("pow: %v %v", pv, err)
	}
}
