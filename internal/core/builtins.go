package core

import (
	"fmt"
	"math"
	"strings"

	"vexdb/internal/vector"
)

// RegisterBuiltins installs the built-in scalar function library
// (math and string helpers) into the registry.
func RegisterBuiltins(r *Registry) {
	for _, f := range builtinScalars() {
		// Registration of the static builtin set cannot fail.
		if err := r.RegisterScalar(f); err != nil {
			panic(err)
		}
	}
}

// float1 builds a Parallel scalar UDF applying fn element-wise to one
// numeric column, returning DOUBLE.
func float1(name string, fn func(float64) float64) *ScalarFunc {
	return &ScalarFunc{
		Name:       name,
		Arity:      1,
		Parallel:   true,
		ReturnType: FixedReturn(vector.Float64),
		Eval: func(args []*vector.Vector) (*vector.Vector, error) {
			in, err := args[0].AsFloat64s()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			out := make([]float64, len(in))
			for i, x := range in {
				out[i] = fn(x)
			}
			res := vector.FromFloat64s(out)
			copyNulls(res, args[0])
			return res, nil
		},
	}
}

// str1 builds a Parallel scalar UDF applying fn element-wise to one
// string column, returning VARCHAR.
func str1(name string, fn func(string) string) *ScalarFunc {
	return &ScalarFunc{
		Name:       name,
		Arity:      1,
		Parallel:   true,
		ReturnType: FixedReturn(vector.String),
		Eval: func(args []*vector.Vector) (*vector.Vector, error) {
			if args[0].Type() != vector.String {
				return nil, fmt.Errorf("%s: expected VARCHAR argument, got %s", name, args[0].Type())
			}
			in := args[0].Strings()
			out := make([]string, len(in))
			for i, s := range in {
				out[i] = fn(s)
			}
			res := vector.FromStrings(out)
			copyNulls(res, args[0])
			return res, nil
		},
	}
}

func copyNulls(dst, src *vector.Vector) {
	if nulls := src.Nulls(); nulls != nil {
		for i, isNull := range nulls {
			if isNull {
				dst.SetNull(i)
			}
		}
	}
}

func builtinScalars() []*ScalarFunc {
	return []*ScalarFunc{
		float1("sqrt", math.Sqrt),
		float1("ln", math.Log),
		float1("exp", math.Exp),
		float1("floor", math.Floor),
		float1("ceil", math.Ceil),
		float1("sin", math.Sin),
		float1("cos", math.Cos),
		float1("abs", math.Abs),
		{
			Name:       "round",
			Arity:      1,
			Parallel:   true,
			ReturnType: FixedReturn(vector.Float64),
			Eval: func(args []*vector.Vector) (*vector.Vector, error) {
				in, err := args[0].AsFloat64s()
				if err != nil {
					return nil, fmt.Errorf("round: %w", err)
				}
				out := make([]float64, len(in))
				for i, x := range in {
					out[i] = math.Round(x)
				}
				res := vector.FromFloat64s(out)
				copyNulls(res, args[0])
				return res, nil
			},
		},
		{
			Name:       "pow",
			Arity:      2,
			Parallel:   true,
			ReturnType: FixedReturn(vector.Float64),
			Eval: func(args []*vector.Vector) (*vector.Vector, error) {
				a, err := args[0].AsFloat64s()
				if err != nil {
					return nil, fmt.Errorf("pow: %w", err)
				}
				b, err := args[1].AsFloat64s()
				if err != nil {
					return nil, fmt.Errorf("pow: %w", err)
				}
				out := make([]float64, len(a))
				for i := range a {
					out[i] = math.Pow(a[i], b[i])
				}
				res := vector.FromFloat64s(out)
				copyNulls(res, args[0])
				copyNulls(res, args[1])
				return res, nil
			},
		},
		str1("lower", strings.ToLower),
		str1("upper", strings.ToUpper),
		{
			Name:       "length",
			Arity:      1,
			Parallel:   true,
			ReturnType: FixedReturn(vector.Int64),
			Eval: func(args []*vector.Vector) (*vector.Vector, error) {
				n := args[0].Len()
				out := make([]int64, n)
				switch args[0].Type() {
				case vector.String:
					for i, s := range args[0].Strings() {
						out[i] = int64(len(s))
					}
				case vector.Blob:
					for i, b := range args[0].Blobs() {
						out[i] = int64(len(b))
					}
				default:
					return nil, fmt.Errorf("length: expected VARCHAR or BLOB, got %s", args[0].Type())
				}
				res := vector.FromInt64s(out)
				copyNulls(res, args[0])
				return res, nil
			},
		},
		{
			Name:  "coalesce",
			Arity: -1,
			ReturnType: func(args []vector.Type) (vector.Type, error) {
				if len(args) == 0 {
					return vector.Invalid, fmt.Errorf("coalesce: requires arguments")
				}
				for _, t := range args {
					if t != vector.Invalid {
						return t, nil
					}
				}
				return args[0], nil
			},
			Parallel: true,
			Eval: func(args []*vector.Vector) (*vector.Vector, error) {
				if len(args) == 0 {
					return nil, fmt.Errorf("coalesce: requires arguments")
				}
				n := args[0].Len()
				out := vector.New(args[0].Type(), n)
				for i := 0; i < n; i++ {
					var v vector.Value = vector.Null()
					for _, a := range args {
						if !a.IsNull(i) {
							v = a.Get(i)
							break
						}
					}
					out.AppendValue(v)
				}
				return out, nil
			},
		},
	}
}
