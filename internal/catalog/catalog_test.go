package catalog

import (
	"testing"

	"vexdb/internal/vector"
)

func TestCreateAndLookup(t *testing.T) {
	c := New()
	schema := Schema{{"id", vector.Int64}, {"name", vector.String}}
	tab, err := c.CreateTable("Users", schema)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Data == nil || tab.Data.NumColumns() != 2 {
		t.Fatal("store not initialized")
	}
	// Case-insensitive lookup.
	got, err := c.Table("users")
	if err != nil || got != tab {
		t.Fatalf("lookup: %v %v", got, err)
	}
	if !c.HasTable("USERS") {
		t.Fatal("HasTable case-insensitive")
	}
	if _, err := c.CreateTable("users", schema); err == nil {
		t.Fatal("duplicate create should error")
	}
}

func TestCreateValidation(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("", Schema{{"a", vector.Int64}}); err == nil {
		t.Error("empty name")
	}
	if _, err := c.CreateTable("t", nil); err == nil {
		t.Error("no columns")
	}
	if _, err := c.CreateTable("t", Schema{{"a", vector.Int64}, {"A", vector.Int64}}); err == nil {
		t.Error("duplicate column")
	}
	if _, err := c.CreateTable("t", Schema{{"a", vector.Invalid}}); err == nil {
		t.Error("invalid type")
	}
}

func TestDropAndList(t *testing.T) {
	c := New()
	mk := func(n string) {
		if _, err := c.CreateTable(n, Schema{{"a", vector.Int64}}); err != nil {
			t.Fatal(err)
		}
	}
	mk("b_table")
	mk("a_table")
	names := c.TableNames()
	if len(names) != 2 || names[0] != "a_table" || names[1] != "b_table" {
		t.Fatalf("names = %v", names)
	}
	if err := c.DropTable("A_TABLE"); err != nil {
		t.Fatal(err)
	}
	if c.HasTable("a_table") {
		t.Fatal("still present after drop")
	}
	if err := c.DropTable("a_table"); err == nil {
		t.Fatal("double drop should error")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{{"id", vector.Int64}, {"x", vector.Float64}}
	if s.IndexOf("X") != 1 || s.IndexOf("nope") != -1 {
		t.Fatal("IndexOf")
	}
	if s.Names()[0] != "id" || s.Types()[1] != vector.Float64 {
		t.Fatal("Names/Types")
	}
}

func TestAttachTable(t *testing.T) {
	c := New()
	tab := &Table{Name: "x", Schema: Schema{{"a", vector.Int64}}}
	if err := c.AttachTable(tab); err != nil {
		t.Fatal(err)
	}
	if err := c.AttachTable(tab); err == nil {
		t.Fatal("double attach should error")
	}
}
