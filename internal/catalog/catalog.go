// Package catalog tracks the schema objects of a database instance:
// tables (name, column schema, backing column store) and registered
// user-defined functions. The catalog is safe for concurrent use.
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// Column describes one table column.
type Column struct {
	Name string
	Type vector.Type
}

// Schema is an ordered list of columns.
type Schema []Column

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Types returns the column types in order.
func (s Schema) Types() []vector.Type {
	out := make([]vector.Type, len(s))
	for i, c := range s {
		out[i] = c.Type
	}
	return out
}

// IndexOf returns the position of the named column (case-insensitive),
// or -1 when absent.
func (s Schema) IndexOf(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Table is a catalog entry pairing a schema with its column store.
type Table struct {
	Name   string
	Schema Schema
	Data   *storage.ColumnStore

	// writeMu serializes writers of this table so that the order rows
	// are applied to Data matches the order their WAL records were
	// assigned LSNs. Readers never take it: they pin Data snapshots.
	writeMu sync.Mutex
}

// LockWrites serializes this table's write path (WAL append + apply).
func (t *Table) LockWrites() { t.writeMu.Lock() }

// UnlockWrites releases LockWrites.
func (t *Table) UnlockWrites() { t.writeMu.Unlock() }

// Catalog is the set of tables and functions of one database.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

func key(name string) string { return strings.ToLower(name) }

// CreateTable registers a new table with the given schema and a fresh
// column store. It fails when the name is taken or the schema is
// invalid.
func (c *Catalog) CreateTable(name string, schema Schema) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	if len(schema) == 0 {
		return nil, fmt.Errorf("catalog: table %q has no columns", name)
	}
	seen := make(map[string]bool, len(schema))
	for _, col := range schema {
		k := key(col.Name)
		if seen[k] {
			return nil, fmt.Errorf("catalog: table %q: duplicate column %q", name, col.Name)
		}
		seen[k] = true
		if col.Type == vector.Invalid {
			return nil, fmt.Errorf("catalog: table %q: column %q has invalid type", name, col.Name)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(name)]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{Name: name, Schema: schema, Data: storage.NewColumnStore(schema.Types())}
	c.tables[key(name)] = t
	return t, nil
}

// AttachTable registers an existing table object (used when loading a
// database from disk).
func (c *Catalog) AttachTable(t *Table) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(t.Name)]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	c.tables[key(t.Name)] = t
	return nil
}

// Table returns the named table (case-insensitive).
func (c *Catalog) Table(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[key(name)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (c *Catalog) HasTable(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[key(name)]
	return ok
}

// DropTable removes the named table.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[key(name)]; !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	delete(c.tables, key(name))
	return nil
}

// Snapshot pins the data of every table at a single point in time: a
// query planned against it reads the same immutable row set from every
// scan, however many writers commit while it streams. The snapshot is
// a pure read — taking one never blocks writers.
type Snapshot struct {
	tables map[*Table]*storage.TableSnapshot
}

// Snapshot captures the current data version of every table.
func (c *Catalog) Snapshot() *Snapshot {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := &Snapshot{tables: make(map[*Table]*storage.TableSnapshot, len(c.tables))}
	for _, t := range c.tables {
		s.tables[t] = t.Data.Snapshot()
	}
	return s
}

// Data returns the pinned version of t's data, falling back to t's
// live current version when t was created after the snapshot (a reader
// can only reach such a table through a query that named it, and then
// only with whatever rows it sees — still a committed prefix).
func (s *Snapshot) Data(t *Table) *storage.TableSnapshot {
	if s != nil {
		if snap, ok := s.tables[t]; ok {
			return snap
		}
	}
	return t.Data.Snapshot()
}

// TableNames returns all table names, sorted.
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
