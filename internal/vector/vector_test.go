package vector

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Bool: "BOOLEAN", Int32: "INTEGER", Int64: "BIGINT",
		Float64: "DOUBLE", String: "VARCHAR", Blob: "BLOB",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

func TestTypeFromName(t *testing.T) {
	cases := []struct {
		in   string
		want Type
		ok   bool
	}{
		{"INTEGER", Int32, true},
		{"int", Int32, true},
		{"BIGINT", Int64, true},
		{"double", Float64, true},
		{"FLOAT", Float64, true},
		{"varchar(32)", String, true},
		{"TEXT", String, true},
		{"blob", Blob, true},
		{"BOOLEAN", Bool, true},
		{"nonsense", Invalid, false},
	}
	for _, c := range cases {
		got, ok := TypeFromName(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("TypeFromName(%q) = %v,%v want %v,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestCommonNumeric(t *testing.T) {
	if got, ok := CommonNumeric(Int32, Int64); !ok || got != Int64 {
		t.Errorf("CommonNumeric(Int32,Int64) = %v,%v", got, ok)
	}
	if got, ok := CommonNumeric(Int64, Float64); !ok || got != Float64 {
		t.Errorf("CommonNumeric(Int64,Float64) = %v,%v", got, ok)
	}
	if got, ok := CommonNumeric(Int32, Int32); !ok || got != Int32 {
		t.Errorf("CommonNumeric(Int32,Int32) = %v,%v", got, ok)
	}
	if _, ok := CommonNumeric(Int32, String); ok {
		t.Error("CommonNumeric(Int32,String) should fail")
	}
}

func TestValueBasics(t *testing.T) {
	if !Null().IsNull() {
		t.Fatal("Null() not null")
	}
	if Null().Type() != Invalid {
		t.Fatal("Null() type")
	}
	v := NewInt64(42)
	if v.IsNull() || v.Int64() != 42 || v.Type() != Int64 {
		t.Fatalf("NewInt64 got %+v", v)
	}
	if NewFloat64(1.5).Float64() != 1.5 {
		t.Fatal("float roundtrip")
	}
	if NewInt32(7).Float64() != 7 {
		t.Fatal("int-as-float widening")
	}
	if NewString("x").Str() != "x" {
		t.Fatal("string roundtrip")
	}
	if string(NewBlob([]byte{1, 2}).Bytes()) != "\x01\x02" {
		t.Fatal("blob roundtrip")
	}
}

func TestValueEqual(t *testing.T) {
	if Null().Equal(Null()) {
		t.Error("NULL = NULL must be false")
	}
	if !NewInt32(3).Equal(NewInt64(3)) {
		t.Error("cross-width numeric equality")
	}
	if !NewInt64(3).Equal(NewFloat64(3)) {
		t.Error("int/float equality")
	}
	if NewString("a").Equal(NewInt64(1)) {
		t.Error("string/int must be unequal")
	}
	if !NewBlob([]byte("ab")).Equal(NewBlob([]byte("ab"))) {
		t.Error("blob equality")
	}
}

func TestValueCast(t *testing.T) {
	cases := []struct {
		in   Value
		to   Type
		want Value
	}{
		{NewInt64(5), Float64, NewFloat64(5)},
		{NewFloat64(5.9), Int32, NewInt32(5)},
		{NewString("12"), Int64, NewInt64(12)},
		{NewString("1.5"), Float64, NewFloat64(1.5)},
		{NewBool(true), Int32, NewInt32(1)},
		{NewInt64(0), Bool, NewBool(false)},
		{NewInt64(7), String, NewString("7")},
		{Null(), Int64, Null()},
	}
	for _, c := range cases {
		got, err := c.in.Cast(c.to)
		if err != nil {
			t.Errorf("Cast(%v, %v): %v", c.in, c.to, err)
			continue
		}
		if c.want.IsNull() {
			if !got.IsNull() {
				t.Errorf("Cast(%v, %v) = %v, want NULL", c.in, c.to, got)
			}
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("Cast(%v, %v) = %v, want %v", c.in, c.to, got, c.want)
		}
	}
	if _, err := NewString("abc").Cast(Int64); err == nil {
		t.Error("cast 'abc' to BIGINT should error")
	}
}

func TestValueCompare(t *testing.T) {
	lt := func(a, b Value) {
		t.Helper()
		c, err := a.Compare(b)
		if err != nil || c != -1 {
			t.Errorf("Compare(%v,%v) = %d,%v want -1", a, b, c, err)
		}
	}
	lt(NewInt64(1), NewInt64(2))
	lt(NewInt32(1), NewFloat64(1.5))
	lt(NewString("a"), NewString("b"))
	lt(NewBool(false), NewBool(true))
	if _, err := Null().Compare(NewInt64(1)); err == nil {
		t.Error("comparing NULL should error")
	}
	if _, err := NewString("a").Compare(NewInt64(1)); err == nil {
		t.Error("comparing string with int should error")
	}
}

// TestValueCompareTotalOrderNaN pins the float total order: NaN is
// greater than every non-NaN value (including +Inf) and equal to
// itself, so sort comparators built on Compare stay transitive.
func TestValueCompareTotalOrderNaN(t *testing.T) {
	nan := NewFloat64(math.NaN())
	cmp := func(a, b Value, want int) {
		t.Helper()
		c, err := a.Compare(b)
		if err != nil || c != want {
			t.Errorf("Compare(%v,%v) = %d,%v want %d", a, b, c, err, want)
		}
	}
	cmp(nan, nan, 0)
	cmp(nan, NewFloat64(math.Inf(1)), 1)
	cmp(nan, NewFloat64(math.Inf(-1)), 1)
	cmp(NewFloat64(math.Inf(1)), nan, -1)
	cmp(NewFloat64(math.Inf(-1)), nan, -1)
	cmp(nan, NewFloat64(0), 1)
	cmp(NewFloat64(0), nan, -1)
	// Mixed int/float: the integer side widens to float64 and is
	// never NaN, so NaN still sorts after it.
	cmp(nan, NewInt64(1<<40), 1)
	cmp(NewInt32(-7), nan, -1)
	cmp(NewInt64(3), NewFloat64(3.5), -1)
	// Plain floats keep IEEE ordering.
	cmp(NewFloat64(1.5), NewFloat64(2.5), -1)
	cmp(NewFloat64(math.Inf(-1)), NewFloat64(math.Inf(1)), -1)
}

func TestVectorAppendGet(t *testing.T) {
	v := New(Int64, 4)
	v.AppendValue(NewInt64(1))
	v.AppendValue(Null())
	v.AppendValue(NewInt64(3))
	if v.Len() != 3 {
		t.Fatalf("len = %d", v.Len())
	}
	if v.Get(0).Int64() != 1 || !v.Get(1).IsNull() || v.Get(2).Int64() != 3 {
		t.Fatalf("contents wrong: %v %v %v", v.Get(0), v.Get(1), v.Get(2))
	}
	if !v.HasNulls() {
		t.Fatal("HasNulls")
	}
}

func TestVectorAppendVectorNullPropagation(t *testing.T) {
	a := FromInt64s([]int64{1, 2})
	b := New(Int64, 2)
	b.AppendValue(Null())
	b.AppendValue(NewInt64(9))
	a.AppendVector(b)
	if a.Len() != 4 {
		t.Fatalf("len = %d", a.Len())
	}
	if a.IsNull(0) || a.IsNull(1) || !a.IsNull(2) || a.IsNull(3) {
		t.Fatalf("null mask wrong")
	}
	if a.Get(3).Int64() != 9 {
		t.Fatalf("row 3 = %v", a.Get(3))
	}
}

func TestVectorSliceGatherClone(t *testing.T) {
	v := FromFloat64s([]float64{0, 1, 2, 3, 4})
	s := v.Slice(1, 4)
	if s.Len() != 3 || s.Get(0).Float64() != 1 || s.Get(2).Float64() != 3 {
		t.Fatalf("slice wrong: %v", s.Float64s())
	}
	g := v.Gather([]int{4, 0, 4})
	if g.Len() != 3 || g.Get(0).Float64() != 4 || g.Get(1).Float64() != 0 || g.Get(2).Float64() != 4 {
		t.Fatalf("gather wrong: %v", g.Float64s())
	}
	c := v.Clone()
	c.Float64s()[0] = 99
	if v.Get(0).Float64() == 99 {
		t.Fatal("clone aliases original")
	}
}

func TestVectorGatherNulls(t *testing.T) {
	v := New(String, 3)
	v.AppendValue(NewString("a"))
	v.AppendValue(Null())
	v.AppendValue(NewString("c"))
	g := v.Gather([]int{1, 2, 1})
	if !g.IsNull(0) || g.IsNull(1) || !g.IsNull(2) {
		t.Fatal("gather null mask wrong")
	}
}

func TestVectorCast(t *testing.T) {
	v := New(Int32, 3)
	v.AppendValue(NewInt32(1))
	v.AppendValue(Null())
	v.AppendValue(NewInt32(3))
	f, err := v.Cast(Float64)
	if err != nil {
		t.Fatal(err)
	}
	if f.Get(0).Float64() != 1 || !f.IsNull(1) || f.Get(2).Float64() != 3 {
		t.Fatalf("cast result wrong")
	}
}

func TestAsFloat64sAndAsInt32s(t *testing.T) {
	v := FromInt64s([]int64{1, 2, 3})
	f, err := v.AsFloat64s()
	if err != nil || len(f) != 3 || f[2] != 3 {
		t.Fatalf("AsFloat64s: %v %v", f, err)
	}
	i, err := FromFloat64s([]float64{1.9, 2.1}).AsInt32s()
	if err != nil || i[0] != 1 || i[1] != 2 {
		t.Fatalf("AsInt32s: %v %v", i, err)
	}
	if _, err := FromStrings([]string{"x"}).AsFloat64s(); err == nil {
		t.Error("AsFloat64s on strings should error")
	}
}

func TestChunkBasics(t *testing.T) {
	c := NewChunk(FromInt64s([]int64{1, 2}), FromStrings([]string{"a", "b"}))
	if c.NumCols() != 2 || c.NumRows() != 2 {
		t.Fatalf("dims %d x %d", c.NumCols(), c.NumRows())
	}
	row := c.Row(1)
	if row[0].Int64() != 2 || row[1].Str() != "b" {
		t.Fatalf("row = %v", row)
	}
	g := c.Gather([]int{1})
	if g.NumRows() != 1 || g.Col(0).Get(0).Int64() != 2 {
		t.Fatal("chunk gather")
	}
	s := c.Slice(0, 1)
	if s.NumRows() != 1 || s.Col(1).Get(0).Str() != "a" {
		t.Fatal("chunk slice")
	}
}

func TestTableBasics(t *testing.T) {
	tab, err := NewTable([]string{"id", "name"},
		[]*Vector{FromInt64s([]int64{1}), FromStrings([]string{"x"})})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 || tab.NumCols() != 2 {
		t.Fatal("dims")
	}
	if tab.ColumnIndex("name") != 1 || tab.ColumnIndex("zzz") != -1 {
		t.Fatal("ColumnIndex")
	}
	if tab.Column("id").Get(0).Int64() != 1 {
		t.Fatal("Column")
	}
	if err := tab.AppendChunk(NewChunk(FromInt64s([]int64{2}), FromStrings([]string{"y"}))); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 || tab.Column("name").Get(1).Str() != "y" {
		t.Fatal("AppendChunk")
	}
	if _, err := NewTable([]string{"a"}, nil); err == nil {
		t.Error("mismatched names/cols should error")
	}
}

// Property: Gather(identity) preserves all values for int64 vectors.
func TestQuickGatherIdentity(t *testing.T) {
	f := func(data []int64) bool {
		v := FromInt64s(data)
		sel := make([]int, len(data))
		for i := range sel {
			sel[i] = i
		}
		g := v.Gather(sel)
		if g.Len() != len(data) {
			return false
		}
		for i := range data {
			if g.Int64s()[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: value cast Int64->Float64->Int64 is lossless for values
// representable in float64 (|x| < 2^53).
func TestQuickCastRoundTrip(t *testing.T) {
	f := func(x int32) bool {
		v := NewInt64(int64(x))
		fv, err := v.Cast(Float64)
		if err != nil {
			return false
		}
		back, err := fv.Cast(Int64)
		if err != nil {
			return false
		}
		return back.Int64() == int64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: AppendVector concatenation preserves length and order.
func TestQuickAppendVector(t *testing.T) {
	f := func(a, b []float64) bool {
		va := FromFloat64s(append([]float64(nil), a...))
		vb := FromFloat64s(b)
		va.AppendVector(vb)
		if va.Len() != len(a)+len(b) {
			return false
		}
		for i, x := range a {
			if va.Float64s()[i] != x && !(x != x && va.Float64s()[i] != va.Float64s()[i]) {
				return false
			}
		}
		for i, x := range b {
			y := va.Float64s()[len(a)+i]
			if y != x && !(x != x && y != y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
