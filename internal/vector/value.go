package vector

import (
	"fmt"
	"math"
	"strconv"
)

// Value is a single dynamically typed SQL value. The zero Value is the
// SQL NULL. Values appear at the engine boundary (literals, UDF scalar
// parameters, result inspection); the hot paths operate on Vectors.
type Value struct {
	typ  Type
	null bool

	b   bool
	i64 int64 // backs Int32 and Int64
	f64 float64
	s   string
	bs  []byte
}

// Null returns the SQL NULL value. NULL carries no type; it compares
// unequal to everything and propagates through expressions.
func Null() Value { return Value{null: true} }

// NewBool returns a BOOLEAN value.
func NewBool(v bool) Value { return Value{typ: Bool, b: v} }

// NewInt32 returns an INTEGER value.
func NewInt32(v int32) Value { return Value{typ: Int32, i64: int64(v)} }

// NewInt64 returns a BIGINT value.
func NewInt64(v int64) Value { return Value{typ: Int64, i64: v} }

// NewFloat64 returns a DOUBLE value.
func NewFloat64(v float64) Value { return Value{typ: Float64, f64: v} }

// NewString returns a VARCHAR value.
func NewString(v string) Value { return Value{typ: String, s: v} }

// NewBlob returns a BLOB value. The byte slice is not copied.
func NewBlob(v []byte) Value { return Value{typ: Blob, bs: v} }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.null }

// Type returns the value's type, or Invalid for NULL.
func (v Value) Type() Type {
	if v.null {
		return Invalid
	}
	return v.typ
}

// Bool returns the boolean payload. It is valid only for Bool values.
func (v Value) Bool() bool { return v.b }

// Int64 returns the integer payload widened to 64 bits. It is valid
// for Int32 and Int64 values.
func (v Value) Int64() int64 { return v.i64 }

// Float64 returns the floating point payload. For integer values it
// returns the integer converted to float64.
func (v Value) Float64() float64 {
	if v.typ == Int32 || v.typ == Int64 {
		return float64(v.i64)
	}
	return v.f64
}

// Str returns the string payload. It is valid only for String values.
func (v Value) Str() string { return v.s }

// Bytes returns the blob payload. It is valid only for Blob values.
func (v Value) Bytes() []byte { return v.bs }

// String renders the value the way the SQL shell prints it.
func (v Value) String() string {
	if v.null {
		return "NULL"
	}
	switch v.typ {
	case Bool:
		if v.b {
			return "true"
		}
		return "false"
	case Int32, Int64:
		return strconv.FormatInt(v.i64, 10)
	case Float64:
		return strconv.FormatFloat(v.f64, 'g', -1, 64)
	case String:
		return v.s
	case Blob:
		return fmt.Sprintf("<blob %d bytes>", len(v.bs))
	default:
		return "<invalid>"
	}
}

// Equal reports SQL equality between two values. NULL is not equal to
// anything, including NULL. Numeric values compare across integer and
// floating point types.
func (v Value) Equal(o Value) bool {
	if v.null || o.null {
		return false
	}
	if v.typ.IsNumeric() && o.typ.IsNumeric() {
		if v.typ == Float64 || o.typ == Float64 {
			return v.Float64() == o.Float64()
		}
		return v.i64 == o.i64
	}
	if v.typ != o.typ {
		return false
	}
	switch v.typ {
	case Bool:
		return v.b == o.b
	case String:
		return v.s == o.s
	case Blob:
		return string(v.bs) == string(o.bs)
	}
	return false
}

// Cast converts the value to the target type following SQL cast
// semantics. NULL casts to NULL of any type.
func (v Value) Cast(to Type) (Value, error) {
	if v.null {
		return Null(), nil
	}
	if v.typ == to {
		return v, nil
	}
	switch to {
	case Bool:
		switch v.typ {
		case Int32, Int64:
			return NewBool(v.i64 != 0), nil
		}
	case Int32:
		switch v.typ {
		case Int64:
			return NewInt32(int32(v.i64)), nil
		case Float64:
			return NewInt32(int32(v.f64)), nil
		case Bool:
			if v.b {
				return NewInt32(1), nil
			}
			return NewInt32(0), nil
		case String:
			n, err := strconv.ParseInt(v.s, 10, 32)
			if err != nil {
				return Null(), fmt.Errorf("cast %q to INTEGER: %w", v.s, err)
			}
			return NewInt32(int32(n)), nil
		}
	case Int64:
		switch v.typ {
		case Int32:
			return NewInt64(v.i64), nil
		case Float64:
			return NewInt64(int64(v.f64)), nil
		case Bool:
			if v.b {
				return NewInt64(1), nil
			}
			return NewInt64(0), nil
		case String:
			n, err := strconv.ParseInt(v.s, 10, 64)
			if err != nil {
				return Null(), fmt.Errorf("cast %q to BIGINT: %w", v.s, err)
			}
			return NewInt64(n), nil
		}
	case Float64:
		switch v.typ {
		case Int32, Int64:
			return NewFloat64(float64(v.i64)), nil
		case String:
			f, err := strconv.ParseFloat(v.s, 64)
			if err != nil {
				return Null(), fmt.Errorf("cast %q to DOUBLE: %w", v.s, err)
			}
			return NewFloat64(f), nil
		}
	case String:
		return NewString(v.String()), nil
	case Blob:
		if v.typ == String {
			return NewBlob([]byte(v.s)), nil
		}
	}
	return Null(), fmt.Errorf("unsupported cast from %s to %s", v.typ, to)
}

// Compare orders two non-NULL values of comparable types, returning
// -1, 0 or +1. Numeric types compare across widths. It returns an
// error for incomparable type pairs.
//
// Floating point comparison is a total order: NaN compares greater
// than every non-NaN value (so it sorts last ascending, first
// descending) and equal to itself. IEEE comparison makes NaN
// incomparable, which is a non-transitive less-function under
// sort.Slice — ORDER BY over NaN-bearing data would be
// nondeterministic without this.
func (v Value) Compare(o Value) (int, error) {
	if v.null || o.null {
		return 0, fmt.Errorf("cannot compare NULL values")
	}
	if v.typ.IsNumeric() && o.typ.IsNumeric() {
		if v.typ == Float64 || o.typ == Float64 {
			a, b := v.Float64(), o.Float64()
			an, bn := math.IsNaN(a), math.IsNaN(b)
			switch {
			case an && bn:
				return 0, nil
			case an:
				return 1, nil
			case bn:
				return -1, nil
			case a < b:
				return -1, nil
			case a > b:
				return 1, nil
			}
			return 0, nil
		}
		switch {
		case v.i64 < o.i64:
			return -1, nil
		case v.i64 > o.i64:
			return 1, nil
		}
		return 0, nil
	}
	if v.typ != o.typ {
		return 0, fmt.Errorf("cannot compare %s with %s", v.typ, o.typ)
	}
	switch v.typ {
	case String:
		switch {
		case v.s < o.s:
			return -1, nil
		case v.s > o.s:
			return 1, nil
		}
		return 0, nil
	case Bool:
		switch {
		case !v.b && o.b:
			return -1, nil
		case v.b && !o.b:
			return 1, nil
		}
		return 0, nil
	}
	return 0, fmt.Errorf("type %s is not orderable", v.typ)
}
