package vector

import "fmt"

// Chunk is a horizontal batch of column vectors with equal lengths.
// Chunks are the unit of data flow between execution operators.
type Chunk struct {
	cols []*Vector
}

// NewChunk builds a chunk from column vectors. All vectors must have
// the same length.
func NewChunk(cols ...*Vector) *Chunk {
	if len(cols) > 1 {
		n := cols[0].Len()
		for _, c := range cols[1:] {
			if c.Len() != n {
				panic(fmt.Sprintf("NewChunk: column length mismatch %d vs %d", c.Len(), n))
			}
		}
	}
	return &Chunk{cols: cols}
}

// NumCols returns the number of columns.
func (c *Chunk) NumCols() int { return len(c.cols) }

// NumRows returns the number of rows (0 for a chunk with no columns).
func (c *Chunk) NumRows() int {
	if len(c.cols) == 0 {
		return 0
	}
	return c.cols[0].Len()
}

// Col returns column i.
func (c *Chunk) Col(i int) *Vector { return c.cols[i] }

// Cols returns the underlying column slice.
func (c *Chunk) Cols() []*Vector { return c.cols }

// Row materializes row i as a value slice.
func (c *Chunk) Row(i int) []Value {
	out := make([]Value, len(c.cols))
	for j, col := range c.cols {
		out[j] = col.Get(i)
	}
	return out
}

// Gather returns a new chunk with the rows selected by sel.
func (c *Chunk) Gather(sel []int) *Chunk {
	cols := make([]*Vector, len(c.cols))
	for i, col := range c.cols {
		cols[i] = col.Gather(sel)
	}
	return &Chunk{cols: cols}
}

// Slice returns a chunk view of rows [from, to).
func (c *Chunk) Slice(from, to int) *Chunk {
	cols := make([]*Vector, len(c.cols))
	for i, col := range c.cols {
		cols[i] = col.Slice(from, to)
	}
	return &Chunk{cols: cols}
}

// Table is a fully materialized, named, typed set of columns: the form
// in which UDFs receive and return data, and in which query results
// are surfaced. Unlike Chunk it carries column names.
type Table struct {
	Names []string
	Cols  []*Vector
}

// NewTable builds a table, validating that names and columns align and
// that all columns have equal length.
func NewTable(names []string, cols []*Vector) (*Table, error) {
	if len(names) != len(cols) {
		return nil, fmt.Errorf("table: %d names for %d columns", len(names), len(cols))
	}
	if len(cols) > 0 {
		n := cols[0].Len()
		for i, c := range cols[1:] {
			if c.Len() != n {
				return nil, fmt.Errorf("table: column %q length %d != %d", names[i+1], c.Len(), n)
			}
		}
	}
	return &Table{Names: names, Cols: cols}, nil
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Cols) }

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, n := range t.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Column returns the named column, or nil when absent.
func (t *Table) Column(name string) *Vector {
	if i := t.ColumnIndex(name); i >= 0 {
		return t.Cols[i]
	}
	return nil
}

// AppendChunk appends the rows of ch to the table. Column types and
// arity must match.
func (t *Table) AppendChunk(ch *Chunk) error {
	if ch.NumCols() != len(t.Cols) {
		return fmt.Errorf("table append: %d columns, chunk has %d", len(t.Cols), ch.NumCols())
	}
	for i, col := range t.Cols {
		col.AppendVector(ch.Col(i))
	}
	return nil
}

// Chunk returns the table's columns as a single chunk (no copy).
func (t *Table) Chunk() *Chunk { return &Chunk{cols: t.Cols} }
