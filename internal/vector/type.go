// Package vector implements the typed column vectors that flow through
// the vectorized execution engine. A Vector holds a single column of
// values of one logical type together with an optional null mask.
// Operators exchange Chunks, which are batches of equally sized vectors
// capped at DefaultChunkSize rows.
package vector

import "fmt"

// Type identifies the logical type of a column or value.
type Type uint8

// Logical column types supported by the engine.
const (
	// Invalid is the zero Type; it is never a valid column type.
	Invalid Type = iota
	// Bool is a boolean column.
	Bool
	// Int32 is a 32-bit signed integer column.
	Int32
	// Int64 is a 64-bit signed integer column.
	Int64
	// Float64 is a double-precision floating point column.
	Float64
	// String is a variable-length UTF-8 string column.
	String
	// Blob is a variable-length binary column.
	Blob
)

// DefaultChunkSize is the number of rows per chunk exchanged between
// vectorized operators. It matches the small-vector designs of
// MonetDB/X100-style engines: large enough to amortize interpretation
// overhead, small enough to stay cache resident.
const DefaultChunkSize = 2048

// String returns the SQL-facing name of the type.
func (t Type) String() string {
	switch t {
	case Bool:
		return "BOOLEAN"
	case Int32:
		return "INTEGER"
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "VARCHAR"
	case Blob:
		return "BLOB"
	default:
		return fmt.Sprintf("INVALID(%d)", uint8(t))
	}
}

// IsNumeric reports whether the type participates in arithmetic.
func (t Type) IsNumeric() bool {
	switch t {
	case Int32, Int64, Float64:
		return true
	}
	return false
}

// FixedWidth returns the on-disk width in bytes for fixed-width types
// and 0 for variable-width types (String, Blob).
func (t Type) FixedWidth() int {
	switch t {
	case Bool:
		return 1
	case Int32:
		return 4
	case Int64, Float64:
		return 8
	default:
		return 0
	}
}

// TypeFromName parses a SQL type name (case-insensitive aliases
// included) into a Type. It returns Invalid and false for unknown
// names.
func TypeFromName(name string) (Type, bool) {
	switch normalizeTypeName(name) {
	case "BOOLEAN", "BOOL":
		return Bool, true
	case "INTEGER", "INT", "INT32":
		return Int32, true
	case "BIGINT", "INT64", "LONG":
		return Int64, true
	case "DOUBLE", "FLOAT", "FLOAT64", "REAL":
		return Float64, true
	case "VARCHAR", "STRING", "TEXT", "CHAR":
		return String, true
	case "BLOB", "BYTEA", "BINARY":
		return Blob, true
	}
	return Invalid, false
}

func normalizeTypeName(name string) string {
	b := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '(' {
			// Strip length parameters such as VARCHAR(32).
			break
		}
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		b = append(b, c)
	}
	return string(b)
}

// CommonNumeric returns the widest numeric type needed to combine a and
// b in arithmetic, following SQL-style implicit promotion
// (INT32 < INT64 < FLOAT64). It returns Invalid and false when either
// side is non-numeric.
func CommonNumeric(a, b Type) (Type, bool) {
	if !a.IsNumeric() || !b.IsNumeric() {
		return Invalid, false
	}
	if a == Float64 || b == Float64 {
		return Float64, true
	}
	if a == Int64 || b == Int64 {
		return Int64, true
	}
	return Int32, true
}
