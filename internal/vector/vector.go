package vector

import "fmt"

// Vector is a single column of values of one type with an optional
// null mask. Exactly one of the typed payload slices is in use,
// selected by the vector's type. The zero Vector is not usable; create
// vectors with New or the typed constructors.
type Vector struct {
	typ    Type
	length int
	// nulls is nil when the vector contains no NULLs. When non-nil it
	// has the vector's length and nulls[i] marks row i as NULL.
	nulls []bool

	bools []bool
	i32   []int32
	i64   []int64
	f64   []float64
	strs  []string
	blobs [][]byte
}

// New returns an empty vector of the given type with capacity hint n.
func New(t Type, n int) *Vector {
	v := &Vector{typ: t}
	switch t {
	case Bool:
		v.bools = make([]bool, 0, n)
	case Int32:
		v.i32 = make([]int32, 0, n)
	case Int64:
		v.i64 = make([]int64, 0, n)
	case Float64:
		v.f64 = make([]float64, 0, n)
	case String:
		v.strs = make([]string, 0, n)
	case Blob:
		v.blobs = make([][]byte, 0, n)
	default:
		panic(fmt.Sprintf("vector.New: invalid type %v", t))
	}
	return v
}

// FromBools wraps a bool slice as a Bool vector without copying.
func FromBools(data []bool) *Vector {
	return &Vector{typ: Bool, length: len(data), bools: data}
}

// FromInt32s wraps an int32 slice as an Int32 vector without copying.
func FromInt32s(data []int32) *Vector {
	return &Vector{typ: Int32, length: len(data), i32: data}
}

// FromInt64s wraps an int64 slice as an Int64 vector without copying.
func FromInt64s(data []int64) *Vector {
	return &Vector{typ: Int64, length: len(data), i64: data}
}

// FromFloat64s wraps a float64 slice as a Float64 vector without copying.
func FromFloat64s(data []float64) *Vector {
	return &Vector{typ: Float64, length: len(data), f64: data}
}

// FromStrings wraps a string slice as a String vector without copying.
func FromStrings(data []string) *Vector {
	return &Vector{typ: String, length: len(data), strs: data}
}

// FromBlobs wraps a [][]byte slice as a Blob vector without copying.
func FromBlobs(data [][]byte) *Vector {
	return &Vector{typ: Blob, length: len(data), blobs: data}
}

// Constant returns a vector of n copies of val. A NULL val yields an
// all-NULL Float64-typed vector unless typeHint is valid. The payload
// is bulk-filled rather than appended value by value.
func Constant(val Value, n int, typeHint Type) *Vector {
	t := val.Type()
	if t == Invalid {
		t = typeHint
		if t == Invalid {
			t = Float64
		}
		v := newZeroed(t, n)
		v.nulls = make([]bool, n)
		for i := range v.nulls {
			v.nulls[i] = true
		}
		return v
	}
	v := newZeroed(t, n)
	switch t {
	case Bool:
		x := val.Bool()
		for i := range v.bools {
			v.bools[i] = x
		}
	case Int32:
		x := int32(val.Int64())
		for i := range v.i32 {
			v.i32[i] = x
		}
	case Int64:
		x := val.Int64()
		for i := range v.i64 {
			v.i64[i] = x
		}
	case Float64:
		x := val.Float64()
		for i := range v.f64 {
			v.f64[i] = x
		}
	case String:
		x := val.Str()
		for i := range v.strs {
			v.strs[i] = x
		}
	case Blob:
		x := val.Bytes()
		for i := range v.blobs {
			v.blobs[i] = x
		}
	}
	return v
}

// newZeroed returns a vector of n zero values of type t.
func newZeroed(t Type, n int) *Vector {
	v := &Vector{typ: t, length: n}
	switch t {
	case Bool:
		v.bools = make([]bool, n)
	case Int32:
		v.i32 = make([]int32, n)
	case Int64:
		v.i64 = make([]int64, n)
	case Float64:
		v.f64 = make([]float64, n)
	case String:
		v.strs = make([]string, n)
	case Blob:
		v.blobs = make([][]byte, n)
	default:
		panic(fmt.Sprintf("vector.newZeroed: invalid type %v", t))
	}
	return v
}

// Type returns the vector's type.
func (v *Vector) Type() Type { return v.typ }

// Len returns the number of rows.
func (v *Vector) Len() int { return v.length }

// HasNulls reports whether the vector contains at least one NULL.
func (v *Vector) HasNulls() bool {
	if v.nulls == nil {
		return false
	}
	for _, n := range v.nulls {
		if n {
			return true
		}
	}
	return false
}

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool {
	return v.nulls != nil && v.nulls[i]
}

// SetNull marks row i as NULL.
func (v *Vector) SetNull(i int) {
	v.ensureNulls()
	v.nulls[i] = true
}

func (v *Vector) ensureNulls() {
	if v.nulls == nil {
		v.nulls = make([]bool, v.length, max(v.length, 8))
	}
	for len(v.nulls) < v.length {
		v.nulls = append(v.nulls, false)
	}
}

// Bools returns the Bool payload. The slice aliases vector storage.
func (v *Vector) Bools() []bool { return v.bools }

// Int32s returns the Int32 payload. The slice aliases vector storage.
func (v *Vector) Int32s() []int32 { return v.i32 }

// Int64s returns the Int64 payload. The slice aliases vector storage.
func (v *Vector) Int64s() []int64 { return v.i64 }

// Float64s returns the Float64 payload. The slice aliases vector storage.
func (v *Vector) Float64s() []float64 { return v.f64 }

// Strings returns the String payload. The slice aliases vector storage.
func (v *Vector) Strings() []string { return v.strs }

// Blobs returns the Blob payload. The slice aliases vector storage.
func (v *Vector) Blobs() [][]byte { return v.blobs }

// Nulls returns the null mask, or nil when the vector has no NULLs.
func (v *Vector) Nulls() []bool { return v.nulls }

// Get returns the value at row i.
func (v *Vector) Get(i int) Value {
	if v.IsNull(i) {
		return Null()
	}
	switch v.typ {
	case Bool:
		return NewBool(v.bools[i])
	case Int32:
		return NewInt32(v.i32[i])
	case Int64:
		return NewInt64(v.i64[i])
	case Float64:
		return NewFloat64(v.f64[i])
	case String:
		return NewString(v.strs[i])
	case Blob:
		return NewBlob(v.blobs[i])
	}
	return Null()
}

// AppendValue appends val to the vector, casting numerics if needed.
// Appending NULL grows the null mask.
func (v *Vector) AppendValue(val Value) {
	if val.IsNull() {
		v.appendZero()
		v.ensureNulls()
		v.nulls[v.length-1] = true
		return
	}
	switch v.typ {
	case Bool:
		v.bools = append(v.bools, val.Bool())
	case Int32:
		v.i32 = append(v.i32, int32(val.Int64()))
	case Int64:
		v.i64 = append(v.i64, val.Int64())
	case Float64:
		v.f64 = append(v.f64, val.Float64())
	case String:
		v.strs = append(v.strs, val.Str())
	case Blob:
		v.blobs = append(v.blobs, val.Bytes())
	}
	v.length++
	if v.nulls != nil {
		v.nulls = append(v.nulls, false)
	}
}

func (v *Vector) appendZero() {
	switch v.typ {
	case Bool:
		v.bools = append(v.bools, false)
	case Int32:
		v.i32 = append(v.i32, 0)
	case Int64:
		v.i64 = append(v.i64, 0)
	case Float64:
		v.f64 = append(v.f64, 0)
	case String:
		v.strs = append(v.strs, "")
	case Blob:
		v.blobs = append(v.blobs, nil)
	}
	v.length++
}

// AppendRowFrom appends row i of src, which must have the same type,
// without boxing the value. It is the row-at-a-time hot path of merge
// operators.
func (v *Vector) AppendRowFrom(src *Vector, i int) {
	if src.nulls != nil && src.nulls[i] {
		v.appendZero()
		v.ensureNulls()
		v.nulls[v.length-1] = true
		return
	}
	switch v.typ {
	case Bool:
		v.bools = append(v.bools, src.bools[i])
	case Int32:
		v.i32 = append(v.i32, src.i32[i])
	case Int64:
		v.i64 = append(v.i64, src.i64[i])
	case Float64:
		v.f64 = append(v.f64, src.f64[i])
	case String:
		v.strs = append(v.strs, src.strs[i])
	case Blob:
		v.blobs = append(v.blobs, src.blobs[i])
	}
	v.length++
	if v.nulls != nil {
		v.nulls = append(v.nulls, false)
	}
}

// AppendVector appends all rows of o (which must have the same type).
func (v *Vector) AppendVector(o *Vector) {
	if v.typ != o.typ {
		panic(fmt.Sprintf("AppendVector: type mismatch %v vs %v", v.typ, o.typ))
	}
	switch v.typ {
	case Bool:
		v.bools = append(v.bools, o.bools...)
	case Int32:
		v.i32 = append(v.i32, o.i32...)
	case Int64:
		v.i64 = append(v.i64, o.i64...)
	case Float64:
		v.f64 = append(v.f64, o.f64...)
	case String:
		v.strs = append(v.strs, o.strs...)
	case Blob:
		v.blobs = append(v.blobs, o.blobs...)
	}
	oldLen := v.length
	v.length += o.length
	if v.nulls != nil || o.nulls != nil {
		v.ensureNullsTo(oldLen)
		if o.nulls != nil {
			v.nulls = append(v.nulls, o.nulls...)
		} else {
			for i := 0; i < o.length; i++ {
				v.nulls = append(v.nulls, false)
			}
		}
	}
}

func (v *Vector) ensureNullsTo(n int) {
	if v.nulls == nil {
		v.nulls = make([]bool, n)
		return
	}
	for len(v.nulls) < n {
		v.nulls = append(v.nulls, false)
	}
}

// Slice returns a new vector containing rows [from, to). Payload
// slices alias the original storage.
func (v *Vector) Slice(from, to int) *Vector {
	out := &Vector{typ: v.typ, length: to - from}
	switch v.typ {
	case Bool:
		out.bools = v.bools[from:to]
	case Int32:
		out.i32 = v.i32[from:to]
	case Int64:
		out.i64 = v.i64[from:to]
	case Float64:
		out.f64 = v.f64[from:to]
	case String:
		out.strs = v.strs[from:to]
	case Blob:
		out.blobs = v.blobs[from:to]
	}
	if v.nulls != nil {
		out.nulls = v.nulls[from:to]
	}
	return out
}

// Gather returns a new vector containing the rows selected by sel, in
// sel order. Row indices may repeat.
func (v *Vector) Gather(sel []int) *Vector {
	out := New(v.typ, len(sel))
	switch v.typ {
	case Bool:
		for _, i := range sel {
			out.bools = append(out.bools, v.bools[i])
		}
	case Int32:
		for _, i := range sel {
			out.i32 = append(out.i32, v.i32[i])
		}
	case Int64:
		for _, i := range sel {
			out.i64 = append(out.i64, v.i64[i])
		}
	case Float64:
		for _, i := range sel {
			out.f64 = append(out.f64, v.f64[i])
		}
	case String:
		for _, i := range sel {
			out.strs = append(out.strs, v.strs[i])
		}
	case Blob:
		for _, i := range sel {
			out.blobs = append(out.blobs, v.blobs[i])
		}
	}
	out.length = len(sel)
	if v.nulls != nil {
		out.nulls = make([]bool, len(sel))
		for j, i := range sel {
			out.nulls[j] = v.nulls[i]
		}
	}
	return out
}

// Clone returns a deep copy of the vector. Blob payload bytes are
// shared (blobs are treated as immutable once stored).
func (v *Vector) Clone() *Vector {
	out := &Vector{typ: v.typ, length: v.length}
	switch v.typ {
	case Bool:
		out.bools = append([]bool(nil), v.bools...)
	case Int32:
		out.i32 = append([]int32(nil), v.i32...)
	case Int64:
		out.i64 = append([]int64(nil), v.i64...)
	case Float64:
		out.f64 = append([]float64(nil), v.f64...)
	case String:
		out.strs = append([]string(nil), v.strs...)
	case Blob:
		out.blobs = append([][]byte(nil), v.blobs...)
	}
	if v.nulls != nil {
		out.nulls = append([]bool(nil), v.nulls...)
	}
	return out
}

// Cast converts the whole vector to the target type. NULL rows stay
// NULL. Unsupported casts return an error.
func (v *Vector) Cast(to Type) (*Vector, error) {
	if v.typ == to {
		return v, nil
	}
	out := New(to, v.length)
	for i := 0; i < v.length; i++ {
		if v.IsNull(i) {
			out.AppendValue(Null())
			continue
		}
		cv, err := v.Get(i).Cast(to)
		if err != nil {
			return nil, fmt.Errorf("cast row %d: %w", i, err)
		}
		out.AppendValue(cv)
	}
	return out, nil
}

// AsFloat64s returns the vector as a float64 slice, converting numeric
// types. NULL rows become 0. It errors on non-numeric vectors.
func (v *Vector) AsFloat64s() ([]float64, error) {
	switch v.typ {
	case Float64:
		return v.f64, nil
	case Int32:
		out := make([]float64, v.length)
		for i, x := range v.i32 {
			out[i] = float64(x)
		}
		return out, nil
	case Int64:
		out := make([]float64, v.length)
		for i, x := range v.i64 {
			out[i] = float64(x)
		}
		return out, nil
	case Bool:
		out := make([]float64, v.length)
		for i, x := range v.bools {
			if x {
				out[i] = 1
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("vector type %s is not numeric", v.typ)
}

// AsInt32s returns the vector as an int32 slice, converting numeric
// types with truncation. It errors on non-numeric vectors.
func (v *Vector) AsInt32s() ([]int32, error) {
	switch v.typ {
	case Int32:
		return v.i32, nil
	case Int64:
		out := make([]int32, v.length)
		for i, x := range v.i64 {
			out[i] = int32(x)
		}
		return out, nil
	case Float64:
		out := make([]int32, v.length)
		for i, x := range v.f64 {
			out[i] = int32(x)
		}
		return out, nil
	}
	return nil, fmt.Errorf("vector type %s is not an integer type", v.typ)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
