package cliutil

import "testing"

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"0", 0, false},
		{"123", 123, false},
		{"64KB", 64 << 10, false},
		{"4MB", 4 << 20, false},
		{"2gb", 2 << 30, false},
		{"8m", 8 << 20, false},
		{" 16 K ", 16 << 10, false},
		{"512B", 512, false},
		{"-1", 0, true},
		{"bogus", 0, true},
		{"", 0, true},
		{"MB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseByteSize(c.in)
		if c.err {
			if err == nil {
				t.Errorf("%q: expected error, got %d", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %d, want %d", c.in, got, c.want)
		}
	}
}
