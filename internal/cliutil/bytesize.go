// Package cliutil holds small helpers shared by the command-line
// binaries.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseByteSize parses a byte count with an optional KB/MB/GB suffix
// or K/M/G shorthand. Multipliers are binary (KB = 1024 bytes,
// MB = 1024², GB = 1024³). Negative sizes are rejected.
func ParseByteSize(s string) (int64, error) {
	orig := s
	s = strings.TrimSpace(strings.ToUpper(s))
	mult := int64(1)
	for _, suf := range []struct {
		s string
		m int64
	}{{"GB", 1 << 30}, {"MB", 1 << 20}, {"KB", 1 << 10}, {"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10}, {"B", 1}} {
		if strings.HasSuffix(s, suf.s) {
			s = strings.TrimSuffix(s, suf.s)
			mult = suf.m
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", orig)
	}
	return n * mult, nil
}
