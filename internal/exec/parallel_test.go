package exec

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// buildMultiSegTable creates a table spanning several storage segments
// so morsel dispatch has real fan-out.
func buildMultiSegTable(t *testing.T, rows int) *catalog.Table {
	t.Helper()
	cat := catalog.New()
	tab, err := cat.CreateTable("t", catalog.Schema{
		{Name: "id", Type: vector.Int64},
		{Name: "g", Type: vector.Int32},
		{Name: "v", Type: vector.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, rows)
	gs := make([]int32, rows)
	vs := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		gs[i] = int32(i % 7)
		vs[i] = float64(i%101) - 50
	}
	if err := tab.Data.AppendChunk(vector.NewChunk(
		vector.FromInt64s(ids), vector.FromInt32s(gs), vector.FromFloat64s(vs))); err != nil {
		t.Fatal(err)
	}
	return tab
}

func gtPred(col int, typ vector.Type, threshold int64) plan.Expr {
	return &plan.BinOp{Op: sql.OpGt, Left: colRef(col, typ),
		Right: &plan.Const{Val: vector.NewInt64(threshold), Typ: vector.Int64}, Typ: vector.Bool}
}

// TestBuildSelectsParallelOperators asserts eligible plan shapes get
// the morsel-parallel operators rather than silently staying serial.
func TestBuildSelectsParallelOperators(t *testing.T) {
	tab := buildMultiSegTable(t, 100)
	filter := &plan.Filter{Pred: gtPred(0, vector.Int64, 10), Child: &plan.Scan{Table: tab}}

	op, err := buildWith(filter, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*parallelPipeOp); !ok {
		t.Fatalf("filter over scan built %T, want *parallelPipeOp", op)
	}

	agg := &plan.Aggregate{
		GroupBy:    []plan.Expr{colRef(1, vector.Int32)},
		GroupNames: []string{"g"},
		Aggs:       []plan.AggSpec{{Kind: plan.AggCount, Name: "n", Typ: vector.Int64}},
		Child:      filter,
	}
	op, err = buildWith(agg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*parallelAggOp); !ok {
		t.Fatalf("aggregate built %T, want *parallelAggOp", op)
	}

	// DISTINCT aggregates parallelize too: accumulation is deferred to
	// finalization, so per-worker distinct key-sets union losslessly.
	distinctAgg := &plan.Aggregate{
		Aggs:  []plan.AggSpec{{Kind: plan.AggCount, Arg: colRef(1, vector.Int32), Distinct: true, Name: "n", Typ: vector.Int64}},
		Child: &plan.Scan{Table: tab},
	}
	op, err = buildWith(distinctAgg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*parallelAggOp); !ok {
		t.Fatalf("distinct aggregate built %T, want *parallelAggOp", op)
	}

	sortNode := &plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(2, vector.Float64)}},
		Child: filter,
	}
	op, err = buildWith(sortNode, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*parallelSortOp); !ok {
		t.Fatalf("sort over pipeline built %T, want *parallelSortOp", op)
	}

	distinct := &plan.Distinct{Child: filter}
	op, err = buildWith(distinct, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*parallelAggOp); !ok {
		t.Fatalf("DISTINCT built %T, want *parallelAggOp (group-by rewrite)", op)
	}

	join := &plan.HashJoin{
		Kind:      sql.InnerJoin,
		Left:      &plan.Scan{Table: tab},
		Right:     &plan.Scan{Table: tab},
		LeftKeys:  []plan.Expr{colRef(1, vector.Int32)},
		RightKeys: []plan.Expr{colRef(1, vector.Int32)},
	}
	op, err = buildWith(join, 4)
	if err != nil {
		t.Fatal(err)
	}
	jop, ok := op.(*hashJoinOp)
	if !ok || jop.probePipe == nil {
		t.Fatalf("join built %T (probePipe set: %v), want parallel-probe *hashJoinOp", op, ok && jop.probePipe != nil)
	}
}

// TestParallelPipePreservesOrder runs the same filtered scan serially
// and at several worker counts; output must be byte-identical.
func TestParallelPipePreservesOrder(t *testing.T) {
	tab := buildMultiSegTable(t, 3*vector.DefaultChunkSize+17)
	node := plan.Node(&plan.Filter{Pred: gtPred(2, vector.Float64, 0), Child: &plan.Scan{Table: tab}})

	serial, err := Run(node, &Context{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := Run(node, &Context{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par.NumRows() != serial.NumRows() {
			t.Fatalf("workers=%d: %d rows, serial %d", workers, par.NumRows(), serial.NumRows())
		}
		for i := 0; i < serial.NumRows(); i++ {
			if par.Cols[0].Int64s()[i] != serial.Cols[0].Int64s()[i] {
				t.Fatalf("workers=%d: row %d id %d, serial %d",
					workers, i, par.Cols[0].Int64s()[i], serial.Cols[0].Int64s()[i])
			}
		}
	}
}

// TestParallelAggMatchesSerial checks partitioned aggregation merges
// back to the serial result, including first-appearance output order.
func TestParallelAggMatchesSerial(t *testing.T) {
	tab := buildMultiSegTable(t, 4*vector.DefaultChunkSize)
	node := plan.Node(&plan.Aggregate{
		GroupBy:    []plan.Expr{colRef(1, vector.Int32)},
		GroupNames: []string{"g"},
		Aggs: []plan.AggSpec{
			{Kind: plan.AggCount, Name: "n", Typ: vector.Int64},
			{Kind: plan.AggSum, Arg: colRef(2, vector.Float64), Name: "s", Typ: vector.Float64},
			{Kind: plan.AggMin, Arg: colRef(0, vector.Int64), Name: "mn", Typ: vector.Int64},
			{Kind: plan.AggMax, Arg: colRef(0, vector.Int64), Name: "mx", Typ: vector.Int64},
		},
		Child: &plan.Scan{Table: tab},
	})
	serial, err := Run(node, &Context{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		par, err := Run(node, &Context{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if par.NumRows() != serial.NumRows() {
			t.Fatalf("workers=%d: %d groups, serial %d", workers, par.NumRows(), serial.NumRows())
		}
		for i := 0; i < serial.NumRows(); i++ {
			for c := 0; c < serial.NumCols(); c++ {
				if par.Cols[c].Get(i).String() != serial.Cols[c].Get(i).String() {
					t.Fatalf("workers=%d row %d col %d: %v, serial %v",
						workers, i, c, par.Cols[c].Get(i), serial.Cols[c].Get(i))
				}
			}
		}
	}
}

// TestParallelGlobalAggEmptyInput: a global aggregate over an empty
// relation must still produce its single row under parallel execution.
func TestParallelGlobalAggEmptyInput(t *testing.T) {
	tab := buildMultiSegTable(t, 100)
	node := plan.Node(&plan.Aggregate{
		Aggs: []plan.AggSpec{
			{Kind: plan.AggCount, Name: "n", Typ: vector.Int64},
			{Kind: plan.AggSum, Arg: colRef(0, vector.Int64), Name: "s", Typ: vector.Int64},
		},
		Child: &plan.Filter{Pred: gtPred(0, vector.Int64, 1_000_000), Child: &plan.Scan{Table: tab}},
	})
	out, err := Run(node, &Context{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", out.NumRows())
	}
	if out.Cols[0].Get(0).Int64() != 0 || !out.Cols[1].IsNull(0) {
		t.Fatalf("empty global agg = (%v, %v), want (0, NULL)", out.Cols[0].Get(0), out.Cols[1].Get(0))
	}
}

// errExpr is a plan expression whose evaluation always fails, for
// exercising worker error propagation.
type errExpr struct{}

func (errExpr) Type() vector.Type { return vector.Bool }

func TestParallelErrorPropagation(t *testing.T) {
	tab := buildMultiSegTable(t, 4*vector.DefaultChunkSize)
	node := plan.Node(&plan.Filter{Pred: errExpr{}, Child: &plan.Scan{Table: tab}})
	if _, err := Run(node, &Context{Parallelism: 4}); err == nil {
		t.Fatal("worker error must propagate to the caller")
	}
}

// TestOpenErrorReleasesWorkers: a query whose Open fails after a
// parallel subtree already started workers (join build-side error)
// must not leak the worker goroutines.
func TestOpenErrorReleasesWorkers(t *testing.T) {
	tab := buildMultiSegTable(t, 4*vector.DefaultChunkSize)
	join := &plan.HashJoin{
		Kind:      sql.InnerJoin,
		Left:      &plan.Scan{Table: tab},
		Right:     &plan.Filter{Pred: errExpr{}, Child: &plan.Scan{Table: tab}},
		LeftKeys:  []plan.Expr{colRef(0, vector.Int64)},
		RightKeys: []plan.Expr{colRef(0, vector.Int64)},
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		if _, err := Run(join, &Context{Parallelism: 4}); err == nil {
			t.Fatal("build-side error must fail the query")
		}
	}
	// Close is synchronous, but exiting goroutines may still be
	// counted for an instant; retry briefly.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after 20 failed queries",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestOrderedDriverOrdering(t *testing.T) {
	const n = 64
	drv := startOrdered(n, 8, nil, func(_, i int) (*vector.Chunk, error) {
		if i%3 == 0 {
			return nil, nil // simulate fully filtered morsels
		}
		return vector.NewChunk(vector.FromInt64s([]int64{int64(i)})), nil
	})
	defer drv.abort()
	want := int64(-1)
	for {
		ch, err := drv.next()
		if err != nil {
			t.Fatal(err)
		}
		if ch == nil {
			break
		}
		got := ch.Col(0).Int64s()[0]
		if got <= want {
			t.Fatalf("out of order: %d after %d", got, want)
		}
		want = got
	}
	// Morsel 63 is filtered (63%3 == 0); the last emitted must be 62.
	if want != 62 {
		t.Fatalf("last morsel %d, want 62", want)
	}
}

// TestOrderedDriverBoundedRunAhead: workers must not race through the
// whole input when the consumer stops early (LIMIT above a parallel
// pipeline). The token window bounds claims to runAhead + consumed.
func TestOrderedDriverBoundedRunAhead(t *testing.T) {
	const n, workers = 64, 2
	var calls atomic.Int64
	drv := startOrdered(n, workers, nil, func(_, i int) (*vector.Chunk, error) {
		calls.Add(1)
		return vector.NewChunk(vector.FromInt64s([]int64{int64(i)})), nil
	})
	if ch, err := drv.next(); err != nil || ch == nil {
		t.Fatalf("first morsel: %v %v", ch, err)
	}
	drv.abort()
	// One consumed slot returns one token: at most 2*workers + 1
	// morsels may ever have been claimed.
	if got := calls.Load(); got > 2*workers+1 {
		t.Fatalf("%d morsels computed after consuming 1; run-ahead unbounded", got)
	}
}

func TestGroupIndexFastPaths(t *testing.T) {
	// Single int64 key: dense ids in first-appearance order, NULL gets
	// its own group.
	col := vector.New(vector.Int64, 5)
	col.AppendValue(vector.NewInt64(7))
	col.AppendValue(vector.NewInt64(3))
	col.AppendValue(vector.Null())
	col.AppendValue(vector.NewInt64(7))
	col.AppendValue(vector.Null())
	gi := newGroupIndex([]vector.Type{vector.Int64})
	keys := []*vector.Vector{col}
	wantIDs := []int32{0, 1, 2, 0, 2}
	wantNew := []bool{true, true, true, false, false}
	for r := 0; r < col.Len(); r++ {
		id, created := gi.groupID(keys, r)
		if id != wantIDs[r] || created != wantNew[r] {
			t.Fatalf("row %d: (%d,%v), want (%d,%v)", r, id, created, wantIDs[r], wantNew[r])
		}
	}
	if gi.kind != keyKindInt {
		t.Fatalf("kind = %v, want keyKindInt", gi.kind)
	}

	// Single string key.
	sc := vector.FromStrings([]string{"a", "b", "a"})
	gs := newGroupIndex([]vector.Type{vector.String})
	if gs.kind != keyKindStr {
		t.Fatalf("kind = %v, want keyKindStr", gs.kind)
	}
	ids := make([]int32, 3)
	for r := 0; r < 3; r++ {
		ids[r], _ = gs.groupID([]*vector.Vector{sc}, r)
	}
	if ids[0] != 0 || ids[1] != 1 || ids[2] != 0 {
		t.Fatalf("string ids = %v", ids)
	}

	// Multi-column keys use the generic path.
	gm := newGroupIndex([]vector.Type{vector.Int64, vector.String})
	if gm.kind != keyKindBytes {
		t.Fatalf("kind = %v, want keyKindBytes", gm.kind)
	}
}

func TestAppendValueKeyMatchesRowKey(t *testing.T) {
	cols := []*vector.Vector{
		vector.FromInt64s([]int64{-5}),
		vector.FromInt32s([]int32{42}),
		vector.FromFloat64s([]float64{3.25}),
		vector.FromBools([]bool{true}),
		vector.FromStrings([]string{"xyz"}),
	}
	for _, c := range cols {
		rowKey := appendRowKey(nil, c, 0)
		valKey := appendValueKey(nil, c.Get(0))
		if string(rowKey) != string(valKey) {
			t.Fatalf("%s: value key %x != row key %x", c.Type(), valKey, rowKey)
		}
	}
	nv := vector.New(vector.Int64, 1)
	nv.AppendValue(vector.Null())
	if string(appendRowKey(nil, nv, 0)) != string(appendValueKey(nil, vector.Null())) {
		t.Fatal("NULL encodings differ")
	}
}

func TestConstantBulkFill(t *testing.T) {
	v := vector.Constant(vector.NewInt64(9), 1000, vector.Int64)
	if v.Len() != 1000 || v.Int64s()[999] != 9 || v.HasNulls() {
		t.Fatalf("constant vector wrong: len=%d", v.Len())
	}
	nv := vector.Constant(vector.Null(), 10, vector.Float64)
	if nv.Len() != 10 || !nv.IsNull(0) || !nv.IsNull(9) || nv.Type() != vector.Float64 {
		t.Fatal("NULL constant vector wrong")
	}
	if len(nv.Float64s()) != 10 {
		t.Fatalf("NULL constant payload length %d, want 10", len(nv.Float64s()))
	}
}
