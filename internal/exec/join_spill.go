// Grace-partitioned spill for the hash join's build side. When the
// build relation outgrows the query's memory budget, the build drain
// switches to hybrid grace mode:
//
//  1. Build rows partition by a hash of their equi-key. Partitions
//     spill largest-first (ties to the higher index) until the
//     resident set fits; later build rows append to their partition's
//     resident buffer or spill file directly.
//  2. Probe rows re-partition by the same hash on the left keys. Rows
//     landing in a memory-resident partition probe its hash index
//     immediately; rows of spilled partitions are deferred to
//     per-partition probe chunk lists. A spilled partition whose
//     build side still exceeds the budget when loaded re-partitions
//     recursively on the next hash nibble.
//  3. Because deferred output arrives partition-at-a-time — not in
//     probe order — every output row is tagged with the position the
//     in-memory join would have emitted it at: posKey packs
//     (probe chunk, output section, row) and buildSeq is the global
//     build row id. The whole output then flows through the shared
//     external-sort machinery keyed on (posKey, buildSeq), restoring
//     byte-identical in-memory emission order; that sort spills its
//     own runs under the same budget.
//
// The posKey section bits reproduce the in-memory per-chunk emission
// layout exactly: matched rows first (by probe row, then build row),
// then LEFT-join padded rows — unmatched-key rows before
// residual-rejected rows, each in probe-row order, which is the order
// the in-memory probe appends them in.
//
// The probe side stays morsel-parallel under spill when the plan
// probed in parallel: workers claim probe morsels and probe resident
// partitions concurrently, each tagging output through its own run
// builder (all runs merge in one order-restoring sort), and serialize
// only on routing deferred rows to spilled partitions. The sort makes
// worker scheduling an implementation detail, not a semantic one.
// Joins without equi-keys (cross products) and joins whose keys or
// residual contain UDFs never spill — they keep the in-memory path
// regardless of budget.
//
// The level-0 fan-out defaults to 16 partitions but widens (up to 256)
// when the planner estimated the build side large enough that one
// partitioning pass at 16 would still leave oversized partitions
// (plan.ExecHints.FanoutLog2); recursive re-partitioning then starts
// on the first hash nibble above the level-0 bits.
package exec

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"vexdb/internal/plan"
	"vexdb/internal/spill"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// posKey section bits. Probe chunk rows are far below 2^30.
const (
	unmatchedBit = int64(1) << 31 // padded (LEFT join) section of a chunk
	residualBit  = int64(1) << 30 // padded because the residual rejected every match
)

// spillableJoin reports whether the join can grace-partition: it
// needs equi-keys for partitioning, and UDF-free keys/residual (spill
// re-evaluates keys over spilled rows, and the residual runs
// partition-at-a-time rather than chunk-at-a-time).
func spillableJoin(spec *plan.HashJoin) bool {
	if len(spec.LeftKeys) == 0 {
		return false
	}
	if exprsHaveUDF(spec.LeftKeys) || exprsHaveUDF(spec.RightKeys) {
		return false
	}
	return spec.Extra == nil || !exprsHaveUDF([]plan.Expr{spec.Extra})
}

// joinIntKey reports whether the join uses the sign-extended
// single-integer key fast path (the same condition the in-memory
// index uses, decided from static key types).
func joinIntKey(spec *plan.HashJoin) bool {
	if len(spec.LeftKeys) != 1 || len(spec.RightKeys) != 1 {
		return false
	}
	lt, rt := spec.LeftKeys[0].Type(), spec.RightKeys[0].Type()
	intType := func(t vector.Type) bool { return t == vector.Int32 || t == vector.Int64 }
	return intType(lt) && intType(rt)
}

// joinKeyHash returns the partition hash of row r's equi-key and
// whether any key cell is NULL (NULL keys never match and are never
// partitioned). intKey selects the sign-extended single-integer fast
// path so int32 and int64 sides hash identically, mirroring the
// in-memory buildIdx64 fast path.
func joinKeyHash(keyVecs []*vector.Vector, r int, intKey bool, buf *[]byte) (uint64, bool) {
	if intKey {
		kv := keyVecs[0]
		if kv.IsNull(r) {
			return 0, true
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(intKeyAt(kv, r)))
		return hashKeyBytes(b[:]), false
	}
	k := (*buf)[:0]
	for _, kv := range keyVecs {
		if kv.IsNull(r) {
			return 0, true
		}
		k = appendRowKey(k, kv, r)
	}
	*buf = k
	return hashKeyBytes(k), false
}

// joinIndex is one partition's build-side hash index: the build rows,
// their global build ids, and the key lookup maps (the same fast/slow
// split the in-memory join uses).
type joinIndex struct {
	build  *vector.Chunk
	seq    []int64
	intKey bool
	idx64  map[int64][]int32
	idx    map[string][]int32
}

// newJoinIndex builds the index over a partition's build rows,
// evaluating the right key expressions over them.
func newJoinIndex(spec *plan.HashJoin, build *vector.Chunk, seq []int64, intKey bool) (*joinIndex, error) {
	ix := &joinIndex{build: build, seq: seq, intKey: intKey}
	n := build.NumRows()
	keyVecs := make([]*vector.Vector, len(spec.RightKeys))
	for i, k := range spec.RightKeys {
		v, err := Evaluate(k, build)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = v
	}
	if intKey {
		ix.idx64 = make(map[int64][]int32, n)
		kv := keyVecs[0]
		for r := 0; r < n; r++ {
			if kv.IsNull(r) {
				continue
			}
			ix.idx64[intKeyAt(kv, r)] = append(ix.idx64[intKeyAt(kv, r)], int32(r))
		}
		return ix, nil
	}
	ix.idx = make(map[string][]int32, n)
	var key []byte
	for r := 0; r < n; r++ {
		key = key[:0]
		null := false
		for _, kv := range keyVecs {
			if kv.IsNull(r) {
				null = true
				break
			}
			key = appendRowKey(key, kv, r)
		}
		if null {
			continue
		}
		ix.idx[string(key)] = append(ix.idx[string(key)], int32(r))
	}
	return ix, nil
}

// lookup returns the build rows matching probe row r (nil for NULL
// keys or no match).
func (ix *joinIndex) lookup(keyVecs []*vector.Vector, r int, buf *[]byte) []int32 {
	if ix == nil {
		return nil
	}
	if ix.intKey {
		kv := keyVecs[0]
		if kv.IsNull(r) {
			return nil
		}
		return ix.idx64[intKeyAt(kv, r)]
	}
	k := (*buf)[:0]
	for _, kv := range keyVecs {
		if kv.IsNull(r) {
			return nil
		}
		k = appendRowKey(k, kv, r)
	}
	*buf = k
	return ix.idx[string(k)]
}

// joinSpillPart is one grace partition of the join.
type joinSpillPart struct {
	// Resident build state (until/unless spilled).
	build []*vector.Vector
	seq   []int64
	bytes int64
	ix    *joinIndex // built once the drain completes

	spilled   bool
	buildBuf  *rowAppender // spilled: pending build rows [cols..., seq]
	buildRefs []spill.ChunkRef
	probeBuf  *rowAppender // spilled: deferred probe rows [cols..., posBase]
	probeRefs []spill.ChunkRef
}

// joinSpill is the state of a grace-partitioned join.
type joinSpill struct {
	ctx    *Context
	spec   *plan.HashJoin
	intKey bool

	buildTypes []vector.Type
	file       *spill.File // shared by all partitions' build/probe chunks
	parts      []joinSpillPart
	fanoutBits uint  // level-0 partition count is 1<<fanoutBits
	nextSeq    int64 // global build row counter (input order)

	// mu guards the deferred-probe routing (partition buffers and the
	// shared spill file) during the parallel probe; build and
	// post-probe phases are single-threaded.
	mu      sync.Mutex
	sorters []*runBuilder // one per probe worker; runs merge at finish
	outPos  atomic.Int64
	outCols int    // joined output columns (before the 2 tag columns)
	keyBuf  []byte // build/repartition phase scratch (single-threaded)
}

// probeState is one probe worker's private state: its own run builder
// (runs from all workers merge in finishEmit) and key scratch buffer.
type probeState struct {
	sorter *runBuilder
	keyBuf []byte
}

// newProbeState registers a probe worker's private output builder.
func (js *joinSpill) newProbeState() *probeState {
	b := newRunBuilder(js.ctx, joinSortKeys(js.outCols), 0, "join-out")
	js.mu.Lock()
	js.sorters = append(js.sorters, b)
	js.mu.Unlock()
	return &probeState{sorter: b}
}

// part0 returns a key hash's level-0 partition.
func (js *joinSpill) part0(h uint64) int {
	return int(h & uint64(len(js.parts)-1))
}

// subPart returns the recursive partition at level >= 1: the hash
// nibble directly above the bits consumed by shallower levels.
func (js *joinSpill) subPart(h uint64, level int) int {
	return int((h >> (js.fanoutBits + 4*uint(level-1))) & (spillFanout - 1))
}

// joinSortKeys returns the tag sort keys over a joined chunk with
// nOut data columns.
func joinSortKeys(nOut int) []plan.SortKey {
	return []plan.SortKey{
		{Expr: &plan.ColRef{Idx: nOut, Typ: vector.Int64, Name: "__poskey"}},
		{Expr: &plan.ColRef{Idx: nOut + 1, Typ: vector.Int64, Name: "__buildseq"}},
	}
}

// newJoinSpill activates grace partitioning: the build rows
// accumulated so far (acc) are partitioned, then partitions spill
// largest-first until the resident set fits the budget.
func newJoinSpill(ctx *Context, spec *plan.HashJoin, acc []*vector.Vector, accBytes int64, intKey bool) (*joinSpill, error) {
	js := &joinSpill{ctx: ctx, spec: spec, intKey: intKey}
	js.fanoutBits = 4
	if h := spec.Hints.FanoutLog2; h > 4 {
		js.fanoutBits = uint(h)
		if js.fanoutBits > 8 {
			js.fanoutBits = 8
		}
	}
	js.parts = make([]joinSpillPart, 1<<js.fanoutBits)
	js.buildTypes = make([]vector.Type, len(acc))
	for i, c := range acc {
		js.buildTypes[i] = c.Type()
	}
	js.outCols = len(spec.Left.Schema()) + len(spec.Right.Schema())
	if len(acc) > 0 && acc[0].Len() > 0 {
		if err := js.addBuildChunk(vector.NewChunk(acc...)); err != nil {
			return nil, err
		}
	}
	ctx.memShrink(accBytes) // rows now live in per-partition state
	if err := js.spillUntilFits(); err != nil {
		return nil, err
	}
	return js, nil
}

// ensureFile lazily creates the join's shared spill file.
func (js *joinSpill) ensureFile() (*spill.File, error) {
	if js.file == nil {
		f, err := js.ctx.spillManager().Create("join")
		if err != nil {
			return nil, err
		}
		js.file = f
	}
	return js.file, nil
}

// writeBuf flushes a partition buffer into the shared spill file.
func (js *joinSpill) writeBuf(a *rowAppender, refs *[]spill.ChunkRef) error {
	if a.rows() == 0 {
		return nil
	}
	f, err := js.ensureFile()
	if err != nil {
		return err
	}
	ref, err := f.WriteChunkRef(a.cols)
	if err != nil {
		return err
	}
	*refs = append(*refs, ref)
	a.reset()
	return nil
}

// addBuildChunk partitions one chunk of build rows. Every row gets a
// global sequence id in input order (NULL-key rows consume an id but
// are dropped — they can never match, and LEFT-join padding only ever
// references probe rows).
func (js *joinSpill) addBuildChunk(ch *vector.Chunk) error {
	keyVecs := make([]*vector.Vector, len(js.spec.RightKeys))
	for i, k := range js.spec.RightKeys {
		v, err := Evaluate(k, ch)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	n := ch.NumRows()
	start := js.nextSeq
	js.nextSeq += int64(n)
	sel := make([][]int, len(js.parts))
	for r := 0; r < n; r++ {
		h, null := joinKeyHash(keyVecs, r, js.intKey, &js.keyBuf)
		if null {
			continue
		}
		p := js.part0(h)
		sel[p] = append(sel[p], r)
	}
	rowBytes := chunkBytes(ch)/int64(n) + 8
	for p := range sel {
		if len(sel[p]) == 0 {
			continue
		}
		pt := &js.parts[p]
		if !pt.spilled {
			if pt.build == nil {
				pt.build = make([]*vector.Vector, len(js.buildTypes))
				for i, t := range js.buildTypes {
					pt.build[i] = vector.New(t, 0)
				}
			}
			for _, r := range sel[p] {
				for c := range pt.build {
					pt.build[c].AppendRowFrom(ch.Col(c), r)
				}
				pt.seq = append(pt.seq, start+int64(r))
			}
			delta := rowBytes * int64(len(sel[p]))
			pt.bytes += delta
			js.ctx.memGrow(delta)
			continue
		}
		if pt.buildBuf == nil {
			pt.buildBuf = newRowAppender(append(append([]vector.Type{}, js.buildTypes...), vector.Int64))
		}
		for _, r := range sel[p] {
			for c := 0; c < len(js.buildTypes); c++ {
				pt.buildBuf.cols[c].AppendRowFrom(ch.Col(c), r)
			}
			pt.buildBuf.cols[len(js.buildTypes)].AppendValue(vector.NewInt64(start + int64(r)))
		}
		if pt.buildBuf.rows() >= vector.DefaultChunkSize {
			if err := js.writeBuf(pt.buildBuf, &pt.buildRefs); err != nil {
				return err
			}
		}
	}
	return nil
}

// spillUntilFits writes resident partitions to disk, largest first
// (ties to the higher index), until the resident build state fits the
// budget's share or everything is spilled.
func (js *joinSpill) spillUntilFits() error {
	resident := int64(0)
	for p := range js.parts {
		if !js.parts[p].spilled {
			resident += js.parts[p].bytes
		}
	}
	for js.ctx.shouldSpill(resident) {
		best := -1
		for p := range js.parts {
			pt := &js.parts[p]
			if pt.spilled || pt.bytes == 0 {
				continue
			}
			if best < 0 || pt.bytes >= js.parts[best].bytes {
				best = p
			}
		}
		if best < 0 {
			return nil
		}
		resident -= js.parts[best].bytes
		if err := js.spillPart(best); err != nil {
			return err
		}
	}
	return nil
}

// spillPart writes one resident partition's build rows to disk and
// frees them.
func (js *joinSpill) spillPart(p int) error {
	pt := &js.parts[p]
	pt.spilled = true
	n := 0
	if len(pt.build) > 0 {
		n = pt.build[0].Len()
	}
	for from := 0; from < n; from += vector.DefaultChunkSize {
		to := from + vector.DefaultChunkSize
		if to > n {
			to = n
		}
		cols := make([]*vector.Vector, 0, len(pt.build)+1)
		for _, c := range pt.build {
			cols = append(cols, c.Slice(from, to))
		}
		cols = append(cols, vector.FromInt64s(pt.seq[from:to]))
		f, err := js.ensureFile()
		if err != nil {
			return err
		}
		ref, err := f.WriteChunkRef(cols)
		if err != nil {
			return err
		}
		pt.buildRefs = append(pt.buildRefs, ref)
	}
	js.ctx.memShrink(pt.bytes)
	pt.build, pt.seq, pt.bytes = nil, nil, 0
	js.ctx.spillStats().addPartitions(1)
	return nil
}

// finishBuild flushes spilled buffers and builds hash indexes over the
// resident partitions, recording the hybrid outcome (partitions on
// disk vs resident) for SpillStats and EXPLAIN ANALYZE.
func (js *joinSpill) finishBuild() error {
	if err := js.spillUntilFits(); err != nil {
		return err
	}
	var resident int64
	for p := range js.parts {
		pt := &js.parts[p]
		if pt.spilled {
			if pt.buildBuf != nil {
				if err := js.writeBuf(pt.buildBuf, &pt.buildRefs); err != nil {
					return err
				}
				pt.buildBuf = nil
			}
			continue
		}
		if pt.build == nil {
			continue
		}
		resident++
		ix, err := newJoinIndex(js.spec, vector.NewChunk(pt.build...), pt.seq, js.intKey)
		if err != nil {
			return err
		}
		pt.ix = ix
	}
	js.ctx.spillStats().addResident(resident)
	if tap := js.spec.Hints.Tap; tap != nil {
		var spilled int64
		for p := range js.parts {
			if js.parts[p].spilled {
				spilled++
			}
		}
		tap.SpillSpilled.Add(spilled)
		tap.SpillResident.Add(resident)
	}
	return nil
}

// probeChunk routes one probe chunk: immediate probing against
// resident partitions, deferral to probe chunk lists for spilled
// ones, and immediate LEFT-join padding for NULL-key rows. Safe for
// concurrent probe workers: resident state is read-only here, output
// goes through the worker's private state, and only the deferral
// buffers (and shared spill file) serialize on js.mu.
func (js *joinSpill) probeChunk(ch *vector.Chunk, chunkIdx int, ps *probeState) error {
	keyVecs := make([]*vector.Vector, len(js.spec.LeftKeys))
	for i, k := range js.spec.LeftKeys {
		v, err := Evaluate(k, ch)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	n := ch.NumRows()
	base := int64(chunkIdx) << 32
	var nullRows []int
	resSel := make([][]int, len(js.parts))
	defSel := make([][]int, len(js.parts))
	anyDeferred := false
	for r := 0; r < n; r++ {
		h, null := joinKeyHash(keyVecs, r, js.intKey, &ps.keyBuf)
		if null {
			nullRows = append(nullRows, r)
			continue
		}
		p := js.part0(h)
		if js.parts[p].spilled {
			defSel[p] = append(defSel[p], r)
			anyDeferred = true
		} else {
			resSel[p] = append(resSel[p], r)
		}
	}
	// Deferred rows: store the full probe row plus its posKey base.
	if anyDeferred {
		js.mu.Lock()
		for p := range defSel {
			if len(defSel[p]) == 0 {
				continue
			}
			pt := &js.parts[p]
			if pt.probeBuf == nil {
				types := make([]vector.Type, ch.NumCols()+1)
				for i := 0; i < ch.NumCols(); i++ {
					types[i] = ch.Col(i).Type()
				}
				types[ch.NumCols()] = vector.Int64
				pt.probeBuf = newRowAppender(types)
			}
			for _, r := range defSel[p] {
				for c := 0; c < ch.NumCols(); c++ {
					pt.probeBuf.cols[c].AppendRowFrom(ch.Col(c), r)
				}
				pt.probeBuf.cols[ch.NumCols()].AppendValue(vector.NewInt64(base | int64(r)))
			}
			if pt.probeBuf.rows() >= vector.DefaultChunkSize {
				if err := js.writeBuf(pt.probeBuf, &pt.probeRefs); err != nil {
					js.mu.Unlock()
					return err
				}
			}
		}
		js.mu.Unlock()
	}
	// Resident partitions probe immediately.
	for p := range resSel {
		if len(resSel[p]) == 0 {
			continue
		}
		if err := js.probeAgainst(js.parts[p].ix, ch, keyVecs, resSel[p], func(r int) int64 { return base | int64(r) }, ps); err != nil {
			return err
		}
	}
	// NULL-key rows never match: LEFT joins pad them immediately.
	return js.emitUnmatched(ch, nullRows, func(r int) int64 { return base | unmatchedBit | int64(r) }, ps)
}

// probeAgainst joins the given probe rows against one partition's
// index, applies the residual, and appends tagged output (matched
// rows, then LEFT-join padding) to the order-restoring sorter. The
// posKey section bits reproduce in-memory emission order: matched
// rows sort by (probe row, build id); padded rows sort after every
// matched row of their chunk, unmatched-key before residual-rejected.
func (js *joinSpill) probeAgainst(ix *joinIndex, ch *vector.Chunk, keyVecs []*vector.Vector, rows []int, baseOf func(r int) int64, ps *probeState) error {
	var leftSel, rightSel []int
	var posKeys, seqs []int64
	// Per-row match bookkeeping exists only to decide LEFT-join
	// padding; the inner-join hot path skips it.
	var matched map[int]bool
	if js.spec.Kind == sql.LeftJoin {
		matched = make(map[int]bool, len(rows))
	}
	for _, r := range rows {
		for _, m := range ix.lookup(keyVecs, r, &ps.keyBuf) {
			leftSel = append(leftSel, r)
			rightSel = append(rightSel, int(m))
			posKeys = append(posKeys, baseOf(r))
			seqs = append(seqs, ix.seq[m])
			if matched != nil {
				matched[r] = true
			}
		}
	}
	var rejected []int
	if len(leftSel) > 0 {
		leftCols := ch.Gather(leftSel).Cols()
		rightCols := ix.build.Gather(rightSel).Cols()
		joined := vector.NewChunk(append(leftCols, rightCols...)...)
		if js.spec.Extra != nil {
			pred, err := Evaluate(js.spec.Extra, joined)
			if err != nil {
				return err
			}
			if pred.Type() != vector.Bool {
				return fmt.Errorf("exec: join condition must be boolean, got %s", pred.Type())
			}
			sel := make([]int, 0, joined.NumRows())
			keep := make(map[int]bool, len(rows))
			for i := 0; i < joined.NumRows(); i++ {
				if !pred.IsNull(i) && pred.Bools()[i] {
					sel = append(sel, i)
					keep[leftSel[i]] = true
				}
			}
			if len(sel) != joined.NumRows() {
				joined = joined.Gather(sel)
				nk := make([]int64, len(sel))
				ns := make([]int64, len(sel))
				for i, si := range sel {
					nk[i] = posKeys[si]
					ns[i] = seqs[si]
				}
				posKeys, seqs = nk, ns
			}
			if matched != nil {
				for _, r := range rows {
					if matched[r] && !keep[r] {
						rejected = append(rejected, r)
						matched[r] = false
					}
				}
			}
		}
		if err := js.emitTagged(joined, posKeys, seqs, ps); err != nil {
			return err
		}
	}
	if js.spec.Kind != sql.LeftJoin {
		return nil
	}
	// matched[r] is false both for never-matched rows and for rows
	// whose every match the residual rejected; the latter are in
	// `rejected` and pad into their own (later) section.
	rejectedSet := make(map[int]bool, len(rejected))
	for _, r := range rejected {
		rejectedSet[r] = true
	}
	var unmatched []int
	for _, r := range rows {
		if !matched[r] && !rejectedSet[r] {
			unmatched = append(unmatched, r)
		}
	}
	if err := js.emitUnmatched(ch, unmatched, func(r int) int64 { return baseOf(r) | unmatchedBit }, ps); err != nil {
		return err
	}
	return js.emitUnmatched(ch, rejected, func(r int) int64 { return baseOf(r) | unmatchedBit | residualBit }, ps)
}

// emitUnmatched appends NULL-padded output rows for unmatched LEFT
// probe rows.
func (js *joinSpill) emitUnmatched(ch *vector.Chunk, rows []int, keyOf func(r int) int64, ps *probeState) error {
	if len(rows) == 0 || js.spec.Kind != sql.LeftJoin {
		return nil
	}
	padded := padRightNull(js.spec.Right.Schema(), ch, rows)
	posKeys := make([]int64, len(rows))
	for i, r := range rows {
		posKeys[i] = keyOf(r)
	}
	return js.emitTagged(padded, posKeys, make([]int64, len(rows)), ps)
}

// emitTagged appends output rows with their (posKey, buildSeq) tags to
// the worker's order-restoring run builder. outPos only reserves
// distinct position ranges per builder chunk — the restoration sort
// keys on the tags, so reservation order across workers is irrelevant.
func (js *joinSpill) emitTagged(out *vector.Chunk, posKeys, seqs []int64, ps *probeState) error {
	if out.NumRows() == 0 {
		return nil
	}
	cols := append(append([]*vector.Vector{}, out.Cols()...),
		vector.FromInt64s(posKeys), vector.FromInt64s(seqs))
	n := int64(out.NumRows())
	base := js.outPos.Add(n) - n
	return ps.sorter.add(vector.NewChunk(cols...), base)
}

// processSpilled joins every spilled partition: its deferred probe
// rows against its build rows, recursing when a partition's build
// side still exceeds the budget. Runs after all probe workers have
// joined (single-threaded).
func (js *joinSpill) processSpilled(ps *probeState) error {
	for p := range js.parts {
		pt := &js.parts[p]
		if !pt.spilled {
			continue
		}
		if pt.probeBuf != nil {
			if err := js.writeBuf(pt.probeBuf, &pt.probeRefs); err != nil {
				return err
			}
			pt.probeBuf = nil
		}
		if err := js.processPart(js.file, pt.buildRefs, pt.probeRefs, 1, ps); err != nil {
			return err
		}
	}
	if js.file != nil {
		js.file.Release()
		js.file = nil
	}
	return nil
}

// processPart joins one spilled partition. level is the recursion
// depth, selecting the hash bits used if the partition must
// re-partition.
func (js *joinSpill) processPart(f *spill.File, buildRefs, probeRefs []spill.ChunkRef, level int, ps *probeState) error {
	if len(probeRefs) == 0 {
		return nil // no probe rows: inner joins and LEFT pads both emit nothing
	}
	// Load the partition's build side.
	var acc []*vector.Vector
	var seqs []int64
	var bytes int64
	for _, ref := range buildRefs {
		if js.ctx.interrupted() {
			return ErrCancelled
		}
		cols, err := f.ReadChunkAt(ref)
		if err != nil {
			return err
		}
		nb := len(cols) - 1
		if acc == nil {
			acc = make([]*vector.Vector, nb)
			for i := 0; i < nb; i++ {
				acc[i] = vector.New(cols[i].Type(), 0)
			}
		}
		for i := 0; i < nb; i++ {
			acc[i].AppendVector(cols[i])
			bytes += vectorBytes(cols[i])
		}
		seqs = append(seqs, cols[nb].Int64s()...)
		bytes += 8 * int64(cols[nb].Len())
	}
	js.ctx.memGrow(bytes)
	defer js.ctx.memShrink(bytes)

	if js.ctx.shouldSpill(bytes) && level < maxSpillLevels {
		return js.repartition(f, acc, seqs, probeRefs, level, ps)
	}

	var ix *joinIndex
	if len(seqs) > 0 {
		var err error
		ix, err = newJoinIndex(js.spec, vector.NewChunk(acc...), seqs, js.intKey)
		if err != nil {
			return err
		}
	}
	for _, ref := range probeRefs {
		if js.ctx.interrupted() {
			return ErrCancelled
		}
		cols, err := f.ReadChunkAt(ref)
		if err != nil {
			return err
		}
		np := len(cols) - 1
		probeData := vector.NewChunk(cols[:np]...)
		tags := cols[np].Int64s()
		keyVecs := make([]*vector.Vector, len(js.spec.LeftKeys))
		for i, k := range js.spec.LeftKeys {
			v, err := Evaluate(k, probeData)
			if err != nil {
				return err
			}
			keyVecs[i] = v
		}
		rows := make([]int, probeData.NumRows())
		for i := range rows {
			rows[i] = i
		}
		if err := js.probeAgainst(ix, probeData, keyVecs, rows, func(r int) int64 { return tags[r] }, ps); err != nil {
			return err
		}
	}
	return nil
}

// repartition splits an oversized spilled partition on the next hash
// nibble and recurses.
func (js *joinSpill) repartition(f *spill.File, acc []*vector.Vector, seqs []int64, probeRefs []spill.ChunkRef, level int, ps *probeState) error {
	sub, err := js.ctx.spillManager().Create("join-sub")
	if err != nil {
		return err
	}
	defer sub.Release()
	var subBuild, subProbe [spillFanout][]spill.ChunkRef

	// Route build rows.
	if len(seqs) > 0 {
		build := vector.NewChunk(acc...)
		keyVecs := make([]*vector.Vector, len(js.spec.RightKeys))
		for i, k := range js.spec.RightKeys {
			v, err := Evaluate(k, build)
			if err != nil {
				return err
			}
			keyVecs[i] = v
		}
		var sel [spillFanout][]int
		for r := 0; r < build.NumRows(); r++ {
			h, null := joinKeyHash(keyVecs, r, js.intKey, &js.keyBuf)
			if null {
				continue // cannot happen: NULL keys were dropped at level 0
			}
			p := js.subPart(h, level)
			sel[p] = append(sel[p], r)
		}
		for p := range sel {
			if len(sel[p]) == 0 {
				continue
			}
			for from := 0; from < len(sel[p]); from += vector.DefaultChunkSize {
				to := from + vector.DefaultChunkSize
				if to > len(sel[p]) {
					to = len(sel[p])
				}
				part := build.Gather(sel[p][from:to])
				sq := make([]int64, 0, to-from)
				for _, r := range sel[p][from:to] {
					sq = append(sq, seqs[r])
				}
				cols := append(append([]*vector.Vector{}, part.Cols()...), vector.FromInt64s(sq))
				ref, err := sub.WriteChunkRef(cols)
				if err != nil {
					return err
				}
				subBuild[p] = append(subBuild[p], ref)
			}
			js.ctx.spillStats().addPartitions(1)
		}
	}

	// Route deferred probe rows (tag column rides along).
	for _, ref := range probeRefs {
		if js.ctx.interrupted() {
			return ErrCancelled
		}
		cols, err := f.ReadChunkAt(ref)
		if err != nil {
			return err
		}
		np := len(cols) - 1
		probeData := vector.NewChunk(cols[:np]...)
		keyVecs := make([]*vector.Vector, len(js.spec.LeftKeys))
		for i, k := range js.spec.LeftKeys {
			v, err := Evaluate(k, probeData)
			if err != nil {
				return err
			}
			keyVecs[i] = v
		}
		var sel [spillFanout][]int
		for r := 0; r < probeData.NumRows(); r++ {
			h, null := joinKeyHash(keyVecs, r, js.intKey, &js.keyBuf)
			if null {
				continue // cannot happen: NULL keys were padded at level 0
			}
			p := js.subPart(h, level)
			sel[p] = append(sel[p], r)
		}
		all := vector.NewChunk(cols...)
		for p := range sel {
			if len(sel[p]) == 0 {
				continue
			}
			ref, err := sub.WriteChunkRef(all.Gather(sel[p]).Cols())
			if err != nil {
				return err
			}
			subProbe[p] = append(subProbe[p], ref)
		}
	}

	for p := 0; p < spillFanout; p++ {
		if err := js.processPart(sub, subBuild[p], subProbe[p], level+1, ps); err != nil {
			return err
		}
	}
	return nil
}

// finishEmit closes the probe phase: every probe worker's runs merge
// into final output order. The caller strips the two tag columns.
func (js *joinSpill) finishEmit() (*runMerger, error) {
	var runs []*mergeRun
	var files []*spill.File
	var held int64
	var ferr error
	for _, b := range js.sorters {
		rs, file, err := b.finish()
		if file != nil {
			files = append(files, file)
		}
		held += b.heldBytes()
		if err != nil && ferr == nil {
			ferr = err
		}
		if err == nil {
			runs = append(runs, rs...)
		}
	}
	if ferr != nil {
		releaseFiles(files)
		js.ctx.memShrink(held)
		return nil, ferr
	}
	return newRunMerger(js.ctx, joinSortKeys(js.outCols), runs, -1, files, held), nil
}

// release frees any files the spill state still holds (the manager
// sweeps anything missed at stream close).
func (js *joinSpill) release() {
	if js == nil {
		return
	}
	if js.file != nil {
		js.file.Release()
		js.file = nil
	}
}
