package exec

import (
	"fmt"
	"sort"

	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// hashAggOp implements hash aggregation with optional grouping. With
// no GROUP BY it produces exactly one row (even for empty input, per
// SQL semantics). Under a memory budget, consumption grace-partitions
// to disk when the table outgrows the budget (agg_spill.go) and the
// emitter streams partition results merged by first appearance.
type hashAggOp struct {
	spec    *plan.Aggregate
	child   Operator
	ctx     *Context
	started bool
	emitter *aggEmitter
}

// aggState is one aggregate's partial state. For DISTINCT aggregates
// the accumulators stay zero during consumption: distinct holds the
// encoded argument values (appendRowKey form), per-worker sets union
// losslessly at the merge, and finalizeAgg folds the merged set into
// the accumulators in sorted key order — deterministic regardless of
// worker count or morsel claim order.
type aggState struct {
	count    int64
	sumF     float64
	sumI     int64
	min      vector.Value
	max      vector.Value
	distinct map[string]struct{}
}

// aggGroup is the accumulated state of one group. firstSeen orders the
// output: it is the global position (morsel, row) of the group's first
// input row, so parallel partitions merge back into the exact order
// serial execution would produce.
type aggGroup struct {
	keyVals   []vector.Value
	aggs      []aggState
	firstSeen int64
}

// aggTable accumulates hash-aggregation state. Groups are stored
// densely in first-appearance order; the groupIndex maps key rows to
// slots without per-row key allocation. bytes estimates the table's
// retained footprint for the query's memory budget.
type aggTable struct {
	spec   *plan.Aggregate
	gi     *groupIndex
	groups []aggGroup
	bytes  int64

	groupVecs []*vector.Vector // reused across chunks
	argVecs   []*vector.Vector
	scratch   []byte // distinct-value key buffer
}

// aggGroupOverhead estimates the fixed per-group bookkeeping cost
// (slice headers, map slots, firstSeen) on top of key and state sizes.
const aggGroupOverhead = 96

func newAggTable(spec *plan.Aggregate) *aggTable {
	types := make([]vector.Type, len(spec.GroupBy))
	for i, g := range spec.GroupBy {
		types[i] = g.Type()
	}
	return &aggTable{
		spec:      spec,
		gi:        newGroupIndex(types),
		groupVecs: make([]*vector.Vector, len(spec.GroupBy)),
		argVecs:   make([]*vector.Vector, len(spec.Aggs)),
	}
}

// evalInputs evaluates the group and argument expressions over one
// chunk into the table's reusable vector slots.
func (t *aggTable) evalInputs(ch *vector.Chunk) error {
	for i, g := range t.spec.GroupBy {
		v, err := Evaluate(g, ch)
		if err != nil {
			return err
		}
		t.groupVecs[i] = v
	}
	for i, s := range t.spec.Aggs {
		if s.Arg == nil {
			t.argVecs[i] = nil
			continue
		}
		v, err := Evaluate(s.Arg, ch)
		if err != nil {
			return err
		}
		t.argVecs[i] = v
	}
	return nil
}

// consume folds one chunk into the table. morsel is the chunk's global
// position in the input stream; it seeds firstSeen so output order is
// deterministic regardless of which worker consumed the chunk.
func (t *aggTable) consume(ch *vector.Chunk, morsel int) error {
	if err := t.evalInputs(ch); err != nil {
		return err
	}
	return t.consumeVecs(t.groupVecs, t.argVecs, ch.NumRows(), func(r int) int64 {
		return int64(morsel)<<32 | int64(r)
	})
}

// getOrCreate returns the group of row r of the key vectors, creating
// it (with firstSeen = pos, per-group byte accounting, DISTINCT set
// init) on first appearance and folding pos into firstSeen otherwise.
// Shared by fresh consumption and spilled partial replay so group
// initialization and budget accounting cannot diverge between paths.
func (t *aggTable) getOrCreate(groupVecs []*vector.Vector, r int, pos int64) *aggGroup {
	id, created := t.gi.groupID(groupVecs, r)
	if created {
		g := aggGroup{
			aggs:      make([]aggState, len(t.spec.Aggs)),
			firstSeen: pos,
		}
		t.bytes += aggGroupOverhead + 56*int64(len(t.spec.Aggs))
		if len(groupVecs) > 0 {
			g.keyVals = make([]vector.Value, len(groupVecs))
			for i, gv := range groupVecs {
				g.keyVals[i] = gv.Get(r)
				t.bytes += valueBytes(g.keyVals[i])
			}
		}
		for i, s := range t.spec.Aggs {
			if s.Distinct {
				g.aggs[i].distinct = make(map[string]struct{})
			}
		}
		t.groups = append(t.groups, g)
	}
	g := &t.groups[id]
	if pos < g.firstSeen {
		g.firstSeen = pos
	}
	return g
}

// consumeVecs folds n rows of evaluated group/argument vectors into
// the table. posOf returns each row's unique global input position;
// a group's firstSeen is the minimum over its rows, so the result is
// independent of consumption order (spilled partitions replay rows in
// file order, which under parallel spillers is not position order).
func (t *aggTable) consumeVecs(groupVecs, argVecs []*vector.Vector, n int, posOf func(r int) int64) error {
	for r := 0; r < n; r++ {
		g := t.getOrCreate(groupVecs, r, posOf(r))
		for i, s := range t.spec.Aggs {
			if err := updateAgg(&g.aggs[i], s, argVecs[i], r, &t.scratch, &t.bytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// consumeRowsSel folds a selection of rows of evaluated
// group/argument vectors into the table. The hybrid spill path routes
// the rows of a resident partition here — the selection is the subset
// of a chunk that hashed to this partition — instead of to disk.
func (t *aggTable) consumeRowsSel(groupVecs, argVecs []*vector.Vector, rows []int, posOf func(r int) int64) error {
	for _, r := range rows {
		g := t.getOrCreate(groupVecs, r, posOf(r))
		for i, s := range t.spec.Aggs {
			if err := updateAgg(&g.aggs[i], s, argVecs[i], r, &t.scratch, &t.bytes); err != nil {
				return err
			}
		}
	}
	return nil
}

// ensureGlobalGroup materializes the single output row a global
// aggregation owes even for empty input.
func (t *aggTable) ensureGlobalGroup() {
	if len(t.spec.GroupBy) > 0 || len(t.groups) > 0 {
		return
	}
	g := aggGroup{aggs: make([]aggState, len(t.spec.Aggs))}
	for i, s := range t.spec.Aggs {
		if s.Distinct {
			g.aggs[i].distinct = make(map[string]struct{})
		}
	}
	t.groups = append(t.groups, g)
}

// mergeKeyMap builds the encoded-key → group-slot map merge uses;
// build it once and reuse it across successive merge calls (merge
// keeps it updated for appended groups).
func (t *aggTable) mergeKeyMap() map[string]int32 {
	byKey := make(map[string]int32, len(t.groups))
	var buf []byte
	for i := range t.groups {
		buf = buf[:0]
		for _, kv := range t.groups[i].keyVals {
			buf = appendValueKey(buf, kv)
		}
		byKey[string(buf)] = int32(i)
	}
	return byKey
}

// merge folds o's groups into t, matching groups by their encoded key
// values. Every aggregate kind composes: counts and sums add, min/max
// compare, and DISTINCT states union their per-worker key sets (the
// accumulators stay untouched until finalizeAgg folds the merged set).
// o's tracked bytes transfer to t (the groups move or union into it),
// so whoever releases t releases everything merged into it.
func (t *aggTable) merge(o *aggTable, byKey map[string]int32) error {
	t.bytes += o.bytes
	o.bytes = 0
	if len(o.groups) == 0 {
		return nil
	}
	var buf []byte
	for i := range o.groups {
		og := &o.groups[i]
		buf = buf[:0]
		for _, kv := range og.keyVals {
			buf = appendValueKey(buf, kv)
		}
		id, ok := byKey[string(buf)]
		if !ok {
			byKey[string(buf)] = int32(len(t.groups))
			t.groups = append(t.groups, *og)
			continue
		}
		g := &t.groups[id]
		if og.firstSeen < g.firstSeen {
			g.firstSeen = og.firstSeen
		}
		for a := range g.aggs {
			if err := mergeAggState(&g.aggs[a], &og.aggs[a]); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeAggState combines two partial states of the same aggregate.
func mergeAggState(dst, src *aggState) error {
	dst.count += src.count
	dst.sumF += src.sumF
	dst.sumI += src.sumI
	if src.distinct != nil {
		if dst.distinct == nil {
			dst.distinct = make(map[string]struct{}, len(src.distinct))
		}
		for k := range src.distinct {
			dst.distinct[k] = struct{}{}
		}
	}
	if src.min.Type() != vector.Invalid {
		if dst.min.Type() == vector.Invalid {
			dst.min = src.min
		} else if c, err := src.min.Compare(dst.min); err != nil {
			return err
		} else if c < 0 {
			dst.min = src.min
		}
	}
	if src.max.Type() != vector.Invalid {
		if dst.max.Type() == vector.Invalid {
			dst.max = src.max
		} else if c, err := src.max.Compare(dst.max); err != nil {
			return err
		} else if c > 0 {
			dst.max = src.max
		}
	}
	return nil
}

// emit materializes the groups, ordered by first appearance, as one
// result chunk.
func (t *aggTable) emit() (*vector.Chunk, error) {
	run, err := t.emitRun()
	if err != nil {
		return nil, err
	}
	return run.data, nil
}

// emitRun materializes the groups as a run sorted by first appearance:
// the finalized output chunk plus each group's firstSeen position, so
// spilled partitions merge back into exact serial first-appearance
// order via the shared run merger (zero sort keys: the merge orders
// purely by position, and firstSeen values are unique — no two groups
// share a first row).
func (t *aggTable) emitRun() (*sortedRun, error) {
	order := make([]int, len(t.groups))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return t.groups[order[a]].firstSeen < t.groups[order[b]].firstSeen
	})
	schema := t.spec.Schema()
	cols := make([]*vector.Vector, len(schema))
	for i, c := range schema {
		cols[i] = vector.New(c.Type, len(t.groups))
	}
	pos := make([]int64, 0, len(t.groups))
	ng := len(t.spec.GroupBy)
	for _, gi := range order {
		g := &t.groups[gi]
		for i, kv := range g.keyVals {
			appendCast(cols[i], kv, schema[i].Type)
		}
		for i, s := range t.spec.Aggs {
			v, err := finalizeAgg(&g.aggs[i], s)
			if err != nil {
				return nil, err
			}
			appendCast(cols[ng+i], v, schema[ng+i].Type)
		}
		pos = append(pos, g.firstSeen)
	}
	return &sortedRun{data: vector.NewChunk(cols...), pos: pos}, nil
}

func (a *hashAggOp) Open(ctx *Context) error {
	a.ctx = ctx
	a.emitter = nil
	a.started = false
	return a.child.Open(ctx)
}

func (a *hashAggOp) Next() (*vector.Chunk, error) {
	if !a.started {
		a.started = true
		shared := &aggShared{}
		cons := newAggConsumer(a.ctx, a.spec, shared)
		morsel := 0
		for {
			if a.ctx.interrupted() {
				return nil, ErrCancelled
			}
			ch, err := a.child.Next()
			if err != nil {
				return nil, err
			}
			if ch == nil {
				break
			}
			if err := cons.consume(ch, morsel); err != nil {
				return nil, err
			}
			morsel++
		}
		em, err := finishAggEmit(a.ctx, a.spec, []*aggConsumer{cons}, shared)
		if err != nil {
			return nil, err
		}
		a.emitter = em
	}
	return a.emitter.next(a.ctx)
}

func appendCast(col *vector.Vector, v vector.Value, t vector.Type) {
	if !v.IsNull() && v.Type() != t {
		if cv, err := v.Cast(t); err == nil {
			v = cv
		}
	}
	col.AppendValue(v)
}

func updateAgg(st *aggState, spec plan.AggSpec, arg *vector.Vector, r int, scratch *[]byte, bytes *int64) error {
	if spec.Arg == nil { // count(*)
		st.count++
		return nil
	}
	if arg.IsNull(r) {
		return nil // aggregates skip NULLs
	}
	if spec.Distinct {
		// Record the encoded value only; accumulation happens in
		// finalizeAgg over the merged set. Type errors still surface
		// here, where the argument vector is at hand.
		if spec.Kind == plan.AggSum || spec.Kind == plan.AggAvg {
			switch arg.Type() {
			case vector.Float64, vector.Int32, vector.Int64:
			default:
				return fmt.Errorf("exec: cannot sum %s", arg.Type())
			}
		}
		buf := appendRowKey((*scratch)[:0], arg, r)
		*scratch = buf
		if _, seen := st.distinct[string(buf)]; !seen {
			st.distinct[string(buf)] = struct{}{}
			*bytes += int64(len(buf)) + 48
		}
		return nil
	}
	return accumulateAgg(st, spec, arg.Get(r), bytes)
}

// accumulateAgg folds one non-NULL value into an aggregate state. It
// is shared by the per-row update path and the distinct-set fold in
// finalizeAgg. bytes tracks the retained-value footprint of MIN/MAX
// — over string/blob columns the kept value can dominate the group's
// size, so the memory budget must see it.
func accumulateAgg(st *aggState, spec plan.AggSpec, v vector.Value, bytes *int64) error {
	switch spec.Kind {
	case plan.AggCount:
		st.count++
	case plan.AggSum, plan.AggAvg:
		st.count++
		switch v.Type() {
		case vector.Float64:
			st.sumF += v.Float64()
		case vector.Int32, vector.Int64:
			st.sumI += v.Int64()
			st.sumF += v.Float64()
		default:
			return fmt.Errorf("exec: cannot sum %s", v.Type())
		}
	case plan.AggMin:
		if st.min.Type() == vector.Invalid { // unset or NULL: first value wins
			st.min = v
			*bytes += valueBytes(v)
			return nil
		}
		c, err := v.Compare(st.min)
		if err != nil {
			return err
		}
		if c < 0 {
			*bytes += valueBytes(v) - valueBytes(st.min)
			st.min = v
		}
	case plan.AggMax:
		if st.max.Type() == vector.Invalid {
			st.max = v
			*bytes += valueBytes(v)
			return nil
		}
		c, err := v.Compare(st.max)
		if err != nil {
			return err
		}
		if c > 0 {
			*bytes += valueBytes(v) - valueBytes(st.max)
			st.max = v
		}
	}
	return nil
}

// foldDistinct accumulates a distinct aggregate's deferred value set
// into fresh accumulators. Keys are visited in sorted encoded-byte
// order, so float sums come out byte-identical no matter how many
// workers built the set or in which order values arrived. Errors
// propagate: MIN/MAX over an unorderable argument type (Blob) must
// fail here exactly as the non-DISTINCT path fails in accumulation.
func foldDistinct(st *aggState, spec plan.AggSpec) (*aggState, error) {
	keys := make([]string, 0, len(st.distinct))
	for k := range st.distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := &aggState{}
	var scratch int64 // finalize-time state is transient; not budgeted
	for _, k := range keys {
		v, _, err := decodeValueKey([]byte(k))
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			continue // unreachable: sets hold only non-NULL encodings
		}
		if err := accumulateAgg(out, spec, v, &scratch); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func finalizeAgg(st *aggState, spec plan.AggSpec) (vector.Value, error) {
	if spec.Distinct && spec.Arg != nil {
		// COUNT(DISTINCT) is the set's cardinality; skip the
		// sort-and-decode fold the order-sensitive kinds need.
		if spec.Kind == plan.AggCount {
			return vector.NewInt64(int64(len(st.distinct))), nil
		}
		folded, err := foldDistinct(st, spec)
		if err != nil {
			return vector.Null(), err
		}
		st = folded
	}
	switch spec.Kind {
	case plan.AggCount:
		return vector.NewInt64(st.count), nil
	case plan.AggSum:
		if st.count == 0 {
			return vector.Null(), nil
		}
		if spec.Typ == vector.Float64 {
			return vector.NewFloat64(st.sumF), nil
		}
		return vector.NewInt64(st.sumI), nil
	case plan.AggAvg:
		if st.count == 0 {
			return vector.Null(), nil
		}
		return vector.NewFloat64(st.sumF / float64(st.count)), nil
	case plan.AggMin:
		if st.min.Type() == vector.Invalid {
			return vector.Null(), nil
		}
		return st.min, nil
	case plan.AggMax:
		if st.max.Type() == vector.Invalid {
			return vector.Null(), nil
		}
		return st.max, nil
	}
	return vector.Null(), nil
}

func (a *hashAggOp) Close() error {
	a.emitter.close()
	return a.child.Close()
}
