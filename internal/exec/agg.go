package exec

import (
	"fmt"

	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// hashAggOp implements hash aggregation with optional grouping. With
// no GROUP BY it produces exactly one row (even for empty input, per
// SQL semantics).
type hashAggOp struct {
	spec  *plan.Aggregate
	child Operator
	done  bool
}

type aggState struct {
	count    int64
	sumF     float64
	sumI     int64
	min      vector.Value
	max      vector.Value
	distinct map[string]struct{}
}

type groupState struct {
	keyVals []vector.Value
	aggs    []aggState
}

func (a *hashAggOp) Open(ctx *Context) error {
	a.done = false
	return a.child.Open(ctx)
}

func (a *hashAggOp) Next() (*vector.Chunk, error) {
	if a.done {
		return nil, nil
	}
	a.done = true

	groups := make(map[string]*groupState)
	var order []string // deterministic output order: first appearance

	var key []byte
	for {
		ch, err := a.child.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			break
		}
		n := ch.NumRows()
		groupVecs := make([]*vector.Vector, len(a.spec.GroupBy))
		for i, g := range a.spec.GroupBy {
			v, err := Evaluate(g, ch)
			if err != nil {
				return nil, err
			}
			groupVecs[i] = v
		}
		argVecs := make([]*vector.Vector, len(a.spec.Aggs))
		for i, s := range a.spec.Aggs {
			if s.Arg == nil {
				continue
			}
			v, err := Evaluate(s.Arg, ch)
			if err != nil {
				return nil, err
			}
			argVecs[i] = v
		}
		for r := 0; r < n; r++ {
			key = key[:0]
			for _, gv := range groupVecs {
				key = appendRowKey(key, gv, r)
			}
			ks := string(key)
			g, ok := groups[ks]
			if !ok {
				g = &groupState{aggs: make([]aggState, len(a.spec.Aggs))}
				g.keyVals = make([]vector.Value, len(groupVecs))
				for i, gv := range groupVecs {
					g.keyVals[i] = gv.Get(r)
				}
				for i, s := range a.spec.Aggs {
					if s.Distinct {
						g.aggs[i].distinct = make(map[string]struct{})
					}
				}
				groups[ks] = g
				order = append(order, ks)
			}
			for i, s := range a.spec.Aggs {
				if err := updateAgg(&g.aggs[i], s, argVecs[i], r); err != nil {
					return nil, err
				}
			}
		}
	}

	// Global aggregation over empty input still yields one row.
	if len(a.spec.GroupBy) == 0 && len(groups) == 0 {
		g := &groupState{aggs: make([]aggState, len(a.spec.Aggs))}
		for i, s := range a.spec.Aggs {
			if s.Distinct {
				g.aggs[i].distinct = make(map[string]struct{})
			}
		}
		groups[""] = g
		order = append(order, "")
	}

	schema := a.spec.Schema()
	cols := make([]*vector.Vector, len(schema))
	for i, c := range schema {
		cols[i] = vector.New(c.Type, len(groups))
	}
	ng := len(a.spec.GroupBy)
	for _, ks := range order {
		g := groups[ks]
		for i, kv := range g.keyVals {
			appendCast(cols[i], kv, schema[i].Type)
		}
		for i, s := range a.spec.Aggs {
			appendCast(cols[ng+i], finalizeAgg(&g.aggs[i], s), schema[ng+i].Type)
		}
	}
	return vector.NewChunk(cols...), nil
}

func appendCast(col *vector.Vector, v vector.Value, t vector.Type) {
	if !v.IsNull() && v.Type() != t {
		if cv, err := v.Cast(t); err == nil {
			v = cv
		}
	}
	col.AppendValue(v)
}

func updateAgg(st *aggState, spec plan.AggSpec, arg *vector.Vector, r int) error {
	if spec.Arg == nil { // count(*)
		st.count++
		return nil
	}
	if arg.IsNull(r) {
		return nil // aggregates skip NULLs
	}
	if spec.Distinct {
		key := appendRowKey(nil, arg, r)
		if _, seen := st.distinct[string(key)]; seen {
			return nil
		}
		st.distinct[string(key)] = struct{}{}
	}
	v := arg.Get(r)
	switch spec.Kind {
	case plan.AggCount:
		st.count++
	case plan.AggSum, plan.AggAvg:
		st.count++
		switch arg.Type() {
		case vector.Float64:
			st.sumF += v.Float64()
		case vector.Int32, vector.Int64:
			st.sumI += v.Int64()
			st.sumF += v.Float64()
		default:
			return fmt.Errorf("exec: cannot sum %s", arg.Type())
		}
	case plan.AggMin:
		if st.min.Type() == vector.Invalid { // unset or NULL: first value wins
			st.min = v
			return nil
		}
		c, err := v.Compare(st.min)
		if err != nil {
			return err
		}
		if c < 0 {
			st.min = v
		}
	case plan.AggMax:
		if st.max.Type() == vector.Invalid {
			st.max = v
			return nil
		}
		c, err := v.Compare(st.max)
		if err != nil {
			return err
		}
		if c > 0 {
			st.max = v
		}
	}
	return nil
}

func finalizeAgg(st *aggState, spec plan.AggSpec) vector.Value {
	switch spec.Kind {
	case plan.AggCount:
		return vector.NewInt64(st.count)
	case plan.AggSum:
		if st.count == 0 {
			return vector.Null()
		}
		if spec.Typ == vector.Float64 {
			return vector.NewFloat64(st.sumF)
		}
		return vector.NewInt64(st.sumI)
	case plan.AggAvg:
		if st.count == 0 {
			return vector.Null()
		}
		return vector.NewFloat64(st.sumF / float64(st.count))
	case plan.AggMin:
		if st.min.Type() == vector.Invalid {
			return vector.Null()
		}
		return st.min
	case plan.AggMax:
		if st.max.Type() == vector.Invalid {
			return vector.Null()
		}
		return st.max
	}
	return vector.Null()
}

func (a *hashAggOp) Close() error { return a.child.Close() }
