package exec

import (
	"errors"
	"sync"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/spill"
	"vexdb/internal/vector"
)

// ErrCancelled is returned by ChunkStream.Next after the stream has
// been cancelled (Close/Cancel, or the context's Done channel).
var ErrCancelled = errors.New("exec: query cancelled")

// ChunkStream is the streaming form of Run: the root operator's output
// is pulled one chunk at a time instead of materialized into a table.
// Chunks come out in the exact order serial execution would produce.
//
// Next and Close must be called from the consuming goroutine. Cancel
// may be called from any goroutine (e.g. a server shutting down a
// connection): it closes the stream's cancellation channel, which the
// morsel-parallel operators observe between morsels and Next observes
// between chunks, so a blocked Next returns ErrCancelled promptly and
// scan workers stop instead of racing through the whole input.
type ChunkStream struct {
	op       Operator
	schema   catalog.Schema
	stats    *ScanStats
	spill    *SpillStats
	spillMgr *spill.Manager // owned: closed (files removed) on Close

	cancel     chan struct{}   // closed by Cancel/Close
	ext        <-chan struct{} // the caller's Context.Done, if any
	eff        <-chan struct{} // cancel merged with ext, watched by the operators
	cancelOnce sync.Once
	closeOnce  sync.Once
	closeErr   error
	done       bool

	causeMu sync.Mutex
	cause   error  // first CancelCause error, reported instead of ErrCancelled
	onClose func() // the caller Context's OnClose hook, fired once by Close
}

// Stream builds and opens a plan as a chunk-pull stream. The caller
// must Close the stream (even after an error from Next) to stop any
// parallel workers the plan started.
func Stream(node plan.Node, ctx *Context) (*ChunkStream, error) {
	if ctx == nil {
		ctx = &Context{}
	}
	// The operators watch one effective Done channel that fires on the
	// stream's own Cancel/Close OR the caller's Context.Done, so
	// Cancel keeps its contract even when the caller supplied a
	// channel. The merge goroutine exits once either fires (Close
	// always fires cancel). The caller's context is copied, not
	// mutated.
	cancel := make(chan struct{})
	ext := ctx.Done
	eff := (<-chan struct{})(cancel)
	if ext != nil {
		merged := make(chan struct{})
		go func() {
			select {
			case <-ext:
			case <-cancel:
			}
			close(merged)
		}()
		eff = merged
	}
	c2 := *ctx
	c2.Done = eff
	onClose := c2.OnClose
	c2.OnClose = nil
	if c2.Stats == nil {
		c2.Stats = &ScanStats{}
	}
	if c2.Spill == nil {
		c2.Spill = &SpillStats{}
	}
	// A memory budget arms out-of-core execution: one tracker and one
	// spill-file manager shared by every operator of the query. The
	// manager's directory is created lazily on first spill and removed
	// when the stream closes, so error, cancel and success paths all
	// leave TempDir clean (callers must Close even after errors —
	// already the stream contract). Nested streams (table-UDF
	// subplans) re-enter here with mem already set and share the
	// budget, but own their own manager.
	var ownedMgr *spill.Manager
	if c2.MemoryBudget > 0 {
		if c2.mem == nil {
			c2.mem = newMemTracker(c2.MemoryBudget)
			c2.mem.live = c2.LiveBudget
		}
		ownedMgr = spill.NewManager(c2.TempDir, c2.Spill)
		c2.spillMgr = ownedMgr
	}
	ctx = &c2
	op, err := buildWith(node, ctx.Workers())
	if err != nil {
		if ownedMgr != nil {
			ownedMgr.Close()
		}
		return nil, err
	}
	if err := op.Open(ctx); err != nil {
		// A failed Open can leave earlier-opened subtrees running
		// (parallel operators start workers in Open); Close cascades
		// the shutdown.
		op.Close()
		if ownedMgr != nil {
			ownedMgr.Close()
		}
		return nil, err
	}
	return &ChunkStream{op: op, schema: node.Schema(), stats: ctx.Stats, spill: ctx.Spill,
		spillMgr: ownedMgr, cancel: cancel, ext: ext, eff: eff, onClose: onClose}, nil
}

// Schema returns the stream's column names and types.
func (s *ChunkStream) Schema() catalog.Schema { return s.schema }

// Stats returns the query's scan counters (segments scanned vs.
// skipped by zone-map pruning). The counters are live: they keep
// growing until the stream is drained or closed.
func (s *ChunkStream) Stats() *ScanStats { return s.stats }

// SpillStats returns the query's out-of-core counters (partitions and
// sorted runs spilled to disk, spill bytes written/read). The counters
// are live until the stream is drained or closed; they stay zero when
// the query ran without a memory budget or fit within it.
func (s *ChunkStream) SpillStats() *SpillStats { return s.spill }

// Next returns the next result chunk with columns cast to the declared
// schema, or (nil, nil) when the stream is exhausted. After an error
// the stream is done; further calls return (nil, nil).
func (s *ChunkStream) Next() (*vector.Chunk, error) {
	if s.done {
		return nil, nil
	}
	if s.interrupted() {
		s.done = true
		return nil, s.cancelCause()
	}
	ch, err := s.op.Next()
	if err != nil {
		s.done = true
		if errors.Is(err, ErrCancelled) {
			return nil, s.cancelCause()
		}
		return nil, err
	}
	if ch == nil {
		s.done = true
		return nil, nil
	}
	out, err := castChunk(ch, s.schema)
	if err != nil {
		s.done = true
		return nil, err
	}
	return out, nil
}

// interrupted polls both cancellation sources directly rather than
// the merged channel: the merge goroutine may not have been scheduled
// yet (single-CPU runtimes), and Next must observe a preceding Cancel
// deterministically.
func (s *ChunkStream) interrupted() bool {
	select {
	case <-s.cancel:
		return true
	default:
	}
	if s.ext != nil {
		select {
		case <-s.ext:
			return true
		default:
		}
	}
	return false
}

// Cancel requests termination without closing the operators. It is
// safe to call from any goroutine and more than once; the consuming
// goroutine still owns the Close call.
func (s *ChunkStream) Cancel() {
	s.cancelOnce.Do(func() { close(s.cancel) })
}

// CancelCause cancels like Cancel but records err as the reason: a
// blocked or subsequent Next returns err instead of the generic
// ErrCancelled, so callers can tell a deadline expiry or a
// client-initiated cancel from a shutdown. The first recorded cause
// wins. Safe to call from any goroutine.
func (s *ChunkStream) CancelCause(err error) {
	if err != nil {
		s.causeMu.Lock()
		if s.cause == nil {
			s.cause = err
		}
		s.causeMu.Unlock()
	}
	s.Cancel()
}

// cancelCause returns the recorded cancellation cause, defaulting to
// ErrCancelled.
func (s *ChunkStream) cancelCause() error {
	s.causeMu.Lock()
	defer s.causeMu.Unlock()
	if s.cause != nil {
		return s.cause
	}
	return ErrCancelled
}

// Close cancels the stream and shuts the operator tree down, stopping
// and joining any parallel workers. Safe to call more than once.
func (s *ChunkStream) Close() error {
	s.Cancel()
	s.closeOnce.Do(func() {
		s.done = true
		s.closeErr = s.op.Close()
		// Remove the query's spill files after the operators released
		// them; a failed removal surfaces unless operator close
		// already failed.
		if err := s.spillMgr.Close(); err != nil && s.closeErr == nil {
			s.closeErr = err
		}
		if s.onClose != nil {
			s.onClose()
		}
	})
	return s.closeErr
}

// castChunk casts columns whose runtime type differs from the declared
// schema (e.g. untyped NULL columns).
func castChunk(ch *vector.Chunk, schema catalog.Schema) (*vector.Chunk, error) {
	for i := 0; i < ch.NumCols(); i++ {
		if ch.Col(i).Type() != schema[i].Type {
			return castChunkSlow(ch, schema)
		}
	}
	return ch, nil
}

func castChunkSlow(ch *vector.Chunk, schema catalog.Schema) (*vector.Chunk, error) {
	cols := make([]*vector.Vector, ch.NumCols())
	for i := 0; i < ch.NumCols(); i++ {
		c := ch.Col(i)
		if c.Type() != schema[i].Type {
			cc, err := c.Cast(schema[i].Type)
			if err != nil {
				return nil, errColumnCast(schema[i].Name, err)
			}
			c = cc
		}
		cols[i] = c
	}
	return vector.NewChunk(cols...), nil
}
