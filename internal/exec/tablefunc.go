package exec

import (
	"fmt"

	"vexdb/internal/core"
	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// tableFuncOp evaluates a table UDF's arguments (running subplans for
// relation arguments), invokes the function once, validates the result
// against the declared schema, and streams it out in chunks.
type tableFuncOp struct {
	spec *plan.TableFuncScan
	out  *materialOp
}

func newTableFuncOp(spec *plan.TableFuncScan) (Operator, error) {
	return &tableFuncOp{spec: spec}, nil
}

func (t *tableFuncOp) Open(ctx *Context) error {
	args := make([]core.TableArg, len(t.spec.Args))
	for i, a := range t.spec.Args {
		if a.Sub != nil {
			tab, err := Run(a.Sub, ctx)
			if err != nil {
				return fmt.Errorf("exec: argument %d of %s: %w", i+1, t.spec.Fn.Name, err)
			}
			args[i] = core.TableArg{Table: tab}
			continue
		}
		v, err := EvalConst(a.ConstExpr)
		if err != nil {
			return fmt.Errorf("exec: argument %d of %s: %w", i+1, t.spec.Fn.Name, err)
		}
		args[i] = core.TableArg{Scalar: v}
	}
	var out *vector.Table
	var err error
	if t.spec.Fn.FnPar != nil {
		// Parallel-aware table UDFs (the trainers) get the query's
		// worker count; their contract requires results identical to
		// the serial path at any count.
		out, err = t.spec.Fn.FnPar(args, ctx.Workers())
	} else {
		out, err = t.spec.Fn.Fn(args)
	}
	if err != nil {
		return fmt.Errorf("exec: table function %s: %w", t.spec.Fn.Name, err)
	}
	if out.NumCols() != len(t.spec.Fn.Columns) {
		return fmt.Errorf("exec: table function %s returned %d columns, declared %d",
			t.spec.Fn.Name, out.NumCols(), len(t.spec.Fn.Columns))
	}
	// Cast returned columns to the declared schema when needed.
	for i, decl := range t.spec.Fn.Columns {
		if out.Cols[i].Type() != decl.Type {
			cc, err := out.Cols[i].Cast(decl.Type)
			if err != nil {
				return fmt.Errorf("exec: table function %s column %q: %w", t.spec.Fn.Name, decl.Name, err)
			}
			out.Cols[i] = cc
		}
	}
	t.out = &materialOp{data: out}
	return t.out.Open(ctx)
}

func (t *tableFuncOp) Next() (*vector.Chunk, error) {
	if t.out == nil {
		return nil, nil
	}
	return t.out.Next()
}

func (t *tableFuncOp) Close() error { return nil }
