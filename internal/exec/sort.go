// Sort operators: the serial sortOp and the morsel-parallel
// parallelSortOp, both built on the shared run machinery in merge.go.
// Run generation accumulates rows (spilling whole sorted runs to disk
// when the query's memory budget is exceeded, and keeping only the
// top-k rows when a LIMIT bounds the observable output); a loser-tree
// merge then streams fully sorted chunks incrementally. The global
// input position tiebreak makes every configuration — serial or
// parallel, in-memory or spilled, any worker count, any budget —
// byte-identical to a serial stable sort.
package exec

import (
	"sync"
	"sync/atomic"

	"vexdb/internal/plan"
	"vexdb/internal/spill"
	"vexdb/internal/vector"
)

// ----------------------------------------------------------------- serial

// sortOp is the serial ORDER BY operator. It drains its child into a
// run builder (external runs under memory pressure, top-k compaction
// under a LIMIT hint) and streams the merged output.
type sortOp struct {
	spec   *plan.Sort
	child  Operator
	ctx    *Context
	merger *runMerger
	done   bool
}

func (s *sortOp) Open(ctx *Context) error {
	s.ctx = ctx
	s.merger = nil
	s.done = false
	return s.child.Open(ctx)
}

func (s *sortOp) Next() (*vector.Chunk, error) {
	if s.done {
		return nil, nil
	}
	if s.merger == nil {
		b := newRunBuilder(s.ctx, s.spec.Keys, s.spec.Limit, "sort")
		var rows int64
		for {
			if s.ctx.interrupted() {
				return nil, ErrCancelled
			}
			ch, err := s.child.Next()
			if err != nil {
				return nil, err
			}
			if ch == nil {
				break
			}
			if err := b.add(ch, rows); err != nil {
				return nil, err
			}
			rows += int64(ch.NumRows())
		}
		runs, file, err := b.finish()
		var files []*spill.File
		if file != nil {
			files = append(files, file)
		}
		if err != nil {
			releaseFiles(files)
			return nil, err
		}
		s.merger = newRunMerger(s.ctx, s.spec.Keys, runs, s.spec.Limit, files, b.heldBytes())
	}
	ch, err := s.merger.next(s.ctx)
	if err != nil {
		return nil, err
	}
	if ch == nil {
		s.done = true
	}
	return ch, nil
}

func (s *sortOp) Close() error {
	s.merger.close()
	return s.child.Close()
}

// ----------------------------------------------------------------- parallel

// parallelSortOp is the morsel-parallel ORDER BY operator: run
// generation fans out over the worker pool (each worker owning a run
// builder that spills under budget pressure), then Next streams merged
// chunks off the loser tree, observing cancellation between merge
// batches and stopping early once the plan's LIMIT bound is met.
type parallelSortOp struct {
	spec    *plan.Sort
	pipe    *pipeSpec
	workers int

	ctx     *Context
	started bool
	merger  *runMerger
}

func (s *parallelSortOp) Open(ctx *Context) error {
	s.ctx = ctx
	s.started = false
	s.merger = nil
	return nil
}

func (s *parallelSortOp) Next() (*vector.Chunk, error) {
	if !s.started {
		s.started = true
		runs, files, held, err := s.buildRuns()
		if err != nil {
			releaseFiles(files)
			return nil, err
		}
		s.merger = newRunMerger(s.ctx, s.spec.Keys, runs, s.spec.Limit, files, held)
	}
	if s.merger == nil {
		return nil, nil
	}
	return s.merger.next(s.ctx)
}

// buildRuns drains the input morsel-parallel into sorted runs: each
// worker accumulates claimed morsels in its own builder, spilling
// sorted runs whenever the shared budget is exceeded, and closes with
// one final in-memory run. Workers observe cancellation between
// morsels; a cancelled drain surfaces ErrCancelled rather than
// merging a partial input.
func (s *parallelSortOp) buildRuns() ([]*mergeRun, []*spill.File, int64, error) {
	n := s.pipe.src.open(s.ctx)
	workers := s.workers
	if cap := sortRunCap; cap >= 1 && workers > cap {
		workers = cap
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return nil, nil, 0, nil
	}
	perWorker := make([][]*mergeRun, workers)
	perWorkerFile := make([]*spill.File, workers)
	perWorkerHeld := make([]int64, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			b := newRunBuilder(s.ctx, s.spec.Keys, s.spec.Limit, "sort")
			var sc pipeScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() || s.ctx.interrupted() {
					break
				}
				ch, err := s.pipe.src.fetch(i)
				if err == nil {
					ch, err = s.pipe.apply(ch, &sc)
				}
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				if ch == nil || ch.NumRows() == 0 {
					continue
				}
				if err := b.add(ch, int64(i)<<32); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
			}
			runs, file, err := b.finish()
			perWorkerFile[w] = file
			perWorkerHeld[w] = b.heldBytes()
			if err != nil {
				errs[w] = err
				stop.Store(true)
				return
			}
			perWorker[w] = runs
		}(w)
	}
	wg.Wait()
	s.pipe.src.finish()
	var all []*mergeRun
	var files []*spill.File
	var held int64
	for _, runs := range perWorker {
		all = append(all, runs...)
	}
	for _, f := range perWorkerFile {
		if f != nil {
			files = append(files, f)
		}
	}
	for _, h := range perWorkerHeld {
		held += h
	}
	abort := func() {
		releaseFiles(files)
		s.ctx.memShrink(held)
	}
	for _, err := range errs {
		if err != nil {
			abort()
			return nil, nil, 0, err
		}
	}
	if s.ctx.interrupted() {
		// Workers stopped mid-input; a merge over partial runs would
		// silently drop rows.
		abort()
		return nil, nil, 0, ErrCancelled
	}
	return all, files, held, nil
}

func releaseFiles(files []*spill.File) {
	for _, f := range files {
		f.Release()
	}
}

func (s *parallelSortOp) Close() error {
	// Run generation joins its workers before buildRuns returns, so
	// nothing is in flight here; finish is idempotent and flushes scan
	// accounting when the stream is abandoned before the first Next.
	s.pipe.src.finish()
	s.merger.close()
	return nil
}

var _ Operator = (*parallelSortOp)(nil)
