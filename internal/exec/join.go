package exec

import (
	"fmt"

	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// hashJoinOp implements inner and left outer equi-joins: the right
// input is materialized into a hash table keyed on the right key
// expressions; left chunks probe it. With no key pairs it degrades to
// a cross product (single-bucket join). Residual ON conjuncts are
// applied to joined rows.
//
// When probePipe is set, the left input is a morsel-parallelizable
// pipeline: the build table is shared (it is read-only after Open) and
// workers probe left morsels concurrently, re-emitting join output in
// morsel order so results match serial execution row for row.
type hashJoinOp struct {
	spec  *plan.HashJoin
	left  Operator
	right Operator

	// probePipe, when non-nil, replaces left with a parallel probe.
	probePipe *pipeSpec
	workers   int
	drv       *orderedDriver
	ctx       *Context

	build    *vector.Chunk // materialized right input
	buildIdx map[string][]int
	// buildIdx64 is the fast path for a single integer equi-key.
	buildIdx64 map[int64][]int32
	done       bool
}

func (j *hashJoinOp) Open(ctx *Context) error {
	j.done = false
	j.ctx = ctx
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	build, err := drain(j.right, ctx)
	if err != nil {
		return err
	}
	j.build = build
	j.buildIdx = nil
	j.buildIdx64 = nil
	if build.NumCols() == 0 || build.NumRows() == 0 {
		j.buildIdx = map[string][]int{}
		return j.openProbe(ctx)
	}
	keyVecs := make([]*vector.Vector, len(j.spec.RightKeys))
	for i, k := range j.spec.RightKeys {
		v, err := Evaluate(k, build)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	leftIntKey := len(j.spec.LeftKeys) == 1 &&
		(j.spec.LeftKeys[0].Type() == vector.Int64 || j.spec.LeftKeys[0].Type() == vector.Int32)
	if len(keyVecs) == 1 && isIntKey(keyVecs[0]) && leftIntKey {
		j.buildIdx64 = make(map[int64][]int32, build.NumRows())
		kv := keyVecs[0]
		for r := 0; r < build.NumRows(); r++ {
			if kv.IsNull(r) {
				continue // NULL keys never match
			}
			k := intKeyAt(kv, r)
			j.buildIdx64[k] = append(j.buildIdx64[k], int32(r))
		}
		return j.openProbe(ctx)
	}
	j.buildIdx = make(map[string][]int, build.NumRows())
	var key []byte
	for r := 0; r < build.NumRows(); r++ {
		key = key[:0]
		null := false
		for _, kv := range keyVecs {
			if kv.IsNull(r) {
				null = true
				break
			}
			key = appendRowKey(key, kv, r)
		}
		if null {
			continue // NULL keys never match
		}
		j.buildIdx[string(key)] = append(j.buildIdx[string(key)], r)
	}
	return j.openProbe(ctx)
}

// openProbe starts the probe side once the build table is complete:
// either the serial left child, or the morsel-parallel probe workers
// (probe only reads the operator's state, so workers share it).
func (j *hashJoinOp) openProbe(ctx *Context) error {
	if j.probePipe == nil {
		return j.left.Open(ctx)
	}
	n := j.probePipe.src.open(ctx)
	scratch := make([]pipeScratch, j.workers)
	j.drv = startOrdered(n, j.workers, ctx.done(), func(w, i int) (*vector.Chunk, error) {
		ch, err := j.probePipe.src.fetch(i)
		if err == nil {
			ch, err = j.probePipe.apply(ch, &scratch[w])
		}
		if err != nil || ch == nil {
			return nil, err
		}
		return j.probe(ch)
	})
	return nil
}

func isIntKey(v *vector.Vector) bool {
	return v.Type() == vector.Int64 || v.Type() == vector.Int32
}

func intKeyAt(v *vector.Vector, r int) int64 {
	if v.Type() == vector.Int64 {
		return v.Int64s()[r]
	}
	return int64(v.Int32s()[r])
}

func (j *hashJoinOp) Next() (*vector.Chunk, error) {
	if j.done {
		return nil, nil
	}
	if j.drv != nil {
		return j.drv.next()
	}
	for {
		// A probe chunk whose every row misses produces no output;
		// observe cancellation between input chunks.
		if j.ctx.interrupted() {
			return nil, ErrCancelled
		}
		ch, err := j.left.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			j.done = true
			return nil, nil
		}
		out, err := j.probe(ch)
		if err != nil {
			return nil, err
		}
		if out != nil && out.NumRows() > 0 {
			return out, nil
		}
	}
}

func (j *hashJoinOp) probe(ch *vector.Chunk) (*vector.Chunk, error) {
	n := ch.NumRows()
	keyVecs := make([]*vector.Vector, len(j.spec.LeftKeys))
	for i, k := range j.spec.LeftKeys {
		v, err := Evaluate(k, ch)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = v
	}
	var leftSel, rightSel []int
	var unmatched []int
	var key []byte
	noKeys := len(j.spec.LeftKeys) == 0
	var allRight []int
	if noKeys {
		allRight = make([]int, j.build.NumRows())
		for i := range allRight {
			allRight[i] = i
		}
	}
	for r := 0; r < n; r++ {
		matched := false
		switch {
		case noKeys:
			for _, m := range allRight {
				leftSel = append(leftSel, r)
				rightSel = append(rightSel, m)
			}
			matched = len(allRight) > 0
		case j.buildIdx64 != nil:
			kv := keyVecs[0]
			if !kv.IsNull(r) {
				for _, m := range j.buildIdx64[intKeyAt(kv, r)] {
					leftSel = append(leftSel, r)
					rightSel = append(rightSel, int(m))
					matched = true
				}
			}
		default:
			key = key[:0]
			null := false
			for _, kv := range keyVecs {
				if kv.IsNull(r) {
					null = true
					break
				}
				key = appendRowKey(key, kv, r)
			}
			if !null {
				for _, m := range j.buildIdx[string(key)] {
					leftSel = append(leftSel, r)
					rightSel = append(rightSel, m)
					matched = true
				}
			}
		}
		if !matched && j.spec.Kind == sql.LeftJoin {
			unmatched = append(unmatched, r)
		}
	}

	leftCols := ch.Gather(leftSel).Cols()
	rightCols := j.gatherBuild(rightSel)
	joined := vector.NewChunk(append(leftCols, rightCols...)...)

	if j.spec.Extra != nil && joined.NumRows() > 0 {
		pred, err := Evaluate(j.spec.Extra, joined)
		if err != nil {
			return nil, err
		}
		if pred.Type() != vector.Bool {
			return nil, fmt.Errorf("exec: join condition must be boolean, got %s", pred.Type())
		}
		sel := make([]int, 0, joined.NumRows())
		keep := make(map[int]bool) // left rows that survived the residual
		for i := 0; i < joined.NumRows(); i++ {
			if !pred.IsNull(i) && pred.Bools()[i] {
				sel = append(sel, i)
				keep[leftSel[i]] = true
			}
		}
		if j.spec.Kind == sql.LeftJoin {
			// Left rows whose every match failed the residual are
			// emitted null-padded.
			seen := make(map[int]bool)
			for _, l := range leftSel {
				if !seen[l] && !keep[l] {
					unmatched = append(unmatched, l)
				}
				seen[l] = true
			}
		}
		joined = joined.Gather(sel)
	}

	if j.spec.Kind == sql.LeftJoin && len(unmatched) > 0 {
		padded := j.padUnmatched(ch, unmatched)
		joined = concatChunks(joined, padded)
	}
	return joined, nil
}

// gatherBuild gathers build-side rows; with an empty build relation it
// synthesizes empty columns of the right schema's types.
func (j *hashJoinOp) gatherBuild(sel []int) []*vector.Vector {
	if j.build.NumCols() > 0 {
		return j.build.Gather(sel).Cols()
	}
	rightSchema := j.spec.Right.Schema()
	cols := make([]*vector.Vector, len(rightSchema))
	for i, c := range rightSchema {
		cols[i] = vector.New(c.Type, 0)
	}
	return cols
}

// padUnmatched builds output rows for unmatched left rows with NULL
// right columns.
func (j *hashJoinOp) padUnmatched(ch *vector.Chunk, rows []int) *vector.Chunk {
	leftCols := ch.Gather(rows).Cols()
	rightSchema := j.spec.Right.Schema()
	rightCols := make([]*vector.Vector, len(rightSchema))
	for i, c := range rightSchema {
		v := vector.New(c.Type, len(rows))
		for range rows {
			v.AppendValue(vector.Null())
		}
		rightCols[i] = v
	}
	return vector.NewChunk(append(leftCols, rightCols...)...)
}

func concatChunks(a, b *vector.Chunk) *vector.Chunk {
	if a.NumCols() == 0 || a.NumRows() == 0 {
		return b
	}
	if b.NumRows() == 0 {
		return a
	}
	cols := make([]*vector.Vector, a.NumCols())
	for i := range cols {
		v := vector.New(a.Col(i).Type(), a.NumRows()+b.NumRows())
		v.AppendVector(a.Col(i))
		v.AppendVector(b.Col(i))
		cols[i] = v
	}
	return vector.NewChunk(cols...)
}

func (j *hashJoinOp) Close() error {
	j.drv.abort()
	if j.probePipe != nil {
		j.probePipe.src.finish()
	}
	var lerr error
	if j.left != nil {
		lerr = j.left.Close()
	}
	rerr := j.right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}
