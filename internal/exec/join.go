package exec

import (
	"fmt"
	"sync"
	"sync/atomic"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// hashJoinOp implements inner and left outer equi-joins: the right
// input is materialized into a hash table keyed on the right key
// expressions; left chunks probe it. With no key pairs it degrades to
// a cross product (single-bucket join). Residual ON conjuncts are
// applied to joined rows.
//
// When probePipe is set, the left input is a morsel-parallelizable
// pipeline: the build table is shared (it is read-only after Open) and
// workers probe left morsels concurrently, re-emitting join output in
// morsel order so results match serial execution row for row.
type hashJoinOp struct {
	spec  *plan.HashJoin
	left  Operator
	right Operator

	// probePipe, when non-nil, replaces left with a parallel probe.
	probePipe *pipeSpec
	workers   int
	drv       *orderedDriver
	ctx       *Context

	build    *vector.Chunk // materialized right input
	buildIdx map[string][]int
	// buildIdx64 is the fast path for a single integer equi-key.
	buildIdx64 map[int64][]int32
	done       bool

	// spill is non-nil once the build side grace-partitioned to disk
	// under the memory budget (join_spill.go); probing then runs
	// through the partitioned path and emission through the
	// order-restoring merger.
	spill       *joinSpill
	spillMerger *runMerger
}

func (j *hashJoinOp) Open(ctx *Context) error {
	j.done = false
	j.ctx = ctx
	j.spill = nil
	j.spillMerger = nil
	if err := j.right.Open(ctx); err != nil {
		return err
	}
	build, js, err := j.drainBuild(ctx)
	if err != nil {
		return err
	}
	if js != nil {
		j.spill = js
		if err := js.finishBuild(); err != nil {
			return err
		}
		// Probing runs serially under spill (the order-restoring sort
		// makes output order independent of probe scheduling); the
		// pipeline source, when present, is drained morsel by morsel
		// in spillProbe instead of through the ordered driver.
		if j.probePipe == nil {
			return j.left.Open(ctx)
		}
		return nil
	}
	j.build = build
	j.buildIdx = nil
	j.buildIdx64 = nil
	if build.NumCols() == 0 || build.NumRows() == 0 {
		j.buildIdx = map[string][]int{}
		return j.openProbe(ctx)
	}
	keyVecs := make([]*vector.Vector, len(j.spec.RightKeys))
	for i, k := range j.spec.RightKeys {
		v, err := Evaluate(k, build)
		if err != nil {
			return err
		}
		keyVecs[i] = v
	}
	leftIntKey := len(j.spec.LeftKeys) == 1 &&
		(j.spec.LeftKeys[0].Type() == vector.Int64 || j.spec.LeftKeys[0].Type() == vector.Int32)
	if len(keyVecs) == 1 && isIntKey(keyVecs[0]) && leftIntKey {
		j.buildIdx64 = make(map[int64][]int32, build.NumRows())
		kv := keyVecs[0]
		for r := 0; r < build.NumRows(); r++ {
			if kv.IsNull(r) {
				continue // NULL keys never match
			}
			k := intKeyAt(kv, r)
			j.buildIdx64[k] = append(j.buildIdx64[k], int32(r))
		}
		return j.openProbe(ctx)
	}
	j.buildIdx = make(map[string][]int, build.NumRows())
	var key []byte
	for r := 0; r < build.NumRows(); r++ {
		key = key[:0]
		null := false
		for _, kv := range keyVecs {
			if kv.IsNull(r) {
				null = true
				break
			}
			key = appendRowKey(key, kv, r)
		}
		if null {
			continue // NULL keys never match
		}
		j.buildIdx[string(key)] = append(j.buildIdx[string(key)], r)
	}
	return j.openProbe(ctx)
}

// drainBuild materializes the right input. Under a memory budget (and
// for joins that can grace-partition at all) it accounts the build
// footprint as it grows and switches to partitioned spill the moment
// the budget is exceeded, returning the spill state instead of a
// build chunk.
func (j *hashJoinOp) drainBuild(ctx *Context) (*vector.Chunk, *joinSpill, error) {
	if !ctx.spillEnabled() || !spillableJoin(j.spec) {
		ch, err := drain(j.right, ctx)
		return ch, nil, err
	}
	intKey := joinIntKey(j.spec)
	var acc []*vector.Vector
	var bytes int64
	var js *joinSpill
	for {
		if ctx.interrupted() {
			return nil, nil, ErrCancelled
		}
		ch, err := j.right.Next()
		if err != nil {
			return nil, nil, err
		}
		if ch == nil {
			break
		}
		if ch.NumRows() == 0 {
			continue
		}
		if js != nil {
			if err := js.addBuildChunk(ch); err != nil {
				return nil, nil, err
			}
			if err := js.spillUntilFits(); err != nil {
				return nil, nil, err
			}
			continue
		}
		if acc == nil {
			acc = make([]*vector.Vector, ch.NumCols())
			for i := range acc {
				acc[i] = vector.New(ch.Col(i).Type(), ch.NumRows())
			}
		}
		for i := range acc {
			acc[i].AppendVector(ch.Col(i))
		}
		b := chunkBytes(ch)
		bytes += b
		ctx.memGrow(b)
		if ctx.shouldSpill(bytes) {
			js, err = newJoinSpill(ctx, j.spec, acc, bytes, intKey)
			if err != nil {
				return nil, nil, err
			}
			acc = nil
		}
	}
	if js != nil {
		return nil, js, nil
	}
	if acc == nil {
		return vector.NewChunk(), nil, nil
	}
	return vector.NewChunk(acc...), nil, nil
}

// spillProbe drains the probe input through the partitioned path:
// resident partitions join immediately, spilled ones defer, and the
// deferred partitions are then processed one at a time. A pipelined
// probe side keeps its morsel parallelism — workers claim morsels and
// probe concurrently; the order-restoring sort hides the scheduling.
func (j *hashJoinOp) spillProbe() error {
	js := j.spill
	switch {
	case j.probePipe != nil && j.workers > 1:
		if err := j.spillProbeParallel(); err != nil {
			return err
		}
	case j.probePipe != nil:
		ps := js.newProbeState()
		n := j.probePipe.src.open(j.ctx)
		var sc pipeScratch
		for i := 0; i < n; i++ {
			if j.ctx.interrupted() {
				return ErrCancelled
			}
			ch, err := j.probePipe.src.fetch(i)
			if err == nil {
				ch, err = j.probePipe.apply(ch, &sc)
			}
			if err != nil {
				return err
			}
			if ch == nil || ch.NumRows() == 0 {
				continue
			}
			if err := js.probeChunk(ch, i, ps); err != nil {
				return err
			}
		}
		j.probePipe.src.finish()
	default:
		ps := js.newProbeState()
		c := 0
		for {
			if j.ctx.interrupted() {
				return ErrCancelled
			}
			ch, err := j.left.Next()
			if err != nil {
				return err
			}
			if ch == nil {
				break
			}
			if ch.NumRows() > 0 {
				if err := js.probeChunk(ch, c, ps); err != nil {
					return err
				}
			}
			c++
		}
	}
	return js.processSpilled(js.newProbeState())
}

// spillProbeParallel drains a pipelined probe side with a worker pool:
// each worker claims morsels, probes resident partitions through its
// own probe state (private run builder and key scratch), and
// serializes only on routing rows deferred to spilled partitions.
func (j *hashJoinOp) spillProbeParallel() error {
	js := j.spill
	n := j.probePipe.src.open(j.ctx)
	workers := j.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ps := js.newProbeState()
			var sc pipeScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() || j.ctx.interrupted() {
					return
				}
				ch, err := j.probePipe.src.fetch(i)
				if err == nil {
					ch, err = j.probePipe.apply(ch, &sc)
				}
				if err == nil && ch != nil && ch.NumRows() > 0 {
					err = js.probeChunk(ch, i, ps)
				}
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	j.probePipe.src.finish()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if j.ctx.interrupted() {
		return ErrCancelled
	}
	return nil
}

// spillNext streams the spilled join's output: first drain the probe
// side through the partitions, then emit the order-restored merge,
// stripping the tag columns.
func (j *hashJoinOp) spillNext() (*vector.Chunk, error) {
	if j.spillMerger == nil {
		if err := j.spillProbe(); err != nil {
			return nil, err
		}
		m, err := j.spill.finishEmit()
		if err != nil {
			return nil, err
		}
		j.spillMerger = m
	}
	ch, err := j.spillMerger.next(j.ctx)
	if err != nil {
		return nil, err
	}
	if ch == nil {
		j.done = true
		return nil, nil
	}
	return vector.NewChunk(ch.Cols()[:j.spill.outCols]...), nil
}

// openProbe starts the probe side once the build table is complete:
// either the serial left child, or the morsel-parallel probe workers
// (probe only reads the operator's state, so workers share it).
func (j *hashJoinOp) openProbe(ctx *Context) error {
	if j.probePipe == nil {
		return j.left.Open(ctx)
	}
	n := j.probePipe.src.open(ctx)
	scratch := make([]pipeScratch, j.workers)
	j.drv = startOrdered(n, j.workers, ctx.done(), func(w, i int) (*vector.Chunk, error) {
		ch, err := j.probePipe.src.fetch(i)
		if err == nil {
			ch, err = j.probePipe.apply(ch, &scratch[w])
		}
		if err != nil || ch == nil {
			return nil, err
		}
		return j.probe(ch)
	})
	return nil
}

func isIntKey(v *vector.Vector) bool {
	return v.Type() == vector.Int64 || v.Type() == vector.Int32
}

func intKeyAt(v *vector.Vector, r int) int64 {
	if v.Type() == vector.Int64 {
		return v.Int64s()[r]
	}
	return int64(v.Int32s()[r])
}

func (j *hashJoinOp) Next() (*vector.Chunk, error) {
	if j.done {
		return nil, nil
	}
	if j.spill != nil {
		return j.spillNext()
	}
	if j.drv != nil {
		return j.drv.next()
	}
	for {
		// A probe chunk whose every row misses produces no output;
		// observe cancellation between input chunks.
		if j.ctx.interrupted() {
			return nil, ErrCancelled
		}
		ch, err := j.left.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			j.done = true
			return nil, nil
		}
		out, err := j.probe(ch)
		if err != nil {
			return nil, err
		}
		if out != nil && out.NumRows() > 0 {
			return out, nil
		}
	}
}

func (j *hashJoinOp) probe(ch *vector.Chunk) (*vector.Chunk, error) {
	n := ch.NumRows()
	keyVecs := make([]*vector.Vector, len(j.spec.LeftKeys))
	for i, k := range j.spec.LeftKeys {
		v, err := Evaluate(k, ch)
		if err != nil {
			return nil, err
		}
		keyVecs[i] = v
	}
	var leftSel, rightSel []int
	var unmatched []int
	var key []byte
	noKeys := len(j.spec.LeftKeys) == 0
	var allRight []int
	if noKeys {
		allRight = make([]int, j.build.NumRows())
		for i := range allRight {
			allRight[i] = i
		}
	}
	for r := 0; r < n; r++ {
		matched := false
		switch {
		case noKeys:
			for _, m := range allRight {
				leftSel = append(leftSel, r)
				rightSel = append(rightSel, m)
			}
			matched = len(allRight) > 0
		case j.buildIdx64 != nil:
			kv := keyVecs[0]
			if !kv.IsNull(r) {
				for _, m := range j.buildIdx64[intKeyAt(kv, r)] {
					leftSel = append(leftSel, r)
					rightSel = append(rightSel, int(m))
					matched = true
				}
			}
		default:
			key = key[:0]
			null := false
			for _, kv := range keyVecs {
				if kv.IsNull(r) {
					null = true
					break
				}
				key = appendRowKey(key, kv, r)
			}
			if !null {
				for _, m := range j.buildIdx[string(key)] {
					leftSel = append(leftSel, r)
					rightSel = append(rightSel, m)
					matched = true
				}
			}
		}
		if !matched && j.spec.Kind == sql.LeftJoin {
			unmatched = append(unmatched, r)
		}
	}

	leftCols := ch.Gather(leftSel).Cols()
	rightCols := j.gatherBuild(rightSel)
	joined := vector.NewChunk(append(leftCols, rightCols...)...)

	if j.spec.Extra != nil && joined.NumRows() > 0 {
		pred, err := Evaluate(j.spec.Extra, joined)
		if err != nil {
			return nil, err
		}
		if pred.Type() != vector.Bool {
			return nil, fmt.Errorf("exec: join condition must be boolean, got %s", pred.Type())
		}
		sel := make([]int, 0, joined.NumRows())
		keep := make(map[int]bool) // left rows that survived the residual
		for i := 0; i < joined.NumRows(); i++ {
			if !pred.IsNull(i) && pred.Bools()[i] {
				sel = append(sel, i)
				keep[leftSel[i]] = true
			}
		}
		if j.spec.Kind == sql.LeftJoin {
			// Left rows whose every match failed the residual are
			// emitted null-padded.
			seen := make(map[int]bool)
			for _, l := range leftSel {
				if !seen[l] && !keep[l] {
					unmatched = append(unmatched, l)
				}
				seen[l] = true
			}
		}
		joined = joined.Gather(sel)
	}

	if j.spec.Kind == sql.LeftJoin && len(unmatched) > 0 {
		padded := j.padUnmatched(ch, unmatched)
		joined = concatChunks(joined, padded)
	}
	return joined, nil
}

// gatherBuild gathers build-side rows; with an empty build relation it
// synthesizes empty columns of the right schema's types.
func (j *hashJoinOp) gatherBuild(sel []int) []*vector.Vector {
	if j.build.NumCols() > 0 {
		return j.build.Gather(sel).Cols()
	}
	rightSchema := j.spec.Right.Schema()
	cols := make([]*vector.Vector, len(rightSchema))
	for i, c := range rightSchema {
		cols[i] = vector.New(c.Type, 0)
	}
	return cols
}

// padUnmatched builds output rows for unmatched left rows with NULL
// right columns.
func (j *hashJoinOp) padUnmatched(ch *vector.Chunk, rows []int) *vector.Chunk {
	return padRightNull(j.spec.Right.Schema(), ch, rows)
}

// padRightNull gathers the selected left rows and pads the right
// schema's columns with NULLs — the LEFT-join padding shape shared by
// the in-memory probe and the spilled join (which must stay
// byte-identical to each other).
func padRightNull(rightSchema catalog.Schema, ch *vector.Chunk, rows []int) *vector.Chunk {
	leftCols := ch.Gather(rows).Cols()
	rightCols := make([]*vector.Vector, len(rightSchema))
	for i, c := range rightSchema {
		v := vector.New(c.Type, len(rows))
		for range rows {
			v.AppendValue(vector.Null())
		}
		rightCols[i] = v
	}
	return vector.NewChunk(append(leftCols, rightCols...)...)
}

func concatChunks(a, b *vector.Chunk) *vector.Chunk {
	if a.NumCols() == 0 || a.NumRows() == 0 {
		return b
	}
	if b.NumRows() == 0 {
		return a
	}
	cols := make([]*vector.Vector, a.NumCols())
	for i := range cols {
		v := vector.New(a.Col(i).Type(), a.NumRows()+b.NumRows())
		v.AppendVector(a.Col(i))
		v.AppendVector(b.Col(i))
		cols[i] = v
	}
	return vector.NewChunk(cols...)
}

func (j *hashJoinOp) Close() error {
	j.drv.abort()
	if j.probePipe != nil {
		j.probePipe.src.finish()
	}
	j.spill.release()
	j.spillMerger.close()
	var lerr error
	if j.left != nil {
		lerr = j.left.Close()
	}
	rerr := j.right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}
