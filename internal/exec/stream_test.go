package exec

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

func bigMaterial(t *testing.T, rows int) *plan.Material {
	t.Helper()
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i)
	}
	tab, err := vector.NewTable([]string{"x"}, []*vector.Vector{vector.FromInt64s(vals)})
	if err != nil {
		t.Fatal(err)
	}
	return &plan.Material{
		Data:  tab,
		Schem: catalog.Schema{{Name: "x", Type: vector.Int64}},
	}
}

func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// A LIMIT above a parallel pipeline must stop the stream after the
// requested rows, and Close must join all scan workers.
func TestChunkStreamLimitEarlyExit(t *testing.T) {
	before := runtime.NumGoroutine()
	node := plan.Node(&plan.Limit{Count: 5, Offset: 0, Child: bigMaterial(t, 100_000)})
	s, err := Stream(node, &Context{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	for {
		ch, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ch == nil {
			break
		}
		rows += ch.NumRows()
	}
	if rows != 5 {
		t.Fatalf("LIMIT 5 streamed %d rows", rows)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, before)
}

// countingSource counts fetches so tests can assert workers did not
// race through the whole input.
type countingSource struct {
	rows    int
	perMors int
	fetches atomic.Int64
	delay   time.Duration
}

func (c *countingSource) open(*Context) int { return (c.rows + c.perMors - 1) / c.perMors }

func (c *countingSource) fetch(i int) (*vector.Chunk, error) {
	c.fetches.Add(1)
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	from := i * c.perMors
	to := from + c.perMors
	if to > c.rows {
		to = c.rows
	}
	vals := make([]int64, to-from)
	for j := range vals {
		vals[j] = int64(from + j)
	}
	return vector.NewChunk(vector.FromInt64s(vals)), nil
}

func (c *countingSource) finish() {}

// Abandoning a stream early (client disconnect) must stop workers with
// bounded extra fetches: at most consumed + run-ahead window + one
// in-flight morsel per worker.
func TestChunkStreamCloseStopsFetches(t *testing.T) {
	const workers = 2
	src := &countingSource{rows: 64 * 16, perMors: 16}
	op := &parallelPipeOp{pipe: &pipeSpec{src: src}, workers: workers}
	cancel := make(chan struct{})
	ctx := &Context{Parallelism: workers, Done: cancel}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	s := &ChunkStream{op: op, schema: catalog.Schema{{Name: "x", Type: vector.Int64}}, cancel: cancel, eff: cancel}
	if ch, err := s.Next(); err != nil || ch == nil {
		t.Fatalf("first chunk: %v %v", ch, err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// 1 consumed + 2*workers run-ahead + workers in-flight claims.
	if got := src.fetches.Load(); got > int64(1+3*workers) {
		t.Fatalf("%d morsels fetched after consuming 1 chunk; early close did not stop workers", got)
	}
}

// Cancel from another goroutine must unblock a consumer waiting in
// Next and surface ErrCancelled.
func TestChunkStreamCancelUnblocksNext(t *testing.T) {
	const workers = 2
	src := &countingSource{rows: 1 << 20, perMors: 8, delay: 2 * time.Millisecond}
	op := &parallelPipeOp{pipe: &pipeSpec{src: src}, workers: workers}
	cancel := make(chan struct{})
	ctx := &Context{Parallelism: workers, Done: cancel}
	if err := op.Open(ctx); err != nil {
		t.Fatal(err)
	}
	s := &ChunkStream{op: op, schema: catalog.Schema{{Name: "x", Type: vector.Int64}}, cancel: cancel, eff: cancel}
	go func() {
		time.Sleep(10 * time.Millisecond)
		s.Cancel()
	}()
	var err error
	for err == nil {
		var ch *vector.Chunk
		ch, err = s.Next()
		if err == nil && ch == nil {
			t.Fatal("stream drained 1M rows before cancel")
		}
	}
	if !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got, total := src.fetches.Load(), int64(src.open(nil)); got >= total {
		t.Fatalf("all %d morsels fetched despite cancel", total)
	}
}

// Run must stay equivalent to Stream+Materialize (Run is now a thin
// wrapper, but guard the contract).
func TestRunMatchesStream(t *testing.T) {
	node := plan.Node(bigMaterial(t, 10_000))
	ran, err := Run(node, &Context{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stream(node, &Context{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	streamed, err := s.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if ran.NumRows() != streamed.NumRows() {
		t.Fatalf("rows: run %d, stream %d", ran.NumRows(), streamed.NumRows())
	}
	for i := 0; i < ran.NumRows(); i += 997 {
		if ran.Cols[0].Int64s()[i] != streamed.Cols[0].Int64s()[i] {
			t.Fatalf("row %d differs", i)
		}
	}
}

// Cancel must keep its contract when the caller supplied its own
// Context.Done: the stream merges both signals.
func TestCancelWithCallerSuppliedDone(t *testing.T) {
	ext := make(chan struct{}) // never closed
	s, err := Stream(plan.Node(bigMaterial(t, 1_000_000)), &Context{Parallelism: 2, Done: ext})
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel()
	drained := 0
	for {
		ch, err := s.Next()
		if err != nil {
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("err = %v, want ErrCancelled", err)
			}
			break
		}
		if ch == nil {
			t.Fatal("stream fully drained; Cancel was not propagated past the caller's Done")
		}
		drained += ch.NumRows()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Closing the caller's Done channel must cancel the stream too.
func TestCallerDoneCancelsStream(t *testing.T) {
	ext := make(chan struct{})
	s, err := Stream(plan.Node(bigMaterial(t, 1_000_000)), &Context{Parallelism: 2, Done: ext})
	if err != nil {
		t.Fatal(err)
	}
	close(ext)
	for {
		ch, err := s.Next()
		if err != nil {
			if !errors.Is(err, ErrCancelled) {
				t.Fatalf("err = %v, want ErrCancelled", err)
			}
			break
		}
		if ch == nil {
			t.Fatal("stream fully drained; caller Done was not observed")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
