package exec

import (
	"math"
	"testing"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// mkRun builds a sortedRun over a single pre-sorted int64 key column
// with explicit global positions.
func mkRun(t *testing.T, vals []int64, pos []int64) *sortedRun {
	t.Helper()
	col := vector.FromInt64s(vals)
	return &sortedRun{data: vector.NewChunk(col), keys: []*vector.Vector{col}, pos: pos}
}

func TestLoserTreeMergeOrder(t *testing.T) {
	keys := []plan.SortKey{{Expr: colRef(0, vector.Int64)}}
	runs := []*mergeRun{
		newMemRun(mkRun(t, []int64{1, 4, 7, 9}, []int64{0, 3, 6, 9})),
		newMemRun(mkRun(t, []int64{2, 4, 8}, []int64{1, 4, 7})),
		newMemRun(mkRun(t, []int64{0, 4, 10, 11, 12}, []int64{2, 5, 8, 10, 11})),
	}
	lt := newLoserTree(keys, runs)
	var got []int64
	for {
		win, row, ok := lt.next()
		if !ok {
			break
		}
		got = append(got, win.data.Col(0).Int64s()[row])
	}
	if lt.err != nil {
		t.Fatal(lt.err)
	}
	want := []int64{0, 1, 2, 4, 4, 4, 7, 8, 9, 10, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("merged %d rows, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

// TestLoserTreeTiebreakByPosition: equal keys must come out in global
// input-position order, reproducing serial stable-sort semantics.
func TestLoserTreeTiebreakByPosition(t *testing.T) {
	keys := []plan.SortKey{{Expr: colRef(0, vector.Int64)}}
	runs := []*mergeRun{
		newMemRun(mkRun(t, []int64{5, 5}, []int64{4, 6})),
		newMemRun(mkRun(t, []int64{5, 5}, []int64{1, 9})),
		newMemRun(mkRun(t, []int64{5}, []int64{3})),
	}
	lt := newLoserTree(keys, runs)
	var gotPos []int64
	for {
		win, row, ok := lt.next()
		if !ok {
			break
		}
		gotPos = append(gotPos, win.pos[row])
	}
	want := []int64{1, 3, 4, 6, 9}
	for i := range want {
		if gotPos[i] != want[i] {
			t.Fatalf("tie order %v, want %v", gotPos, want)
		}
	}
}

func TestLoserTreeSingleAndEmpty(t *testing.T) {
	keys := []plan.SortKey{{Expr: colRef(0, vector.Int64)}}
	if _, _, ok := newLoserTree(keys, nil).next(); ok {
		t.Fatal("empty tree must be exhausted")
	}
	lt := newLoserTree(keys, []*mergeRun{newMemRun(mkRun(t, []int64{3, 8}, []int64{0, 1}))})
	var got []int64
	for {
		win, row, ok := lt.next()
		if !ok {
			break
		}
		got = append(got, win.data.Col(0).Int64s()[row])
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 8 {
		t.Fatalf("single-run merge = %v", got)
	}
}

// forceWideMerge lifts the hardware run cap so multi-run merges are
// exercised even on single-core CI machines.
func forceWideMerge(t *testing.T) {
	t.Helper()
	old := sortRunCap
	sortRunCap = 8
	t.Cleanup(func() { sortRunCap = old })
}

// buildFloatSortTable creates a multi-segment table whose float column
// cycles through NaN, NULL, ±Inf and duplicated finite values — the
// adversarial inputs for a total-order sort.
func buildFloatSortTable(t *testing.T, rows int) *catalog.Table {
	t.Helper()
	cat := catalog.New()
	tab, err := cat.CreateTable("f", catalog.Schema{
		{Name: "id", Type: vector.Int64},
		{Name: "v", Type: vector.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, rows)
	vs := vector.New(vector.Float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		switch i % 11 {
		case 3:
			vs.AppendValue(vector.NewFloat64(math.NaN()))
		case 5:
			vs.AppendValue(vector.Null())
		case 7:
			vs.AppendValue(vector.NewFloat64(math.Inf(1)))
		case 9:
			vs.AppendValue(vector.NewFloat64(math.Inf(-1)))
		default:
			vs.AppendValue(vector.NewFloat64(float64(i % 13)))
		}
	}
	if err := tab.Data.AppendChunk(vector.NewChunk(vector.FromInt64s(ids), vs)); err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestParallelSortMatchesSerial: the run-merge output must be
// byte-identical to the serial stable sort at every worker count,
// including over NaN/NULL/±Inf keys and duplicate values.
func TestParallelSortMatchesSerial(t *testing.T) {
	forceWideMerge(t)
	tab := buildFloatSortTable(t, 3*vector.DefaultChunkSize+41)
	for _, desc := range []bool{false, true} {
		node := plan.Node(&plan.Sort{
			Keys:  []plan.SortKey{{Expr: colRef(1, vector.Float64), Desc: desc}},
			Child: &plan.Scan{Table: tab},
		})
		serial, err := Run(node, &Context{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			par, err := Run(node, &Context{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.NumRows() != serial.NumRows() {
				t.Fatalf("desc=%v workers=%d: %d rows, serial %d", desc, workers, par.NumRows(), serial.NumRows())
			}
			for i := 0; i < serial.NumRows(); i++ {
				// Compare ids: with the position tiebreak the permutation
				// itself must match, not just the key ordering.
				if par.Cols[0].Int64s()[i] != serial.Cols[0].Int64s()[i] {
					t.Fatalf("desc=%v workers=%d row %d: id %d, serial %d",
						desc, workers, i, par.Cols[0].Int64s()[i], serial.Cols[0].Int64s()[i])
				}
			}
		}
	}
}

// TestParallelSortNaNLast: ascending ORDER BY must place NaN after
// +Inf and before NULL, deterministically.
func TestParallelSortNaNLast(t *testing.T) {
	forceWideMerge(t)
	tab := buildFloatSortTable(t, 2*vector.DefaultChunkSize)
	node := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(1, vector.Float64)}},
		Child: &plan.Scan{Table: tab},
	})
	out, err := Run(node, &Context{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	v := out.Cols[1]
	state := 0 // 0 finite/-inf, 1 +inf, 2 nan, 3 null
	for i := 0; i < v.Len(); i++ {
		var s int
		switch {
		case v.IsNull(i):
			s = 3
		case math.IsNaN(v.Float64s()[i]):
			s = 2
		case math.IsInf(v.Float64s()[i], 1):
			s = 1
		}
		if s < state {
			t.Fatalf("row %d: class %d after class %d (value %v)", i, s, state, v.Get(i))
		}
		state = s
	}
	if state != 3 {
		t.Fatal("expected NULLs at the tail")
	}
}

// TestParallelSortLimitStopsMerge: a Sort.Limit hint must truncate the
// merged output to the bound (the enclosing Limit re-applies it), and
// the prefix must equal the serial sort's prefix.
func TestParallelSortLimitStopsMerge(t *testing.T) {
	forceWideMerge(t)
	tab := buildMultiSegTable(t, 4*vector.DefaultChunkSize)
	full := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(2, vector.Float64)}, {Expr: colRef(0, vector.Int64), Desc: true}},
		Child: &plan.Scan{Table: tab},
	})
	serial, err := Run(full, &Context{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	limited := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(2, vector.Float64)}, {Expr: colRef(0, vector.Int64), Desc: true}},
		Child: &plan.Scan{Table: tab},
		Limit: 37,
	})
	out, err := Run(limited, &Context{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 37 {
		t.Fatalf("limited merge emitted %d rows, want 37", out.NumRows())
	}
	for i := 0; i < 37; i++ {
		if out.Cols[0].Int64s()[i] != serial.Cols[0].Int64s()[i] {
			t.Fatalf("row %d: id %d, serial %d", i, out.Cols[0].Int64s()[i], serial.Cols[0].Int64s()[i])
		}
	}
}

// TestParallelSortEmptyAndTiny: no input rows and fewer rows than
// workers must both behave.
func TestParallelSortEmptyAndTiny(t *testing.T) {
	forceWideMerge(t)
	tab := buildMultiSegTable(t, 5)
	empty := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(0, vector.Int64)}},
		Child: &plan.Filter{Pred: gtPred(0, vector.Int64, 1_000_000), Child: &plan.Scan{Table: tab}},
	})
	out, err := Run(empty, &Context{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("empty sort produced %d rows", out.NumRows())
	}
	tiny := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(0, vector.Int64), Desc: true}},
		Child: &plan.Scan{Table: tab},
	})
	out, err = Run(tiny, &Context{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 5 || out.Cols[0].Int64s()[0] != 4 {
		t.Fatalf("tiny sort wrong: %d rows", out.NumRows())
	}
}

// TestParallelDistinctAggMatchesSerial covers COUNT/SUM/AVG/MIN/MAX
// (DISTINCT ...) against serial execution, grouped and global.
func TestParallelDistinctAggMatchesSerial(t *testing.T) {
	tab := buildMultiSegTable(t, 4*vector.DefaultChunkSize)
	specs := []plan.AggSpec{
		{Kind: plan.AggCount, Arg: colRef(2, vector.Float64), Distinct: true, Name: "cd", Typ: vector.Int64},
		{Kind: plan.AggSum, Arg: colRef(2, vector.Float64), Distinct: true, Name: "sd", Typ: vector.Float64},
		{Kind: plan.AggAvg, Arg: colRef(0, vector.Int64), Distinct: true, Name: "ad", Typ: vector.Float64},
		{Kind: plan.AggMin, Arg: colRef(2, vector.Float64), Distinct: true, Name: "mnd", Typ: vector.Float64},
		{Kind: plan.AggMax, Arg: colRef(2, vector.Float64), Distinct: true, Name: "mxd", Typ: vector.Float64},
		{Kind: plan.AggCount, Name: "n", Typ: vector.Int64}, // mixed with plain aggs
	}
	for _, grouped := range []bool{false, true} {
		node := &plan.Aggregate{Aggs: specs, Child: &plan.Scan{Table: tab}}
		if grouped {
			node.GroupBy = []plan.Expr{colRef(1, vector.Int32)}
			node.GroupNames = []string{"g"}
		}
		serial, err := Run(node, &Context{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			par, err := Run(node, &Context{Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if par.NumRows() != serial.NumRows() {
				t.Fatalf("grouped=%v workers=%d: %d rows, serial %d", grouped, workers, par.NumRows(), serial.NumRows())
			}
			for i := 0; i < serial.NumRows(); i++ {
				for c := 0; c < serial.NumCols(); c++ {
					if par.Cols[c].Get(i).String() != serial.Cols[c].Get(i).String() {
						t.Fatalf("grouped=%v workers=%d row %d col %d: %v, serial %v",
							grouped, workers, i, c, par.Cols[c].Get(i), serial.Cols[c].Get(i))
					}
				}
			}
		}
	}
}

// TestDistinctMinBlobErrors: MIN/MAX over an unorderable type must
// fail identically with and without DISTINCT — the deferred
// distinct fold propagates comparison errors instead of silently
// returning whichever encoded key sorts first.
func TestDistinctMinBlobErrors(t *testing.T) {
	cat := catalog.New()
	tab, err := cat.CreateTable("b", catalog.Schema{{Name: "x", Type: vector.Blob}})
	if err != nil {
		t.Fatal(err)
	}
	col := vector.FromBlobs([][]byte{{1}, {2, 3}})
	if err := tab.Data.AppendChunk(vector.NewChunk(col)); err != nil {
		t.Fatal(err)
	}
	for _, distinct := range []bool{false, true} {
		node := plan.Node(&plan.Aggregate{
			Aggs:  []plan.AggSpec{{Kind: plan.AggMin, Arg: colRef(0, vector.Blob), Distinct: distinct, Name: "m", Typ: vector.Blob}},
			Child: &plan.Scan{Table: tab},
		})
		if _, err := Run(node, &Context{Parallelism: 1}); err == nil {
			t.Fatalf("distinct=%v: MIN over BLOB must error", distinct)
		}
	}
}

func TestDecodeValueKeyRoundTrip(t *testing.T) {
	vals := []vector.Value{
		vector.NewBool(true),
		vector.NewBool(false),
		vector.NewInt32(-42),
		vector.NewInt64(1 << 40),
		vector.NewFloat64(3.25),
		vector.NewFloat64(math.NaN()),
		vector.NewString("hello"),
		vector.NewString(""),
		vector.NewBlob([]byte{1, 2, 3}),
	}
	var key []byte
	for _, v := range vals {
		key = appendValueKey(key, v)
	}
	rest := key
	for i, want := range vals {
		got, r, err := decodeValueKey(rest)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		rest = r
		if want.Type() == vector.Float64 && math.IsNaN(want.Float64()) {
			if !math.IsNaN(got.Float64()) {
				t.Fatalf("value %d: %v, want NaN", i, got)
			}
			continue
		}
		if got.String() != want.String() || got.Type() != want.Type() {
			t.Fatalf("value %d: %v (%s), want %v (%s)", i, got, got.Type(), want, want.Type())
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if _, _, err := decodeValueKey(nil); err == nil {
		t.Fatal("empty key must error")
	}
	if _, _, err := decodeValueKey([]byte{3, 1, 2}); err == nil {
		t.Fatal("truncated key must error")
	}
}
