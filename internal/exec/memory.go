// Per-query memory accounting for out-of-core execution. One
// memTracker is shared by every operator of a query: blocking
// operators (hash aggregation, join build, sort run generation) grow
// it as their state accumulates and shrink it when that state is
// spilled or dropped, so a single MemoryBudget governs the query's
// total footprint no matter how many pipeline breakers the plan
// stacks. Accounting is an estimate of payload bytes, not a precise
// heap measurement — the point is a stable, deterministic trigger for
// graceful degradation to disk, not an allocator.
package exec

import (
	"sync/atomic"

	"vexdb/internal/spill"
	"vexdb/internal/vector"
)

// memTracker accumulates the estimated bytes of live blocking-operator
// state for one query against its budget. The budget is static when
// the query runs standalone, and a live watermark when a governor
// lease backs it: `live` re-reads the ticket's atomic lease, so a
// TryGrow raises the limit mid-query and a governor reclaim lowers it
// — the next over-budget check simply fires against the new value.
type memTracker struct {
	budget int64
	live   func() int64 // optional dynamic budget; overrides budget
	used   atomic.Int64
}

func newMemTracker(budget int64) *memTracker {
	return &memTracker{budget: budget}
}

func (t *memTracker) grow(n int64)   { t.used.Add(n) }
func (t *memTracker) shrink(n int64) { t.used.Add(-n) }

// limit returns the budget currently in force.
func (t *memTracker) limit() int64 {
	if t.live != nil {
		if b := t.live(); b > 0 {
			return b
		}
	}
	return t.budget
}

// over reports whether the tracked footprint exceeds the budget.
func (t *memTracker) over() bool {
	return t.used.Load() > t.limit()
}

// SpillStats accumulates one query's out-of-core counters: how many
// partitions (grace-partitioned hash state) and sorted runs went to
// disk, and the spill bytes written and read back. All methods are
// safe for concurrent use and for a nil receiver, mirroring ScanStats.
type SpillStats struct {
	partitions   atomic.Int64
	resident     atomic.Int64
	runs         atomic.Int64
	bytesWritten atomic.Int64
	bytesRead    atomic.Int64
}

// Partitions returns the number of hash partitions (aggregation
// groups, join build/probe sides) spilled to disk.
func (s *SpillStats) Partitions() int64 {
	if s == nil {
		return 0
	}
	return s.partitions.Load()
}

// ResidentPartitions returns the number of hash partitions a hybrid
// blocking operator kept in memory after overflowing: the partitions
// spill-mode execution did NOT have to write. Zero for queries that
// never overflowed (nothing was partitioned) or that evicted every
// partition.
func (s *SpillStats) ResidentPartitions() int64 {
	if s == nil {
		return 0
	}
	return s.resident.Load()
}

// Runs returns the number of sorted runs written to disk by external
// sorts.
func (s *SpillStats) Runs() int64 {
	if s == nil {
		return 0
	}
	return s.runs.Load()
}

// BytesWritten returns the total bytes written to spill files.
func (s *SpillStats) BytesWritten() int64 {
	if s == nil {
		return 0
	}
	return s.bytesWritten.Load()
}

// BytesRead returns the total bytes read back from spill files.
func (s *SpillStats) BytesRead() int64 {
	if s == nil {
		return 0
	}
	return s.bytesRead.Load()
}

// Spilled reports whether anything went to disk.
func (s *SpillStats) Spilled() bool {
	return s.Partitions() > 0 || s.Runs() > 0 || s.BytesWritten() > 0
}

func (s *SpillStats) addPartitions(n int64) {
	if s != nil {
		s.partitions.Add(n)
	}
}

func (s *SpillStats) addResident(n int64) {
	if s != nil {
		s.resident.Add(n)
	}
}

func (s *SpillStats) addRuns(n int64) {
	if s != nil {
		s.runs.Add(n)
	}
}

// SpillWrote implements spill.Recorder.
func (s *SpillStats) SpillWrote(n int64) {
	if s != nil {
		s.bytesWritten.Add(n)
	}
}

// SpillRead implements spill.Recorder.
func (s *SpillStats) SpillRead(n int64) {
	if s != nil {
		s.bytesRead.Add(n)
	}
}

var _ spill.Recorder = (*SpillStats)(nil)

// spillEnabled reports whether this query runs under a memory budget
// with a spill manager attached (Stream sets both up when
// MemoryBudget > 0).
func (c *Context) spillEnabled() bool {
	return c != nil && c.mem != nil && c.spillMgr != nil
}

// overBudget reports whether the query's tracked footprint exceeds its
// budget; always false without a budget.
func (c *Context) overBudget() bool {
	return c != nil && c.mem != nil && c.mem.over()
}

// shouldSpill reports whether an operator holding `local` estimated
// bytes should spill: the query must be over its budget AND this
// operator's state must be a meaningful share of it (a quarter).
// The local floor keeps a small consumer from thrashing — spilling or
// re-partitioning state that is already tiny frees almost nothing and
// can recurse forever — while the operator actually responsible for
// the pressure spills. Total in-memory state is therefore softly
// bounded by budget + consumers×budget/4 rather than exactly budget.
//
// Before answering yes, the context asks its governor lease (when one
// backs the budget) to grow into idle pool bytes: spilling is the
// expensive path, so a query about to take it first tries to lease
// enough headroom to stay resident. A partial or refused grow falls
// through to spill — the grow is advisory, never a wait.
func (c *Context) shouldSpill(local int64) bool {
	if !c.spillEnabled() {
		return false
	}
	limit := c.mem.limit()
	used := c.mem.used.Load()
	if used <= limit || local*4 < limit {
		return false
	}
	if c.GrowBudget != nil {
		// Ask for 50% headroom over the current footprint so one grow
		// covers a stretch of growth instead of one chunk.
		target := used + used/2
		if nl := c.GrowBudget(target - limit); nl >= used {
			return false
		}
	}
	return true
}

func (c *Context) memGrow(n int64) {
	if c != nil && c.mem != nil {
		c.mem.grow(n)
	}
}

func (c *Context) memShrink(n int64) {
	if c != nil && c.mem != nil {
		c.mem.shrink(n)
	}
}

// spillStats returns the context's per-query spill counters (nil-safe).
func (c *Context) spillStats() *SpillStats {
	if c == nil {
		return nil
	}
	return c.Spill
}

// spillManager returns the query's spill file manager, nil when
// spilling is disabled.
func (c *Context) spillManager() *spill.Manager {
	if c == nil {
		return nil
	}
	return c.spillMgr
}

// vectorBytes estimates the payload bytes of one column vector.
func vectorBytes(v *vector.Vector) int64 {
	var n int64
	switch v.Type() {
	case vector.Bool:
		n = int64(v.Len())
	case vector.Int32:
		n = 4 * int64(v.Len())
	case vector.Int64, vector.Float64:
		n = 8 * int64(v.Len())
	case vector.String:
		for _, s := range v.Strings() {
			n += 16 + int64(len(s))
		}
	case vector.Blob:
		for _, b := range v.Blobs() {
			n += 24 + int64(len(b))
		}
	}
	if v.Nulls() != nil {
		n += int64(v.Len())
	}
	return n
}

// chunkBytes estimates the payload bytes of a chunk.
func chunkBytes(ch *vector.Chunk) int64 {
	var n int64
	for _, c := range ch.Cols() {
		n += vectorBytes(c)
	}
	return n
}

// valueBytes estimates the retained size of one boxed value.
func valueBytes(v vector.Value) int64 {
	switch v.Type() {
	case vector.String:
		return 16 + int64(len(v.Str()))
	case vector.Blob:
		return 24 + int64(len(v.Bytes()))
	}
	return 16
}
