package exec

import (
	"fmt"
	"runtime"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/spill"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// Operator is a pull-based vectorized execution operator. Next returns
// nil when the input is exhausted.
type Operator interface {
	Open(ctx *Context) error
	Next() (*vector.Chunk, error)
	Close() error
}

// Context carries per-query execution settings.
type Context struct {
	// Snap, when non-nil, pins the data version every scan of this
	// query reads. All scans of one query then observe the same
	// committed prefix of each table — concurrent writers publish new
	// versions without tearing in-flight results. When nil, each scan
	// pins the table's current version at open.
	Snap *catalog.Snapshot

	// Parallelism bounds the goroutines used by parallel operators and
	// partitioned UDF evaluation. Zero means runtime.NumCPU().
	Parallelism int

	// Done, when non-nil, cancels the query when closed: parallel
	// operators stop claiming morsels, serial drain loops return
	// ErrCancelled between chunks, and ChunkStream.Next returns
	// ErrCancelled. Stream installs its own channel here when unset.
	Done <-chan struct{}

	// Stats, when non-nil, accumulates this query's segment-level
	// scan counters (scanned vs. skipped by zone-map pruning).
	// Stream installs one when unset.
	Stats *ScanStats

	// MemoryBudget bounds the estimated bytes of blocking-operator
	// state (hash aggregation tables, join build sides, sort runs)
	// this query may hold in memory at once. When the budget is
	// exceeded the operators grace-partition or write sorted runs to
	// temp files under TempDir and stream them back, so results are
	// identical to unbounded execution. Zero means unlimited
	// (spilling disabled).
	MemoryBudget int64

	// TempDir is where spill files go when MemoryBudget forces
	// out-of-core execution; empty means os.TempDir(). The query's
	// spill directory is removed when its stream closes.
	TempDir string

	// Spill, when non-nil, accumulates this query's out-of-core
	// counters (partitions and runs spilled, bytes written/read).
	// Stream installs one when unset.
	Spill *SpillStats

	// OnClose, when non-nil, runs exactly once when the query's stream
	// closes — after the operators shut down and the spill files are
	// removed. The resource governor uses it to return the query's
	// memory lease and worker slots. Stream clears the hook in its
	// private context copy so nested streams (table-UDF subplans) do
	// not fire it again, and does not fire it when stream construction
	// itself fails (the caller still owns cleanup on error).
	OnClose func()

	// LiveBudget, when non-nil, re-reads the query's current memory
	// budget on every over-budget check — the engine points it at the
	// governor ticket's atomic lease watermark, so lease grows and
	// reclaim shrinks take effect mid-query. MemoryBudget stays the
	// initial value (it still gates whether spilling is set up at all).
	LiveBudget func() int64

	// GrowBudget, when non-nil, asks the governor lease for up to n
	// more bytes and returns the new total budget. shouldSpill calls it
	// before answering yes, so a query about to spill first tries to
	// grow into idle pool bytes. Must never block; a refused or partial
	// grow simply lets the spill proceed.
	GrowBudget func(n int64) int64

	// mem and spillMgr are installed by Stream when MemoryBudget > 0;
	// they are shared by every operator of the query (the Context
	// itself is copied).
	mem      *memTracker
	spillMgr *spill.Manager
}

// Workers returns the effective parallelism.
// tableData resolves the data version scans of t read: the query's
// pinned snapshot when one is set, else the table's current version.
func (c *Context) tableData(t *catalog.Table) *storage.TableSnapshot {
	if c != nil && c.Snap != nil {
		return c.Snap.Data(t)
	}
	return t.Data.Snapshot()
}

func (c *Context) Workers() int {
	if c == nil || c.Parallelism <= 0 {
		return runtime.NumCPU()
	}
	return c.Parallelism
}

// done returns the cancellation channel (nil when unset or the
// context itself is nil — a nil channel never fires in a select).
func (c *Context) done() <-chan struct{} {
	if c == nil {
		return nil
	}
	return c.Done
}

// interrupted reports whether the context's Done channel has closed.
func (c *Context) interrupted() bool {
	if c == nil || c.Done == nil {
		return false
	}
	select {
	case <-c.Done:
		return true
	default:
		return false
	}
}

// Build converts a bound plan into a serial operator tree. Run builds
// with the context's worker count instead, enabling the morsel-driven
// parallel operators; Build stays serial for callers without a context.
func Build(node plan.Node) (Operator, error) { return buildWith(node, 1) }

// buildWith converts a bound plan into an operator tree, substituting
// morsel-parallel operators for eligible subtrees when workers > 1 and
// the planner did not mark the node Serial. Nodes carrying an EXPLAIN
// ANALYZE tap are wrapped in a counting operator; Scan and Filter
// count inside their operators instead, because the pipeline extractor
// collapses them into morsel stages with no operator boundary.
func buildWith(node plan.Node, workers int) (Operator, error) {
	op, err := buildNode(node, workers)
	if err != nil {
		return nil, err
	}
	if tap := boundaryTap(node); tap != nil {
		op = &tapOp{child: op, tap: tap}
	}
	return op, nil
}

// boundaryTap returns the node's tap when its rows are counted at the
// operator boundary (nil for Scan/Filter, which count internally).
func boundaryTap(node plan.Node) *plan.NodeStats {
	switch n := node.(type) {
	case *plan.HashJoin:
		return n.Hints.Tap
	case *plan.Aggregate:
		return n.Hints.Tap
	case *plan.Sort:
		return n.Hints.Tap
	case *plan.Distinct:
		return n.Hints.Tap
	}
	return nil
}

// serialHint reports whether the planner pinned this node to serial
// execution (estimated input too small to amortize parallel setup).
func serialHint(node plan.Node) bool {
	switch n := node.(type) {
	case *plan.HashJoin:
		return n.Hints.Serial
	case *plan.Aggregate:
		return n.Hints.Serial
	case *plan.Sort:
		return n.Hints.Serial
	case *plan.Distinct:
		return n.Hints.Serial
	}
	return false
}

// tapOp counts the rows flowing through it into a plan node's stats
// (EXPLAIN ANALYZE); it changes nothing else.
type tapOp struct {
	child Operator
	tap   *plan.NodeStats
}

func (t *tapOp) Open(ctx *Context) error { return t.child.Open(ctx) }

func (t *tapOp) Next() (*vector.Chunk, error) {
	ch, err := t.child.Next()
	tapCount(t.tap, ch)
	return ch, err
}

func (t *tapOp) Close() error { return t.child.Close() }

// tapCount adds ch's rows to tap; nil-safe on both arguments.
func tapCount(tap *plan.NodeStats, ch *vector.Chunk) {
	if tap != nil && ch != nil {
		tap.Rows.Add(int64(ch.NumRows()))
	}
}

func buildNode(node plan.Node, workers int) (Operator, error) {
	if workers > 1 && !serialHint(node) {
		op, ok, err := buildParallel(node, workers)
		if err != nil {
			return nil, err
		}
		if ok {
			return op, nil
		}
	}
	switch n := node.(type) {
	case *plan.Scan:
		return &scanOp{table: n.Table, projection: n.Projection, preds: n.Preds, rowPos: n.RowPos, tap: n.Hints.Tap}, nil
	case *plan.Material:
		return &materialOp{data: n.Data}, nil
	case *plan.TableFuncScan:
		return newTableFuncOp(n)
	case *plan.Filter:
		child, err := buildWith(n.Child, workers)
		if err != nil {
			return nil, err
		}
		return &filterOp{pred: n.Pred, child: child, tap: n.Hints.Tap}, nil
	case *plan.Project:
		child, err := buildWith(n.Child, workers)
		if err != nil {
			return nil, err
		}
		if exprsHaveUDF(n.Exprs) {
			if callsAllParallel(n.Exprs) {
				// Row-local (Parallel) UDFs — model prediction — stream
				// chunk at a time: O(chunk) memory, LIMIT early-exit,
				// cancellation at chunk boundaries.
				return &mlProjectOp{exprs: n.Exprs, child: child}, nil
			}
			// Holistic UDFs must see the whole input at once, as
			// MonetDB/Python vectorized UDFs do: materialize the child
			// and evaluate once over the full input.
			return &udfProjectOp{exprs: n.Exprs, child: child}, nil
		}
		return &projectOp{exprs: n.Exprs, child: child}, nil
	case *plan.HashJoin:
		left, err := buildWith(n.Left, workers)
		if err != nil {
			return nil, err
		}
		right, err := buildWith(n.Right, workers)
		if err != nil {
			return nil, err
		}
		return &hashJoinOp{spec: n, left: left, right: right}, nil
	case *plan.Aggregate:
		child, err := buildWith(n.Child, workers)
		if err != nil {
			return nil, err
		}
		return &hashAggOp{spec: n, child: child}, nil
	case *plan.Sort:
		child, err := buildWith(n.Child, workers)
		if err != nil {
			return nil, err
		}
		return &sortOp{spec: n, child: child}, nil
	case *plan.Limit:
		child, err := buildWith(n.Child, workers)
		if err != nil {
			return nil, err
		}
		return &limitOp{count: n.Count, offset: n.Offset, child: child}, nil
	case *plan.Distinct:
		child, err := buildWith(n.Child, workers)
		if err != nil {
			return nil, err
		}
		return &distinctOp{child: child}, nil
	case *plan.Union:
		left, err := buildWith(n.Left, workers)
		if err != nil {
			return nil, err
		}
		right, err := buildWith(n.Right, workers)
		if err != nil {
			return nil, err
		}
		var op Operator = &unionOp{left: left, right: right, types: n.Schema().Types()}
		if !n.All {
			op = &distinctOp{child: op}
		}
		return op, nil
	}
	return nil, fmt.Errorf("exec: unsupported plan node %T", node)
}

// Run executes a plan to completion, returning the materialized result
// table with the plan's column names. It is the materializing wrapper
// over Stream, kept for callers that want the whole result at once.
func Run(node plan.Node, ctx *Context) (*vector.Table, error) {
	s, err := Stream(node, ctx)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	return s.Materialize()
}

// Materialize drains the stream into a table with the schema's column
// names. The stream is exhausted afterwards; the caller still owns
// Close.
func (s *ChunkStream) Materialize() (*vector.Table, error) {
	cols := make([]*vector.Vector, len(s.schema))
	for i, c := range s.schema {
		cols[i] = vector.New(c.Type, 0)
	}
	out, err := vector.NewTable(s.schema.Names(), cols)
	if err != nil {
		return nil, err
	}
	for {
		ch, err := s.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			return out, nil
		}
		if err := out.AppendChunk(ch); err != nil {
			return nil, err
		}
	}
}

// errColumnCast wraps a result-column cast failure.
func errColumnCast(name string, err error) error {
	return fmt.Errorf("exec: result column %q: %w", name, err)
}

// ----------------------------------------------------------------- material

type materialOp struct {
	data *vector.Table
	pos  int
}

func (m *materialOp) Open(*Context) error { m.pos = 0; return nil }

func (m *materialOp) Next() (*vector.Chunk, error) {
	n := m.data.NumRows()
	if m.pos >= n {
		return nil, nil
	}
	end := m.pos + vector.DefaultChunkSize
	if end > n {
		end = n
	}
	ch := m.data.Chunk().Slice(m.pos, end)
	m.pos = end
	return ch, nil
}

func (m *materialOp) Close() error { return nil }

// ----------------------------------------------------------------- filter

type filterOp struct {
	pred  plan.Expr
	child Operator
	tap   *plan.NodeStats
	ctx   *Context
	sel   []int // selection buffer reused across chunks
}

func (f *filterOp) Open(ctx *Context) error {
	f.ctx = ctx
	return f.child.Open(ctx)
}

func (f *filterOp) Next() (*vector.Chunk, error) {
	for {
		// A highly selective filter can spin through many input chunks
		// before emitting one; observe cancellation between chunks.
		if f.ctx.interrupted() {
			return nil, ErrCancelled
		}
		ch, err := f.child.Next()
		if err != nil || ch == nil {
			return ch, err
		}
		out, err := filterChunk(f.pred, ch, &f.sel)
		if err != nil {
			return nil, err
		}
		if out != nil {
			tapCount(f.tap, out)
			return out, nil
		}
	}
}

func (f *filterOp) Close() error { return f.child.Close() }

// filterChunk returns the rows of ch matching pred, nil when none do.
// *selBuf is reused across calls; an all-true NULL-free predicate
// skips the selection vector (and the Gather copy) entirely.
func filterChunk(pred plan.Expr, ch *vector.Chunk, selBuf *[]int) (*vector.Chunk, error) {
	pv, err := Evaluate(pred, ch)
	if err != nil {
		return nil, err
	}
	if pv.Type() != vector.Bool {
		return nil, fmt.Errorf("exec: WHERE predicate must be boolean, got %s", pv.Type())
	}
	n := ch.NumRows()
	if n == 0 {
		return nil, nil
	}
	bools := pv.Bools()
	if pv.Nulls() == nil {
		allTrue := true
		for i := 0; i < n; i++ {
			if !bools[i] {
				allTrue = false
				break
			}
		}
		if allTrue {
			return ch, nil
		}
	}
	sel := (*selBuf)[:0]
	for i := 0; i < n; i++ {
		if !pv.IsNull(i) && bools[i] {
			sel = append(sel, i)
		}
	}
	*selBuf = sel
	if len(sel) == 0 {
		return nil, nil
	}
	if len(sel) == n {
		return ch, nil
	}
	return ch.Gather(sel), nil
}

// ----------------------------------------------------------------- project

type projectOp struct {
	exprs []plan.Expr
	child Operator
}

func (p *projectOp) Open(ctx *Context) error { return p.child.Open(ctx) }

func (p *projectOp) Next() (*vector.Chunk, error) {
	ch, err := p.child.Next()
	if err != nil || ch == nil {
		return nil, err
	}
	cols := make([]*vector.Vector, len(p.exprs))
	for i, e := range p.exprs {
		v, err := Evaluate(e, ch)
		if err != nil {
			return nil, err
		}
		cols[i] = v
	}
	return vector.NewChunk(cols...), nil
}

func (p *projectOp) Close() error { return p.child.Close() }

// exprsHaveUDF reports whether any expression contains a UDF call.
func exprsHaveUDF(exprs []plan.Expr) bool {
	for _, e := range exprs {
		if !plan.EachCall(e, func(*plan.Call) bool { return false }) {
			return true
		}
	}
	return false
}

// callsAllParallel reports whether every UDF call in exprs is marked
// Parallel — output row i depends only on input row i — and therefore
// safe for chunk-at-a-time streaming evaluation and morsel-parallel
// execution. Vacuously true for UDF-free expressions.
func callsAllParallel(exprs []plan.Expr) bool {
	for _, e := range exprs {
		if !plan.EachCall(e, func(c *plan.Call) bool { return c.Fn.Parallel }) {
			return false
		}
	}
	return true
}

// drain materializes an operator's full output as one chunk,
// observing the context's cancellation between chunks so a long
// blocking drain (sort, join build, UDF projection) stops promptly
// instead of at its next operator boundary.
func drain(op Operator, ctx *Context) (*vector.Chunk, error) {
	var acc []*vector.Vector
	for {
		if ctx.interrupted() {
			return nil, ErrCancelled
		}
		ch, err := op.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			break
		}
		if acc == nil {
			acc = make([]*vector.Vector, ch.NumCols())
			for i := range acc {
				acc[i] = vector.New(ch.Col(i).Type(), ch.NumRows())
			}
		}
		for i := range acc {
			acc[i].AppendVector(ch.Col(i))
		}
	}
	if acc == nil {
		return vector.NewChunk(), nil
	}
	return vector.NewChunk(acc...), nil
}

// udfProjectOp materializes its child and evaluates the projection
// once over the whole input, so holistic vectorized UDFs (calls not
// marked Parallel) see entire columns. Parallel UDF calls at the top
// level of an expression are partitioned across the context's worker
// count. The evaluated result is re-emitted in standard-sized chunks
// so downstream operators and the wire never see an oversized chunk.
// Row-local UDF projections take the streaming mlProjectOp path
// instead (see mlproject.go).
type udfProjectOp struct {
	exprs []plan.Expr
	child Operator
	ctx   *Context
	done  bool
	out   *vector.Chunk // evaluated result, emitted in slices
	pos   int
}

func (p *udfProjectOp) Open(ctx *Context) error {
	p.ctx = ctx
	p.done = false
	p.out, p.pos = nil, 0
	return p.child.Open(ctx)
}

func (p *udfProjectOp) Next() (*vector.Chunk, error) {
	if !p.done {
		p.done = true
		in, err := drain(p.child, p.ctx)
		if err != nil {
			return nil, err
		}
		if in.NumCols() == 0 || in.NumRows() == 0 {
			return nil, nil
		}
		cols := make([]*vector.Vector, len(p.exprs))
		for i, e := range p.exprs {
			v, err := p.evalFull(e, in)
			if err != nil {
				return nil, err
			}
			cols[i] = v
		}
		p.out = vector.NewChunk(cols...)
	}
	if p.out == nil || p.pos >= p.out.NumRows() {
		return nil, nil
	}
	end := p.pos + vector.DefaultChunkSize
	if n := p.out.NumRows(); end > n {
		end = n
	}
	ch := p.out.Slice(p.pos, end)
	p.pos = end
	return ch, nil
}

// evalFull evaluates an expression over the whole input, partitioning
// top-level Parallel UDF calls across workers.
func (p *udfProjectOp) evalFull(e plan.Expr, in *vector.Chunk) (*vector.Vector, error) {
	if call, ok := e.(*plan.Call); ok && call.Fn.Parallel {
		args := make([]*vector.Vector, len(call.Args))
		for i, a := range call.Args {
			v, err := p.evalFull(a, in)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return EvalPartitionedCall(call, args, p.ctx.Workers())
	}
	return Evaluate(e, in)
}

func (p *udfProjectOp) Close() error { return p.child.Close() }

// ----------------------------------------------------------------- limit

type limitOp struct {
	count   int64
	offset  int64
	child   Operator
	skipped int64
	emitted int64
}

func (l *limitOp) Open(ctx *Context) error {
	l.skipped, l.emitted = 0, 0
	return l.child.Open(ctx)
}

func (l *limitOp) Next() (*vector.Chunk, error) {
	for {
		if l.count >= 0 && l.emitted >= l.count {
			return nil, nil
		}
		ch, err := l.child.Next()
		if err != nil || ch == nil {
			return ch, err
		}
		n := int64(ch.NumRows())
		if l.skipped < l.offset {
			if l.skipped+n <= l.offset {
				l.skipped += n
				continue
			}
			ch = ch.Slice(int(l.offset-l.skipped), int(n))
			l.skipped = l.offset
			n = int64(ch.NumRows())
		}
		if l.count >= 0 && l.emitted+n > l.count {
			ch = ch.Slice(0, int(l.count-l.emitted))
			n = int64(ch.NumRows())
		}
		l.emitted += n
		return ch, nil
	}
}

func (l *limitOp) Close() error { return l.child.Close() }

// ----------------------------------------------------------------- distinct

// distinctOp streams first appearances from an in-memory group index.
// Under a memory budget it switches to grace-partitioned spill once
// the index outgrows the budget (see distinct_spill.go): rows already
// emitted keep the streaming order, and the spilled remainder is
// merged back in global input order at child exhaustion, so output is
// identical to the unbounded run.
type distinctOp struct {
	child   Operator
	ctx     *Context
	gi      *groupIndex
	kind    keyKind
	sel     []int // selection buffer reused across chunks
	bytes   int64 // estimated index footprint, tracked against the budget
	pos     int64 // global input row counter (merge tiebreak after spill)
	spiller *distinctSpiller
	merger  *runMerger
}

func (d *distinctOp) Open(ctx *Context) error {
	d.gi = nil
	d.ctx = ctx
	d.bytes, d.pos = 0, 0
	d.spiller, d.merger = nil, nil
	return d.child.Open(ctx)
}

func (d *distinctOp) Next() (*vector.Chunk, error) {
	if d.merger != nil {
		return d.merger.next(d.ctx)
	}
	for {
		if d.ctx.interrupted() {
			return nil, ErrCancelled
		}
		ch, err := d.child.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			if d.spiller == nil {
				d.ctx.memShrink(d.bytes)
				d.bytes = 0
				return nil, nil
			}
			m, err := d.spiller.finishDistinct()
			if err != nil {
				return nil, err
			}
			d.merger = m
			return d.merger.next(d.ctx)
		}
		if d.spiller != nil {
			base := d.pos
			d.pos += int64(ch.NumRows())
			if err := d.spiller.route(ch, base); err != nil {
				return nil, err
			}
			continue
		}
		if d.gi == nil {
			types := make([]vector.Type, ch.NumCols())
			for i := range types {
				types[i] = ch.Col(i).Type()
			}
			d.gi = newGroupIndex(types)
			d.kind = d.gi.kind
		}
		sel := d.sel[:0]
		cols := ch.Cols()
		var grew int64
		for i := 0; i < ch.NumRows(); i++ {
			if _, created := d.gi.groupID(cols, i); created {
				sel = append(sel, i)
				grew += distinctRowBytes(cols, i)
			}
		}
		d.pos += int64(ch.NumRows())
		d.sel = sel
		if grew > 0 {
			d.bytes += grew
			d.ctx.memGrow(grew)
		}
		// A zero-key distinct (defensive; plans always have columns)
		// holds one group and never needs to spill.
		if d.kind != keyKindNone && d.ctx.shouldSpill(d.bytes) {
			d.spiller = newDistinctSpiller(d.ctx, d.kind)
			if err := d.spiller.dumpIndex(d.gi); err != nil {
				return nil, err
			}
			d.ctx.memShrink(d.bytes)
			d.bytes = 0
			d.gi = nil
		}
		if len(sel) == 0 {
			continue
		}
		if len(sel) == ch.NumRows() {
			return ch, nil
		}
		return ch.Gather(sel), nil
	}
}

func (d *distinctOp) Close() error {
	d.merger.close()
	d.spiller.release()
	d.ctx.memShrink(d.bytes)
	d.bytes = 0
	return d.child.Close()
}

// distinctRowBytes estimates the index footprint of one newly created
// distinct key: per-column stored bytes plus map-entry overhead.
func distinctRowBytes(cols []*vector.Vector, r int) int64 {
	n := int64(48)
	for _, c := range cols {
		switch c.Type() {
		case vector.String:
			if !c.IsNull(r) {
				n += int64(len(c.Strings()[r]))
			}
			n += 16
		case vector.Blob:
			if !c.IsNull(r) {
				n += int64(len(c.Blobs()[r]))
			}
			n += 24
		default:
			n += 9
		}
	}
	return n
}

// ----------------------------------------------------------------- union

type unionOp struct {
	left, right Operator
	types       []vector.Type
	onRight     bool
}

func (u *unionOp) Open(ctx *Context) error {
	u.onRight = false
	if err := u.left.Open(ctx); err != nil {
		return err
	}
	return u.right.Open(ctx)
}

func (u *unionOp) Next() (*vector.Chunk, error) {
	for {
		var src Operator
		if !u.onRight {
			src = u.left
		} else {
			src = u.right
		}
		ch, err := src.Next()
		if err != nil {
			return nil, err
		}
		if ch == nil {
			if u.onRight {
				return nil, nil
			}
			u.onRight = true
			continue
		}
		// Cast columns to the union's declared (left) types.
		cols := make([]*vector.Vector, ch.NumCols())
		for i := 0; i < ch.NumCols(); i++ {
			c := ch.Col(i)
			if c.Type() != u.types[i] {
				cc, err := c.Cast(u.types[i])
				if err != nil {
					return nil, fmt.Errorf("exec: UNION column %d: %w", i+1, err)
				}
				c = cc
			}
			cols[i] = c
		}
		return vector.NewChunk(cols...), nil
	}
}

func (u *unionOp) Close() error {
	lerr := u.left.Close()
	rerr := u.right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}
