package exec

import (
	"errors"
	"testing"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// scanTable builds a single-column BIGINT base table of 0..rows-1
// (sorted, so zone maps are selective).
func scanTable(t *testing.T, rows int) *catalog.Table {
	t.Helper()
	store := storage.NewColumnStore([]vector.Type{vector.Int64})
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i)
	}
	if err := store.AppendChunk(vector.NewChunk(vector.FromInt64s(vals))); err != nil {
		t.Fatal(err)
	}
	return &catalog.Table{
		Name:   "t",
		Schema: catalog.Schema{{Name: "x", Type: vector.Int64}},
		Data:   store,
	}
}

// The prefetching serial scan must deliver every row in order, and
// its recycled decode buffers must never corrupt a chunk the consumer
// still holds (the previous chunk is compared after the next fetch).
func TestSerialScanPrefetchOrderAndBufferSafety(t *testing.T) {
	rows := storage.SegmentRows*3 + 57
	tab := scanTable(t, rows)
	op := &scanOp{table: tab, projection: nil}
	if err := op.Open(&Context{Parallelism: 1}); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	next := int64(0)
	for {
		ch, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ch == nil {
			break
		}
		for _, x := range ch.Col(0).Int64s() {
			if x != next {
				t.Fatalf("row %d out of order: %d", next, x)
			}
			next++
		}
	}
	if next != int64(rows) {
		t.Fatalf("scanned %d rows, want %d", next, rows)
	}
}

func TestSerialScanPrunesSegments(t *testing.T) {
	rows := storage.SegmentRows * 4
	tab := scanTable(t, rows)
	preds := []plan.ScanPredicate{{Col: 0, Op: sql.OpGe, Val: vector.NewInt64(int64(rows - 100))}}
	stats := &ScanStats{}
	op := &scanOp{table: tab, projection: nil, preds: preds}
	if err := op.Open(&Context{Parallelism: 1, Stats: stats}); err != nil {
		t.Fatal(err)
	}
	defer op.Close()
	var got int
	for {
		ch, err := op.Next()
		if err != nil {
			t.Fatal(err)
		}
		if ch == nil {
			break
		}
		got += ch.NumRows()
	}
	// Pruning is segment-granular: the matching segment is delivered
	// whole (the row filter narrows it later).
	if got != storage.SegmentRows {
		t.Fatalf("delivered %d rows, want one segment", got)
	}
	if stats.Skipped() != 3 || stats.Scanned() != 1 {
		t.Fatalf("scanned=%d skipped=%d, want 1/3", stats.Scanned(), stats.Skipped())
	}
}

func TestSegmentPrunableOperators(t *testing.T) {
	zone := func(min, max int64) []storage.ZoneMap {
		v := vector.FromInt64s([]int64{min, max})
		z := storage.ZoneMap{Rows: 2}
		z.Min, z.Max = v.Get(0), v.Get(1)
		return []storage.ZoneMap{z}
	}
	pred := func(op sql.BinaryOp, val int64) []plan.ScanPredicate {
		return []plan.ScanPredicate{{Col: 0, Op: op, Val: vector.NewInt64(val)}}
	}
	cases := []struct {
		name  string
		zones []storage.ZoneMap
		preds []plan.ScanPredicate
		want  bool
	}{
		{"eq-below", zone(10, 20), pred(sql.OpEq, 5), true},
		{"eq-above", zone(10, 20), pred(sql.OpEq, 25), true},
		{"eq-inside", zone(10, 20), pred(sql.OpEq, 15), false},
		{"lt-at-min", zone(10, 20), pred(sql.OpLt, 10), true},
		{"lt-above-min", zone(10, 20), pred(sql.OpLt, 11), false},
		{"le-below-min", zone(10, 20), pred(sql.OpLe, 9), true},
		{"le-at-min", zone(10, 20), pred(sql.OpLe, 10), false},
		{"gt-at-max", zone(10, 20), pred(sql.OpGt, 20), true},
		{"gt-below-max", zone(10, 20), pred(sql.OpGt, 19), false},
		{"ge-above-max", zone(10, 20), pred(sql.OpGe, 21), true},
		{"ge-at-max", zone(10, 20), pred(sql.OpGe, 20), false},
		{"no-zones", nil, pred(sql.OpEq, 5), false},
		{"no-stats", []storage.ZoneMap{{}}, pred(sql.OpEq, 5), false},
		{"all-null", []storage.ZoneMap{{Rows: 4, NullCount: 4}}, pred(sql.OpGe, 0), true},
	}
	for _, c := range cases {
		if got := segmentPrunable(c.zones, c.preds); got != c.want {
			t.Errorf("%s: prunable = %v, want %v", c.name, got, c.want)
		}
	}
}

// Satellite: serial blocking operators (sort, aggregate, distinct,
// filter and the drain they share) must observe Context.Done between
// chunks instead of running to completion.
func TestSerialDrainLoopsObserveCancellation(t *testing.T) {
	done := make(chan struct{})
	close(done)
	ctx := &Context{Parallelism: 1, Done: done}
	child := func() Operator {
		return &materialOp{data: bigMaterialTable(t, 10_000)}
	}

	sortop := &sortOp{spec: &plan.Sort{Keys: []plan.SortKey{{Expr: &plan.ColRef{Idx: 0, Typ: vector.Int64}}}}, child: child()}
	if err := sortop.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := sortop.Next(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("sort: err = %v, want ErrCancelled", err)
	}

	agg := &hashAggOp{spec: &plan.Aggregate{}, child: child()}
	if err := agg.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := agg.Next(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("agg: err = %v, want ErrCancelled", err)
	}

	dist := &distinctOp{child: child()}
	if err := dist.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := dist.Next(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("distinct: err = %v, want ErrCancelled", err)
	}

	filt := &filterOp{pred: &plan.Const{Val: vector.NewBool(false), Typ: vector.Bool}, child: child()}
	if err := filt.Open(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := filt.Next(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("filter: err = %v, want ErrCancelled", err)
	}
}

func bigMaterialTable(t *testing.T, rows int) *vector.Table {
	t.Helper()
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64(i % 97)
	}
	tab, err := vector.NewTable([]string{"x"}, []*vector.Vector{vector.FromInt64s(vals)})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// Parallel scans prune too: the morsel source must skip segments
// before decode at every worker count.
func TestParallelScanPrunes(t *testing.T) {
	rows := storage.SegmentRows * 6
	tab := scanTable(t, rows)
	node := plan.Node(&plan.Filter{
		Pred: &plan.BinOp{
			Op:    sql.OpGe,
			Left:  &plan.ColRef{Idx: 0, Typ: vector.Int64, Name: "x"},
			Right: &plan.Const{Val: vector.NewInt64(int64(rows - 10)), Typ: vector.Int64},
			Typ:   vector.Bool,
		},
		Child: &plan.Scan{
			Table: tab,
			Preds: []plan.ScanPredicate{{Col: 0, Op: sql.OpGe, Val: vector.NewInt64(int64(rows - 10))}},
		},
	})
	for _, workers := range []int{1, 2, 8} {
		stats := &ScanStats{}
		out, err := Run(node, &Context{Parallelism: workers, Stats: stats})
		if err != nil {
			t.Fatal(err)
		}
		if out.NumRows() != 10 {
			t.Fatalf("workers=%d rows = %d", workers, out.NumRows())
		}
		if stats.Skipped() != 5 || stats.Scanned() != 1 {
			t.Fatalf("workers=%d scanned=%d skipped=%d", workers, stats.Scanned(), stats.Skipped())
		}
	}
}
