package exec

import (
	"testing"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// evalOver evaluates a bound expression over a one-chunk input.
func evalOver(t *testing.T, e plan.Expr, cols ...*vector.Vector) *vector.Vector {
	t.Helper()
	out, err := Evaluate(e, vector.NewChunk(cols...))
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func colRef(i int, typ vector.Type) *plan.ColRef {
	return &plan.ColRef{Idx: i, Typ: typ}
}

func TestEvalArithmeticNullPropagation(t *testing.T) {
	a := vector.New(vector.Int64, 3)
	a.AppendValue(vector.NewInt64(10))
	a.AppendValue(vector.Null())
	a.AppendValue(vector.NewInt64(30))
	b := vector.FromInt64s([]int64{1, 2, 3})
	e := &plan.BinOp{Op: sql.OpAdd, Left: colRef(0, vector.Int64), Right: colRef(1, vector.Int64), Typ: vector.Int64}
	out := evalOver(t, e, a, b)
	if out.Get(0).Int64() != 11 || !out.IsNull(1) || out.Get(2).Int64() != 33 {
		t.Fatalf("add: %v %v %v", out.Get(0), out.Get(1), out.Get(2))
	}
}

func TestEvalMixedWidthArithmetic(t *testing.T) {
	a := vector.FromInt32s([]int32{7})
	b := vector.FromFloat64s([]float64{0.5})
	e := &plan.BinOp{Op: sql.OpMul, Left: colRef(0, vector.Int32), Right: colRef(1, vector.Float64), Typ: vector.Float64}
	out := evalOver(t, e, a, b)
	if out.Get(0).Float64() != 3.5 {
		t.Fatalf("7 * 0.5 = %v", out.Get(0))
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	// a: [T, F, NULL], b: [NULL, NULL, NULL]
	a := vector.New(vector.Bool, 3)
	a.AppendValue(vector.NewBool(true))
	a.AppendValue(vector.NewBool(false))
	a.AppendValue(vector.Null())
	b := vector.New(vector.Bool, 3)
	for i := 0; i < 3; i++ {
		b.AppendValue(vector.Null())
	}
	and := &plan.BinOp{Op: sql.OpAnd, Left: colRef(0, vector.Bool), Right: colRef(1, vector.Bool), Typ: vector.Bool}
	out := evalOver(t, and, a, b)
	// T AND NULL = NULL; F AND NULL = FALSE; NULL AND NULL = NULL.
	if !out.IsNull(0) {
		t.Error("T AND NULL must be NULL")
	}
	if out.IsNull(1) || out.Bools()[1] {
		t.Error("F AND NULL must be FALSE")
	}
	if !out.IsNull(2) {
		t.Error("NULL AND NULL must be NULL")
	}
	or := &plan.BinOp{Op: sql.OpOr, Left: colRef(0, vector.Bool), Right: colRef(1, vector.Bool), Typ: vector.Bool}
	out = evalOver(t, or, a, b)
	// T OR NULL = TRUE; F OR NULL = NULL.
	if out.IsNull(0) || !out.Bools()[0] {
		t.Error("T OR NULL must be TRUE")
	}
	if !out.IsNull(1) {
		t.Error("F OR NULL must be NULL")
	}
}

func TestEvalComparisonWithNullConstant(t *testing.T) {
	a := vector.FromInt64s([]int64{1, 2})
	e := &plan.BinOp{Op: sql.OpEq, Left: colRef(0, vector.Int64),
		Right: &plan.Const{Val: vector.Null(), Typ: vector.Invalid}, Typ: vector.Bool}
	out := evalOver(t, e, a)
	if !out.IsNull(0) || !out.IsNull(1) {
		t.Fatal("x = NULL must be NULL")
	}
}

func TestEvalInWithNulls(t *testing.T) {
	a := vector.FromInt64s([]int64{1, 5})
	in := &plan.In{
		Operand: colRef(0, vector.Int64),
		List: []plan.Expr{
			&plan.Const{Val: vector.NewInt64(1), Typ: vector.Int64},
			&plan.Const{Val: vector.Null(), Typ: vector.Invalid},
		},
	}
	out := evalOver(t, in, a)
	// 1 IN (1, NULL) = TRUE; 5 IN (1, NULL) = NULL (unknown).
	if out.IsNull(0) || !out.Bools()[0] {
		t.Error("1 IN (1, NULL) must be TRUE")
	}
	if !out.IsNull(1) {
		t.Error("5 IN (1, NULL) must be NULL")
	}
}

func TestEvalConst(t *testing.T) {
	e := &plan.BinOp{Op: sql.OpMul,
		Left:  &plan.Const{Val: vector.NewInt64(6), Typ: vector.Int64},
		Right: &plan.Const{Val: vector.NewInt64(7), Typ: vector.Int64},
		Typ:   vector.Int64}
	v, err := EvalConst(e)
	if err != nil || v.Int64() != 42 {
		t.Fatalf("EvalConst: %v %v", v, err)
	}
}

// buildTable creates a catalog table with data for operator tests.
func buildTable(t *testing.T, rows int) *catalog.Table {
	t.Helper()
	cat := catalog.New()
	tab, err := cat.CreateTable("t", catalog.Schema{
		{Name: "id", Type: vector.Int64},
		{Name: "v", Type: vector.Float64},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, rows)
	vs := make([]float64, rows)
	for i := range ids {
		ids[i] = int64(i)
		vs[i] = float64(i) * 0.5
	}
	if err := tab.Data.AppendChunk(vector.NewChunk(
		vector.FromInt64s(ids), vector.FromFloat64s(vs))); err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestRunScanFilterLimit(t *testing.T) {
	tab := buildTable(t, 5000)
	node := plan.Node(&plan.Limit{
		Count:  10,
		Offset: 5,
		Child: &plan.Filter{
			Pred: &plan.BinOp{Op: sql.OpGe, Left: colRef(0, vector.Int64),
				Right: &plan.Const{Val: vector.NewInt64(4000), Typ: vector.Int64}, Typ: vector.Bool},
			Child: &plan.Scan{Table: tab},
		},
	})
	out, err := Run(node, &Context{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 10 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if out.Cols[0].Int64s()[0] != 4005 {
		t.Fatalf("offset wrong: first id = %d", out.Cols[0].Int64s()[0])
	}
}

func TestSortNullsOrdering(t *testing.T) {
	cat := catalog.New()
	tab, err := cat.CreateTable("s", catalog.Schema{{Name: "x", Type: vector.Int64}})
	if err != nil {
		t.Fatal(err)
	}
	col := vector.New(vector.Int64, 4)
	col.AppendValue(vector.NewInt64(2))
	col.AppendValue(vector.Null())
	col.AppendValue(vector.NewInt64(1))
	col.AppendValue(vector.NewInt64(3))
	if err := tab.Data.AppendChunk(vector.NewChunk(col)); err != nil {
		t.Fatal(err)
	}
	asc := &plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(0, vector.Int64)}},
		Child: &plan.Scan{Table: tab},
	}
	out, err := Run(asc, &Context{})
	if err != nil {
		t.Fatal(err)
	}
	// Ascending: 1, 2, 3, NULL (nulls last).
	if out.Cols[0].Int64s()[0] != 1 || !out.Cols[0].IsNull(3) {
		t.Fatalf("asc order wrong: %v nulls=%v", out.Cols[0].Int64s(), out.Cols[0].Nulls())
	}
	desc := &plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(0, vector.Int64), Desc: true}},
		Child: &plan.Scan{Table: tab},
	}
	out, err = Run(desc, &Context{})
	if err != nil {
		t.Fatal(err)
	}
	// Descending: NULL first, then 3, 2, 1.
	if !out.Cols[0].IsNull(0) || out.Cols[0].Int64s()[1] != 3 {
		t.Fatal("desc order wrong")
	}
}

func TestFilterEliminatesAll(t *testing.T) {
	tab := buildTable(t, 100)
	node := plan.Node(&plan.Filter{
		Pred: &plan.BinOp{Op: sql.OpLt, Left: colRef(0, vector.Int64),
			Right: &plan.Const{Val: vector.NewInt64(-1), Typ: vector.Int64}, Typ: vector.Bool},
		Child: &plan.Scan{Table: tab},
	})
	out, err := Run(node, &Context{})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatal("filter should eliminate all rows")
	}
}

func TestAppendRowKeyInjective(t *testing.T) {
	// Different values of different types must never produce the same
	// key prefix-freely within a column.
	a := vector.FromInt64s([]int64{1, 256})
	k1 := appendRowKey(nil, a, 0)
	k2 := appendRowKey(nil, a, 1)
	if string(k1) == string(k2) {
		t.Fatal("distinct int keys collide")
	}
	s := vector.FromStrings([]string{"ab", "a"})
	k3 := appendRowKey(nil, s, 0)
	k4 := appendRowKey(nil, s, 1)
	if string(k3) == string(k4) {
		t.Fatal("distinct string keys collide")
	}
	n := vector.New(vector.Int64, 1)
	n.AppendValue(vector.Null())
	k5 := appendRowKey(nil, n, 0)
	if string(k5) == string(k1) {
		t.Fatal("null collides with value")
	}
}
