// Package exec implements the vectorized execution engine: pull-based
// operators exchanging chunks of column vectors, vectorized expression
// evaluation with SQL three-valued logic, hash join, hash aggregation,
// sorting and table-UDF invocation.
package exec

import (
	"fmt"
	"math"

	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// Evaluate computes a bound expression over a chunk, returning a
// vector with one row per input row.
func Evaluate(e plan.Expr, ch *vector.Chunk) (*vector.Vector, error) {
	switch x := e.(type) {
	case *plan.ColRef:
		return ch.Col(x.Idx), nil
	case *plan.Const:
		return vector.Constant(x.Val, ch.NumRows(), x.Typ), nil
	case *plan.BinOp:
		return evalBinOp(x, ch)
	case *plan.Neg:
		return evalNeg(x, ch)
	case *plan.Not:
		return evalNot(x, ch)
	case *plan.IsNull:
		return evalIsNull(x, ch)
	case *plan.Cast:
		in, err := Evaluate(x.Operand, ch)
		if err != nil {
			return nil, err
		}
		return in.Cast(x.To)
	case *plan.Case:
		return evalCase(x, ch)
	case *plan.In:
		return evalIn(x, ch)
	case *plan.Call:
		args := make([]*vector.Vector, len(x.Args))
		for i, a := range x.Args {
			v, err := Evaluate(a, ch)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		out, err := x.Fn.Eval(args)
		if err != nil {
			return nil, fmt.Errorf("exec: UDF %s: %w", x.Fn.Name, err)
		}
		if out.Len() != ch.NumRows() {
			return nil, fmt.Errorf("exec: UDF %s returned %d rows for %d inputs", x.Fn.Name, out.Len(), ch.NumRows())
		}
		return out, nil
	}
	return nil, fmt.Errorf("exec: cannot evaluate %T", e)
}

// EvalConst evaluates an expression with no column references (a
// constant) to a single value.
func EvalConst(e plan.Expr) (vector.Value, error) {
	one := vector.FromInt32s([]int32{0})
	ch := vector.NewChunk(one)
	v, err := Evaluate(e, ch)
	if err != nil {
		return vector.Null(), err
	}
	if v.Len() != 1 {
		return vector.Null(), fmt.Errorf("exec: constant expression produced %d rows", v.Len())
	}
	return v.Get(0), nil
}

func combineNulls(out *vector.Vector, ins ...*vector.Vector) {
	for _, in := range ins {
		if nulls := in.Nulls(); nulls != nil {
			for i, isNull := range nulls {
				if isNull {
					out.SetNull(i)
				}
			}
		}
	}
}

func evalBinOp(x *plan.BinOp, ch *vector.Chunk) (*vector.Vector, error) {
	switch x.Op {
	case sql.OpAnd, sql.OpOr:
		return evalLogical(x, ch)
	}
	l, err := Evaluate(x.Left, ch)
	if err != nil {
		return nil, err
	}
	r, err := Evaluate(x.Right, ch)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
		return evalArith(x.Op, x.Typ, l, r)
	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
		return evalCompare(x.Op, l, r)
	case sql.OpConcat:
		return evalConcat(l, r)
	}
	return nil, fmt.Errorf("exec: operator %s not implemented", x.Op)
}

func evalConcat(l, r *vector.Vector) (*vector.Vector, error) {
	n := l.Len()
	out := make([]string, n)
	ls, err := asStrings(l)
	if err != nil {
		return nil, err
	}
	rs, err := asStrings(r)
	if err != nil {
		return nil, err
	}
	for i := range out {
		out[i] = ls[i] + rs[i]
	}
	res := vector.FromStrings(out)
	combineNulls(res, l, r)
	return res, nil
}

func asStrings(v *vector.Vector) ([]string, error) {
	if v.Type() == vector.String {
		return v.Strings(), nil
	}
	sv, err := v.Cast(vector.String)
	if err != nil {
		return nil, err
	}
	return sv.Strings(), nil
}

func evalArith(op sql.BinaryOp, outType vector.Type, l, r *vector.Vector) (*vector.Vector, error) {
	n := l.Len()
	if outType == vector.Float64 {
		a, err := l.AsFloat64s()
		if err != nil {
			return nil, err
		}
		b, err := r.AsFloat64s()
		if err != nil {
			return nil, err
		}
		out := make([]float64, n)
		switch op {
		case sql.OpAdd:
			for i := range out {
				out[i] = a[i] + b[i]
			}
		case sql.OpSub:
			for i := range out {
				out[i] = a[i] - b[i]
			}
		case sql.OpMul:
			for i := range out {
				out[i] = a[i] * b[i]
			}
		case sql.OpDiv:
			for i := range out {
				out[i] = a[i] / b[i] // IEEE semantics; NULL handled below
			}
		case sql.OpMod:
			for i := range out {
				if b[i] == 0 {
					out[i] = 0
				} else {
					out[i] = float64(int64(a[i]) % int64(b[i]))
				}
			}
		}
		res := vector.FromFloat64s(out)
		combineNulls(res, l, r)
		// Division by zero yields NULL, not Inf.
		if op == sql.OpDiv {
			for i := range b {
				if b[i] == 0 {
					res.SetNull(i)
				}
			}
		}
		return res, nil
	}
	// Integer path (Int32 or Int64 output).
	a, err := asInt64s(l)
	if err != nil {
		return nil, err
	}
	b, err := asInt64s(r)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	var divZero []int
	switch op {
	case sql.OpAdd:
		for i := range out {
			out[i] = a[i] + b[i]
		}
	case sql.OpSub:
		for i := range out {
			out[i] = a[i] - b[i]
		}
	case sql.OpMul:
		for i := range out {
			out[i] = a[i] * b[i]
		}
	case sql.OpMod:
		for i := range out {
			if b[i] == 0 {
				divZero = append(divZero, i)
				continue
			}
			out[i] = a[i] % b[i]
		}
	default:
		return nil, fmt.Errorf("exec: integer %s not supported", op)
	}
	var res *vector.Vector
	if outType == vector.Int32 {
		o32 := make([]int32, n)
		for i, v := range out {
			o32[i] = int32(v)
		}
		res = vector.FromInt32s(o32)
	} else {
		res = vector.FromInt64s(out)
	}
	combineNulls(res, l, r)
	for _, i := range divZero {
		res.SetNull(i)
	}
	return res, nil
}

func asInt64s(v *vector.Vector) ([]int64, error) {
	switch v.Type() {
	case vector.Int64:
		return v.Int64s(), nil
	case vector.Int32:
		out := make([]int64, v.Len())
		for i, x := range v.Int32s() {
			out[i] = int64(x)
		}
		return out, nil
	case vector.Float64:
		out := make([]int64, v.Len())
		for i, x := range v.Float64s() {
			out[i] = int64(x)
		}
		return out, nil
	}
	return nil, fmt.Errorf("exec: %s is not an integer type", v.Type())
}

func evalCompare(op sql.BinaryOp, l, r *vector.Vector) (*vector.Vector, error) {
	n := l.Len()
	out := make([]bool, n)
	lt, rt := l.Type(), r.Type()
	switch {
	case lt.IsNumeric() && rt.IsNumeric():
		if lt == vector.Float64 || rt == vector.Float64 {
			a, _ := l.AsFloat64s()
			b, _ := r.AsFloat64s()
			for i := range out {
				out[i] = floatCmpToBool(op, a[i], b[i])
			}
		} else {
			a, _ := asInt64s(l)
			b, _ := asInt64s(r)
			for i := range out {
				out[i] = cmpToBool(op, compareInt(a[i], b[i]))
			}
		}
	case lt == vector.String && rt == vector.String:
		a, b := l.Strings(), r.Strings()
		for i := range out {
			out[i] = cmpToBool(op, compareString(a[i], b[i]))
		}
	case lt == vector.Bool && rt == vector.Bool:
		a, b := l.Bools(), r.Bools()
		for i := range out {
			switch op {
			case sql.OpEq:
				out[i] = a[i] == b[i]
			case sql.OpNe:
				out[i] = a[i] != b[i]
			default:
				out[i] = cmpToBool(op, compareBool(a[i], b[i]))
			}
		}
	case lt == vector.Blob && rt == vector.Blob:
		a, b := l.Blobs(), r.Blobs()
		for i := range out {
			c := compareString(string(a[i]), string(b[i]))
			out[i] = cmpToBool(op, c)
		}
	case lt == vector.Invalid || rt == vector.Invalid:
		// Comparison against an untyped NULL constant: all NULL.
		res := vector.FromBools(out)
		for i := 0; i < n; i++ {
			res.SetNull(i)
		}
		return res, nil
	default:
		return nil, fmt.Errorf("exec: cannot compare %s with %s", lt, rt)
	}
	res := vector.FromBools(out)
	combineNulls(res, l, r)
	return res, nil
}

// floatCmpToBool applies IEEE comparison semantics: NaN is unordered,
// so every predicate over it is FALSE except <>, which is TRUE. This
// is what zone-map pruning assumes (NaN is excluded from segment
// bounds because it can never satisfy =, <, <=, >, >=; the binder
// never pushes <> down) — row-level evaluation must agree or pruned
// and unpruned scans would return different rows. ORDER BY
// deliberately differs: sorting needs a total order, so there NaN is
// greatest (vector.Value.Compare), the same split Go and Rust make
// between comparison operators and sort ordering.
func floatCmpToBool(op sql.BinaryOp, a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return op == sql.OpNe
	}
	return cmpToBool(op, compareFloat(a, b))
}

func compareFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareString(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func compareBool(a, b bool) int {
	switch {
	case !a && b:
		return -1
	case a && !b:
		return 1
	}
	return 0
}

func cmpToBool(op sql.BinaryOp, c int) bool {
	switch op {
	case sql.OpEq:
		return c == 0
	case sql.OpNe:
		return c != 0
	case sql.OpLt:
		return c < 0
	case sql.OpLe:
		return c <= 0
	case sql.OpGt:
		return c > 0
	case sql.OpGe:
		return c >= 0
	}
	return false
}

// evalLogical implements AND/OR with SQL three-valued logic.
func evalLogical(x *plan.BinOp, ch *vector.Chunk) (*vector.Vector, error) {
	l, err := Evaluate(x.Left, ch)
	if err != nil {
		return nil, err
	}
	r, err := Evaluate(x.Right, ch)
	if err != nil {
		return nil, err
	}
	if l.Type() != vector.Bool || r.Type() != vector.Bool {
		return nil, fmt.Errorf("exec: %s requires boolean operands, got %s and %s", x.Op, l.Type(), r.Type())
	}
	n := l.Len()
	a, b := l.Bools(), r.Bools()
	out := make([]bool, n)
	res := vector.FromBools(out)
	isAnd := x.Op == sql.OpAnd
	for i := 0; i < n; i++ {
		ln, rn := l.IsNull(i), r.IsNull(i)
		switch {
		case !ln && !rn:
			if isAnd {
				out[i] = a[i] && b[i]
			} else {
				out[i] = a[i] || b[i]
			}
		case isAnd:
			// NULL AND FALSE = FALSE, otherwise NULL.
			if (!ln && !a[i]) || (!rn && !b[i]) {
				out[i] = false
			} else {
				res.SetNull(i)
			}
		default:
			// NULL OR TRUE = TRUE, otherwise NULL.
			if (!ln && a[i]) || (!rn && b[i]) {
				out[i] = true
			} else {
				res.SetNull(i)
			}
		}
	}
	return res, nil
}

func evalNeg(x *plan.Neg, ch *vector.Chunk) (*vector.Vector, error) {
	in, err := Evaluate(x.Operand, ch)
	if err != nil {
		return nil, err
	}
	switch in.Type() {
	case vector.Float64:
		out := make([]float64, in.Len())
		for i, v := range in.Float64s() {
			out[i] = -v
		}
		res := vector.FromFloat64s(out)
		combineNulls(res, in)
		return res, nil
	case vector.Int64:
		out := make([]int64, in.Len())
		for i, v := range in.Int64s() {
			out[i] = -v
		}
		res := vector.FromInt64s(out)
		combineNulls(res, in)
		return res, nil
	case vector.Int32:
		out := make([]int32, in.Len())
		for i, v := range in.Int32s() {
			out[i] = -v
		}
		res := vector.FromInt32s(out)
		combineNulls(res, in)
		return res, nil
	}
	return nil, fmt.Errorf("exec: cannot negate %s", in.Type())
}

func evalNot(x *plan.Not, ch *vector.Chunk) (*vector.Vector, error) {
	in, err := Evaluate(x.Operand, ch)
	if err != nil {
		return nil, err
	}
	if in.Type() != vector.Bool {
		return nil, fmt.Errorf("exec: NOT requires a boolean operand, got %s", in.Type())
	}
	out := make([]bool, in.Len())
	for i, v := range in.Bools() {
		out[i] = !v
	}
	res := vector.FromBools(out)
	combineNulls(res, in)
	return res, nil
}

func evalIsNull(x *plan.IsNull, ch *vector.Chunk) (*vector.Vector, error) {
	in, err := Evaluate(x.Operand, ch)
	if err != nil {
		return nil, err
	}
	out := make([]bool, in.Len())
	for i := range out {
		isNull := in.IsNull(i)
		if x.Negate {
			out[i] = !isNull
		} else {
			out[i] = isNull
		}
	}
	return vector.FromBools(out), nil
}

func evalCase(x *plan.Case, ch *vector.Chunk) (*vector.Vector, error) {
	n := ch.NumRows()
	conds := make([]*vector.Vector, len(x.Whens))
	thens := make([]*vector.Vector, len(x.Whens))
	for i, w := range x.Whens {
		c, err := Evaluate(w.Cond, ch)
		if err != nil {
			return nil, err
		}
		if c.Type() != vector.Bool {
			return nil, fmt.Errorf("exec: CASE condition must be boolean, got %s", c.Type())
		}
		t, err := Evaluate(w.Then, ch)
		if err != nil {
			return nil, err
		}
		conds[i], thens[i] = c, t
	}
	var els *vector.Vector
	if x.Else != nil {
		v, err := Evaluate(x.Else, ch)
		if err != nil {
			return nil, err
		}
		els = v
	}
	out := vector.New(x.Typ, n)
rows:
	for i := 0; i < n; i++ {
		for w := range conds {
			if !conds[w].IsNull(i) && conds[w].Bools()[i] {
				v := thens[w].Get(i)
				if !v.IsNull() && v.Type() != x.Typ {
					cv, err := v.Cast(x.Typ)
					if err != nil {
						return nil, err
					}
					v = cv
				}
				out.AppendValue(v)
				continue rows
			}
		}
		if els != nil {
			v := els.Get(i)
			if !v.IsNull() && v.Type() != x.Typ {
				cv, err := v.Cast(x.Typ)
				if err != nil {
					return nil, err
				}
				v = cv
			}
			out.AppendValue(v)
		} else {
			out.AppendValue(vector.Null())
		}
	}
	return out, nil
}

func evalIn(x *plan.In, ch *vector.Chunk) (*vector.Vector, error) {
	op, err := Evaluate(x.Operand, ch)
	if err != nil {
		return nil, err
	}
	list := make([]*vector.Vector, len(x.List))
	for i, le := range x.List {
		v, err := Evaluate(le, ch)
		if err != nil {
			return nil, err
		}
		list[i] = v
	}
	n := op.Len()
	out := make([]bool, n)
	res := vector.FromBools(out)
	for i := 0; i < n; i++ {
		if op.IsNull(i) {
			res.SetNull(i)
			continue
		}
		v := op.Get(i)
		match := false
		anyNull := false
		for _, lv := range list {
			if lv.IsNull(i) {
				anyNull = true
				continue
			}
			if v.Equal(lv.Get(i)) {
				match = true
				break
			}
		}
		switch {
		case match:
			out[i] = !x.Negate
		case anyNull:
			res.SetNull(i) // unknown membership
		default:
			out[i] = x.Negate
		}
	}
	return res, nil
}
