// Morsel-driven parallel execution. A query pipeline whose leaf is a
// base-table scan or materialized relation is split into morsels (one
// storage segment or chunk-sized slice each); a shared atomic cursor
// hands morsels to Context.Workers() goroutines, which run the
// chunk-local filter→project stages, and either re-emit the surviving
// chunks in morsel order (exchange), feed thread-local aggregation
// tables that are merged when the input drains (partitioned hash
// aggregation — including DISTINCT aggregates and SELECT DISTINCT via
// per-worker key sets), sort per-worker runs merged by a loser tree
// (parallel sort, merge.go), or probe a shared hash-join build table.
// All parallel operators preserve the exact row order serial execution
// produces, so both ORDER BY and ORDER BY-less results stay
// deterministic.
package exec

import (
	"sync"
	"sync/atomic"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// ------------------------------------------------------- morsel sources

// morselSource yields the input of a parallel pipeline as independently
// fetchable morsels. open snapshots the input and returns the morsel
// count; fetch must be safe for concurrent use and may return
// (nil, nil) for a morsel eliminated before decode (zone-map
// pruning). finish flushes per-scan accounting once the morsels are
// drained or abandoned.
type morselSource interface {
	open(ctx *Context) int
	fetch(i int) (*vector.Chunk, error)
	finish()
}

// scanSource reads one storage segment per morsel (zero-copy for
// sealed raw columns; compressed columns decode in the worker, which
// overlaps decode with compute across the pool). Segments whose zone
// maps refute the pushed-down predicates are skipped before decode.
type scanSource struct {
	table      *catalog.Table
	projection []int
	preds      []plan.ScanPredicate
	rowPos     bool
	tap        *plan.NodeStats
	stats      *ScanStats
	store      *storage.TableSnapshot
	bases      []int64
	n          int

	scanned, skipped atomic.Int64
	finishOnce       sync.Once
}

func (s *scanSource) open(ctx *Context) int {
	s.store = ctx.tableData(s.table)
	s.n = s.store.NumSegments()
	s.stats = ctx.stats()
	if s.rowPos {
		s.bases = rowPosBases(s.store)
	}
	return s.n
}

func (s *scanSource) fetch(i int) (*vector.Chunk, error) {
	if len(s.preds) > 0 && segmentPrunable(s.store.Zones(i), s.preds) {
		s.skipped.Add(1)
		s.stats.addSkipped(1)
		return nil, nil
	}
	ch, err := s.store.Segment(i, s.projection)
	if err != nil {
		return nil, err
	}
	s.scanned.Add(1)
	s.stats.addScanned(1)
	if s.rowPos {
		ch = withRowPos(ch, s.bases[i])
	}
	tapCount(s.tap, ch)
	return ch, nil
}

func (s *scanSource) finish() {
	s.finishOnce.Do(func() {
		if s.store != nil { // Close without Open (a sibling failed to open)
			s.store.NoteScan(s.scanned.Load(), s.skipped.Load())
		}
	})
}

// materialSource slices a materialized table into chunk-sized morsels.
type materialSource struct {
	data *vector.Table
	n    int
}

func (m *materialSource) open(*Context) int {
	m.n = (m.data.NumRows() + vector.DefaultChunkSize - 1) / vector.DefaultChunkSize
	return m.n
}

func (m *materialSource) fetch(i int) (*vector.Chunk, error) {
	from := i * vector.DefaultChunkSize
	to := from + vector.DefaultChunkSize
	if n := m.data.NumRows(); to > n {
		to = n
	}
	return m.data.Chunk().Slice(from, to), nil
}

func (m *materialSource) finish() {}

// ------------------------------------------------------- pipeline spec

// pipeStage is one chunk-local transformation: a filter when pred is
// set, otherwise a projection. tap, when set, counts the stage's
// output rows (EXPLAIN ANALYZE) — pipelined stages have no operator
// boundary to wrap, so they count inline.
type pipeStage struct {
	pred  plan.Expr
	exprs []plan.Expr
	tap   *plan.NodeStats
}

// pipeSpec is a morsel-parallelizable scan→filter→project chain.
type pipeSpec struct {
	src    morselSource
	stages []pipeStage
}

// pipeScratch holds one worker's reusable buffers.
type pipeScratch struct {
	sel []int
}

// extractPipe returns the pipeline form of node when every operator in
// the chain is chunk-local, nil otherwise. UDF-bearing stages are
// admitted only when every call is marked Parallel: that flag is the
// function's declaration that concurrent evaluation over disjoint row
// ranges is safe — the same contract EvalPartitionedCall relies on —
// so model prediction runs morsel-parallel directly over base scans
// with zone-map pruning intact. Holistic UDFs (not Parallel) may keep
// unsynchronized state across calls and stay on the serial
// materializing path.
func extractPipe(node plan.Node) *pipeSpec {
	switch n := node.(type) {
	case *plan.Scan:
		return &pipeSpec{src: &scanSource{table: n.Table, projection: n.Projection, preds: n.Preds, rowPos: n.RowPos, tap: n.Hints.Tap}}
	case *plan.Material:
		return &pipeSpec{src: &materialSource{data: n.Data}}
	case *plan.Filter:
		if !callsAllParallel([]plan.Expr{n.Pred}) {
			return nil
		}
		p := extractPipe(n.Child)
		if p == nil {
			return nil
		}
		p.stages = append(p.stages, pipeStage{pred: n.Pred, tap: n.Hints.Tap})
		return p
	case *plan.Project:
		if !callsAllParallel(n.Exprs) {
			return nil
		}
		p := extractPipe(n.Child)
		if p == nil {
			return nil
		}
		p.stages = append(p.stages, pipeStage{exprs: n.Exprs})
		return p
	}
	return nil
}

// apply runs the pipeline stages over one morsel. It returns nil when
// the morsel was pruned before decode or the filter eliminates every
// row.
func (p *pipeSpec) apply(ch *vector.Chunk, sc *pipeScratch) (*vector.Chunk, error) {
	if ch == nil {
		return nil, nil
	}
	for _, st := range p.stages {
		if st.pred != nil {
			out, err := filterChunk(st.pred, ch, &sc.sel)
			if err != nil {
				return nil, err
			}
			if out == nil {
				return nil, nil
			}
			ch = out
			tapCount(st.tap, ch)
			continue
		}
		cols := make([]*vector.Vector, len(st.exprs))
		for i, e := range st.exprs {
			v, err := Evaluate(e, ch)
			if err != nil {
				return nil, err
			}
			cols[i] = v
		}
		ch = vector.NewChunk(cols...)
	}
	return ch, nil
}

// ------------------------------------------------------- ordered driver

type slotResult struct {
	ch  *vector.Chunk
	err error
}

// orderedDriver fans morsels 0..n-1 out to workers and re-emits the
// per-morsel results in morsel order, so the parallel operator's
// output is indistinguishable from serial execution. A token window
// bounds how far workers run ahead of the consumer, keeping buffered
// memory bounded and letting LIMIT-style consumers stop the scan
// early instead of racing through the whole input.
type orderedDriver struct {
	slots     []chan slotResult
	tokens    chan struct{}
	done      chan struct{}
	ext       <-chan struct{} // external cancellation (Context.Done)
	closeOnce sync.Once
	cursor    int
	stop      atomic.Bool
	wg        sync.WaitGroup
}

// startOrdered launches workers applying fn to each morsel. fn gets
// the worker id so it can use per-worker scratch state. Result slots
// are 1-buffered and written at most once, so delivery never blocks;
// a worker that claims a morsel before observing stop always runs it
// to completion, so the slot next() is waiting on is always being
// computed by some worker (no consumer deadlock). Slots past an
// error or abort may stay unwritten — next() never reads them because
// it hard-stops at the first error.
//
// ext is an optional external cancellation channel (Context.Done):
// when it closes, workers stop claiming morsels and a blocked next()
// returns ErrCancelled, so a consumer abandoned mid-stream (client
// disconnect, server shutdown) does not strand the driver.
func startOrdered(n, workers int, ext <-chan struct{}, fn func(worker, morsel int) (*vector.Chunk, error)) *orderedDriver {
	d := &orderedDriver{
		slots: make([]chan slotResult, n),
		done:  make(chan struct{}),
		ext:   ext,
	}
	for i := range d.slots {
		d.slots[i] = make(chan slotResult, 1)
	}
	if workers > n {
		workers = n
	}
	// The run-ahead window: workers hold a token per in-flight morsel,
	// and next() returns one per consumed slot. 2x workers keeps every
	// worker busy while bounding run-ahead.
	runAhead := 2 * workers
	if runAhead > n {
		runAhead = n
	}
	d.tokens = make(chan struct{}, n) // consumed-slot returns never block
	for i := 0; i < runAhead; i++ {
		d.tokens <- struct{}{}
	}
	var next atomic.Int64
	d.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer d.wg.Done()
			for {
				select {
				case <-d.tokens:
				case <-d.done:
					return
				case <-d.ext: // nil when no external cancel; never fires
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n || d.stop.Load() || d.interrupted() {
					return
				}
				ch, err := fn(w, i)
				d.slots[i] <- slotResult{ch: ch, err: err}
			}
		}(w)
	}
	return d
}

// next returns the next non-empty chunk in morsel order, nil at end.
// After an error the driver is exhausted: further calls return nil.
// External cancellation unblocks a waiting next with ErrCancelled —
// the slot it was waiting on may belong to a worker that exited
// without claiming it, so waiting on would deadlock.
func (d *orderedDriver) next() (*vector.Chunk, error) {
	for d.cursor < len(d.slots) {
		var r slotResult
		select {
		case r = <-d.slots[d.cursor]:
		case <-d.ext:
			d.stop.Store(true)
			d.cursor = len(d.slots)
			return nil, ErrCancelled
		}
		d.cursor++
		d.tokens <- struct{}{}
		if r.err != nil {
			d.stop.Store(true)
			d.cursor = len(d.slots)
			return nil, r.err
		}
		if r.ch != nil && r.ch.NumRows() > 0 {
			return r.ch, nil
		}
	}
	return nil, nil
}

// interrupted reports whether the external cancellation channel has
// closed (tokens and ext race in the worker select, so a ready token
// can win after cancellation; this check keeps cancelled workers from
// claiming further morsels).
func (d *orderedDriver) interrupted() bool {
	select {
	case <-d.ext:
		return true
	default:
		return false
	}
}

// abort stops morsel dispatch, wakes token-blocked workers, and waits
// for in-flight workers to finish.
func (d *orderedDriver) abort() {
	if d == nil {
		return
	}
	d.stop.Store(true)
	d.closeOnce.Do(func() { close(d.done) })
	d.wg.Wait()
}

// ------------------------------------------------------- exchange op

// parallelPipeOp is the exchange operator: it executes a scan→filter→
// project chain morsel-parallel and emits chunks in scan order.
type parallelPipeOp struct {
	pipe    *pipeSpec
	workers int
	drv     *orderedDriver
}

func (p *parallelPipeOp) Open(ctx *Context) error {
	n := p.pipe.src.open(ctx)
	scratch := make([]pipeScratch, p.workers)
	p.drv = startOrdered(n, p.workers, ctx.done(), func(w, i int) (*vector.Chunk, error) {
		ch, err := p.pipe.src.fetch(i)
		if err != nil {
			return nil, err
		}
		return p.pipe.apply(ch, &scratch[w])
	})
	return nil
}

func (p *parallelPipeOp) Next() (*vector.Chunk, error) { return p.drv.next() }

func (p *parallelPipeOp) Close() error {
	p.drv.abort()
	p.pipe.src.finish()
	return nil
}

// ------------------------------------------------------- partitioned agg

// parallelAggOp is partitioned hash aggregation: every worker consumes
// morsels into a thread-local aggregation consumer (an in-memory table
// that grace-partitions to disk when the query's memory budget is
// exceeded); when the input drains the consumers' state merges —
// in-memory tables directly, spilled state per partition — and the
// emitter streams groups in first-appearance order.
type parallelAggOp struct {
	spec    *plan.Aggregate
	pipe    *pipeSpec
	workers int
	ctx     *Context
	started bool
	emitter *aggEmitter
}

func (a *parallelAggOp) Open(ctx *Context) error {
	a.ctx = ctx
	a.started = false
	a.emitter = nil
	return nil
}

func (a *parallelAggOp) Next() (*vector.Chunk, error) {
	if !a.started {
		a.started = true
		em, err := a.run()
		if err != nil {
			return nil, err
		}
		a.emitter = em
	}
	return a.emitter.next(a.ctx)
}

func (a *parallelAggOp) run() (*aggEmitter, error) {
	n := a.pipe.src.open(a.ctx)
	workers := a.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shared := &aggShared{}
	consumers := make([]*aggConsumer, workers)
	errs := make([]error, workers)
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			c := newAggConsumer(a.ctx, a.spec, shared)
			consumers[w] = c
			var sc pipeScratch
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() || a.ctx.interrupted() {
					return
				}
				ch, err := a.pipe.src.fetch(i)
				if err == nil {
					ch, err = a.pipe.apply(ch, &sc)
				}
				if err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
				if ch == nil || ch.NumRows() == 0 {
					continue
				}
				if err := c.consume(ch, i); err != nil {
					errs[w] = err
					stop.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	a.pipe.src.finish()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if a.ctx.interrupted() {
		// Workers stopped mid-input; partial aggregates are wrong, so
		// surface the cancellation instead of merging them.
		return nil, ErrCancelled
	}
	return finishAggEmit(a.ctx, a.spec, consumers, shared)
}

func (a *parallelAggOp) Close() error {
	a.emitter.close()
	return nil
}

// ------------------------------------------------------- build dispatch

// buildParallel returns a morsel-parallel operator for the plan shapes
// the exchange layer covers; ok is false when the node must be built
// serially.
func buildParallel(node plan.Node, workers int) (op Operator, ok bool, err error) {
	switch n := node.(type) {
	case *plan.Filter, *plan.Project:
		if pipe := extractPipe(node); pipe != nil {
			return &parallelPipeOp{pipe: pipe, workers: workers}, true, nil
		}
	case *plan.Aggregate:
		if !aggParallelizable(n) {
			return nil, false, nil
		}
		if pipe := extractPipe(n.Child); pipe != nil {
			return &parallelAggOp{spec: n, pipe: pipe, workers: workers}, true, nil
		}
	case *plan.Sort:
		// UDFs in key expressions keep the sort serial: parallel run
		// generation would evaluate them concurrently per worker.
		if exprsHaveUDF(sortKeyExprs(n.Keys)) {
			return nil, false, nil
		}
		if pipe := extractPipe(n.Child); pipe != nil {
			return &parallelSortOp{spec: n, pipe: pipe, workers: workers}, true, nil
		}
	case *plan.Distinct:
		// DISTINCT over the full row is grouping by every column with
		// no aggregates; the partitioned aggregation path dedups
		// per-worker and restores serial first-appearance order at the
		// merge.
		if pipe := extractPipe(n.Child); pipe != nil {
			exprs, names := n.GroupExprs()
			spec := &plan.Aggregate{GroupBy: exprs, GroupNames: names}
			return &parallelAggOp{spec: spec, pipe: pipe, workers: workers}, true, nil
		}
	case *plan.HashJoin:
		if exprsHaveUDF(n.LeftKeys) || (n.Extra != nil && exprsHaveUDF([]plan.Expr{n.Extra})) {
			return nil, false, nil
		}
		pipe := extractPipe(n.Left)
		if pipe == nil {
			return nil, false, nil
		}
		right, err := buildWith(n.Right, workers)
		if err != nil {
			return nil, false, err
		}
		return &hashJoinOp{spec: n, right: right, probePipe: pipe, workers: workers}, true, nil
	}
	return nil, false, nil
}

// aggParallelizable reports whether an aggregation's state composes
// across partitions. Every aggregate kind now does — DISTINCT
// aggregates defer accumulation to finalization, so per-worker
// distinct key-sets union losslessly at the merge — but UDFs in group
// or argument expressions may not be called concurrently.
func aggParallelizable(n *plan.Aggregate) bool {
	for _, s := range n.Aggs {
		if s.Arg != nil && exprsHaveUDF([]plan.Expr{s.Arg}) {
			return false
		}
	}
	return !exprsHaveUDF(n.GroupBy)
}

// sortKeyExprs projects the key expressions out of sort keys.
func sortKeyExprs(keys []plan.SortKey) []plan.Expr {
	exprs := make([]plan.Expr, len(keys))
	for i, k := range keys {
		exprs[i] = k.Expr
	}
	return exprs
}

// assertOperator guards the parallel operators against interface drift.
var (
	_ Operator = (*parallelPipeOp)(nil)
	_ Operator = (*parallelAggOp)(nil)
)
