package exec

import (
	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// mlProjectOp is the streaming vectorized projection for row-local
// (Parallel) UDFs — the engine's PREDICT operator. Where udfProjectOp
// drains its whole input before the first UDF call, mlProjectOp scores
// each arriving chunk as it is pulled: memory stays O(chunk) no matter
// the input size, LIMIT consumers stop the scan early, cancellation is
// observed at every chunk boundary, and a memory-governed query never
// needs to spill its scored input. Oversized child chunks (a join can
// emit more than DefaultChunkSize rows at once) are split before
// evaluation, so downstream operators and the wire only ever see
// standard-sized chunks.
//
// Top-level Parallel UDF calls are partitioned across the context's
// worker count per chunk via EvalPartitionedCall, preserving the
// drained path's partitioned-execution semantics; row-local evaluation
// makes chunked results bit-identical to whole-input evaluation.
type mlProjectOp struct {
	exprs []plan.Expr
	child Operator
	ctx   *Context
	carry *vector.Chunk // oversized child chunk being re-sliced
	off   int
}

func (p *mlProjectOp) Open(ctx *Context) error {
	p.ctx = ctx
	p.carry, p.off = nil, 0
	return p.child.Open(ctx)
}

func (p *mlProjectOp) Next() (*vector.Chunk, error) {
	for {
		if p.ctx.interrupted() {
			return nil, ErrCancelled
		}
		if p.carry != nil {
			end := p.off + vector.DefaultChunkSize
			if n := p.carry.NumRows(); end > n {
				end = n
			}
			in := p.carry.Slice(p.off, end)
			if end >= p.carry.NumRows() {
				p.carry, p.off = nil, 0
			} else {
				p.off = end
			}
			return p.evalChunk(in)
		}
		ch, err := p.child.Next()
		if err != nil || ch == nil {
			return nil, err
		}
		if ch.NumRows() == 0 {
			continue
		}
		if ch.NumRows() > vector.DefaultChunkSize {
			p.carry, p.off = ch, 0
			continue
		}
		return p.evalChunk(ch)
	}
}

// evalChunk evaluates the projection over one input chunk.
func (p *mlProjectOp) evalChunk(in *vector.Chunk) (*vector.Chunk, error) {
	cols := make([]*vector.Vector, len(p.exprs))
	for i, e := range p.exprs {
		v, err := p.evalExpr(e, in)
		if err != nil {
			return nil, err
		}
		cols[i] = v
	}
	return vector.NewChunk(cols...), nil
}

// evalExpr evaluates one expression over a chunk, partitioning
// top-level Parallel UDF calls across workers (the same shape
// udfProjectOp.evalFull uses over the drained input).
func (p *mlProjectOp) evalExpr(e plan.Expr, in *vector.Chunk) (*vector.Vector, error) {
	if call, ok := e.(*plan.Call); ok && call.Fn.Parallel {
		args := make([]*vector.Vector, len(call.Args))
		for i, a := range call.Args {
			v, err := p.evalExpr(a, in)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		return EvalPartitionedCall(call, args, p.ctx.Workers())
	}
	return Evaluate(e, in)
}

func (p *mlProjectOp) Close() error { return p.child.Close() }

var _ Operator = (*mlProjectOp)(nil)
