package exec

import (
	"fmt"
	"testing"

	"vexdb/internal/plan"
	"vexdb/internal/vector"
)

// setHybridAgg flips the hybrid-aggregation toggle for one test and
// restores it afterwards.
func setHybridAgg(t *testing.T, on bool) {
	t.Helper()
	prev := HybridAggEnabled
	HybridAggEnabled = on
	t.Cleanup(func() { HybridAggEnabled = prev })
}

// hybridAggNode builds the adversarial aggregation the differential
// matrix runs: NaN/NULL float group key alongside a high-cardinality
// int key, with every aggregate kind including DISTINCT ones. Float
// values in buildSpillTable are dyadic so SUM is exact and results
// compare byte-for-byte across any consumption order.
func hybridAggNode(tab plan.Node) plan.Node {
	return &plan.Aggregate{
		GroupBy:    []plan.Expr{colRef(1, vector.Int64), colRef(3, vector.Float64)},
		GroupNames: []string{"hk", "v"},
		Aggs: []plan.AggSpec{
			{Kind: plan.AggCount, Name: "n", Typ: vector.Int64},
			{Kind: plan.AggSum, Arg: colRef(3, vector.Float64), Name: "sv", Typ: vector.Float64},
			{Kind: plan.AggMin, Arg: colRef(3, vector.Float64), Name: "mn", Typ: vector.Float64},
			{Kind: plan.AggMax, Arg: colRef(4, vector.String), Name: "mx", Typ: vector.String},
			{Kind: plan.AggCount, Arg: colRef(4, vector.String), Distinct: true, Name: "cd", Typ: vector.Int64},
			{Kind: plan.AggSum, Arg: colRef(0, vector.Int64), Distinct: true, Name: "sd", Typ: vector.Int64},
		},
		Child: tab,
	}
}

// TestHybridAggDifferentialMatrix proves byte-identity of the hybrid
// spill path against the unlimited in-memory baseline and against the
// route-everything path across the full matrix: workers 1/2/8 ×
// budgets unlimited/4MB/64KB, NaN/NULL group keys, DISTINCT
// aggregates, materialized and streamed consumption.
func TestHybridAggDifferentialMatrix(t *testing.T) {
	tab := buildSpillTable(t, 4*vector.DefaultChunkSize)
	node := hybridAggNode(&plan.Scan{Table: tab})
	want := runPlan(t, node, &Context{Parallelism: 1})

	for _, hybrid := range []bool{true, false} {
		setHybridAgg(t, hybrid)
		for _, workers := range []int{1, 2, 8} {
			for _, budget := range []int64{0, 4 << 20, 64 << 10} {
				label := fmt.Sprintf("hybrid=%v workers=%d budget=%d", hybrid, workers, budget)
				ctx, dir := spillCtx(t, workers, budget)
				got := runPlan(t, node, ctx)
				assertTablesEqual(t, got, want, label)
				if budget == 64<<10 && !ctx.Spill.Spilled() {
					t.Fatalf("%s: expected spilling", label)
				}
				assertTempDirEmpty(t, dir)

				// Streamed consumption must agree chunk by chunk too.
				ctx2, dir2 := spillCtx(t, workers, budget)
				s, err := Stream(node, ctx2)
				if err != nil {
					t.Fatal(err)
				}
				streamed, err := s.Materialize()
				if err != nil {
					t.Fatal(err)
				}
				s.Close()
				assertTablesEqual(t, streamed, want, label+" streamed")
				assertTempDirEmpty(t, dir2)
			}
		}
	}
}

// TestHybridAggKeepsPartitionsResident: at a budget that fits most but
// not all of the aggregation state, the hybrid path must keep some
// partitions in memory (resident counter), write strictly less spill
// than route-everything, and still produce identical bytes. The
// grouping is low-cardinality (sk × v), the case hybrid is built for:
// resident partitions merge repeated groups instead of re-writing
// their rows, while the DISTINCT-over-id aggregate keeps the state
// large enough to overflow the budget.
func TestHybridAggKeepsPartitionsResident(t *testing.T) {
	tab := buildSpillTable(t, 8*vector.DefaultChunkSize)
	node := &plan.Aggregate{
		GroupBy:    []plan.Expr{colRef(2, vector.Int32), colRef(3, vector.Float64)},
		GroupNames: []string{"sk", "v"},
		Aggs: []plan.AggSpec{
			{Kind: plan.AggCount, Name: "n", Typ: vector.Int64},
			{Kind: plan.AggSum, Arg: colRef(3, vector.Float64), Name: "sv", Typ: vector.Float64},
			{Kind: plan.AggSum, Arg: colRef(0, vector.Int64), Distinct: true, Name: "sd", Typ: vector.Int64},
		},
		Child: &plan.Scan{Table: tab},
	}
	want := runPlan(t, node, &Context{Parallelism: 1})

	// The aggregation state (dominated by the DISTINCT id sets) is a
	// small multiple of this budget: enough to force overflow while
	// leaving room for most partitions to stay resident.
	const budget = 1 << 20

	setHybridAgg(t, false)
	ctxFull, dirFull := spillCtx(t, 1, budget)
	gotFull := runPlan(t, node, ctxFull)
	assertTablesEqual(t, gotFull, want, "route-everything")
	if !ctxFull.Spill.Spilled() {
		t.Skip("budget did not force spilling on this configuration")
	}
	assertTempDirEmpty(t, dirFull)

	setHybridAgg(t, true)
	ctxHyb, dirHyb := spillCtx(t, 1, budget)
	gotHyb := runPlan(t, node, ctxHyb)
	assertTablesEqual(t, gotHyb, want, "hybrid")
	assertTempDirEmpty(t, dirHyb)

	if ctxHyb.Spill.ResidentPartitions() == 0 {
		t.Fatalf("hybrid: no resident partitions (spilled=%d)", ctxHyb.Spill.Partitions())
	}
	if hw, fw := ctxHyb.Spill.BytesWritten(), ctxFull.Spill.BytesWritten(); hw*2 > fw {
		t.Fatalf("hybrid wrote %d bytes, route-everything wrote %d — expected at least a 2x reduction", hw, fw)
	}
	t.Logf("spill bytes: hybrid=%d route-everything=%d resident=%d spilled=%d",
		ctxHyb.Spill.BytesWritten(), ctxFull.Spill.BytesWritten(),
		ctxHyb.Spill.ResidentPartitions(), ctxHyb.Spill.Partitions())
}

// TestHybridAggGrowBudgetAvoidsSpill: when GrowBudget can extend the
// budget (simulating an idle governor pool), an aggregation that would
// otherwise overflow must stay fully in memory and write nothing.
func TestHybridAggGrowBudgetAvoidsSpill(t *testing.T) {
	tab := buildSpillTable(t, 4*vector.DefaultChunkSize)
	node := hybridAggNode(&plan.Scan{Table: tab})
	want := runPlan(t, node, &Context{Parallelism: 1})

	var lease int64 = 64 << 10 // would certainly spill on its own
	ctx, dir := spillCtx(t, 2, lease)
	ctx.LiveBudget = func() int64 { return lease }
	ctx.GrowBudget = func(n int64) int64 { lease += n; return lease }
	got := runPlan(t, node, ctx)
	assertTablesEqual(t, got, want, "grown budget")
	if ctx.Spill.Spilled() {
		t.Fatalf("spilled despite growable budget: partitions=%d written=%d",
			ctx.Spill.Partitions(), ctx.Spill.BytesWritten())
	}
	assertTempDirEmpty(t, dir)
}
