// Grace-partitioned spill for the serial distinct operator. distinctOp
// streams survivors straight from its in-memory group index until the
// index outgrows the query's memory budget; it then switches to
// out-of-core mode:
//
//  1. The index's keys are dumped as per-partition "seen" rows (one
//     canonical key blob per already-emitted row), partitioned by a
//     hash of the canonical key, and the index is dropped.
//  2. Every subsequent input row is routed by the same hash to its
//     partition as a raw row (the data columns plus the row's global
//     input position) without touching the index at all.
//  3. At input exhaustion, partitions are processed one at a time: the
//     partition's seen set loads into a map, its raw rows replay in
//     arrival (= position) order keeping first appearances only, and
//     the survivors form position-sorted runs — spilled to a shared
//     out-file when the query is still over budget. The shared run
//     merger folds the partition runs back into global input order, so
//     output order is identical to the in-memory path.
//
// All rows of one distinct key hash to one partition, so dedup is
// exact. Unlike aggregation, partitions do not re-partition
// recursively: a partition whose seen set alone exceeds the budget is
// processed in memory — the same correctness-over-budget degradation
// aggregation applies at maxSpillLevels.
package exec

import (
	"encoding/binary"

	"vexdb/internal/spill"
	"vexdb/internal/vector"
)

// Canonical distinct-key encoding. The group index stores keys in
// three different representations (folded uint64, raw string, generic
// byte encoding); the canonical form prefixes each with a marker so
// dumped index keys and keys recomputed from replayed rows land in one
// shared keyspace without collisions across representations.
const (
	distinctKeyNull  = 0xFF // single-key NULL row
	distinctKeyInt   = 1    // folded fixed-width key (u64 LE)
	distinctKeyStr   = 2    // raw string bytes
	distinctKeyBytes = 3    // appendRowKey over all columns
)

// distinctSpiller fans post-overflow distinct input out to spillFanout
// partitions. It is serial (distinctOp never runs concurrently), so
// partitions need no locks.
type distinctSpiller struct {
	ctx  *Context
	kind keyKind

	file  *spill.File
	parts [spillFanout]distinctPart
}

type distinctPart struct {
	raw      *rowAppender // data cols + pos
	seen     *rowAppender // one Blob col of canonical keys
	rawRefs  []spill.ChunkRef
	seenRefs []spill.ChunkRef
}

func newDistinctSpiller(ctx *Context, kind keyKind) *distinctSpiller {
	return &distinctSpiller{ctx: ctx, kind: kind}
}

// keyOf appends row r's canonical distinct key to buf[:0], mirroring
// groupIndex.groupID's representation choices (including the
// divergence fallback to the generic encoding) so dumped index entries
// and replayed rows agree byte-for-byte.
func (s *distinctSpiller) keyOf(buf []byte, cols []*vector.Vector, r int) []byte {
	buf = buf[:0]
	switch s.kind {
	case keyKindInt:
		v := cols[0]
		if v.IsNull(r) {
			return append(buf, distinctKeyNull)
		}
		if k, ok := fixedKeyAt(v, r); ok {
			buf = append(buf, distinctKeyInt)
			return binary.LittleEndian.AppendUint64(buf, k)
		}
	case keyKindStr:
		v := cols[0]
		if v.IsNull(r) {
			return append(buf, distinctKeyNull)
		}
		if v.Type() == vector.String {
			buf = append(buf, distinctKeyStr)
			return append(buf, v.Strings()[r]...)
		}
	}
	buf = append(buf, distinctKeyBytes)
	for _, c := range cols {
		buf = appendRowKey(buf, c, r)
	}
	return buf
}

// writeBuf flushes one partition buffer into the shared spill file,
// recording the chunk ref.
func (s *distinctSpiller) writeBuf(a *rowAppender, refs *[]spill.ChunkRef) error {
	if a.rows() == 0 {
		return nil
	}
	if s.file == nil {
		f, err := s.ctx.spillManager().Create("distinct")
		if err != nil {
			return err
		}
		s.file = f
	}
	ref, err := s.file.WriteChunkRef(a.cols)
	if err != nil {
		return err
	}
	*refs = append(*refs, ref)
	a.reset()
	return nil
}

// dumpIndex writes every key of the dropped group index as a seen row,
// each representation under its canonical marker.
func (s *distinctSpiller) dumpIndex(gi *groupIndex) error {
	var buf []byte
	add := func(key []byte) error {
		p := partitionOf(hashKeyBytes(key), 0)
		pt := &s.parts[p]
		if pt.seen == nil {
			pt.seen = newRowAppender([]vector.Type{vector.Blob})
		}
		pt.seen.cols[0].AppendValue(vector.NewBlob(append([]byte(nil), key...)))
		if pt.seen.rows() >= vector.DefaultChunkSize {
			return s.writeBuf(pt.seen, &pt.seenRefs)
		}
		return nil
	}
	for k := range gi.fastInt {
		buf = append(buf[:0], distinctKeyInt)
		buf = binary.LittleEndian.AppendUint64(buf, k)
		if err := add(buf); err != nil {
			return err
		}
	}
	for k := range gi.fastStr {
		buf = append(buf[:0], distinctKeyStr)
		buf = append(buf, k...)
		if err := add(buf); err != nil {
			return err
		}
	}
	for k := range gi.slow {
		buf = append(buf[:0], distinctKeyBytes)
		buf = append(buf, k...)
		if err := add(buf); err != nil {
			return err
		}
	}
	if gi.nullID >= 0 {
		if err := add([]byte{distinctKeyNull}); err != nil {
			return err
		}
	}
	return nil
}

// route appends one post-overflow input chunk's rows to their
// partitions' raw lists. basePos is the global input position of the
// chunk's first row.
func (s *distinctSpiller) route(ch *vector.Chunk, basePos int64) error {
	cols := ch.Cols()
	var buf []byte
	for r := 0; r < ch.NumRows(); r++ {
		buf = s.keyOf(buf, cols, r)
		pt := &s.parts[partitionOf(hashKeyBytes(buf), 0)]
		if pt.raw == nil {
			types := make([]vector.Type, len(cols)+1)
			for i, c := range cols {
				types[i] = c.Type()
			}
			types[len(cols)] = vector.Int64
			pt.raw = newRowAppender(types)
		}
		for c := range cols {
			pt.raw.cols[c].AppendRowFrom(cols[c], r)
		}
		pt.raw.cols[len(cols)].AppendValue(vector.NewInt64(basePos + int64(r)))
		if pt.raw.rows() >= vector.DefaultChunkSize {
			if err := s.writeBuf(pt.raw, &pt.rawRefs); err != nil {
				return err
			}
		}
	}
	return nil
}

// finish flushes all buffered rows and counts the spilled partitions.
func (s *distinctSpiller) finish() error {
	n := int64(0)
	for p := range s.parts {
		pt := &s.parts[p]
		if pt.raw != nil {
			if err := s.writeBuf(pt.raw, &pt.rawRefs); err != nil {
				return err
			}
		}
		if pt.seen != nil {
			if err := s.writeBuf(pt.seen, &pt.seenRefs); err != nil {
				return err
			}
		}
		if len(pt.rawRefs) > 0 || len(pt.seenRefs) > 0 {
			n++
		}
	}
	s.ctx.spillStats().addPartitions(n)
	return nil
}

// release frees the spiller's input file once every partition is
// processed (the out-file with the survivor runs is the merger's).
func (s *distinctSpiller) release() {
	if s != nil && s.file != nil {
		s.file.Release()
		s.file = nil
	}
}

// finishDistinct turns the spilled partitions into a merger that
// streams the remaining survivors in global input order.
func (s *distinctSpiller) finishDistinct() (*runMerger, error) {
	if err := s.finish(); err != nil {
		return nil, err
	}
	var outFile *spill.File
	getOut := func() (*spill.File, error) {
		if outFile == nil {
			f, err := s.ctx.spillManager().Create("distinct-out")
			if err != nil {
				return nil, err
			}
			outFile = f
		}
		return outFile, nil
	}
	var runs []*mergeRun
	var held int64
	for p := range s.parts {
		pt := &s.parts[p]
		if len(pt.rawRefs) == 0 {
			continue // a seen-only partition has nothing left to emit
		}
		prs, err := s.processPartition(pt, getOut, &held)
		if err != nil {
			s.ctx.memShrink(held)
			return nil, err
		}
		runs = append(runs, prs...)
	}
	s.release()
	var files []*spill.File
	if outFile != nil {
		files = append(files, outFile)
	}
	return newRunMerger(s.ctx, nil, runs, -1, files, held), nil
}

// processPartition replays one partition: load its seen set, then keep
// each raw row whose key appears for the first time. Raw chunks were
// written in arrival order, so survivors come out position-sorted and
// chunk-sized survivor slabs are valid runs as-is.
func (s *distinctSpiller) processPartition(pt *distinctPart, getOut func() (*spill.File, error), held *int64) ([]*mergeRun, error) {
	ctx := s.ctx
	seen := make(map[string]struct{})
	var seenBytes int64
	defer func() {
		ctx.memShrink(seenBytes)
	}()
	note := func(key []byte) bool {
		if _, ok := seen[string(key)]; ok {
			return false
		}
		seen[string(key)] = struct{}{}
		b := int64(len(key)) + 48
		seenBytes += b
		ctx.memGrow(b)
		return true
	}
	for _, ref := range pt.seenRefs {
		if ctx.interrupted() {
			return nil, ErrCancelled
		}
		cols, err := s.file.ReadChunkAt(ref)
		if err != nil {
			return nil, err
		}
		for _, k := range cols[0].Blobs() {
			note(k)
		}
	}

	var runs []*mergeRun
	var surv *rowAppender
	var survPos []int64
	flush := func() error {
		if surv == nil || surv.rows() == 0 {
			return nil
		}
		run := &sortedRun{data: vector.NewChunk(surv.cols...), pos: survPos}
		mr, err := maybeSpillAggRun(ctx, run, getOut, held)
		if err != nil {
			return err
		}
		runs = append(runs, mr)
		surv = nil
		survPos = nil
		return nil
	}
	var buf []byte
	for _, ref := range pt.rawRefs {
		if ctx.interrupted() {
			return nil, ErrCancelled
		}
		cols, err := s.file.ReadChunkAt(ref)
		if err != nil {
			return nil, err
		}
		data := cols[:len(cols)-1]
		pos := cols[len(cols)-1].Int64s()
		for r := range pos {
			buf = s.keyOf(buf, data, r)
			if !note(buf) {
				continue
			}
			if surv == nil {
				types := make([]vector.Type, len(data))
				for i, c := range data {
					types[i] = c.Type()
				}
				surv = newRowAppender(types)
			}
			for c := range data {
				surv.cols[c].AppendRowFrom(data[c], r)
			}
			survPos = append(survPos, pos[r])
		}
		if surv != nil && surv.rows() >= vector.DefaultChunkSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return runs, nil
}
