// Grace-partitioned spill for the serial distinct operator. distinctOp
// streams survivors straight from its in-memory group index until the
// index outgrows the query's memory budget; it then switches to
// out-of-core mode:
//
//  1. The index's keys are dumped as per-partition "seen" rows (one
//     canonical key blob per already-emitted row), partitioned by a
//     hash of the canonical key, and the index is dropped.
//  2. Every subsequent input row is routed by the same hash to its
//     partition as a raw row (the data columns plus the row's global
//     input position) without touching the index at all.
//  3. At input exhaustion, partitions are processed one at a time: the
//     partition's seen set loads into a map, its raw rows replay in
//     arrival (= position) order keeping first appearances only, and
//     the survivors form position-sorted runs — spilled to a shared
//     out-file when the query is still over budget. The shared run
//     merger folds the partition runs back into global input order, so
//     output order is identical to the in-memory path.
//
// All rows of one distinct key hash to one partition, so dedup is
// exact. Like aggregation, partitions re-partition recursively: when a
// partition's seen set outgrows the budget while it is being
// processed, its remaining seen keys and raw rows fan out to a
// sub-spiller on the next hash nibble, down to maxSpillLevels. Only a
// partition that is still oversized at the deepest level degrades to
// in-memory processing (correctness over budget) — which now requires
// a key set that defeats 16^maxSpillLevels-way splitting.
package exec

import (
	"encoding/binary"

	"vexdb/internal/spill"
	"vexdb/internal/vector"
)

// Canonical distinct-key encoding. The group index stores keys in
// three different representations (folded uint64, raw string, generic
// byte encoding); the canonical form prefixes each with a marker so
// dumped index keys and keys recomputed from replayed rows land in one
// shared keyspace without collisions across representations.
const (
	distinctKeyNull  = 0xFF // single-key NULL row
	distinctKeyInt   = 1    // folded fixed-width key (u64 LE)
	distinctKeyStr   = 2    // raw string bytes
	distinctKeyBytes = 3    // appendRowKey over all columns
)

// distinctSpiller fans post-overflow distinct input out to spillFanout
// partitions. It is serial (distinctOp never runs concurrently), so
// partitions need no locks. level selects the hash nibble this spiller
// partitions on; recursive sub-spillers run one nibble deeper.
type distinctSpiller struct {
	ctx   *Context
	kind  keyKind
	level int

	file  *spill.File
	parts [spillFanout]distinctPart
}

type distinctPart struct {
	raw      *rowAppender // data cols + pos
	seen     *rowAppender // one Blob col of canonical keys
	rawRefs  []spill.ChunkRef
	seenRefs []spill.ChunkRef
}

func newDistinctSpiller(ctx *Context, kind keyKind) *distinctSpiller {
	return &distinctSpiller{ctx: ctx, kind: kind}
}

// keyOf appends row r's canonical distinct key to buf[:0], mirroring
// groupIndex.groupID's representation choices (including the
// divergence fallback to the generic encoding) so dumped index entries
// and replayed rows agree byte-for-byte.
func (s *distinctSpiller) keyOf(buf []byte, cols []*vector.Vector, r int) []byte {
	buf = buf[:0]
	switch s.kind {
	case keyKindInt:
		v := cols[0]
		if v.IsNull(r) {
			return append(buf, distinctKeyNull)
		}
		if k, ok := fixedKeyAt(v, r); ok {
			buf = append(buf, distinctKeyInt)
			return binary.LittleEndian.AppendUint64(buf, k)
		}
	case keyKindStr:
		v := cols[0]
		if v.IsNull(r) {
			return append(buf, distinctKeyNull)
		}
		if v.Type() == vector.String {
			buf = append(buf, distinctKeyStr)
			return append(buf, v.Strings()[r]...)
		}
	}
	buf = append(buf, distinctKeyBytes)
	for _, c := range cols {
		buf = appendRowKey(buf, c, r)
	}
	return buf
}

// writeBuf flushes one partition buffer into the shared spill file,
// recording the chunk ref.
func (s *distinctSpiller) writeBuf(a *rowAppender, refs *[]spill.ChunkRef) error {
	if a.rows() == 0 {
		return nil
	}
	if s.file == nil {
		f, err := s.ctx.spillManager().Create("distinct")
		if err != nil {
			return err
		}
		s.file = f
	}
	ref, err := s.file.WriteChunkRef(a.cols)
	if err != nil {
		return err
	}
	*refs = append(*refs, ref)
	a.reset()
	return nil
}

// addSeen routes one canonical key to its partition's seen list.
func (s *distinctSpiller) addSeen(key []byte) error {
	pt := &s.parts[partitionOf(hashKeyBytes(key), s.level)]
	if pt.seen == nil {
		pt.seen = newRowAppender([]vector.Type{vector.Blob})
	}
	pt.seen.cols[0].AppendValue(vector.NewBlob(append([]byte(nil), key...)))
	if pt.seen.rows() >= vector.DefaultChunkSize {
		return s.writeBuf(pt.seen, &pt.seenRefs)
	}
	return nil
}

// dumpIndex writes every key of the dropped group index as a seen row,
// each representation under its canonical marker.
func (s *distinctSpiller) dumpIndex(gi *groupIndex) error {
	var buf []byte
	for k := range gi.fastInt {
		buf = append(buf[:0], distinctKeyInt)
		buf = binary.LittleEndian.AppendUint64(buf, k)
		if err := s.addSeen(buf); err != nil {
			return err
		}
	}
	for k := range gi.fastStr {
		buf = append(buf[:0], distinctKeyStr)
		buf = append(buf, k...)
		if err := s.addSeen(buf); err != nil {
			return err
		}
	}
	for k := range gi.slow {
		buf = append(buf[:0], distinctKeyBytes)
		buf = append(buf, k...)
		if err := s.addSeen(buf); err != nil {
			return err
		}
	}
	if gi.nullID >= 0 {
		if err := s.addSeen([]byte{distinctKeyNull}); err != nil {
			return err
		}
	}
	return nil
}

// route appends one post-overflow input chunk's rows to their
// partitions' raw lists. basePos is the global input position of the
// chunk's first row.
func (s *distinctSpiller) route(ch *vector.Chunk, basePos int64) error {
	cols := ch.Cols()
	var buf []byte
	for r := 0; r < ch.NumRows(); r++ {
		buf = s.keyOf(buf, cols, r)
		if err := s.routeRawRow(buf, cols, r, basePos+int64(r)); err != nil {
			return err
		}
	}
	return nil
}

// routeRawRow appends one raw row (keyed by its canonical key) to its
// partition's raw list under global input position pos.
func (s *distinctSpiller) routeRawRow(key []byte, cols []*vector.Vector, r int, pos int64) error {
	pt := &s.parts[partitionOf(hashKeyBytes(key), s.level)]
	if pt.raw == nil {
		types := make([]vector.Type, len(cols)+1)
		for i, c := range cols {
			types[i] = c.Type()
		}
		types[len(cols)] = vector.Int64
		pt.raw = newRowAppender(types)
	}
	for c := range cols {
		pt.raw.cols[c].AppendRowFrom(cols[c], r)
	}
	pt.raw.cols[len(cols)].AppendValue(vector.NewInt64(pos))
	if pt.raw.rows() >= vector.DefaultChunkSize {
		return s.writeBuf(pt.raw, &pt.rawRefs)
	}
	return nil
}

// routeRawRows re-routes already-positioned raw rows (data columns
// plus an explicit position column) — the recursive re-partitioning
// entry, where positions are no longer contiguous.
func (s *distinctSpiller) routeRawRows(data []*vector.Vector, pos []int64) error {
	var buf []byte
	for r := range pos {
		buf = s.keyOf(buf, data, r)
		if err := s.routeRawRow(buf, data, r, pos[r]); err != nil {
			return err
		}
	}
	return nil
}

// finish flushes all buffered rows and counts the spilled partitions.
func (s *distinctSpiller) finish() error {
	n := int64(0)
	for p := range s.parts {
		pt := &s.parts[p]
		if pt.raw != nil {
			if err := s.writeBuf(pt.raw, &pt.rawRefs); err != nil {
				return err
			}
		}
		if pt.seen != nil {
			if err := s.writeBuf(pt.seen, &pt.seenRefs); err != nil {
				return err
			}
		}
		if len(pt.rawRefs) > 0 || len(pt.seenRefs) > 0 {
			n++
		}
	}
	s.ctx.spillStats().addPartitions(n)
	return nil
}

// release frees the spiller's input file once every partition is
// processed (the out-file with the survivor runs is the merger's).
func (s *distinctSpiller) release() {
	if s != nil && s.file != nil {
		s.file.Release()
		s.file = nil
	}
}

// finishDistinct turns the spilled partitions into a merger that
// streams the remaining survivors in global input order.
func (s *distinctSpiller) finishDistinct() (*runMerger, error) {
	var outFile *spill.File
	getOut := func() (*spill.File, error) {
		if outFile == nil {
			f, err := s.ctx.spillManager().Create("distinct-out")
			if err != nil {
				return nil, err
			}
			outFile = f
		}
		return outFile, nil
	}
	var held int64
	runs, err := s.processAll(getOut, &held)
	s.release()
	if err != nil {
		s.ctx.memShrink(held)
		return nil, err
	}
	var files []*spill.File
	if outFile != nil {
		files = append(files, outFile)
	}
	return newRunMerger(s.ctx, nil, runs, -1, files, held), nil
}

// processAll flushes the spiller's buffers and processes every
// partition holding raw rows, returning their survivor runs. It is the
// shared driver for the top-level spiller and recursive sub-spillers.
func (s *distinctSpiller) processAll(getOut func() (*spill.File, error), held *int64) ([]*mergeRun, error) {
	if err := s.finish(); err != nil {
		return nil, err
	}
	var runs []*mergeRun
	for p := range s.parts {
		pt := &s.parts[p]
		if len(pt.rawRefs) == 0 {
			continue // a seen-only partition has nothing left to emit
		}
		prs, err := s.processPartition(pt, getOut, held)
		if err != nil {
			return nil, err
		}
		runs = append(runs, prs...)
	}
	return runs, nil
}

// processPartition replays one partition: load its seen set, then keep
// each raw row whose key appears for the first time. Raw chunks were
// written in arrival order, so survivors come out position-sorted and
// chunk-sized survivor slabs are valid runs as-is.
//
// When the partition's seen set outgrows the budget mid-load (or
// mid-replay), the partition hands its remaining state to a
// sub-spiller on the next hash nibble: the in-memory seen keys and
// unread seen chunks re-route as seen rows, the unread raw chunks
// re-route with their original positions, and the sub-spiller's
// partitions process recursively. Survivor runs stay position-sorted
// throughout, so the global merge is unaffected by recursion depth.
func (s *distinctSpiller) processPartition(pt *distinctPart, getOut func() (*spill.File, error), held *int64) ([]*mergeRun, error) {
	ctx := s.ctx
	canRecurse := s.level+1 < maxSpillLevels
	seen := make(map[string]struct{})
	var seenBytes int64
	defer func() {
		ctx.memShrink(seenBytes)
	}()
	note := func(key []byte) bool {
		if _, ok := seen[string(key)]; ok {
			return false
		}
		seen[string(key)] = struct{}{}
		b := int64(len(key)) + 48
		seenBytes += b
		ctx.memGrow(b)
		return true
	}
	var runs []*mergeRun
	var surv *rowAppender
	var survPos []int64
	flush := func() error {
		if surv == nil || surv.rows() == 0 {
			return nil
		}
		run := &sortedRun{data: vector.NewChunk(surv.cols...), pos: survPos}
		mr, err := maybeSpillAggRun(ctx, run, getOut, held)
		if err != nil {
			return err
		}
		runs = append(runs, mr)
		surv = nil
		survPos = nil
		return nil
	}

	// overflow flushes the survivors found so far, then re-routes the
	// partition's remaining state — the in-memory seen keys plus the
	// unread seen/raw chunks — into a sub-spiller one hash nibble
	// deeper, and processes its partitions recursively.
	overflow := func(nextSeen, nextRaw int) ([]*mergeRun, error) {
		if err := flush(); err != nil {
			return nil, err
		}
		sub := &distinctSpiller{ctx: ctx, kind: s.kind, level: s.level + 1}
		defer sub.release()
		for k := range seen {
			if err := sub.addSeen([]byte(k)); err != nil {
				return nil, err
			}
		}
		seen = nil
		ctx.memShrink(seenBytes)
		seenBytes = 0
		for _, ref := range pt.seenRefs[nextSeen:] {
			if ctx.interrupted() {
				return nil, ErrCancelled
			}
			cols, err := s.file.ReadChunkAt(ref)
			if err != nil {
				return nil, err
			}
			for _, k := range cols[0].Blobs() {
				if err := sub.addSeen(k); err != nil {
					return nil, err
				}
			}
		}
		for _, ref := range pt.rawRefs[nextRaw:] {
			if ctx.interrupted() {
				return nil, ErrCancelled
			}
			cols, err := s.file.ReadChunkAt(ref)
			if err != nil {
				return nil, err
			}
			if err := sub.routeRawRows(cols[:len(cols)-1], cols[len(cols)-1].Int64s()); err != nil {
				return nil, err
			}
		}
		subRuns, err := sub.processAll(getOut, held)
		if err != nil {
			return nil, err
		}
		return append(runs, subRuns...), nil
	}

	for si, ref := range pt.seenRefs {
		if ctx.interrupted() {
			return nil, ErrCancelled
		}
		cols, err := s.file.ReadChunkAt(ref)
		if err != nil {
			return nil, err
		}
		for _, k := range cols[0].Blobs() {
			note(k)
		}
		if canRecurse && ctx.shouldSpill(seenBytes) {
			return overflow(si+1, 0)
		}
	}

	var buf []byte
	for ri, ref := range pt.rawRefs {
		if ctx.interrupted() {
			return nil, ErrCancelled
		}
		cols, err := s.file.ReadChunkAt(ref)
		if err != nil {
			return nil, err
		}
		data := cols[:len(cols)-1]
		pos := cols[len(cols)-1].Int64s()
		for r := range pos {
			buf = s.keyOf(buf, data, r)
			if !note(buf) {
				continue
			}
			if surv == nil {
				types := make([]vector.Type, len(data))
				for i, c := range data {
					types[i] = c.Type()
				}
				surv = newRowAppender(types)
			}
			for c := range data {
				surv.cols[c].AppendRowFrom(data[c], r)
			}
			survPos = append(survPos, pos[r])
		}
		if surv != nil && surv.rows() >= vector.DefaultChunkSize {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		if canRecurse && ctx.shouldSpill(seenBytes) {
			return overflow(len(pt.seenRefs), ri+1)
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return runs, nil
}
