// Zone-map pruned, prefetching base-table scans. Sealed storage
// segments carry per-column min/max statistics; a scan first tests
// the pushed-down predicates against them and skips whole segments
// that provably contain no matching row, then decodes the survivors.
// The serial scan overlaps decode with compute by running a bounded
// prefetcher goroutine; the morsel-parallel scan gets the same
// overlap from its worker pool, so only pruning is added there.
package exec

import (
	"sync"
	"sync/atomic"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/storage"
	"vexdb/internal/vector"
)

// ScanStats accumulates segment-level counters for one query. All
// methods are safe for concurrent use and for a nil receiver.
type ScanStats struct {
	scanned atomic.Int64
	skipped atomic.Int64
}

// Scanned returns the number of segments decoded and scanned.
func (s *ScanStats) Scanned() int64 {
	if s == nil {
		return 0
	}
	return s.scanned.Load()
}

// Skipped returns the number of segments skipped by zone-map pruning.
func (s *ScanStats) Skipped() int64 {
	if s == nil {
		return 0
	}
	return s.skipped.Load()
}

func (s *ScanStats) addScanned(n int64) {
	if s != nil {
		s.scanned.Add(n)
	}
}

func (s *ScanStats) addSkipped(n int64) {
	if s != nil {
		s.skipped.Add(n)
	}
}

// stats returns the context's per-query scan counters (nil-safe).
func (c *Context) stats() *ScanStats {
	if c == nil {
		return nil
	}
	return c.Stats
}

// segmentPrunable reports whether the zone maps prove that no row of
// the segment satisfies all pushed predicates. It only ever prunes on
// positive knowledge: missing statistics (mutable tail, legacy files,
// compression disabled), failed comparisons and unknown operators all
// keep the segment.
func segmentPrunable(zones []storage.ZoneMap, preds []plan.ScanPredicate) bool {
	if len(zones) == 0 {
		return false
	}
	for _, p := range preds {
		if p.Col >= len(zones) {
			continue
		}
		z := zones[p.Col]
		if z.Rows == 0 {
			continue // no statistics
		}
		// A comparison is never TRUE on a NULL row, so an all-NULL
		// segment column fails every pushed predicate.
		if z.NullCount == z.Rows {
			return true
		}
		if !z.HasMinMax() {
			continue
		}
		minCmp, minOK := cmpKnown(z.Min, p.Val)
		maxCmp, maxOK := cmpKnown(z.Max, p.Val)
		switch p.Op {
		case sql.OpEq:
			if (minOK && minCmp > 0) || (maxOK && maxCmp < 0) {
				return true
			}
		case sql.OpLt: // needs min < val
			if minOK && minCmp >= 0 {
				return true
			}
		case sql.OpLe: // needs min <= val
			if minOK && minCmp > 0 {
				return true
			}
		case sql.OpGt: // needs max > val
			if maxOK && maxCmp <= 0 {
				return true
			}
		case sql.OpGe: // needs max >= val
			if maxOK && maxCmp < 0 {
				return true
			}
		}
	}
	return false
}

// cmpKnown compares two values, reporting ok only for a successful
// comparison; a failed one (incomparable types, e.g. a corrupt zone
// bound) must keep the segment, never prune it. In practice failures
// are unreachable: the binder only pushes comparable constants and
// the v2 loader rejects zone bounds typed unlike their column.
func cmpKnown(a, b vector.Value) (int, bool) {
	c, err := a.Compare(b)
	return c, err == nil
}

// prefetchDepth bounds how many decoded segments the serial scan's
// prefetcher may run ahead of the consumer.
const prefetchDepth = 4

// scanOp is the serial base-table scan: a single prefetcher goroutine
// walks the segments, skips the ones zone maps prune, decodes
// survivors into recycled chunk buffers and hands them over a bounded
// channel, overlapping decode with downstream compute. Chunks are
// valid until the next call to Next (standard operator contract);
// only then is their buffer set recycled.
type scanOp struct {
	table      *catalog.Table
	projection []int
	preds      []plan.ScanPredicate
	rowPos     bool
	tap        *plan.NodeStats

	results  chan scanResult
	free     chan []*vector.Vector
	quit     chan struct{}
	quitOnce sync.Once
	aborted  atomic.Bool
	wg       sync.WaitGroup
	last     []*vector.Vector
}

type scanResult struct {
	ch   *vector.Chunk
	bufs []*vector.Vector
	err  error
}

func (s *scanOp) Open(ctx *Context) error {
	s.results = make(chan scanResult, prefetchDepth)
	s.free = make(chan []*vector.Vector, prefetchDepth+2)
	s.quit = make(chan struct{})
	s.quitOnce = sync.Once{}
	s.aborted.Store(false)
	s.last = nil

	store := ctx.tableData(s.table)
	n := store.NumSegments()
	ncols := len(s.projection)
	if s.projection == nil {
		ncols = store.NumColumns()
	}
	done := ctx.done()
	stats := ctx.stats()
	var bases []int64
	if s.rowPos {
		bases = rowPosBases(store)
	}

	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer close(s.results)
		var scanned, skipped int64
		defer func() { store.NoteScan(scanned, skipped) }()
		for i := 0; i < n; i++ {
			if len(s.preds) > 0 && segmentPrunable(store.Zones(i), s.preds) {
				skipped++
				stats.addSkipped(1)
				continue
			}
			var bufs []*vector.Vector
			select {
			case bufs = <-s.free:
			default:
				bufs = make([]*vector.Vector, ncols)
			}
			ch, err := store.SegmentInto(i, s.projection, bufs)
			if err == nil {
				scanned++
				stats.addScanned(1)
				if s.rowPos {
					ch = withRowPos(ch, bases[i])
				}
			}
			select {
			case s.results <- scanResult{ch: ch, bufs: bufs, err: err}:
				if err != nil {
					return
				}
			case <-s.quit:
				s.aborted.Store(true)
				return
			case <-done:
				s.aborted.Store(true)
				return
			}
		}
	}()
	return nil
}

func (s *scanOp) Next() (*vector.Chunk, error) {
	// The chunk handed out by the previous Next is dead now; recycle
	// its decode buffers for the prefetcher.
	if s.last != nil {
		select {
		case s.free <- s.last:
		default:
		}
		s.last = nil
	}
	r, ok := <-s.results
	if !ok {
		if s.aborted.Load() {
			return nil, ErrCancelled
		}
		return nil, nil
	}
	if r.err != nil {
		return nil, r.err
	}
	s.last = r.bufs
	tapCount(s.tap, r.ch)
	return r.ch, nil
}

// rowPosBases returns, per segment, the global position of its first
// row. Pruned segments still advance the base: positions name physical
// table rows, so they are stable across predicate pushdown and worker
// scheduling — which is what lets the order-restoring sort after a
// reordered join reproduce the syntactic plan's output byte for byte.
func rowPosBases(store *storage.TableSnapshot) []int64 {
	counts := store.SegmentRowCounts()
	bases := make([]int64, len(counts))
	var acc int64
	for i, c := range counts {
		bases[i] = acc
		acc += int64(c)
	}
	return bases
}

// withRowPos appends the __rowpos column (base, base+1, ...) to ch.
func withRowPos(ch *vector.Chunk, base int64) *vector.Chunk {
	n := ch.NumRows()
	pos := make([]int64, n)
	for i := range pos {
		pos[i] = base + int64(i)
	}
	cols := append(append([]*vector.Vector(nil), ch.Cols()...), vector.FromInt64s(pos))
	return vector.NewChunk(cols...)
}

func (s *scanOp) Close() error {
	if s.quit == nil {
		return nil
	}
	s.quitOnce.Do(func() { close(s.quit) })
	// Unblock the prefetcher if it is waiting to deliver, then join.
	for range s.results {
	}
	s.wg.Wait()
	return nil
}
