package exec

import (
	"fmt"
	"math"
	"os"
	"testing"

	"vexdb/internal/catalog"
	"vexdb/internal/plan"
	"vexdb/internal/sql"
	"vexdb/internal/vector"
)

// buildSpillTable creates a multi-segment table with a high-cardinality
// int64 key (many groups), a skewed int32 key, a float column cycling
// through NaN/NULL/±Inf/duplicates, and a string column — the
// adversarial inputs for grace partitioning and external sort.
func buildSpillTable(t *testing.T, rows int) *catalog.Table {
	t.Helper()
	cat := catalog.New()
	tab, err := cat.CreateTable("s", catalog.Schema{
		{Name: "id", Type: vector.Int64},
		{Name: "hk", Type: vector.Int64},
		{Name: "sk", Type: vector.Int32},
		{Name: "v", Type: vector.Float64},
		{Name: "name", Type: vector.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]int64, rows)
	hks := make([]int64, rows)
	sks := make([]int32, rows)
	vs := vector.New(vector.Float64, rows)
	names := make([]string, rows)
	for i := 0; i < rows; i++ {
		ids[i] = int64(i)
		hks[i] = int64((i * 2654435761) % (rows * 3 / 4)) // high cardinality, some repeats
		sks[i] = int32(i % 7)                             // skewed / low cardinality
		switch i % 13 {
		case 3:
			vs.AppendValue(vector.NewFloat64(math.NaN()))
		case 5:
			vs.AppendValue(vector.Null())
		case 7:
			vs.AppendValue(vector.NewFloat64(math.Inf(1)))
		default:
			vs.AppendValue(vector.NewFloat64(float64(i%97) * 0.5)) // dyadic: exact sums
		}
		names[i] = "n" + string(rune('a'+i%26))
	}
	if err := tab.Data.AppendChunk(vector.NewChunk(
		vector.FromInt64s(ids), vector.FromInt64s(hks), vector.FromInt32s(sks),
		vs, vector.FromStrings(names))); err != nil {
		t.Fatal(err)
	}
	return tab
}

// runPlan executes node under ctx and returns the materialized result.
func runPlan(t *testing.T, node plan.Node, ctx *Context) *vector.Table {
	t.Helper()
	out, err := Run(node, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// assertTablesEqual compares two results cell by cell (float cells by
// bit pattern via Value.String, which distinguishes NaN).
func assertTablesEqual(t *testing.T, got, want *vector.Table, label string) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("%s: got %dx%d, want %dx%d", label, got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for r := 0; r < want.NumRows(); r++ {
		for c := 0; c < want.NumCols(); c++ {
			gv, wv := got.Cols[c].Get(r), want.Cols[c].Get(r)
			if gv.String() != wv.String() {
				t.Fatalf("%s: row %d col %d: %v, want %v", label, r, c, gv, wv)
			}
		}
	}
}

// spillCtx returns a Context with a tiny budget and a per-test temp
// dir, plus the dir for cleanup assertions.
func spillCtx(t *testing.T, workers int, budget int64) (*Context, string) {
	t.Helper()
	dir := t.TempDir()
	return &Context{Parallelism: workers, MemoryBudget: budget, TempDir: dir, Spill: &SpillStats{}}, dir
}

func assertTempDirEmpty(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d entries left in temp dir %s: %v", len(ents), dir, ents)
	}
}

// TestSpillAggMatchesInMemory: GROUP BY over a high-cardinality key
// with every aggregate kind (incl. DISTINCT) must produce byte-equal
// results under a tiny budget (forcing multi-level recursion) at any
// worker count, and leave no temp files behind.
func TestSpillAggMatchesInMemory(t *testing.T) {
	tab := buildSpillTable(t, 4*vector.DefaultChunkSize)
	node := plan.Node(&plan.Aggregate{
		GroupBy:    []plan.Expr{colRef(1, vector.Int64)},
		GroupNames: []string{"hk"},
		Aggs: []plan.AggSpec{
			{Kind: plan.AggCount, Name: "n", Typ: vector.Int64},
			{Kind: plan.AggSum, Arg: colRef(3, vector.Float64), Name: "sv", Typ: vector.Float64},
			{Kind: plan.AggMin, Arg: colRef(3, vector.Float64), Name: "mn", Typ: vector.Float64},
			{Kind: plan.AggMax, Arg: colRef(4, vector.String), Name: "mx", Typ: vector.String},
			{Kind: plan.AggCount, Arg: colRef(4, vector.String), Distinct: true, Name: "cd", Typ: vector.Int64},
			{Kind: plan.AggSum, Arg: colRef(0, vector.Int64), Distinct: true, Name: "sd", Typ: vector.Int64},
		},
		Child: &plan.Scan{Table: tab},
	})
	want := runPlan(t, node, &Context{Parallelism: 1})
	for _, workers := range []int{1, 2, 8} {
		for _, budget := range []int64{1 << 14, 1 << 20} { // 16KB forces deep recursion
			ctx, dir := spillCtx(t, workers, budget)
			got := runPlan(t, node, ctx)
			assertTablesEqual(t, got, want, "agg spill")
			if !ctx.Spill.Spilled() {
				t.Fatalf("workers=%d budget=%d: expected spilling", workers, budget)
			}
			if ctx.Spill.Partitions() == 0 {
				t.Fatalf("workers=%d budget=%d: no partitions spilled", workers, budget)
			}
			assertTempDirEmpty(t, dir)
		}
	}
}

// TestSpillAggNullAndNaNKeys: NULL and NaN group keys must group and
// order identically through the spill path.
func TestSpillAggNullAndNaNKeys(t *testing.T) {
	tab := buildSpillTable(t, 3*vector.DefaultChunkSize)
	node := plan.Node(&plan.Aggregate{
		GroupBy:    []plan.Expr{colRef(3, vector.Float64)},
		GroupNames: []string{"v"},
		Aggs: []plan.AggSpec{
			{Kind: plan.AggCount, Name: "n", Typ: vector.Int64},
			{Kind: plan.AggSum, Arg: colRef(0, vector.Int64), Name: "si", Typ: vector.Int64},
		},
		Child: &plan.Scan{Table: tab},
	})
	want := runPlan(t, node, &Context{Parallelism: 1})
	for _, workers := range []int{1, 2, 8} {
		ctx, dir := spillCtx(t, workers, 1<<13)
		got := runPlan(t, node, ctx)
		assertTablesEqual(t, got, want, "agg null/nan keys")
		if !ctx.Spill.Spilled() {
			t.Fatal("expected spilling")
		}
		assertTempDirEmpty(t, dir)
	}
}

// TestSpillSortMatchesInMemory: external sort (runs spilled, merged
// from disk) must be byte-identical to the unlimited in-memory sort,
// including NaN/NULL keys, at workers 1/2/8, materialized and
// streamed.
func TestSpillSortMatchesInMemory(t *testing.T) {
	forceWideMerge(t)
	tab := buildSpillTable(t, 4*vector.DefaultChunkSize)
	for _, desc := range []bool{false, true} {
		node := plan.Node(&plan.Sort{
			Keys: []plan.SortKey{
				{Expr: colRef(3, vector.Float64), Desc: desc},
				{Expr: colRef(2, vector.Int32)},
			},
			Child: &plan.Scan{Table: tab},
		})
		want := runPlan(t, node, &Context{Parallelism: 1})
		for _, workers := range []int{1, 2, 8} {
			ctx, dir := spillCtx(t, workers, 1<<14)
			got := runPlan(t, node, ctx)
			assertTablesEqual(t, got, want, "sort spill")
			if ctx.Spill.Runs() == 0 {
				t.Fatalf("desc=%v workers=%d: no runs spilled", desc, workers)
			}
			assertTempDirEmpty(t, dir)

			// Streamed consumption must agree chunk by chunk too.
			ctx2, dir2 := spillCtx(t, workers, 1<<14)
			s, err := Stream(node, ctx2)
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := s.Materialize()
			if err != nil {
				t.Fatal(err)
			}
			s.Close()
			assertTablesEqual(t, streamed, want, "sort spill streamed")
			assertTempDirEmpty(t, dir2)
		}
	}
}

// TestSortTopKBoundedBuffer: a small LIMIT must produce the exact
// serial prefix while keeping per-worker buffers bounded (exercised
// with and without a budget).
func TestSortTopKBoundedBuffer(t *testing.T) {
	forceWideMerge(t)
	tab := buildSpillTable(t, 6*vector.DefaultChunkSize)
	full := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(3, vector.Float64)}, {Expr: colRef(0, vector.Int64), Desc: true}},
		Child: &plan.Scan{Table: tab},
	})
	want := runPlan(t, full, &Context{Parallelism: 1})
	limited := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(3, vector.Float64)}, {Expr: colRef(0, vector.Int64), Desc: true}},
		Child: &plan.Scan{Table: tab},
		Limit: 23,
	})
	for _, workers := range []int{1, 2, 8} {
		for _, budget := range []int64{0, 1 << 14} {
			ctx := &Context{Parallelism: workers, MemoryBudget: budget, TempDir: t.TempDir()}
			got := runPlan(t, limited, ctx)
			if got.NumRows() != 23 {
				t.Fatalf("workers=%d budget=%d: %d rows, want 23", workers, budget, got.NumRows())
			}
			for r := 0; r < 23; r++ {
				if got.Cols[0].Int64s()[r] != want.Cols[0].Int64s()[r] {
					t.Fatalf("workers=%d budget=%d row %d: id %d, want %d",
						workers, budget, r, got.Cols[0].Int64s()[r], want.Cols[0].Int64s()[r])
				}
			}
		}
	}
}

// buildJoinTables creates a probe table and a build table whose keys
// overlap partially (multiple matches per key, NULL keys on both
// sides).
func buildJoinTables(t *testing.T, probeRows, buildRows int) (probe, build *catalog.Table) {
	t.Helper()
	cat := catalog.New()
	p, err := cat.CreateTable("p", catalog.Schema{
		{Name: "pid", Type: vector.Int64},
		{Name: "pk", Type: vector.Int64},
		{Name: "pv", Type: vector.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	pid := make([]int64, probeRows)
	pk := vector.New(vector.Int64, probeRows)
	pv := make([]string, probeRows)
	for i := 0; i < probeRows; i++ {
		pid[i] = int64(i)
		if i%19 == 4 {
			pk.AppendValue(vector.Null())
		} else {
			pk.AppendValue(vector.NewInt64(int64((i * 7) % (buildRows * 2))))
		}
		pv[i] = "p" + string(rune('a'+i%26))
	}
	if err := p.Data.AppendChunk(vector.NewChunk(vector.FromInt64s(pid), pk, vector.FromStrings(pv))); err != nil {
		t.Fatal(err)
	}
	b, err := cat.CreateTable("b", catalog.Schema{
		{Name: "bk", Type: vector.Int64},
		{Name: "bv", Type: vector.Int64},
		{Name: "bs", Type: vector.String},
	})
	if err != nil {
		t.Fatal(err)
	}
	bk := vector.New(vector.Int64, buildRows)
	bv := make([]int64, buildRows)
	bs := make([]string, buildRows)
	for i := 0; i < buildRows; i++ {
		if i%23 == 7 {
			bk.AppendValue(vector.Null())
		} else {
			bk.AppendValue(vector.NewInt64(int64(i % (buildRows * 3 / 4)))) // dup keys
		}
		bv[i] = int64(i)
		bs[i] = "b" + string(rune('a'+i%26))
	}
	if err := b.Data.AppendChunk(vector.NewChunk(bk, vector.FromInt64s(bv), vector.FromStrings(bs))); err != nil {
		t.Fatal(err)
	}
	return p, b
}

// TestSpillJoinMatchesInMemory: a grace-partitioned join (build side
// spilled, probe re-partitioned, output order restored by the tag
// sort) must be byte-identical to the in-memory join for inner and
// LEFT joins, with and without a residual ON conjunct, at workers
// 1/2/8.
func TestSpillJoinMatchesInMemory(t *testing.T) {
	probe, build := buildJoinTables(t, 3*vector.DefaultChunkSize, 2*vector.DefaultChunkSize)
	residual := &plan.BinOp{
		Op:   sql.OpGt,
		Left: &plan.ColRef{Idx: 4, Typ: vector.Int64}, // b.bv (combined schema)
		// Residual keeps roughly half the matches.
		Right: &plan.Const{Val: vector.NewInt64(int64(vector.DefaultChunkSize)), Typ: vector.Int64},
		Typ:   vector.Bool,
	}
	for _, kind := range []sql.JoinKind{sql.InnerJoin, sql.LeftJoin} {
		for _, withExtra := range []bool{false, true} {
			node := plan.Node(&plan.HashJoin{
				Kind:      kind,
				Left:      &plan.Scan{Table: probe},
				Right:     &plan.Scan{Table: build},
				LeftKeys:  []plan.Expr{colRef(1, vector.Int64)},
				RightKeys: []plan.Expr{colRef(0, vector.Int64)},
			})
			if withExtra {
				node.(*plan.HashJoin).Extra = residual
			}
			want := runPlan(t, node, &Context{Parallelism: 1})
			for _, workers := range []int{1, 2, 8} {
				for _, budget := range []int64{1 << 13, 1 << 16} { // 8KB forces recursion
					ctx, dir := spillCtx(t, workers, budget)
					got := runPlan(t, node, ctx)
					assertTablesEqual(t, got, want,
						fmt.Sprintf("join spill kind=%v extra=%v workers=%d budget=%d", kind, withExtra, workers, budget))
					if ctx.Spill.Partitions() == 0 {
						t.Fatalf("kind=%v extra=%v workers=%d budget=%d: no partitions spilled",
							kind, withExtra, workers, budget)
					}
					assertTempDirEmpty(t, dir)
				}
			}
		}
	}
}

// TestSpillCleanupOnCancelAndError: temp files must vanish when a
// spilling query is cancelled mid-stream or dies on an execution
// error.
func TestSpillCleanupOnCancelAndError(t *testing.T) {
	tab := buildSpillTable(t, 4*vector.DefaultChunkSize)
	sortNode := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(1, vector.Int64)}},
		Child: &plan.Scan{Table: tab},
	})

	// Cancel after the first chunk.
	dir := t.TempDir()
	ctx := &Context{Parallelism: 2, MemoryBudget: 1 << 14, TempDir: dir}
	s, err := Stream(sortNode, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	s.Cancel()
	s.Next() // observe the cancellation
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertTempDirEmpty(t, dir)

	// Mid-query error: a sort key whose comparison fails (Blob) after
	// runs already spilled.
	blobTab := func() *catalog.Table {
		cat := catalog.New()
		tb, err := cat.CreateTable("b", catalog.Schema{
			{Name: "k", Type: vector.Int64},
			{Name: "x", Type: vector.Blob},
		})
		if err != nil {
			t.Fatal(err)
		}
		n := 3 * vector.DefaultChunkSize
		ks := make([]int64, n)
		bs := make([][]byte, n)
		for i := range ks {
			ks[i] = int64(i % 911)
			bs[i] = []byte{byte(i), byte(i >> 8)}
		}
		if err := tb.Data.AppendChunk(vector.NewChunk(vector.FromInt64s(ks), vector.FromBlobs(bs))); err != nil {
			t.Fatal(err)
		}
		return tb
	}()
	errNode := plan.Node(&plan.Sort{
		Keys:  []plan.SortKey{{Expr: colRef(1, vector.Blob)}},
		Child: &plan.Scan{Table: blobTab},
	})
	dir2 := t.TempDir()
	ctx2 := &Context{Parallelism: 1, MemoryBudget: 1 << 12, TempDir: dir2}
	s2, err := Stream(errNode, ctx2)
	if err == nil {
		_, nerr := s2.Next()
		if nerr == nil {
			t.Fatal("expected sort over Blob keys to error")
		}
		s2.Close()
	}
	assertTempDirEmpty(t, dir2)
}

// TestSpillDistinctMatchesInMemory: serial DISTINCT must produce the
// same rows in the same (first-appearance) order under a tiny budget,
// across all three key-index representations (single int key, single
// string key, generic multi-column), and leave no temp files behind.
func TestSpillDistinctMatchesInMemory(t *testing.T) {
	tab := buildSpillTable(t, 4*vector.DefaultChunkSize)
	cases := []struct {
		name   string
		proj   []int
		budget int64
	}{
		{"int-key", []int{1}, 1 << 12},         // hk: keyKindInt
		{"str-key", []int{4}, 1 << 9},          // name: keyKindStr (26 keys — needs a tiny budget)
		{"multi-col", []int{2, 3, 4}, 1 << 12}, // sk,v,name: generic bytes (incl. NULL/NaN)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			node := plan.Node(&plan.Distinct{Child: &plan.Scan{Table: tab, Projection: tc.proj}})
			want := runPlan(t, node, &Context{Parallelism: 1})
			ctx, dir := spillCtx(t, 1, tc.budget)
			got := runPlan(t, node, ctx)
			assertTablesEqual(t, got, want, "distinct spill "+tc.name)
			if !ctx.Spill.Spilled() {
				t.Fatal("expected spilling")
			}
			if ctx.Spill.Partitions() == 0 {
				t.Fatal("no partitions recorded")
			}
			assertTempDirEmpty(t, dir)
		})
	}
}

// TestSpillDistinctStreamed: the spilled remainder must stream through
// ChunkStream (the server path) and still clean up its temp files on
// early Close.
func TestSpillDistinctStreamed(t *testing.T) {
	tab := buildSpillTable(t, 4*vector.DefaultChunkSize)
	node := plan.Node(&plan.Distinct{Child: &plan.Scan{Table: tab, Projection: []int{1}}})
	ctx, dir := spillCtx(t, 1, 1<<12)
	s, err := Stream(node, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Pull a couple of chunks, then abandon mid-stream.
	for i := 0; i < 2; i++ {
		if _, err := s.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	assertTempDirEmpty(t, dir)
}
